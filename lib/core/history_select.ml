open Whisper_trace

type choice = {
  len_idx : int;
  formula_id : int;
  bias : Brhint.bias;
  sample_mispred : int;
  baseline_mispred : int;
  samples : int;
}

(* Taken / not-taken count tables for one (branch, length).  [part]
   selects all samples, or the even/odd half — the formula is chosen on
   the train half and scored on the held-out half, so hints that merely
   overfit the profile are rejected (cf. the paper's requirement that the
   formula beat the profiled predictor's accuracy). *)
let tables_at profile ~pc ~len_idx ~part =
  let taken = Array.make 256 0 in
  let not_taken = Array.make 256 0 in
  let i = ref 0 in
  Profile.iter_samples profile ~pc ~f:(fun ~raw8:_ ~raw56:_ ~hash ~taken:tk ~correct:_ ->
      let keep =
        match part with
        | `All -> true
        | `Train -> !i land 1 = 0
        | `Eval -> !i land 1 = 1
      in
      incr i;
      if keep then begin
        let k = hash len_idx in
        if tk then taken.(k) <- taken.(k) + 1
        else not_taken.(k) <- not_taken.(k) + 1
      end);
  Algorithm1.tables_of_counts ~taken ~not_taken

let search rnd profile ~pc ~len_idx ~candidates ~part =
  let tables = tables_at profile ~pc ~len_idx ~part in
  if Algorithm1.distinct_keys tables = 0 then None
  else
    let f, m =
      Algorithm1.find tables ~candidates ~truth_of:(Randomized.truth_of rnd)
    in
    Some (f, m)

let decide_at_length rnd profile ~pc ~len_idx =
  let tables = tables_at profile ~pc ~len_idx ~part:`All in
  if Algorithm1.distinct_keys tables = 0 then None
  else
    let _, f, m =
      Algorithm1.find_packed tables
        ~candidates:(Randomized.candidates rnd)
        ~packed:(Randomized.packed_candidates rnd)
    in
    Some (f, m)

let best_possible_at_length rnd profile ~pc ~len_idx ~explore =
  let tables = tables_at profile ~pc ~len_idx ~part:`All in
  if Algorithm1.distinct_keys tables = 0 then None
  else
    let _, f, m =
      Algorithm1.find_packed tables
        ~candidates:(Randomized.candidates_n rnd explore)
        ~packed:(Randomized.packed_n rnd explore)
    in
    Some (f, m)

(* Baseline mispredictions and direction counts over a sample part. *)
let part_stats profile ~pc ~part =
  let mispred = ref 0 and taken = ref 0 and n = ref 0 in
  let i = ref 0 in
  Profile.iter_samples profile ~pc ~f:(fun ~raw8:_ ~raw56:_ ~hash:_ ~taken:tk ~correct ->
      let keep =
        match part with
        | `All -> true
        | `Train -> !i land 1 = 0
        | `Eval -> !i land 1 = 1
      in
      incr i;
      if keep then begin
        incr n;
        if not correct then incr mispred;
        if tk then incr taken
      end);
  (!mispred, !taken, !n)

(* The seed implementation of [decide], kept verbatim: it is the oracle
   the optimized path below is differentially tested against, the
   benchmark's naive reference, and the fallback for branches whose
   sample count overflows the packed tabulation counters. *)
module Reference = struct
  let decide ?min_gain (cfg : Config.t) rnd profile ~pc =
    let min_gain = Option.value min_gain ~default:cfg.min_sample_gain in
    let n_samples = Profile.n_samples profile ~pc in
    if n_samples < 8 then None
    else begin
      (* Select the whole (bias-or-formula, length) choice on the train
         half, then score only that single winner on the held-out half —
         any selection on the eval half would re-introduce optimism. *)
      let _, train_taken, train_n = part_stats profile ~pc ~part:`Train in
      let train_nt = train_n - train_taken in
      let best = ref (Brhint.Always_taken, 0, 0, train_nt) in
      if train_taken < train_nt then
        best := (Brhint.Never_taken, 0, 0, train_taken);
      for len_idx = 0 to cfg.n_lengths - 1 do
        match
          search rnd profile ~pc ~len_idx
            ~candidates:(Randomized.candidates rnd)
            ~part:`Train
        with
        | None -> ()
        | Some (f, train_m) ->
            let _, _, _, cur = !best in
            if train_m < cur then best := (Brhint.Formula, len_idx, f, train_m)
      done;
      let bias, len_idx, formula_id, _ = !best in
      let eval_baseline, eval_taken, eval_n = part_stats profile ~pc ~part:`Eval in
      let eval_m =
        match bias with
        | Brhint.Always_taken -> eval_n - eval_taken
        | Brhint.Never_taken -> eval_taken
        | Brhint.Dynamic -> eval_baseline
        | Brhint.Formula ->
            let eval_tables = tables_at profile ~pc ~len_idx ~part:`Eval in
            Algorithm1.mispredictions eval_tables
              ~truth:(Randomized.truth_of rnd formula_id)
      in
      (* marginal hints are the ones that regress on unseen inputs: require
         the win to be a meaningful fraction of the branch's mispredictions *)
      let required = max min_gain ((eval_baseline + 9) / 10) in
      if eval_baseline - eval_m >= required then
        Some
          {
            len_idx;
            formula_id;
            bias;
            sample_mispred = eval_m;
            baseline_mispred = eval_baseline;
            samples = n_samples;
          }
      else None
    end
end

(* ------------------------------------------------------------------ *)
(* Single-pass tabulation + packed search                             *)
(* ------------------------------------------------------------------ *)

(* The optimized [decide] reads each sample record exactly once: one scan
   of the raw profile buffer fills all [n_lengths] count tables for both
   halves at the same time.  Each (length, key) cell packs four 15/16-bit
   counters into one native int:

     bits  0..15  train taken        bits 32..47  eval taken
     bits 16..31  train not-taken    bits 48..62  eval not-taken

   The top field has only 15 usable bits in a 63-bit int, so branches
   with more than 32767 samples take the Reference path instead (profile
   collection caps samples far below that; the guard is for synthetic
   profiles). *)
let max_packed_samples = 32767

(* Stdlib's [Bytes.get_uint16_le] with the bounds check elided — the same
   compiler primitive the stdlib builds it from.  Native byte order; the
   caller guards for little-endian hosts. *)
external unsafe_get_uint16 : Bytes.t -> int -> int = "%caml_bytes_get16u"

type scratch = {
  counts : int array;
      (* n_lengths x 256 packed counter cells, flattened: length
         [len_idx]'s cell for key [k] lives at [(len_idx lsl 8) lor k] *)
  mutable incs : int array;  (* per-sample counter increment, grown on demand *)
  alg : Algorithm1.scratch;
}

let scratch (cfg : Config.t) =
  {
    counts = Array.make (cfg.n_lengths lsl 8) 0;
    incs = Array.make 1024 0;
    alg = Algorithm1.scratch ();
  }

let reset_scratch s = Array.fill s.counts 0 (Array.length s.counts) 0
let scratch_clean s = Array.for_all (fun c -> c = 0) s.counts

let poison_scratch s =
  Array.fill s.counts 0 (Array.length s.counts) 0x0101_0101;
  Array.fill s.incs 0 (Array.length s.incs) min_int

(* One cached workspace per domain, reused across branches {e and} across
   [Analyze.run] calls (the persistent-pool scheduler keeps domains
   alive, so the cache actually survives).  [decide] restores the
   all-zero counter invariant before returning, which is what makes
   handing the same buffers to the next branch sound; a cached scratch
   is grown — never shrunk — when a config needs more history lengths. *)
let dls_scratch : scratch option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let domain_scratch (cfg : Config.t) =
  let cell = Domain.DLS.get dls_scratch in
  match !cell with
  | Some s when Array.length s.counts >= cfg.n_lengths lsl 8 -> s
  | _ ->
      let s = scratch cfg in
      cell := Some s;
      s

(* Fill [s.counts] plus per-half baseline stats from the raw sample
   records.  Counts must be all-zero on entry (the invariant [decide]
   restores before returning).

   The walk is length-major: one stats pass computes each sample's
   packed counter increment into [s.incs], then each history length
   streams the (L1-resident) record buffer against its own 2 KiB row of
   [counts].  A sample-major walk touches all [nl] rows — the whole 32
   KiB table — per sample, thrashing L1 on every record. *)
let tabulate (s : scratch) (v : Profile.raw_view) ~nl =
  let train_mispred = ref 0
  and train_taken = ref 0
  and train_n = ref 0
  and eval_mispred = ref 0
  and eval_taken = ref 0
  and eval_n = ref 0 in
  let n = v.Profile.n in
  if Array.length s.incs < n then
    s.incs <- Array.make (max n (2 * Array.length s.incs)) 0;
  let incs = s.incs in
  let counts = s.counts in
  let rb = v.Profile.record_bytes in
  let hash_off = v.Profile.hash_off and flags_off = v.Profile.flags_off in
  let buf = v.Profile.buf in
  for i = 0 to n - 1 do
    let flags = Char.code (Bytes.unsafe_get buf ((i * rb) + flags_off)) in
    let tk = flags land 1 in
    let train = i land 1 = 0 in
    if train then begin
      incr train_n;
      train_taken := !train_taken + tk;
      if flags land 2 = 0 then incr train_mispred
    end
    else begin
      incr eval_n;
      eval_taken := !eval_taken + tk;
      if flags land 2 = 0 then incr eval_mispred
    end;
    Array.unsafe_set incs i (1 lsl (((i land 1) lsl 5) + 16 - (tk lsl 4)))
  done;
  let l = ref 0 in
  if not Sys.big_endian then
    (* adjacent lengths' hash bytes are adjacent in the record: one
       16-bit load feeds two rows per sample *)
    while !l + 1 < nl do
      let row0 = !l lsl 8 and row1 = (!l + 1) lsl 8 in
      let pos = ref (hash_off + !l) in
      let i = ref 0 in
      (* two samples per iteration: four independent row updates give the
         out-of-order core something to overlap *)
      while !i + 1 < n do
        let k2a = unsafe_get_uint16 buf !pos in
        let k2b = unsafe_get_uint16 buf (!pos + rb) in
        pos := !pos + rb + rb;
        let inca = Array.unsafe_get incs !i in
        let incb = Array.unsafe_get incs (!i + 1) in
        i := !i + 2;
        let idx0a = row0 lor (k2a land 0xFF) in
        Array.unsafe_set counts idx0a (Array.unsafe_get counts idx0a + inca);
        let idx1a = row1 lor (k2a lsr 8) in
        Array.unsafe_set counts idx1a (Array.unsafe_get counts idx1a + inca);
        let idx0b = row0 lor (k2b land 0xFF) in
        Array.unsafe_set counts idx0b (Array.unsafe_get counts idx0b + incb);
        let idx1b = row1 lor (k2b lsr 8) in
        Array.unsafe_set counts idx1b (Array.unsafe_get counts idx1b + incb)
      done;
      if !i < n then begin
        let k2 = unsafe_get_uint16 buf !pos in
        let inc = Array.unsafe_get incs !i in
        let idx0 = row0 lor (k2 land 0xFF) in
        Array.unsafe_set counts idx0 (Array.unsafe_get counts idx0 + inc);
        let idx1 = row1 lor (k2 lsr 8) in
        Array.unsafe_set counts idx1 (Array.unsafe_get counts idx1 + inc)
      end;
      l := !l + 2
    done;
  while !l < nl do
    let row = !l lsl 8 in
    let pos = ref (hash_off + !l) in
    for i = 0 to n - 1 do
      let k = Char.code (Bytes.unsafe_get buf !pos) in
      pos := !pos + rb;
      let idx = row lor k in
      Array.unsafe_set counts idx
        (Array.unsafe_get counts idx + Array.unsafe_get incs i)
    done;
    incr l
  done;
  ( (!train_mispred, !train_taken, !train_n),
    (!eval_mispred, !eval_taken, !eval_n) )

(* Compact one half of one length's packed counters into Algorithm-1
   tables, or [None] when the length provably cannot beat [cutoff].
   [shift] is 0 for the train half, 32 for eval. *)
let extract_below (s : scratch) ~len_idx ~shift ~cutoff =
  Algorithm1.tables_of_cells_below s.alg ~cells:s.counts ~off:(len_idx lsl 8)
    ~shift ~cutoff

let m_decides = Whisper_util.Telemetry.counter "history_select.decides"

let m_reference_fallbacks =
  Whisper_util.Telemetry.counter "history_select.reference_fallbacks"

let m_floor_skipped =
  Whisper_util.Telemetry.counter "history_select.lengths_floor_skipped"

let h_samples = Whisper_util.Telemetry.histogram "history_select.samples"

let decide ?min_gain ?scratch:sc (cfg : Config.t) rnd profile ~pc =
  let min_gain = Option.value min_gain ~default:cfg.min_sample_gain in
  let nl = cfg.n_lengths in
  if nl > Profile.n_lengths profile then
    invalid_arg "History_select.decide: config wants more lengths than profile";
  match Profile.raw_view profile ~pc with
  | None -> None
  | Some v ->
      if v.Profile.n < 8 then None
      else if v.Profile.n > max_packed_samples then begin
        if Whisper_util.Telemetry.enabled () then begin
          Whisper_util.Telemetry.incr m_decides;
          Whisper_util.Telemetry.incr m_reference_fallbacks;
          Whisper_util.Telemetry.observe h_samples v.Profile.n
        end;
        Reference.decide ~min_gain cfg rnd profile ~pc
      end
      else begin
        let s =
          match sc with
          | Some s ->
              if Array.length s.counts < nl lsl 8 then
                invalid_arg "History_select.decide: scratch too small";
              s
          | None -> scratch cfg
        in
        let (_, train_taken, train_n), (eval_baseline, eval_taken, eval_n) =
          tabulate s v ~nl
        in
        let train_nt = train_n - train_taken in
        (* best = (bias, len_idx, candidate index, formula id, train m) *)
        let best = ref (Brhint.Always_taken, 0, 0, 0, train_nt) in
        if train_taken < train_nt then
          best := (Brhint.Never_taken, 0, 0, 0, train_taken);
        let candidates = Randomized.candidates rnd in
        let packed = Randomized.packed_candidates rnd in
        let floor_skipped = ref 0 in
        for len_idx = 0 to nl - 1 do
          let _, _, _, _, cur = !best in
          (* a length whose irreducible floor meets the running best
             cannot contribute the strict improvement the update below
             requires — extraction skips it exactly *)
          match extract_below s ~len_idx ~shift:0 ~cutoff:cur with
          | None -> incr floor_skipped
          | Some tables -> (
              match
                Algorithm1.find_packed_below tables ~candidates ~packed
                  ~cutoff:cur
              with
              | Some (idx, f, train_m) ->
                  best := (Brhint.Formula, len_idx, idx, f, train_m)
              | None -> ())
        done;
        let bias, len_idx, best_idx, formula_id, _ = !best in
        let eval_m =
          match bias with
          | Brhint.Always_taken -> eval_n - eval_taken
          | Brhint.Never_taken -> eval_taken
          | Brhint.Dynamic -> eval_baseline
          | Brhint.Formula -> (
              match extract_below s ~len_idx ~shift:32 ~cutoff:max_int with
              | Some eval_tables ->
                  Algorithm1.mispredictions_packed eval_tables
                    ~ptruth:packed.(best_idx)
              | None -> 0 (* no eval samples: matches scoring empty tables *))
        in
        Array.fill s.counts 0 (nl lsl 8) 0;
        if Whisper_util.Telemetry.enabled () then begin
          Whisper_util.Telemetry.incr m_decides;
          Whisper_util.Telemetry.add m_floor_skipped !floor_skipped;
          Whisper_util.Telemetry.observe h_samples v.Profile.n
        end;
        let required = max min_gain ((eval_baseline + 9) / 10) in
        if eval_baseline - eval_m >= required then
          Some
            {
              len_idx;
              formula_id;
              bias;
              sample_mispred = eval_m;
              baseline_mispred = eval_baseline;
              samples = v.Profile.n;
            }
        else None
      end
