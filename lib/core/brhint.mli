(** The [brhint] instruction (paper Fig. 11).

    A 33-bit payload with four fields:

    {v
    | History (4b) | Boolean formula (15b) | Bias (2b) | PC pointer (12b) |
    v}

    - [History]: index into the 16-term geometric history-length series;
    - [Boolean formula]: the extended-ROMBF tree id (§III-C);
    - [Bias]: [0] = use the formula, [1] = predict always-taken,
      [2] = predict never-taken, [3] = reserved (predict dynamically);
    - [PC pointer]: forward offset, in instructions, from the brhint to
      the branch it covers (12 bits reach >80 % of branches per the
      paper's §IV). *)

type bias = Formula | Always_taken | Never_taken | Dynamic

type t = {
  len_idx : int;  (** 0..15 *)
  formula_id : int;  (** 0..32767 *)
  bias : bias;
  pc_offset : int;  (** 0..4095, instructions *)
}

val make :
  len_idx:int -> formula_id:int -> bias:bias -> pc_offset:int -> t
(** @raise Invalid_argument when any field is out of range. *)

val encode : t -> int
(** Pack into the 33-bit integer payload, History in the top bits. *)

val decode : int -> t
(** Inverse of {!encode}.  @raise Invalid_argument if out of range. *)

val encoded_bits : int
(** 33. *)

val branch_pc : t -> hint_addr:int -> int
(** Absolute PC of the covered branch given the brhint's own address. *)

val bias_code : bias -> int
val bias_of_code : int -> bias

val pp : Format.formatter -> t -> unit
