(** Trace-driven timing model — the reproduction's substitute for the
    Scarab simulator (DESIGN.md §2).

    A decoupled-frontend, interval-style cycle account over basic-block
    events:

    - every block costs [instrs / width] base cycles;
    - its instruction lines probe the L1i/L2/L3 hierarchy; a miss stalls
      the frontend only for the part FDIP could not hide, where the
      prefetcher's lead grows with the branch-predictor-filled FTQ and
      collapses to zero on every misprediction resteer;
    - a mispredicted branch pays the squash/refill penalty;
    - a taken branch whose target misses in the BTB pays a decode-resteer
      bubble and dents the FDIP lead.

    This reproduces the two mechanisms behind the paper's Fig. 1
    decomposition: removing mispredictions removes squash cycles {e and}
    restores FDIP lookahead, which converts exposed I-cache misses into
    hidden ones (the paper's "frontend stalls avoided by FDIP"). *)

type result = {
  cycles : float;
  instrs : int;
  branches : int;
  mispredicts : int;
  misp_stall : float;  (** squash/refill cycles *)
  fe_stall : float;  (** exposed instruction-fetch miss cycles *)
  btb_stall : float;
  l1i_misses : int;
  exposed_misses : int;  (** misses FDIP failed to fully hide *)
  seg_mispredicts : int array;
      (** mispredictions per trace segment (for warm-up and trace-length
          sweeps, Figs. 22–23).  Segment [k] covers event indices
          [k*events/segments, (k+1)*events/segments): sizes differ by at
          most one, and short runs ([events < segments], [events = 0])
          spread evenly instead of leaving trailing empty segments. *)
  seg_instrs : int array;
}

val degraded : result -> bool
(** [true] on the quarantined-run sentinel (NaN cycles).  Derived
    metrics of a degraded result are NaN, not a perfect score. *)

val ipc : result -> float
val mpki : result -> float

val speedup_pct : baseline:result -> improved:result -> float
(** Percentage IPC speedup of [improved] over [baseline] (same trace). *)

val run :
  ?params:Params.t ->
  ?segments:int ->
  events:int ->
  source:Whisper_trace.Branch.source ->
  predict:(Whisper_trace.Branch.event -> bool) ->
  unit ->
  result
(** [predict e] must carry out the full predict/train protocol of the
    modelled predictor and return whether the direction was predicted
    correctly. *)

val run_arena :
  ?params:Params.t ->
  ?segments:int ->
  events:int ->
  arena:Whisper_trace.Arena.t ->
  predict:(int -> bool) ->
  unit ->
  result
(** Replay path: same timing model fed by direct indexed reads from a
    packed {!Whisper_trace.Arena} instead of a closure source — no
    [Branch.event] is allocated per event.  [predict i] receives the
    event index and reads whatever fields it needs from the arena; it
    must follow the same predict/train protocol as {!run}'s callback.
    Both entry points share one accounting core, so for equal streams
    and predictors the results are byte-identical.
    @raise Invalid_argument if [events] exceeds the arena's length. *)
