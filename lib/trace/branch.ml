type event = {
  block : int;
  pc : int;
  taken : bool;
  instrs : int;
  next_addr : int;
}

let pp fmt e =
  Format.fprintf fmt "@[<h>{block=%d; pc=0x%x; %s; instrs=%d; next=0x%x}@]"
    e.block e.pc
    (if e.taken then "T" else "NT")
    e.instrs e.next_addr

type source = unit -> event

let take src n = Array.init n (fun _ -> src ())
