(** Binary persistence for profiles — the artifact a production fleet
    ships from its profiling hosts to the offline analysis machines
    (paper Fig. 10, the arrow between steps 1 and 2).

    Decoding is {e total}: a truncated, bit-flipped or version-skewed
    file yields a typed {!Whisper_util.Whisper_error.t} (with the byte
    offset of the corruption), never an uncaught exception — one bad
    host in the fleet must not kill a whole analysis batch. *)

val to_bytes : Profile.t -> bytes

val of_bytes : bytes -> (Profile.t, Whisper_util.Whisper_error.t) result

val of_bytes_exn : bytes -> Profile.t
(** @raise Whisper_error.Error on corrupt or mismatched input. *)

val save : Profile.t -> path:string -> unit

val load : path:string -> (Profile.t, Whisper_util.Whisper_error.t) result
(** Missing file, unreadable file and corrupt contents all come back as
    [Error] with [path] as context. *)

val load_exn : path:string -> Profile.t
(** @raise Whisper_error.Error on any failure. *)

val format_version : int
