open Whisper_util
open Whisper_trace
open Whisper_core
module Tm = Telemetry

(* Counters follow the sweep.* convention: accounting for crash/resume
   and degradation goes to telemetry and the outcome record, never into
   the ledger (which must stay byte-identical across kills, resumes and
   job counts). *)
let m_steps = Tm.counter "serve.generations"
let m_ingested = Tm.counter "serve.chunks_ingested"
let m_duplicates = Tm.counter "serve.duplicate_chunks"
let m_quarantined = Tm.counter "serve.chunks_quarantined"
let m_rescores = Tm.counter "serve.rescores"
let m_drift = Tm.counter "serve.drift_detected"
let m_analyses = Tm.counter "serve.analyses"
let m_aquar = Tm.counter "serve.analysis_quarantined"
let m_rollouts = Tm.counter "serve.rollouts"
let m_rollbacks = Tm.counter "serve.rollbacks"
let m_resumed = Tm.counter "serve.resumed"
let m_recovered = Tm.counter "serve.journal_recovered"
let m_dropped = Tm.counter "serve.journal_dropped_bytes"

type config = {
  apps : string list;
  generations : int;
  chunk_events : int;
  window : int;
  kb : int;
  max_samples : int;
  drift_flip : int option;
  decay_frac : float;
  state_dir : string;
  jobs : int;
  faults : float;
  fault_seed : int;
  redeliver : bool;
  resume : bool;
  max_steps : int option;
}

let default ~state_dir =
  {
    apps = [ "finagle-http" ];
    generations = 12;
    chunk_events = 120_000;
    window = 4;
    kb = 64;
    max_samples = 512;
    drift_flip = Some 6;
    decay_frac = 0.5;
    state_dir;
    jobs = 1;
    faults = 0.0;
    fault_seed = 42;
    redeliver = true;
    resume = false;
    max_steps = None;
  }

(* ------------------------------------------------------------------ *)
(* Scenario manifest                                                  *)
(* ------------------------------------------------------------------ *)

let step_key ~gen ~app = Printf.sprintf "g%04d/%s" gen app

let plan cfg =
  let meta =
    [
      ("kind", "serve");
      ("apps", String.concat "," cfg.apps);
      ("generations", string_of_int cfg.generations);
      ("chunk_events", string_of_int cfg.chunk_events);
      ("window", string_of_int cfg.window);
      ("kb", string_of_int cfg.kb);
      ("max_samples", string_of_int cfg.max_samples);
      ( "drift_flip",
        match cfg.drift_flip with None -> "none" | Some g -> string_of_int g );
      ("decay_frac", Printf.sprintf "%.6f" cfg.decay_frac);
      ("faults", Printf.sprintf "%.6f" cfg.faults);
      ("fault_seed", string_of_int cfg.fault_seed);
      ("redeliver", if cfg.redeliver then "1" else "0");
    ]
  in
  let items =
    Array.init
      (cfg.generations * List.length cfg.apps)
      (fun i ->
        let gen = i / List.length cfg.apps in
        let app = List.nth cfg.apps (i mod List.length cfg.apps) in
        let key = step_key ~gen ~app in
        { Manifest.key; spec = key })
  in
  Manifest.make ~meta items

(* ------------------------------------------------------------------ *)
(* Ledger lines                                                       *)
(* ------------------------------------------------------------------ *)

type action = A_none | A_rollout | A_rollback | A_quarantined

type step = {
  gen : int;
  app : string;
  chunk_id : string;
  status : string;  (* "ok" or "quarantined:<tag>" *)
  redup : int;
  cov : float option;  (* incumbent coverage on the window, pre-action *)
  drift : bool;
  action : action;
  deployed : int option;  (* deployed plan generation after the action *)
  plan_digest : string option;
  hints : int;
  postcov : float option;  (* deployed coverage after the action *)
}

let action_name = function
  | A_none -> "none"
  | A_rollout -> "rollout"
  | A_rollback -> "rollback"
  | A_quarantined -> "analysis-quarantined"

let action_of_name = function
  | "none" -> Some A_none
  | "rollout" -> Some A_rollout
  | "rollback" -> Some A_rollback
  | "analysis-quarantined" -> Some A_quarantined
  | _ -> None

let opt_cov = function None -> "none" | Some c -> Printf.sprintf "%.6f" c
let opt_gen = function None -> "none" | Some g -> Printf.sprintf "%04d" g

let render_step (s : step) =
  Printf.sprintf
    "gen=%04d app=%s chunk=%s status=%s redup=%d cov=%s drift=%d action=%s \
     deployed=%s plan=%s hints=%d postcov=%s"
    s.gen s.app s.chunk_id s.status s.redup (opt_cov s.cov)
    (if s.drift then 1 else 0)
    (action_name s.action) (opt_gen s.deployed)
    (Option.value ~default:"none" s.plan_digest)
    s.hints (opt_cov s.postcov)

let parse_step line =
  let field name =
    let prefix = name ^ "=" in
    List.find_map
      (fun tok ->
        if
          String.length tok > String.length prefix
          && String.sub tok 0 (String.length prefix) = prefix
        then
          Some (String.sub tok (String.length prefix)
                  (String.length tok - String.length prefix))
        else None)
      (String.split_on_char ' ' line)
  in
  let ( let* ) = Option.bind in
  let* gen = Option.bind (field "gen") int_of_string_opt in
  let* app = field "app" in
  let* chunk_id = field "chunk" in
  let* status = field "status" in
  let* redup = Option.bind (field "redup") int_of_string_opt in
  let* cov_s = field "cov" in
  let* cov =
    if cov_s = "none" then Some None
    else Option.map Option.some (float_of_string_opt cov_s)
  in
  let* drift = Option.bind (field "drift") int_of_string_opt in
  let* action = Option.bind (field "action") action_of_name in
  let* dep_s = field "deployed" in
  let* deployed =
    if dep_s = "none" then Some None
    else Option.map Option.some (int_of_string_opt dep_s)
  in
  let* plan_s = field "plan" in
  let plan_digest = if plan_s = "none" then None else Some plan_s in
  let* hints = Option.bind (field "hints") int_of_string_opt in
  let* postcov_s = field "postcov" in
  let* postcov =
    if postcov_s = "none" then Some None
    else Option.map Option.some (float_of_string_opt postcov_s)
  in
  Some
    {
      gen;
      app;
      chunk_id;
      status;
      redup;
      cov;
      drift = drift <> 0;
      action;
      deployed;
      plan_digest;
      hints;
      postcov;
    }

(* ------------------------------------------------------------------ *)
(* State-dir artifacts                                                *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_atomic path data =
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_bytes oc data;
  close_out oc;
  Sys.rename tmp path

let read_file path =
  if not (Sys.file_exists path) then None
  else
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      close_in ic;
      Some b
    with Sys_error _ -> None

let chunk_path cfg ~app ~id =
  Filename.concat (Filename.concat cfg.state_dir "chunks")
    (Filename.concat app (id ^ ".bin"))

let plan_path cfg ~app ~gen =
  Filename.concat (Filename.concat cfg.state_dir "plans")
    (Filename.concat app (Printf.sprintf "g%04d.bin" gen))

let manifest_path cfg = Filename.concat cfg.state_dir "manifest.bin"
let journal_path cfg = Filename.concat cfg.state_dir "journal.bin"

(* ------------------------------------------------------------------ *)
(* Per-app service state                                              *)
(* ------------------------------------------------------------------ *)

type deployed = {
  d_gen : int;
  d_plan : Rescore.plan;
  d_digest : string;
  d_hints : int;
}

type app_state = {
  name : string;
  wcfg : Workloads.config;
  cfg_static : Cfg.t;
  accum : Profile_chunk.accum;
  profiles : (string, Profile.t) Hashtbl.t;  (* chunk id -> profile *)
  mutable win : (int * string) list;  (* newest first *)
  mutable dep : deployed option;
  mutable ref_cov : float;  (* deployed coverage at rollout time *)
  mutable applying : bool;  (* journal prefix still consistent *)
}

type env = {
  cfg : config;
  analysis_config : Config.t;
  rnd : Randomized.t;
  fault : Fault.t option;
  journal : Journal.t;
  states : (string, app_state) Hashtbl.t;
  steps : (string, step) Hashtbl.t;  (* step key -> final record *)
  mutable n_completed : int;
  mutable n_resumed : int;
  mutable interrupted : bool;
}

let phase_of cfg ~gen =
  match cfg.drift_flip with Some f when gen >= f -> 1 | _ -> 0

(* One collection window's chunk, regenerated deterministically from
   (config, app, gen) — including the delivery-time corruption, which is
   pure in (fault_seed, step key).  This is what makes lost chunk files
   recoverable on resume. *)
let collect_chunk env st ~gen =
  let phase = phase_of env.cfg ~gen in
  let input = gen + 2 in
  let profile =
    Profile.collect ~max_samples:env.cfg.max_samples ~lengths:Workloads.lengths
      ~events:env.cfg.chunk_events
      ~make_source:(fun () ->
        App_model.source
          (App_model.create ~phase ~cfg:st.cfg_static ~config:st.wcfg ~input ()))
      ~make_predictor:(Runner.lbr_predictor env.cfg.kb)
      ()
  in
  let clean = Profile_chunk.encode ~app:st.name ~seq:gen profile in
  match env.fault with
  | None -> clean
  | Some f -> Fault.corrupt f ~key:(step_key ~gen ~app:st.name) clean

(* The profile of an accepted chunk, from the in-memory cache, the chunk
   store, or deterministic regeneration. *)
let chunk_profile env st ~gen ~id =
  match Hashtbl.find_opt st.profiles id with
  | Some p -> Some p
  | None ->
      let from_bytes b =
        if Profile_chunk.id b <> id then None
        else
          match Profile_chunk.decode b with
          | Ok c ->
              Hashtbl.replace st.profiles id c.Profile_chunk.profile;
              Some c.Profile_chunk.profile
          | Error _ -> None
      in
      let stored =
        Option.bind (read_file (chunk_path env.cfg ~app:st.name ~id)) from_bytes
      in
      (match stored with
      | Some _ as r -> r
      | None -> from_bytes (collect_chunk env st ~gen))

let window_profile env st =
  let ps =
    List.filter_map
      (fun (gen, id) -> chunk_profile env st ~gen ~id)
      (List.rev st.win)
  in
  if ps = [] then None
  else
    Some
      (Profile_chunk.merge_profiles ~max_samples:env.cfg.max_samples
         ~lengths:Workloads.lengths ps)

let push_window env st ~gen ~id =
  st.win <- (gen, id) :: st.win;
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  st.win <- take env.cfg.window st.win

let short_error (e : Whisper_error.t) =
  match e.Whisper_error.kind with
  | Whisper_error.Truncated -> "truncated"
  | Whisper_error.Bad_magic _ -> "bad-magic"
  | Whisper_error.Version_mismatch _ -> "version-skew"
  | Whisper_error.Varint_overflow -> "varint-overflow"
  | Whisper_error.Out_of_range _ -> "out-of-range"
  | Whisper_error.Key_mismatch -> "key-mismatch"
  | Whisper_error.Trailing_bytes -> "trailing-bytes"
  | Whisper_error.Count_overflow _ -> "count-overflow"
  | Whisper_error.Malformed _ -> "malformed"
  | Whisper_error.Timeout _ -> "timeout"

(* ------------------------------------------------------------------ *)
(* Step execution                                                     *)
(* ------------------------------------------------------------------ *)

(* The rollout rule: a candidate replaces the incumbent only when it
   scores at least as well on the same window; the first plan always
   rolls out.  In the scripted scenarios the candidate is trained on
   the very window it is scored against, so rollback is the rare path
   — it exists for the production story (analysis on stale data) and
   is pinned by a direct unit test. *)
let decide_rollout ~incumbent ~candidate =
  match incumbent with
  | None -> `Rollout
  | Some c -> if candidate >= c then `Rollout else `Rollback

let execute_step env st ~gen =
  let key = step_key ~gen ~app:st.name in
  let delivered = collect_chunk env st ~gen in
  let cid = Profile_chunk.id delivered in
  let status, redup =
    match Profile_chunk.decode delivered with
    | Error e ->
        Tm.incr m_quarantined;
        ("quarantined:" ^ short_error e, 0)
    | Ok c -> (
        match
          Profile_chunk.ingest_profile st.accum ~id:cid c.Profile_chunk.profile
        with
        | Profile_chunk.Duplicate _ ->
            Tm.incr m_duplicates;
            ("ok", 1)
        | Profile_chunk.Added _ ->
            Tm.incr m_ingested;
            write_atomic (chunk_path env.cfg ~app:st.name ~id:cid) delivered;
            Hashtbl.replace st.profiles cid c.Profile_chunk.profile;
            push_window env st ~gen ~id:cid;
            let redup =
              if env.cfg.redeliver then (
                match
                  Profile_chunk.ingest_profile st.accum ~id:cid
                    c.Profile_chunk.profile
                with
                | Profile_chunk.Duplicate _ ->
                    Tm.incr m_duplicates;
                    1
                | Profile_chunk.Added _ -> 0 (* unreachable: same id *))
              else 0
            in
            ("ok", redup))
  in
  let wprof = window_profile env st in
  let cov =
    match (st.dep, wprof) with
    | Some d, Some wp ->
        Tm.incr m_rescores;
        Some
          (Rescore.score ~config:env.analysis_config ~rnd:env.rnd ~profile:wp
             d.d_plan)
            .Rescore.coverage
    | _ -> None
  in
  let drift =
    match cov with
    | Some c -> c < env.cfg.decay_frac *. st.ref_cov
    | None -> false
  in
  if drift then Tm.incr m_drift;
  let need_analysis = (st.dep = None && wprof <> None) || drift in
  let action, postcov =
    if not need_analysis then (A_none, cov)
    else begin
      let wp = Option.get wprof in
      let analysed =
        Whisper_error.protect ~context:key Task (fun () ->
            let body () =
              Analyze.run ~config:env.analysis_config ~jobs:env.cfg.jobs wp
            in
            match env.fault with
            | None -> body ()
            | Some f -> Fault.wrap f ~key:("analysis/" ^ key) ~attempt:1 body)
      in
      match analysed with
      | Error _ ->
          Tm.incr m_aquar;
          (A_quarantined, cov)
      | Ok a ->
          Tm.incr m_analyses;
          let cand = a.Analyze.decisions in
          let new_cov =
            (Rescore.score ~config:env.analysis_config ~rnd:env.rnd ~profile:wp
               cand)
              .Rescore.coverage
          in
          let incumbent = if st.dep = None then None else cov in
          match decide_rollout ~incumbent ~candidate:new_cov with
          | `Rollout ->
              begin
            let digest = Rescore.digest cand in
            write_atomic
              (plan_path env.cfg ~app:st.name ~gen)
              (Rescore.encode cand);
            st.dep <-
              Some
                {
                  d_gen = gen;
                  d_plan = cand;
                  d_digest = digest;
                  d_hints = List.length cand;
                };
            st.ref_cov <- new_cov;
            Tm.incr m_rollouts;
            (A_rollout, Some new_cov)
          end
          | `Rollback ->
              Tm.incr m_rollbacks;
              (A_rollback, cov)
    end
  in
  let step =
    {
      gen;
      app = st.name;
      chunk_id = cid;
      status;
      redup;
      cov;
      drift;
      action;
      deployed = Option.map (fun d -> d.d_gen) st.dep;
      plan_digest = Option.map (fun d -> d.d_digest) st.dep;
      hints = (match st.dep with Some d -> d.d_hints | None -> 0);
      postcov;
    }
  in
  Journal.append env.journal
    { Journal.key; status = Journal.Done; detail = render_step step };
  Hashtbl.replace env.steps key step;
  env.n_completed <- env.n_completed + 1;
  Tm.incr m_steps;
  match env.cfg.max_steps with
  | Some m when env.n_completed >= m -> env.interrupted <- true
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Journal replay                                                     *)
(* ------------------------------------------------------------------ *)

(* Apply one journaled step without re-executing it.  Returns [false]
   (breaking the app's applied prefix, so the step and everything after
   it re-run) when the recorded state cannot be reconstructed — an
   unparseable line, or a rolled-out plan whose stored file no longer
   matches the recorded digest. *)
let apply_step env st (s : step) =
  let ok_chunk =
    if s.status <> "ok" then true
    else
      match chunk_profile env st ~gen:s.gen ~id:s.chunk_id with
      | Some p ->
          (match Profile_chunk.ingest_profile st.accum ~id:s.chunk_id p with
          | Profile_chunk.Added _ | Profile_chunk.Duplicate _ -> ());
          push_window env st ~gen:s.gen ~id:s.chunk_id;
          true
      | None -> false
  in
  if not ok_chunk then false
  else
    match s.action with
    | A_rollout -> (
        match (s.deployed, s.plan_digest, s.postcov) with
        | Some dgen, Some digest, Some postcov when dgen = s.gen -> (
            match
              Option.map Rescore.decode
                (read_file (plan_path env.cfg ~app:st.name ~gen:dgen))
            with
            | Some (Ok plan) when Rescore.digest plan = digest ->
                st.dep <-
                  Some
                    {
                      d_gen = dgen;
                      d_plan = plan;
                      d_digest = digest;
                      d_hints = List.length plan;
                    };
                st.ref_cov <- postcov;
                true
            | _ -> false)
        | _ -> false)
    | A_none | A_rollback | A_quarantined ->
        (* the incumbent must be what the line says it was *)
        s.deployed = Option.map (fun d -> d.d_gen) st.dep

let init_states cfg =
  let states = Hashtbl.create 8 in
  List.iter
    (fun app ->
      match Workloads.by_name app with
      | None -> invalid_arg (Printf.sprintf "Serve: unknown app %S" app)
      | Some wcfg ->
          Hashtbl.replace states app
            {
              name = app;
              wcfg;
              cfg_static = Workloads.build_cfg wcfg;
              accum =
                Profile_chunk.create_accum ~max_samples:cfg.max_samples
                  ~lengths:Workloads.lengths ();
              profiles = Hashtbl.create 16;
              win = [];
              dep = None;
              ref_cov = 0.0;
              applying = true;
            })
    cfg.apps;
  states

(* ------------------------------------------------------------------ *)
(* Outcome                                                            *)
(* ------------------------------------------------------------------ *)

type outcome = {
  ledger : string list;
  summary : string list;
  manifest_id : string;
  total : int;
  completed : int;
  resumed : int;
  chunks_ingested : int;
  duplicates : int;
  chunks_quarantined : int;
  rescores : int;
  drift_detected : int;
  analyses : int;
  analysis_quarantined : int;
  rollouts : int;
  rollbacks : int;
  journal_recovered : bool;
  journal_dropped_bytes : int;
  interrupted : bool;
}

let summarize cfg (steps : step list) =
  let apps = cfg.apps in
  let per_app app =
    let ss = List.filter (fun s -> s.app = app) steps in
    let count f = List.length (List.filter f ss) in
    let last_with f =
      List.fold_left (fun acc s -> match f s with Some _ as v -> v | None -> acc)
        None ss
    in
    let final_cov = last_with (fun s -> s.postcov) in
    let final_dep = last_with (fun s -> s.deployed) in
    let hints =
      List.fold_left (fun acc s -> if s.deployed <> None then s.hints else acc)
        0 ss
    in
    Printf.sprintf
      "app %s: ingested=%d quarantined=%d redelivered=%d rescores=%d drift=%d \
       analyses=%d analysis_quarantined=%d rollouts=%d rollbacks=%d \
       deployed=%s hints=%d final_cov=%s"
      app
      (count (fun s -> s.status = "ok"))
      (count (fun s -> s.status <> "ok"))
      (List.fold_left (fun acc s -> acc + s.redup) 0 ss)
      (count (fun s -> s.cov <> None))
      (count (fun s -> s.drift))
      (count (fun s -> s.action = A_rollout || s.action = A_rollback))
      (count (fun s -> s.action = A_quarantined))
      (count (fun s -> s.action = A_rollout))
      (count (fun s -> s.action = A_rollback))
      (opt_gen final_dep) hints (opt_cov final_cov)
  in
  List.map per_app apps
  @ [
      Printf.sprintf "total: steps=%d apps=%d generations=%d"
        (List.length steps) (List.length apps) cfg.generations;
    ]

let count_steps steps f = List.length (List.filter f steps)

(* ------------------------------------------------------------------ *)
(* Run                                                                *)
(* ------------------------------------------------------------------ *)

let run cfg =
  let manifest = plan cfg in
  let mid = Manifest.id manifest in
  let total = Array.length manifest.Manifest.items in
  let fresh () =
    Manifest.save manifest ~path:(manifest_path cfg);
    (Journal.create ~path:(journal_path cfg) ~manifest_id:mid, [], false, 0)
  in
  let journal, prior_entries, recovered, dropped =
    if not cfg.resume then fresh ()
    else
      match Manifest.load ~path:(manifest_path cfg) with
      | Ok m when Manifest.id m = mid -> (
          match Journal.open_existing ~path:(journal_path cfg) ~manifest_id:mid with
          | Ok (j, r) -> (j, r.Journal.entries, true, r.Journal.dropped_bytes)
          | Error _ -> fresh ())
      | Ok _ | Error _ -> fresh ()
  in
  if recovered then Tm.incr m_recovered;
  if dropped > 0 then Tm.add m_dropped dropped;
  let env =
    {
      cfg;
      analysis_config = Config.default;
      rnd = Randomized.create Config.default;
      fault =
        (if cfg.faults > 0.0 then
           Some
             (Fault.create ~seed:cfg.fault_seed ~hang_s:0.05 ~rate:cfg.faults ())
         else None);
      journal;
      states = init_states cfg;
      steps = Hashtbl.create 64;
      n_completed = 0;
      n_resumed = 0;
      interrupted = false;
    }
  in
  (* Last record per key wins: a crash between an artifact store and its
     journal append re-journals the step on re-execution. *)
  let prior = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace prior e.Journal.key e) prior_entries;
  let apps_in_order = cfg.apps in
  (* the whole scenario runs under one span so even a fully-resumed run
     (zero fresh analyses, zero machine work) exports a nonzero spans
     section — `--metrics-valid` must hold on any resume schedule *)
  (Tm.span "serve.run" @@ fun () ->
   let exception Stop in
   try
     for gen = 0 to cfg.generations - 1 do
       List.iter
         (fun app ->
           if env.interrupted then raise Stop;
           let st = Hashtbl.find env.states app in
           let key = step_key ~gen ~app in
           let applied =
             st.applying
             &&
             match Hashtbl.find_opt prior key with
             | Some { Journal.status = Journal.Done; detail; _ } -> (
                 match parse_step detail with
                 | Some s when s.gen = gen && s.app = app ->
                     if apply_step env st s then begin
                       Hashtbl.replace env.steps key s;
                       env.n_resumed <- env.n_resumed + 1;
                       Tm.incr m_resumed;
                       true
                     end
                     else false
                 | _ -> false)
             | _ -> false
           in
           if not applied then begin
             (* once one step re-executes, later journaled steps for the
                same app describe a future the re-execution will
                deterministically reproduce — stop trusting them *)
             st.applying <- false;
             execute_step env st ~gen
           end)
         apps_in_order
     done
   with Stop -> ());
  Journal.close journal;
  let ordered_steps =
    if env.interrupted then []
    else
      Array.to_list manifest.Manifest.items
      |> List.map (fun (it : Manifest.item) -> Hashtbl.find env.steps it.Manifest.key)
  in
  let ledger = List.map render_step ordered_steps in
  {
    ledger;
    summary = (if env.interrupted then [] else summarize cfg ordered_steps);
    manifest_id = mid;
    total;
    completed = env.n_completed;
    resumed = env.n_resumed;
    chunks_ingested = count_steps ordered_steps (fun s -> s.status = "ok");
    duplicates = List.fold_left (fun acc s -> acc + s.redup) 0 ordered_steps;
    chunks_quarantined =
      count_steps ordered_steps (fun s -> s.status <> "ok");
    rescores = count_steps ordered_steps (fun s -> s.cov <> None);
    drift_detected = count_steps ordered_steps (fun s -> s.drift);
    analyses =
      count_steps ordered_steps (fun s ->
          s.action = A_rollout || s.action = A_rollback);
    analysis_quarantined =
      count_steps ordered_steps (fun s -> s.action = A_quarantined);
    rollouts = count_steps ordered_steps (fun s -> s.action = A_rollout);
    rollbacks = count_steps ordered_steps (fun s -> s.action = A_rollback);
    journal_recovered = recovered;
    journal_dropped_bytes = dropped;
    interrupted = env.interrupted;
  }

(* ------------------------------------------------------------------ *)
(* Drift-recovery assertion (the soak gate)                           *)
(* ------------------------------------------------------------------ *)

let check_recovery cfg outcome =
  match cfg.drift_flip with
  | None -> Error "check_recovery: scenario has no drift flip"
  | Some flip ->
      if outcome.interrupted then Error "check_recovery: interrupted run"
      else begin
        let steps = List.filter_map parse_step outcome.ledger in
        let check_app app =
          let ss = List.filter (fun s -> s.app = app) steps in
          let post = List.filter (fun s -> s.gen >= flip) ss in
          let drifts = List.filter (fun s -> s.drift) post in
          let rollouts = List.filter (fun s -> s.action = A_rollout) post in
          if drifts = [] then
            Error
              (Printf.sprintf "%s: no drift detected at or after generation %d"
                 app flip)
          else if rollouts = [] then
            Error (Printf.sprintf "%s: no post-flip rollout" app)
          else begin
            let trough =
              List.fold_left
                (fun acc s ->
                  match s.cov with Some c -> Float.min acc c | None -> acc)
                infinity drifts
            in
            let final_cov =
              List.fold_left
                (fun acc s -> match s.postcov with Some c -> c | None -> acc)
                neg_infinity ss
            in
            if final_cov > trough then Ok ()
            else
              Error
                (Printf.sprintf
                   "%s: coverage did not recover (final %.6f <= trough %.6f)"
                   app final_cov trough)
          end
        in
        List.fold_left
          (fun acc app -> match acc with Error _ -> acc | Ok () -> check_app app)
          (Ok ()) cfg.apps
      end
