type t = { n : int; ops : Op.t array; inverted : bool }

let leaves t = t.n
let ops t = t.ops
let inverted t = t.inverted

let make ~ops ~inverted =
  let n = Array.length ops + 1 in
  if n < 2 || not (Whisper_util.Bitops.is_power_of_two n) then
    invalid_arg "Tree.make: leaves must be a power of two >= 2";
  { n; ops = Array.copy ops; inverted }

(* Node i's children are 2i+1 and 2i+2; indices >= n-1 are leaves reading
   input bit (index - (n-1)). *)
let eval t bits =
  let n = t.n in
  let rec node i =
    if i >= n - 1 then (bits lsr (i - (n - 1))) land 1 = 1
    else Op.eval t.ops.(i) (node ((2 * i) + 1)) (node ((2 * i) + 2))
  in
  let v = node 0 in
  if t.inverted then not v else v

let id_bits ~leaves =
  if leaves < 2 || not (Whisper_util.Bitops.is_power_of_two leaves) then
    invalid_arg "Tree.id_bits";
  (2 * (leaves - 1)) + 1

let space_size ~leaves = 1 lsl id_bits ~leaves

let to_id t =
  let id = ref 0 in
  Array.iteri (fun i op -> id := !id lor (Op.to_code op lsl (2 * i))) t.ops;
  if t.inverted then id := !id lor (1 lsl (2 * (t.n - 1)));
  !id

let of_id ~leaves id =
  if id < 0 || id >= space_size ~leaves then invalid_arg "Tree.of_id";
  let ops =
    Array.init (leaves - 1) (fun i -> Op.of_code ((id lsr (2 * i)) land 3))
  in
  { n = leaves; ops; inverted = (id lsr (2 * (leaves - 1))) land 1 = 1 }

let is_classic t =
  (not t.inverted)
  && Array.for_all (function Op.And | Op.Or -> true | _ -> false) t.ops

let to_classic_id t =
  if not (is_classic t) then invalid_arg "Tree.to_classic_id";
  let id = ref 0 in
  Array.iteri
    (fun i op -> if op = Op.Or then id := !id lor (1 lsl i))
    t.ops;
  !id

let classic_space_size ~leaves =
  if leaves < 2 || not (Whisper_util.Bitops.is_power_of_two leaves) then
    invalid_arg "Tree.classic_space_size";
  1 lsl (leaves - 1)

let of_classic_id ~leaves id =
  if id < 0 || id >= classic_space_size ~leaves then
    invalid_arg "Tree.of_classic_id";
  let ops =
    Array.init (leaves - 1) (fun i ->
        if (id lsr i) land 1 = 1 then Op.Or else Op.And)
  in
  { n = leaves; ops; inverted = false }

let truth_table t =
  let size = 1 lsl t.n in
  let table = Bytes.make size '\000' in
  for k = 0 to size - 1 do
    if eval t k then Bytes.unsafe_set table k '\001'
  done;
  table

let eval_tt table bits = Bytes.unsafe_get table bits <> '\000'

(* 32-bit packing keeps the words well inside OCaml's 63-bit native ints
   while still collapsing a 256-entry table into 8 words. *)
let packed_words ~size = (size + 31) lsr 5

let packed_truth_table t =
  let size = 1 lsl t.n in
  let w = Array.make (packed_words ~size) 0 in
  for k = 0 to size - 1 do
    if eval t k then w.(k lsr 5) <- w.(k lsr 5) lor (1 lsl (k land 31))
  done;
  w

let eval_packed w bits =
  (Array.unsafe_get w (bits lsr 5) lsr (bits land 31)) land 1 = 1

let eval_packed_at w ~off bits =
  (Array.unsafe_get w (off + (bits lsr 5)) lsr (bits land 31)) land 1 = 1

let pack_truth_table table =
  let size = Bytes.length table in
  let w = Array.make (packed_words ~size) 0 in
  for k = 0 to size - 1 do
    if eval_tt table k then w.(k lsr 5) <- w.(k lsr 5) lor (1 lsl (k land 31))
  done;
  w

let gate_delay ~leaves =
  if leaves < 2 || not (Whisper_util.Bitops.is_power_of_two leaves) then
    invalid_arg "Tree.gate_delay";
  (5 * Whisper_util.Bitops.log2_ceil leaves) + 4

let all_ops op ~leaves =
  if leaves < 2 || not (Whisper_util.Bitops.is_power_of_two leaves) then
    invalid_arg "Tree.all_ops";
  { n = leaves; ops = Array.make (leaves - 1) op; inverted = false }

let random rng ~leaves =
  of_id ~leaves (Whisper_util.Rng.int rng (space_size ~leaves))

let rec pp_node fmt t i =
  let n = t.n in
  if i >= n - 1 then Format.fprintf fmt "b%d" (i - (n - 1))
  else begin
    Format.fprintf fmt "(";
    pp_node fmt t ((2 * i) + 1);
    Format.fprintf fmt " %s "
      (match t.ops.(i) with
      | Op.And -> "and"
      | Op.Or -> "or"
      | Op.Imp -> "imp"
      | Op.Cnimp -> "cnimp");
    pp_node fmt t ((2 * i) + 2);
    Format.fprintf fmt ")"
  end

let pp fmt t =
  if t.inverted then Format.fprintf fmt "~";
  pp_node fmt t 0

let to_string t = Format.asprintf "%a" pp t

let equal a b = a.n = b.n && a.inverted = b.inverted && a.ops = b.ops
