open Whisper_util

type t = {
  perm : int array;  (* extended-encoding formula ids, shuffled once *)
  n_candidates : int;
  cands : int array;  (* shared [perm] prefix — callers must not mutate *)
  packed : int array array;
      (* packed truth table per candidate, parallel to [cands]; built
         eagerly at [create] so parallel searches can share them
         read-only across domains without synchronization *)
  truths : (int, Bytes.t) Hashtbl.t;
  truths_lock : Mutex.t;
      (* truth_of is the one lazy memo parallel searches can still reach
         (via the Reference fallback for oversized branches), so its
         Hashtbl is mutex-protected *)
  mutable packed_ext : int array array;
      (* grow-only packed tables for prefixes beyond [n_candidates]
         (exploration sweeps); mutated lazily — single-domain only *)
  leaves : int;
}

let create (cfg : Config.t) =
  let leaves = Config.formula_leaves cfg in
  let ids =
    match cfg.ops with
    | `Extended ->
        Array.init (Whisper_formula.Tree.space_size ~leaves) Fun.id
    | `Classic ->
        (* classic trees, embedded as extended ids so that the encoded
           hint decodes uniformly at run time (inversion additionally
           doubles the family: classic ROMBF also admits the negated
           output via swapping taken/not-taken, which we keep out to
           match the original and/or-only design) *)
        Array.init (Whisper_formula.Tree.classic_space_size ~leaves) (fun c ->
            Whisper_formula.Tree.to_id
              (Whisper_formula.Tree.of_classic_id ~leaves c))
  in
  let rng = Rng.create cfg.seed in
  Rng.shuffle rng ids;
  let frac =
    int_of_float (Float.round (cfg.explore_frac *. float_of_int (Array.length ids)))
  in
  let n_candidates = min (Array.length ids) (max cfg.min_explore frac) in
  let cands = Array.sub ids 0 n_candidates in
  let packed =
    Array.map
      (fun id ->
        Whisper_formula.Tree.packed_truth_table
          (Whisper_formula.Tree.of_id ~leaves id))
      cands
  in
  {
    perm = ids;
    n_candidates;
    cands;
    packed;
    truths = Hashtbl.create 256;
    truths_lock = Mutex.create ();
    packed_ext = [||];
    leaves;
  }

let space t = Array.length t.perm
let candidates t = t.cands
let packed_candidates t = t.packed

let candidates_n t n =
  if n = t.n_candidates then t.cands
  else Array.sub t.perm 0 (min n (Array.length t.perm))

let tree_of t id = Whisper_formula.Tree.of_id ~leaves:t.leaves id

let packed_n t n =
  let n = min n (Array.length t.perm) in
  if n <= t.n_candidates then t.packed
  else begin
    if Array.length t.packed_ext < n then begin
      let old = t.packed_ext in
      let ext =
        Array.init n (fun i ->
            if i < Array.length old then old.(i)
            else if i < t.n_candidates then t.packed.(i)
            else
              Whisper_formula.Tree.packed_truth_table (tree_of t t.perm.(i)))
      in
      t.packed_ext <- ext
    end;
    t.packed_ext
  end

let truth_of t id =
  Mutex.protect t.truths_lock (fun () ->
      match Hashtbl.find_opt t.truths id with
      | Some b -> b
      | None ->
          let b = Whisper_formula.Tree.truth_table (tree_of t id) in
          Hashtbl.add t.truths id b;
          b)
