(* Tests for the telemetry subsystem: histogram bucket algebra, span
   nesting, the deterministic multi-domain merge (the -j1 == -j4
   value-metric contract, exercised through a real Runner batch), and
   the JSON/Chrome exporters' round trips. *)

open Whisper_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every telemetry test snapshots the process-global registry, so each
   starts from a clean slate. *)
let fresh () =
  Telemetry.set_enabled true;
  Telemetry.reset ()

(* ------------------------------------------------------------------ *)
(* Histogram cells                                                    *)
(* ------------------------------------------------------------------ *)

let test_bucket_boundaries () =
  check_int "v=0" 0 (Telemetry.Hist.bucket_of_value 0);
  check_int "v<0" 0 (Telemetry.Hist.bucket_of_value (-17));
  check_int "v=1" 1 (Telemetry.Hist.bucket_of_value 1);
  (* bucket b >= 1 covers [2^(b-1), 2^b) *)
  for b = 1 to 20 do
    let lo = 1 lsl (b - 1) in
    let hi = (1 lsl b) - 1 in
    check_int "lower edge" b (Telemetry.Hist.bucket_of_value lo);
    check_int "upper edge" b (Telemetry.Hist.bucket_of_value hi);
    let blo, bhi = Telemetry.Hist.bucket_bounds b in
    check_int "bounds lo" lo blo;
    if b < Telemetry.Hist.n_buckets - 1 then check_int "bounds hi" hi bhi
  done;
  (* max_int is 2^62 - 1 on 64-bit OCaml: 62 bits, bucket 62 *)
  check_int "max_int" 62 (Telemetry.Hist.bucket_of_value max_int);
  Alcotest.check_raises "bounds out of range"
    (Invalid_argument "Telemetry.Hist.bucket_bounds") (fun () ->
      ignore (Telemetry.Hist.bucket_bounds Telemetry.Hist.n_buckets))

let hist_of_list vs =
  List.fold_left Telemetry.Hist.observe Telemetry.Hist.empty vs

let test_hist_observe_accounting () =
  let h = hist_of_list [ 3; 0; 700; 3 ] in
  check_int "count" 4 h.Telemetry.Hist.count;
  check_int "sum" 706 h.Telemetry.Hist.sum;
  check_int "min" 0 h.Telemetry.Hist.min_v;
  check_int "max" 700 h.Telemetry.Hist.max_v;
  check_int "bucket of 3 holds two" 2
    h.Telemetry.Hist.buckets.(Telemetry.Hist.bucket_of_value 3)

let qcheck_merge_is_concat =
  QCheck.Test.make ~name:"hist merge == observing the concatenation"
    ~count:200
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (a, b) ->
      Telemetry.Hist.equal
        (Telemetry.Hist.merge (hist_of_list a) (hist_of_list b))
        (hist_of_list (a @ b)))

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"hist merge commutes" ~count:200
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (a, b) ->
      let ha = hist_of_list a and hb = hist_of_list b in
      Telemetry.Hist.equal (Telemetry.Hist.merge ha hb)
        (Telemetry.Hist.merge hb ha))

let qcheck_merge_associative =
  QCheck.Test.make ~name:"hist merge associates" ~count:200
    QCheck.(triple (small_list small_nat) (small_list small_nat)
              (small_list small_nat))
    (fun (a, b, c) ->
      let ha = hist_of_list a
      and hb = hist_of_list b
      and hc = hist_of_list c in
      Telemetry.Hist.equal
        (Telemetry.Hist.merge (Telemetry.Hist.merge ha hb) hc)
        (Telemetry.Hist.merge ha (Telemetry.Hist.merge hb hc)))

let qcheck_merge_empty_identity =
  QCheck.Test.make ~name:"hist empty is the merge identity" ~count:100
    QCheck.(small_list small_nat)
    (fun a ->
      let h = hist_of_list a in
      Telemetry.Hist.equal h (Telemetry.Hist.merge h Telemetry.Hist.empty)
      && Telemetry.Hist.equal h (Telemetry.Hist.merge Telemetry.Hist.empty h))

(* ------------------------------------------------------------------ *)
(* Counters, spans, enable gate                                       *)
(* ------------------------------------------------------------------ *)

let test_counters_aggregate () =
  fresh ();
  let c = Telemetry.counter "test.alpha" in
  Telemetry.incr c;
  Telemetry.add c 41;
  let snap = Telemetry.snapshot () in
  check_int "counter sums" 42 (Telemetry.counter_value snap "test.alpha");
  check_int "unregistered name reads zero" 0
    (Telemetry.counter_value snap "test.never_registered")

let test_disabled_records_nothing () =
  fresh ();
  let c = Telemetry.counter "test.gated" in
  let h = Telemetry.histogram "test.gated_hist" in
  Telemetry.set_enabled false;
  Telemetry.incr c;
  Telemetry.observe h 7;
  let r = Telemetry.span "test.gated_span" (fun () -> 11) in
  Telemetry.set_enabled true;
  check_int "span still returns" 11 r;
  let snap = Telemetry.snapshot () in
  check_int "counter unchanged" 0 (Telemetry.counter_value snap "test.gated");
  check_bool "no spans" true
    (List.for_all
       (fun s -> s.Telemetry.sp_name <> "test.gated_span")
       (Telemetry.spans snap))

let test_span_nesting () =
  fresh ();
  Telemetry.span "outer" (fun () ->
      Telemetry.span "inner" (fun () -> ignore (Sys.opaque_identity 1)));
  Telemetry.span "sibling" (fun () -> ());
  let spans = Telemetry.spans (Telemetry.snapshot ()) in
  let find n = List.find (fun s -> s.Telemetry.sp_name = n) spans in
  let outer = find "outer" and inner = find "inner" and sib = find "sibling" in
  check_int "three spans" 3 (List.length spans);
  check_int "outer at depth 0" 0 outer.Telemetry.sp_depth;
  check_int "inner nested once" 1 inner.Telemetry.sp_depth;
  check_int "sibling back at depth 0" 0 sib.Telemetry.sp_depth;
  let inside =
    inner.Telemetry.sp_start_s >= outer.Telemetry.sp_start_s
    && inner.Telemetry.sp_start_s +. inner.Telemetry.sp_dur_s
       <= outer.Telemetry.sp_start_s +. outer.Telemetry.sp_dur_s +. 1e-6
  in
  check_bool "inner window inside outer" true inside;
  check_bool "sibling starts after outer" true
    (sib.Telemetry.sp_start_s
    >= outer.Telemetry.sp_start_s +. outer.Telemetry.sp_dur_s -. 1e-6)

let test_span_survives_exception () =
  fresh ();
  (try Telemetry.span "raiser" (fun () -> failwith "boom")
   with Failure _ -> ());
  let spans = Telemetry.spans (Telemetry.snapshot ()) in
  check_bool "span recorded despite raise" true
    (List.exists (fun s -> s.Telemetry.sp_name = "raiser") spans)

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)
(* ------------------------------------------------------------------ *)

let populate () =
  fresh ();
  let c = Telemetry.counter "test.export_counter" in
  let h = Telemetry.histogram "test.export_hist" in
  Telemetry.add c 5;
  Telemetry.observe h 9;
  Telemetry.observe h 1300;
  Telemetry.span "test.export_span" (fun () -> ());
  Telemetry.snapshot ()

let test_json_round_trip () =
  let snap = populate () in
  let s = Telemetry.to_json_string snap in
  match Sjson.parse s with
  | Error e -> Alcotest.failf "metrics JSON does not re-parse: %s" e
  | Ok v ->
      check_bool "parse inverts print" true
        (Sjson.equal v (Telemetry.to_json snap));
      (match Option.bind (Sjson.member "version" v) Sjson.int with
      | Some ver -> check_int "schema version" Telemetry.schema_version ver
      | None -> Alcotest.fail "missing version member");
      (match Sjson.member "schema" v with
      | Some (Sjson.Str "whisper-metrics") -> ()
      | _ -> Alcotest.fail "missing schema tag");
      let stripped = Telemetry.strip_wall_time v in
      check_bool "strip removes spans" true
        (Sjson.member "spans" stripped = None);
      check_bool "strip keeps counters" true
        (Sjson.member "counters" stripped <> None)

let test_chrome_trace_parses () =
  let snap = populate () in
  match Sjson.parse (Telemetry.to_chrome snap) with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok v -> (
      match Option.bind (Sjson.member "traceEvents" v) Sjson.arr with
      | Some evs ->
          check_bool "one event per span" true
            (List.length evs = List.length (Telemetry.spans snap));
          List.iter
            (fun ev ->
              match Sjson.member "ph" ev with
              | Some (Sjson.Str "X") -> ()
              | _ -> Alcotest.fail "span event is not a complete event")
            evs
      | None -> Alcotest.fail "missing traceEvents array")

let test_summary_lines_nonzero_only () =
  fresh ();
  let a = Telemetry.counter "test.nonzero" in
  ignore (Telemetry.counter "test.zero");
  Telemetry.add a 3;
  let lines = Telemetry.summary_lines (Telemetry.snapshot ()) in
  check_bool "nonzero listed" true
    (List.mem "test.nonzero = 3" lines);
  check_bool "zero counters omitted" true
    (List.for_all
       (fun l -> not (String.length l >= 9 && String.sub l 0 9 = "test.zero"))
       lines)

(* ------------------------------------------------------------------ *)
(* Determinism across domains, through a real Runner batch            *)
(* ------------------------------------------------------------------ *)

let batch_value_metrics ~jobs =
  fresh ();
  let app = Option.get (Whisper_trace.Workloads.by_name "cassandra") in
  let ctx = Whisper_sim.Runner.create_ctx ~events:6_000 ~jobs () in
  Whisper_sim.Runner.run_batch ctx
    [
      Whisper_sim.Runner.sim app Whisper_sim.Runner.Baseline;
      Whisper_sim.Runner.sim app Whisper_sim.Runner.Ideal;
      Whisper_sim.Runner.sim app
        (Whisper_sim.Runner.Whisper Whisper_core.Config.default);
    ];
  let snap = Telemetry.snapshot () in
  let json = Telemetry.strip_wall_time (Telemetry.to_json snap) in
  (Sjson.to_string json, snap)

let test_j1_j4_value_metrics_identical () =
  let m1, snap1 = batch_value_metrics ~jobs:1 in
  let m4, _ = batch_value_metrics ~jobs:4 in
  Alcotest.(check string) "stripped metrics byte-identical" m1 m4;
  (* sanity: the batch actually recorded work *)
  check_bool "events counted" true
    (Telemetry.counter_value snap1 "machine.events" > 0);
  check_bool "sims counted" true
    (Telemetry.counter_value snap1 "runner.sims" = 3);
  check_bool "analysis ran" true
    (Telemetry.counter_value snap1 "analyze.runs" = 1)

(* ------------------------------------------------------------------ *)
(* Sjson primitives the exporters and checker lean on                 *)
(* ------------------------------------------------------------------ *)

let qcheck_sjson_number_round_trip =
  QCheck.Test.make ~name:"sjson int round trip" ~count:300
    QCheck.(int_range (-1_000_000_000) 1_000_000_000)
    (fun n ->
      match Sjson.parse (Sjson.to_string (Sjson.of_int n)) with
      | Ok v -> Sjson.int v = Some n
      | Error _ -> false)

let test_sjson_parse_basics () =
  (match Sjson.parse {| {"a": [1, 2.5, "x\ny", true, null], "b": {}} |} with
  | Ok (Sjson.Obj [ ("a", Sjson.Arr [ _; _; Sjson.Str s; _; Sjson.Null ]); ("b", Sjson.Obj []) ])
    ->
      Alcotest.(check string) "escapes decode" "x\ny" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  check_bool "trailing garbage rejected" true
    (match Sjson.parse "1 2" with Error _ -> true | Ok _ -> false);
  check_bool "unterminated string rejected" true
    (match Sjson.parse "\"abc" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "telemetry"
    [
      ( "hist",
        Alcotest.
          [
            test_case "bucket boundaries" `Quick test_bucket_boundaries;
            test_case "observe accounting" `Quick test_hist_observe_accounting;
          ]
        @ qsuite
            [
              qcheck_merge_is_concat;
              qcheck_merge_commutative;
              qcheck_merge_associative;
              qcheck_merge_empty_identity;
            ] );
      ( "recording",
        Alcotest.
          [
            test_case "counters aggregate" `Quick test_counters_aggregate;
            test_case "disabled records nothing" `Quick
              test_disabled_records_nothing;
            test_case "span nesting" `Quick test_span_nesting;
            test_case "span survives exception" `Quick
              test_span_survives_exception;
          ] );
      ( "export",
        Alcotest.
          [
            test_case "json round trip" `Quick test_json_round_trip;
            test_case "chrome trace parses" `Quick test_chrome_trace_parses;
            test_case "summary lines" `Quick test_summary_lines_nonzero_only;
          ] );
      ( "determinism",
        Alcotest.
          [
            test_case "j1 == j4 value metrics (real batch)" `Quick
              test_j1_j4_value_metrics_identical;
          ] );
      ( "sjson",
        Alcotest.[ test_case "parse basics" `Quick test_sjson_parse_basics ]
        @ qsuite [ qcheck_sjson_number_round_trip ] );
    ]
