open Whisper_util

type kind =
  | Always_taken
  | Never_taken
  | Bias of float
  | Loop of { period : int }
  | Short_formula of { len : int; table : int }
  | Hashed_formula of { len_idx : int; formula_id : int }
  | Parity of { len : int; step : int }
  | Ctx_prf of { len : int; seed : int; p_taken : float }
  | Random of float

type t = { kind : kind; noise : float }

let formula_leaves = 8

type ctx = {
  c_lengths : int array;
  hist : History.t;
  folded : History.Folded.t array;
  loop_counters : int array;
  (* Formula truth tables are shared across branches with the same id. *)
  tables : (int, Bytes.t) Hashtbl.t;
  chunk : int;
}

let make_ctx ~lengths ~n_branches ~chunk =
  let max_len = Array.fold_left max 1 lengths in
  {
    c_lengths = Array.copy lengths;
    hist = History.create ~depth:(max 64 (2 * max_len));
    folded =
      Array.map (fun len -> History.Folded.create ~len ~chunk) lengths;
    loop_counters = Array.make (max 1 n_branches) 0;
    tables = Hashtbl.create 64;
    chunk;
  }

let lengths ctx = ctx.c_lengths
let history ctx = ctx.hist
let hash_at ctx len_idx = History.Folded.value ctx.folded.(len_idx)

let table_of ctx formula_id =
  match Hashtbl.find_opt ctx.tables formula_id with
  | Some table -> table
  | None ->
      let tree = Whisper_formula.Tree.of_id ~leaves:formula_leaves formula_id in
      let table = Whisper_formula.Tree.truth_table tree in
      Hashtbl.add ctx.tables formula_id table;
      table

let eval_kind ctx ~rng ~branch = function
  | Always_taken -> true
  | Never_taken -> false
  | Bias p -> Rng.bernoulli rng p
  | Loop { period } ->
      let c = ctx.loop_counters.(branch) in
      ctx.loop_counters.(branch) <- (c + 1) mod period;
      c < period - 1
  | Short_formula { len; table } ->
      let idx = History.raw_window ctx.hist len in
      (table lsr idx) land 1 = 1
  | Hashed_formula { len_idx; formula_id } ->
      let h = hash_at ctx len_idx in
      Whisper_formula.Tree.eval_tt (table_of ctx formula_id) h
  | Parity { len; step } ->
      let acc = ref 0 in
      let j = ref 0 in
      while !j < len do
        acc := !acc lxor History.get ctx.hist !j;
        j := !j + step
      done;
      !acc = 1
  | Ctx_prf { len; seed; p_taken } ->
      let w = History.raw_window ctx.hist len in
      let z = (seed * 0x9E3779B1) lxor (w * 0x85EBCA77) in
      let z = (z lxor (z lsr 31)) * 0xC2B2AE3D in
      let z = (z lxor (z lsr 29)) land 0x3FFFFFFF in
      float_of_int z /. 1073741824.0 < p_taken
  | Random p -> Rng.bernoulli rng p

let eval ctx ~rng ~branch t =
  let base = eval_kind ctx ~rng ~branch t.kind in
  if t.noise > 0.0 && Rng.bernoulli rng t.noise then not base else base

let record ctx taken = History.push_all ctx.hist ctx.folded taken

let kind_name = function
  | Always_taken -> "always-taken"
  | Never_taken -> "never-taken"
  | Bias _ -> "bias"
  | Loop _ -> "loop"
  | Short_formula _ -> "short-formula"
  | Hashed_formula _ -> "hashed-formula"
  | Parity _ -> "parity"
  | Ctx_prf _ -> "ctx-prf"
  | Random _ -> "random"

let pp fmt t =
  match t.kind with
  | Bias p -> Format.fprintf fmt "bias(%.2f)+n%.2f" p t.noise
  | Loop { period } -> Format.fprintf fmt "loop(%d)+n%.2f" period t.noise
  | Short_formula { len; table } ->
      Format.fprintf fmt "short(len=%d,tbl=%x)+n%.2f" len table t.noise
  | Hashed_formula { len_idx; formula_id } ->
      Format.fprintf fmt "hashed(idx=%d,f=%d)+n%.2f" len_idx formula_id t.noise
  | Parity { len; step } ->
      Format.fprintf fmt "parity(len=%d,step=%d)+n%.2f" len step t.noise
  | Ctx_prf { len; seed = _; p_taken } ->
      Format.fprintf fmt "ctx-prf(len=%d,p=%.2f)+n%.2f" len p_taken t.noise
  | Random p -> Format.fprintf fmt "random(%.2f)" p
  | k -> Format.fprintf fmt "%s+n%.2f" (kind_name k) t.noise
