let protocol_version = 1
let max_frame = 1 lsl 24

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

type reader = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable len : int;  (** valid bytes at the front of [buf] *)
}

let reader fd = { fd; buf = Bytes.create 8192; len = 0 }
let reader_fd r = r.fd

let ensure_capacity r need =
  if Bytes.length r.buf < need then begin
    let nb = Bytes.create (max need (2 * Bytes.length r.buf)) in
    Bytes.blit r.buf 0 nb 0 r.len;
    r.buf <- nb
  end

let feed r =
  ensure_capacity r (r.len + 4096);
  match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
  | 0 -> `Eof
  | n ->
      r.len <- r.len + n;
      `Data
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof

let frame_len r =
  if r.len < 4 then None
  else
    let b i = Char.code (Bytes.get r.buf i) in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then
      Whisper_error.raise_error Whisper_error.Worker
        (Whisper_error.Count_overflow { count = n; remaining = max_frame });
    Some n

let next_frame r =
  match frame_len r with
  | None -> None
  | Some n ->
      if r.len < 4 + n then None
      else begin
        let payload = Bytes.sub r.buf 4 n in
        Bytes.blit r.buf (4 + n) r.buf 0 (r.len - 4 - n);
        r.len <- r.len - 4 - n;
        Some payload
      end

let rec read_frame r =
  match next_frame r with
  | Some f -> Some f
  | None -> ( match feed r with `Eof -> None | `Data -> read_frame r)

let write_all fd b off len =
  let off = ref off and left = ref len in
  while !left > 0 do
    let n = Unix.write fd b !off !left in
    off := !off + n;
    left := !left - n
  done

let write_frame fd payload =
  let n = Bytes.length payload in
  if n > max_frame then invalid_arg "Ipc.write_frame: frame too large";
  let framed = Bytes.create (4 + n) in
  Bytes.set framed 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set framed 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set framed 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set framed 3 (Char.chr (n land 0xFF));
  Bytes.blit payload 0 framed 4 n;
  write_all fd framed 0 (4 + n)

(* ------------------------------------------------------------------ *)
(* Messages                                                           *)
(* ------------------------------------------------------------------ *)

type init = {
  events : int;
  baseline_kb : int;
  cache_dir : string;
  replay : string;
  faults : float;
  fault_seed : int;
  heartbeat_s : float;
  hang_timeout_s : float;
}

type to_worker =
  | Init of init
  | Item of { seq : int; attempt : int; key : string; spec : string }
  | Shutdown

type outcome = Completed of { digest : string } | Failed of { reason : string }

type from_worker =
  | Hello of { pid : int }
  | Heartbeat of { seq : int }
  | Finished of { seq : int; key : string; outcome : outcome }

let tag_init = 0
let tag_item = 1
let tag_shutdown = 2
let tag_hello = 10
let tag_heartbeat = 11
let tag_finished = 12

let encode_to_worker m =
  let w = Binio.Writer.create ~capacity:256 () in
  (match m with
  | Init i ->
      Binio.Writer.varint w tag_init;
      Binio.Writer.varint w protocol_version;
      Binio.Writer.varint w i.events;
      Binio.Writer.varint w i.baseline_kb;
      Binio.Writer.string w i.cache_dir;
      Binio.Writer.string w i.replay;
      Binio.Writer.float64 w i.faults;
      Binio.Writer.varint w i.fault_seed;
      Binio.Writer.float64 w i.heartbeat_s;
      Binio.Writer.float64 w i.hang_timeout_s
  | Item { seq; attempt; key; spec } ->
      Binio.Writer.varint w tag_item;
      Binio.Writer.varint w seq;
      Binio.Writer.varint w attempt;
      Binio.Writer.string w key;
      Binio.Writer.string w spec
  | Shutdown -> Binio.Writer.varint w tag_shutdown);
  Binio.Writer.contents w

let decode_to_worker b =
  Whisper_error.protect Whisper_error.Worker (fun () ->
      let r = Binio.Reader.create b in
      let toff = Binio.Reader.pos r in
      match Binio.Reader.varint r with
      | t when t = tag_init ->
          let voff = Binio.Reader.pos r in
          let v = Binio.Reader.varint r in
          if v <> protocol_version then
            Whisper_error.raise_error ~offset:voff Whisper_error.Worker
              (Whisper_error.Version_mismatch
                 { got = v; expected = protocol_version });
          let events = Binio.Reader.varint r in
          let baseline_kb = Binio.Reader.varint r in
          let cache_dir = Binio.Reader.string r in
          let replay = Binio.Reader.string r in
          let faults = Binio.Reader.float64 r in
          let fault_seed = Binio.Reader.varint r in
          let heartbeat_s = Binio.Reader.float64 r in
          let hang_timeout_s = Binio.Reader.float64 r in
          Init
            {
              events;
              baseline_kb;
              cache_dir;
              replay;
              faults;
              fault_seed;
              heartbeat_s;
              hang_timeout_s;
            }
      | t when t = tag_item ->
          let seq = Binio.Reader.varint r in
          let attempt = Binio.Reader.varint r in
          let key = Binio.Reader.string r in
          let spec = Binio.Reader.string r in
          Item { seq; attempt; key; spec }
      | t when t = tag_shutdown -> Shutdown
      | t ->
          Whisper_error.raise_error ~offset:toff Whisper_error.Worker
            (Whisper_error.Out_of_range (Printf.sprintf "message tag %d" t)))

let encode_from_worker m =
  let w = Binio.Writer.create ~capacity:128 () in
  (match m with
  | Hello { pid } ->
      Binio.Writer.varint w tag_hello;
      Binio.Writer.varint w pid
  | Heartbeat { seq } ->
      Binio.Writer.varint w tag_heartbeat;
      Binio.Writer.varint w seq
  | Finished { seq; key; outcome } -> (
      Binio.Writer.varint w tag_finished;
      Binio.Writer.varint w seq;
      Binio.Writer.string w key;
      match outcome with
      | Completed { digest } ->
          Binio.Writer.varint w 0;
          Binio.Writer.string w digest
      | Failed { reason } ->
          Binio.Writer.varint w 1;
          Binio.Writer.string w reason));
  Binio.Writer.contents w

let decode_from_worker b =
  Whisper_error.protect Whisper_error.Worker (fun () ->
      let r = Binio.Reader.create b in
      let toff = Binio.Reader.pos r in
      match Binio.Reader.varint r with
      | t when t = tag_hello -> Hello { pid = Binio.Reader.varint r }
      | t when t = tag_heartbeat -> Heartbeat { seq = Binio.Reader.varint r }
      | t when t = tag_finished ->
          let seq = Binio.Reader.varint r in
          let key = Binio.Reader.string r in
          let ooff = Binio.Reader.pos r in
          let outcome =
            match Binio.Reader.varint r with
            | 0 -> Completed { digest = Binio.Reader.string r }
            | 1 -> Failed { reason = Binio.Reader.string r }
            | c ->
                Whisper_error.raise_error ~offset:ooff Whisper_error.Worker
                  (Whisper_error.Out_of_range
                     (Printf.sprintf "outcome tag %d" c))
          in
          Finished { seq; key; outcome }
      | t ->
          Whisper_error.raise_error ~offset:toff Whisper_error.Worker
            (Whisper_error.Out_of_range (Printf.sprintf "message tag %d" t)))

let send_to_worker fd m = write_frame fd (encode_to_worker m)
let send_from_worker fd m = write_frame fd (encode_from_worker m)
