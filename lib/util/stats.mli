(** Small statistics helpers used by the experiment harness and reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 for an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float
(** Minimum and maximum.  @raise Invalid_argument on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in \[0,100\], linear interpolation on a
    sorted copy.  @raise Invalid_argument on empty input. *)

val pct : float -> float -> float
(** [pct part whole] is [100 * part / whole], 0 when [whole = 0]. *)

val speedup_pct : baseline:float -> improved:float -> float
(** [speedup_pct ~baseline ~improved] where both are cycle counts:
    percentage speedup of the improved configuration over the baseline,
    i.e. [100 * (baseline / improved - 1)]. *)

val reduction_pct : baseline:float -> improved:float -> float
(** [reduction_pct ~baseline ~improved] where both are event counts:
    percentage of baseline events eliminated. *)

val cdf_points : float array -> (float * float) list
(** Empirical CDF of the input as (value, cumulative-fraction) pairs on a
    sorted copy. *)
