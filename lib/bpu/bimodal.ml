type table = { ctrs : Bytes.t; mask : int }

let create_table ~log_entries =
  if log_entries < 1 || log_entries > 26 then invalid_arg "Bimodal.create_table";
  let n = 1 lsl log_entries in
  { ctrs = Bytes.make n '\001' (* weakly not-taken *); mask = n - 1 }

let index t pc = (pc lsr 2) land t.mask

let predict_t t ~pc = Char.code (Bytes.unsafe_get t.ctrs (index t pc)) >= 2

let update_t t ~pc ~taken =
  let i = index t pc in
  let c = Char.code (Bytes.unsafe_get t.ctrs i) in
  let c = Counters.update c ~taken ~min:0 ~max:3 in
  Bytes.unsafe_set t.ctrs i (Char.unsafe_chr c)

let bits t = 2 * (t.mask + 1)

let make ~log_entries =
  let t = create_table ~log_entries in
  {
    Predictor.name = Printf.sprintf "bimodal-%dk" ((1 lsl log_entries) / 1024);
    predict = (fun ~pc -> predict_t t ~pc);
    train = (fun ~pc ~taken -> update_t t ~pc ~taken);
    spectate = (fun ~pc:_ ~taken:_ -> ());
    storage_bits = bits t;
    is_oracle = false;
  }
