let tag_end = 0x00
let tag_tnt = 0x01
let tag_tip = 0x02

module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let ensure t n =
    if t.len + n > Bytes.length t.buf then begin
      let cap = max (2 * Bytes.length t.buf) (t.len + n) in
      let nb = Bytes.create cap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  let byte t b =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (b land 0xFF));
    t.len <- t.len + 1

  let varint t v =
    if v < 0 then invalid_arg "Pt_codec.varint";
    let rec go v =
      if v < 0x80 then byte t v
      else begin
        byte t (0x80 lor (v land 0x7F));
        go (v lsr 7)
      end
    in
    go v

  let contents t = Bytes.sub t.buf 0 t.len
end

module E = Whisper_util.Whisper_error

let err ?offset ?context kind = E.raise_error ?offset ?context E.Pt_codec kind

module Reader = struct
  type t = { buf : bytes; mutable pos : int }

  let create buf = { buf; pos = 0 }

  let byte ?context t =
    if t.pos >= Bytes.length t.buf then err ~offset:t.pos ?context E.Truncated;
    let b = Char.code (Bytes.get t.buf t.pos) in
    t.pos <- t.pos + 1;
    b

  (* Same 62-bit guard as {!Binio.Reader.varint}: a malicious run of
     continuation bytes is a typed error, not an undefined shift. *)
  let varint ?context t =
    let rec go shift acc =
      let off = t.pos in
      let b = byte ?context t in
      if shift = 56 && b > 0x3F then
        err ~offset:off ?context E.Varint_overflow;
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0
end

let is_last_in_func (cfg : Cfg.t) block =
  let b = cfg.blocks.(block) in
  let f = cfg.funcs.(b.func) in
  block = f.first_block + f.n_blocks - 1

let flush_tnt w bits =
  match bits with
  | [] -> ()
  | bits ->
      let bits = List.rev bits in
      let count = List.length bits in
      if count > 255 then invalid_arg "Pt_codec: TNT overflow";
      Writer.byte w tag_tnt;
      Writer.byte w count;
      let cur = ref 0 and nbits = ref 0 in
      List.iter
        (fun b ->
          if b then cur := !cur lor (1 lsl !nbits);
          incr nbits;
          if !nbits = 8 then begin
            Writer.byte w !cur;
            cur := 0;
            nbits := 0
          end)
        bits;
      if !nbits > 0 then Writer.byte w !cur

let encode ~cfg events =
  let w = Writer.create () in
  let n = Array.length events in
  if n > 0 then begin
    Writer.byte w tag_tip;
    Writer.varint w events.(0).Branch.block;
    let pending = ref [] in
    let pending_n = ref 0 in
    for i = 0 to n - 1 do
      let e = events.(i) in
      (* Validate the walk: each event must continue from the previous. *)
      if i > 0 then begin
        let prev = events.(i - 1) in
        let pb = cfg.Cfg.blocks.(prev.Branch.block) in
        let self_loop = prev.Branch.taken && pb.loop_back in
        let expected_ok =
          if self_loop then e.Branch.block = prev.Branch.block
          else
            is_last_in_func cfg prev.Branch.block
            || e.Branch.block = prev.Branch.block + 1
        in
        if not expected_ok then
          invalid_arg "Pt_codec.encode: invalid fall-through walk"
      end;
      pending := e.Branch.taken :: !pending;
      incr pending_n;
      let blk = cfg.Cfg.blocks.(e.Branch.block) in
      let self_loop = e.Branch.taken && blk.loop_back in
      let needs_tip = (not self_loop) && is_last_in_func cfg e.Branch.block in
      if needs_tip || !pending_n = 255 then begin
        flush_tnt w !pending;
        pending := [];
        pending_n := 0;
        if needs_tip then
          if i < n - 1 then begin
            Writer.byte w tag_tip;
            Writer.varint w events.(i + 1).Branch.block
          end
          else begin
            (* Stream ends at a function boundary: record the successor so
               the final event's next_addr survives the round trip. *)
            Writer.byte w tag_tip;
            let succ =
              (* find the block whose addr matches next_addr *)
              let rec bsearch lo hi =
                if lo > hi then
                  invalid_arg "Pt_codec.encode: dangling next_addr"
                else
                  let mid = (lo + hi) / 2 in
                  let b = cfg.Cfg.blocks.(mid) in
                  if b.addr = e.Branch.next_addr then mid
                  else if b.addr < e.Branch.next_addr then bsearch (mid + 1) hi
                  else bsearch lo (mid - 1)
              in
              bsearch 0 (Array.length cfg.Cfg.blocks - 1)
            in
            Writer.varint w succ
          end
      end
    done;
    flush_tnt w !pending
  end;
  Writer.byte w tag_end;
  Writer.contents w

let decode_exn ~cfg buf =
  let r = Reader.create buf in
  let n_blocks = Array.length cfg.Cfg.blocks in
  let out = ref [] in
  let cur = ref (-1) in
  let emit ~packet_off ~context taken succ =
    if !cur < 0 || !cur >= n_blocks then
      err ~offset:packet_off ~context (E.Out_of_range "current block");
    if succ < 0 || succ >= n_blocks then
      err ~offset:packet_off ~context (E.Out_of_range "successor block");
    let b = cfg.Cfg.blocks.(!cur) in
    out :=
      {
        Branch.block = !cur;
        pc = b.branch_pc;
        taken;
        instrs = b.instrs;
        next_addr = cfg.Cfg.blocks.(succ).addr;
      }
      :: !out;
    cur := succ
  in
  let rec loop pending =
    (* [pending] holds a taken-bit waiting for a TIP to resolve its
       successor (the branch ended a function). *)
    let packet_off = r.Reader.pos in
    let tag = Reader.byte r in
    if tag = tag_end then begin
      match pending with
      | Some _ ->
          err ~offset:packet_off ~context:"END"
            (E.Malformed "dangling function-end branch")
      | None -> ()
    end
    else if tag = tag_tip then begin
      let target = Reader.varint ~context:"TIP" r in
      if target >= n_blocks then
        err ~offset:packet_off ~context:"TIP" (E.Out_of_range "TIP target");
      (match pending with
      | Some taken -> emit ~packet_off ~context:"TIP" taken target
      | None -> cur := target);
      loop None
    end
    else if tag = tag_tnt then begin
      if pending <> None then
        err ~offset:packet_off ~context:"TNT"
          (E.Malformed "TNT while TIP expected");
      let count = Reader.byte ~context:"TNT" r in
      let bytes_needed = (count + 7) / 8 in
      let bitmap = Array.init bytes_needed (fun _ -> Reader.byte ~context:"TNT" r) in
      if count > 0 && !cur < 0 then
        err ~offset:packet_off ~context:"TNT" (E.Malformed "TNT before any TIP");
      let carried = ref None in
      for i = 0 to count - 1 do
        if !carried <> None then
          err ~offset:packet_off ~context:"TNT"
            (E.Malformed "TNT crosses function end");
        let taken = (bitmap.(i / 8) lsr (i mod 8)) land 1 = 1 in
        let blk = cfg.Cfg.blocks.(!cur) in
        if taken && blk.Cfg.loop_back then emit ~packet_off ~context:"TNT" taken !cur
        else if is_last_in_func cfg !cur then
          (* successor comes from the next TIP packet *)
          carried := Some taken
        else emit ~packet_off ~context:"TNT" taken (!cur + 1)
      done;
      loop !carried
    end
    else
      err ~offset:packet_off
        (E.Malformed (Printf.sprintf "unknown packet tag 0x%02X" tag))
  in
  loop None;
  Array.of_list (List.rev !out)

let decode ~cfg buf = E.protect E.Pt_codec (fun () -> decode_exn ~cfg buf)

let compression_ratio ~cfg events =
  if Array.length events = 0 then 0.0
  else
    float_of_int (Bytes.length (encode ~cfg events))
    /. float_of_int (Array.length events)
