open Whisper_trace

type placement = {
  branch_block : int;
  host_block : int;
  hint : Brhint.t;
  branch_pc : int;
  cond_prob : float;
}

type t = {
  placements : placement list;
  by_host : (int, placement list) Hashtbl.t;
  dropped : int;
}

(* Estimate, over a trace, how often each candidate predecessor is followed
   by the hinted branch within the lookahead window. *)
let correlate ~window ~trace_events ~(cfg : Cfg.t) ~source ~branches =
  let hinted = Hashtbl.create (List.length branches * 2) in
  List.iter
    (fun b -> Hashtbl.replace hinted b (Cfg.predecessors_in_func cfg b))
    branches;
  let n_blocks = Array.length cfg.blocks in
  let exec = Array.make n_blocks 0 in
  let last_seen = Array.make n_blocks min_int in
  let cooccur = Whisper_util.Histo.create ~size_hint:1024 () in
  for now = 0 to trace_events - 1 do
    let e = source () in
    let b = e.Branch.block in
    exec.(b) <- exec.(b) + 1;
    last_seen.(b) <- now;
    match Hashtbl.find_opt hinted b with
    | None -> ()
    | Some preds ->
        List.iter
          (fun p ->
            if last_seen.(p) >= now - window then
              Whisper_util.Histo.incr cooccur ((p * n_blocks) + b))
          preds
  done;
  fun ~pred ~branch ->
    if exec.(pred) = 0 then 0.0
    else
      float_of_int (Whisper_util.Histo.count cooccur ((pred * n_blocks) + branch))
      /. float_of_int exec.(pred)

let default_trace_events = 200_000

let plan ?(window = 64) ?(threshold = 0.9) ?(trace_events = default_trace_events)
    (config : Config.t) (cfg : Cfg.t) ~source ~hints =
  let cond_prob =
    correlate ~window ~trace_events ~cfg ~source
      ~branches:(List.map fst hints)
  in
  let placements = ref [] in
  let dropped = ref 0 in
  List.iter
    (fun (branch_block, (choice : History_select.choice)) ->
      let blk = cfg.blocks.(branch_block) in
      let reachable host =
        (blk.branch_pc - cfg.blocks.(host).addr) / Cfg.instr_bytes
        <= config.max_pc_offset
      in
      (* earliest qualifying predecessor wins (max timeliness) *)
      let host =
        List.find_opt
          (fun p ->
            reachable p && cond_prob ~pred:p ~branch:branch_block >= threshold)
          (Cfg.predecessors_in_func cfg branch_block)
      in
      let host, prob =
        match host with
        | Some p -> (Some p, cond_prob ~pred:p ~branch:branch_block)
        | None ->
            (* fall back to the branch's own block *)
            if reachable branch_block then (Some branch_block, 1.0)
            else (None, 0.0)
      in
      match host with
      | None -> incr dropped
      | Some host_block ->
          let pc_offset =
            (blk.branch_pc - cfg.blocks.(host_block).addr) / Cfg.instr_bytes
          in
          let hint =
            Brhint.make ~len_idx:choice.History_select.len_idx
              ~formula_id:choice.formula_id ~bias:choice.bias ~pc_offset
          in
          let branch_pc =
            Brhint.branch_pc hint ~hint_addr:cfg.blocks.(host_block).addr
          in
          assert (branch_pc = blk.branch_pc);
          placements :=
            { branch_block; host_block; hint; branch_pc; cond_prob = prob }
            :: !placements)
    hints;
  let by_host = Hashtbl.create 256 in
  List.iter
    (fun p ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_host p.host_block)
      in
      Hashtbl.replace by_host p.host_block (p :: existing))
    !placements;
  { placements = List.rev !placements; by_host; dropped = !dropped }

let hints_at t ~block =
  Option.value ~default:[] (Hashtbl.find_opt t.by_host block)

(* CSR-style packed view of a plan, for the compiled runtime: the
   brhints hosted by block [b] are entries [index.(b) .. index.(b+1)-1],
   so the per-event "which hints execute here" lookup is two array reads
   instead of a Hashtbl probe plus a list walk.  Entry order within a
   block matches [hints_at] exactly (the compiled and interpretive
   runtimes must insert into the hint buffer in the same order, or their
   eviction sequences — and hence their results — would diverge). *)
module Packed = struct
  type plan = t

  type t = {
    index : int array;
    branch_pc : int array;
    hint : int array;
    max_host : int;
  }

  let of_plan (p : plan) =
    let max_host =
      List.fold_left (fun m pl -> max m pl.host_block) (-1) p.placements
    in
    let n = List.length p.placements in
    let index = Array.make (max_host + 2) 0 in
    let branch_pc = Array.make n 0 in
    let hint = Array.make n 0 in
    let cursor = ref 0 in
    for b = 0 to max_host do
      index.(b) <- !cursor;
      List.iter
        (fun (pl : placement) ->
          branch_pc.(!cursor) <- pl.branch_pc;
          hint.(!cursor) <- Brhint.encode pl.hint;
          incr cursor)
        (hints_at p ~block:b)
    done;
    index.(max_host + 1) <- !cursor;
    assert (!cursor = n);
    { index; branch_pc; hint; max_host }

  let n_entries t = Array.length t.branch_pc
  let max_host t = t.max_host
  let index t = t.index
  let branch_pc t = t.branch_pc
  let hint t = t.hint
end

let static_overhead_pct t (cfg : Cfg.t) =
  let static_instrs = cfg.footprint / Cfg.instr_bytes in
  Whisper_util.Stats.pct
    (float_of_int (List.length t.placements))
    (float_of_int static_instrs)

let dynamic_overhead_pct t (cfg : Cfg.t) ~source ~events =
  ignore cfg;
  let hint_execs = ref 0 and instrs = ref 0 in
  for _ = 1 to events do
    let e = source () in
    instrs := !instrs + e.Branch.instrs;
    match Hashtbl.find_opt t.by_host e.Branch.block with
    | Some l -> hint_execs := !hint_execs + List.length l
    | None -> ()
  done;
  Whisper_util.Stats.pct (float_of_int !hint_execs) (float_of_int !instrs)
