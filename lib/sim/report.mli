(** Tabular results: one structure per reproduced table/figure, printed
    aligned to stdout and exportable as CSV. *)

type timing = {
  wall_s : float;  (** end-to-end wall time of the experiment *)
  sims : int;  (** timing-model simulations actually executed *)
  sim_seconds : float;  (** wall time summed over those simulations *)
  cache_hits : int;  (** results served from the persistent cache *)
  cache_misses : int;  (** persistent-cache lookups that missed *)
}

type faults = {
  injected : int;  (** faults the injector decided to fire *)
  observed : int;  (** task failures/timeouts seen by the batch driver *)
  retries : int;  (** extra attempts beyond the first, across all work *)
  quarantined : int;  (** work items that exhausted their retry budget *)
  cache_write_failures : int;  (** cache entries that failed to persist *)
  cache_corrupt_dropped : int;  (** cache entries dropped as corrupt *)
}

type t = {
  id : string;  (** e.g. "fig12" *)
  title : string;
  header : string list;  (** column names; first column is the row label *)
  rows : (string * float list) list;
  notes : string list;
  timing : timing option;
      (** per-experiment cost accounting; excluded from {!to_csv} so
          exported rows stay byte-identical across job counts and cache
          states *)
  faults : faults option;
      (** degraded-mode accounting; also excluded from {!to_csv} *)
}

val make :
  id:string ->
  title:string ->
  header:string list ->
  ?notes:string list ->
  (string * float list) list ->
  t
(** [timing] starts as [None]. *)

val with_mean : ?label:string -> t -> t
(** Append an arithmetic-mean row over the data rows. *)

val with_timing : timing -> t -> t
(** Attach cost accounting, printed as a trailing [timing:] line. *)

val with_faults : faults -> t -> t
(** Attach degraded-mode accounting, printed as a trailing [faults:]
    line.  Cells of quarantined work render as [DEGRADED] (their values
    are NaN sentinels). *)

val timing_line : timing -> string
val faults_line : faults -> string

val print : t -> unit

val to_csv : t -> string

val to_string : t -> string
