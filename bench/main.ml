(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks of the hot primitives (formula
   evaluation, history hashing, predictor lookups, Algorithm 1, the
   randomized trainer, codec and timing-model throughput).

   Part 2 — regeneration of every table and figure of the paper's
   evaluation (one entry per table/figure; see DESIGN.md §4), printing the
   same rows/series the paper reports.

   Part 3 — ablation benches for the design choices DESIGN.md calls out:
   history-hash operation (XOR/AND/OR) and hint-buffer size.

   Environment:
     WHISPER_EVENTS      branch events per simulation   (default 800_000)
     WHISPER_SKIP_MICRO  set to skip part 1
     WHISPER_ONLY        comma-separated experiment ids for part 2
     WHISPER_JOBS        worker domains for part 2's independent
                         simulations (default: recommended domain count)
     WHISPER_CACHE_DIR   enable the persistent result cache rooted at
                         this directory (default: no cache, so figure
                         timings always measure real simulations)
     WHISPER_FAULTS      chaos mode: per-work-item fault probability
                         (default 0.0; failing items are retried, then
                         reported as DEGRADED rows)
     WHISPER_FAULT_SEED  seed of the fault injector (default 42)
     WHISPER_BENCH_SMOKE        short mode for parts 1b/1c/1d (CI)
     WHISPER_SEARCH_BENCH_ONLY  run only part 1b, then exit
     WHISPER_REPLAY_BENCH_ONLY  run only part 1c, then exit
     WHISPER_SERVE_BENCH_ONLY   run only part 1d, then exit
     WHISPER_BENCH_OUT          part 1b output (default BENCH_search.json)
     WHISPER_REPLAY_OUT         part 1c output (default BENCH_replay.json)
     WHISPER_SERVE_OUT          part 1d output (default BENCH_serve.json) *)

open Bechamel
open Toolkit
open Whisper_trace

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let events = env_int "WHISPER_EVENTS" 800_000
let jobs = env_int "WHISPER_JOBS" (Whisper_util.Pool.default_jobs ())
let cache_dir = Sys.getenv_opt "WHISPER_CACHE_DIR"

let faults =
  match Sys.getenv_opt "WHISPER_FAULTS" with
  | Some v -> float_of_string v
  | None -> 0.0

let fault_seed = env_int "WHISPER_FAULT_SEED" 42

(* ------------------------------------------------------------------ *)
(* Part 1: micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let rng = Whisper_util.Rng.create 42 in
  let tree = Whisper_formula.Tree.of_id ~leaves:8 0x2F31 in
  let tt = Whisper_formula.Tree.truth_table tree in
  let hist = Whisper_util.History.create ~depth:2048 in
  let folded =
    Array.map
      (fun len -> Whisper_util.History.Folded.create ~len ~chunk:8)
      Workloads.lengths
  in
  let tage = Whisper_bpu.Tage_scl.predictor Whisper_bpu.Sizes.standard in
  let app = Option.get (Workloads.by_name "cassandra") in
  let cfg = Workloads.build_cfg app in
  let model = App_model.create ~cfg ~config:app ~input:0 () in
  let src = App_model.source model in
  let buf = Whisper_core.Hint_buffer.create ~size:32 in
  let hint =
    Whisper_core.Brhint.make ~len_idx:5 ~formula_id:123
      ~bias:Whisper_core.Brhint.Formula ~pc_offset:40
  in
  (* small Algorithm 1 instance *)
  let taken = Array.init 256 (fun i -> if i land 3 = 0 then 5 else 0) in
  let not_taken = Array.init 256 (fun i -> if i land 3 = 1 then 3 else 0) in
  let tables = Whisper_core.Algorithm1.tables_of_counts ~taken ~not_taken in
  let rnd = Whisper_core.Randomized.create Whisper_core.Config.default in
  let cands = Whisper_core.Randomized.candidates rnd in
  let counter = ref 0 in
  [
    Test.make ~name:"formula-eval (tree walk)"
      (Staged.stage (fun () ->
           ignore (Whisper_formula.Tree.eval tree (!counter land 0xFF));
           incr counter));
    Test.make ~name:"formula-eval (truth table)"
      (Staged.stage (fun () ->
           ignore (Whisper_formula.Tree.eval_tt tt (!counter land 0xFF));
           incr counter));
    Test.make ~name:"truth-table build (256 entries)"
      (Staged.stage (fun () -> ignore (Whisper_formula.Tree.truth_table tree)));
    Test.make ~name:"folded-history push (16 lengths)"
      (Staged.stage (fun () ->
           Whisper_util.History.push_all hist folded (Whisper_util.Rng.bool rng)));
    Test.make ~name:"tage-scl predict+train"
      (Staged.stage (fun () ->
           let pc = 0x40_0000 + (!counter land 0xFFF) * 4 in
           incr counter;
           let p = tage.Whisper_bpu.Predictor.predict ~pc in
           tage.train ~pc ~taken:(p || !counter land 7 = 0)));
    Test.make ~name:"app-model event generation"
      (Staged.stage (fun () -> ignore (src ())));
    Test.make ~name:"algorithm1 (32 candidate formulas)"
      (Staged.stage (fun () ->
           ignore
             (Whisper_core.Algorithm1.find tables ~candidates:cands
                ~truth_of:(Whisper_core.Randomized.truth_of rnd))));
    Test.make ~name:"hint-buffer insert+probe"
      (Staged.stage (fun () ->
           Whisper_core.Hint_buffer.insert buf ~branch_pc:(!counter land 63)
             (!counter land 0xFF);
           ignore
             (Whisper_core.Hint_buffer.probe buf ~branch_pc:(!counter land 63));
           incr counter));
    Test.make ~name:"brhint encode+decode"
      (Staged.stage (fun () ->
           ignore (Whisper_core.Brhint.decode (Whisper_core.Brhint.encode hint))));
  ]

let run_micro () =
  let tests = micro_tests () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg_b =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  Printf.printf "== micro-benchmarks ==\n%!";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg_b [ Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | _ -> nan
          in
          Printf.printf "  %-36s %10.1f ns/op\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* Part 1b: search-engine benchmark (BENCH_search.json)               *)
(* ------------------------------------------------------------------ *)

(* Times the bit-parallel Algorithm-1 engine against the retained naive
   reference path on a real datacenter profile, checks the two agree on
   every branch, and writes the numbers to a machine-readable JSON file
   so the perf trajectory is tracked across PRs.

   Extra environment:
     WHISPER_BENCH_SMOKE  short mode for CI (small trace, short timing
                          windows)
     WHISPER_BENCH_OUT    output path (default BENCH_search.json) *)

(* ns per call of [f], timed over an adaptively grown repetition count so
   short-running closures still get a stable window. *)
let time_ns ?(min_s = 0.2) f =
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < min_s then go (reps * 4)
    else 1e9 *. dt /. float_of_int reps
  in
  go 1

let search_bench () =
  let smoke = Sys.getenv_opt "WHISPER_BENCH_SMOKE" <> None in
  let n_events = if smoke then 120_000 else min events 600_000 in
  let min_s = if smoke then 0.05 else 0.3 in
  Printf.printf "== search-engine benchmark (cassandra, %d events%s) ==\n%!"
    n_events
    (if smoke then ", smoke mode" else "");
  let app = Option.get (Workloads.by_name "cassandra") in
  let ctx = Whisper_sim.Runner.create_ctx ~events:n_events ~baseline_kb:64 () in
  let profile = Whisper_sim.Runner.profile ctx app in
  let config = Whisper_core.Config.default in
  let rnd = Whisper_core.Randomized.create config in
  let cands = Whisper_core.Randomized.candidates rnd in
  let packed = Whisper_core.Randomized.packed_candidates rnd in
  let nc = Array.length cands in
  let pcs = Profile.candidates profile in
  let n_pcs = Array.length pcs in
  (* --- scoring primitives, on the hottest branch's mid-length tables *)
  let taken = Array.make 256 0 and not_taken = Array.make 256 0 in
  Profile.iter_samples profile ~pc:pcs.(0)
    ~f:(fun ~raw8:_ ~raw56:_ ~hash ~taken:tk ~correct:_ ->
      let k = hash (config.n_lengths / 2) in
      if tk then taken.(k) <- taken.(k) + 1
      else not_taken.(k) <- not_taken.(k) + 1);
  let tables = Whisper_core.Algorithm1.tables_of_counts ~taken ~not_taken in
  let truths = Array.map (Whisper_core.Randomized.truth_of rnd) cands in
  let sink = ref 0 in
  let fnc = float_of_int nc in
  let naive_score_ns =
    time_ns ~min_s (fun () ->
        for i = 0 to nc - 1 do
          sink :=
            !sink + Whisper_core.Algorithm1.mispredictions tables ~truth:truths.(i)
        done)
    /. fnc
  in
  let packed_score_ns =
    time_ns ~min_s (fun () ->
        for i = 0 to nc - 1 do
          sink :=
            !sink
            + Whisper_core.Algorithm1.mispredictions_packed tables
                ~ptruth:packed.(i)
        done)
    /. fnc
  in
  (* --- full formula search, aggregated over every candidate branch's
     mid-length tables: one number per engine for the whole profile's
     search workload rather than a single cherry-picked branch *)
  let fn_pcs = float_of_int (max 1 n_pcs) in
  let mid = config.Whisper_core.Config.n_lengths / 2 in
  let all_tables =
    Array.map
      (fun pc ->
        Array.fill taken 0 256 0;
        Array.fill not_taken 0 256 0;
        Profile.iter_samples profile ~pc
          ~f:(fun ~raw8:_ ~raw56:_ ~hash ~taken:tk ~correct:_ ->
            let k = hash mid in
            if tk then taken.(k) <- taken.(k) + 1
            else not_taken.(k) <- not_taken.(k) + 1);
        Whisper_core.Algorithm1.tables_of_counts ~taken ~not_taken)
      pcs
  in
  let find_ns =
    time_ns ~min_s (fun () ->
        Array.iter
          (fun t ->
            ignore
              (Whisper_core.Algorithm1.find t ~candidates:cands
                 ~truth_of:(Whisper_core.Randomized.truth_of rnd)))
          all_tables)
    /. fn_pcs
  in
  let find_packed_ns =
    time_ns ~min_s (fun () ->
        Array.iter
          (fun t ->
            ignore
              (Whisper_core.Algorithm1.find_packed t ~candidates:cands ~packed))
          all_tables)
    /. fn_pcs
  in
  (* --- the complete per-branch formula search: all history lengths of
     every candidate branch, identical prebuilt tables on both sides.
     The naive reference scores every candidate at every length exactly
     as the seed pipeline did; the packed engine threads the running
     best across lengths ([find_packed_below]) so its floor entry check
     and suffix bound can abandon hopeless lengths and candidates —
     winners are asserted identical *)
  let nl = config.Whisper_core.Config.n_lengths in
  let length_tables =
    Array.map
      (fun pc ->
        Array.init nl (fun l ->
            Array.fill taken 0 256 0;
            Array.fill not_taken 0 256 0;
            Profile.iter_samples profile ~pc
              ~f:(fun ~raw8:_ ~raw56:_ ~hash ~taken:tk ~correct:_ ->
                let k = hash l in
                if tk then taken.(k) <- taken.(k) + 1
                else not_taken.(k) <- not_taken.(k) + 1);
            Whisper_core.Algorithm1.tables_of_counts ~taken ~not_taken))
      pcs
  in
  let search_naive tl =
    let best_l = ref (-1) and best_f = ref (-1) and best_m = ref max_int in
    for l = 0 to nl - 1 do
      let f, m =
        Whisper_core.Algorithm1.find tl.(l) ~candidates:cands
          ~truth_of:(Whisper_core.Randomized.truth_of rnd)
      in
      if m < !best_m then begin
        best_m := m;
        best_l := l;
        best_f := f
      end
    done;
    (!best_l, !best_f, !best_m)
  in
  let search_packed tl =
    let best_l = ref (-1) and best_f = ref (-1) and best_m = ref max_int in
    for l = 0 to nl - 1 do
      match
        Whisper_core.Algorithm1.find_packed_below tl.(l) ~candidates:cands
          ~packed ~cutoff:!best_m
      with
      | Some (_, f, m) ->
          best_m := m;
          best_l := l;
          best_f := f
      | None -> ()
    done;
    (!best_l, !best_f, !best_m)
  in
  Array.iter
    (fun tl ->
      if search_naive tl <> search_packed tl then
        failwith "packed search disagrees with naive search")
    length_tables;
  let search_naive_ns =
    time_ns ~min_s (fun () ->
        Array.iter (fun tl -> ignore (search_naive tl)) length_tables)
    /. fn_pcs
  in
  let search_packed_ns =
    time_ns ~min_s (fun () ->
        Array.iter (fun tl -> ignore (search_packed tl)) length_tables)
    /. fn_pcs
  in
  let tree = Whisper_core.Randomized.tree_of rnd cands.(0) in
  let tt_build_ns =
    time_ns ~min_s (fun () -> ignore (Whisper_formula.Tree.truth_table tree))
  in
  let packed_build_ns =
    time_ns ~min_s (fun () ->
        ignore (Whisper_formula.Tree.packed_truth_table tree))
  in
  (* --- end-to-end per-branch search, optimized vs naive reference *)
  let scratch = Whisper_core.History_select.scratch config in
  Array.iter
    (fun pc ->
      let opt = Whisper_core.History_select.decide ~scratch config rnd profile ~pc in
      let ref_ = Whisper_core.History_select.Reference.decide config rnd profile ~pc in
      if opt <> ref_ then
        failwith (Printf.sprintf "optimized decide disagrees at pc=0x%x" pc))
    pcs;
  let decide_ref_ns =
    time_ns ~min_s (fun () ->
        Array.iter
          (fun pc ->
            ignore
              (Whisper_core.History_select.Reference.decide config rnd profile
                 ~pc))
          pcs)
    /. fn_pcs
  in
  let decide_opt_ns =
    time_ns ~min_s (fun () ->
        Array.iter
          (fun pc ->
            ignore
              (Whisper_core.History_select.decide ~scratch config rnd profile ~pc))
          pcs)
    /. fn_pcs
  in
  (* --- whole-sweep analysis throughput, sequential vs the persistent
     chunk-claiming scheduler at 2 and 4 claimers.  The pool is created
     once, outside every timed region — amortizing domain spawn across
     the fleet's analyses is the point of the persistent scheduler (the
     old per-call pool spent more on spawning than on searching, which
     is where the recorded 0.47x went).  Decisions are asserted
     identical to sequential at every width before any timing is
     trusted; timings are a min-of-3 so millisecond-scale runs are not
     at the mercy of one scheduler hiccup.  In smoke mode the sweep is
     the one cassandra profile (CI time budget); the full bench analyzes
     every datacenter app.  The parallel leg must actually be parallel:
     in smoke mode (CI containers often default to one domain) force at
     least two claimers, and record the width actually used, not the env
     default. *)
  let sweep_profiles =
    if smoke then [| profile |]
    else
      Array.map
        (fun a -> Whisper_sim.Runner.profile ctx a)
        Workloads.datacenter
  in
  let n_sweep = Array.length sweep_profiles in
  let used_jobs = max 2 jobs in
  let host_cores = Domain.recommended_domain_count () in
  let pool = Whisper_util.Pool.shared ~jobs:(max 4 used_jobs - 1) in
  let analyze ~jobs:j p =
    if j <= 1 then Whisper_core.Analyze.run ~config ~jobs:1 p
    else Whisper_core.Analyze.run ~config ~jobs:j ~pool p
  in
  let a1s = Array.map (fun p -> analyze ~jobs:1 p) sweep_profiles in
  let hints =
    Array.fold_left
      (fun acc a -> acc + Whisper_core.Analyze.hint_count a)
      0 a1s
  in
  List.iter
    (fun j ->
      Array.iteri
        (fun i p ->
          let aj = analyze ~jobs:j p in
          if
            aj.Whisper_core.Analyze.decisions
            <> a1s.(i).Whisper_core.Analyze.decisions
          then
            failwith
              (Printf.sprintf "parallel analysis disagrees with sequential (-j%d)" j))
        sweep_profiles)
    (List.sort_uniq compare [ 2; 4; used_jobs ]);
  let time_sweep j =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t =
        Array.fold_left
          (fun acc p ->
            acc +. (analyze ~jobs:j p).Whisper_core.Analyze.training_seconds)
          0.0 sweep_profiles
      in
      if t < !best then best := t
    done;
    !best
  in
  let t1 = time_sweep 1 in
  let t2 = time_sweep 2 in
  let t4 = time_sweep 4 in
  let t_used =
    if used_jobs = 2 then t2
    else if used_jobs = 4 then t4
    else time_sweep used_jobs
  in
  let hps t = float_of_int hints /. max 1e-9 t in
  let scorer_speedup = naive_score_ns /. packed_score_ns in
  let find_speedup = find_ns /. find_packed_ns in
  let search_speedup = search_naive_ns /. search_packed_ns in
  let decide_speedup = decide_ref_ns /. decide_opt_ns in
  let parallel_speedup = t1 /. max 1e-9 t_used in
  let parallel_speedup_j2 = t1 /. max 1e-9 t2 in
  let parallel_speedup_j4 = t1 /. max 1e-9 t4 in
  Printf.printf "  mispredictions     %8.1f -> %7.1f ns/op  (%.1fx)\n"
    naive_score_ns packed_score_ns scorer_speedup;
  Printf.printf "  find (%d cands, %d pcs) %8.1f -> %7.1f ns/call  (%.1fx)\n" nc
    n_pcs find_ns find_packed_ns find_speedup;
  Printf.printf "  search (%d lengths)  %8.1f -> %7.1f ns/pc  (%.1fx)\n" nl
    search_naive_ns search_packed_ns search_speedup;
  Printf.printf "  truth-table build  %8.1f -> %7.1f ns/op  (%.1fx)\n"
    tt_build_ns packed_build_ns (tt_build_ns /. packed_build_ns);
  Printf.printf "  decide (%d pcs)   %8.1f -> %7.1f ns/op  (%.1fx)\n" n_pcs
    decide_ref_ns decide_opt_ns decide_speedup;
  Printf.printf
    "  analysis (%d apps)  %d hints, %.0f hints/s (j1); speedup %.2fx (j2), \
     %.2fx (j4); %d host cores\n\
     %!"
    n_sweep hints (hps t1) parallel_speedup_j2 parallel_speedup_j4 host_cores;
  let out = Option.value ~default:"BENCH_search.json"
      (Sys.getenv_opt "WHISPER_BENCH_OUT")
  in
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  "app": "cassandra",
  "events": %d,
  "smoke": %b,
  "candidate_branches": %d,
  "candidate_formulas": %d,
  "mispredictions_ns": %.2f,
  "mispredictions_packed_ns": %.2f,
  "scorer_speedup": %.2f,
  "find_ns": %.1f,
  "find_packed_ns": %.1f,
  "find_speedup": %.2f,
  "search_naive_ns": %.1f,
  "search_packed_ns": %.1f,
  "search_speedup": %.2f,
  "truth_table_build_ns": %.1f,
  "packed_truth_table_build_ns": %.1f,
  "decide_reference_ns": %.1f,
  "decide_optimized_ns": %.1f,
  "decide_speedup": %.2f,
  "hints": %d,
  "hints_per_sec_j1": %.1f,
  "hints_per_sec_jn": %.1f,
  "sweep_apps": %d,
  "host_cores": %d,
  "jobs": %d,
  "used_jobs": %d,
  "parallel_speedup": %.2f,
  "parallel_speedup_j2": %.2f,
  "parallel_speedup_j4": %.2f,
  "parallel_identical": true
}
|}
    n_events smoke n_pcs nc naive_score_ns packed_score_ns scorer_speedup
    find_ns find_packed_ns find_speedup search_naive_ns search_packed_ns
    search_speedup tt_build_ns packed_build_ns
    decide_ref_ns decide_opt_ns decide_speedup hints (hps t1) (hps t_used)
    n_sweep host_cores used_jobs used_jobs parallel_speedup parallel_speedup_j2
    parallel_speedup_j4;
  close_out oc;
  Printf.printf "  wrote %s\n%!" out;
  ignore !sink

(* ------------------------------------------------------------------ *)
(* Part 1c: trace-replay benchmark (BENCH_replay.json)                *)
(* ------------------------------------------------------------------ *)

(* Times the packed-arena replay path against the closure-source seed
   path at three levels — raw event delivery, single-technique
   simulations, and a multi-technique batch sharing one arena — and
   asserts at every level that the two paths produce byte-identical
   results.  Numbers land in a machine-readable JSON file so the perf
   trajectory is tracked across PRs.

   Extra environment:
     WHISPER_BENCH_SMOKE   short mode for CI
     WHISPER_REPLAY_APP    workload to replay (default cassandra)
     WHISPER_REPLAY_OUT    output path (default BENCH_replay.json) *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let replay_bench () =
  let open Whisper_sim in
  let smoke = Sys.getenv_opt "WHISPER_BENCH_SMOKE" <> None in
  let n_events = if smoke then 120_000 else min events 600_000 in
  let min_s = if smoke then 0.05 else 0.3 in
  let app_name =
    Option.value ~default:"cassandra" (Sys.getenv_opt "WHISPER_REPLAY_APP")
  in
  Printf.printf "== trace-replay benchmark (%s, %d events%s) ==\n%!" app_name
    n_events
    (if smoke then ", smoke mode" else "");
  let app = Option.get (Workloads.by_name app_name) in
  let cfg = Workloads.build_cfg app in
  let fe = float_of_int n_events in
  (* --- raw event delivery: closure generation vs arena build+replay *)
  let src = App_model.source (App_model.create ~cfg ~config:app ~input:1 ()) in
  let sink = ref 0 in
  let closure_gen_ns =
    time_ns ~min_s (fun () ->
        for _ = 1 to n_events do
          let e = src () in
          sink := !sink + e.Branch.pc + e.Branch.instrs
        done)
    /. fe
  in
  let arena =
    Arena.build ~events:n_events (App_model.create ~cfg ~config:app ~input:1 ())
  in
  let arena_build_ns =
    time_ns ~min_s (fun () ->
        ignore
          (Arena.build ~events:n_events
             (App_model.create ~cfg ~config:app ~input:1 ())))
    /. fe
  in
  let arena_replay_ns =
    time_ns ~min_s (fun () ->
        for i = 0 to n_events - 1 do
          sink :=
            !sink + Arena.pc arena i + Arena.instrs arena i
            + Bool.to_int (Arena.taken arena i)
        done)
    /. fe
  in
  (* --- per-technique simulations, closure vs arena over one ctx's
     memoized training artifacts (the training cost is identical on both
     sides and excluded; what differs is event delivery) *)
  (* the paper's technique set: every figure replays the same trace under
     all of these, which is exactly the sharing the arena amortizes *)
  (* whisper variants carry explicit labels — Runner.technique_name
     renders every config as "whisper", which made the three JSON rows
     indistinguishable (and the third variant used to repeat the default
     config verbatim; `Classic actually changes the formula family) *)
  let techniques =
    [
      ("tage-scl", Runner.Baseline);
      ("ideal", Runner.Ideal);
      ("mtage-sc", Runner.Mtage_sc);
      ("4b-rombf", Runner.Rombf 4);
      ("8b-rombf", Runner.Rombf 8);
      ("8KB-branchnet", Runner.Branchnet (Whisper_branchnet.Branchnet.Budget 8192));
      ("whisper", Runner.Whisper Whisper_core.Config.default);
      ( "whisper-hb64",
        Runner.Whisper { Whisper_core.Config.default with hint_buffer_size = 64 } );
      ( "whisper-classic",
        Runner.Whisper { Whisper_core.Config.default with ops = `Classic } );
    ]
  in
  let ctx = Runner.create_ctx ~events:n_events ~baseline_kb:64 () in
  let source () =
    App_model.source (App_model.create ~cfg ~config:app ~input:1 ())
  in
  let tech_rows =
    List.map
      (fun (label, t) ->
        let closure_s, rc =
          time_once (fun () ->
              let exec = Runner.make_exec ctx app t ~train_inputs:[ 0 ] ~kb:64 in
              Whisper_pipeline.Machine.run ~events:n_events ~source:(source ())
                ~predict:exec ())
        in
        let arena_s, ra =
          time_once (fun () ->
              let exec =
                Runner.make_exec_arena ctx app t ~train_inputs:[ 0 ] ~kb:64
                  ~arena
              in
              Whisper_pipeline.Machine.run_arena_exec ~events:n_events ~arena
                ~exec ())
        in
        (* the in-bench differential-oracle assert: the compiled arena
           path must reproduce the closure path's result byte for byte *)
        if rc <> ra then
          failwith
            (Printf.sprintf "arena replay diverges from closure replay (%s)"
               label);
        (label, 1e9 *. closure_s /. fe, 1e9 *. arena_s /. fe))
      techniques
  in
  (* --- compiled whisper runtime vs the retained interpretive oracle,
     over the same plan, baseline and arena: the representation change
     (CSR plan, truth-table bank, sentinel-int buffer, used-length
     folds) must not change a single verdict or counter, and must be
     severalfold faster.  Runtimes are created outside the timed region —
     plan compilation is a once-per-run cost the replay amortizes.

     The probe uses a deterministic saturating plan (eight brhints
     hosted in every block, keyed by real branch PCs) and a cheap
     bimodal baseline, so the figure isolates the hint-execution /
     probe / hint-prediction machinery the compilation rewrites.  With
     the profile-derived plan and a TAGE baseline, the predictor cost —
     identical on both sides — dominates, and the plan's size varies
     with profile depth, so the ratio would read ~1x in smoke mode no
     matter how fast the runtime path got; a CI floor on that would be
     meaningless. *)
  let wh_config = Whisper_core.Config.default in
  let wh_plan =
    let open Whisper_core in
    let n_blocks = Array.length cfg.Cfg.blocks in
    let id_space =
      Whisper_formula.Tree.space_size ~leaves:wh_config.Config.hash_bits
    in
    let hints_per_block = 8 in
    let placements = ref [] in
    for b = n_blocks - 1 downto 0 do
      for j = hints_per_block - 1 downto 0 do
        let target = (b + (j * 37)) mod n_blocks in
        let bias =
          (* mostly formula hints, with the other biases represented *)
          match j with
          | 5 -> Brhint.Always_taken
          | 6 -> Brhint.Never_taken
          | 7 -> Brhint.Dynamic
          | _ -> Brhint.Formula
        in
        placements :=
          {
            Inject.branch_block = target;
            host_block = b;
            hint =
              Brhint.make
                ~len_idx:[| 1; 3; 5; 8 |].(j land 3)
                ~formula_id:(((b * 131) + (j * 17)) mod id_space)
                ~bias ~pc_offset:0;
            branch_pc = cfg.Cfg.blocks.(target).Cfg.branch_pc;
            cond_prob = 1.0;
          }
          :: !placements
      done
    done;
    let by_host = Hashtbl.create (2 * n_blocks) in
    List.iter
      (fun (p : Inject.placement) ->
        let existing =
          Option.value ~default:[]
            (Hashtbl.find_opt by_host p.Inject.host_block)
        in
        Hashtbl.replace by_host p.Inject.host_block (p :: existing))
      !placements;
    { Inject.placements = !placements; by_host; dropped = 0 }
  in
  let wh_baseline () = Whisper_bpu.Bimodal.make ~log_entries:12 in
  (* tight exec loops over the arena, no timing model: the machine's
     cache/BTB accounting is identical on both sides and would dilute
     the ratio the CI floor guards.  (The Machine-level equality of the
     compiled path is already asserted by the whisper tech_rows above
     and the differential tests.) *)
  let wh_reps = if smoke then 3 else 5 in
  let best_compiled = ref infinity and best_reference = ref infinity in
  let compiled_out = ref None and reference_out = ref None in
  for _ = 1 to wh_reps do
    let rt =
      Whisper_core.Runtime.create wh_config ~baseline:(wh_baseline ())
        ~plan:wh_plan
    in
    let s, correct =
      time_once (fun () ->
          let ok = ref 0 in
          for i = 0 to n_events - 1 do
            if Whisper_core.Runtime.exec_arena rt ~arena i then incr ok
          done;
          !ok)
    in
    best_compiled := Float.min !best_compiled s;
    compiled_out :=
      Some
        ( correct,
          Whisper_core.Runtime.hinted_predictions rt,
          Whisper_core.Runtime.hinted_mispredictions rt,
          Whisper_core.Runtime.baseline_predictions rt,
          Whisper_core.Runtime.buffer_stats rt );
    let rf =
      Whisper_core.Runtime.Reference.create wh_config ~baseline:(wh_baseline ())
        ~plan:wh_plan
    in
    let s, correct =
      time_once (fun () ->
          let ok = ref 0 in
          for i = 0 to n_events - 1 do
            if
              Whisper_core.Runtime.Reference.exec_at rf
                ~block:(Arena.block arena i) ~pc:(Arena.pc arena i)
                ~taken:(Arena.taken arena i)
            then incr ok
          done;
          !ok)
    in
    best_reference := Float.min !best_reference s;
    reference_out :=
      Some
        ( correct,
          Whisper_core.Runtime.Reference.hinted_predictions rf,
          Whisper_core.Runtime.Reference.hinted_mispredictions rf,
          Whisper_core.Runtime.Reference.baseline_predictions rf,
          Whisper_core.Runtime.Reference.buffer_stats rf )
  done;
  if !compiled_out <> !reference_out then
    failwith "compiled whisper runtime diverges from the interpretive oracle";
  let whisper_compiled_ns = 1e9 *. !best_compiled /. fe in
  let whisper_reference_ns = 1e9 *. !best_reference /. fe in
  let whisper_runtime_speedup = whisper_reference_ns /. whisper_compiled_ns in
  (* --- end-to-end multi-technique batch: every technique over the same
     (app, input), which is exactly the sharing the arena exists for.
     Cold = arena built in-run; warm = arena served from the persistent
     cache populated by a prior invocation. *)
  let sims = List.map (fun (_, t) -> Runner.sim app t) techniques in
  let batch ?cache_dir ~replay ~jobs () =
    let ctx =
      Runner.create_ctx ~events:n_events ~baseline_kb:64 ~jobs ~replay
        ?cache_dir ()
    in
    let wall, () = time_once (fun () -> Runner.run_batch ctx sims) in
    ( wall,
      List.map (fun (_, t) -> Runner.run ctx app t) techniques,
      Runner.stats ctx )
  in
  let closure_s, closure_results, _ = batch ~replay:`Closure ~jobs:1 () in
  let closure4_s, closure4_results, _ = batch ~replay:`Closure ~jobs:4 () in
  let cold_s, cold_results, cold_stats = batch ~replay:`Arena ~jobs:1 () in
  if closure_results <> cold_results then
    failwith "arena batch diverges from closure batch";
  if closure4_results <> cold_results then
    failwith "closure batch diverges across job counts";
  (* parallel determinism: the same arena shared across domains *)
  let par_s, par_results, _ = batch ~replay:`Arena ~jobs:4 () in
  if par_results <> cold_results then
    failwith "arena batch diverges across job counts";
  (* warm: prepopulate only the arena cache (not the result cache), so
     the warm run re-simulates everything but skips arena generation *)
  let cache_root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "whisper_replay_bench_%d" (Unix.getpid ()))
  in
  let pre = Runner.create_ctx ~events:n_events ~cache_dir:cache_root () in
  let store_s, () =
    time_once (fun () ->
        ignore (Runner.arena pre app ~input:0);
        ignore (Runner.arena pre app ~input:1))
  in
  let load_ctx = Runner.create_ctx ~events:n_events ~cache_dir:cache_root () in
  let load_s, _ = time_once (fun () -> Runner.arena load_ctx app ~input:1) in
  let warm_s, warm_results, warm_stats =
    batch ~cache_dir:cache_root ~replay:`Arena ~jobs:1 ()
  in
  if warm_results <> cold_results then
    failwith "warm arena batch diverges from cold";
  let cold_speedup = closure_s /. cold_s in
  let warm_speedup = closure_s /. warm_s in
  (* --- end-to-end event delivery over the batch's real pass structure:
     the closure path generates the stream once per consumer (2 profile
     passes over the train input + one sim pass per technique over the
     test input); the arena path builds each input's arena once and
     replays it by index for every consumer.  This isolates the cost the
     arena subsystem replaces — the full batch wall times above include
     the predictor/training work that is identical on both sides. *)
  let train_passes = 2 and test_passes = List.length techniques in
  let gen_pass input =
    let src = App_model.source (App_model.create ~cfg ~config:app ~input ()) in
    for _ = 1 to n_events do
      sink := !sink + (src ()).Branch.pc
    done
  in
  let closure_delivery_s, () =
    time_once (fun () ->
        for _ = 1 to train_passes do
          gen_pass 0
        done;
        for _ = 1 to test_passes do
          gen_pass 1
        done)
  in
  let replay_pass a =
    for i = 0 to n_events - 1 do
      sink := !sink + Arena.pc a i
    done
  in
  let arena_delivery_s, () =
    time_once (fun () ->
        let a0 =
          Arena.build ~events:n_events
            (App_model.create ~cfg ~config:app ~input:0 ())
        in
        let a1 =
          Arena.build ~events:n_events
            (App_model.create ~cfg ~config:app ~input:1 ())
        in
        for _ = 1 to train_passes do
          replay_pass a0
        done;
        for _ = 1 to test_passes do
          replay_pass a1
        done)
  in
  let delivery_speedup = closure_delivery_s /. arena_delivery_s in
  (* --- telemetry overhead on the replay hot path: the same arena replay
     through Machine.run_arena with recording enabled vs disabled.  The
     instrumentation contract is flush-once-per-run (no per-event work),
     so the difference should be noise-level; the perf gate holds it
     under max(5%, 5 ns/event). *)
  let telemetry_probe () =
    ignore
      (Whisper_pipeline.Machine.run_arena ~events:n_events ~arena
         ~predict:(fun (_ : int) -> true)
         ())
  in
  (* the probe is memory-bound, so a single window jitters (and the
     machine drifts thermally) by several percent — far more than the
     per-run flush.  Three defenses, each earned by a bad measurement:
     (1) the probe gets a >= 0.25 s window even in smoke mode, where the
     general min_s is 0.05 s — short windows alias scheduler noise into
     whole-percent swings; (2) the sides are interleaved and the gated
     statistic is the median of the per-round (on - off) differences,
     which cancels round-local drift that per-side medians still absorb
     (a committed full run once recorded -12.9% "overhead" from exactly
     that drift); (3) the displayed percentage is clamped at zero — a
     negative difference only means the drift happened to favour the
     enabled side, not that recording telemetry speeds the loop up. *)
  let measure side_enabled =
    Whisper_util.Telemetry.set_enabled side_enabled;
    time_ns ~min_s:(Float.max min_s 0.25) telemetry_probe /. fe
  in
  (* the true overhead is ~0 (flush-once amortizes to sub-0.01 ns/event),
     so the measurement is noise around zero with sigma of a few
     ns/event on a shared box; 15 rounds put the paired median's sigma
     comfortably under the gate's max(5%, 5 ns) budget *)
  let telemetry_rounds = 15 in
  let on_samples = Array.make telemetry_rounds 0.0 in
  let off_samples = Array.make telemetry_rounds 0.0 in
  let diff_samples = Array.make telemetry_rounds 0.0 in
  for i = 0 to telemetry_rounds - 1 do
    (* alternate which side runs first: a systematic first/second-window
       bias (cache warmth, GC debt left by the previous window) would
       otherwise load entirely onto one side of every paired difference *)
    if i land 1 = 0 then begin
      off_samples.(i) <- measure false;
      on_samples.(i) <- measure true
    end
    else begin
      on_samples.(i) <- measure true;
      off_samples.(i) <- measure false
    end;
    diff_samples.(i) <- on_samples.(i) -. off_samples.(i)
  done;
  Whisper_util.Telemetry.set_enabled true;
  let median a =
    let b = Array.copy a in
    Array.sort compare b;
    b.(Array.length b / 2)
  in
  let telemetry_on_ns = median on_samples in
  let telemetry_off_ns = median off_samples in
  let telemetry_overhead_ns = median diff_samples in
  let telemetry_overhead_pct =
    Float.max 0.0 (100.0 *. telemetry_overhead_ns /. telemetry_off_ns)
  in
  List.iter
    (fun (name, c_ns, a_ns) ->
      Printf.printf "  sim %-12s %8.1f -> %7.1f ns/event  (%.1fx)\n" name c_ns
        a_ns (c_ns /. a_ns))
    tech_rows;
  Printf.printf
    "  whisper runtime     %8.1f -> %7.1f ns/event  (%.1fx, oracle -> compiled)\n"
    whisper_reference_ns whisper_compiled_ns whisper_runtime_speedup;
  Printf.printf "  event delivery     %8.1f -> %7.1f ns/event  (build %.1f ns/event)\n"
    closure_gen_ns arena_replay_ns arena_build_ns;
  Printf.printf
    "  batch (%d techniques) closure %.2fs, arena cold %.2fs (%.1fx), warm \
     %.2fs (%.1fx)\n%!"
    (List.length techniques) closure_s cold_s cold_speedup warm_s warm_speedup;
  Printf.printf "  batch -j4            closure %.2fs, arena %.2fs (%.1fx)\n%!"
    closure4_s par_s (closure4_s /. par_s);
  Printf.printf
    "  batch delivery (%d passes) closure %.3fs, arena %.3fs (%.1fx)\n%!"
    (train_passes + test_passes)
    closure_delivery_s arena_delivery_s delivery_speedup;
  Printf.printf
    "  telemetry overhead  %8.1f -> %7.1f ns/event  (paired %+.2f ns, \
     %+.1f%%)\n%!"
    telemetry_off_ns telemetry_on_ns telemetry_overhead_ns
    telemetry_overhead_pct;
  let out =
    Option.value ~default:"BENCH_replay.json"
      (Sys.getenv_opt "WHISPER_REPLAY_OUT")
  in
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  "app": %S,
  "events": %d,
  "smoke": %b,
  "closure_gen_ns_per_event": %.2f,
  "arena_build_ns_per_event": %.2f,
  "arena_replay_ns_per_event": %.2f,
  "replay_speedup": %.2f,
  "whisper_arena_ns_per_event": %.2f,
  "whisper_reference_arena_ns_per_event": %.2f,
  "whisper_runtime_speedup": %.2f,
  "technique_sims": [
%s
  ],
%s  "batch_techniques": %d,
  "batch_closure_s": %.3f,
  "batch_arena_cold_s": %.3f,
  "batch_arena_warm_s": %.3f,
  "batch_cold_speedup": %.2f,
  "batch_warm_speedup": %.2f,
  "batch_closure_j4_s": %.3f,
  "batch_arena_j4_s": %.3f,
  "batch_j4_speedup": %.2f,
  "batch_delivery_passes": %d,
  "batch_delivery_closure_s": %.3f,
  "batch_delivery_arena_s": %.3f,
  "batch_delivery_speedup": %.2f,
  "batch_cold_arena_builds": %d,
  "batch_warm_arena_cache_hits": %d,
  "arena_cache_store_ms": %.2f,
  "arena_cache_load_ms": %.2f,
  "telemetry_on_ns_per_event": %.2f,
  "telemetry_off_ns_per_event": %.2f,
  "telemetry_overhead_ns_per_event": %.2f,
  "telemetry_overhead_pct": %.2f,
  "parallel_jobs": 4,
  "parallel_identical": true,
  "pipeline_identical": true
}
|}
    app_name n_events smoke closure_gen_ns arena_build_ns arena_replay_ns
    (closure_gen_ns /. arena_replay_ns)
    whisper_compiled_ns whisper_reference_ns whisper_runtime_speedup
    (String.concat ",\n"
       (List.map
          (fun (name, c_ns, a_ns) ->
            Printf.sprintf
              "    { \"technique\": %S, \"closure_ns_per_event\": %.2f, \
               \"arena_ns_per_event\": %.2f, \"speedup\": %.2f }"
              name c_ns a_ns (c_ns /. a_ns))
          tech_rows))
    (* flat duplicates of the per-technique rows, addressable by
       check_regression's top-level numeric field lookup (ratio bands and
       --floor gates can't reach into the technique_sims array) *)
    (String.concat ""
       (List.map
          (fun (name, c_ns, a_ns) ->
            let key = String.map (fun c -> if c = '-' then '_' else c) name in
            Printf.sprintf
              "  \"sim_%s_closure_ns_per_event\": %.2f,\n\
              \  \"sim_%s_arena_ns_per_event\": %.2f,\n\
              \  \"sim_%s_speedup\": %.2f,\n"
              key c_ns key a_ns key (c_ns /. a_ns))
          tech_rows))
    (List.length techniques)
    closure_s cold_s warm_s cold_speedup warm_speedup closure4_s par_s
    (closure4_s /. par_s)
    (train_passes + test_passes)
    closure_delivery_s arena_delivery_s delivery_speedup
    cold_stats.Runner.arena_builds warm_stats.Runner.arena_cache_hits
    (1e3 *. store_s) (1e3 *. load_s) telemetry_on_ns telemetry_off_ns
    telemetry_overhead_ns telemetry_overhead_pct;
  close_out oc;
  Printf.printf "  wrote %s\n%!" out;
  ignore !sink

(* ------------------------------------------------------------------ *)
(* Part 1d: continuous-profiling service benchmark (BENCH_serve.json) *)
(* ------------------------------------------------------------------ *)

(* Measures the serve-mode hot path: chunk-ingest throughput into the
   order-independent accumulator, the window re-scoring latency that
   runs every generation, and — before emitting any number — replays the
   scripted drifting scenario interrupted-and-resumed against an
   uninterrupted reference and asserts the generation ledgers are
   byte-identical.

   Extra environment:
     WHISPER_BENCH_SMOKE  short mode for CI (fewer/smaller generations)
     WHISPER_SERVE_OUT    output path (default BENCH_serve.json) *)

let rec bench_rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> bench_rm_rf (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let serve_bench () =
  let module Serve = Whisper_sim.Serve in
  let smoke = Sys.getenv_opt "WHISPER_BENCH_SMOKE" <> None in
  let generations = if smoke then 8 else 16 in
  let chunk_events = if smoke then 60_000 else 120_000 in
  let min_s = if smoke then 0.05 else 0.3 in
  let app_name = "finagle-http" in
  Printf.printf
    "\n== serve benchmark (%s, %d generations x %d-event chunks%s) ==\n%!"
    app_name generations chunk_events
    (if smoke then ", smoke mode" else "");
  let state_root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "whisper_bench_serve_%d" (Unix.getpid ()))
  in
  bench_rm_rf state_root;
  let cfg dir =
    {
      (Serve.default ~state_dir:(Filename.concat state_root dir)) with
      Serve.generations;
      chunk_events;
      drift_flip = Some (generations / 2);
      apps = [ app_name ];
    }
  in
  (* --- the scripted scenario, clean, as the reference ledger *)
  let t0 = Unix.gettimeofday () in
  let clean = Serve.run (cfg "clean") in
  let clean_s = Unix.gettimeofday () -. t0 in
  assert (not clean.Serve.interrupted);
  (* --- the same scenario interrupted mid-run and resumed: the ledger
     must come back byte-identical, or no perf number matters *)
  ignore
    (Serve.run { (cfg "kill") with Serve.max_steps = Some (generations / 2) });
  let resumed = Serve.run { (cfg "kill") with Serve.resume = true } in
  let generations_identical =
    clean.Serve.ledger = resumed.Serve.ledger
    && clean.Serve.summary = resumed.Serve.summary
  in
  if not generations_identical then
    failwith "serve bench: resumed ledger differs from the clean reference";
  Printf.printf
    "  scenario: %d steps in %.1f s, %d rollouts, %d drift detections; \
     kill/resume ledger identical\n\
     %!"
    clean.Serve.total clean_s clean.Serve.rollouts clean.Serve.drift_detected;
  (* --- ingest throughput: the per-delivery accumulator merge *)
  let wcfg = Option.get (Workloads.by_name app_name) in
  let cfg_static = Workloads.build_cfg wcfg in
  let chunk input =
    Profile.collect ~max_samples:512 ~lengths:Workloads.lengths
      ~events:chunk_events
      ~make_source:(fun () ->
        App_model.source (App_model.create ~cfg:cfg_static ~config:wcfg ~input ()))
      ~make_predictor:(Whisper_sim.Runner.lbr_predictor 64)
      ()
  in
  let window = List.init 4 chunk in
  let samples_per_round =
    let a =
      Whisper_trace.Profile_chunk.create_accum ~max_samples:512
        ~lengths:Workloads.lengths ()
    in
    List.iteri
      (fun i p ->
        ignore
          (Whisper_trace.Profile_chunk.ingest_profile a ~id:(string_of_int i) p))
      window;
    Whisper_trace.Profile_chunk.samples a
  in
  let ingest_round_ns =
    time_ns ~min_s (fun () ->
        let a =
          Whisper_trace.Profile_chunk.create_accum ~max_samples:512
            ~lengths:Workloads.lengths ()
        in
        List.iteri
          (fun i p ->
            ignore
              (Whisper_trace.Profile_chunk.ingest_profile a
                 ~id:(string_of_int i) p))
          window)
  in
  let ingest_ns_per_sample =
    ingest_round_ns /. float_of_int (max 1 samples_per_round)
  in
  (* --- re-scoring latency: the drift detector's per-generation cost *)
  let wprof =
    Whisper_trace.Profile_chunk.merge_profiles ~max_samples:512
      ~lengths:Workloads.lengths window
  in
  let config = Whisper_core.Config.default in
  let rnd = Whisper_core.Randomized.create config in
  let plan = (Whisper_core.Analyze.run ~config wprof).Whisper_core.Analyze.decisions in
  let rescore_ns =
    time_ns ~min_s (fun () ->
        ignore (Whisper_core.Rescore.score ~config ~rnd ~profile:wprof plan))
  in
  let rescore_ms = rescore_ns /. 1e6 in
  let final_hints =
    (* the hints= field of the last ledger line *)
    match List.rev clean.Serve.ledger with
    | last :: _ ->
        List.fold_left
          (fun acc tok ->
            match String.index_opt tok '=' with
            | Some i when String.sub tok 0 i = "hints" ->
                int_of_string
                  (String.sub tok (i + 1) (String.length tok - i - 1))
            | _ -> acc)
          0
          (String.split_on_char ' ' last)
    | [] -> 0
  in
  Printf.printf
    "  ingest %.1f ns/sample (%d samples/window), rescore %.2f ms \
     (%d hints, %d window branches)\n\
     %!"
    ingest_ns_per_sample samples_per_round rescore_ms (List.length plan)
    (Array.length (Profile.candidates wprof));
  let out =
    Option.value ~default:"BENCH_serve.json" (Sys.getenv_opt "WHISPER_SERVE_OUT")
  in
  let oc = open_out out in
  Printf.fprintf oc
    {|{
  "app": %S,
  "events": %d,
  "smoke": %b,
  "serve_generations": %d,
  "serve_window": 4,
  "serve_chunks_ingested": %d,
  "serve_rollouts": %d,
  "serve_drift_detected": %d,
  "serve_final_hints": %d,
  "serve_ingest_ns_per_sample": %.2f,
  "serve_samples_per_window": %d,
  "serve_rescore_ms": %.3f,
  "serve_scenario_s": %.2f,
  "host_cores": %d,
  "serve_generations_identical": %b
}
|}
    app_name chunk_events smoke generations clean.Serve.chunks_ingested
    clean.Serve.rollouts clean.Serve.drift_detected final_hints
    ingest_ns_per_sample samples_per_round rescore_ms clean_s
    (Domain.recommended_domain_count ())
    generations_identical;
  close_out oc;
  Printf.printf "  wrote %s\n%!" out;
  bench_rm_rf state_root

(* ------------------------------------------------------------------ *)
(* Part 3: ablation benches                                           *)
(* ------------------------------------------------------------------ *)

(* History-hash operation ablation (paper §III-A: XOR chosen over AND/OR).
   Measures how well the best formula can separate taken from not-taken
   hashed histories when the fold uses each operation, over a profiling
   trace of one application. *)
let hash_ablation () =
  Printf.printf "== ablation: history-hash operation (postgres) ==\n%!";
  let app = Option.get (Workloads.by_name "postgres") in
  let cfg = Workloads.build_cfg app in
  let lengths = [| 16; 55; 204; 540 |] in
  let n_events = min events 300_000 in
  (* collect raw windows for the hottest branches *)
  let src = App_model.source (App_model.create ~cfg ~config:app ~input:0 ()) in
  let hist = Whisper_util.History.create ~depth:2048 in
  let per_branch = Hashtbl.create 512 in
  for _ = 1 to n_events do
    let e = src () in
    (match Cfg.block_of_pc cfg e.Branch.pc with
    | Some b
      when (match (Cfg.behavior cfg b.Cfg.id).Behavior.kind with
           | Behavior.Hashed_formula _ | Behavior.Short_formula _ -> true
           | _ -> false)
           && Hashtbl.length per_branch < 64
           || Hashtbl.mem per_branch e.Branch.pc ->
        let window =
          Array.map
            (fun len ->
              Array.init len (fun j -> Whisper_util.History.get hist j))
            lengths
        in
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt per_branch e.Branch.pc)
        in
        if List.length prev < 256 then
          Hashtbl.replace per_branch e.Branch.pc
            ((window, e.Branch.taken) :: prev)
    | _ -> ());
    Whisper_util.History.push hist e.Branch.taken
  done;
  let fold op bits =
    let acc = ref (match op with `And -> 0xFF | _ -> 0) in
    Array.iteri
      (fun j b ->
        let pos = j mod 8 in
        match op with
        | `Xor -> acc := !acc lxor (b lsl pos)
        | `Or -> acc := !acc lor (b lsl pos)
        | `And ->
            (* AND-fold: clear the position's bit when any chunk has 0 *)
            if b = 0 then acc := !acc land lnot (1 lsl pos))
      bits;
    !acc land 0xFF
  in
  let rnd = Whisper_core.Randomized.create Whisper_core.Config.default in
  let cands = Whisper_core.Randomized.candidates rnd in
  List.iter
    (fun op ->
      let total = ref 0 and mis = ref 0 in
      Hashtbl.iter
        (fun _ samples ->
          Array.iteri
            (fun li _ ->
              let taken = Array.make 256 0 and not_taken = Array.make 256 0 in
              List.iter
                (fun (window, tk) ->
                  let k = fold op window.(li) in
                  if tk then taken.(k) <- taken.(k) + 1
                  else not_taken.(k) <- not_taken.(k) + 1)
                samples;
              let tables =
                Whisper_core.Algorithm1.tables_of_counts ~taken ~not_taken
              in
              if Whisper_core.Algorithm1.distinct_keys tables > 0 then begin
                let _, m =
                  Whisper_core.Algorithm1.find tables ~candidates:cands
                    ~truth_of:(Whisper_core.Randomized.truth_of rnd)
                in
                let t, nt = Whisper_core.Algorithm1.tables_total tables in
                total := !total + t + nt;
                mis := !mis + m
              end)
            lengths)
        per_branch;
      Printf.printf "  fold=%-4s best-formula accuracy %.1f%%\n%!"
        (match op with `Xor -> "xor" | `And -> "and" | `Or -> "or")
        (100.0 *. (1.0 -. (float_of_int !mis /. float_of_int (max 1 !total)))))
    [ `Xor; `And; `Or ]

let hintbuf_ablation ctx =
  Printf.printf "== ablation: hint-buffer size (cassandra) ==\n%!";
  let app = Option.get (Workloads.by_name "cassandra") in
  let base = Whisper_sim.Runner.run ctx app Whisper_sim.Runner.Baseline in
  List.iter
    (fun size ->
      let config = { Whisper_core.Config.default with hint_buffer_size = size } in
      let w = Whisper_sim.Runner.run ctx app (Whisper_sim.Runner.Whisper config) in
      Printf.printf "  %3d entries: reduction %.1f%%\n%!" size
        (Whisper_util.Stats.reduction_pct
           ~baseline:(float_of_int base.Whisper_pipeline.Machine.mispredicts)
           ~improved:(float_of_int w.Whisper_pipeline.Machine.mispredicts)))
    [ 4; 16; 32; 128 ]

(* ------------------------------------------------------------------ *)

(* WHISPER_METRICS_OUT / WHISPER_TRACE_OUT: export the run's telemetry
   like the CLI does, so CI can attach bench metrics as artifacts. *)
let emit_telemetry () =
  let module T = Whisper_util.Telemetry in
  let write render path =
    T.write_file ~path (render (T.snapshot ()));
    Printf.printf "  wrote %s\n%!" path
  in
  Option.iter (write T.to_json_string) (Sys.getenv_opt "WHISPER_METRICS_OUT");
  Option.iter (write T.to_chrome) (Sys.getenv_opt "WHISPER_TRACE_OUT")

let () =
  if Sys.getenv_opt "WHISPER_SEARCH_BENCH_ONLY" <> None then begin
    search_bench ();
    emit_telemetry ();
    exit 0
  end;
  if Sys.getenv_opt "WHISPER_REPLAY_BENCH_ONLY" <> None then begin
    replay_bench ();
    emit_telemetry ();
    exit 0
  end;
  if Sys.getenv_opt "WHISPER_SERVE_BENCH_ONLY" <> None then begin
    serve_bench ();
    emit_telemetry ();
    exit 0
  end;
  if Sys.getenv_opt "WHISPER_SKIP_MICRO" = None then run_micro ();
  search_bench ();
  replay_bench ();
  serve_bench ();
  Printf.printf
    "\n== paper tables & figures (%d events per run, %d jobs%s) ==\n\n%!"
    events jobs
    (match cache_dir with
    | Some dir -> Printf.sprintf ", cache %s" dir
    | None -> ", no cache");
  let ctx =
    Whisper_sim.Runner.create_ctx ~events ~jobs ?cache_dir ~faults ~fault_seed
      ()
  in
  let only =
    match Sys.getenv_opt "WHISPER_ONLY" with
    | Some s -> String.split_on_char ',' s
    | None -> Whisper_sim.Experiments.all_ids
  in
  List.iter
    (fun id ->
      match Whisper_sim.Experiments.by_id id with
      | None -> Printf.eprintf "unknown experiment id %s\n" id
      | Some f ->
          let before = Whisper_sim.Runner.stats ctx in
          let fbefore = Whisper_sim.Runner.fault_summary ctx in
          let t0 = Unix.gettimeofday () in
          let report = f ctx in
          let wall_s = Unix.gettimeofday () -. t0 in
          let after = Whisper_sim.Runner.stats ctx in
          let report =
            Whisper_sim.Report.with_timing
              {
                Whisper_sim.Report.wall_s;
                sims = after.Whisper_sim.Runner.sims - before.Whisper_sim.Runner.sims;
                sim_seconds =
                  after.Whisper_sim.Runner.sim_seconds
                  -. before.Whisper_sim.Runner.sim_seconds;
                cache_hits =
                  after.Whisper_sim.Runner.cache_hits
                  - before.Whisper_sim.Runner.cache_hits;
                cache_misses =
                  after.Whisper_sim.Runner.cache_misses
                  - before.Whisper_sim.Runner.cache_misses;
              }
              report
          in
          let report =
            if faults <= 0.0 then report
            else
              let fa = Whisper_sim.Runner.fault_summary ctx in
              let open Whisper_sim.Report in
              with_faults
                {
                  injected = fa.injected - fbefore.injected;
                  observed = fa.observed - fbefore.observed;
                  retries = fa.retries - fbefore.retries;
                  quarantined = fa.quarantined - fbefore.quarantined;
                  cache_write_failures =
                    fa.cache_write_failures - fbefore.cache_write_failures;
                  cache_corrupt_dropped =
                    fa.cache_corrupt_dropped - fbefore.cache_corrupt_dropped;
                }
                report
          in
          Whisper_sim.Report.print report;
          Printf.printf "\n%!")
    only;
  hash_ablation ();
  hintbuf_ablation ctx;
  emit_telemetry ()
