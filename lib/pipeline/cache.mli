(** Generic set-associative LRU cache of line tags, used for the L1i/L2/L3
    instruction-side hierarchy and for the BTB. *)

type t

val create : ?bytes:int -> ?entries:int -> assoc:int -> line_bytes:int -> unit -> t
(** Size by [bytes] (capacity / line size sets the entry count) or
    directly by [entries].  @raise Invalid_argument unless exactly one of
    the two is given and geometry is a power of two. *)

val entries : t -> int

val access : t -> int -> bool
(** [access t addr] probes the line containing [addr] and updates LRU /
    fills on miss; returns whether it hit. *)

val probe : t -> int -> bool
(** Hit test without state change. *)

val hits : t -> int
val misses : t -> int
