(** Typed errors for the ingestion and execution pipeline.

    At fleet scale (paper §IV: production hosts ship PT-like traces and
    per-branch profiles to offline analysis machines), truncated files,
    bit-flipped packets and version-skewed artifacts are the steady
    state.  Every decoder in the pipeline reports corruption through
    this one structured type — carrying the pipeline {!stage}, a
    machine-readable {!kind}, the byte offset of the offending input and
    free-form context (packet kind, work-item key) — instead of a bare
    [Failure], so a corrupt artifact is diagnosable and recoverable
    rather than fatal. *)

type stage =
  | Binio  (** the shared binary primitives *)
  | Pt_codec  (** PT-like trace packets *)
  | Profile_io  (** profile files shipped from the fleet *)
  | Plan_io  (** hint-injection plans *)
  | Result_cache  (** persistent result-cache entries *)
  | Arena_cache  (** packed trace-replay arenas (in-memory codec + disk cache) *)
  | Task  (** a batch work item (simulation / collection) *)
  | Injected  (** a fault planted by {!Fault} *)
  | Manifest  (** sweep work-item manifests *)
  | Journal  (** sweep completion journals *)
  | Worker  (** the supervisor/worker wire protocol *)

type kind =
  | Truncated  (** input ends mid-value *)
  | Bad_magic of string  (** expected tag *)
  | Version_mismatch of { got : int; expected : int }
  | Varint_overflow  (** more than 62 bits of varint payload *)
  | Out_of_range of string  (** named field fails a bounds check *)
  | Key_mismatch  (** cache entry carries a different key *)
  | Trailing_bytes  (** well-formed value followed by garbage *)
  | Count_overflow of { count : int; remaining : int }
      (** an element count that cannot fit in the remaining input *)
  | Malformed of string  (** anything else, with a human message *)
  | Timeout of float  (** task exceeded its per-task budget (seconds) *)

type t = {
  stage : stage;
  kind : kind;
  offset : int option;  (** byte offset into the corrupt stream *)
  context : string option;  (** packet kind, work-item key, path… *)
}

exception Error of t
(** The one exception decoders raise internally; {!protect} turns it
    (and any stray exception) back into a value. *)

val make : ?offset:int -> ?context:string -> stage -> kind -> t
val raise_error : ?offset:int -> ?context:string -> stage -> kind -> 'a
val stage_name : stage -> string
val to_string : t -> string

val of_exn : ?context:string -> stage -> exn -> t
(** Typed errors pass through unchanged (gaining [context] if they had
    none); anything else becomes [Malformed] at [stage]. *)

val protect : ?context:string -> stage -> (unit -> 'a) -> ('a, t) result
(** [protect stage f] makes [f] total: any exception — typed or not —
    comes back as [Error].  This is the boundary every decoder facade
    goes through, so corrupt input can never crash a batch. *)
