(** Uniform interface over all branch direction predictors in the study.

    The simulation protocol is strict: for every dynamic branch the runner
    calls [predict ~pc] first and then exactly one of

    - [train ~pc ~taken] — full update (counters, allocation, history), or
    - [spectate ~pc ~taken] — history-only update.

    [spectate] models Whisper's run-time rule that hinted branches do not
    allocate or train predictor state, freeing capacity for the remaining
    branches (paper §IV, "Run-time hint usage"), while the global history
    must still advance with the branch's outcome. *)

type t = {
  name : string;
  predict : pc:int -> bool;
  train : pc:int -> taken:bool -> unit;
      (** must follow a [predict] call for the same branch *)
  spectate : pc:int -> taken:bool -> unit;
  storage_bits : int;  (** approximate hardware budget of the predictor *)
  is_oracle : bool;
      (** oracle predictors are always counted correct by runners *)
}

(** Staged arena kernels: the compiled counterpart of {!t} for the
    replay fast path.  Where {!t} is three closure-record fields invoked
    per event, a [Compiled.t] is handed to the machine once per run
    ({!Whisper_pipeline.Machine.run_arena_exec} with [Compiled fill]) and
    runs the whole predict→train protocol in its own monomorphic loop
    over the packed arena — direct known calls, no closure records, no
    per-event allocation.

    Contract: [fill ~arena ~n ~verdicts] must create a fresh predictor
    instance (state identical to the closure path's), walk events
    [0..n-1] in order performing predict-then-train for each, and write
    [verdicts.[i] = '\001'] iff event [i]'s direction was predicted
    correctly (['\000'] otherwise).  [verdicts] is caller-owned scratch
    of at least [n] bytes; bytes beyond [n] must be left untouched.
    The closure path survives as the differential oracle: a compiled
    kernel must produce byte-identical [Machine.result]s, enforced by
    catalog tests, fuzz, and an in-bench assert. *)
module Compiled : sig
  type t = {
    name : string;
    storage_bits : int;
    fill :
      arena:Whisper_trace.Arena.t -> n:int -> verdicts:Bytes.t -> unit;
  }
end

val always_taken : unit -> t
(** Static predictor, the weakest baseline. *)

val ideal : unit -> t
(** The paper's ideal direction predictor (Fig. 1): every conditional
    branch direction is predicted correctly. *)
