(** The classic ROMBF baseline (Jiménez, Hanson & Lin, PACT 2001), as
    evaluated by the paper (§II-D, Figs. 4, 12–14).

    Each annotated static branch carries an N-bit hint ([n] = 4 or 8): a
    read-once monotone Boolean formula over the {e raw} outcomes of the
    last N branches, restricted to [and]/[or] node operations ([N-1]
    encoding bits) plus tautology (always-taken) and contradiction
    (never-taken).  Unlike Whisper there is no hashing — long-history
    correlations are out of reach — and no hint buffer: the hint is part
    of the branch instruction itself.

    Training searches the {e entire} classic formula space per branch
    (it is tiny), using the same train/eval split discipline as the
    Whisper analysis so the two techniques differ only in expressiveness,
    exactly as in the paper. *)

type hint = Tree of Whisper_formula.Tree.t | Always | Never

type t = {
  n : int;  (** history bits (4 or 8) *)
  hints : (int, hint) Hashtbl.t;  (** per branch PC *)
  training_seconds : float;
}

val train :
  ?n:int -> ?min_gain:int -> Whisper_trace.Profile.t -> t
(** Analyze every profile candidate; default [n] = 8, [min_gain] = 2. *)

val hint_count : t -> int

(** Run-time hybrid: annotated branches predicted by their formula over a
    raw history register, others by the wrapped baseline. *)
module Runtime : sig
  type rt

  val create : t -> baseline:Whisper_bpu.Predictor.t -> rt

  val exec : rt -> Whisper_trace.Branch.event -> bool
  (** Returns whether the prediction was correct. *)

  val exec_at : rt -> pc:int -> taken:bool -> bool
  (** [exec] on unboxed event fields — the arena replay path, which
      never materializes a [Branch.event] record. *)

  val hinted_predictions : rt -> int
end
