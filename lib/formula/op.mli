(** The four Boolean node operations of Whisper's extended ROMBF
    (paper §III-C, Fig. 8).

    The original ROMBF work (Jiménez et al., 2001) allows only [And] and
    [Or]; Whisper adds Implication and Converse Non-Implication, which
    Fig. 7 of the paper shows cover a further ~18 % of branch executions. *)

type t =
  | And  (** a ∧ b *)
  | Or  (** a ∨ b *)
  | Imp  (** a → b  ≡  ¬a ∨ b *)
  | Cnimp  (** converse non-implication: ¬a ∧ b *)

val all : t array
(** The four operations, in encoding order. *)

val classic : t array
(** The two operations of classic ROMBF: [[|And; Or|]]. *)

val eval : t -> bool -> bool -> bool
(** Apply the operation to two operands. *)

val to_code : t -> int
(** 2-bit encoding used in the [brhint] formula field. *)

val of_code : int -> t
(** Inverse of {!to_code}.  @raise Invalid_argument outside \[0,3\]. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
