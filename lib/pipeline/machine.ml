open Whisper_trace

type result = {
  cycles : float;
  instrs : int;
  branches : int;
  mispredicts : int;
  misp_stall : float;
  fe_stall : float;
  btb_stall : float;
  l1i_misses : int;
  exposed_misses : int;
  seg_mispredicts : int array;
  seg_instrs : int array;
}

(* A quarantined (degraded) run is marked by NaN cycles with zeroed
   integer counters; derived metrics must poison to NaN rather than
   read the zeros as a perfect score. *)
let degraded r = Float.is_nan r.cycles

let ipc r =
  if degraded r then Float.nan
  else if r.cycles = 0.0 then 0.0
  else float_of_int r.instrs /. r.cycles

let mpki r =
  if degraded r then Float.nan
  else if r.instrs = 0 then 0.0
  else 1000.0 *. float_of_int r.mispredicts /. float_of_int r.instrs

let speedup_pct ~baseline ~improved =
  Whisper_util.Stats.speedup_pct ~baseline:baseline.cycles
    ~improved:improved.cycles

(* ------------------------------------------------------------------ *)
(* Fixed-point cycle accounting                                       *)
(* ------------------------------------------------------------------ *)

(* Cycle and stall totals accumulate in scaled integers (2^-20 cycle
   units) and convert to floats exactly once per run.  Two reasons:
   int refs are unboxed, so the hot loop stops allocating a fresh boxed
   float on every accumulator update; and integer addition is exact and
   order-independent, so closure / arena / compiled feeds agree to the
   bit by construction.

   Overflow headroom (DESIGN.md §15): every per-event contribution is
   bounded by (lines_per_block * mem_latency + instrs * cpi + resteer)
   * 2^20 fixed-point units — well under 2^40 for any realistic block —
   and the running total stays below 2^62 as long as total simulated
   cycles stay below 2^42 ≈ 4.4e12, three orders of magnitude beyond the
   largest sweep this repo runs. *)
let fx_bits = 20
let fx_one = 1 lsl fx_bits

let fx_of_float f = int_of_float (Float.round (f *. float_of_int fx_one))
let float_of_fx i = float_of_int i /. float_of_int fx_one

(* ------------------------------------------------------------------ *)
(* Pooled cache hierarchy                                             *)
(* ------------------------------------------------------------------ *)

type caches = { l1i : Cache.t; l2 : Cache.t; l3 : Cache.t; btb : Cache.t }

(* One cache hierarchy per (domain, geometry): run_impl resets and
   reuses it instead of reallocating four caches per run (the L3 alone
   is 160k entries).  Keyed per domain via DLS, so parallel Pool workers
   never share mutable cache state.  Note the pool assumes runs do not
   nest within a domain — no predictor callback re-enters Machine.run,
   which nothing in the tree does. *)
let cache_pool : (Params.t, caches) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let caches_for (params : Params.t) =
  let tbl = Domain.DLS.get cache_pool in
  match Hashtbl.find_opt tbl params with
  | Some c ->
      Cache.reset c.l1i;
      Cache.reset c.l2;
      Cache.reset c.l3;
      Cache.reset c.btb;
      c
  | None ->
      let c =
        {
          l1i =
            Cache.create ~bytes:params.Params.l1i_bytes
              ~assoc:params.l1i_assoc ~line_bytes:params.line_bytes ();
          l2 =
            Cache.create ~bytes:params.l2_bytes ~assoc:params.l2_assoc
              ~line_bytes:params.line_bytes ();
          l3 =
            Cache.create ~bytes:params.l3_bytes ~assoc:params.l3_assoc
              ~line_bytes:params.line_bytes ();
          btb =
            Cache.create ~entries:params.btb_entries ~assoc:params.btb_assoc
              ~line_bytes:4 ();
        }
      in
      Hashtbl.add tbl params c;
      c

(* Per-domain scratch for compiled-kernel verdict bitmaps: grown on
   demand, reused across runs, never shrunk. *)
let verdict_scratch : Bytes.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref Bytes.empty)

let verdicts_for n =
  let r = Domain.DLS.get verdict_scratch in
  if Bytes.length !r < n then r := Bytes.create n;
  !r

(* The closure path ([run]) and the packed-arena paths ([run_arena] /
   [run_arena_exec]) feed the same accounting core, so their results are
   byte-identical by construction; only the per-event fetch differs. *)
type arena_exec =
  | Indexed of (int -> bool)
  | Oracle
  | Compiled of (arena:Arena.t -> n:int -> verdicts:Bytes.t -> unit)

type feed =
  | From_source of Branch.source * (Branch.event -> bool)
  | From_arena of Arena.t * arena_exec

(* Telemetry is flushed once per run, never per event, so the replay hot
   loop stays allocation- and instrumentation-free (the <5% overhead
   contract is measured by bench's telemetry section). *)
let m_runs = Whisper_util.Telemetry.counter "machine.runs"
let m_events = Whisper_util.Telemetry.counter "machine.events"
let m_instrs = Whisper_util.Telemetry.counter "machine.instrs"
let m_mispredicts = Whisper_util.Telemetry.counter "machine.mispredicts"
let m_l1i_misses = Whisper_util.Telemetry.counter "machine.l1i_misses"
let h_events_per_run = Whisper_util.Telemetry.histogram "machine.events_per_run"

let run_impl ~(params : Params.t) ~segments ~events feed =
  let { l1i; l2; l3; btb } = caches_for params in
  let cycles = ref 0 in
  let misp_stall = ref 0 in
  let fe_stall = ref 0 in
  let btb_stall = ref 0 in
  let instrs = ref 0 in
  let mispredicts = ref 0 in
  let l1i_misses = ref 0 in
  let exposed = ref 0 in
  (* FDIP lead: how many cycles ahead of fetch the prefetcher runs.  The
     lead is bounded by the FTQ's depth and collapses on resteers. *)
  let lead = ref 0 in
  let lead_cap =
    fx_of_float
      (float_of_int params.ftq_entries *. params.ftq_cycles_per_entry)
  in
  let seg_mispredicts = Array.make segments 0 in
  let seg_instrs = Array.make segments 0 in
  (* Per-event constants, hoisted out of the hot loop. *)
  let line_bytes = params.line_bytes in
  let l2_lat = params.l2_latency * fx_one in
  let l3_lat = params.l3_latency * fx_one in
  let mem_lat = params.mem_latency * fx_one in
  let resteer_p = params.resteer_penalty * fx_one in
  let btb_p = params.btb_miss_penalty * fx_one in
  let cpi =
    fx_of_float ((1.0 /. float_of_int params.width) +. params.backend_cpi)
  in
  let account ~seg ~pc ~instrs:n_instrs ~taken ~correct =
    instrs := !instrs + n_instrs;
    seg_instrs.(seg) <- seg_instrs.(seg) + n_instrs;
    (* instruction fetch for the block's lines *)
    let first_line = pc - ((n_instrs - 1) * Cfg.instr_bytes) in
    let line = ref (first_line - (first_line mod line_bytes)) in
    while !line <= pc do
      if not (Cache.access l1i !line) then begin
        incr l1i_misses;
        let latency =
          if Cache.access l2 !line then l2_lat
          else if Cache.access l3 !line then l3_lat
          else mem_lat
        in
        (* FDIP hides the part of the miss covered by its lead *)
        let exposed_cycles = latency - !lead in
        if exposed_cycles > 0 then begin
          incr exposed;
          fe_stall := !fe_stall + exposed_cycles;
          cycles := !cycles + exposed_cycles
        end
      end;
      line := !line + line_bytes
    done;
    (* execute the block: fetch-width-limited frontend plus the averaged
       backend latency (Params.backend_cpi) *)
    let base = n_instrs * cpi in
    cycles := !cycles + base;
    let grown = !lead + base in
    lead := if grown > lead_cap then lead_cap else grown;
    (* branch resolution *)
    if not correct then begin
      incr mispredicts;
      seg_mispredicts.(seg) <- seg_mispredicts.(seg) + 1;
      cycles := !cycles + resteer_p;
      misp_stall := !misp_stall + resteer_p;
      lead := 0
    end
    else if taken && not (Cache.access btb pc) then begin
      (* taken branch with unknown target: decode-resteer bubble *)
      cycles := !cycles + btb_p;
      btb_stall := !btb_stall + btb_p;
      let dented = !lead - btb_p in
      lead := if dented < 0 then 0 else dented
    end
  in
  (* Balanced segment partition: segment [seg] covers event indices
     [seg*events/segments, (seg+1)*events/segments), so segment sizes
     differ by at most one and small runs (events < segments, events = 0)
     spread evenly instead of front-loading with trailing empty segments.
     The feed dispatch happens once per run, not per event: each arm owns
     its own monomorphic event loop over the shared accounting core. *)
  let seg_bounds seg = (seg * events / segments, ((seg + 1) * events / segments) - 1) in
  (match feed with
  | From_source (source, predict) ->
      for seg = 0 to segments - 1 do
        let lo, hi = seg_bounds seg in
        for _ev = lo to hi do
          let e = source () in
          account ~seg ~pc:e.Branch.pc ~instrs:e.Branch.instrs
            ~taken:e.Branch.taken ~correct:(predict e)
        done
      done
  | From_arena (a, Indexed predict) ->
      for seg = 0 to segments - 1 do
        let lo, hi = seg_bounds seg in
        for ev = lo to hi do
          account ~seg ~pc:(Arena.pc a ev) ~instrs:(Arena.instrs a ev)
            ~taken:(Arena.taken a ev) ~correct:(predict ev)
        done
      done
  | From_arena (a, Oracle) ->
      for seg = 0 to segments - 1 do
        let lo, hi = seg_bounds seg in
        for ev = lo to hi do
          account ~seg ~pc:(Arena.pc a ev) ~instrs:(Arena.instrs a ev)
            ~taken:(Arena.taken a ev) ~correct:true
        done
      done
  | From_arena (a, Compiled fill) ->
      let verdicts = verdicts_for events in
      fill ~arena:a ~n:events ~verdicts;
      for seg = 0 to segments - 1 do
        let lo, hi = seg_bounds seg in
        for ev = lo to hi do
          account ~seg ~pc:(Arena.pc a ev) ~instrs:(Arena.instrs a ev)
            ~taken:(Arena.taken a ev)
            ~correct:(Bytes.unsafe_get verdicts ev <> '\000')
        done
      done);
  if Whisper_util.Telemetry.enabled () then begin
    Whisper_util.Telemetry.incr m_runs;
    Whisper_util.Telemetry.add m_events events;
    Whisper_util.Telemetry.add m_instrs !instrs;
    Whisper_util.Telemetry.add m_mispredicts !mispredicts;
    Whisper_util.Telemetry.add m_l1i_misses !l1i_misses;
    Whisper_util.Telemetry.observe h_events_per_run events
  end;
  {
    cycles = float_of_fx !cycles;
    instrs = !instrs;
    branches = events;
    mispredicts = !mispredicts;
    misp_stall = float_of_fx !misp_stall;
    fe_stall = float_of_fx !fe_stall;
    btb_stall = float_of_fx !btb_stall;
    l1i_misses = !l1i_misses;
    exposed_misses = !exposed;
    seg_mispredicts;
    seg_instrs;
  }

let run ?(params = Params.default) ?(segments = 10) ~events ~source ~predict ()
    =
  Whisper_util.Telemetry.span "machine.run" (fun () ->
      run_impl ~params ~segments ~events (From_source (source, predict)))

let run_arena_exec ?(params = Params.default) ?(segments = 10) ~events ~arena
    ~exec () =
  if events > Arena.length arena then
    invalid_arg "Machine.run_arena: events exceeds arena length";
  Whisper_util.Telemetry.span "machine.run_arena" (fun () ->
      run_impl ~params ~segments ~events (From_arena (arena, exec)))

let run_arena ?params ?segments ~events ~arena ~predict () =
  run_arena_exec ?params ?segments ~events ~arena ~exec:(Indexed predict) ()
