(** Ground-truth outcome models for static branches.

    Since the paper's workloads (MySQL under TPC-C, Clang building LLVM, …)
    are driven by inputs we cannot reproduce, each synthetic static branch
    carries a generative model of its direction.  The model families are
    chosen so that every predictor in the study has branches it can and
    cannot learn (see DESIGN.md §2):

    - biased / loop branches: easy for any online predictor while resident;
    - short-raw-history functions: what classic 4b/8b ROMBF can encode;
    - hashed-long-history formulas: what Whisper's hashed history
      correlation targets (lengths 32–1024, paper Fig. 6);
    - parity over long windows: representable by none of the read-once
      formula families (the paper's "Others" slice of Fig. 7) but learnable
      by capacity-unconstrained history predictors;
    - data-dependent randomness: the paper's conditional-on-data class,
      unlearnable by every history-based scheme. *)

type kind =
  | Always_taken
  | Never_taken
  | Bias of float  (** taken with the given probability, i.i.d. *)
  | Loop of { period : int }
      (** taken [period-1] consecutive times, then not-taken once *)
  | Short_formula of { len : int; table : int }
      (** direction = bit [raw-history] of [table]; [len <= 6] recent raw
          outcomes index the truth table *)
  | Hashed_formula of { len_idx : int; formula_id : int }
      (** direction = extended-ROMBF formula (by 15-bit id) applied to the
          8-bit XOR-folded hash of the last [lengths.(len_idx)] outcomes *)
  | Parity of { len : int; step : int }
      (** direction = parity of outcomes at ages [0, step, 2*step, ... < len] *)
  | Ctx_prf of { len : int; seed : int; p_taken : float }
      (** direction = biased pseudo-random function of the raw last-[len]
          outcomes (len 9–16): each history context has a fixed direction
          drawn with bias [p_taken].  Memorizable by any predictor with
          enough capacity, but essentially unlearnable by read-once
          formulas over a hashed history — the branch population that
          makes the paper's capacity class bigger than the profile-guided
          techniques can fix *)
  | Random of float  (** conditional-on-data: taken with probability p *)

type t = { kind : kind; noise : float }
(** [noise] is an i.i.d. probability of flipping the model's direction,
    bounding every predictor's achievable accuracy on this branch. *)

(** Mutable evaluation context shared by all branches of one running
    application: the real global history, the folded hash registers for
    each candidate length, and per-branch loop counters. *)
type ctx

val make_ctx :
  lengths:int array -> n_branches:int -> chunk:int -> ctx
(** [lengths] is the geometric history-length series; [chunk] the hash
    width (8 in the paper). *)

val lengths : ctx -> int array
val history : ctx -> Whisper_util.History.t

val hash_at : ctx -> int -> int
(** [hash_at ctx len_idx] is the current folded hash for series index
    [len_idx]. *)

val eval : ctx -> rng:Whisper_util.Rng.t -> branch:int -> t -> bool
(** Compute the next direction of [branch] given the current context.
    Does {b not} record the outcome; callers must follow with {!record}. *)

val record : ctx -> bool -> unit
(** Push a resolved direction into the shared history and every folded
    register. *)

val formula_leaves : int
(** Leaf count of hashed-formula behaviours (8 — one per hash bit). *)

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit
