(** Randomized formula testing (paper §III-B).

    Whisper shuffles the whole formula id space once with a Fisher–Yates
    permutation and reuses the same order for every branch, testing only
    a prefix (0.1 % by default) as Algorithm 1 candidates.  The candidate
    prefix and its packed truth tables are frozen at {!create} — the same
    ids recur for every (branch, history-length) pair by construction, so
    per-call copies and lazy memos would be pure overhead on the hot
    path. *)

type t

val create : Config.t -> t
(** Shuffles the id space determined by [Config.ops] (32768 extended /
    128 classic formulas for 8 hash bits) with the config seed, and
    precomputes the candidate prefix's packed truth tables. *)

val candidates : t -> int array
(** The id prefix tested per branch (length {!Config.explore_count}; the
    full space when [explore_frac >= 1]).  Returns the {e same} array on
    every call — treat it as immutable.  Safe to read concurrently. *)

val packed_candidates : t -> int array array
(** Packed truth tables ({!Whisper_formula.Tree.packed_truth_table}),
    parallel to {!candidates}.  Built once at {!create}; shared and safe
    to read concurrently from multiple domains. *)

val candidates_n : t -> int -> int array
(** First [n] ids of the permutation (for exploration sweeps, Fig. 15).
    Returns the shared {!candidates} array when [n] equals its length,
    a fresh copy otherwise. *)

val packed_n : t -> int -> int array array
(** Packed truth tables for the first [n] permutation ids (the result may
    be longer than [n]; entries are parallel to the permutation).  Grows a
    memo beyond the candidate prefix on demand — unlike
    {!packed_candidates}, not safe to call concurrently. *)

val space : t -> int
(** Size of the searched space. *)

val truth_of : t -> int -> Bytes.t
(** Memoized [Bytes] truth table of a formula id (naive reference scorer
    path).  The memo is mutex-protected: safe, if slow, to call from
    multiple domains. *)

val tree_of : t -> int -> Whisper_formula.Tree.t
(** Decode an id according to the configured op family (classic ids are
    embedded in [And]/[Or]-only trees). *)
