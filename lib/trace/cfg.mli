(** Synthetic static program structure.

    An application is an array of functions; each function is a contiguous
    run of basic blocks; each block ends in one static conditional branch.
    Addresses are in bytes with fixed 4-byte instructions, so the code
    footprint and I-cache behaviour follow directly from the geometry.

    Block execution within a function is linear (the trace visits every
    block of the invoked function in order); what a branch's direction
    decides is carried entirely by its outcome history, which is what all
    the predictors under study consume.  Hint injection (paper §IV) uses
    the block-level predecessor structure this module exposes. *)

type block = {
  id : int;  (** global block id *)
  func : int;  (** owning function id *)
  addr : int;  (** byte address of the first instruction *)
  instrs : int;  (** instruction count, including the final branch *)
  branch_pc : int;  (** byte address of the final conditional branch *)
  loop_back : bool;
      (** do-while loop block: a taken branch re-executes this block, a
          not-taken branch falls through — so loop iterations are
          back-to-back in the trace, as in real code *)
}

type func = {
  fid : int;
  first_block : int;  (** global id of the function's first block *)
  n_blocks : int;
  f_addr : int;
  f_size : int;  (** bytes *)
}

type t = {
  blocks : block array;
  funcs : func array;
  behaviors : Behavior.t array;  (** parallel to [blocks] *)
  footprint : int;  (** total code bytes *)
}

val instr_bytes : int
(** Fixed instruction width (4). *)

val n_branches : t -> int
(** One static branch per block. *)

val block_of_pc : t -> int -> block option
(** Reverse lookup from branch PC (used by trace decoding and tests). *)

val predecessors_in_func : t -> int -> int list
(** [predecessors_in_func t b] are the ids of blocks of the same function
    that execute before block [b] in function order — the candidate hint
    injection sites for [b]'s branch, nearest first. *)

val behavior : t -> int -> Behavior.t
(** Behaviour of the branch ending the given block. *)

val validate : t -> (unit, string) result
(** Structural invariants: contiguous addresses, block/function cross
    references, PCs within blocks.  Used by property tests. *)
