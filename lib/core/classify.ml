open Whisper_util

type cls = Compulsory | Capacity | Conflict | Conditional_on_data

type counts = {
  compulsory : int;
  capacity : int;
  conflict : int;
  conditional : int;
}

let total c = c.compulsory + c.capacity + c.conflict + c.conditional

let fraction c cls =
  let n = total c in
  if n = 0 then 0.0
  else
    let v =
      match cls with
      | Compulsory -> c.compulsory
      | Capacity -> c.capacity
      | Conflict -> c.conflict
      | Conditional_on_data -> c.conditional
    in
    float_of_int v /. float_of_int n

(* A substream is (branch PC, folded long history window).  A mispredicted
   known branch whose substream is outside the capacity model's LRU is a
   capacity-class miss (paper §II-C's reuse-distance criterion); one whose
   substream is retained yet still mispredicts is conditional-on-data. *)
type t = {
  hist : History.t;
  f_long : History.Folded.t;
  regs : History.Folded.t array;
  seen_long : (int, unit) Hashtbl.t;
  seen_pc : (int, unit) Hashtbl.t;
  lru : unit Lru.t;  (* fully-associative capacity model over long keys *)
  sets : int array array;  (* set-assoc model: [set].[way] = key *)
  set_mask : int;
  assoc : int;
  mutable c : counts;
}

let create ?(history_len = 64) ?(assoc = 4) ~capacity_entries () =
  if capacity_entries < assoc then invalid_arg "Classify.create";
  let n_sets = 1 lsl Bitops.log2_ceil (max 1 (capacity_entries / assoc)) in
  let hist = History.create ~depth:(2 * history_len) in
  let f_long = History.Folded.create ~len:history_len ~chunk:62 in
  {
    hist;
    f_long;
    regs = [| f_long |];
    seen_long = Hashtbl.create 65536;
    seen_pc = Hashtbl.create 65536;
    lru = Lru.create ~capacity:capacity_entries;
    sets = Array.make_matrix n_sets assoc (-1);
    set_mask = n_sets - 1;
    assoc;
    c = { compulsory = 0; capacity = 0; conflict = 0; conditional = 0 };
  }

let mix pc fold =
  let z = (pc * 0x9E3779B1) lxor (fold * 0x85EBCA77) in
  let z = (z lxor (z lsr 31)) * 0xC2B2AE3D in
  (z lxor (z lsr 29)) land max_int

(* set-associative presence check + LRU-within-set touch *)
let sa_touch t key =
  let set = t.sets.(key land t.set_mask) in
  let pos = ref (-1) in
  for i = 0 to t.assoc - 1 do
    if set.(i) = key then pos := i
  done;
  let present = !pos >= 0 in
  let from = if present then !pos else t.assoc - 1 in
  for i = from downto 1 do
    set.(i) <- set.(i - 1)
  done;
  set.(0) <- key;
  present

let note t ~pc ~taken ~mispredicted =
  let key_long = mix pc (History.Folded.value t.f_long) in
  let long_known = Hashtbl.mem t.seen_long key_long in
  let pc_known = Hashtbl.mem t.seen_pc pc in
  if not long_known then Hashtbl.add t.seen_long key_long ();
  if not pc_known then Hashtbl.add t.seen_pc pc ();
  let in_lru = Lru.mem t.lru key_long in
  ignore (Lru.add t.lru key_long ());
  let in_sa = sa_touch t key_long in
  History.push_all t.hist t.regs taken;
  if not mispredicted then None
  else begin
    let cls =
      (* paper §II-C: compulsory = the predictor sees the *branch* for
         the first time *)
      if not pc_known then Compulsory
      else if long_known && in_lru then
        (* the full context was retained and it still mispredicted *)
        if in_sa then Conditional_on_data else Conflict
      else
        (* familiar branch whose substream fell out (or was never
           retained): the reuse-distance / capacity class *)
        Capacity
    in
    (t.c <-
       (match cls with
       | Compulsory -> { t.c with compulsory = t.c.compulsory + 1 }
       | Capacity -> { t.c with capacity = t.c.capacity + 1 }
       | Conflict -> { t.c with conflict = t.c.conflict + 1 }
       | Conditional_on_data -> { t.c with conditional = t.c.conditional + 1 }));
    Some cls
  end

let counts t = t.c

let pp_counts fmt c =
  let n = float_of_int (max 1 (total c)) in
  Format.fprintf fmt
    "compulsory %.1f%% capacity %.1f%% conflict %.1f%% conditional %.1f%%"
    (100.0 *. float_of_int c.compulsory /. n)
    (100.0 *. float_of_int c.capacity /. n)
    (100.0 *. float_of_int c.conflict /. n)
    (100.0 *. float_of_int c.conditional /. n)
