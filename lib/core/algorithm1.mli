(** FIND-BOOLEAN-FORMULA (paper Algorithm 1).

    Given taken/not-taken hashed-history tables [T] and [NT] — keys are
    hashed histories, values are profile sample counts — find, among a
    candidate set of formulas, the one that mispredicts the fewest
    samples: a formula [f] mispredicts every taken sample whose key does
    not satisfy [f] plus every not-taken sample whose key does. *)

type tables
(** Compacted (key, taken-count, not-taken-count) triples for one branch
    at one history length. *)

val tables_of_counts : taken:int array -> not_taken:int array -> tables
(** Build from dense per-key count arrays (length [2^hash_bits]). *)

val tables_total : tables -> int * int
(** Total (taken, not-taken) sample counts. *)

val distinct_keys : tables -> int

val mispredictions : tables -> truth:Bytes.t -> int
(** Mispredictions a formula (given as a truth table over keys) incurs. *)

val always_mispredictions : tables -> int
(** Mispredictions of the always-taken hint (= not-taken samples). *)

val never_mispredictions : tables -> int

val find :
  tables ->
  candidates:int array ->
  truth_of:(int -> Bytes.t) ->
  int * int
(** [find tables ~candidates ~truth_of] returns [(formula_id, m')] — the
    candidate with the minimum misprediction count [m'] (ties resolved to
    the earlier candidate, matching the paper's sequential scan).
    @raise Invalid_argument on an empty candidate set. *)
