(** Integer-keyed counting histograms.

    Thin wrapper over [Hashtbl] used throughout profiling (taken / not-taken
    tables of Algorithm 1, misprediction class counters, length buckets). *)

type t

val create : ?size_hint:int -> unit -> t

val incr : t -> int -> unit
(** Add one to the count of a key. *)

val add : t -> int -> int -> unit
(** [add t k n] adds [n] to the count of [k]. *)

val count : t -> int -> int
(** Count of a key; 0 when absent. *)

val total : t -> int
(** Sum of all counts. *)

val cardinal : t -> int
(** Number of distinct keys. *)

val keys : t -> int list
(** Keys in unspecified order. *)

val iter : (int -> int -> unit) -> t -> unit
val fold : (int -> int -> 'b -> 'b) -> t -> 'b -> 'b

val to_sorted_list : t -> (int * int) list
(** Bindings sorted by key. *)

val by_count_desc : t -> (int * int) list
(** Bindings sorted by decreasing count (ties by key). *)

val merge_into : dst:t -> src:t -> unit
(** Add every count of [src] into [dst] (profile merging, Fig. 18). *)

val copy : t -> t
