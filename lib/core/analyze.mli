(** The offline branch-analysis pipeline (paper §IV, step 2): from an
    in-production profile to the set of brhint decisions, plus the
    characterization statistics the paper's Figs. 6 and 7 report. *)

type op_class =
  | C_and
  | C_or
  | C_implication
  | C_cnimplication
  | C_always
  | C_never
  | C_others  (** branches best left to the dynamic predictor *)

val op_class_name : op_class -> string

type t = {
  config : Config.t;
  decisions : (int * History_select.choice) list;
      (** hinted branches: (branch PC, choice), best first *)
  considered : int;  (** candidate branches examined *)
  training_seconds : float;
      (** wall-clock time of the formula search (Fig. 15/16) *)
}

val run :
  ?config:Config.t ->
  ?jobs:int ->
  ?pool:Whisper_util.Pool.t ->
  Whisper_trace.Profile.t ->
  t
(** Analyze every candidate branch of the profile: pick history length
    and formula (Algorithm 1 + randomized testing), keep branches whose
    formula beats the baseline, capped at [config.max_hints].

    [jobs] (default 1) is the number of concurrent claimers the
    chunk-claiming scheduler runs: candidate branches are cut into
    coarse chunks, claimers pull chunks off an atomic cursor (so skewed
    per-branch search cost rebalances instead of serializing a fixed
    slice), and every claimer keeps a domain-local scratch reused across
    branches and across calls.  The decision list — and hence any
    serialized plan — is byte-identical for every job count and pool.

    [pool] is the persistent pool to run on.  Default: the process-wide
    {!Whisper_util.Pool.shared} pool when [jobs > 1] (never a transient
    per-call pool — domain spawn costs more than a typical whole
    analysis).  Passing a pool with the default [jobs] uses the pool's
    full width.  Calls from inside a pool worker degrade to sequential
    automatically, so nested fan-out cannot deadlock; callers already
    running inside a domain pool should still keep the default [jobs]
    to avoid oversubscription. *)

val hint_count : t -> int

val op_distribution :
  t -> Whisper_trace.Profile.t -> (op_class * float) list
(** Fraction of {e branch executions} (profiled) whose best prediction
    uses each operator class — paper Fig. 7.  Root operator of the chosen
    formula decides the class for formula hints; non-hinted candidate
    executions count as [C_others]. *)

val length_distribution :
  t -> Whisper_trace.Profile.t -> float array
(** Fraction of {e avoided sample mispredictions} attributed to each
    history-length index — paper Fig. 6's view of where the correlation
    lives.  Sums to 1 when any hint exists. *)

val to_inject_hints :
  t -> Whisper_trace.Cfg.t -> (int * History_select.choice) list
(** Translate (PC, choice) decisions into (block, choice) pairs for
    {!Inject.plan}. *)
