open Whisper_util

let format_version = 1
let tag = "WPRF"

let to_bytes (p : Profile.t) =
  let w = Binio.Writer.create ~capacity:(1 lsl 16) () in
  Binio.Writer.magic w tag;
  Binio.Writer.varint w format_version;
  let lengths = Profile.lengths p in
  Binio.Writer.varint w (Array.length lengths);
  Array.iter (Binio.Writer.varint w) lengths;
  Binio.Writer.varint w (Profile.total_instrs p);
  Binio.Writer.varint w (Profile.total_branches p);
  Binio.Writer.varint w (Profile.total_mispred p);
  (* per-branch statistics *)
  Binio.Writer.varint w (Profile.n_static_branches p);
  Profile.iter_stats p ~f:(fun ~pc s ->
      Binio.Writer.varint w pc;
      Binio.Writer.varint w s.Profile.execs;
      Binio.Writer.varint w s.Profile.taken_cnt;
      Binio.Writer.varint w s.Profile.mispred);
  (* candidate samples *)
  let cands = Profile.candidates p in
  Binio.Writer.varint w (Array.length cands);
  Array.iter
    (fun pc ->
      Binio.Writer.varint w pc;
      Binio.Writer.varint w (Profile.n_samples p ~pc);
      Profile.iter_samples p ~pc ~f:(fun ~raw8 ~raw56 ~hash ~taken ~correct ->
          Binio.Writer.byte w raw8;
          Binio.Writer.varint w raw56;
          Array.iteri (fun i _ -> Binio.Writer.byte w (hash i)) lengths;
          Binio.Writer.byte w
            ((if taken then 1 else 0) lor if correct then 2 else 0)))
    cands;
  Binio.Writer.contents w

let of_bytes_exn data =
  let r = Binio.Reader.create data in
  Binio.Reader.magic r tag;
  let voff = Binio.Reader.pos r in
  let v = Binio.Reader.varint r in
  if v <> format_version then
    Whisper_error.raise_error ~offset:voff Whisper_error.Profile_io
      (Whisper_error.Version_mismatch { got = v; expected = format_version });
  (* element counts are validated against the remaining input, so a
     corrupt count can never drive a giant allocation or decode loop *)
  let n_lengths = Binio.Reader.count r in
  let lengths = Array.init n_lengths (fun _ -> Binio.Reader.varint r) in
  let total_instrs = Binio.Reader.varint r in
  let total_branches = Binio.Reader.varint r in
  let total_mispred = Binio.Reader.varint r in
  let p = Profile.create_empty ~lengths () in
  Profile.set_totals p ~instrs:total_instrs ~branches:total_branches
    ~mispred:total_mispred;
  let n_stats = Binio.Reader.count r in
  for _ = 1 to n_stats do
    let pc = Binio.Reader.varint r in
    let execs = Binio.Reader.varint r in
    let taken_cnt = Binio.Reader.varint r in
    let mispred = Binio.Reader.varint r in
    Profile.restore_stat p ~pc ~execs ~taken_cnt ~mispred
  done;
  let n_cands = Binio.Reader.count r in
  for _ = 1 to n_cands do
    let pc = Binio.Reader.varint r in
    let n = Binio.Reader.count r in
    for _ = 1 to n do
      let raw8 = Binio.Reader.byte r in
      let raw56 = Binio.Reader.varint r in
      let hashes = Array.init n_lengths (fun _ -> Binio.Reader.byte r) in
      let flags = Binio.Reader.byte r in
      Profile.add_sample ~raw56 p ~pc ~raw8 ~hashes ~taken:(flags land 1 = 1)
        ~correct:(flags land 2 = 2)
    done
  done;
  if not (Binio.Reader.eof r) then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r)
      Whisper_error.Profile_io Whisper_error.Trailing_bytes;
  p

let of_bytes data =
  Whisper_error.protect Whisper_error.Profile_io (fun () -> of_bytes_exn data)

let save p ~path = Binio.to_file path (to_bytes p)

let load ~path =
  Whisper_error.protect ~context:path Whisper_error.Profile_io (fun () ->
      of_bytes_exn (Binio.of_file path))

let load_exn ~path =
  match load ~path with Ok p -> p | Error e -> raise (Whisper_error.Error e)
