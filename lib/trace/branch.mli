(** Dynamic branch events — the unit of every trace in the reproduction.

    One event is the retirement of a basic block that ends in a conditional
    branch: the block's instructions followed by the branch and its
    resolved direction.  This is the information Intel PT provides the
    paper's profiler (§IV step 1), plus the block geometry our simulator
    substitutes for a real instruction stream. *)

type event = {
  block : int;  (** static basic-block id (index into the CFG) *)
  pc : int;  (** address of the conditional branch ending the block *)
  taken : bool;  (** resolved direction *)
  instrs : int;  (** instructions in the block, including the branch *)
  next_addr : int;  (** address fetched after this branch resolves *)
}

val pp : Format.formatter -> event -> unit

type source = unit -> event
(** An infinite stream of events.  All simulators and profilers consume
    sources; workload models and trace decoders produce them. *)

val take : source -> int -> event array
(** [take src n] materializes the next [n] events (testing helper). *)
