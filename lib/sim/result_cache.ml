open Whisper_util
open Whisper_pipeline

let format_version = 1
let default_dir = "_whisper_cache"
let magic_tag = "WRSC"

type t = { cache_dir : string }

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(dir = default_dir) () =
  mkdir_p dir;
  { cache_dir = dir }

let dir t = t.cache_dir

let path t ~key =
  Filename.concat t.cache_dir (Digest.to_hex (Digest.string key) ^ ".res")

let encode ~key (r : Machine.result) =
  let w = Binio.Writer.create () in
  Binio.Writer.magic w magic_tag;
  Binio.Writer.varint w format_version;
  Binio.Writer.string w key;
  Binio.Writer.float64 w r.Machine.cycles;
  Binio.Writer.varint w r.instrs;
  Binio.Writer.varint w r.branches;
  Binio.Writer.varint w r.mispredicts;
  Binio.Writer.float64 w r.misp_stall;
  Binio.Writer.float64 w r.fe_stall;
  Binio.Writer.float64 w r.btb_stall;
  Binio.Writer.varint w r.l1i_misses;
  Binio.Writer.varint w r.exposed_misses;
  let int_array a =
    Binio.Writer.varint w (Array.length a);
    Array.iter (Binio.Writer.varint w) a
  in
  int_array r.seg_mispredicts;
  int_array r.seg_instrs;
  Binio.Writer.contents w

let decode ~key b =
  let r = Binio.Reader.create b in
  Binio.Reader.magic r magic_tag;
  let v = Binio.Reader.varint r in
  if v <> format_version then
    failwith (Printf.sprintf "Result_cache: format version %d, expected %d" v
                format_version);
  let k = Binio.Reader.string r in
  if k <> key then failwith "Result_cache: key mismatch (digest collision?)";
  let cycles = Binio.Reader.float64 r in
  let instrs = Binio.Reader.varint r in
  let branches = Binio.Reader.varint r in
  let mispredicts = Binio.Reader.varint r in
  let misp_stall = Binio.Reader.float64 r in
  let fe_stall = Binio.Reader.float64 r in
  let btb_stall = Binio.Reader.float64 r in
  let l1i_misses = Binio.Reader.varint r in
  let exposed_misses = Binio.Reader.varint r in
  let int_array () =
    let n = Binio.Reader.varint r in
    Array.init n (fun _ -> Binio.Reader.varint r)
  in
  let seg_mispredicts = int_array () in
  let seg_instrs = int_array () in
  if not (Binio.Reader.eof r) then failwith "Result_cache: trailing bytes";
  {
    Machine.cycles;
    instrs;
    branches;
    mispredicts;
    misp_stall;
    fe_stall;
    btb_stall;
    l1i_misses;
    exposed_misses;
    seg_mispredicts;
    seg_instrs;
  }

let find t ~key =
  let file = path t ~key in
  if not (Sys.file_exists file) then None
  else
    match decode ~key (Binio.of_file file) with
    | r -> Some r
    | exception _ ->
        (try Sys.remove file with Sys_error _ -> ());
        None

(* Best-effort: the cache is an optimization, so a failing write (read-only
   or bogus cache directory, disk full) must not abort a simulation that
   already succeeded. *)
let store t ~key r =
  let file = path t ~key in
  let tmp = Printf.sprintf "%s.%d.tmp" file (Domain.self () :> int) in
  try
    Binio.to_file tmp (encode ~key r);
    Sys.rename tmp file
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ())
