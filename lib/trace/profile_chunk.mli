(** Incremental profile chunks and their order-independent accumulator
    — the artifact a continuously-profiling fleet ships to a long-lived
    analysis service.

    A chunk wraps one collection window's {!Profile} together with the
    application it came from and the window's sequence number.  Chunks
    are {e content-keyed}: {!id} digests the encoded bytes, so a
    re-delivered chunk (a retrying host, a duplicated queue message) is
    recognized and ingested as a counted no-op rather than
    double-counted.

    The {!accum} merges delivered chunks into one canonical per-app
    profile: aggregate counters are summed and each branch's bounded
    sample set is kept as a {!Whisper_util.Mergeset} — the
    N-lexicographically-smallest selection whose union is associative,
    commutative and delivery-order independent.  Consequently any
    permutation (or grouping) of the same chunk multiset materializes
    to a byte-identical {!Profile_io.to_bytes} image, and therefore to
    an identical hint plan.

    Decoding is total: truncated, bit-flipped or version-skewed chunks
    come back as typed {!Whisper_util.Whisper_error.t}s (stage
    [Profile_io]), never as exceptions — a corrupt chunk must quarantine,
    not kill the daemon. *)

type t = { app : string; seq : int; profile : Profile.t }

val format_version : int

val encode : app:string -> seq:int -> Profile.t -> bytes

val decode : bytes -> (t, Whisper_util.Whisper_error.t) result
(** Total: any malformation is a typed [Error] with stage
    [Profile_io]. *)

val id : bytes -> string
(** Hex digest of the encoded chunk — its content key.  Defined on the
    raw bytes so corrupt chunks still have a stable quarantine key. *)

(** {1 Accumulation} *)

type accum

val create_accum : ?max_samples:int -> lengths:int array -> unit -> accum
(** [max_samples] (default 512, matching collection) bounds each
    branch's kept sample records. *)

type outcome =
  | Added of string  (** chunk id, newly merged *)
  | Duplicate of string  (** chunk id already ingested — a no-op *)

val ingest :
  accum -> bytes -> (outcome, Whisper_util.Whisper_error.t) result
(** Decode and merge one delivered chunk.  [Error] (corrupt bytes,
    mismatched length series) leaves the accumulator unchanged. *)

val ingest_profile : accum -> id:string -> Profile.t -> outcome
(** Merge an already-decoded chunk profile under an explicit content
    key (the serve window path, which holds decoded chunks).
    @raise Invalid_argument on a length-series mismatch. *)

val chunks : accum -> int
(** Distinct chunks merged so far. *)

val duplicates : accum -> int
(** Re-deliveries recognized and skipped. *)

val samples : accum -> int
(** Sample records offered by merged chunks (pre-cap). *)

val profile : accum -> Profile.t
(** Materialize the canonical accumulated profile: branches in
    ascending-pc order, each branch's samples in {!Whisper_util.Mergeset}
    order — the same bytes (under {!Profile_io.to_bytes}) for every
    delivery order of the same chunks. *)

val merge_profiles :
  ?max_samples:int -> lengths:int array -> Profile.t list -> Profile.t
(** One-shot canonical merge (order-independent, unlike {!Profile.merge}
    whose sample order follows hashtable iteration).  An empty list
    yields an empty profile. *)
