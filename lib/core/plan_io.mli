(** Binary persistence for hint-injection plans — the reproduction's
    stand-in for the paper's "updated binary" (Fig. 10, step 3): the set
    of brhint instructions and the blocks hosting them, ready to deploy
    at the next build-and-release cycle. *)

val to_bytes : Inject.t -> bytes
val of_bytes : bytes -> Inject.t
(** @raise Whisper_error.Error (typed: byte offset, kind) on corrupt,
    truncated or version-skewed input. *)

val save : Inject.t -> path:string -> unit
val load : path:string -> Inject.t

val format_version : int
