(** Length-prefixed binary framing and the sweep supervisor/worker wire
    protocol.

    Frames are a 4-byte big-endian payload length followed by the
    payload; payloads are {!Binio}-encoded messages.  The supervisor
    multiplexes many workers with [select], so its side reads through a
    buffered {!reader} that absorbs partial reads and yields only
    complete frames; workers block on {!read_frame}.  Every decode
    failure is a typed {!Whisper_error.t} with stage [Worker] — a
    corrupt or truncated frame from a dying process can never crash the
    supervisor. *)

val protocol_version : int
val max_frame : int
(** Upper bound on a frame payload; longer length prefixes are rejected
    as [Count_overflow] (a torn pipe must not drive a giant
    allocation). *)

(** {1 Framing} *)

type reader

val reader : Unix.file_descr -> reader
val reader_fd : reader -> Unix.file_descr

val feed : reader -> [ `Data | `Eof ]
(** One [read] into the buffer ([`Eof] when the peer closed).  Call
    after [select] reports the fd readable. *)

val next_frame : reader -> bytes option
(** Pop one complete frame if buffered; [None] means feed more.
    @raise Whisper_error.Error on an oversized length prefix. *)

val read_frame : reader -> bytes option
(** Blocking: feed until a frame or EOF ([None]). *)

val write_frame : Unix.file_descr -> bytes -> unit
(** Write the whole frame (prefix + payload), looping over short
    writes.  Raises [Unix_error] (e.g. [EPIPE]) if the peer is gone. *)

(** {1 Protocol messages} *)

type init = {
  events : int;
  baseline_kb : int;
  cache_dir : string;  (** [""] = no persistent cache *)
  replay : string;  (** ["arena"] or ["closure"] *)
  faults : float;
  fault_seed : int;
  heartbeat_s : float;
  hang_timeout_s : float;
}

type to_worker =
  | Init of init
  | Item of { seq : int; attempt : int; key : string; spec : string }
  | Shutdown

type outcome = Completed of { digest : string } | Failed of { reason : string }

type from_worker =
  | Hello of { pid : int }
  | Heartbeat of { seq : int }
  | Finished of { seq : int; key : string; outcome : outcome }

val encode_to_worker : to_worker -> bytes
val decode_to_worker : bytes -> (to_worker, Whisper_error.t) result
val encode_from_worker : from_worker -> bytes
val decode_from_worker : bytes -> (from_worker, Whisper_error.t) result

val send_to_worker : Unix.file_descr -> to_worker -> unit
val send_from_worker : Unix.file_descr -> from_worker -> unit
