open Whisper_trace
open Whisper_bpu

type technique =
  | Baseline
  | Ideal
  | Mtage_sc
  | Rombf of int
  | Branchnet of Whisper_branchnet.Branchnet.budget
  | Whisper of Whisper_core.Config.t

let technique_name = function
  | Baseline -> "tage-scl"
  | Ideal -> "ideal"
  | Mtage_sc -> "mtage-sc"
  | Rombf n -> Printf.sprintf "%db-rombf" n
  | Branchnet (Whisper_branchnet.Branchnet.Budget b) ->
      Printf.sprintf "%dKB-branchnet" (b / 1024)
  | Branchnet Whisper_branchnet.Branchnet.Unlimited -> "unlimited-branchnet"
  | Whisper _ -> "whisper"

(* A stable cache key for a technique's configuration. *)
let technique_key = function
  | Whisper c ->
      Printf.sprintf "whisper/%d/%d/%d/%s/%f/%d/%d/%d" c.min_len c.max_len
        c.n_lengths
        (match c.ops with `Extended -> "ext" | `Classic -> "cls")
        c.explore_frac c.hint_buffer_size c.max_hints c.seed
  | t -> technique_name t

(* Whether offline training (and hence a profile) is needed at all. *)
let technique_needs_profile = function
  | Baseline | Ideal | Mtage_sc -> false
  | Rombf _ | Branchnet _ | Whisper _ -> true

type stats = {
  sims : int;
  sim_seconds : float;
  cache_hits : int;
  cache_misses : int;
  arena_builds : int;
  arena_seconds : float;
  arena_cache_hits : int;
  arena_cache_misses : int;
}

type replay = [ `Arena | `Closure ]

type ctx = {
  mutable ev : int;
  base_kb : int;
  mutable n_jobs : int;
  mutable replay_mode : replay;
  cache : Result_cache.t option;
  arena_cache : Arena_cache.t option;
  fault : Whisper_util.Fault.t option;
  policy : Whisper_util.Pool.policy;
  quarantine : (string, Whisper_util.Whisper_error.t) Hashtbl.t;
  lock : Mutex.t;
  cfgs : (string, Cfg.t) Hashtbl.t;
  profiles : (string, Profile.t) Hashtbl.t;
  arenas : (string, Arena.t) Hashtbl.t;
  results : (string, Whisper_pipeline.Machine.result) Hashtbl.t;
  mutable n_sims : int;
  mutable sim_seconds : float;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_arena_builds : int;
  mutable arena_seconds : float;
  mutable n_arena_hits : int;
  mutable n_arena_misses : int;
  mutable n_retries : int;
  mutable n_observed : int;
}

let create_ctx ?(events = 1_200_000) ?(baseline_kb = 64) ?(jobs = 1)
    ?(replay = `Arena) ?cache_dir ?(faults = 0.0) ?(fault_seed = 42)
    ?(retries = 2) ?task_timeout ?hang_s () =
  let fault =
    if faults > 0.0 then
      Some (Whisper_util.Fault.create ~seed:fault_seed ?hang_s ~rate:faults ())
    else None
  in
  (* under chaos mode the cache read path is corrupted too, so the
     corrupt-entry-drop machinery gets exercised end to end *)
  let corrupt =
    Option.map
      (fun f ~key b -> Whisper_util.Fault.corrupt f ~key:("cache/" ^ key) b)
      fault
  in
  let policy =
    if fault = None && task_timeout = None then Whisper_util.Pool.default_policy
    else
      {
        Whisper_util.Pool.default_policy with
        attempts = 1 + max 0 retries;
        timeout_s = task_timeout;
      }
  in
  (* the arena cache shares the result cache's root (and, under chaos,
     its bit-rot injection) but keys its corruptions separately so the
     two caches degrade independently *)
  let arena_corrupt =
    Option.map
      (fun f ~key b -> Whisper_util.Fault.corrupt f ~key:("arena/" ^ key) b)
      fault
  in
  {
    ev = events;
    base_kb = baseline_kb;
    n_jobs = max 1 jobs;
    replay_mode = replay;
    cache = Option.map (fun dir -> Result_cache.create ?corrupt ~dir ()) cache_dir;
    arena_cache =
      Option.map
        (fun dir ->
          Arena_cache.create ?corrupt:arena_corrupt
            ~dir:(Filename.concat dir Arena_cache.default_subdir)
            ())
        cache_dir;
    fault;
    policy;
    quarantine = Hashtbl.create 16;
    lock = Mutex.create ();
    cfgs = Hashtbl.create 32;
    profiles = Hashtbl.create 64;
    arenas = Hashtbl.create 32;
    results = Hashtbl.create 256;
    n_sims = 0;
    sim_seconds = 0.0;
    n_hits = 0;
    n_misses = 0;
    n_arena_builds = 0;
    arena_seconds = 0.0;
    n_arena_hits = 0;
    n_arena_misses = 0;
    n_retries = 0;
    n_observed = 0;
  }

let events ctx = ctx.ev
let set_events ctx e = ctx.ev <- e
let baseline_kb ctx = ctx.base_kb
let jobs ctx = ctx.n_jobs
let set_jobs ctx j = ctx.n_jobs <- max 1 j
let replay ctx = ctx.replay_mode
let set_replay ctx r = ctx.replay_mode <- r
let cache_dir ctx = Option.map Result_cache.dir ctx.cache

let stats ctx =
  Mutex.protect ctx.lock (fun () ->
      {
        sims = ctx.n_sims;
        sim_seconds = ctx.sim_seconds;
        cache_hits = ctx.n_hits;
        cache_misses = ctx.n_misses;
        arena_builds = ctx.n_arena_builds;
        arena_seconds = ctx.arena_seconds;
        arena_cache_hits = ctx.n_arena_hits;
        arena_cache_misses = ctx.n_arena_misses;
      })

(* Telemetry mirrors of the ctx accounting above: same increment sites,
   but aggregated process-wide and exported through the one end-of-run
   summary/metrics path.  All are deterministic across job counts for
   fault-free runs (see Telemetry's contract); retry/quarantine counts
   are inherently racy under chaos mode. *)
module Tm = Whisper_util.Telemetry

let m_cache_hits = Tm.counter "runner.result_cache.hits"
let m_cache_misses = Tm.counter "runner.result_cache.misses"
let m_sims = Tm.counter "runner.sims"
let m_arena_builds = Tm.counter "runner.arena.builds"
let m_arena_hits = Tm.counter "runner.arena_cache.hits"
let m_arena_misses = Tm.counter "runner.arena_cache.misses"
let m_profiles = Tm.counter "runner.profiles_collected"
let m_retries = Tm.counter "runner.retries"
let m_quarantined = Tm.counter "runner.quarantined"
let m_degraded = Tm.counter "runner.degraded_results"

(* Double-checked memoization over a ctx table.  The compute step runs
   outside the lock, so two domains racing on the same key may both
   compute it; every computation here is a pure function of the key, so
   whichever value lands first is kept and the tables stay consistent
   (and physical equality of repeated sequential lookups is preserved,
   which the memoization tests rely on). *)
let memo ctx tbl key compute =
  match Mutex.protect ctx.lock (fun () -> Hashtbl.find_opt tbl key) with
  | Some v -> v
  | None -> (
      let v = compute () in
      Mutex.protect ctx.lock (fun () ->
          match Hashtbl.find_opt tbl key with
          | Some v -> v
          | None ->
              Hashtbl.add tbl key v;
              v))

let cfg_of ctx (app : Workloads.config) =
  memo ctx ctx.cfgs app.name (fun () -> Workloads.build_cfg app)

let model ctx app ~input =
  let cfg = cfg_of ctx app in
  App_model.create ~cfg ~config:app ~input ()

let source ctx app ~input = App_model.source (model ctx app ~input)

let arena_key ctx (app : Workloads.config) ~input =
  Printf.sprintf "arena/%s/%d/%d/%d" app.name app.seed input ctx.ev

(* One packed arena per (app, input, events), shared read-only by every
   technique and every pool domain.  The persistent cache (when enabled)
   makes the decode-once step survive CLI invocations: a warm run loads
   packed buffers straight from disk and never touches App_model. *)
let arena ctx app ~input =
  let key = arena_key ctx app ~input in
  memo ctx ctx.arenas key (fun () ->
      match Option.bind ctx.arena_cache (fun c -> Arena_cache.find c ~key) with
      | Some a ->
          Mutex.protect ctx.lock (fun () ->
              ctx.n_arena_hits <- ctx.n_arena_hits + 1);
          Tm.incr m_arena_hits;
          a
      | None ->
          if ctx.arena_cache <> None then begin
            Mutex.protect ctx.lock (fun () ->
                ctx.n_arena_misses <- ctx.n_arena_misses + 1);
            Tm.incr m_arena_misses
          end;
          let t0 = Unix.gettimeofday () in
          let a =
            Tm.span ("arena/" ^ app.Workloads.name) (fun () ->
                Arena.build ~events:ctx.ev (model ctx app ~input))
          in
          let dt = Unix.gettimeofday () -. t0 in
          Mutex.protect ctx.lock (fun () ->
              ctx.n_arena_builds <- ctx.n_arena_builds + 1;
              ctx.arena_seconds <- ctx.arena_seconds +. dt);
          Tm.incr m_arena_builds;
          Option.iter (fun c -> Arena_cache.store c ~key a) ctx.arena_cache;
          a)

let lbr_predictor kb () =
  let p = Tage_scl.predictor (Sizes.for_budget ~kb) in
  fun ~pc ~taken ->
    let pred = p.Predictor.predict ~pc in
    p.train ~pc ~taken;
    pred = taken

let profile_key ctx app ~inputs ~kb =
  Printf.sprintf "%s/%s/%d/%d" app.Workloads.name
    (String.concat "," (List.map string_of_int inputs))
    kb ctx.ev

let profile ?(inputs = [ 0 ]) ?baseline_kb ctx app =
  let kb = Option.value baseline_kb ~default:ctx.base_kb in
  let key = profile_key ctx app ~inputs ~kb in
  memo ctx ctx.profiles key (fun () ->
      Tm.span ("profile/" ^ app.Workloads.name) @@ fun () ->
      Tm.incr m_profiles;
      let one input =
        match ctx.replay_mode with
        | `Arena ->
            (* Stage the LBR baseline once: the compiled TAGE-SC-L kernel
               fills a verdict bitmap in one monomorphic pass, and both
               profiling passes replay it through a cursor.  Collection
               calls the predictor exactly once per event in order with a
               fresh instance per pass, so the cursor sequence is
               byte-identical to a fresh closure predictor per pass —
               while running the predictor once instead of twice and at
               compiled speed (profiles equal the closure path's, which
               the runner catalog tests enforce end to end). *)
            let a = arena ctx app ~input in
            let verdicts = Bytes.create ctx.ev in
            (Tage_scl.compiled (Sizes.for_budget ~kb)).Predictor.Compiled.fill
              ~arena:a ~n:ctx.ev ~verdicts;
            let make_predictor () =
              let i = ref 0 in
              fun ~pc:_ ~taken:_ ->
                let v = Bytes.get verdicts !i <> '\000' in
                incr i;
                v
            in
            Profile.collect_arena ~lengths:Workloads.lengths ~events:ctx.ev
              ~arena:a ~make_predictor ()
        | `Closure ->
            Profile.collect ~lengths:Workloads.lengths ~events:ctx.ev
              ~make_source:(fun () -> source ctx app ~input)
              ~make_predictor:(lbr_predictor kb) ()
      in
      match inputs with
      | [ input ] -> one input
      | inputs -> Profile.merge (List.map one inputs))

(* [jobs] defaults to 1 — most callers (experiment tables, batch tasks)
   already run inside a domain pool, where nested fan-out would
   oversubscribe.  Only top-level callers (the CLI analyze command)
   should pass the user's [-j], and may thread their persistent [pool]
   through so consecutive analyses reuse the same worker domains. *)
let whisper_analysis ?(config = Whisper_core.Config.default)
    ?(train_inputs = [ 0 ]) ?(jobs = 1) ?pool ctx app =
  let p = profile ~inputs:train_inputs ctx app in
  Whisper_core.Analyze.run ~config ~jobs ?pool p

let whisper_plan ?(config = Whisper_core.Config.default)
    ?(train_inputs = [ 0 ]) ?(jobs = 1) ?pool ctx app =
  let analysis = whisper_analysis ~config ~train_inputs ~jobs ?pool ctx app in
  let cfg = cfg_of ctx app in
  let train_input = List.hd train_inputs in
  let plan_source =
    match ctx.replay_mode with
    | `Arena when ctx.ev >= Whisper_core.Inject.default_trace_events ->
        Arena.source (arena ctx app ~input:train_input)
    | `Arena | `Closure -> source ctx app ~input:train_input
  in
  Whisper_core.Inject.plan config cfg ~source:plan_source
    ~hints:(Whisper_core.Analyze.to_inject_hints analysis cfg)

(* Offline training shared by both replay paths: each of these returns a
   fresh technique runtime whose state is independent of how events will
   be fed to it, so the closure and arena execs below stay byte-identical
   by construction. *)
let baseline_of ~kb = Tage_scl.predictor (Sizes.for_budget ~kb)

let rombf_runtime ctx app ~train_inputs ~kb n =
  let prof = profile ~inputs:train_inputs ~baseline_kb:kb ctx app in
  let spec = Whisper_rombf.Rombf.train ~n prof in
  Whisper_rombf.Rombf.Runtime.create spec ~baseline:(baseline_of ~kb)

let branchnet_runtime ctx app ~train_inputs ~kb budget =
  let prof = profile ~inputs:train_inputs ~baseline_kb:kb ctx app in
  let spec = Whisper_branchnet.Branchnet.train ~budget prof in
  Whisper_branchnet.Branchnet.Runtime.create spec ~baseline:(baseline_of ~kb)

let whisper_runtime ctx app ~train_inputs ~kb config =
  let prof = profile ~inputs:train_inputs ~baseline_kb:kb ctx app in
  let analysis = Whisper_core.Analyze.run ~config prof in
  let cfg = cfg_of ctx app in
  let train_input = List.hd train_inputs in
  (* The injection plan's correlation pass consumes a fixed-length trace
     (Inject.default_trace_events) regardless of [ctx.ev]; replay it from
     the packed arena when the arena covers it, otherwise fall back to a
     fresh closure source.  Both emit the same stream prefix, so the plan
     is identical either way. *)
  let plan_source =
    match ctx.replay_mode with
    | `Arena when ctx.ev >= Whisper_core.Inject.default_trace_events ->
        Arena.source (arena ctx app ~input:train_input)
    | `Arena | `Closure -> source ctx app ~input:train_input
  in
  let plan =
    Whisper_core.Inject.plan config cfg ~source:plan_source
      ~hints:(Whisper_core.Analyze.to_inject_hints analysis cfg)
  in
  Whisper_core.Runtime.create config ~baseline:(baseline_of ~kb) ~plan

(* Build the per-event exec closure for a technique (closure replay). *)
let make_exec ctx app technique ~train_inputs ~kb =
  match technique with
  | Baseline ->
      let p = baseline_of ~kb in
      fun (e : Branch.event) ->
        let pred = p.Predictor.predict ~pc:e.pc in
        p.train ~pc:e.pc ~taken:e.taken;
        pred = e.taken
  | Ideal -> fun (_ : Branch.event) -> true
  | Mtage_sc ->
      let p = Mtage.predictor () in
      fun (e : Branch.event) ->
        let pred = p.Predictor.predict ~pc:e.pc in
        p.train ~pc:e.pc ~taken:e.taken;
        pred = e.taken
  | Rombf n ->
      let rt = rombf_runtime ctx app ~train_inputs ~kb n in
      fun e -> Whisper_rombf.Rombf.Runtime.exec rt e
  | Branchnet budget ->
      let rt = branchnet_runtime ctx app ~train_inputs ~kb budget in
      fun e -> Whisper_branchnet.Branchnet.Runtime.exec rt e
  | Whisper config ->
      let rt = whisper_runtime ctx app ~train_inputs ~kb config in
      fun e -> Whisper_core.Runtime.exec rt e

(* Same runtimes fed by event index over a packed arena: the predict
   closures read unboxed fields straight out of the arena's buffers, so
   the whole replay path allocates nothing per event.  The heavyweight
   online baselines return staged compiled kernels
   ({!Whisper_bpu.Predictor.Compiled}) and the ideal oracle returns
   [Machine.Oracle], so the machine dispatches once per run instead of
   calling through a closure record per event; the trained runtimes
   (ROMBF / BranchNet / Whisper) keep their indexed exec closures. *)
let make_exec_arena ctx app technique ~train_inputs ~kb ~arena:a =
  match technique with
  | Baseline ->
      Whisper_pipeline.Machine.Compiled
        (Tage_scl.compiled (Sizes.for_budget ~kb)).Predictor.Compiled.fill
  | Ideal -> Whisper_pipeline.Machine.Oracle
  | Mtage_sc ->
      Whisper_pipeline.Machine.Compiled
        (Mtage.compiled ()).Predictor.Compiled.fill
  | Rombf n ->
      let rt = rombf_runtime ctx app ~train_inputs ~kb n in
      Whisper_pipeline.Machine.Indexed
        (fun i ->
          Whisper_rombf.Rombf.Runtime.exec_at rt ~pc:(Arena.pc a i)
            ~taken:(Arena.taken a i))
  | Branchnet budget ->
      let rt = branchnet_runtime ctx app ~train_inputs ~kb budget in
      Whisper_pipeline.Machine.Indexed
        (fun i ->
          Whisper_branchnet.Branchnet.Runtime.exec_at rt ~pc:(Arena.pc a i)
            ~taken:(Arena.taken a i))
  | Whisper config ->
      let rt = whisper_runtime ctx app ~train_inputs ~kb config in
      Whisper_pipeline.Machine.Indexed
        (Whisper_core.Runtime.exec_arena rt ~arena:a)

let run_key ctx app technique ~train_inputs ~test_input ~kb =
  Printf.sprintf "%s/%s/%s/%d/%d/%d" app.Workloads.name
    (technique_key technique)
    (String.concat "," (List.map string_of_int train_inputs))
    test_input kb ctx.ev

let bump_hit ctx =
  Mutex.protect ctx.lock (fun () -> ctx.n_hits <- ctx.n_hits + 1);
  Tm.incr m_cache_hits

let bump_miss ctx =
  Mutex.protect ctx.lock (fun () -> ctx.n_misses <- ctx.n_misses + 1);
  Tm.incr m_cache_misses

(* What a quarantined work item reports: NaN for every cycle/stall
   account (rendered as DEGRADED in tables), zeros elsewhere.  The row
   survives in the output so a chaos run still prints a full table. *)
let degraded_result () =
  {
    Whisper_pipeline.Machine.cycles = Float.nan;
    instrs = 0;
    branches = 0;
    mispredicts = 0;
    misp_stall = Float.nan;
    fe_stall = Float.nan;
    btb_stall = Float.nan;
    l1i_misses = 0;
    exposed_misses = 0;
    seg_mispredicts = Array.make 10 0;
    seg_instrs = Array.make 10 0;
  }

let quarantined ctx =
  Mutex.protect ctx.lock (fun () ->
      Hashtbl.fold (fun k e acc -> (k, e) :: acc) ctx.quarantine []
      |> List.sort compare)

(* External quarantine entry point for the sweep supervisor: items that
   killed their worker process never raise inside this process, so the
   supervisor marks them here and {!run} reports them degraded instead
   of silently recomputing them inline at aggregation time. *)
let note_quarantined ctx ~key err =
  Mutex.protect ctx.lock (fun () -> Hashtbl.replace ctx.quarantine key err)

let run ?(train_inputs = [ 0 ]) ?(test_input = 1) ?baseline_kb ctx app
    technique =
  let kb = Option.value baseline_kb ~default:ctx.base_kb in
  let key = run_key ctx app technique ~train_inputs ~test_input ~kb in
  if Mutex.protect ctx.lock (fun () -> Hashtbl.mem ctx.quarantine key) then begin
    Tm.incr m_degraded;
    degraded_result ()
  end
  else
    memo ctx ctx.results key (fun () ->
        match Option.bind ctx.cache (fun c -> Result_cache.find c ~key) with
        | Some r ->
            bump_hit ctx;
            r
        | None ->
            if ctx.cache <> None then bump_miss ctx;
            let t0 = Unix.gettimeofday () in
            let r =
              Tm.span
                (Printf.sprintf "sim/%s/%s" app.Workloads.name
                   (technique_name technique))
              @@ fun () ->
              match ctx.replay_mode with
              | `Arena ->
                  let a = arena ctx app ~input:test_input in
                  let exec =
                    make_exec_arena ctx app technique ~train_inputs ~kb
                      ~arena:a
                  in
                  Whisper_pipeline.Machine.run_arena_exec ~events:ctx.ev
                    ~arena:a ~exec ()
              | `Closure ->
                  let exec = make_exec ctx app technique ~train_inputs ~kb in
                  Whisper_pipeline.Machine.run ~events:ctx.ev
                    ~source:(source ctx app ~input:test_input)
                    ~predict:exec ()
            in
            let dt = Unix.gettimeofday () -. t0 in
            Mutex.protect ctx.lock (fun () ->
                ctx.n_sims <- ctx.n_sims + 1;
                ctx.sim_seconds <- ctx.sim_seconds +. dt);
            Tm.incr m_sims;
            Option.iter (fun c -> Result_cache.store c ~key r) ctx.cache;
            r)

(* ------------------------------------------------------------------ *)
(* Declarative work items and the parallel batch driver               *)
(* ------------------------------------------------------------------ *)

type work =
  | Sim of {
      app : Workloads.config;
      technique : technique;
      train_inputs : int list;
      test_input : int;
      baseline_kb : int option;
    }
  | Collect of {
      app : Workloads.config;
      inputs : int list;
      baseline_kb : int option;
    }
  | Prepare of { app : Workloads.config; input : int }
      (* internal: build/load one (app, input) arena before the phases
         that replay it fan out, so racing domains never build the same
         arena twice *)

let sim ?(train_inputs = [ 0 ]) ?(test_input = 1) ?baseline_kb app technique =
  Sim { app; technique; train_inputs; test_input; baseline_kb }

let collect ?(inputs = [ 0 ]) ?baseline_kb app =
  Collect { app; inputs; baseline_kb }

let work_key ctx = function
  | Sim w ->
      run_key ctx w.app w.technique ~train_inputs:w.train_inputs
        ~test_input:w.test_input
        ~kb:(Option.value w.baseline_kb ~default:ctx.base_kb)
  | Collect w ->
      "profile/"
      ^ profile_key ctx w.app ~inputs:w.inputs
          ~kb:(Option.value w.baseline_kb ~default:ctx.base_kb)
  | Prepare w -> arena_key ctx w.app ~input:w.input

let exec_work ctx = function
  | Sim w ->
      ignore
        (run ~train_inputs:w.train_inputs ~test_input:w.test_input
           ?baseline_kb:w.baseline_kb ctx w.app w.technique)
  | Collect w ->
      ignore (profile ~inputs:w.inputs ?baseline_kb:w.baseline_kb ctx w.app)
  | Prepare w -> ignore (arena ctx w.app ~input:w.input)

(* Profiles a Sim's training step will need, declared explicitly so the
   batch driver can collect each one exactly once before the simulations
   fan out (instead of racing domains re-collecting the same profile). *)
let implied_collects ctx works =
  List.filter_map
    (function
      | Sim w when technique_needs_profile w.technique ->
          let kb = Option.value w.baseline_kb ~default:ctx.base_kb in
          (* a cached result needs no training, hence no profile *)
          let key =
            run_key ctx w.app w.technique ~train_inputs:w.train_inputs
              ~test_input:w.test_input ~kb
          in
          let cached =
            Hashtbl.mem ctx.results key
            || Option.fold ~none:false
                 ~some:(fun c -> Sys.file_exists (Result_cache.path c ~key))
                 ctx.cache
          in
          if cached then None
          else Some (collect ~inputs:w.train_inputs ~baseline_kb:kb w.app)
      | Sim _ | Collect _ | Prepare _ -> None)
    works

(* The arenas the collect and sim phases will replay, one Prepare item
   per distinct (app, input).  Quarantining a Prepare under chaos is
   harmless: the consumer simply rebuilds the arena inline. *)
let implied_arenas ctx ~collects ~simulations =
  if ctx.replay_mode <> `Arena then []
  else
    let seen = Hashtbl.create 16 in
    let add acc app input =
      let k = arena_key ctx app ~input in
      if Hashtbl.mem seen k || Hashtbl.mem ctx.arenas k then acc
      else begin
        Hashtbl.add seen k ();
        Prepare { app; input } :: acc
      end
    in
    let acc =
      List.fold_left
        (fun acc -> function
          | Collect w -> List.fold_left (fun acc i -> add acc w.app i) acc w.inputs
          | Sim _ | Prepare _ -> acc)
        [] collects
    in
    let acc =
      List.fold_left
        (fun acc -> function
          | Sim w ->
              let kb = Option.value w.baseline_kb ~default:ctx.base_kb in
              let key =
                run_key ctx w.app w.technique ~train_inputs:w.train_inputs
                  ~test_input:w.test_input ~kb
              in
              let cached =
                Hashtbl.mem ctx.results key
                || Option.fold ~none:false
                     ~some:(fun c -> Sys.file_exists (Result_cache.path c ~key))
                     ctx.cache
              in
              if cached then acc else add acc w.app w.test_input
          | Collect _ | Prepare _ -> acc)
        acc simulations
    in
    List.rev acc

let dedup ctx works =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun w ->
      let k = work_key ctx w in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    works

(* Chaos/degraded batch execution: each work item runs under the fault
   injector and the retry/timeout policy.  Items that exhaust their
   attempts are quarantined — the batch itself never fails, and callers
   later reading the item via {!run} get a {!degraded_result}. *)
let run_phase_degraded ctx works =
  let arr = Array.of_list works in
  let task ~attempt w =
    if attempt > 1 then begin
      Mutex.protect ctx.lock (fun () -> ctx.n_retries <- ctx.n_retries + 1);
      Tm.incr m_retries
    end;
    let key = work_key ctx w in
    let body () = exec_work ctx w in
    let run_it =
      match ctx.fault with
      | None -> body
      | Some f ->
          fun () -> Whisper_util.Fault.wrap f ~key:("task/" ^ key) ~attempt body
    in
    try run_it ()
    with e ->
      Mutex.protect ctx.lock (fun () -> ctx.n_observed <- ctx.n_observed + 1);
      raise e
  in
  Whisper_util.Pool.map_retry ~jobs:ctx.n_jobs ~policy:ctx.policy task arr
  |> Array.iteri (fun i res ->
         match res with
         | Ok () -> ()
         | Error e ->
             let key = work_key ctx arr.(i) in
             let err =
               Whisper_util.Whisper_error.of_exn ~context:key
                 Whisper_util.Whisper_error.Task e
             in
             (* terminal timeouts never raised inside [task], so they
                have not been counted as observed yet *)
             let timed_out =
               match err.Whisper_util.Whisper_error.kind with
               | Whisper_util.Whisper_error.Timeout _ -> true
               | _ -> false
             in
             Tm.incr m_quarantined;
             Mutex.protect ctx.lock (fun () ->
                 if timed_out then ctx.n_observed <- ctx.n_observed + 1;
                 Hashtbl.replace ctx.quarantine key err))

let run_phase ctx works =
  match works with
  | [] -> ()
  | works
    when ctx.fault <> None || ctx.policy <> Whisper_util.Pool.default_policy ->
      run_phase_degraded ctx works
  | [ w ] -> exec_work ctx w
  | works when ctx.n_jobs <= 1 -> List.iter (exec_work ctx) works
  | works ->
      (* phases are short and batches run many of them: reuse the
         process-wide pool instead of spawning domains per phase *)
      let pool = Whisper_util.Pool.shared ~jobs:ctx.n_jobs in
      Whisper_util.Pool.map_pool pool (exec_work ctx) (Array.of_list works)
      |> Array.iter (function Ok () -> () | Error e -> raise e)

let run_batch ctx works =
  let works = dedup ctx works in
  let collects, simulations =
    List.partition (function Collect _ | Prepare _ -> true | Sim _ -> false)
      works
  in
  let collects = dedup ctx (collects @ implied_collects ctx simulations) in
  run_phase ctx (implied_arenas ctx ~collects ~simulations);
  run_phase ctx collects;
  run_phase ctx simulations

let fault_summary ctx =
  let injected =
    match ctx.fault with
    | None -> 0
    | Some f -> Whisper_util.Fault.injected f
  in
  let cache_write_failures, cache_corrupt_dropped =
    let rw, rd =
      match ctx.cache with
      | None -> (0, 0)
      | Some c ->
          let k = Result_cache.counters c in
          (k.Result_cache.write_failures, k.Result_cache.corrupt_dropped)
    in
    let aw, ad =
      match ctx.arena_cache with
      | None -> (0, 0)
      | Some c ->
          let k = Arena_cache.counters c in
          (k.Arena_cache.write_failures, k.Arena_cache.corrupt_dropped)
    in
    (rw + aw, rd + ad)
  in
  Mutex.protect ctx.lock (fun () ->
      {
        Report.injected;
        observed = ctx.n_observed;
        retries = ctx.n_retries;
        quarantined = Hashtbl.length ctx.quarantine;
        cache_write_failures;
        cache_corrupt_dropped;
      })
