(* Bounded int-key / int-payload map with insertion-ordered eviction,
   laid out entirely in int arrays so the hot probe/insert path never
   allocates.

   Structure: a fixed pool of [cap] nodes (parallel [keys]/[vals]
   arrays), a power-of-two bucket table of chained node indices for the
   key lookup, and intrusive recency links ([qprev]/[qnext]) threading
   the live nodes from most- to least-recently inserted.  Nodes are
   handed out monotonically until the pool is full; after that every
   insert of a new key reuses the evicted tail's node, so no freelist is
   needed.  Every operation is O(1) expected (chains carry a <= 0.5 load
   factor) and allocation-free. *)

type t = {
  cap : int;
  bmask : int;
  buckets : int array; (* bucket -> first node index, or -1 *)
  keys : int array; (* node -> key *)
  vals : int array; (* node -> payload *)
  hnext : int array; (* node -> next node in its bucket chain, or -1 *)
  qprev : int array; (* node -> more recently inserted node, or -1 *)
  qnext : int array; (* node -> less recently inserted node, or -1 *)
  mutable head : int; (* most recently inserted node, or -1 *)
  mutable tail : int; (* least recently inserted node, or -1 *)
  mutable len : int;
}

let miss = -1

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ~capacity =
  if capacity <= 0 then invalid_arg "Intlru.create";
  let nbuckets = pow2_at_least (2 * capacity) 8 in
  {
    cap = capacity;
    bmask = nbuckets - 1;
    buckets = Array.make nbuckets (-1);
    keys = Array.make capacity 0;
    vals = Array.make capacity 0;
    hnext = Array.make capacity (-1);
    qprev = Array.make capacity (-1);
    qnext = Array.make capacity (-1);
    head = -1;
    tail = -1;
    len = 0;
  }

let capacity t = t.cap
let length t = t.len

(* Multiplicative mix: keys are typically 4-byte-aligned PCs, so the raw
   low bits carry no entropy; fold the product's high bits back in. *)
let bucket t k =
  let h = k * 0x9E3779B97F4A7C1 in
  (h lxor (h lsr 29)) land t.bmask

let find_node t ~bucket:b k =
  let keys = t.keys and hnext = t.hnext in
  let rec go i =
    if i < 0 then -1
    else if Array.unsafe_get keys i = k then i
    else go (Array.unsafe_get hnext i)
  in
  go (Array.unsafe_get t.buckets b)

let probe t k =
  let i = find_node t ~bucket:(bucket t k) k in
  if i < 0 then miss else Array.unsafe_get t.vals i

let mem t k = find_node t ~bucket:(bucket t k) k >= 0

let unlink_recency t i =
  let p = t.qprev.(i) and n = t.qnext.(i) in
  if p >= 0 then t.qnext.(p) <- n else t.head <- n;
  if n >= 0 then t.qprev.(n) <- p else t.tail <- p

let push_front t i =
  t.qprev.(i) <- -1;
  t.qnext.(i) <- t.head;
  if t.head >= 0 then t.qprev.(t.head) <- i else t.tail <- i;
  t.head <- i

let remove_from_chain t ~bucket:b i =
  let first = t.buckets.(b) in
  if first = i then t.buckets.(b) <- t.hnext.(i)
  else begin
    let rec go j =
      let n = t.hnext.(j) in
      if n = i then t.hnext.(j) <- t.hnext.(i) else go n
    in
    go first
  end

let insert t k v =
  if v < 0 then invalid_arg "Intlru.insert: negative payload";
  let b = bucket t k in
  let i = find_node t ~bucket:b k in
  if i >= 0 then begin
    (* re-insertion: update the payload and refresh recency *)
    t.vals.(i) <- v;
    unlink_recency t i;
    push_front t i
  end
  else begin
    let i =
      if t.len < t.cap then begin
        let i = t.len in
        t.len <- t.len + 1;
        i
      end
      else begin
        (* evict the least-recently-inserted key; reuse its node *)
        let i = t.tail in
        remove_from_chain t ~bucket:(bucket t t.keys.(i)) i;
        unlink_recency t i;
        i
      end
    in
    t.keys.(i) <- k;
    t.vals.(i) <- v;
    t.hnext.(i) <- t.buckets.(b);
    t.buckets.(b) <- i;
    push_front t i
  end

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) (-1);
  t.head <- -1;
  t.tail <- -1;
  t.len <- 0

let fold f init t =
  let rec go acc i = if i < 0 then acc else go (f acc t.keys.(i) t.vals.(i)) t.qnext.(i) in
  go init t.head
