type t = {
  sets : int array array;  (* [set].[way] = line tag, way 0 = MRU *)
  set_mask : int;
  line_shift : int;
  assoc : int;
  mutable n_hit : int;
  mutable n_miss : int;
}

let create ?bytes ?entries ~assoc ~line_bytes () =
  let entries =
    match (bytes, entries) with
    | Some b, None -> b / line_bytes
    | None, Some e -> e
    | _ -> invalid_arg "Cache.create: give exactly one of ~bytes/~entries"
  in
  if entries < assoc || assoc < 1 then invalid_arg "Cache.create";
  let n_sets = entries / assoc in
  if not (Whisper_util.Bitops.is_power_of_two n_sets) then
    invalid_arg "Cache.create: sets must be a power of two";
  if not (Whisper_util.Bitops.is_power_of_two line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  {
    sets = Array.make_matrix n_sets assoc (-1);
    set_mask = n_sets - 1;
    line_shift = Whisper_util.Bitops.log2_ceil line_bytes;
    assoc;
    n_hit = 0;
    n_miss = 0;
  }

let entries t = (t.set_mask + 1) * t.assoc

let find_way set assoc tag =
  let rec go i = if i >= assoc then -1 else if set.(i) = tag then i else go (i + 1) in
  go 0

let access t addr =
  let line = addr lsr t.line_shift in
  let set = t.sets.(line land t.set_mask) in
  let tag = line lsr 0 in
  let way = find_way set t.assoc tag in
  let hit = way >= 0 in
  let from = if hit then way else t.assoc - 1 in
  for i = from downto 1 do
    set.(i) <- set.(i - 1)
  done;
  set.(0) <- tag;
  if hit then t.n_hit <- t.n_hit + 1 else t.n_miss <- t.n_miss + 1;
  hit

let probe t addr =
  let line = addr lsr t.line_shift in
  let set = t.sets.(line land t.set_mask) in
  find_way set t.assoc line >= 0

let hits t = t.n_hit
let misses t = t.n_miss
