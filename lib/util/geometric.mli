(** Geometric series of history lengths (paper §III-A).

    Whisper evaluates candidate history lengths drawn from a geometric
    series [a, ar, ar^2, ..., ar^(m-1)] with ratio [r = (n/a)^(1/(m-1))].
    With the paper's defaults (a = 8, n = 1024, m = 16) the series is
    8, 11, 15, 21, ..., 1024. *)

val series : a:int -> n:int -> m:int -> int array
(** [series ~a ~n ~m] computes the [m]-term series from minimum length [a]
    to maximum length [n].  Terms are rounded to the nearest integer, are
    strictly increasing (ties are bumped up by one), start at [a] and end
    at [n].  @raise Invalid_argument unless [0 < a <= n] and [m >= 2]. *)

val default : int array
(** The paper's series: [series ~a:8 ~n:1024 ~m:16]. *)

val index_of_length : int array -> int -> int option
(** [index_of_length s len] is the index of [len] in [s], if present. *)

val bucket : int array -> int -> int
(** [bucket s len] is the index of the smallest series term [>= len]
    (clamped to the last index), used to histogram correlation lengths. *)
