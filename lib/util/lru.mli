(** A bounded LRU map with O(1) access and update.

    Used by the misprediction classifier (capacity vs. conflict analysis)
    and by the run-time hint buffer.  Keys are ints (PCs, substream ids). *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty LRU holding at most [capacity]
    bindings.  @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> int -> 'a option
(** [find t k] returns the binding and promotes [k] to most-recently-used. *)

val peek : 'a t -> int -> 'a option
(** Like {!find} but without promoting. *)

val mem : 'a t -> int -> bool
(** Membership test, without promoting. *)

val add : 'a t -> int -> 'a -> int option
(** [add t k v] inserts or updates [k], promoting it to MRU.  Returns the
    evicted key, if the insertion displaced one. *)

val remove : 'a t -> int -> unit

val clear : 'a t -> unit

val fold : ('b -> int -> 'a -> 'b) -> 'b -> 'a t -> 'b
(** Fold over bindings from most- to least-recently used. *)
