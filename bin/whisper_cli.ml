(* whisper — command line front-end to the Whisper reproduction.

   Subcommands:
     list        catalogue of synthetic applications
     simulate    run one application under one technique
     profile     collect + summarize an in-production profile
     analyze     run the offline branch analysis, show hints
     trace       PT-encode a trace to a file / verify round trip
     experiment  regenerate a paper table/figure (or all of them)
     sweep       crash-safe sharded fleet sweep (journaled, resumable)
     worker      internal sweep worker process *)

open Cmdliner
open Whisper_trace

let find_app name =
  match Workloads.by_name name with
  | Some c -> c
  | None ->
      Printf.eprintf "unknown application %S; try `whisper list`\n" name;
      exit 1

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    Printf.printf "%-18s %-10s %10s %10s %10s\n" "name" "family" "functions"
      "branches" "code-KB";
    Array.iter
      (fun (c : Workloads.config) ->
        let cfg = Workloads.build_cfg c in
        Printf.printf "%-18s %-10s %10d %10d %10d\n" c.name
          (match c.family with
          | Workloads.Datacenter -> "datacenter"
          | Workloads.Spec -> "spec")
          c.functions (Cfg.n_branches cfg)
          (cfg.Cfg.footprint / 1024))
      Workloads.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the synthetic applications")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let app_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "app"; "a" ] ~docv:"NAME" ~doc:"Application name (see `list`)")

let events_arg default =
  Arg.(
    value & opt int default
    & info [ "events"; "n" ] ~docv:"N"
        ~env:(Cmd.Env.info "WHISPER_EVENTS")
        ~doc:"Branch events to simulate")

let jobs_arg =
  Arg.(
    value
    & opt int (Whisper_util.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~env:(Cmd.Env.info "WHISPER_JOBS")
        ~doc:
          "Worker domains for independent simulations (default: the \
           recommended domain count)")

let replay_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "arena" -> Ok `Arena
    | "closure" -> Ok `Closure
    | s -> Error (`Msg (Printf.sprintf "unknown replay mode %S" s))
  in
  let print fmt (r : Whisper_sim.Runner.replay) =
    Format.pp_print_string fmt
      (match r with `Arena -> "arena" | `Closure -> "closure")
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Arena
    & info [ "replay" ] ~docv:"MODE"
        ~env:(Cmd.Env.info "WHISPER_REPLAY")
        ~doc:
          "Event delivery for simulations: $(b,arena) (default) decodes each \
           (app, input) stream once into a packed buffer shared across \
           techniques and worker domains; $(b,closure) regenerates events \
           per simulation (the differential oracle).  Results are identical")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Disable the persistent on-disk result cache")

let cache_dir_arg =
  Arg.(
    value
    & opt string Whisper_sim.Result_cache.default_dir
    & info [ "cache-dir" ] ~docv:"DIR"
        ~env:(Cmd.Env.info "WHISPER_CACHE_DIR")
        ~doc:"Directory of the persistent result cache")

let faults_arg =
  Arg.(
    value & opt float 0.0
    & info [ "faults" ] ~docv:"P"
        ~env:(Cmd.Env.info "WHISPER_FAULTS")
        ~doc:
          "Chaos mode: inject a deterministic fault with probability $(docv) \
           per work item / cache entry.  Failing items are retried and, if \
           they keep failing, reported as DEGRADED rows instead of aborting \
           the run")

let fault_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "fault-seed" ] ~docv:"SEED"
        ~env:(Cmd.Env.info "WHISPER_FAULT_SEED")
        ~doc:
          "Seed of the fault injector; the same seed reproduces the same \
           faults regardless of $(b,--jobs)")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts granted to a failing or timed-out work item \
           (exponential backoff between attempts)")

let task_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "task-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-attempt wall budget of one work item; a timed-out attempt is \
           retried, then quarantined")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~env:(Cmd.Env.info "WHISPER_METRICS_OUT")
        ~doc:
          "Write aggregated telemetry (counters, histograms, span rollups) \
           as versioned JSON (schema in EXPERIMENTS.md)")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~env:(Cmd.Env.info "WHISPER_TRACE_OUT")
        ~doc:
          "Write timing spans as Chrome trace_events JSON (load in \
           about://tracing or ui.perfetto.dev)")

(* One snapshot feeds every exporter so the summary, metrics.json and the
   Chrome trace all describe the same instant. *)
let emit_telemetry ?(summary = false) ~metrics_out ~trace_out () =
  let module T = Whisper_util.Telemetry in
  if summary || metrics_out <> None || trace_out <> None then begin
    let snap = T.snapshot () in
    if summary then
      List.iter
        (fun l -> Printf.eprintf "telemetry: %s\n" l)
        (T.summary_lines snap);
    Option.iter
      (fun path ->
        T.write_file ~path (T.to_json_string snap);
        Printf.eprintf "telemetry: metrics written to %s\n" path)
      metrics_out;
    Option.iter
      (fun path ->
        T.write_file ~path (T.to_chrome snap);
        Printf.eprintf "telemetry: trace written to %s\n" path)
      trace_out
  end

let make_ctx ~events ~baseline_kb ~jobs ~replay ~no_cache ~cache_dir
    ?(faults = 0.0) ?(fault_seed = 42) ?(retries = 2) ?task_timeout () =
  let cache_dir = if no_cache then None else Some cache_dir in
  (* an injected hang must outlast the timeout, or it would never trip it *)
  let hang_s = Option.map (fun t -> 1.5 *. t) task_timeout in
  Whisper_sim.Runner.create_ctx ~events ~baseline_kb ~jobs ~replay ?cache_dir
    ~faults ~fault_seed ~retries ?task_timeout ?hang_s ()

let input_arg =
  Arg.(
    value & opt int 1
    & info [ "input"; "i" ] ~docv:"K" ~doc:"Workload input variant")

let kb_arg =
  Arg.(
    value & opt int 64
    & info [ "baseline-kb" ] ~docv:"KB" ~doc:"TAGE-SC-L storage budget")

let technique_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "baseline" | "tage-scl" -> Ok Whisper_sim.Runner.Baseline
    | "ideal" -> Ok Whisper_sim.Runner.Ideal
    | "mtage" | "mtage-sc" -> Ok Whisper_sim.Runner.Mtage_sc
    | "rombf4" | "4b-rombf" -> Ok (Whisper_sim.Runner.Rombf 4)
    | "rombf8" | "8b-rombf" -> Ok (Whisper_sim.Runner.Rombf 8)
    | "branchnet8k" ->
        Ok (Whisper_sim.Runner.Branchnet (Whisper_branchnet.Branchnet.Budget 8192))
    | "branchnet32k" ->
        Ok
          (Whisper_sim.Runner.Branchnet (Whisper_branchnet.Branchnet.Budget 32768))
    | "branchnet" ->
        Ok (Whisper_sim.Runner.Branchnet Whisper_branchnet.Branchnet.Unlimited)
    | "whisper" -> Ok (Whisper_sim.Runner.Whisper Whisper_core.Config.default)
    | s -> Error (`Msg (Printf.sprintf "unknown technique %S" s))
  in
  let print fmt t = Format.pp_print_string fmt (Whisper_sim.Runner.technique_name t) in
  Arg.(
    value
    & opt (conv (parse, print)) Whisper_sim.Runner.Baseline
    & info [ "technique"; "t" ] ~docv:"TECH"
        ~doc:
          "One of: baseline, ideal, mtage, rombf4, rombf8, branchnet8k, \
           branchnet32k, branchnet, whisper")

let simulate_cmd =
  let run app technique events input kb jobs replay no_cache cache_dir
      metrics_out trace_out =
    let app = find_app app in
    let ctx =
      make_ctx ~events ~baseline_kb:kb ~jobs ~replay ~no_cache ~cache_dir ()
    in
    let r = Whisper_sim.Runner.run ~test_input:input ctx app technique in
    emit_telemetry ~metrics_out ~trace_out ();
    let open Whisper_pipeline.Machine in
    Printf.printf "app            %s (input %d)\n" app.Workloads.name input;
    Printf.printf "technique      %s\n" (Whisper_sim.Runner.technique_name technique);
    Printf.printf "events         %d branches, %d instructions\n" r.branches r.instrs;
    Printf.printf "cycles         %.0f  (IPC %.3f)\n" r.cycles (ipc r);
    Printf.printf "mispredicts    %d  (branch-MPKI %.2f)\n" r.mispredicts (mpki r);
    Printf.printf "stalls         mispredict %.0f, frontend %.0f, btb %.0f cycles\n"
      r.misp_stall r.fe_stall r.btb_stall;
    Printf.printf "L1i misses     %d (%d exposed past FDIP)\n" r.l1i_misses
      r.exposed_misses;
    match Whisper_sim.Runner.cache_dir ctx with
    | None -> ()
    | Some dir ->
        let s = Whisper_sim.Runner.stats ctx in
        Printf.printf "cache          %s (%s)\n" dir
          (if s.Whisper_sim.Runner.cache_hits > 0 then "hit" else "miss, stored")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate one application under one technique")
    Term.(
      const run $ app_arg $ technique_arg $ events_arg 1_200_000 $ input_arg
      $ kb_arg $ jobs_arg $ replay_arg $ no_cache_arg $ cache_dir_arg
      $ metrics_out_arg $ trace_out_arg)

let profile_cmd =
  let save_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the profile to a file")
  in
  let run app events kb save =
    let app = find_app app in
    let ctx = Whisper_sim.Runner.create_ctx ~events ~baseline_kb:kb () in
    let p = Whisper_sim.Runner.profile ctx app in
    Option.iter
      (fun path ->
        Profile_io.save p ~path;
        Printf.printf "profile written to %s\n" path)
      save;
    Printf.printf "app              %s\n" app.Workloads.name;
    Printf.printf "events           %d (%d instructions)\n"
      (Profile.total_branches p) (Profile.total_instrs p);
    Printf.printf "baseline MPKI    %.2f\n" (Profile.mpki p);
    Printf.printf "static branches  %d\n" (Profile.n_static_branches p);
    let cands = Profile.candidates p in
    Printf.printf "candidates       %d\n" (Array.length cands);
    Printf.printf "top mispredicting branches:\n";
    Array.iteri
      (fun i pc ->
        if i < 10 then
          match Profile.stat p ~pc with
          | Some s ->
              Printf.printf "  pc=0x%x execs=%d mispred=%d taken=%.0f%%\n" pc
                s.Profile.execs s.Profile.mispred
                (100.0 *. float_of_int s.Profile.taken_cnt
                /. float_of_int (max 1 s.Profile.execs))
          | None -> ())
      cands
  in
  Cmd.v (Cmd.info "profile" ~doc:"Collect and summarize a profile")
    Term.(const run $ app_arg $ events_arg 1_200_000 $ kb_arg $ save_arg)

let analyze_cmd =
  let load_arg =
    Arg.(
      value & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"Analyze a saved profile instead of collecting one")
  in
  let save_plan_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save-plan" ] ~docv:"FILE"
          ~doc:"Write the hint-injection plan (the 'updated binary')")
  in
  let run app events kb load save_plan jobs =
    let app = find_app app in
    let ctx = Whisper_sim.Runner.create_ctx ~events ~baseline_kb:kb () in
    (* one persistent pool for the whole command: spawned here, reused by
       every Analyze.run chunk-claiming fan-out (jobs - 1 workers; the
       calling domain is the remaining claimer) *)
    let pool =
      if jobs > 1 then Some (Whisper_util.Pool.shared ~jobs:(jobs - 1))
      else None
    in
    let analysis =
      match load with
      | Some path -> (
          match Profile_io.load ~path with
          | Ok p -> Whisper_core.Analyze.run ~jobs ?pool p
          | Error e ->
              Printf.eprintf "error: %s\n"
                (Whisper_util.Whisper_error.to_string e);
              exit 1)
      | None -> Whisper_sim.Runner.whisper_analysis ~jobs ?pool ctx app
    in
    Option.iter
      (fun path ->
        let cfg = Whisper_sim.Runner.cfg_of ctx app in
        let plan =
          Whisper_core.Inject.plan Whisper_core.Config.default cfg
            ~source:
              (App_model.source (App_model.create ~cfg ~config:app ~input:0 ()))
            ~hints:(Whisper_core.Analyze.to_inject_hints analysis cfg)
        in
        Whisper_core.Plan_io.save plan ~path;
        Printf.printf "injection plan written to %s\n" path)
      save_plan;
    Printf.printf "app             %s\n" app.Workloads.name;
    Printf.printf "candidates      %d\n" analysis.Whisper_core.Analyze.considered;
    Printf.printf "hints emitted   %d\n" (Whisper_core.Analyze.hint_count analysis);
    Printf.printf "training time   %.2fs\n"
      analysis.Whisper_core.Analyze.training_seconds;
    Printf.printf "first hints:\n";
    List.iteri
      (fun i (pc, (c : Whisper_core.History_select.choice)) ->
        if i < 10 then begin
          let lengths = Workloads.lengths in
          Printf.printf
            "  pc=0x%x %s len=%d formula=%#x profile: %d -> %d mispredicts\n" pc
            (match c.bias with
            | Whisper_core.Brhint.Formula -> "formula"
            | Whisper_core.Brhint.Always_taken -> "always "
            | Whisper_core.Brhint.Never_taken -> "never  "
            | Whisper_core.Brhint.Dynamic -> "dynamic")
            lengths.(c.len_idx) c.formula_id c.baseline_mispred c.sample_mispred
        end)
      analysis.Whisper_core.Analyze.decisions
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Run Whisper's offline branch analysis")
    Term.(
      const run $ app_arg $ events_arg 1_200_000 $ kb_arg $ load_arg
      $ save_plan_arg $ jobs_arg)

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "trace.pt"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file")
  in
  let run app events input out =
    let app = find_app app in
    let cfg = Workloads.build_cfg app in
    let m = App_model.create ~cfg ~config:app ~input () in
    let events_arr = Branch.take (App_model.source m) events in
    let encoded = Pt_codec.encode ~cfg events_arr in
    let oc = open_out_bin out in
    output_bytes oc encoded;
    close_out oc;
    (* verify the round trip, as a real collector's self-check would *)
    (match Pt_codec.decode ~cfg encoded with
    | Ok decoded -> assert (decoded = events_arr)
    | Error e ->
        Printf.eprintf "round-trip failed: %s\n"
          (Whisper_util.Whisper_error.to_string e);
        exit 1);
    Printf.printf "wrote %d events to %s (%d bytes, %.2f bytes/branch)\n" events
      out (Bytes.length encoded)
      (float_of_int (Bytes.length encoded) /. float_of_int events);
    Printf.printf "round-trip verified\n"
  in
  Cmd.v (Cmd.info "trace" ~doc:"Record a PT-encoded branch trace")
    Term.(const run $ app_arg $ events_arg 100_000 $ input_arg $ out_arg)

let classify_cmd =
  let run app events kb input =
    let app = find_app app in
    let cfg = Workloads.build_cfg app in
    let sizes = Whisper_bpu.Sizes.for_budget ~kb in
    let entries =
      sizes.Whisper_bpu.Sizes.tage.Whisper_bpu.Tage.n_tables
      * (1 lsl sizes.Whisper_bpu.Sizes.tage.Whisper_bpu.Tage.log_entries)
    in
    let classifier = Whisper_core.Classify.create ~capacity_entries:entries () in
    let p = Whisper_bpu.Tage_scl.predictor sizes in
    let src = App_model.source (App_model.create ~cfg ~config:app ~input ()) in
    for _ = 1 to events do
      let e = src () in
      let pred = p.Whisper_bpu.Predictor.predict ~pc:e.Branch.pc in
      p.train ~pc:e.Branch.pc ~taken:e.Branch.taken;
      ignore
        (Whisper_core.Classify.note classifier ~pc:e.Branch.pc
           ~taken:e.Branch.taken
           ~mispredicted:(pred <> e.Branch.taken))
    done;
    let c = Whisper_core.Classify.counts classifier in
    Printf.printf "app           %s (input %d, %dKB baseline)
"
      app.Workloads.name input kb;
    Printf.printf "mispredicts   %d
" (Whisper_core.Classify.total c);
    Format.printf "breakdown     %a@." Whisper_core.Classify.pp_counts c
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Classify one application's mispredictions (compulsory/capacity/conflict/conditional)")
    Term.(const run $ app_arg $ events_arg 1_200_000 $ kb_arg $ input_arg)

let experiment_cmd =
  let id_arg =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id (table1..fig23) or 'all'")
  in
  let csv_arg =
    Arg.(
      value & opt (some string) None
      & info [ "csv-dir" ] ~docv:"DIR" ~doc:"Also write results as CSV files")
  in
  let run id events kb csv_dir jobs replay no_cache cache_dir faults fault_seed
      retries task_timeout metrics_out trace_out =
    let ctx =
      make_ctx ~events ~baseline_kb:kb ~jobs ~replay ~no_cache ~cache_dir
        ~faults ~fault_seed ~retries ?task_timeout ()
    in
    let chaos = faults > 0.0 || task_timeout <> None in
    let ids =
      if id = "all" then Whisper_sim.Experiments.all_ids else [ id ]
    in
    List.iter
      (fun id ->
        match Whisper_sim.Experiments.by_id id with
        | None ->
            Printf.eprintf "unknown experiment %S\n" id;
            exit 1
        | Some f ->
            let before = Whisper_sim.Runner.stats ctx in
            let fbefore = Whisper_sim.Runner.fault_summary ctx in
            let t0 = Unix.gettimeofday () in
            let report =
              Whisper_util.Telemetry.span ("experiment/" ^ id) (fun () ->
                  f ctx)
            in
            let wall_s = Unix.gettimeofday () -. t0 in
            let after = Whisper_sim.Runner.stats ctx in
            let report =
              Whisper_sim.Report.with_timing
                {
                  Whisper_sim.Report.wall_s;
                  sims = after.sims - before.sims;
                  sim_seconds = after.sim_seconds -. before.sim_seconds;
                  cache_hits = after.cache_hits - before.cache_hits;
                  cache_misses = after.cache_misses - before.cache_misses;
                }
                report
            in
            let report =
              if not chaos then report
              else
                let fa = Whisper_sim.Runner.fault_summary ctx in
                let open Whisper_sim.Report in
                with_faults
                  {
                    injected = fa.injected - fbefore.injected;
                    observed = fa.observed - fbefore.observed;
                    retries = fa.retries - fbefore.retries;
                    quarantined = fa.quarantined - fbefore.quarantined;
                    cache_write_failures =
                      fa.cache_write_failures - fbefore.cache_write_failures;
                    cache_corrupt_dropped =
                      fa.cache_corrupt_dropped - fbefore.cache_corrupt_dropped;
                  }
                  report
            in
            Whisper_sim.Report.print report;
            Printf.printf "\n%!";
            Option.iter
              (fun dir ->
                (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
                let oc = open_out (Filename.concat dir (id ^ ".csv")) in
                output_string oc (Whisper_sim.Report.to_csv report);
                close_out oc)
              csv_dir)
      ids;
    (* End-of-run accounting (sims, cache traffic, faults, degradations)
       is reported through the telemetry summary: one block, one format,
       instead of ad-hoc per-condition warnings. *)
    emit_telemetry ~summary:true ~metrics_out ~trace_out ()
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a paper table or figure")
    Term.(
      const run $ id_arg $ events_arg 1_200_000 $ kb_arg $ csv_arg $ jobs_arg
      $ replay_arg $ no_cache_arg $ cache_dir_arg $ faults_arg $ fault_seed_arg
      $ retries_arg $ task_timeout_arg $ metrics_out_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let fleet_arg =
    Arg.(
      value & opt int 24
      & info [ "fleet" ] ~docv:"N"
          ~doc:"Number of parameter-sampled fleet applications to sweep")
  in
  let fleet_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "fleet-seed" ] ~docv:"SEED"
          ~doc:"Sampling seed of the fleet (same seed = same applications)")
  in
  let catalog_arg =
    Arg.(
      value & flag
      & info [ "catalog" ]
          ~doc:
            "Sweep the 12 catalogue data-center applications instead of a \
             sampled fleet")
  in
  let techniques_arg =
    Arg.(
      value
      & opt (list string) Whisper_sim.Sweep.default_techniques
      & info [ "techniques" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated techniques: tage-scl, ideal, mtage-sc, \
             4b-rombf, 8b-rombf, whisper")
  in
  let state_dir_arg =
    Arg.(
      value & opt string "_whisper_sweep"
      & info [ "state-dir" ] ~docv:"DIR"
          ~env:(Cmd.Env.info "WHISPER_SWEEP_DIR")
          ~doc:
            "Sweep state root: manifest, completion journal and the shared \
             result cache live here — and $(b,--resume) replays them")
  in
  let in_process_arg =
    Arg.(
      value & flag
      & info [ "in-process" ]
          ~doc:
            "Run work items on domains inside this process instead of \
             supervised worker processes")
  in
  let worker_exe_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "worker-exe" ] ~docv:"PATH"
          ~env:(Cmd.Env.info "WHISPER_WORKER_EXE")
          ~doc:
            "Executable spawned as `$(docv) worker' for each shard (default: \
             this binary)")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the state directory's journal: verified completions \
             are skipped, everything else re-runs.  The final report is \
             byte-identical to an uninterrupted sweep")
  in
  let heartbeat_arg =
    Arg.(
      value & opt float 0.25
      & info [ "heartbeat" ] ~docv:"SECONDS"
          ~doc:"Worker heartbeat period")
  in
  let hang_timeout_arg =
    Arg.(
      value & opt float 5.0
      & info [ "hang-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Silence from a busy worker before it is declared hung and \
             SIGKILLed")
  in
  let max_restarts_arg =
    Arg.(
      value & opt int 4
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:"Respawns granted to each worker slot before giving up")
  in
  let max_attempts_arg =
    Arg.(
      value & opt int 3
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Tries per item for failures that leave the worker alive")
  in
  let max_completions_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-completions" ] ~docv:"K"
          ~doc:
            "Testing hook: stop (as if killed) after $(docv) journaled \
             completions, skipping the report")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the fleet report as CSV")
  in
  let run fleet fleet_seed catalog techniques events kb state_dir jobs
      in_process worker_exe faults fault_seed heartbeat hang_timeout
      max_restarts max_attempts resume max_completions csv metrics_out
      trace_out =
    let apps =
      if catalog then
        Array.to_list Workloads.datacenter
        |> List.map (fun (c : Workloads.config) ->
               Whisper_sim.Sweep.Catalog c.name)
      else Whisper_sim.Sweep.fleet ~seed:fleet_seed ~n:fleet
    in
    (match
       List.find_opt
         (fun t -> Whisper_sim.Sweep.parse_technique t = None)
         techniques
     with
    | Some t ->
        Printf.eprintf "unknown sweep technique %S\n" t;
        exit 1
    | None -> ());
    let exe = Option.value worker_exe ~default:Sys.executable_name in
    let cfg =
      {
        (Whisper_sim.Sweep.default ~state_dir) with
        apps;
        techniques;
        events;
        kb;
        jobs;
        mode = (if in_process then `In_process else `Process);
        worker_argv = [| exe; "worker" |];
        faults;
        fault_seed;
        heartbeat_s = heartbeat;
        hang_timeout_s = hang_timeout;
        max_worker_restarts = max_restarts;
        max_attempts;
        resume;
        max_completions;
      }
    in
    let o = Whisper_sim.Sweep.run cfg in
    Printf.eprintf
      "sweep: manifest %s — %d items, %d completed, %d resumed, %d \
       quarantined\n"
      o.Whisper_sim.Sweep.manifest_id o.total o.completed o.resumed
      o.quarantined;
    if o.worker_crashes + o.worker_hangs + o.worker_restarts > 0 then
      Printf.eprintf
        "sweep: workers — %d crashed, %d hung (SIGKILLed), %d restarted\n"
        o.worker_crashes o.worker_hangs o.worker_restarts;
    if o.fellback then
      Printf.eprintf
        "sweep: worker processes unavailable; degraded to in-process \
         execution\n";
    if o.journal_recovered then
      Printf.eprintf "sweep: journal recovered (%d corrupt bytes dropped)\n"
        o.journal_dropped_bytes;
    (match o.report with
    | None -> Printf.eprintf "sweep: interrupted before completion\n"
    | Some report ->
        Whisper_sim.Report.print report;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Whisper_sim.Report.to_csv report);
            close_out oc;
            Printf.eprintf "sweep: csv written to %s\n" path)
          csv);
    emit_telemetry ~summary:true ~metrics_out ~trace_out ()
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a crash-safe sharded sweep over a fleet of applications \
          (journaled, resumable with --resume)")
    Term.(
      const run $ fleet_arg $ fleet_seed_arg $ catalog_arg $ techniques_arg
      $ events_arg 60_000 $ kb_arg $ state_dir_arg $ jobs_arg $ in_process_arg
      $ worker_exe_arg $ faults_arg $ fault_seed_arg $ heartbeat_arg
      $ hang_timeout_arg $ max_restarts_arg $ max_attempts_arg $ resume_arg
      $ max_completions_arg $ csv_arg $ metrics_out_arg $ trace_out_arg)

let serve_cmd =
  let apps_arg =
    Arg.(
      value
      & opt (list string) [ "finagle-http" ]
      & info [ "apps" ] ~docv:"NAMES"
          ~doc:"Comma-separated catalogue applications the service profiles")
  in
  let generations_arg =
    Arg.(
      value & opt int 12
      & info [ "generations" ] ~docv:"N"
          ~doc:"Scripted delivery intervals (one trace chunk per app each)")
  in
  let chunk_events_arg =
    Arg.(
      value & opt int 120_000
      & info [ "chunk-events" ] ~docv:"N"
          ~doc:"Branch events collected per trace chunk")
  in
  let window_arg =
    Arg.(
      value & opt int 4
      & info [ "window" ] ~docv:"N"
          ~doc:"Sliding re-scoring window, in accepted chunks")
  in
  let max_samples_arg =
    Arg.(
      value & opt int 512
      & info [ "max-samples" ] ~docv:"N"
          ~doc:"Per-branch sample cap of the profile accumulator")
  in
  let drift_flip_arg =
    Arg.(
      value & opt int (-1)
      & info [ "drift-flip" ] ~docv:"GEN"
          ~doc:
            "Generation at which the workload's session mix flips to a new \
             phase (default: half the generations)")
  in
  let no_drift_arg =
    Arg.(
      value & flag
      & info [ "no-drift" ] ~doc:"Run a stationary workload (no phase flip)")
  in
  let decay_frac_arg =
    Arg.(
      value & opt float 0.5
      & info [ "decay-frac" ] ~docv:"F"
          ~doc:
            "Re-analysis triggers when window coverage falls below $(docv) x \
             the deployed plan's rollout coverage")
  in
  let state_dir_arg =
    Arg.(
      value & opt string "_whisper_serve"
      & info [ "state-dir" ] ~docv:"DIR"
          ~env:(Cmd.Env.info "WHISPER_SERVE_DIR")
          ~doc:
            "Service state root: manifest, completion journal, chunk and \
             plan stores — $(b,--resume) replays them")
  in
  let no_redeliver_arg =
    Arg.(
      value & flag
      & info [ "no-redeliver" ]
          ~doc:
            "Skip the per-generation duplicate re-delivery of each accepted \
             chunk (the idempotency probe)")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the state directory's journal: applied steps are \
             replayed without re-execution; the final ledger is \
             byte-identical to an uninterrupted run")
  in
  let max_steps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"K"
          ~doc:
            "Testing hook: stop (as if killed) after $(docv) journaled steps \
             this run, skipping the ledger")
  in
  let assert_recovery_arg =
    Arg.(
      value & flag
      & info [ "assert-recovery" ]
          ~doc:
            "Exit non-zero unless the phase flip produced a drift detection, \
             a post-flip rollout and a final coverage above the post-flip \
             trough (the CI soak gate)")
  in
  let run apps generations chunk_events window kb max_samples drift_flip
      no_drift decay_frac state_dir jobs faults fault_seed no_redeliver resume
      max_steps assert_recovery metrics_out trace_out =
    List.iter (fun a -> ignore (find_app a)) apps;
    let drift_flip =
      if no_drift then None
      else if drift_flip >= 0 then Some drift_flip
      else Some (generations / 2)
    in
    let cfg =
      {
        (Whisper_sim.Serve.default ~state_dir) with
        apps;
        generations;
        chunk_events;
        window;
        kb;
        max_samples;
        drift_flip;
        decay_frac;
        jobs;
        faults;
        fault_seed;
        redeliver = not no_redeliver;
        resume;
        max_steps;
      }
    in
    let o = Whisper_sim.Serve.run cfg in
    Printf.eprintf
      "serve: manifest %s — %d steps, %d completed, %d resumed\n"
      o.Whisper_sim.Serve.manifest_id o.total o.completed o.resumed;
    if o.Whisper_sim.Serve.journal_recovered then
      Printf.eprintf "serve: journal recovered (%d corrupt bytes dropped)\n"
        o.Whisper_sim.Serve.journal_dropped_bytes;
    if o.Whisper_sim.Serve.chunks_quarantined + o.Whisper_sim.Serve.analysis_quarantined > 0
    then
      Printf.eprintf "serve: degraded — %d chunks, %d analyses quarantined\n"
        o.Whisper_sim.Serve.chunks_quarantined
        o.Whisper_sim.Serve.analysis_quarantined;
    if o.Whisper_sim.Serve.interrupted then
      Printf.eprintf "serve: interrupted before completion\n"
    else begin
      List.iter print_endline o.Whisper_sim.Serve.ledger;
      print_newline ();
      List.iter print_endline o.Whisper_sim.Serve.summary
    end;
    emit_telemetry ~summary:true ~metrics_out ~trace_out ();
    if assert_recovery then
      match Whisper_sim.Serve.check_recovery cfg o with
      | Ok () -> Printf.eprintf "serve: drift recovery asserted ok\n"
      | Error reason ->
          Printf.eprintf "serve: drift recovery assertion FAILED: %s\n" reason;
          exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Continuous-profiling service mode: incremental chunk ingestion, \
          drift detection and versioned plan rollout (journaled, resumable \
          with --resume)")
    Term.(
      const run $ apps_arg $ generations_arg $ chunk_events_arg $ window_arg
      $ kb_arg $ max_samples_arg $ drift_flip_arg $ no_drift_arg
      $ decay_frac_arg $ state_dir_arg $ jobs_arg $ faults_arg $ fault_seed_arg
      $ no_redeliver_arg $ resume_arg $ max_steps_arg $ assert_recovery_arg
      $ metrics_out_arg $ trace_out_arg)

let worker_cmd =
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Internal: sweep worker process (speaks the supervisor protocol on \
          stdin/stdout)")
    Term.(const (fun () -> Whisper_sim.Sweep.worker_main ()) $ const ())

let () =
  let info =
    Cmd.info "whisper" ~version:"1.0.0"
      ~doc:"Profile-guided branch misprediction elimination (MICRO'22 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            simulate_cmd;
            profile_cmd;
            analyze_cmd;
            classify_cmd;
            trace_cmd;
            experiment_cmd;
            sweep_cmd;
            serve_cmd;
            worker_cmd;
          ]))
