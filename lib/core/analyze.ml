open Whisper_trace

type op_class =
  | C_and
  | C_or
  | C_implication
  | C_cnimplication
  | C_always
  | C_never
  | C_others

let op_class_name = function
  | C_and -> "and"
  | C_or -> "or"
  | C_implication -> "implication"
  | C_cnimplication -> "converse-nonimplication"
  | C_always -> "always-taken"
  | C_never -> "never-taken"
  | C_others -> "others"

type t = {
  config : Config.t;
  decisions : (int * History_select.choice) list;
  considered : int;
  training_seconds : float;
}

(* Parallel runs fan the per-branch searches out over a {e persistent}
   domain pool ([Whisper_util.Pool.shared], or a caller-supplied pool):
   each branch's decision is independent of its neighbours, so merging
   chunk results back in candidate order yields exactly the sequential
   decision list — any [jobs] produces a byte-identical plan.  [rnd]'s
   candidate ids and packed truth tables are frozen at create and shared
   read-only across the workers; each worker's count tables live in its
   domain-local scratch ({!History_select.domain_scratch}), allocated
   once per domain and reset between branches.

   Work is claimed dynamically: the candidate range is cut into coarse
   contiguous chunks and claimer copies pull chunk indices off an atomic
   cursor, so a run of expensive branches (per-branch search cost is
   heavily skewed — sample count and prune behaviour vary by 10x+)
   delays only the claimer holding it instead of serializing a fixed
   slice's tail. *)
let m_runs = Whisper_util.Telemetry.counter "analyze.runs"
let m_considered = Whisper_util.Telemetry.counter "analyze.considered"
let m_hints = Whisper_util.Telemetry.counter "analyze.hints"

(* Enough chunks per claimer that skew balances (the slowest chunk is a
   small fraction of a claimer's share), coarse enough that a claim —
   one [fetch_and_add] — is noise against a chunk's many-microsecond
   search cost.  Chunking affects scheduling only, never results. *)
let chunk_count ~n ~width = min n (8 * width)

let run ?(config = Config.default) ?(jobs = 1) ?pool profile =
  Whisper_util.Telemetry.span "analyze" @@ fun () ->
  let rnd = Randomized.create config in
  let t0 = Unix.gettimeofday () in
  let candidates = Profile.candidates profile in
  let n = Array.length candidates in
  (* a pool passed with the default [jobs] means "use the pool's width" *)
  let width =
    match (jobs, pool) with
    | j, _ when j > 1 -> j
    | _, Some p -> Whisper_util.Pool.jobs p + 1
    | _, None -> 1
  in
  let decisions =
    if width <= 1 || n <= 1 then begin
      let scratch = History_select.domain_scratch config in
      let acc = ref [] and taken = ref 0 in
      Array.iter
        (fun pc ->
          if !taken < config.max_hints then
            match History_select.decide ~scratch config rnd profile ~pc with
            | Some choice ->
                acc := (pc, choice) :: !acc;
                incr taken
            | None -> ())
        candidates;
      List.rev !acc
    end
    else begin
      let pool =
        match pool with
        | Some p -> p
        | None -> Whisper_util.Pool.shared ~jobs:(width - 1)
      in
      let chunks = Whisper_util.Pool.slices ~n ~chunks:(chunk_count ~n ~width) in
      let nchunks = Array.length chunks in
      let results = Array.make nchunks [] in
      let cursor = Atomic.make 0 in
      let claim () =
        let scratch = History_select.domain_scratch config in
        let rec loop () =
          let c = Atomic.fetch_and_add cursor 1 in
          if c < nchunks then begin
            let lo, hi = chunks.(c) in
            let acc = ref [] in
            for i = hi - 1 downto lo do
              let pc = candidates.(i) in
              match History_select.decide ~scratch config rnd profile ~pc with
              | Some choice -> acc := (pc, choice) :: !acc
              | None -> ()
            done;
            results.(c) <- !acc;
            loop ()
          end
        in
        loop ()
      in
      Whisper_util.Pool.fanout pool ~width claim;
      (* order-preserving merge by chunk index, then cap exactly like the
         sequential early exit: the first [max_hints] accepted branches
         in candidate order *)
      let all = Array.fold_right (fun r acc -> r @ acc) results [] in
      List.filteri (fun i _ -> i < config.max_hints) all
    end
  in
  let training_seconds = Unix.gettimeofday () -. t0 in
  if Whisper_util.Telemetry.enabled () then begin
    Whisper_util.Telemetry.incr m_runs;
    Whisper_util.Telemetry.add m_considered n;
    Whisper_util.Telemetry.add m_hints (List.length decisions)
  end;
  {
    config;
    decisions;
    considered = n;
    training_seconds;
  }

let hint_count t = List.length t.decisions

let root_class config (choice : History_select.choice) =
  match choice.bias with
  | Brhint.Always_taken -> C_always
  | Brhint.Never_taken -> C_never
  | Brhint.Dynamic -> C_others
  | Brhint.Formula -> (
      let tree =
        Whisper_formula.Tree.of_id
          ~leaves:(Config.formula_leaves config)
          choice.formula_id
      in
      match (Whisper_formula.Tree.ops tree).(0) with
      | Whisper_formula.Op.And -> C_and
      | Whisper_formula.Op.Or -> C_or
      | Whisper_formula.Op.Imp -> C_implication
      | Whisper_formula.Op.Cnimp -> C_cnimplication)

let op_distribution t profile =
  let weights = Hashtbl.create 8 in
  let add cls w =
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt weights cls) in
    Hashtbl.replace weights cls (cur +. w)
  in
  let execs pc =
    match Profile.stat profile ~pc with
    | Some s -> float_of_int s.Profile.execs
    | None -> 0.0
  in
  let hinted = Hashtbl.create 256 in
  List.iter
    (fun (pc, choice) ->
      Hashtbl.replace hinted pc ();
      add (root_class t.config choice) (execs pc))
    t.decisions;
  (* non-hinted candidates are the paper's "Others" slice *)
  Array.iter
    (fun pc -> if not (Hashtbl.mem hinted pc) then add C_others (execs pc))
    (Profile.candidates profile);
  let total = Hashtbl.fold (fun _ w acc -> acc +. w) weights 0.0 in
  if total = 0.0 then []
  else
    [ C_and; C_or; C_implication; C_cnimplication; C_always; C_never; C_others ]
    |> List.filter_map (fun cls ->
           Option.map
             (fun w -> (cls, w /. total))
             (Hashtbl.find_opt weights cls))

let length_distribution t profile =
  let out = Array.make t.config.n_lengths 0.0 in
  let total = ref 0.0 in
  List.iter
    (fun ((_ : int), (choice : History_select.choice)) ->
      match choice.bias with
      | Brhint.Formula ->
          let avoided =
            float_of_int (choice.baseline_mispred - choice.sample_mispred)
          in
          out.(choice.len_idx) <- out.(choice.len_idx) +. avoided;
          total := !total +. avoided
      | _ -> ())
    t.decisions;
  ignore profile;
  if !total > 0.0 then Array.map (fun v -> v /. !total) out else out

let to_inject_hints t cfg =
  List.filter_map
    (fun (pc, choice) ->
      Option.map
        (fun (b : Cfg.block) -> (b.id, choice))
        (Cfg.block_of_pc cfg pc))
    t.decisions
