(* Property-based fuzz harness for the ingestion pipeline.

   Every binary decoder in the fleet path (PT traces, profiles,
   hint-injection plans, result-cache entries) must be total: whatever
   bytes arrive — truncated, bit-flipped, byte-dropped, version-skewed
   or plain garbage — decoding yields a typed Whisper_error, never an
   uncaught exception, a hang or a giant allocation.

   The case count and seed come from the environment so CI can pin a
   reproducible smoke run:
     WHISPER_FUZZ_CASES  corruption cases per artifact (default 1000)
     WHISPER_FUZZ_SEED   RNG seed of the corruption stream (default 61453)
*)

open Whisper_util
open Whisper_trace

let cases =
  match Sys.getenv_opt "WHISPER_FUZZ_CASES" with
  | Some v -> int_of_string v
  | None -> 1000

let seed =
  match Sys.getenv_opt "WHISPER_FUZZ_SEED" with
  | Some v -> int_of_string v
  | None -> 0xF00D

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Valid artifacts to corrupt                                         *)
(* ------------------------------------------------------------------ *)

let tiny_config =
  {
    (Option.get (Workloads.by_name "cassandra")) with
    Workloads.name = "fuzz-app";
    functions = 4;
    seed = 99;
  }

let cfg = Workloads.build_cfg tiny_config

let trace_bytes =
  let m = App_model.create ~cfg ~config:tiny_config ~input:0 () in
  Pt_codec.encode ~cfg (Branch.take (App_model.source m) 2_000)

let profile_bytes =
  let p = Profile.create_empty ~lengths:Workloads.lengths () in
  let rng = Rng.create 5 in
  for pc = 1 to 12 do
    let pc = 0x4000 + (pc * 16) in
    for _ = 1 to 40 do
      Profile.record_event p ~pc ~taken:(Rng.bool rng)
        ~correct:(Rng.bernoulli rng 0.8) ~instrs:8
    done
  done;
  for s = 1 to 20 do
    Profile.add_sample ~raw56:(s * 977) p ~pc:0x4010 ~raw8:(s land 0xFF)
      ~hashes:(Array.init 16 (fun i -> (s + i) land 0xFF))
      ~taken:(s mod 3 = 0) ~correct:(s mod 5 <> 0)
  done;
  Profile_io.to_bytes p

let plan_bytes =
  let open Whisper_core in
  let placements =
    List.init 6 (fun i ->
        {
          Inject.branch_block = 10 + i;
          host_block = 3 + i;
          hint =
            Brhint.make ~len_idx:(i mod 16) ~formula_id:(i * 321)
              ~bias:(Brhint.bias_of_code (i mod 4))
              ~pc_offset:(i * 5);
          branch_pc = 0x4000 + (i * 64);
          cond_prob = 0.9;
        })
  in
  let by_host = Hashtbl.create 8 in
  Plan_io.to_bytes { Inject.placements; by_host; dropped = 1 }

let chunk_bytes =
  match Profile_io.of_bytes profile_bytes with
  | Ok p -> Profile_chunk.encode ~app:"fuzz-app" ~seq:3 p
  | Error _ -> assert false

let rescore_plan_bytes =
  let open Whisper_core in
  Rescore.encode
    (List.init 5 (fun i ->
         ( 0x4000 + (i * 64),
           {
             History_select.len_idx = i mod 16;
             formula_id = i * 321;
             bias = Brhint.bias_of_code (i mod 4);
             sample_mispred = i;
             baseline_mispred = 2 * i;
             samples = 40;
           } )))

let arena_of_tiny () =
  Arena.build ~events:2_000 (App_model.create ~cfg ~config:tiny_config ~input:0 ())

let arena_entry_key = "fuzz/arena/fuzz-app/99/0/2000"
let arena_bytes = Arena.to_bytes (arena_of_tiny ())

let arena_cache_bytes =
  Whisper_sim.Arena_cache.encode ~key:arena_entry_key (arena_of_tiny ())

let cache_key = "fuzz/cassandra/whisper/0/1/64/2000"

let cache_bytes =
  Whisper_sim.Result_cache.encode ~key:cache_key
    {
      Whisper_pipeline.Machine.cycles = 4242.5;
      instrs = 16000;
      branches = 2000;
      mispredicts = 77;
      misp_stall = 900.0;
      fe_stall = 120.0;
      btb_stall = 10.0;
      l1i_misses = 31;
      exposed_misses = 9;
      seg_mispredicts = Array.init 10 Fun.id;
      seg_instrs = Array.init 10 (fun i -> 1600 + i);
    }

let manifest_bytes =
  Manifest.encode
    (Manifest.make
       ~meta:[ ("events", "2000"); ("kb", "64"); ("seed", "7") ]
       (Array.init 8 (fun i ->
            {
              Manifest.key = Printf.sprintf "fuzz/app-%d/whisper/0/1/64/2000" i;
              spec = Printf.sprintf "spec-blob-%d" i;
            })))

let journal_manifest_id = "0123456789abcdef0123456789abcdef"

let journal_entries =
  [
    { Journal.key = "item-a"; status = Journal.Done; detail = "digest-a" };
    { Journal.key = "item-b"; status = Journal.Quarantined; detail = "poison" };
    { Journal.key = "item-c"; status = Journal.Done; detail = "digest-c" };
  ]

let journal_bytes =
  List.fold_left
    (fun acc e -> Bytes.cat acc (Journal.encode_entry e))
    (Journal.encode_header ~manifest_id:journal_manifest_id)
    journal_entries

let ipc_to_worker_bytes =
  Ipc.encode_to_worker
    (Ipc.Item
       { seq = 7; attempt = 1; key = "fuzz/item"; spec = "spec\x00\xffblob" })

let ipc_from_worker_bytes =
  Ipc.encode_from_worker
    (Ipc.Finished
       {
         seq = 7;
         key = "fuzz/item";
         outcome = Ipc.Completed { digest = "0011223344556677" };
       })

(* ------------------------------------------------------------------ *)
(* Corruption operators (mirrors of the Fault byte operators, driven   *)
(* by an explicit RNG for breadth)                                     *)
(* ------------------------------------------------------------------ *)

let corrupt_one rng b =
  let n = Bytes.length b in
  match Rng.int rng 5 with
  | 0 -> Bytes.sub b 0 (Rng.int rng (max 1 n)) (* truncate *)
  | 1 when n > 0 ->
      (* bit flip *)
      let b = Bytes.copy b in
      let i = Rng.int rng n in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
      b
  | 2 when n > 1 ->
      (* byte drop *)
      let i = Rng.int rng n in
      Bytes.cat (Bytes.sub b 0 i) (Bytes.sub b (i + 1) (n - i - 1))
  | 3 when n > 4 ->
      (* version skew: nudge the varint right after the 4-byte magic *)
      let b = Bytes.copy b in
      Bytes.set b 4 (Char.chr ((Char.code (Bytes.get b 4) + 1) land 0xFF));
      b
  | _ when n > 0 ->
      (* random byte overwrite *)
      let b = Bytes.copy b in
      Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
      b
  | _ -> b

(* Each decoder, wrapped so only the totality contract is observed:
   Some err for a rejected input, None for a (possibly vacuous) Ok. *)
let decoders =
  [
    ( "pt_codec",
      trace_bytes,
      fun b ->
        match Pt_codec.decode ~cfg b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
    ( "profile_io",
      profile_bytes,
      fun b ->
        match Profile_io.of_bytes b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
    ( "plan_io",
      plan_bytes,
      fun b ->
        (* Plan_io stays exception-based, but only typed errors may
           escape it *)
        match Whisper_core.Plan_io.of_bytes b with
        | _ -> None
        | exception Whisper_error.Error e ->
            Some (Whisper_error.to_string e) );
    ( "result_cache",
      cache_bytes,
      fun b ->
        match Whisper_sim.Result_cache.decode ~key:cache_key b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
    ( "arena",
      arena_bytes,
      fun b ->
        match Arena.of_bytes b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
    ( "arena_cache",
      arena_cache_bytes,
      fun b ->
        match Whisper_sim.Arena_cache.decode ~key:arena_entry_key b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
    ( "manifest",
      manifest_bytes,
      fun b ->
        match Manifest.decode b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
    ( "journal",
      journal_bytes,
      fun b ->
        (* recovery is total: header damage is a typed error; record
           damage is absorbed as a truncated-tail recovery, which still
           counts as detected *)
        match Journal.decode_all ~manifest_id:journal_manifest_id b with
        | Error e -> Some (Whisper_error.to_string e)
        | Ok r ->
            if
              r.Journal.corrupt_tail
              || List.length r.Journal.entries < List.length journal_entries
            then Some "journal: corrupt suffix truncated"
            else None );
    ( "ipc_to_worker",
      ipc_to_worker_bytes,
      fun b ->
        match Ipc.decode_to_worker b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
    ( "ipc_from_worker",
      ipc_from_worker_bytes,
      fun b ->
        match Ipc.decode_from_worker b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
    ( "profile_chunk",
      chunk_bytes,
      fun b ->
        match Profile_chunk.decode b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
    ( "rescore_plan",
      rescore_plan_bytes,
      fun b ->
        match Whisper_core.Rescore.decode b with
        | Ok _ -> None
        | Error e -> Some (Whisper_error.to_string e) );
  ]

let test_decoders_total () =
  let rng = Rng.create seed in
  let rejected = ref 0 and accepted = ref 0 in
  for case = 1 to cases do
    List.iter
      (fun (name, good, decode) ->
        let bad = corrupt_one rng good in
        match decode bad with
        | Some _ -> incr rejected
        | None -> incr accepted
        | exception e ->
            Alcotest.failf "%s raised %s on case %d (seed %d)" name
              (Printexc.to_string e) case seed)
      decoders
  done;
  (* most corruptions must actually be detected — a fuzzer whose inputs
     all decode cleanly is testing nothing *)
  check_bool "most corruptions rejected" true (!rejected * 2 > !accepted);
  Printf.printf "fuzz: %d cases/decoder, %d rejected, %d accepted, seed %d\n%!"
    cases !rejected !accepted seed

let test_fuzz_deterministic () =
  (* the same seed replays the identical corruption stream and the
     identical decoder verdicts *)
  let run () =
    let rng = Rng.create seed in
    List.concat_map
      (fun (_, good, decode) ->
        List.init 50 (fun _ -> decode (corrupt_one rng good)))
      decoders
  in
  check_bool "verdicts replay byte-identically" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Scoring-engine equivalence (packed vs naive reference)             *)
(* ------------------------------------------------------------------ *)

(* The bit-parallel Algorithm-1 engine must be bit-identical to the
   retained naive reference on arbitrary tables and the real candidate
   sets of both formula families.  Reuses the decoder fuzz knobs:
   WHISPER_FUZZ_CASES scales the number of random tables and
   WHISPER_FUZZ_SEED pins the stream. *)
let test_scorer_equivalence () =
  let open Whisper_core in
  let rng = Rng.create (seed lxor 0x5C0) in
  let table_cases = max 40 (cases / 25) in
  List.iter
    (fun ops ->
      let config = { Config.default with ops } in
      let rnd = Randomized.create config in
      let cands = Randomized.candidates rnd in
      let packed = Randomized.packed_candidates rnd in
      for _ = 1 to table_cases do
        let taken = Array.make 256 0 and not_taken = Array.make 256 0 in
        (* a mix of decisive, balanced (zero-delta) and singleton keys *)
        for _ = 1 to 1 + Rng.int rng 120 do
          let k = Rng.int rng 256 in
          taken.(k) <- taken.(k) + Rng.int rng 10;
          not_taken.(k) <- not_taken.(k) + Rng.int rng 10
        done;
        let t = Algorithm1.tables_of_counts ~taken ~not_taken in
        Array.iteri
          (fun i id ->
            let naive =
              Algorithm1.mispredictions t ~truth:(Randomized.truth_of rnd id)
            in
            let fast = Algorithm1.mispredictions_packed t ~ptruth:packed.(i) in
            if naive <> fast then
              Alcotest.failf "scorer mismatch on id %d: naive %d packed %d" id
                naive fast)
          cands;
        let f, m =
          Algorithm1.find t ~candidates:cands
            ~truth_of:(Randomized.truth_of rnd)
        in
        let i', f', m' = Algorithm1.find_packed t ~candidates:cands ~packed in
        check_int "find winner" f f';
        check_int "find score" m m';
        check_int "winner index resolves" f cands.(i');
        (* the bounded search is exactly find + post-filtering the winner *)
        let cutoff = Rng.int rng (m + 2) in
        (match
           Algorithm1.find_packed_below t ~candidates:cands ~packed ~cutoff
         with
        | Some (_, bf, bm) ->
            check_bool "bounded winner below cutoff" true (bm < cutoff);
            check_int "bounded winner" f bf;
            check_int "bounded score" m bm
        | None -> check_bool "nothing below cutoff" true (m >= cutoff))
      done)
    [ `Classic; `Extended ]

(* ------------------------------------------------------------------ *)
(* Arena replay equivalence and chaos recovery                        *)
(* ------------------------------------------------------------------ *)

(* The packed arena must replay exactly the stream App_model.source
   would have generated, for arbitrary workload shapes — not just the
   configs the deterministic tests happen to pin. *)
let test_arena_replay_equals_closure_random_configs () =
  let rng = Rng.create (seed lxor 0xA7E4A) in
  let config_cases = max 8 (cases / 100) in
  for case = 1 to config_cases do
    let config =
      {
        (Option.get (Workloads.by_name "cassandra")) with
        Workloads.name = Printf.sprintf "fuzz-arena-%d" case;
        functions = 2 + Rng.int rng 8;
        seed = Rng.int rng 10_000;
      }
    in
    let cfg = Workloads.build_cfg config in
    let input = Rng.int rng 3 in
    let events = 1 + Rng.int rng 4_000 in
    let arena = Arena.build ~events (App_model.create ~cfg ~config ~input ()) in
    let src = App_model.source (App_model.create ~cfg ~config ~input ()) in
    check_int "arena length" events (Arena.length arena);
    for i = 0 to events - 1 do
      let e = src () in
      if Arena.event arena i <> e then
        Alcotest.failf "config %d: event %d diverges (seed %d)" case i seed
    done;
    (* the codec round-trips the packed buffers bit-exactly *)
    match Arena.of_bytes (Arena.to_bytes arena) with
    | Ok a -> check_bool "codec round trip" true (Arena.equal arena a)
    | Error e -> Alcotest.failf "round trip rejected: %s" (Whisper_error.to_string e)
  done

(* ------------------------------------------------------------------ *)
(* Compiled-runtime equivalence on adversarial plans                   *)
(* ------------------------------------------------------------------ *)

(* The compiled Whisper runtime must agree with the interpretive oracle
   on arbitrary hand-built plans — not just the well-formed ones
   Inject.plan emits: hints keyed by PCs no branch ever has, several
   hints per host block, every bias, formula ids across the whole id
   space, tiny hint buffers that force constant eviction, and non-default
   hash widths / length series. *)
let test_compiled_runtime_equals_oracle_random_plans () =
  let open Whisper_core in
  let rng = Rng.create (seed lxor 0xC0417) in
  let plan_cases = max 10 (cases / 100) in
  for case = 1 to plan_cases do
    let wl =
      {
        (Option.get (Workloads.by_name "cassandra")) with
        Workloads.name = Printf.sprintf "fuzz-rtplan-%d" case;
        functions = 2 + Rng.int rng 6;
        seed = Rng.int rng 10_000;
      }
    in
    let cfg = Workloads.build_cfg wl in
    let config =
      {
        Config.default with
        hash_bits = (if Rng.bool rng then 8 else 4);
        n_lengths = (if Rng.bool rng then 16 else 4);
        hint_buffer_size = [| 1; 2; 4; 32 |].(Rng.int rng 4);
      }
    in
    let n_blocks = Array.length cfg.Cfg.blocks in
    let id_space =
      Whisper_formula.Tree.space_size ~leaves:config.Config.hash_bits
    in
    let placements =
      List.init
        (1 + Rng.int rng 24)
        (fun _ ->
          let branch_block = Rng.int rng n_blocks in
          let branch_pc =
            (* mostly PCs branches actually have (so probes hit), some
               junk keys no event ever probes *)
            if Rng.int rng 4 = 0 then 0x9000_0000 + Rng.int rng 4096
            else cfg.Cfg.blocks.(branch_block).Cfg.branch_pc
          in
          {
            Inject.branch_block;
            host_block = Rng.int rng n_blocks;
            hint =
              Brhint.make
                ~len_idx:(Rng.int rng config.Config.n_lengths)
                ~formula_id:(Rng.int rng id_space)
                ~bias:(Brhint.bias_of_code (Rng.int rng 4))
                ~pc_offset:(Rng.int rng 4096);
            branch_pc;
            cond_prob = 1.0;
          })
    in
    let by_host = Hashtbl.create 16 in
    List.iter
      (fun (p : Inject.placement) ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt by_host p.Inject.host_block)
        in
        Hashtbl.replace by_host p.Inject.host_block (p :: existing))
      placements;
    let plan = { Inject.placements; by_host; dropped = 0 } in
    let events = 1 + Rng.int rng 4_000 in
    let input = Rng.int rng 3 in
    let arena = Arena.build ~events (App_model.create ~cfg ~config:wl ~input ()) in
    let rt =
      Runtime.create config
        ~baseline:(Whisper_bpu.Bimodal.make ~log_entries:8)
        ~plan
    in
    let rf =
      Runtime.Reference.create config
        ~baseline:(Whisper_bpu.Bimodal.make ~log_entries:8)
        ~plan
    in
    for i = 0 to events - 1 do
      let c = Runtime.exec_arena rt ~arena i in
      let r = Runtime.Reference.exec rf (Arena.event arena i) in
      if c <> r then
        Alcotest.failf "plan case %d: verdict diverges at event %d (seed %d)"
          case i seed
    done;
    check_int "hinted" (Runtime.Reference.hinted_predictions rf)
      (Runtime.hinted_predictions rt);
    check_int "hinted wrong"
      (Runtime.Reference.hinted_mispredictions rf)
      (Runtime.hinted_mispredictions rt);
    check_int "baseline"
      (Runtime.Reference.baseline_predictions rf)
      (Runtime.baseline_predictions rt);
    if Runtime.buffer_stats rt <> Runtime.Reference.buffer_stats rf then
      Alcotest.failf "plan case %d: buffer statistics diverge (seed %d)" case
        seed
  done

let test_arena_cache_chaos_drop_and_regenerate () =
  (* a cached arena corrupted in flight (rate-1.0 injector on the read
     path) is dropped and counted, and the decode-once build is
     deterministic, so regeneration restores the identical arena *)
  let dir = Test_dirs.fresh "fuzz_arena" in
  let arena = arena_of_tiny () in
  let f = Whisper_util.Fault.create ~seed:17 ~rate:1.0 () in
  let key =
    (* pick a key the injector answers with a byte operator (Delay/Hang
       leave bytes untouched and would make this test vacuous) *)
    List.find
      (fun key ->
        match Whisper_util.Fault.decision f ~key with
        | Whisper_util.Fault.Inject
            (Truncate | Bit_flip | Byte_drop | Version_skew) ->
            true
        | _ -> false)
      (List.init 32 (Printf.sprintf "fuzz/arena/chaos/%d"))
  in
  let c =
    Whisper_sim.Arena_cache.create
      ~corrupt:(fun ~key b -> Whisper_util.Fault.corrupt f ~key b)
      ~dir ()
  in
  Whisper_sim.Arena_cache.store c ~key arena;
  check_bool "corrupted read is a miss" true
    (Whisper_sim.Arena_cache.find c ~key = None);
  check_int "drop counted" 1
    (Whisper_sim.Arena_cache.counters c)
      .Whisper_sim.Arena_cache.corrupt_dropped;
  check_bool "corrupt entry removed from disk" true
    (not (Sys.file_exists (Whisper_sim.Arena_cache.path c ~key)));
  let regen = arena_of_tiny () in
  check_bool "regenerated arena identical" true (Arena.equal arena regen);
  (* a clean cache (no injector) round-trips the regenerated arena *)
  let clean = Whisper_sim.Arena_cache.create ~dir () in
  Whisper_sim.Arena_cache.store clean ~key regen;
  match Whisper_sim.Arena_cache.find clean ~key with
  | Some a -> check_bool "clean round trip" true (Arena.equal arena a)
  | None -> Alcotest.fail "clean cache lost the entry"

(* ------------------------------------------------------------------ *)
(* Journal recovery under arbitrary corruption                        *)
(* ------------------------------------------------------------------ *)

(* The kill -9 safety argument leans entirely on journal recovery, so it
   gets its own property beyond decoder totality: whatever happens to
   the bytes — one corruption or several stacked — recovery never
   raises, and when it does accept a prefix, every recovered entry is
   bit-identical to the original at that position (the per-record
   checksum makes a mutated-but-accepted record a broken invariant, not
   bad luck). *)
let test_journal_recovery_prefix_under_corruption () =
  let rng = Rng.create (seed lxor 0x10A1) in
  let originals = Array.of_list journal_entries in
  for case = 1 to cases do
    let bad = ref journal_bytes in
    for _ = 0 to Rng.int rng 3 do
      bad := corrupt_one rng !bad
    done;
    match Journal.decode_all ~manifest_id:journal_manifest_id !bad with
    | Error _ -> () (* header damage: caller starts a fresh journal *)
    | Ok r ->
        List.iteri
          (fun i e ->
            if
              i >= Array.length originals
              || not (Journal.entry_equal e originals.(i))
            then
              Alcotest.failf
                "case %d (seed %d): recovered entry %d is not the original \
                 prefix"
                case seed i)
          r.Journal.entries
    | exception e ->
        Alcotest.failf "journal recovery raised %s on case %d (seed %d)"
          (Printexc.to_string e) case seed
  done

(* Torn tails are the common real-world case (SIGKILL mid-append), so
   cover every truncation point exhaustively, not just sampled ones. *)
let test_journal_every_truncation_point () =
  let header_len =
    Bytes.length (Journal.encode_header ~manifest_id:journal_manifest_id)
  in
  (* record boundaries: the only truncation points that are clean *)
  let boundaries, _ =
    List.fold_left
      (fun (acc, off) e ->
        let off = off + Bytes.length (Journal.encode_entry e) in
        (off :: acc, off))
      ([ header_len ], header_len)
      journal_entries
  in
  let n = Bytes.length journal_bytes in
  for len = header_len to n - 1 do
    match
      Journal.decode_all ~manifest_id:journal_manifest_id
        (Bytes.sub journal_bytes 0 len)
    with
    | Error e ->
        Alcotest.failf "truncation at %d rejected the valid header: %s" len
          (Whisper_error.to_string e)
    | Ok r ->
        let at_boundary = List.mem len boundaries in
        check_bool
          (Printf.sprintf "truncation at %d torn iff mid-record" len)
          (not at_boundary) r.Journal.corrupt_tail;
        check_bool
          (Printf.sprintf "truncation at %d keeps a strict prefix" len)
          true
          (List.length r.Journal.entries < List.length journal_entries)
  done

(* ------------------------------------------------------------------ *)
(* Flat cache kernel vs the array-of-arrays oracle                    *)
(* ------------------------------------------------------------------ *)

(* The flat Cache kernel must be trace-identical to the retained
   [Cache.Reference] implementation for arbitrary geometries — including
   the degenerate corners no shipped config picks: direct-mapped
   (assoc = 1), fully associative (one set), tiny lines. *)
let test_flat_cache_equals_reference () =
  let open Whisper_pipeline in
  let rng = Rng.create (seed lxor 0xCAC4E) in
  (* both sizing spellings reject bad geometry with the same message *)
  let rejects f = match f () with _ -> None | exception Invalid_argument m -> Some m in
  check_bool "non-power-of-two sets rejected identically" true
    (rejects (fun () -> Cache.create ~entries:6 ~assoc:2 ~line_bytes:64 ())
    = rejects (fun () ->
          Cache.Reference.create ~entries:6 ~assoc:2 ~line_bytes:64 ()));
  check_bool "double sizing rejected identically" true
    (rejects (fun () -> Cache.create ~bytes:4096 ~entries:64 ~assoc:2 ~line_bytes:64 ())
    = rejects (fun () ->
          Cache.Reference.create ~bytes:4096 ~entries:64 ~assoc:2 ~line_bytes:64 ()));
  let geom_cases = max 12 (cases / 50) in
  for case = 1 to geom_cases do
    let line_bytes = 1 lsl Rng.int rng 8 in
    let log_entries = 1 + Rng.int rng 7 in
    let entries = 1 lsl log_entries in
    let assoc =
      match case mod 3 with
      | 0 -> 1 (* direct-mapped *)
      | 1 -> entries (* fully associative *)
      | _ -> 1 lsl Rng.int rng (log_entries + 1)
    in
    let flat, oracle =
      if Rng.bool rng then
        ( Cache.create ~entries ~assoc ~line_bytes (),
          Cache.Reference.create ~entries ~assoc ~line_bytes () )
      else
        let bytes = entries * line_bytes in
        ( Cache.create ~bytes ~assoc ~line_bytes (),
          Cache.Reference.create ~bytes ~assoc ~line_bytes () )
    in
    check_int "entries" entries (Cache.entries flat);
    (* a footprint a little over capacity keeps hits and misses mixed *)
    let span = entries * line_bytes * 2 in
    let ops = Array.init 2_000 (fun _ -> (Rng.int rng span, Rng.int rng 4 = 0)) in
    let replay flat oracle =
      Array.iteri
        (fun op (addr, is_probe) ->
          let a, b =
            if is_probe then (Cache.probe flat addr, Cache.Reference.probe oracle addr)
            else (Cache.access flat addr, Cache.Reference.access oracle addr)
          in
          if a <> b then
            Alcotest.failf "case %d op %d: %s diverges (seed %d)" case op
              (if is_probe then "probe" else "access")
              seed)
        ops;
      check_int "hits" (Cache.Reference.hits oracle) (Cache.hits flat);
      check_int "misses" (Cache.Reference.misses oracle) (Cache.misses flat)
    in
    replay flat oracle;
    (* [reset] restores creation state exactly: the same trace against a
       reset instance agrees with a freshly built oracle *)
    Cache.reset flat;
    replay flat (Cache.Reference.create ~entries ~assoc ~line_bytes ())
  done

(* ------------------------------------------------------------------ *)
(* Compiled predictor kernels vs the closure path                     *)
(* ------------------------------------------------------------------ *)

(* The staged [Machine.Compiled] / [Machine.Oracle] strategies must give
   byte-identical [Machine.result]s to the per-event closure path for
   arbitrary workload shapes, not just the catalog apps.  The oracle is
   the untouched closure record ([Predictor.t]) driven through the
   legacy Indexed strategy — the same differential pattern the catalog
   test pins, here over randomized app configs and arena lengths. *)
let test_compiled_kernels_equal_closure_oracle () =
  let open Whisper_bpu in
  let module Machine = Whisper_pipeline.Machine in
  let rng = Rng.create (seed lxor 0xFA57) in
  let config_cases = max 5 (cases / 200) in
  (* shrunken geometries: same code paths (allocation, aging, folding,
     SC/loop overrides), fuzz-friendly runtimes *)
  let small_tage =
    {
      Tage.default_params with
      n_tables = 5;
      log_entries = 7;
      log_bimodal = 9;
      max_len = 128;
      u_reset_period = 1 lsl 10;
    }
  in
  let scl_sizes = Sizes.for_budget ~kb:64 in
  for case = 1 to config_cases do
    let config =
      {
        (Option.get (Workloads.by_name "cassandra")) with
        Workloads.name = Printf.sprintf "fuzz-compiled-%d" case;
        functions = 2 + Rng.int rng 8;
        seed = Rng.int rng 10_000;
      }
    in
    let cfg = Workloads.build_cfg config in
    let input = Rng.int rng 3 in
    let events = 500 + Rng.int rng 2_500 in
    let arena = Arena.build ~events (App_model.create ~cfg ~config ~input ()) in
    let indexed (p : Predictor.t) i =
      let pc = Arena.pc arena i and taken = Arena.taken arena i in
      let pred = p.Predictor.predict ~pc in
      p.Predictor.train ~pc ~taken;
      pred = taken
    in
    let diff name rc ro =
      if rc <> ro then
        Alcotest.failf "case %d: %s compiled result diverges (seed %d)" case
          name seed
    in
    List.iter
      (fun (name, compiled, oracle) ->
        let rc =
          Machine.run_arena_exec ~events ~arena
            ~exec:(Machine.Compiled compiled.Predictor.Compiled.fill)
            ()
        in
        let ro =
          Machine.run_arena_exec ~events ~arena
            ~exec:(Machine.Indexed (indexed oracle))
            ()
        in
        diff name rc ro)
      [
        ("tage", Tage.compiled small_tage, Tage.predictor small_tage);
        ("tage-scl", Tage_scl.compiled scl_sizes, Tage_scl.predictor scl_sizes);
        ( "mtage-sc",
          Mtage.compiled ~n_lengths:4 ~max_len:64 (),
          Mtage.predictor ~n_lengths:4 ~max_len:64 () );
      ];
    (* the ideal technique: Oracle strategy == an always-correct closure *)
    diff "ideal"
      (Machine.run_arena_exec ~events ~arena ~exec:Machine.Oracle ())
      (Machine.run_arena_exec ~events ~arena
         ~exec:(Machine.Indexed (fun _ -> true))
         ())
  done

(* ------------------------------------------------------------------ *)
(* Adversarial (not random) inputs                                    *)
(* ------------------------------------------------------------------ *)

let test_malicious_varint () =
  (* 10 continuation bytes claim > 62 bits of payload *)
  let b = Bytes.make 10 '\xFF' in
  match Binio.Reader.varint (Binio.Reader.create b) with
  | _ -> Alcotest.fail "overflowing varint accepted"
  | exception
      Whisper_error.Error
        { kind = Whisper_error.Varint_overflow; offset = Some off; _ } ->
      check_int "offending byte offset" 8 off

let test_malicious_count () =
  (* a profile whose sample count points far past the input must be
     rejected without allocating for it *)
  let w = Binio.Writer.create () in
  Binio.Writer.magic w "WPRF";
  Binio.Writer.varint w 1 (* version *);
  Binio.Writer.varint w 1_000_000_000 (* lengths count: absurd *);
  match Profile_io.of_bytes (Binio.Writer.contents w) with
  | Ok _ -> Alcotest.fail "absurd count accepted"
  | Error e ->
      check_bool "typed as count overflow" true
        (match e.Whisper_error.kind with
        | Whisper_error.Count_overflow _ -> true
        | _ -> false)

let test_fault_operators_deterministic () =
  (* two injectors with the same seed agree on every decision and every
     corruption; a different seed disagrees somewhere *)
  let keys = List.init 200 (Printf.sprintf "work-item-%d") in
  let mk seed = Whisper_util.Fault.create ~seed ~rate:0.5 () in
  let f1 = mk 11 and f2 = mk 11 and f3 = mk 12 in
  check_bool "same seed, same decisions" true
    (List.for_all
       (fun key ->
         Whisper_util.Fault.decision f1 ~key
         = Whisper_util.Fault.decision f2 ~key)
       keys);
  check_bool "same seed, same corruption" true
    (List.for_all
       (fun key ->
         Whisper_util.Fault.corrupt f1 ~key trace_bytes
         = Whisper_util.Fault.corrupt f2 ~key trace_bytes)
       keys);
  check_bool "different seed differs somewhere" true
    (List.exists
       (fun key ->
         Whisper_util.Fault.decision f1 ~key
         <> Whisper_util.Fault.decision f3 ~key)
       keys);
  (* roughly rate-many keys are hit (binomial, wide tolerance) *)
  let hit =
    List.length
      (List.filter
         (fun key -> Whisper_util.Fault.decision f1 ~key <> Whisper_util.Fault.Pass)
         keys)
  in
  check_bool "injection rate in the right ballpark" true (hit > 50 && hit < 150)

let test_fault_corruption_is_decodable_failure () =
  (* whatever a byte operator does to an artifact, the decoder's answer
     is a typed verdict — the injector never produces a crash vector *)
  let f = Whisper_util.Fault.create ~seed:3 ~rate:1.0 () in
  List.iteri
    (fun i (name, good, decode) ->
      for k = 0 to 99 do
        let key = Printf.sprintf "%s/%d/%d" name i k in
        let bad = Whisper_util.Fault.corrupt f ~key good in
        match decode bad with
        | Some _ | None -> ()
        | exception e ->
            Alcotest.failf "%s raised %s under injected corruption" name
              (Printexc.to_string e)
      done)
    decoders

let () =
  Alcotest.run "whisper_fuzz"
    [
      ( "fuzz",
        Alcotest.
          [
            test_case "decoders are total" `Quick test_decoders_total;
            test_case "fuzz stream deterministic" `Quick
              test_fuzz_deterministic;
            test_case "packed scorer equals naive scorer" `Quick
              test_scorer_equivalence;
            test_case "compiled runtime equals oracle on random plans" `Quick
              test_compiled_runtime_equals_oracle_random_plans;
            test_case "arena replay equals closure replay" `Quick
              test_arena_replay_equals_closure_random_configs;
            test_case "flat cache equals reference cache" `Quick
              test_flat_cache_equals_reference;
            test_case "compiled kernels equal closure oracle" `Quick
              test_compiled_kernels_equal_closure_oracle;
            test_case "corrupt cached arena regenerates" `Quick
              test_arena_cache_chaos_drop_and_regenerate;
            test_case "journal recovery keeps only the original prefix" `Quick
              test_journal_recovery_prefix_under_corruption;
            test_case "journal recovery at every truncation point" `Quick
              test_journal_every_truncation_point;
            test_case "malicious varint" `Quick test_malicious_varint;
            test_case "malicious count" `Quick test_malicious_count;
            test_case "fault injector deterministic" `Quick
              test_fault_operators_deterministic;
            test_case "injected corruption decodes to errors" `Quick
              test_fault_corruption_is_decodable_failure;
          ] );
    ]
