(** Hashed perceptron predictor (Jiménez & Lin, HPCA'01) — the other major
    online predictor family the paper discusses (§VI).  Included as an
    additional baseline for ablation benches. *)

val make : ?hist_bits:int -> ?log_entries:int -> ?theta:int -> unit -> Predictor.t
(** Defaults: 32 history bits, 2^10 weight vectors, theta = 2.14*32+20.6
    rounded (the original paper's threshold formula). *)
