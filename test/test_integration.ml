(* Cross-library integration tests: the full profile → analyze → inject →
   simulate pipeline, serialization in the loop, and runtime fallback
   behaviour. *)

open Whisper_trace
open Whisper_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let app () = Option.get (Workloads.by_name "finagle-http")
let events = 80_000

let tage () = Whisper_bpu.Tage_scl.predictor Whisper_bpu.Sizes.standard

let collect_profile config cfg =
  Profile.collect ~min_mispred:4 ~lengths:Workloads.lengths ~events
    ~make_source:(fun () ->
      App_model.source (App_model.create ~cfg ~config ~input:0 ()))
    ~make_predictor:(fun () ->
      let p = tage () in
      fun ~pc ~taken ->
        let pred = p.Whisper_bpu.Predictor.predict ~pc in
        p.train ~pc ~taken;
        pred = taken)
    ()

(* The full pipeline, with both artifacts round-tripped through their
   binary formats in the middle — as a real deployment would ship them. *)
let test_pipeline_with_serialization () =
  let config = app () in
  let cfg = Workloads.build_cfg config in
  let profile = collect_profile config cfg in
  let profile = Profile_io.of_bytes_exn (Profile_io.to_bytes profile) in
  let analysis = Analyze.run profile in
  check_bool "hints found" true (Analyze.hint_count analysis > 0);
  let plan =
    Inject.plan Config.default cfg
      ~source:(App_model.source (App_model.create ~cfg ~config ~input:0 ()))
      ~hints:(Analyze.to_inject_hints analysis cfg)
  in
  let plan = Plan_io.of_bytes (Plan_io.to_bytes plan) in
  let rt = Runtime.create Config.default ~baseline:(tage ()) ~plan in
  let src = App_model.source (App_model.create ~cfg ~config ~input:1 ()) in
  let w_mis = ref 0 in
  for _ = 1 to events do
    if not (Runtime.exec rt (src ())) then incr w_mis
  done;
  let base = tage () in
  let src = App_model.source (App_model.create ~cfg ~config ~input:1 ()) in
  let b_mis = ref 0 in
  for _ = 1 to events do
    let e = src () in
    let pred = base.Whisper_bpu.Predictor.predict ~pc:e.Branch.pc in
    base.train ~pc:e.Branch.pc ~taken:e.Branch.taken;
    if pred <> e.Branch.taken then incr b_mis
  done;
  check_bool "hints were exercised" true (Runtime.hinted_predictions rt > 0);
  (* cross-input, so we only require no catastrophic regression *)
  check_bool "whisper within 10% of baseline or better" true
    (float_of_int !w_mis < 1.10 *. float_of_int !b_mis)

(* With an empty plan, the Whisper runtime must behave exactly like the
   baseline predictor alone. *)
let test_runtime_empty_plan_is_baseline () =
  let config = app () in
  let cfg = Workloads.build_cfg config in
  let empty_plan =
    { Inject.placements = []; by_host = Hashtbl.create 1; dropped = 0 }
  in
  let rt = Runtime.create Config.default ~baseline:(tage ()) ~plan:empty_plan in
  let src = App_model.source (App_model.create ~cfg ~config ~input:0 ()) in
  let rt_mis = ref 0 in
  for _ = 1 to 20_000 do
    if not (Runtime.exec rt (src ())) then incr rt_mis
  done;
  let base = tage () in
  let src = App_model.source (App_model.create ~cfg ~config ~input:0 ()) in
  let b_mis = ref 0 in
  for _ = 1 to 20_000 do
    let e = src () in
    let pred = base.Whisper_bpu.Predictor.predict ~pc:e.Branch.pc in
    base.train ~pc:e.Branch.pc ~taken:e.Branch.taken;
    if pred <> e.Branch.taken then incr b_mis
  done;
  check_int "identical misprediction counts" !b_mis !rt_mis;
  check_int "no hinted predictions" 0 (Runtime.hinted_predictions rt)

(* Determinism of the whole pipeline: two identical end-to-end executions
   produce identical hint sets and identical misprediction counts. *)
let test_pipeline_deterministic () =
  let run_once () =
    let config = app () in
    let cfg = Workloads.build_cfg config in
    let profile = collect_profile config cfg in
    let analysis = Analyze.run profile in
    let plan =
      Inject.plan Config.default cfg
        ~source:(App_model.source (App_model.create ~cfg ~config ~input:0 ()))
        ~hints:(Analyze.to_inject_hints analysis cfg)
    in
    let rt = Runtime.create Config.default ~baseline:(tage ()) ~plan in
    let src = App_model.source (App_model.create ~cfg ~config ~input:1 ()) in
    let mis = ref 0 in
    for _ = 1 to 30_000 do
      if not (Runtime.exec rt (src ())) then incr mis
    done;
    (Analyze.hint_count analysis, !mis)
  in
  let h1, m1 = run_once () in
  let h2, m2 = run_once () in
  check_int "same hints" h1 h2;
  check_int "same mispredictions" m1 m2

(* PT-decoded traces drive the profiler identically to the live stream. *)
let test_profile_from_decoded_trace () =
  let config = app () in
  let cfg = Workloads.build_cfg config in
  let n = 30_000 in
  let live = Branch.take
      (App_model.source (App_model.create ~cfg ~config ~input:0 ())) n in
  let decoded = Pt_codec.decode_exn ~cfg (Pt_codec.encode ~cfg live) in
  let collect events_arr =
    let i = ref 0 in
    Profile.collect ~min_mispred:2 ~lengths:Workloads.lengths ~events:n
      ~make_source:(fun () ->
        i := 0;
        fun () ->
          let e = events_arr.(!i) in
          incr i;
          e)
      ~make_predictor:(fun () ->
        let p = Whisper_bpu.Bimodal.make ~log_entries:12 in
        fun ~pc ~taken ->
          let pred = p.Whisper_bpu.Predictor.predict ~pc in
          p.train ~pc ~taken;
          pred = taken)
      ()
  in
  let p_live = collect live and p_dec = collect decoded in
  check_int "same mispredictions"
    (Profile.total_mispred p_live)
    (Profile.total_mispred p_dec);
  check_int "same candidates"
    (Array.length (Profile.candidates p_live))
    (Array.length (Profile.candidates p_dec))

let () =
  Alcotest.run "whisper_integration"
    [
      ( "pipeline",
        Alcotest.
          [
            test_case "with serialization" `Slow test_pipeline_with_serialization;
            test_case "empty plan = baseline" `Quick
              test_runtime_empty_plan_is_baseline;
            test_case "deterministic" `Slow test_pipeline_deterministic;
            test_case "profile from decoded trace" `Quick
              test_profile_from_decoded_trace;
          ] );
    ]
