(* Tests for whisper_trace: behaviours, CFG generation, the application
   model, the PT-like codec and profile collection. *)

open Whisper_util
open Whisper_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny_mix : Workloads.mix =
  {
    always = 1.0;
    never = 0.0;
    bias = 0.0;
    loop = 0.0;
    short_f = 0.0;
    ctx = 0.0;
    hashed = 0.0;
    parity = 0.0;
    random = 0.0;
  }

let tiny_config ?(mix = tiny_mix) ?(noise = 0.0) ?(functions = 4)
    ?(session_zipf = 0.8) () : Workloads.config =
  {
    name = "tiny";
    seed = 7;
    family = Workloads.Datacenter;
    functions;
    blocks_per_fn = (2, 4);
    instrs_per_block = (3, 6);
    session_types = max 2 (functions / 2);
    session_len = (2, 4);
    repeats = (1, 2);
    func_zipf = 0.6;
    session_zipf;
    mix;
    noise;
    hashed_len_weights = Array.make 16 1.0;
    bias_range = (0.7, 0.9);
    random_range = (0.4, 0.6);
    loop_range = (3, 6);
    parity_len = (8, 20);
  }

(* ------------------------------------------------------------------ *)
(* Behavior                                                           *)
(* ------------------------------------------------------------------ *)

let mk_ctx ?(n_branches = 8) () =
  Behavior.make_ctx ~lengths:Workloads.lengths ~n_branches ~chunk:8

let test_behavior_constant () =
  let ctx = mk_ctx () in
  let rng = Rng.create 1 in
  let always = { Behavior.kind = Behavior.Always_taken; noise = 0.0 } in
  let never = { Behavior.kind = Behavior.Never_taken; noise = 0.0 } in
  for _ = 1 to 50 do
    check_bool "always" true (Behavior.eval ctx ~rng ~branch:0 always);
    check_bool "never" false (Behavior.eval ctx ~rng ~branch:1 never);
    Behavior.record ctx (Rng.bool rng)
  done

let test_behavior_loop () =
  let ctx = mk_ctx () in
  let rng = Rng.create 2 in
  let loop = { Behavior.kind = Behavior.Loop { period = 3 }; noise = 0.0 } in
  let outcomes = List.init 9 (fun _ -> Behavior.eval ctx ~rng ~branch:0 loop) in
  Alcotest.(check (list bool))
    "taken taken not-taken, repeating"
    [ true; true; false; true; true; false; true; true; false ]
    outcomes

let test_behavior_short_formula () =
  let ctx = mk_ctx () in
  let rng = Rng.create 3 in
  (* direction = bit of the table indexed by the raw last-2 outcomes *)
  let table = 0b0110 in
  let b = { Behavior.kind = Behavior.Short_formula { len = 2; table }; noise = 0.0 } in
  (* push a known history: newest=1, then 0 -> raw2 = 0b01 -> table bit 1 = 1 *)
  Behavior.record ctx false;
  Behavior.record ctx true;
  check_bool "table[01]" true (Behavior.eval ctx ~rng ~branch:0 b);
  Behavior.record ctx true;
  (* raw2 now = 0b11 -> bit 3 of 0b0110 = 0 *)
  check_bool "table[11]" false (Behavior.eval ctx ~rng ~branch:0 b)

let test_behavior_hashed_formula_matches_tree () =
  let ctx = mk_ctx () in
  let rng = Rng.create 4 in
  let formula_id = 12345 in
  let tree = Whisper_formula.Tree.of_id ~leaves:8 formula_id in
  let b =
    { Behavior.kind = Behavior.Hashed_formula { len_idx = 3; formula_id }; noise = 0.0 }
  in
  for _ = 1 to 200 do
    let expected = Whisper_formula.Tree.eval tree (Behavior.hash_at ctx 3) in
    check_bool "matches tree on current hash" expected
      (Behavior.eval ctx ~rng ~branch:0 b);
    Behavior.record ctx (Rng.bool rng)
  done

let test_behavior_parity () =
  let ctx = mk_ctx () in
  let rng = Rng.create 5 in
  let b = { Behavior.kind = Behavior.Parity { len = 4; step = 1 }; noise = 0.0 } in
  Behavior.record ctx true;
  Behavior.record ctx true;
  Behavior.record ctx false;
  Behavior.record ctx true;
  (* parity of last 4 = 1^1^0^1 = 1 *)
  check_bool "odd parity" true (Behavior.eval ctx ~rng ~branch:0 b);
  Behavior.record ctx true;
  (* last 4 = 1,1,1,0 -> parity 1 *)
  check_bool "still odd" true (Behavior.eval ctx ~rng ~branch:0 b)

let test_behavior_noise_flips () =
  let ctx = mk_ctx () in
  let rng = Rng.create 6 in
  let b = { Behavior.kind = Behavior.Always_taken; noise = 1.0 } in
  check_bool "noise 1.0 always flips" false (Behavior.eval ctx ~rng ~branch:0 b)

let test_behavior_random_frequency () =
  let ctx = mk_ctx () in
  let rng = Rng.create 7 in
  let b = { Behavior.kind = Behavior.Random 0.25; noise = 0.0 } in
  let taken = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Behavior.eval ctx ~rng ~branch:0 b then incr taken
  done;
  let freq = float_of_int !taken /. float_of_int n in
  check_bool "freq near 0.25" true (abs_float (freq -. 0.25) < 0.02)

let test_behavior_record_updates_history () =
  let ctx = mk_ctx () in
  Behavior.record ctx true;
  check_int "newest bit" 1 (History.get (Behavior.history ctx) 0);
  Behavior.record ctx false;
  check_int "newest bit" 0 (History.get (Behavior.history ctx) 0);
  check_int "previous bit" 1 (History.get (Behavior.history ctx) 1)

(* ------------------------------------------------------------------ *)
(* Cfg / Workloads                                                    *)
(* ------------------------------------------------------------------ *)

let test_cfg_validates () =
  Array.iter
    (fun config ->
      let cfg = Workloads.build_cfg config in
      match Cfg.validate cfg with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" config.Workloads.name msg)
    Workloads.all

let test_cfg_deterministic () =
  let c = tiny_config () in
  let a = Workloads.build_cfg c and b = Workloads.build_cfg c in
  check_int "same block count" (Cfg.n_branches a) (Cfg.n_branches b);
  Array.iteri
    (fun i (blk : Cfg.block) ->
      check_int "same addr" blk.addr b.Cfg.blocks.(i).addr)
    a.Cfg.blocks

let test_cfg_block_of_pc () =
  let cfg = Workloads.build_cfg (tiny_config ()) in
  Array.iter
    (fun (b : Cfg.block) ->
      match Cfg.block_of_pc cfg b.branch_pc with
      | Some found -> check_int "roundtrip" b.id found.Cfg.id
      | None -> Alcotest.fail "pc not found")
    cfg.Cfg.blocks;
  Alcotest.(check (option reject)) "bogus pc" None
    (Option.map ignore (Cfg.block_of_pc cfg 1))

let test_cfg_predecessors () =
  let cfg = Workloads.build_cfg (tiny_config ()) in
  let f = cfg.Cfg.funcs.(0) in
  check_int "first block has no predecessors" 0
    (List.length (Cfg.predecessors_in_func cfg f.first_block));
  if f.n_blocks > 1 then begin
    let second = f.first_block + 1 in
    Alcotest.(check (list int))
      "second block's predecessor" [ f.first_block ]
      (Cfg.predecessors_in_func cfg second)
  end

let test_cfg_footprint () =
  let cfg = Workloads.build_cfg (tiny_config ()) in
  let sum =
    Array.fold_left
      (fun acc (b : Cfg.block) -> acc + (b.instrs * Cfg.instr_bytes))
      0 cfg.Cfg.blocks
  in
  check_int "footprint = sum of block bytes" sum cfg.Cfg.footprint

let test_workloads_catalogue () =
  check_int "12 datacenter apps" 12 (Array.length Workloads.datacenter);
  check_int "10 spec apps" 10 (Array.length Workloads.spec);
  check_bool "mysql present" true (Workloads.by_name "mysql" <> None);
  check_bool "unknown absent" true (Workloads.by_name "nope" = None);
  (* names unique *)
  let names = Array.to_list (Array.map (fun c -> c.Workloads.name) Workloads.all) in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_workloads_static_scale () =
  Array.iter
    (fun config ->
      let cfg = Workloads.build_cfg config in
      let n = Cfg.n_branches cfg in
      match config.Workloads.family with
      | Workloads.Datacenter ->
          check_bool
            (config.name ^ " has a data-center-sized branch footprint")
            true (n > 3_500)
      | Workloads.Spec ->
          check_bool (config.name ^ " is small") true (n < 15_000))
    Workloads.all

(* ------------------------------------------------------------------ *)
(* App_model                                                          *)
(* ------------------------------------------------------------------ *)

let make_model ?(input = 0) config =
  let cfg = Workloads.build_cfg config in
  App_model.create ~cfg ~config ~input ()

let test_app_model_deterministic () =
  let config = tiny_config () in
  let a = make_model config and b = make_model config in
  let ea = Branch.take (App_model.source a) 1000 in
  let eb = Branch.take (App_model.source b) 1000 in
  Array.iteri
    (fun i (e : Branch.event) ->
      check_int "same block" e.block eb.(i).Branch.block;
      check_bool "same direction" e.taken eb.(i).Branch.taken)
    ea

let test_app_model_inputs_differ () =
  let config =
    tiny_config
      ~mix:{ tiny_mix with always = 0.3; bias = 0.4; random = 0.3 }
      ~functions:32 ()
  in
  let a = make_model ~input:0 config and b = make_model ~input:2 config in
  let ea = Branch.take (App_model.source a) 2000 in
  let eb = Branch.take (App_model.source b) 2000 in
  let diff = ref 0 in
  Array.iteri
    (fun i (e : Branch.event) ->
      if e.Branch.block <> eb.(i).Branch.block || e.taken <> eb.(i).Branch.taken
      then incr diff)
    ea;
  check_bool "different inputs diverge" true (!diff > 100)

let test_app_model_valid_walk () =
  let config = tiny_config ~functions:8 () in
  let cfg = Workloads.build_cfg config in
  let m = App_model.create ~cfg ~config ~input:0 () in
  let events = Branch.take (App_model.source m) 5000 in
  Array.iteri
    (fun i (e : Branch.event) ->
      if i > 0 then begin
        let prev = events.(i - 1) in
        let pb = cfg.Cfg.blocks.(prev.Branch.block) in
        let f = cfg.Cfg.funcs.(pb.func) in
        let last = prev.Branch.block = f.first_block + f.n_blocks - 1 in
        if not last then
          check_int "fall-through" (prev.Branch.block + 1) e.Branch.block
        else begin
          (* function switches land on a function entry *)
          let nb = cfg.Cfg.blocks.(e.Branch.block) in
          let nf = cfg.Cfg.funcs.(nb.func) in
          check_int "enters at function start" nf.first_block e.Branch.block
        end
      end)
    events;
  (* next_addr of event i = addr of block of event i+1 *)
  for i = 0 to Array.length events - 2 do
    check_int "next_addr matches successor"
      cfg.Cfg.blocks.(events.(i + 1).Branch.block).addr
      events.(i).Branch.next_addr
  done

let test_app_model_all_taken () =
  let m = make_model (tiny_config ()) in
  let events = Branch.take (App_model.source m) 500 in
  Array.iter
    (fun (e : Branch.event) -> check_bool "always-taken mix" true e.Branch.taken)
    events

let test_app_model_event_fields () =
  let config = tiny_config () in
  let cfg = Workloads.build_cfg config in
  let m = App_model.create ~cfg ~config ~input:0 () in
  let e = App_model.source m () in
  let b = cfg.Cfg.blocks.(e.Branch.block) in
  check_int "pc" b.branch_pc e.Branch.pc;
  check_int "instrs" b.instrs e.Branch.instrs;
  check_int "events counted" 1 (App_model.events_generated m)

let test_app_model_zipf_concentration () =
  (* Higher session-zipf skew concentrates executions on fewer sessions
     and hence fewer functions. *)
  let run session_zipf =
    let config = tiny_config ~functions:64 ~session_zipf () in
    let cfg = Workloads.build_cfg config in
    let m = App_model.create ~cfg ~config ~input:0 () in
    let seen = Hashtbl.create 64 in
    for _ = 1 to 5000 do
      let e = App_model.source m () in
      Hashtbl.replace seen cfg.Cfg.blocks.(e.Branch.block).func ()
    done;
    Hashtbl.length seen
  in
  let flat = run 0.1 and skewed = run 3.0 in
  check_bool "skew reduces function working set" true (skewed < flat)

(* ------------------------------------------------------------------ *)
(* Pt_codec                                                           *)
(* ------------------------------------------------------------------ *)

let event_testable =
  Alcotest.testable Branch.pp (fun (a : Branch.event) b -> a = b)

let test_codec_roundtrip () =
  let config = tiny_config ~functions:6 () in
  let cfg = Workloads.build_cfg config in
  let m = App_model.create ~cfg ~config ~input:0 () in
  let events = Branch.take (App_model.source m) 3000 in
  let decoded = Pt_codec.decode_exn ~cfg (Pt_codec.encode ~cfg events) in
  Alcotest.(check (array event_testable)) "roundtrip" events decoded

let test_codec_empty () =
  let cfg = Workloads.build_cfg (tiny_config ()) in
  let decoded = Pt_codec.decode_exn ~cfg (Pt_codec.encode ~cfg [||]) in
  check_int "empty" 0 (Array.length decoded)

let test_codec_compact () =
  let config = tiny_config ~functions:6 () in
  let cfg = Workloads.build_cfg config in
  let m = App_model.create ~cfg ~config ~input:0 () in
  let events = Branch.take (App_model.source m) 5000 in
  let ratio = Pt_codec.compression_ratio ~cfg events in
  check_bool "under 2 bytes per branch" true (ratio < 2.0)

let test_codec_corrupt () =
  (* decoding is total: corrupt input comes back as a typed Error with
     the stage and byte offset of the fault, never an exception *)
  let cfg = Workloads.build_cfg (tiny_config ()) in
  (match Pt_codec.decode ~cfg (Bytes.of_string "\xFF\xFF") with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e ->
      check_bool "stage is pt_codec" true
        (e.Whisper_error.stage = Whisper_error.Pt_codec));
  (* every truncation of a valid stream is rejected the same way *)
  let config = tiny_config ~functions:4 () in
  let cfg = Workloads.build_cfg config in
  let m = App_model.create ~cfg ~config ~input:0 () in
  let good = Pt_codec.encode ~cfg (Branch.take (App_model.source m) 500) in
  for cut = 1 to min 100 (Bytes.length good - 1) do
    match Pt_codec.decode ~cfg (Bytes.sub good 0 cut) with
    | Error _ -> ()
    | Ok events ->
        (* a prefix of packets can decode cleanly; it must then be a
           prefix of the original event stream, not garbage *)
        check_bool "clean prefix" true (Array.length events <= 500)
  done

let qcheck_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip for random lengths" ~count:30
    QCheck.(pair (int_range 0 2000) (int_range 0 1000))
    (fun (n, seed_off) ->
      let config = { (tiny_config ~functions:6 ()) with seed = 7 + seed_off } in
      let cfg = Workloads.build_cfg config in
      let m = App_model.create ~cfg ~config ~input:0 () in
      let events = Branch.take (App_model.source m) n in
      Pt_codec.decode_exn ~cfg (Pt_codec.encode ~cfg events) = events)

(* ------------------------------------------------------------------ *)
(* Profile                                                            *)
(* ------------------------------------------------------------------ *)

let static_taken_predictor () ~pc:_ ~taken = taken (* predicts taken *)

let mixed_config () =
  tiny_config
    ~mix:
      {
        always = 0.3;
        never = 0.3;
        bias = 0.0;
        loop = 0.0;
        short_f = 0.0;
        ctx = 0.0;
        hashed = 0.0;
        parity = 0.0;
        random = 0.4;
      }
    ~functions:16 ()

let collect_profile ?(events = 8000) ?(min_mispred = 1) ?(max_candidates = 64)
    ?(max_samples = 128) config =
  let cfg = Workloads.build_cfg config in
  Profile.collect ~max_candidates ~min_mispred ~max_samples
    ~lengths:Workloads.lengths ~events
    ~make_source:(fun () ->
      App_model.source (App_model.create ~cfg ~config ~input:0 ()))
    ~make_predictor:(fun () -> static_taken_predictor ())
    ()

let test_profile_totals () =
  let events = 8000 in
  let p = collect_profile ~events (mixed_config ()) in
  check_int "branch total" events (Profile.total_branches p);
  let sum = ref 0 in
  Profile.iter_stats p ~f:(fun ~pc:_ s -> sum := !sum + s.Profile.execs);
  check_int "per-branch execs sum to total" events !sum;
  check_bool "instrs counted" true (Profile.total_instrs p > events);
  check_bool "some mispredictions" true (Profile.total_mispred p > 0);
  check_bool "mpki positive" true (Profile.mpki p > 0.0)

let test_profile_mispred_consistency () =
  (* With an always-predict-taken baseline, mispredictions = not-taken. *)
  let p = collect_profile (mixed_config ()) in
  Profile.iter_stats p ~f:(fun ~pc:_ s ->
      check_int "mispred = execs - taken"
        (s.Profile.execs - s.Profile.taken_cnt)
        s.Profile.mispred)

let test_profile_candidates_sorted () =
  let p = collect_profile (mixed_config ()) in
  let cands = Profile.candidates p in
  check_bool "has candidates" true (Array.length cands > 0);
  for i = 1 to Array.length cands - 1 do
    let m pc =
      match Profile.stat p ~pc with Some s -> s.Profile.mispred | None -> 0
    in
    check_bool "sorted by mispredictions" true (m cands.(i - 1) >= m cands.(i))
  done

let test_profile_sample_cap () =
  let p = collect_profile ~max_samples:16 (mixed_config ()) in
  Array.iter
    (fun pc -> check_bool "cap respected" true (Profile.n_samples p ~pc <= 16))
    (Profile.candidates p)

let test_profile_samples_agree_with_ground_truth () =
  (* Replay the same stream manually, verifying the recorded hashes. *)
  let config = mixed_config () in
  let cfg = Workloads.build_cfg config in
  let events = 4000 in
  let p =
    Profile.collect ~max_candidates:8 ~min_mispred:1 ~max_samples:100000
      ~lengths:Workloads.lengths ~events
      ~make_source:(fun () ->
        App_model.source (App_model.create ~cfg ~config ~input:0 ()))
      ~make_predictor:(fun () -> static_taken_predictor ())
      ()
  in
  let cands = Profile.candidates p in
  check_bool "have candidates" true (Array.length cands > 0);
  let pc0 = cands.(0) in
  (* Recompute expected samples for pc0 by replay. *)
  let src = App_model.source (App_model.create ~cfg ~config ~input:0 ()) in
  let hist = History.create ~depth:2048 in
  let folded =
    Array.map
      (fun len -> History.Folded.create ~len ~chunk:8)
      Workloads.lengths
  in
  let expected = ref [] in
  for _ = 1 to events do
    let e = src () in
    if e.Branch.pc = pc0 then
      expected :=
        (History.raw_window hist 8, History.Folded.value folded.(5), e.Branch.taken)
        :: !expected;
    History.push_all hist folded e.Branch.taken
  done;
  let expected = Array.of_list (List.rev !expected) in
  let i = ref 0 in
  Profile.iter_samples p ~pc:pc0 ~f:(fun ~raw8 ~raw56:_ ~hash ~taken ~correct:_ ->
      let e_raw8, e_hash5, e_taken = expected.(!i) in
      check_int "raw8" e_raw8 raw8;
      check_int "hash idx5" e_hash5 (hash 5);
      check_bool "taken" e_taken taken;
      incr i);
  check_int "sample count" (Array.length expected) !i

let test_profile_merge () =
  let config = mixed_config () in
  let p1 = collect_profile ~events:2000 config in
  let p2 = collect_profile ~events:3000 config in
  let m = Profile.merge [ p1; p2 ] in
  check_int "branches add" 5000 (Profile.total_branches m);
  check_int "mispreds add"
    (Profile.total_mispred p1 + Profile.total_mispred p2)
    (Profile.total_mispred m);
  (* per-branch stats add *)
  Profile.iter_stats p1 ~f:(fun ~pc s1 ->
      let s2 = Profile.stat p2 ~pc in
      let sm = Option.get (Profile.stat m ~pc) in
      let e2 = match s2 with Some s -> s.Profile.execs | None -> 0 in
      check_int "execs add" (s1.Profile.execs + e2) sm.Profile.execs);
  (* samples pooled *)
  let total_samples p =
    Array.fold_left (fun acc pc -> acc + Profile.n_samples p ~pc) 0
      (Profile.candidates p)
  in
  check_int "samples pooled" (total_samples p1 + total_samples p2) (total_samples m)

let test_profile_merge_invalid () =
  Alcotest.check_raises "empty merge" (Invalid_argument "Profile.merge: empty list")
    (fun () -> ignore (Profile.merge []))

let test_profile_builder () =
  let p = Profile.create_empty ~lengths:Workloads.lengths () in
  Profile.record_event p ~pc:100 ~taken:true ~correct:false ~instrs:5;
  Profile.record_event p ~pc:100 ~taken:false ~correct:true ~instrs:5;
  let s = Option.get (Profile.stat p ~pc:100) in
  check_int "execs" 2 s.Profile.execs;
  check_int "taken" 1 s.Profile.taken_cnt;
  check_int "mispred" 1 s.Profile.mispred;
  let hashes = Array.init 16 (fun i -> i * 3 mod 256) in
  Profile.add_sample p ~pc:100 ~raw8:0xAB ~hashes ~taken:true ~correct:false;
  check_int "one sample" 1 (Profile.n_samples p ~pc:100);
  Profile.iter_samples p ~pc:100 ~f:(fun ~raw8 ~raw56:_ ~hash ~taken ~correct ->
      check_int "raw8" 0xAB raw8;
      check_int "hash 4" 12 (hash 4);
      check_bool "taken" true taken;
      check_bool "correct" false correct)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "whisper_trace"
    [
      ( "behavior",
        Alcotest.
          [
            test_case "constants" `Quick test_behavior_constant;
            test_case "loop" `Quick test_behavior_loop;
            test_case "short formula" `Quick test_behavior_short_formula;
            test_case "hashed formula matches tree" `Quick
              test_behavior_hashed_formula_matches_tree;
            test_case "parity" `Quick test_behavior_parity;
            test_case "noise flips" `Quick test_behavior_noise_flips;
            test_case "random frequency" `Quick test_behavior_random_frequency;
            test_case "record updates history" `Quick
              test_behavior_record_updates_history;
          ] );
      ( "cfg",
        Alcotest.
          [
            test_case "all workloads validate" `Quick test_cfg_validates;
            test_case "deterministic" `Quick test_cfg_deterministic;
            test_case "block_of_pc" `Quick test_cfg_block_of_pc;
            test_case "predecessors" `Quick test_cfg_predecessors;
            test_case "footprint" `Quick test_cfg_footprint;
          ] );
      ( "workloads",
        Alcotest.
          [
            test_case "catalogue" `Quick test_workloads_catalogue;
            test_case "static scale" `Quick test_workloads_static_scale;
          ] );
      ( "app_model",
        Alcotest.
          [
            test_case "deterministic" `Quick test_app_model_deterministic;
            test_case "inputs differ" `Quick test_app_model_inputs_differ;
            test_case "valid walk" `Quick test_app_model_valid_walk;
            test_case "all taken mix" `Quick test_app_model_all_taken;
            test_case "event fields" `Quick test_app_model_event_fields;
            test_case "zipf concentration" `Quick test_app_model_zipf_concentration;
          ] );
      ( "pt_codec",
        Alcotest.
          [
            test_case "roundtrip" `Quick test_codec_roundtrip;
            test_case "empty" `Quick test_codec_empty;
            test_case "compact" `Quick test_codec_compact;
            test_case "corrupt" `Quick test_codec_corrupt;
          ]
        @ qsuite [ qcheck_codec_roundtrip ] );
      ( "profile",
        Alcotest.
          [
            test_case "totals" `Quick test_profile_totals;
            test_case "mispred consistency" `Quick test_profile_mispred_consistency;
            test_case "candidates sorted" `Quick test_profile_candidates_sorted;
            test_case "sample cap" `Quick test_profile_sample_cap;
            test_case "samples agree with replay" `Quick
              test_profile_samples_agree_with_ground_truth;
            test_case "merge" `Quick test_profile_merge;
            test_case "merge invalid" `Quick test_profile_merge_invalid;
            test_case "builder" `Quick test_profile_builder;
          ] );
    ]
