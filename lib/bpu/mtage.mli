(** MTAGE-SC stand-in: the best unlimited-storage predictor of CBP-5,
    approximated as an exact-substream TAGE — tagged tables with
    unbounded capacity and collision-free (64-bit folded) keys across a
    geometric series of history lengths.  Used for the paper's limit
    comparisons (Figs. 12, 21: MPKI 1.4 vs. 1.9 for 1 MB TAGE-SC-L).

    With unbounded entries, every (PC, history-window) substream that
    repeats is eventually memorized, so residual mispredictions come only
    from compulsory accesses, genuinely data-dependent branches and
    model noise — the behaviour the paper ascribes to MTAGE-SC. *)

val predictor : ?n_lengths:int -> ?max_len:int -> unit -> Predictor.t
(** Defaults: 9 lengths, 8–1024. Reported [storage_bits] is 0 (unlimited
    category). *)

val compiled : ?n_lengths:int -> ?max_len:int -> unit -> Predictor.Compiled.t
(** Staged arena kernel (fresh instance per [fill] call); see
    {!Predictor.Compiled} for the contract. *)
