(** Generic set-associative LRU cache of line tags, used for the L1i/L2/L3
    instruction-side hierarchy and for the BTB.

    The kernel is a single flat preallocated [int array] (set-major,
    way 0 = MRU), so [access]/[probe] are allocation-free and an instance
    can be [reset] and reused across runs instead of rebuilt. *)

type t

val create : ?bytes:int -> ?entries:int -> assoc:int -> line_bytes:int -> unit -> t
(** Size by [bytes] (capacity / line size sets the entry count) or
    directly by [entries].  @raise Invalid_argument unless exactly one of
    the two is given and geometry is a power of two. *)

val entries : t -> int

val reset : t -> unit
(** Invalidate every line and zero the hit/miss counters, returning the
    instance to its freshly-created state without reallocating. *)

val access : t -> int -> bool
(** [access t addr] probes the line containing [addr] and updates LRU /
    fills on miss; returns whether it hit. *)

val probe : t -> int -> bool
(** Hit test without state change. *)

val hits : t -> int
val misses : t -> int

(** The original array-of-arrays implementation, retained verbatim as the
    differential oracle for the flat kernel (see the cache fuzz suite). *)
module Reference : sig
  type t

  val create :
    ?bytes:int -> ?entries:int -> assoc:int -> line_bytes:int -> unit -> t

  val access : t -> int -> bool
  val probe : t -> int -> bool
  val hits : t -> int
  val misses : t -> int
end
