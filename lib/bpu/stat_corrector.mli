(** Statistical corrector (the "SC" of TAGE-SC-L): a small GEHL-style bank
    of signed counters over short folded histories plus a per-PC bias,
    which can veto TAGE's prediction when the statistical evidence against
    it is strong — catching statistically-biased branches that TAGE's
    tagged entries track poorly. *)

type t

val create : log_entries:int -> t

val storage_bits : t -> int

val refine :
  ?tage_conf:[ `High | `Med | `Low ] -> t -> pc:int -> tage_pred:bool -> bool
(** Final direction after the corrector's veto logic; the veto threshold
    scales with TAGE's confidence (high-confidence predictions are vetoed
    only on overwhelming statistical evidence).  Records the lookup
    context for {!train}. *)

val refine_conf :
  t -> conf:[ `High | `Med | `Low ] -> pc:int -> tage_pred:bool -> bool
(** {!refine} with a required confidence argument — the replay hot loop
    uses this to avoid boxing the optional argument per prediction. *)

val train : t -> pc:int -> taken:bool -> unit
(** Perceptron-style threshold update; advances the corrector's own
    history.  Must follow {!refine} for the same [pc]. *)

val spectate : t -> taken:bool -> unit
(** History-only update. *)
