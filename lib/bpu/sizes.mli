(** Storage-budget scaling for TAGE-SC-L (paper Figs. 20–21 sweep the
    baseline from 8 KB to 1 MB). *)

type t = {
  budget_kb : int;
  tage : Tage.params;
  loop_log : int;
  sc_log : int;
}

val for_budget : kb:int -> t
(** Configuration for a power-of-two budget between 8 and 8192 KB.
    @raise Invalid_argument otherwise. *)

val standard : t
(** The paper's 64 KB baseline. *)

val total_bits : t -> int
(** Accounted storage of the configuration (within ~25 % of the nominal
    budget, matching how the CBP predictors are sized). *)
