(** Deterministic pseudo-random number generation.

    All stochastic components of the reproduction (workload generation,
    randomized formula testing, behaviour sampling) draw from this
    SplitMix64-based generator so that every experiment is reproducible
    from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Two generators created with
    the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of
    the parent and child are statistically independent. *)

val next : t -> int64
(** [next t] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val bits : t -> int -> int
(** [bits t n] returns [n] uniform random bits as a non-negative int,
    [0 <= n <= 62]. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] samples the number of failures before the first success
    of a Bernoulli([p]) process; [p] must be in (0, 1]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle (Durstenfeld variant), as used by the
    paper's randomized formula testing (§III-B). *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0 .. n-1]. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)

val sample_weighted : t -> (float * 'a) array -> 'a
(** [sample_weighted t arr] picks an element with probability proportional
    to its weight.  Weights must be non-negative and not all zero. *)
