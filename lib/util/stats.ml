let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean") xs;
    exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else
    let m = mean xs in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int n
    in
    sqrt var

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let pct part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let speedup_pct ~baseline ~improved =
  if improved = 0.0 then 0.0 else 100.0 *. ((baseline /. improved) -. 1.0)

let reduction_pct ~baseline ~improved =
  if baseline = 0.0 then 0.0 else 100.0 *. (baseline -. improved) /. baseline

let cdf_points xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    List.init n (fun i ->
        (sorted.(i), float_of_int (i + 1) /. float_of_int n))
  end
