open Whisper_trace

type choice = {
  len_idx : int;
  formula_id : int;
  bias : Brhint.bias;
  sample_mispred : int;
  baseline_mispred : int;
  samples : int;
}

(* Taken / not-taken count tables for one (branch, length).  [part]
   selects all samples, or the even/odd half — the formula is chosen on
   the train half and scored on the held-out half, so hints that merely
   overfit the profile are rejected (cf. the paper's requirement that the
   formula beat the profiled predictor's accuracy). *)
let tables_at profile ~pc ~len_idx ~part =
  let taken = Array.make 256 0 in
  let not_taken = Array.make 256 0 in
  let i = ref 0 in
  Profile.iter_samples profile ~pc ~f:(fun ~raw8:_ ~raw56:_ ~hash ~taken:tk ~correct:_ ->
      let keep =
        match part with
        | `All -> true
        | `Train -> !i land 1 = 0
        | `Eval -> !i land 1 = 1
      in
      incr i;
      if keep then begin
        let k = hash len_idx in
        if tk then taken.(k) <- taken.(k) + 1
        else not_taken.(k) <- not_taken.(k) + 1
      end);
  Algorithm1.tables_of_counts ~taken ~not_taken

let search rnd profile ~pc ~len_idx ~candidates ~part =
  let tables = tables_at profile ~pc ~len_idx ~part in
  if Algorithm1.distinct_keys tables = 0 then None
  else
    let f, m =
      Algorithm1.find tables ~candidates ~truth_of:(Randomized.truth_of rnd)
    in
    Some (f, m)

let decide_at_length rnd profile ~pc ~len_idx =
  search rnd profile ~pc ~len_idx ~candidates:(Randomized.candidates rnd)
    ~part:`All

let best_possible_at_length rnd profile ~pc ~len_idx ~explore =
  search rnd profile ~pc ~len_idx
    ~candidates:(Randomized.candidates_n rnd explore)
    ~part:`All

(* Baseline mispredictions and direction counts over a sample part. *)
let part_stats profile ~pc ~part =
  let mispred = ref 0 and taken = ref 0 and n = ref 0 in
  let i = ref 0 in
  Profile.iter_samples profile ~pc ~f:(fun ~raw8:_ ~raw56:_ ~hash:_ ~taken:tk ~correct ->
      let keep =
        match part with
        | `All -> true
        | `Train -> !i land 1 = 0
        | `Eval -> !i land 1 = 1
      in
      incr i;
      if keep then begin
        incr n;
        if not correct then incr mispred;
        if tk then incr taken
      end);
  (!mispred, !taken, !n)

let decide ?min_gain (cfg : Config.t) rnd profile ~pc =
  let min_gain = Option.value min_gain ~default:cfg.min_sample_gain in
  let n_samples = Profile.n_samples profile ~pc in
  if n_samples < 8 then None
  else begin
    (* Select the whole (bias-or-formula, length) choice on the train
       half, then score only that single winner on the held-out half —
       any selection on the eval half would re-introduce optimism. *)
    let _, train_taken, train_n = part_stats profile ~pc ~part:`Train in
    let train_nt = train_n - train_taken in
    let best = ref (Brhint.Always_taken, 0, 0, train_nt) in
    if train_taken < train_nt then best := (Brhint.Never_taken, 0, 0, train_taken);
    for len_idx = 0 to cfg.n_lengths - 1 do
      match
        search rnd profile ~pc ~len_idx
          ~candidates:(Randomized.candidates rnd)
          ~part:`Train
      with
      | None -> ()
      | Some (f, train_m) ->
          let _, _, _, cur = !best in
          if train_m < cur then best := (Brhint.Formula, len_idx, f, train_m)
    done;
    let bias, len_idx, formula_id, _ = !best in
    let eval_baseline, eval_taken, eval_n = part_stats profile ~pc ~part:`Eval in
    let eval_m =
      match bias with
      | Brhint.Always_taken -> eval_n - eval_taken
      | Brhint.Never_taken -> eval_taken
      | Brhint.Dynamic -> eval_baseline
      | Brhint.Formula ->
          let eval_tables = tables_at profile ~pc ~len_idx ~part:`Eval in
          Algorithm1.mispredictions eval_tables
            ~truth:(Randomized.truth_of rnd formula_id)
    in
    (* marginal hints are the ones that regress on unseen inputs: require
       the win to be a meaningful fraction of the branch's mispredictions *)
    let required = max min_gain ((eval_baseline + 9) / 10) in
    if eval_baseline - eval_m >= required then
      Some
        {
          len_idx;
          formula_id;
          bias;
          sample_mispred = eval_m;
          baseline_mispred = eval_baseline;
          samples = n_samples;
        }
    else None
  end
