(** Compact binary branch-trace codec, modelled on Intel PT's packet
    stream (paper §IV, step 1).

    Like PT, the encoder emits 1 bit per conditional branch (grouped into
    TNT packets) and a target packet (TIP) only where control flow is not
    statically determined — in our model, at function switches.  The
    decoder reconstructs the full event stream by walking the {!Cfg.t},
    exactly as the paper's offline analysis reconstructs control flow from
    PT packets plus the binary.

    Packet grammar:
    - [0x01 count bitmap…] — TNT: [count] branch outcomes (1 = taken),
      oldest outcome in bit 0 of the first bitmap byte;
    - [0x02 varint] — TIP: global block id executed next;
    - [0x00] — END. *)

val encode : cfg:Cfg.t -> Branch.event array -> bytes
(** Serialize a finite event run.  The events must form a valid walk of
    [cfg] (consecutive blocks within a function, TIP-able switches at
    function ends); events produced by {!App_model} always do.
    @raise Invalid_argument on an inconsistent walk. *)

val decode :
  cfg:Cfg.t -> bytes -> (Branch.event array, Whisper_util.Whisper_error.t) result
(** Inverse of {!encode}.  Total: a corrupt stream (truncated packet,
    out-of-range TIP, malicious varint, unknown tag…) yields [Error]
    carrying the byte offset and packet kind — never an exception.
    This is the fleet-ingestion entry point. *)

val decode_exn : cfg:Cfg.t -> bytes -> Branch.event array
(** Like {!decode} for callers on trusted input (self-checks, tests).
    @raise Whisper_error.Error on a corrupt stream. *)

val compression_ratio : cfg:Cfg.t -> Branch.event array -> float
(** Encoded bytes per branch event (PT achieves ≈ 1 bit/branch; ours is
    within a small constant of that). *)
