type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
      c.pos <- c.pos + 1;
      ch
  | None -> fail "unexpected end of input at offset %d" c.pos

let skip_ws c =
  let n = String.length c.src in
  while
    c.pos < n
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  let got = next c in
  if got <> ch then fail "expected %C at offset %d, got %C" ch (c.pos - 1) got

let literal c word v =
  String.iter (fun ch -> expect c ch) word;
  v

let hex_digit = function
  | '0' .. '9' as ch -> Char.code ch - Char.code '0'
  | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
  | ch -> fail "invalid hex digit %C" ch

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match next c with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (match next c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            let d3 = hex_digit (next c) in
            let d2 = hex_digit (next c) in
            let d1 = hex_digit (next c) in
            let d0 = hex_digit (next c) in
            let v = (d3 lsl 12) lor (d2 lsl 8) lor (d1 lsl 4) lor d0 in
            (* the telemetry writers never emit non-ASCII escapes *)
            Buffer.add_char buf (if v < 0x80 then Char.chr v else '?')
        | ch -> fail "invalid escape \\%C" ch);
        go ()
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let n = String.length c.src in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < n && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail "invalid number %S at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match next c with
          | ',' -> items (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | ch -> fail "expected ',' or ']', got %C at offset %d" ch (c.pos - 1)
        in
        items []
      end
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match next c with
          | ',' -> members ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | ch -> fail "expected ',' or '}', got %C at offset %d" ch (c.pos - 1)
        in
        members []
      end
  | Some _ -> parse_number c

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing bytes at offset %d" c.pos)
      else Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

(* Canonical number rendering: integral values print without a decimal
   point so counter values survive a parse/print round trip byte-for-
   byte; everything else uses shortest-precise float notation. *)
let number_string f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write ~indent ~level buf v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_string f)
  | Str s -> escape_string buf s
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          escape_string buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          write ~indent ~level:(level + 1) buf item)
        members;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v ^ "\n"

let equal (a : t) (b : t) = a = b

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let remove k = function
  | Obj members -> Obj (List.filter (fun (k', _) -> k' <> k) members)
  | v -> v

let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let str = function Str s -> Some s | _ -> None
let bool = function Bool b -> Some b | _ -> None
let arr = function Arr items -> Some items | _ -> None
let of_int n = Num (float_of_int n)
