type t = {
  budget_kb : int;
  tage : Tage.params;
  loop_log : int;
  sc_log : int;
}

let for_budget ~kb =
  if kb < 8 || kb > 8192 || not (Whisper_util.Bitops.is_power_of_two kb) then
    invalid_arg "Sizes.for_budget";
  let steps = Whisper_util.Bitops.log2_ceil (kb / 8) in
  (* 8 KB -> 2^8-entry tagged tables; each doubling of budget doubles the
     tagged tables and grows tags/bimodal, as in the CBP submissions. *)
  let log_entries = 8 + steps in
  let tag_bits = min 14 (10 + ((steps + 1) / 2)) in
  let tage =
    {
      Tage.n_tables = 12;
      log_entries;
      tag_bits;
      min_len = 8;
      max_len = 1024;
      log_bimodal = min 18 (13 + steps);
      u_reset_period = 1 lsl 18;
    }
  in
  {
    budget_kb = kb;
    tage;
    loop_log = min 8 (4 + steps);
    sc_log = min 15 (9 + steps);
  }

let standard = for_budget ~kb:64

let total_bits t =
  let e = 1 lsl t.tage.Tage.log_entries in
  let tage_bits = t.tage.Tage.n_tables * e * (t.tage.Tage.tag_bits + 5) in
  let bimodal_bits = 2 * (1 lsl t.tage.Tage.log_bimodal) in
  let loop_bits = (1 lsl t.loop_log) * 37 in
  let sc_bits = 6 * (1 lsl t.sc_log) * 5 in
  tage_bits + bimodal_bits + loop_bits + sc_bits
