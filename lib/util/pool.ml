type t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : (unit -> unit) Queue.t;
  capacity : int;
  n_jobs : int;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

type 'a state = Pending | Done of ('a, exn) result

type 'a future = {
  fut_lock : Mutex.t;
  fut_done : Condition.t;
  mutable state : 'a state;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())
let jobs t = t.n_jobs

(* Worker identity, per domain: nested fan-out from inside a pool task
   must not wait on its own pool (with every worker waiting there would
   be nobody left to run the nested tasks), so the parallel entry points
   below degrade to inline execution when the caller is a worker. *)
let worker_flag : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let am_worker () = !(Domain.DLS.get worker_flag)

(* Workers drain the queue until it is empty {e and} the pool is closing,
   so a shutdown never drops queued tasks. *)
let rec worker t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.not_empty t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock
  else begin
    let task = Queue.pop t.queue in
    Condition.signal t.not_full;
    Mutex.unlock t.lock;
    task ();
    worker t
  end

let create ?queue_capacity ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let capacity =
    match queue_capacity with
    | None -> 4 * jobs
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Pool.create: queue_capacity must be >= 1"
  in
  let t =
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      capacity;
      n_jobs = jobs;
      closing = false;
      workers = [];
    }
  in
  t.workers <-
    List.init jobs (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.get worker_flag := true;
            worker t));
  t

let submit t f =
  let fut =
    { fut_lock = Mutex.create (); fut_done = Condition.create (); state = Pending }
  in
  let task () =
    let r = try Ok (f ()) with e -> Error e in
    Mutex.lock fut.fut_lock;
    fut.state <- Done r;
    Condition.broadcast fut.fut_done;
    Mutex.unlock fut.fut_lock
  in
  Mutex.lock t.lock;
  while Queue.length t.queue >= t.capacity && not t.closing do
    Condition.wait t.not_full t.lock
  done;
  if t.closing then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock;
  fut

let await fut =
  Mutex.lock fut.fut_lock;
  let rec wait () =
    match fut.state with
    | Done r -> r
    | Pending ->
        Condition.wait fut.fut_done fut.fut_lock;
        wait ()
  in
  let r = wait () in
  Mutex.unlock fut.fut_lock;
  r

(* [Condition] has no timed wait, so a bounded await polls the future's
   state on a short period.  The poll interval (1 ms) is negligible
   against both simulation run times and any sane timeout. *)
let await_timeout fut ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec poll () =
    let state = Mutex.protect fut.fut_lock (fun () -> fut.state) in
    match state with
    | Done r -> Some r
    | Pending ->
        if Unix.gettimeofday () >= deadline then None
        else begin
          Unix.sleepf 0.001;
          poll ()
        end
  in
  poll ()

let shutdown t =
  Mutex.lock t.lock;
  t.closing <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join workers

type policy = { attempts : int; timeout_s : float option; backoff_s : float }

let default_policy = { attempts = 1; timeout_s = None; backoff_s = 0.05 }

let timeout_error ~seconds =
  Whisper_error.Error
    (Whisper_error.make Whisper_error.Task (Whisper_error.Timeout seconds))

let map_retry ?jobs ~policy f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let attempts = max 1 policy.attempts in
    let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
    (* with a timeout policy, abandoned attempts park on their workers
       until they finish on their own — keep the full requested width so
       a retry is not starved behind the very hang it recovers from *)
    let jobs = if policy.timeout_s = None then min jobs n else jobs in
    let pool = create ~jobs () in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () ->
        let futures =
          Array.map (fun x -> submit pool (fun () -> f ~attempt:1 x)) xs
        in
        let await_one fut =
          match policy.timeout_s with
          | None -> Some (await fut)
          | Some seconds -> await_timeout fut ~seconds
        in
        Array.mapi
          (fun i fut0 ->
            let rec attempt k fut =
              let outcome =
                match await_one fut with
                | Some r -> r
                | None ->
                    (* the timed-out task keeps running on its worker
                       (domains cannot be cancelled); the slot is retried
                       or given up independently of it *)
                    Error (timeout_error ~seconds:(Option.get policy.timeout_s))
              in
              match outcome with
              | Ok _ as ok -> ok
              | Error _ as e when k >= attempts -> e
              | Error _ ->
                  if policy.backoff_s > 0.0 then
                    Unix.sleepf (policy.backoff_s *. float_of_int (1 lsl (k - 1)));
                  attempt (k + 1)
                    (submit pool (fun () -> f ~attempt:(k + 1) xs.(i)))
            in
            attempt 1 fut0)
          futures)
  end

(* Balanced half-open index ranges covering [0, n).  Which elements land
   in a slice depends only on (n, chunks) — never on how many workers end
   up running them — so slice-parallel results can be merged back in
   input order deterministically. *)
let slices ~n ~chunks =
  if n < 0 then invalid_arg "Pool.slices";
  if n = 0 then [||]
  else begin
    let chunks = max 1 (min chunks n) in
    Array.init chunks (fun c -> (c * n / chunks, (c + 1) * n / chunks))
  end

let map ?jobs f xs =
  let n = Array.length xs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs = 1 || n <= 1 then
    Array.map (fun x -> try Ok (f x) with e -> Error e) xs
  else begin
    let pool = create ~jobs:(min jobs n) () in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () ->
        let futures = Array.map (fun x -> submit pool (fun () -> f x)) xs in
        Array.map await futures)
  end

let map_pool t f xs =
  if Array.length xs <= 1 || am_worker () then
    Array.map (fun x -> try Ok (f x) with e -> Error e) xs
  else begin
    let futures = Array.map (fun x -> submit t (fun () -> f x)) xs in
    Array.map await futures
  end

let fanout t ~width f =
  (* [width - 1] pool copies plus one inline in the calling domain: the
     caller would otherwise idle in [await] while holding a core, which
     is exactly the handoff latency this entry point exists to avoid. *)
  let width = max 1 (min width (t.n_jobs + 1)) in
  if width = 1 || am_worker () then f ()
  else begin
    let futures = List.init (width - 1) (fun _ -> submit t f) in
    let inline = try Ok (f ()) with e -> Error e in
    let outcomes = inline :: List.map await futures in
    List.iter (function Ok () -> () | Error e -> raise e) outcomes
  end

(* The process-wide persistent pool.  Grown (never shrunk) to the widest
   request seen; a superseded narrower pool is abandoned rather than
   joined — its idle workers cost nothing, while joining here could
   block behind a straggler task still running on it. *)
let shared_lock = Mutex.create ()
let shared_pool : t option ref = ref None

let shared ~jobs =
  let jobs = max 1 jobs in
  Mutex.protect shared_lock (fun () ->
      match !shared_pool with
      | Some p when p.n_jobs >= jobs -> p
      | _ ->
          let p = create ~jobs () in
          shared_pool := Some p;
          p)
