(** Uniform interface over all branch direction predictors in the study.

    The simulation protocol is strict: for every dynamic branch the runner
    calls [predict ~pc] first and then exactly one of

    - [train ~pc ~taken] — full update (counters, allocation, history), or
    - [spectate ~pc ~taken] — history-only update.

    [spectate] models Whisper's run-time rule that hinted branches do not
    allocate or train predictor state, freeing capacity for the remaining
    branches (paper §IV, "Run-time hint usage"), while the global history
    must still advance with the branch's outcome. *)

type t = {
  name : string;
  predict : pc:int -> bool;
  train : pc:int -> taken:bool -> unit;
      (** must follow a [predict] call for the same branch *)
  spectate : pc:int -> taken:bool -> unit;
  storage_bits : int;  (** approximate hardware budget of the predictor *)
  is_oracle : bool;
      (** oracle predictors are always counted correct by runners *)
}

val always_taken : unit -> t
(** Static predictor, the weakest baseline. *)

val ideal : unit -> t
(** The paper's ideal direction predictor (Fig. 1): every conditional
    branch direction is predicted correctly. *)
