(** Deterministic fault injection for chaos-testing the ingestion and
    execution pipeline.

    Every decision is a pure function of [(seed, key)] — never of call
    order, wall clock or domain id — so a chaos run is reproducible and
    identical across job counts ([-j1] == [-j4]).  Six operators model
    the faults a profile-collection fleet actually ships:

    - {b byte operators} (corrupt a [bytes] artifact): truncate,
      bit-flip, byte-drop, version-skew;
    - {b task operators} (perturb a running work item): delay (short,
      recoverable sleep) and hang (a wedged worker — sleeps long enough
      to trip the pool's per-task timeout on the first attempt, then
      behaves on retry).

    Byte-style faults applied to a task are {e persistent}: every
    attempt raises a typed {!Whisper_error.t} with stage [Injected],
    modelling a corrupt artifact that stays corrupt on re-read.  Timing
    faults are {e transient}: a retry succeeds.  This split is what the
    runner's retry/quarantine policy is exercised against. *)

type op = Truncate | Bit_flip | Byte_drop | Version_skew | Delay | Hang

type decision = Pass | Inject of op

type t

val create :
  ?seed:int -> ?hang_s:float -> ?delay_s:float -> rate:float -> unit -> t
(** [create ~rate ()] injects a fault with probability [rate] per key.
    Defaults: [seed = 42], [hang_s = 2.0] (sleep of an injected hang;
    set it above the pool's per-task timeout so the timeout fires
    first), [delay_s = 0.02]. *)

val seed : t -> int
val rate : t -> float

val injected : t -> int
(** Faults acted on so far (cross-domain safe). *)

val op_name : op -> string

val decision : t -> key:string -> decision
(** The deterministic verdict for [key]. *)

val corrupt : t -> key:string -> bytes -> bytes
(** Apply the byte operator chosen for [key], if any ([Delay]/[Hang]
    leave bytes untouched).  The result is deliberately malformed input
    for a decoder — never a crash vector. *)

val wrap : t -> key:string -> attempt:int -> (unit -> 'a) -> 'a
(** Run a task under the fault chosen for [key]: byte-style faults
    raise a typed [Injected] error on every attempt; [Delay] sleeps
    then runs; [Hang] sleeps [hang_s] and then fails on [attempt = 1]
    (so the first attempt's outcome does not depend on whether the
    pool's timeout won the race against the sleep), and runs normally
    on retries. *)
