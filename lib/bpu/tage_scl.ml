type t = {
  sizes : Sizes.t;
  tage : Tage.t;
  sc : Stat_corrector.t;
  loop : Loop_pred.t;
  mutable ctx_pc : int;
  mutable ctx_pred : bool;
  mutable ctx_tage_pred : bool;
  mutable ctx_loop_used : bool;
}

let create sizes =
  {
    sizes;
    tage = Tage.create sizes.Sizes.tage;
    sc = Stat_corrector.create ~log_entries:sizes.Sizes.sc_log;
    loop = Loop_pred.create ~log_entries:sizes.Sizes.loop_log;
    ctx_pc = 0;
    ctx_pred = false;
    ctx_tage_pred = false;
    ctx_loop_used = false;
  }

let standard () = create Sizes.standard

let storage_bits t = Sizes.total_bits t.sizes

let predict t ~pc =
  let tage_pred = Tage.predict t.tage ~pc in
  let sc_pred =
    Stat_corrector.refine_conf t.sc ~conf:(Tage.confidence t.tage) ~pc
      ~tage_pred
  in
  (* allocation-free on the replay path: no option, no boxed optional *)
  let loop_code = Loop_pred.predict_code t.loop ~pc in
  let loop_used = loop_code >= 0 in
  let final = if loop_used then loop_code = 1 else sc_pred in
  t.ctx_pc <- pc;
  t.ctx_pred <- final;
  t.ctx_tage_pred <- tage_pred;
  t.ctx_loop_used <- loop_used;
  final

let train t ~pc ~taken =
  if pc <> t.ctx_pc then invalid_arg "Tage_scl.train: mismatch";
  Loop_pred.train t.loop ~pc ~taken
    ~tage_mispredicted:(t.ctx_tage_pred <> taken);
  Stat_corrector.train t.sc ~pc ~taken;
  Tage.train t.tage ~pc ~taken

let debug_reason t =
  if t.ctx_loop_used then "loop-override"
  else if t.ctx_pred <> t.ctx_tage_pred then "sc-veto"
  else "tage-wrong"

let spectate t ~pc ~taken =
  Stat_corrector.spectate t.sc ~taken;
  Tage.spectate t.tage ~pc ~taken

let predictor sizes =
  let t = create sizes in
  {
    Predictor.name = Printf.sprintf "tage-scl-%dKB" sizes.Sizes.budget_kb;
    predict = (fun ~pc -> predict t ~pc);
    train = (fun ~pc ~taken -> train t ~pc ~taken);
    spectate = (fun ~pc ~taken -> spectate t ~pc ~taken);
    storage_bits = storage_bits t;
    is_oracle = false;
  }

let exec t ~pc ~taken =
  let pred = predict t ~pc in
  train t ~pc ~taken;
  pred = taken

let compiled sizes =
  {
    Predictor.Compiled.name =
      Printf.sprintf "tage-scl-%dKB" sizes.Sizes.budget_kb;
    storage_bits = Sizes.total_bits sizes;
    fill =
      (fun ~arena ~n ~verdicts ->
        let t = create sizes in
        for i = 0 to n - 1 do
          let pc = Whisper_trace.Arena.pc arena i in
          let taken = Whisper_trace.Arena.taken arena i in
          Bytes.unsafe_set verdicts i
            (if exec t ~pc ~taken then '\001' else '\000')
        done);
  }
