type t = {
  bhrs : int array;  (* first level: per-branch history registers *)
  bhr_mask : int;
  hist_mask : int;
  pht : Bytes.t;  (* second level: 2-bit counters *)
  pht_mask : int;
  mutable ctx_idx : int;
  mutable ctx_pc : int;
}

let make_pag ~log_bhr ~hist_bits ~log_pht =
  if log_bhr < 0 || log_pht < 1 || hist_bits < 1 then invalid_arg "Twolevel";
  {
    bhrs = Array.make (1 lsl max 0 log_bhr) 0;
    bhr_mask = (1 lsl max 0 log_bhr) - 1;
    hist_mask = (1 lsl hist_bits) - 1;
    pht = Bytes.make (1 lsl log_pht) '\001';
    pht_mask = (1 lsl log_pht) - 1;
    ctx_idx = 0;
    ctx_pc = 0;
  }

let index t pc =
  let bhr = t.bhrs.((pc lsr 2) land t.bhr_mask) in
  (bhr lxor ((pc lsr 2) lsl 2)) land t.pht_mask

let predict t ~pc =
  let idx = index t pc in
  t.ctx_idx <- idx;
  t.ctx_pc <- pc;
  Char.code (Bytes.unsafe_get t.pht idx) >= 2

let train t ~pc ~taken =
  if pc <> t.ctx_pc then invalid_arg "Twolevel.train: mismatch";
  let c = Char.code (Bytes.unsafe_get t.pht t.ctx_idx) in
  Bytes.unsafe_set t.pht t.ctx_idx
    (Char.unsafe_chr (Counters.update c ~taken ~min:0 ~max:3));
  let slot = (pc lsr 2) land t.bhr_mask in
  t.bhrs.(slot) <-
    ((t.bhrs.(slot) lsl 1) lor (if taken then 1 else 0)) land t.hist_mask

let spectate t ~pc ~taken =
  let slot = (pc lsr 2) land t.bhr_mask in
  t.bhrs.(slot) <-
    ((t.bhrs.(slot) lsl 1) lor (if taken then 1 else 0)) land t.hist_mask

let wrap name t ~storage =
  {
    Predictor.name;
    predict = (fun ~pc -> predict t ~pc);
    train = (fun ~pc ~taken -> train t ~pc ~taken);
    spectate = (fun ~pc ~taken -> spectate t ~pc ~taken);
    storage_bits = storage;
    is_oracle = false;
  }

let pag ?(log_bhr = 10) ?(hist_bits = 10) ?(log_pht = 12) () =
  let t = make_pag ~log_bhr ~hist_bits ~log_pht in
  wrap "pag-2level" t
    ~storage:(((1 lsl log_bhr) * hist_bits) + (2 * (1 lsl log_pht)))

let gag ?(hist_bits = 12) ?(log_pht = 12) () =
  let t = make_pag ~log_bhr:0 ~hist_bits ~log_pht in
  wrap "gag-2level" t ~storage:(hist_bits + (2 * (1 lsl log_pht)))
