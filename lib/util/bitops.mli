(** Bit-level helpers shared by history hashing, folded-history computation
    and formula encodings. *)

val popcount : int -> int
(** Number of set bits in the (non-negative) argument. *)

val parity : int -> int
(** [parity x] is [popcount x land 1]. *)

val mask : int -> int
(** [mask n] is an [n]-bit all-ones mask, [0 <= n <= 62]. *)

val get_bit : int -> int -> int
(** [get_bit x i] is bit [i] of [x] (0 or 1). *)

val set_bit : int -> int -> int
(** [set_bit x i] sets bit [i]. *)

val fold_xor : int -> width:int -> chunk:int -> int
(** [fold_xor x ~width ~chunk] XOR-folds the low [width] bits of [x] into
    [chunk]-bit pieces (the paper's history-hashing primitive, §III-A). *)

val fold_and : int -> width:int -> chunk:int -> int
(** Like {!fold_xor} but combining chunks with logical AND. *)

val fold_or : int -> width:int -> chunk:int -> int
(** Like {!fold_xor} but combining chunks with logical OR. *)

val reverse_bits : int -> width:int -> int
(** [reverse_bits x ~width] reverses the low [width] bits of [x]. *)

val log2_ceil : int -> int
(** [log2_ceil n] is the smallest [k] with [2^k >= n]; [n >= 1]. *)

val is_power_of_two : int -> bool
(** Whether the positive argument is a power of two. *)

val to_bit_list : int -> width:int -> int list
(** Low-to-high list of the low [width] bits. *)
