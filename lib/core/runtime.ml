open Whisper_util
open Whisper_trace

(* ------------------------------------------------------------------ *)
(* Interpretive oracle                                                 *)
(* ------------------------------------------------------------------ *)

(* The seed implementation, retained verbatim as the differential
   oracle for the compiled runtime below (the same policy as the naive
   Algorithm-1 scorer and the closure replay path): per-event
   [Inject.hints_at] Hashtbl lookups, a lazily filled byte truth-table
   cache, an [Lru]-backed hint buffer, and [History.push_all] over every
   configured length.  Slow, allocating, and obviously faithful to the
   paper's per-event protocol — which is exactly what an oracle is
   for. *)
module Reference = struct
  type t = {
    base : Whisper_bpu.Predictor.t;
    plan : Inject.t;
    lru : Brhint.t Lru.t;
    hist : History.t;
    folded : History.Folded.t array;
    truths : (int, Bytes.t) Hashtbl.t;
    hash_bits : int;
    mutable b_insert : int;
    mutable b_hit : int;
    mutable b_miss : int;
    mutable n_hinted : int;
    mutable n_hinted_wrong : int;
    mutable n_base : int;
  }

  let create (cfg : Config.t) ~baseline ~plan =
    let lengths = Config.lengths cfg in
    let max_len = Array.fold_left max 1 lengths in
    {
      base = baseline;
      plan;
      lru = Lru.create ~capacity:cfg.hint_buffer_size;
      hist = History.create ~depth:(2 * max_len);
      folded =
        Array.map
          (fun len -> History.Folded.create ~len ~chunk:cfg.hash_bits)
          lengths;
      truths = Hashtbl.create 256;
      hash_bits = cfg.hash_bits;
      b_insert = 0;
      b_hit = 0;
      b_miss = 0;
      n_hinted = 0;
      n_hinted_wrong = 0;
      n_base = 0;
    }

  let truth t id =
    match Hashtbl.find_opt t.truths id with
    | Some b -> b
    | None ->
        let b =
          Whisper_formula.Tree.truth_table
            (Whisper_formula.Tree.of_id ~leaves:t.hash_bits id)
        in
        Hashtbl.add t.truths id b;
        b

  let hint_prediction t (h : Brhint.t) =
    match h.bias with
    | Brhint.Always_taken -> Some true
    | Brhint.Never_taken -> Some false
    | Brhint.Dynamic -> None
    | Brhint.Formula ->
        let hash = History.Folded.value t.folded.(h.len_idx) in
        Some (Whisper_formula.Tree.eval_tt (truth t h.formula_id) hash)

  let exec_at t ~block ~pc ~taken =
    (* 1. execute any brhints hosted in this block *)
    List.iter
      (fun (p : Inject.placement) ->
        t.b_insert <- t.b_insert + 1;
        ignore (Lru.add t.lru p.branch_pc p.hint))
      (Inject.hints_at t.plan ~block);
    (* 2. predict: hint buffer and dynamic predictor are probed in
       parallel; a hinted branch does not train or allocate in the
       baseline.  [Lru.peek], not [find]: probing is not a use (see
       Hint_buffer's semantics note). *)
    let hinted =
      match Lru.peek t.lru pc with
      | Some h ->
          t.b_hit <- t.b_hit + 1;
          hint_prediction t h
      | None ->
          t.b_miss <- t.b_miss + 1;
          None
    in
    let correct =
      match hinted with
      | Some pred ->
          t.n_hinted <- t.n_hinted + 1;
          t.base.spectate ~pc ~taken;
          let ok = pred = taken in
          if not ok then t.n_hinted_wrong <- t.n_hinted_wrong + 1;
          ok
      | None ->
          t.n_base <- t.n_base + 1;
          let pred = t.base.predict ~pc in
          t.base.train ~pc ~taken;
          t.base.is_oracle || pred = taken
    in
    (* 3. advance Whisper's folded-history mirror *)
    History.push_all t.hist t.folded taken;
    correct

  let exec t (e : Branch.event) =
    exec_at t ~block:e.Branch.block ~pc:e.pc ~taken:e.taken

  let predictor_name t = "whisper+" ^ t.base.name
  let hinted_predictions t = t.n_hinted
  let hinted_mispredictions t = t.n_hinted_wrong
  let baseline_predictions t = t.n_base
  let buffer_stats t = (t.b_insert, t.b_hit, t.b_miss)
end

(* ------------------------------------------------------------------ *)
(* Compiled runtime                                                    *)
(* ------------------------------------------------------------------ *)

(* The plan is compiled once at [create] into flat arrays; the per-event
   path then touches no Hashtbl, no list, no option and allocates
   nothing:

   - [index]/[e_pc] are the plan's CSR view ({!Inject.Packed}): the
     brhints hosted by a block are a contiguous entry range, found by
     two array reads;
   - [bank] is the dense truth-table bank: every distinct formula in the
     plan becomes one [words_per_table]-word packed table, with the
     Always/Never biases folded in as constant all-ones/all-zeros
     tables, so a hinted prediction is a single
     {!Whisper_formula.Tree.eval_packed_at} bit test.  [e_off] maps an
     entry to its table's word offset, with [-1] reserved for the
     Dynamic bias (predict-dynamically hints fall through to the
     baseline path, which no table can express);
   - [folds] holds folded-history registers for only the lengths the
     plan's formulas actually reference ([e_fold] maps entries to
     register slots), so the per-event history step updates a handful of
     registers instead of all [Config.n_lengths];
   - the hint buffer stores the entry index as its payload, so a probe
     hit returns everything the prediction needs as one non-negative
     int. *)
type t = {
  base : Whisper_bpu.Predictor.t;
  max_host : int;
  index : int array;
  e_pc : int array;
  e_off : int array;
  e_fold : int array;
  bank : int array;
  buf : Hint_buffer.t;
  hist : History.t;
  folds : History.Folded.t array;
  mutable n_hinted : int;
  mutable n_hinted_wrong : int;
  mutable n_base : int;
}

let word_ones = (1 lsl 32) - 1

let create (cfg : Config.t) ~baseline ~plan =
  let lengths = Config.lengths cfg in
  let max_len = Array.fold_left max 1 lengths in
  let hash_bits = cfg.hash_bits in
  let words_per_table = ((1 lsl hash_bits) + 31) lsr 5 in
  let packed = Inject.Packed.of_plan plan in
  let n = Inject.Packed.n_entries packed in
  let encoded = Inject.Packed.hint packed in
  let hints = Array.map Brhint.decode encoded in
  (* folded registers for only the lengths formula hints reference; a
     plan with bias-only hints still gets one register so the shared
     e_fold = 0 slot of constant-table entries stays in range *)
  let len_used = Array.make (Array.length lengths) false in
  Array.iter
    (fun (h : Brhint.t) ->
      if h.bias = Brhint.Formula then len_used.(h.len_idx) <- true)
    hints;
  if n > 0 && not (Array.exists Fun.id len_used) then len_used.(0) <- true;
  let fold_slot = Array.make (Array.length lengths) 0 in
  let used = ref [] in
  Array.iteri
    (fun i u ->
      if u then begin
        fold_slot.(i) <- List.length !used;
        used := lengths.(i) :: !used
      end)
    len_used;
  let folds =
    Array.map
      (fun len -> History.Folded.create ~len ~chunk:hash_bits)
      (Array.of_list (List.rev !used))
  in
  (* truth-table bank: one table per distinct formula id, plus shared
     constant tables for the Always/Never biases *)
  let table_key (h : Brhint.t) =
    match h.bias with
    | Brhint.Formula -> h.formula_id
    | Brhint.Always_taken -> -1
    | Brhint.Never_taken -> -2
    | Brhint.Dynamic -> min_int
  in
  let offsets = Hashtbl.create 64 in
  let n_tables = ref 0 in
  Array.iter
    (fun h ->
      let key = table_key h in
      if key > min_int && not (Hashtbl.mem offsets key) then begin
        Hashtbl.add offsets key (!n_tables * words_per_table);
        incr n_tables
      end)
    hints;
  let bank = Array.make (max 1 (!n_tables * words_per_table)) 0 in
  Hashtbl.iter
    (fun key off ->
      match key with
      | -1 -> Array.fill bank off words_per_table word_ones
      | -2 -> ()
      | id ->
          Array.blit
            (Whisper_formula.Tree.packed_truth_table
               (Whisper_formula.Tree.of_id ~leaves:hash_bits id))
            0 bank off words_per_table)
    offsets;
  let e_off =
    Array.map
      (fun h ->
        let key = table_key h in
        if key = min_int then -1 else Hashtbl.find offsets key)
      hints
  in
  let e_fold =
    Array.map
      (fun (h : Brhint.t) ->
        if h.bias = Brhint.Formula then fold_slot.(h.len_idx) else 0)
      hints
  in
  {
    base = baseline;
    max_host = Inject.Packed.max_host packed;
    index = Inject.Packed.index packed;
    e_pc = Inject.Packed.branch_pc packed;
    e_off;
    e_fold;
    bank;
    buf = Hint_buffer.create ~size:cfg.hint_buffer_size;
    hist = History.create ~depth:(2 * max_len);
    folds;
    n_hinted = 0;
    n_hinted_wrong = 0;
    n_base = 0;
  }

let baseline_predict t ~pc ~taken =
  t.n_base <- t.n_base + 1;
  let pred = t.base.Whisper_bpu.Predictor.predict ~pc in
  t.base.train ~pc ~taken;
  t.base.is_oracle || pred = taken

let exec_at t ~block ~pc ~taken =
  (* 1. execute any brhints hosted in this block: a contiguous CSR entry
     range, each deposited into the hint buffer as its entry index *)
  if block <= t.max_host then begin
    let lo = Array.unsafe_get t.index block in
    let hi = Array.unsafe_get t.index (block + 1) in
    for e = lo to hi - 1 do
      Hint_buffer.insert t.buf ~branch_pc:(Array.unsafe_get t.e_pc e) e
    done
  end;
  (* 2. predict: a probe hit is the entry index; its precompiled table
     offset resolves the hint with one bit test (off = -1 marks the
     Dynamic bias, which falls through to the baseline like a miss) *)
  let e = Hint_buffer.probe t.buf ~branch_pc:pc in
  let correct =
    if e >= 0 then begin
      let off = Array.unsafe_get t.e_off e in
      if off >= 0 then begin
        t.n_hinted <- t.n_hinted + 1;
        t.base.spectate ~pc ~taken;
        let hash =
          History.Folded.value
            (Array.unsafe_get t.folds (Array.unsafe_get t.e_fold e))
        in
        let pred = Whisper_formula.Tree.eval_packed_at t.bank ~off hash in
        let ok = pred = taken in
        if not ok then t.n_hinted_wrong <- t.n_hinted_wrong + 1;
        ok
      end
      else baseline_predict t ~pc ~taken
    end
    else baseline_predict t ~pc ~taken
  in
  (* 3. advance the folded-history mirror — only the registers the plan
     reads, then the shared outcome ring *)
  let folds = t.folds in
  for j = 0 to Array.length folds - 1 do
    History.Folded.update (Array.unsafe_get folds j) ~history:t.hist
      ~newest:taken
  done;
  History.push t.hist taken;
  correct

let exec t (e : Branch.event) =
  exec_at t ~block:e.Branch.block ~pc:e.pc ~taken:e.taken

let exec_arena t ~arena i =
  exec_at t ~block:(Arena.block arena i) ~pc:(Arena.pc arena i)
    ~taken:(Arena.taken arena i)

let predictor_name t = "whisper+" ^ t.base.name
let hinted_predictions t = t.n_hinted
let hinted_mispredictions t = t.n_hinted_wrong
let baseline_predictions t = t.n_base
let buffer t = t.buf

let buffer_stats t =
  (Hint_buffer.insertions t.buf, Hint_buffer.hits t.buf, Hint_buffer.misses t.buf)
