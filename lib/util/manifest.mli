(** Content-keyed work-item manifests for sharded sweeps.

    A manifest freezes {e what} a sweep will execute: an ordered array
    of work items, each carrying the item's result key (the same string
    the result cache files it under) and an opaque spec blob the
    executing layer decodes.  The manifest's {!id} is a digest of its
    canonical encoding, so the same fleet configuration always produces
    the same id — and a completion journal (see {!Journal}) binds itself
    to that id, which is what makes resuming after [kill -9] safe: a
    journal can never be replayed against a different item set.

    Files follow the persistent caches' discipline: magic tag, varint
    format version, count-guarded decoding through {!Binio} (every
    failure a typed {!Whisper_error.t} with stage [Manifest]), and
    tmp+rename stores so readers never observe a torn manifest. *)

type item = { key : string; spec : string }
(** [key] is the item's stable result key; [spec] is an opaque,
    layer-defined description sufficient to re-execute the item. *)

type t = { meta : (string * string) list; items : item array }
(** [meta] records the sweep-wide parameters (event count, baseline KB,
    sampling seed…) as ordered name/value pairs — part of the content
    key, so changing any of them changes {!id}. *)

val format_version : int

val make : meta:(string * string) list -> item array -> t

val id : t -> string
(** Hex digest of the canonical encoding — the manifest's content key. *)

val encode : t -> bytes

val decode : bytes -> (t, Whisper_error.t) result
(** Total: truncation, bad magic, version skew and oversized counts all
    come back as typed [Error]s (stage [Manifest]). *)

val save : t -> path:string -> unit
(** Atomic store (tmp + rename).  Creates parent directories.
    @raise Sys_error when the destination is not writable. *)

val load : path:string -> (t, Whisper_error.t) result
(** [Error] with kind [Malformed] when the file is missing, otherwise
    {!decode} of its contents. *)
