(** Crash-safe sharded sweep orchestration (the fleet-scale batch layer
    of paper §IV: thousands of (application, technique) analysis items
    farmed out across machines).

    A sweep freezes its work into a content-keyed
    {!Whisper_util.Manifest} (each item's result key + a self-contained
    spec blob), then executes the items either

    - {b in worker processes} ([`Process]): the supervisor spawns
      [jobs] copies of [worker_argv] (the CLI's [whisper worker]
      subcommand), speaks the length-prefixed {!Whisper_util.Ipc}
      protocol over pipes, monitors heartbeats, SIGKILLs hung workers,
      restarts dead ones with bounded backoff, and {e quarantines} any
      item that takes a worker down twice (poison-item detection); or
    - {b in process} ([`In_process]): a sliding window over the shared
      domain pool — also the graceful-degradation path when worker
      processes cannot be spawned at all.

    Every completion is appended to a checksummed
    {!Whisper_util.Journal} {e before} the item counts as done, so a
    [kill -9] at any instant loses at most the in-flight items:
    re-running with [resume = true] replays the journal, re-verifies
    each [Done] entry against the persistent result cache by digest,
    and executes only what is left.  The aggregate fleet report is
    rebuilt from scratch each time by pure, manifest-ordered lookups —
    byte-identical whether the sweep ran uninterrupted, was killed and
    resumed at arbitrary points, or ran at a different job count.

    Chaos knobs route through {!Whisper_util.Fault}: [faults > 0]
    deterministically crashes workers mid-item ([Worker_crash]), wedges
    them silently ([Heartbeat_stall]) and injects the usual task/byte
    faults, all pure in [(fault_seed, item key)] — so the quarantine
    set, and hence the report, is identical between process and
    in-process execution. *)

type app_ref =
  | Catalog of string  (** a {!Whisper_trace.Workloads.by_name} entry *)
  | Sampled of { seed : int; index : int }
      (** parameter-sampled fleet app ({!Whisper_trace.Workloads.sample}) *)

val fleet : seed:int -> n:int -> app_ref list
(** [Sampled] apps 0..n-1 under one sampling seed. *)

val parse_technique : string -> Runner.technique option
(** Inverse of {!Runner.technique_name} for the sweep-supported set:
    ["tage-scl"], ["ideal"], ["mtage-sc"], ["4b-rombf"], ["8b-rombf"],
    ["whisper"] (default config). *)

val default_techniques : string list
(** [["tage-scl"; "8b-rombf"; "whisper"]] — the paper's main
    comparison at fleet scale. *)

type mode = [ `Process | `In_process ]

type config = {
  apps : app_ref list;
  techniques : string list;  (** names accepted by {!parse_technique} *)
  events : int;  (** branch events per simulation *)
  kb : int;  (** baseline predictor budget *)
  state_dir : string;
      (** holds [manifest.bin], [journal.bin] and the shared result
          cache ([cache/]) that workers and resume verification use *)
  jobs : int;  (** worker processes / in-process window width *)
  mode : mode;
  worker_argv : string array;
      (** command line of one worker ([`Process] mode); defaults to
          [[| Sys.executable_name; "worker" |]] *)
  faults : float;  (** chaos rate, 0.0 = off *)
  fault_seed : int;
  heartbeat_s : float;  (** worker heartbeat period *)
  hang_timeout_s : float;
      (** silence from a busy worker before it is declared hung and
          SIGKILLed; keep well above [heartbeat_s] *)
  max_worker_restarts : int;  (** respawns per worker slot *)
  max_attempts : int;
      (** tries per item for clean (worker-survives) failures;
          worker-killing items are quarantined after 2 strikes *)
  resume : bool;
      (** replay [state_dir]'s journal and skip verified completions *)
  max_completions : int option;
      (** test hook: stop — as if [kill -9]'d — once this many
          completions have been journaled this run, skipping the
          report *)
}

val default : state_dir:string -> config
(** 24 sampled apps x {!default_techniques}, 60k events, 64 KB, one
    worker, [`Process] mode, no faults, no resume. *)

val plan : config -> Whisper_util.Manifest.t
(** The manifest [run] will execute: one item per (app, technique) in
    order, keys from {!Runner.run_key}.  Pure in the config. *)

type outcome = {
  report : Report.t option;  (** [None] when interrupted *)
  manifest_id : string;
  total : int;  (** manifest items *)
  completed : int;  (** items newly journaled [Done] this run *)
  resumed : int;  (** journal entries verified and skipped *)
  quarantined : int;  (** poison / exhausted items, cumulative *)
  worker_crashes : int;  (** worker processes that died mid-run *)
  worker_hangs : int;  (** workers SIGKILLed by hang detection *)
  worker_restarts : int;  (** respawns after a death *)
  fellback : bool;  (** [`Process] degraded to in-process execution *)
  journal_recovered : bool;  (** resume found a usable journal *)
  journal_dropped_bytes : int;  (** torn tail truncated on recovery *)
  interrupted : bool;  (** stopped early by [max_completions] *)
}

val run : config -> outcome
(** Execute (or resume) the sweep.  The report, its CSV rendering and
    the quarantine notes are deterministic functions of the config —
    independent of mode, job count, kills and resumes.  Crash/resume
    accounting goes to telemetry ([sweep.*] counters) and the outcome,
    never into the report. *)

val worker_main : unit -> 'a
(** The [whisper worker] entry point: speak {!Whisper_util.Ipc} on
    stdin/stdout until [Shutdown] or EOF, then exit.  Never returns. *)
