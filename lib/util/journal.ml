let format_version = 1
let magic_tag = "WJNL"
let record_marker = 0xA7
let checksum_len = 8

(* A record payload is two length-prefixed strings plus a status byte;
   anything beyond a few MB is certainly corruption, and bounding it
   keeps a bit-flipped length from driving a giant allocation. *)
let max_payload = 1 lsl 20

type status = Done | Quarantined

type entry = { key : string; status : status; detail : string }

type t = { jpath : string; mutable fd : Unix.file_descr option }

type recovery = {
  entries : entry list;
  dropped_bytes : int;
  corrupt_tail : bool;
}

let entry_equal a b = a = b

let checksum payload =
  String.sub (Digest.bytes payload) 0 checksum_len

let status_code = function Done -> 0 | Quarantined -> 1

let status_of_code ~offset = function
  | 0 -> Done
  | 1 -> Quarantined
  | c ->
      Whisper_error.raise_error ~offset Whisper_error.Journal
        (Whisper_error.Out_of_range (Printf.sprintf "record status %d" c))

let encode_header ~manifest_id =
  let w = Binio.Writer.create ~capacity:64 () in
  Binio.Writer.magic w magic_tag;
  Binio.Writer.varint w format_version;
  Binio.Writer.string w manifest_id;
  Binio.Writer.contents w

let encode_payload e =
  let w = Binio.Writer.create ~capacity:128 () in
  Binio.Writer.varint w (status_code e.status);
  Binio.Writer.string w e.key;
  Binio.Writer.string w e.detail;
  Binio.Writer.contents w

let encode_entry e =
  let payload = encode_payload e in
  let w = Binio.Writer.create ~capacity:(Bytes.length payload + 16) () in
  Binio.Writer.byte w record_marker;
  Binio.Writer.varint w (Bytes.length payload);
  let out = Buffer.create (Bytes.length payload + 16) in
  Buffer.add_bytes out (Binio.Writer.contents w);
  Buffer.add_bytes out payload;
  Buffer.add_string out (checksum payload);
  Buffer.to_bytes out

(* Decode the header; raises typed errors (the caller refuses to resume
   against a journal it cannot trust). *)
let decode_header_exn ~manifest_id r =
  Binio.Reader.magic r magic_tag;
  let voff = Binio.Reader.pos r in
  let v = Binio.Reader.varint r in
  if v <> format_version then
    Whisper_error.raise_error ~offset:voff Whisper_error.Journal
      (Whisper_error.Version_mismatch { got = v; expected = format_version });
  let moff = Binio.Reader.pos r in
  let mid = Binio.Reader.string r in
  if mid <> manifest_id then
    Whisper_error.raise_error ~offset:moff ~context:mid Whisper_error.Journal
      Whisper_error.Key_mismatch

(* One record at the reader's position.  Any defect — bad marker, a
   varint that overflows, a length past the remaining input, a checksum
   mismatch, a payload that does not decode exactly — raises, and the
   caller treats everything from the record's start as the torn tail. *)
let decode_record_exn r =
  let moff = Binio.Reader.pos r in
  let marker = Binio.Reader.byte r in
  if marker <> record_marker then
    Whisper_error.raise_error ~offset:moff Whisper_error.Journal
      (Whisper_error.Malformed
         (Printf.sprintf "bad record marker 0x%02x" marker));
  let loff = Binio.Reader.pos r in
  let len = Binio.Reader.varint r in
  if len > max_payload then
    Whisper_error.raise_error ~offset:loff Whisper_error.Journal
      (Whisper_error.Count_overflow
         { count = len; remaining = Binio.Reader.remaining r });
  if len + checksum_len > Binio.Reader.remaining r then
    Whisper_error.raise_error ~offset:loff Whisper_error.Journal
      Whisper_error.Truncated;
  let poff = Binio.Reader.pos r in
  let payload = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set payload i (Char.chr (Binio.Reader.byte r))
  done;
  let sum = Bytes.create checksum_len in
  for i = 0 to checksum_len - 1 do
    Bytes.set sum i (Char.chr (Binio.Reader.byte r))
  done;
  if Bytes.to_string sum <> checksum payload then
    Whisper_error.raise_error ~offset:poff Whisper_error.Journal
      (Whisper_error.Malformed "record checksum mismatch");
  let pr = Binio.Reader.create payload in
  let status = status_of_code ~offset:poff (Binio.Reader.varint pr) in
  let key = Binio.Reader.string pr in
  let detail = Binio.Reader.string pr in
  if not (Binio.Reader.eof pr) then
    Whisper_error.raise_error ~offset:(poff + Binio.Reader.pos pr)
      Whisper_error.Journal Whisper_error.Trailing_bytes;
  { key; status; detail }

let decode_all ~manifest_id b =
  let total = Bytes.length b in
  match
    Whisper_error.protect Whisper_error.Journal (fun () ->
        let r = Binio.Reader.create b in
        decode_header_exn ~manifest_id r;
        r)
  with
  | Error e -> Error e
  | Ok r ->
      let entries = ref [] in
      let good_end = ref (Binio.Reader.pos r) in
      (try
         while not (Binio.Reader.eof r) do
           let e = decode_record_exn r in
           entries := e :: !entries;
           good_end := Binio.Reader.pos r
         done
       with _ -> ());
      let dropped = total - !good_end in
      Ok
        {
          entries = List.rev !entries;
          dropped_bytes = dropped;
          corrupt_tail = dropped > 0;
        }

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_all fd b =
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let open_append path = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644

let create ~path ~manifest_id =
  mkdir_p (Filename.dirname path);
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_all fd (encode_header ~manifest_id);
  { jpath = path; fd = Some fd }

let open_existing ~path ~manifest_id =
  if not (Sys.file_exists path) then
    Error
      (Whisper_error.make ~context:path Whisper_error.Journal
         (Whisper_error.Malformed "no such journal"))
  else
    let b = Binio.of_file path in
    match decode_all ~manifest_id b with
    | Error e -> Error e
    | Ok recovery ->
        if recovery.corrupt_tail then begin
          (* truncate the torn suffix atomically, caches-style: rewrite
             the good prefix next to the file and rename over it *)
          let keep = Bytes.length b - recovery.dropped_bytes in
          let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
          Binio.to_file tmp (Bytes.sub b 0 keep);
          Sys.rename tmp path
        end;
        Ok ({ jpath = path; fd = Some (open_append path) }, recovery)

let append t e =
  match t.fd with
  | None -> invalid_arg "Journal.append: closed"
  | Some fd ->
      write_all fd (encode_entry e);
      (* push the record to the OS so a SIGKILL'd supervisor loses at
         most the record being written, never a buffered batch *)
      (try Unix.fsync fd with Unix.Unix_error _ -> ())

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let path t = t.jpath
