open Whisper_util

(* Packed structure-of-arrays replay buffer: the (app, input) event stream
   is decoded exactly once into flat int arrays plus a taken bitset, then
   replayed by index with zero per-event allocation.  The record is
   immutable after [build]/[read], so pool domains share one arena
   read-only without copying. *)

type t = {
  n : int;
  block : int array;
  pc : int array;
  instrs : int array;
  next_addr : int array;
  taken : Bytes.t;  (* bit i of byte i/8 *)
}

let length t = t.n
let block t i = Array.unsafe_get t.block i
let pc t i = Array.unsafe_get t.pc i
let instrs t i = Array.unsafe_get t.instrs i
let next_addr t i = Array.unsafe_get t.next_addr i

let taken t i =
  Char.code (Bytes.unsafe_get t.taken (i lsr 3)) land (1 lsl (i land 7)) <> 0

let alloc n =
  {
    n;
    block = Array.make (max 1 n) 0;
    pc = Array.make (max 1 n) 0;
    instrs = Array.make (max 1 n) 0;
    next_addr = Array.make (max 1 n) 0;
    taken = Bytes.make ((n + 7) / 8) '\000';
  }

let build ~events model =
  if events < 0 then invalid_arg "Arena.build: negative events";
  let t = alloc events in
  App_model.fill model ~n:events ~block:t.block ~pc:t.pc ~instrs:t.instrs
    ~next_addr:t.next_addr ~taken:t.taken;
  t

let event t i =
  if i < 0 || i >= t.n then invalid_arg "Arena.event: index out of bounds";
  {
    Branch.block = t.block.(i);
    pc = t.pc.(i);
    taken = taken t i;
    instrs = t.instrs.(i);
    next_addr = t.next_addr.(i);
  }

let source t =
  let i = ref 0 in
  fun () ->
    if !i >= t.n then failwith "Arena.source: replay exhausted";
    let e = event t !i in
    incr i;
    e

(* Codec: versioned, bounds-checked, total on corrupt input (every read
   goes through Binio.Reader and surfaces as a typed Arena_cache error).
   Counts are validated against the remaining input before any array is
   allocated, so a corrupt length can never drive a giant allocation. *)

let magic_tag = "WTAR"
let format_version = 1

let write w t =
  Binio.Writer.magic w magic_tag;
  Binio.Writer.varint w format_version;
  Binio.Writer.varint w t.n;
  for i = 0 to t.n - 1 do
    Binio.Writer.varint w t.block.(i)
  done;
  for i = 0 to t.n - 1 do
    Binio.Writer.varint w t.pc.(i)
  done;
  for i = 0 to t.n - 1 do
    Binio.Writer.varint w t.instrs.(i)
  done;
  for i = 0 to t.n - 1 do
    Binio.Writer.varint w t.next_addr.(i)
  done;
  Binio.Writer.bytes w (Bytes.sub t.taken 0 ((t.n + 7) / 8))

let read r =
  Binio.Reader.magic r magic_tag;
  let voff = Binio.Reader.pos r in
  let v = Binio.Reader.varint r in
  if v <> format_version then
    Whisper_error.raise_error ~offset:voff Whisper_error.Arena_cache
      (Whisper_error.Version_mismatch { got = v; expected = format_version });
  let n = Binio.Reader.count r in
  let t = alloc n in
  let fill_field a =
    for i = 0 to n - 1 do
      a.(i) <- Binio.Reader.varint r
    done
  in
  fill_field t.block;
  fill_field t.pc;
  fill_field t.instrs;
  fill_field t.next_addr;
  let boff = Binio.Reader.pos r in
  let bits = Binio.Reader.bytes r in
  if Bytes.length bits <> (n + 7) / 8 then
    Whisper_error.raise_error ~offset:boff Whisper_error.Arena_cache
      (Whisper_error.Out_of_range "taken bitset length");
  Bytes.blit bits 0 t.taken 0 (Bytes.length bits);
  t

let to_bytes t =
  let w = Binio.Writer.create ~capacity:(16 + (5 * t.n)) () in
  write w t;
  Binio.Writer.contents w

let of_bytes b =
  Whisper_error.protect Whisper_error.Arena_cache (fun () ->
      let r = Binio.Reader.create b in
      let t = read r in
      if not (Binio.Reader.eof r) then
        Whisper_error.raise_error ~offset:(Binio.Reader.pos r)
          Whisper_error.Arena_cache Whisper_error.Trailing_bytes;
      t)

let digest t = Digest.to_hex (Digest.bytes (to_bytes t))

let equal a b =
  a.n = b.n && a.block = b.block && a.pc = b.pc && a.instrs = b.instrs
  && a.next_addr = b.next_addr
  && Bytes.sub a.taken 0 ((a.n + 7) / 8) = Bytes.sub b.taken 0 ((b.n + 7) / 8)
