(* Tests for whisper_bpu: counters, bimodal, gshare, TAGE, the loop
   predictor, statistical corrector, TAGE-SC-L composition, MTAGE and the
   perceptron baseline. *)

open Whisper_bpu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Accuracy of a predictor over a generated (pc, taken) stream, measured
   on the second half (after warm-up). *)
let accuracy (p : Predictor.t) gen n =
  let correct = ref 0 and measured = ref 0 in
  for i = 1 to n do
    let pc, taken = gen i in
    let pred = p.Predictor.predict ~pc in
    if i > n / 2 then begin
      incr measured;
      if pred = taken || p.is_oracle then incr correct
    end;
    p.train ~pc ~taken
  done;
  float_of_int !correct /. float_of_int !measured

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  check_int "inc saturates" 3 (Counters.inc 3 ~max:3);
  check_int "inc" 2 (Counters.inc 1 ~max:3);
  check_int "dec saturates" 0 (Counters.dec 0 ~min:0);
  check_int "dec" 1 (Counters.dec 2 ~min:0);
  check_int "update up" 3 (Counters.update 2 ~taken:true ~min:0 ~max:3);
  check_int "update down" 1 (Counters.update 2 ~taken:false ~min:0 ~max:3);
  check_bool "taken_of" true (Counters.taken_of 2 ~mid:2);
  check_bool "not taken_of" false (Counters.taken_of 1 ~mid:2)

(* ------------------------------------------------------------------ *)
(* Bimodal                                                            *)
(* ------------------------------------------------------------------ *)

let test_bimodal_learns_constant () =
  let p = Bimodal.make ~log_entries:10 in
  let acc = accuracy p (fun _ -> (0x1000, true)) 100 in
  check_bool "learns always-taken" true (acc = 1.0)

let test_bimodal_tracks_bias () =
  let p = Bimodal.make ~log_entries:10 in
  (* 3-of-4 taken pattern: majority prediction is right 75% *)
  let acc = accuracy p (fun i -> (0x1000, i mod 4 <> 0)) 400 in
  check_bool "predicts majority" true (acc >= 0.70)

let test_bimodal_per_pc () =
  let p = Bimodal.make ~log_entries:10 in
  let gen i = if i mod 2 = 0 then (0x1000, true) else (0x2004, false) in
  let acc = accuracy p gen 200 in
  check_bool "separates PCs" true (acc = 1.0)

let test_bimodal_storage () =
  let p = Bimodal.make ~log_entries:10 in
  check_int "2 bits per entry" 2048 p.Predictor.storage_bits

(* ------------------------------------------------------------------ *)
(* Gshare                                                             *)
(* ------------------------------------------------------------------ *)

let test_gshare_learns_alternating () =
  (* alternating outcome at one PC: bimodal oscillates, gshare nails it *)
  let g = Gshare.make ~log_entries:12 ~hist_bits:8 in
  let acc = accuracy g (fun i -> (0x1000, i mod 2 = 0)) 2000 in
  check_bool "gshare learns alternation" true (acc > 0.95);
  let b = Bimodal.make ~log_entries:12 in
  let acc_b = accuracy b (fun i -> (0x1000, i mod 2 = 0)) 2000 in
  check_bool "bimodal cannot" true (acc_b < 0.7)

let test_gshare_invalid () =
  Alcotest.check_raises "bad hist" (Invalid_argument "Gshare.make") (fun () ->
      ignore (Gshare.make ~log_entries:10 ~hist_bits:0))

(* ------------------------------------------------------------------ *)
(* Tage                                                               *)
(* ------------------------------------------------------------------ *)

let small_tage () =
  Tage.create
    {
      Tage.n_tables = 6;
      log_entries = 9;
      tag_bits = 10;
      min_len = 4;
      max_len = 64;
      log_bimodal = 12;
      u_reset_period = 1 lsl 18;
    }

let test_tage_history_lengths () =
  let t = small_tage () in
  let ls = Tage.history_lengths t in
  check_int "6 tables" 6 (Array.length ls);
  check_int "min" 4 ls.(0);
  check_int "max" 64 ls.(5);
  for i = 1 to 5 do
    check_bool "increasing" true (ls.(i) > ls.(i - 1))
  done

let test_tage_contract () =
  let t = small_tage () in
  ignore (Tage.predict t ~pc:0x4000);
  Alcotest.check_raises "train pc mismatch"
    (Invalid_argument "Tage.train: predict/train mismatch") (fun () ->
      Tage.train t ~pc:0x8888 ~taken:true)

let test_tage_learns_periodic () =
  (* outcome depends on position in a period-5 pattern -> needs history *)
  let pattern = [| true; true; false; true; false |] in
  let p = Tage.predictor (Tage.default_params) in
  let acc = accuracy p (fun i -> (0x4000, pattern.(i mod 5))) 4000 in
  check_bool "tage learns periodic pattern" true (acc > 0.95)

let test_tage_learns_correlation () =
  (* branch B's outcome equals branch A's outcome two executions earlier *)
  let state = Array.make 4 false in
  let rng = Whisper_util.Rng.create 42 in
  let gen i =
    if i mod 2 = 0 then begin
      let v = Whisper_util.Rng.bool rng in
      state.(i / 2 mod 4) <- v;
      (0xA000, v)
    end
    else (0xB000, state.((i / 2) mod 4))
  in
  let p = Tage.predictor Tage.default_params in
  let correct = ref 0 and total = ref 0 in
  for i = 0 to 7999 do
    let pc, taken = gen i in
    let pred = p.Predictor.predict ~pc in
    if i > 4000 && pc = 0xB000 then begin
      incr total;
      if pred = taken then incr correct
    end;
    p.train ~pc ~taken
  done;
  let acc = float_of_int !correct /. float_of_int !total in
  check_bool "correlated branch learned" true (acc > 0.9)

let test_tage_spectate_keeps_history_moving () =
  let t = small_tage () in
  (* spectating should not raise and should not corrupt later training *)
  for i = 1 to 100 do
    ignore (Tage.predict t ~pc:0x4000);
    if i mod 2 = 0 then Tage.spectate t ~pc:0x4000 ~taken:true
    else Tage.train t ~pc:0x4000 ~taken:true
  done;
  check_bool "alive" true (Tage.predict t ~pc:0x4000 || true)

let test_tage_storage_bits () =
  let t = small_tage () in
  (* 6 tables * 512 entries * (10 tag + 3 ctr + 2 u) + bimodal 2*4096 *)
  check_int "storage" ((6 * 512 * 15) + 8192) (Tage.storage_bits t)

(* ------------------------------------------------------------------ *)
(* Loop predictor                                                     *)
(* ------------------------------------------------------------------ *)

let test_loop_learns_period () =
  let lp = Loop_pred.create ~log_entries:6 in
  let period = 7 in
  let mis = ref 0 and total = ref 0 in
  for i = 0 to 999 do
    let taken = i mod period <> period - 1 in
    (match Loop_pred.predict lp ~pc:0x4000 with
    | Some pred ->
        if i > 500 then begin
          incr total;
          if pred <> taken then incr mis
        end
    | None -> ());
    Loop_pred.train lp ~pc:0x4000 ~taken ~tage_mispredicted:true
  done;
  check_bool "confident eventually" true (!total > 400);
  check_int "no mispredictions once learned" 0 !mis

let test_loop_no_false_confidence_on_random () =
  let lp = Loop_pred.create ~log_entries:6 in
  let rng = Whisper_util.Rng.create 3 in
  let confident = ref 0 in
  for _ = 0 to 999 do
    (match Loop_pred.predict lp ~pc:0x4000 with
    | Some _ -> incr confident
    | None -> ());
    Loop_pred.train lp ~pc:0x4000 ~taken:(Whisper_util.Rng.bool rng)
      ~tage_mispredicted:true
  done;
  check_bool "rarely confident on random" true (!confident < 100)

let test_loop_tag_isolation () =
  let lp = Loop_pred.create ~log_entries:4 in
  (* two PCs mapping to the same slot: second must not reuse first's entry *)
  let pc1 = 0x4000 and pc2 = 0x4000 + (4 lsl 4) in
  for i = 0 to 200 do
    ignore (Loop_pred.predict lp ~pc:pc1);
    Loop_pred.train lp ~pc:pc1 ~taken:(i mod 3 <> 2) ~tage_mispredicted:true
  done;
  Alcotest.(check (option bool)) "other pc sees no entry" None
    (Loop_pred.predict lp ~pc:pc2)

(* ------------------------------------------------------------------ *)
(* Statistical corrector                                              *)
(* ------------------------------------------------------------------ *)

let test_sc_neutral_initially () =
  let sc = Stat_corrector.create ~log_entries:8 in
  check_bool "returns tage pred (taken)" true
    (Stat_corrector.refine sc ~pc:0x4000 ~tage_pred:true);
  Stat_corrector.train sc ~pc:0x4000 ~taken:true;
  check_bool "returns tage pred (not-taken)" false
    (Stat_corrector.refine sc ~pc:0x4000 ~tage_pred:false)

let test_sc_vetoes_statistical_bias () =
  let sc = Stat_corrector.create ~log_entries:8 in
  (* TAGE keeps predicting not-taken on an always-taken branch *)
  let vetoed = ref false in
  for _ = 1 to 200 do
    let final = Stat_corrector.refine sc ~pc:0x4000 ~tage_pred:false in
    if final then vetoed := true;
    Stat_corrector.train sc ~pc:0x4000 ~taken:true
  done;
  check_bool "eventually vetoes" true !vetoed

let test_sc_respects_high_confidence () =
  let sc = Stat_corrector.create ~log_entries:8 in
  (* with a high-confidence TAGE prediction the gate is 4x: small evidence
     must not veto *)
  for _ = 1 to 8 do
    ignore (Stat_corrector.refine sc ~pc:0x4000 ~tage_pred:false);
    Stat_corrector.train sc ~pc:0x4000 ~taken:true
  done;
  let low = Stat_corrector.refine ~tage_conf:`Low sc ~pc:0x4000 ~tage_pred:false in
  Stat_corrector.train sc ~pc:0x4000 ~taken:true;
  let high = Stat_corrector.refine ~tage_conf:`High sc ~pc:0x4000 ~tage_pred:false in
  Stat_corrector.train sc ~pc:0x4000 ~taken:true;
  check_bool "low confidence vetoed" true low;
  check_bool "high confidence not vetoed" false high

let test_sc_train_contract () =
  let sc = Stat_corrector.create ~log_entries:8 in
  ignore (Stat_corrector.refine sc ~pc:0x4000 ~tage_pred:true);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Stat_corrector.train: mismatch") (fun () ->
      Stat_corrector.train sc ~pc:0x9999 ~taken:true)

(* ------------------------------------------------------------------ *)
(* TAGE-SC-L                                                          *)
(* ------------------------------------------------------------------ *)

let test_tage_scl_learns_long_loop () =
  (* period-40 loop: beyond comfortable TAGE pattern length, the loop
     predictor component must catch it *)
  let p = Tage_scl.predictor (Sizes.for_budget ~kb:64) in
  let period = 40 in
  let acc = accuracy p (fun i -> (0x4000, i mod period <> period - 1)) 8000 in
  check_bool "catches long loop exits" true (acc > 0.99)

let test_tage_scl_name_and_storage () =
  let p = Tage_scl.predictor Sizes.standard in
  Alcotest.(check string) "name" "tage-scl-64KB" p.Predictor.name;
  let bits = p.Predictor.storage_bits in
  let kb = bits / 8192 in
  check_bool "storage within 40% of 64KB" true (kb >= 38 && kb <= 90)

let test_sizes_scaling () =
  let s8 = Sizes.for_budget ~kb:8 and s64 = Sizes.for_budget ~kb:64 in
  let s1024 = Sizes.for_budget ~kb:1024 in
  check_bool "8 < 64" true (Sizes.total_bits s8 < Sizes.total_bits s64);
  check_bool "64 < 1024" true (Sizes.total_bits s64 < Sizes.total_bits s1024);
  check_int "standard is 64" 64 Sizes.standard.Sizes.budget_kb;
  Alcotest.check_raises "non power of two" (Invalid_argument "Sizes.for_budget")
    (fun () -> ignore (Sizes.for_budget ~kb:48))

let test_sizes_total_vs_budget () =
  List.iter
    (fun kb ->
      let s = Sizes.for_budget ~kb in
      let kbits = Sizes.total_bits s / 8192 in
      check_bool
        (Printf.sprintf "%dKB config sized within [0.4x, 1.6x]" kb)
        true
        (float_of_int kbits >= 0.4 *. float_of_int kb
        && float_of_int kbits <= 1.6 *. float_of_int kb))
    [ 8; 16; 32; 64; 128; 256; 512; 1024 ]

(* ------------------------------------------------------------------ *)
(* MTAGE / ideal                                                      *)
(* ------------------------------------------------------------------ *)

let test_mtage_memorizes () =
  (* a pattern with period 200 — far beyond finite-table capacity ease,
     trivial for the unlimited substream memorizer *)
  let p = Mtage.predictor () in
  let pat = Array.init 200 (fun i -> (i * 7 mod 13) < 6) in
  let acc = accuracy p (fun i -> (0x4000, pat.(i mod 200))) 30_000 in
  check_bool "memorizes long pattern" true (acc > 0.97)

let test_ideal () =
  let p = Predictor.ideal () in
  check_bool "oracle flag" true p.Predictor.is_oracle;
  let acc = accuracy p (fun i -> (0x4000, i mod 3 = 0)) 100 in
  check_bool "always counted correct" true (acc = 1.0)

let test_always_taken_predictor () =
  let p = Predictor.always_taken () in
  check_bool "predicts taken" true (p.Predictor.predict ~pc:0x4000);
  check_bool "not oracle" false p.Predictor.is_oracle

(* ------------------------------------------------------------------ *)
(* Two-level / tournament                                             *)
(* ------------------------------------------------------------------ *)

let test_pag_learns_local_pattern () =
  (* per-branch period-3 pattern: local history disambiguates it even when
     another branch interleaves *)
  let p = Twolevel.pag () in
  let pat = [| true; true; false |] in
  let gen i =
    if i mod 2 = 0 then (0x4000, pat.(i / 2 mod 3)) else (0x8004, i mod 4 = 0)
  in
  let correct = ref 0 and total = ref 0 in
  for i = 0 to 5999 do
    let pc, taken = gen i in
    let pred = p.Predictor.predict ~pc in
    if i > 3000 && pc = 0x4000 then begin
      incr total;
      if pred = taken then incr correct
    end;
    p.train ~pc ~taken
  done;
  check_bool "local pattern learned" true
    (float_of_int !correct /. float_of_int !total > 0.95)

let test_gag_is_global () =
  let p = Twolevel.gag () in
  let acc = accuracy p (fun i -> (0x4000, i mod 2 = 0)) 2000 in
  check_bool "alternation learned" true (acc > 0.95)

let test_twolevel_contract () =
  let p = Twolevel.pag () in
  ignore (p.Predictor.predict ~pc:0x4000);
  Alcotest.check_raises "mismatch" (Invalid_argument "Twolevel.train: mismatch")
    (fun () -> p.Predictor.train ~pc:0x9999 ~taken:true)

let test_tournament_picks_better_component () =
  (* component A = bimodal (bad on alternation), B = gshare (good): the
     tournament must converge to B's accuracy *)
  let a = Bimodal.make ~log_entries:12 in
  let b = Gshare.make ~log_entries:12 ~hist_bits:8 in
  let p = Tournament.make ~a ~b () in
  let acc = accuracy p (fun i -> (0x4000, i mod 2 = 0)) 4000 in
  check_bool "tournament tracks the better component" true (acc > 0.9)

let test_tournament_storage_sums () =
  let a = Bimodal.make ~log_entries:10 in
  let b = Gshare.make ~log_entries:10 ~hist_bits:8 in
  let p = Tournament.make ~log_chooser:10 ~a ~b () in
  check_int "storage adds up"
    (a.Predictor.storage_bits + b.Predictor.storage_bits + 2048)
    p.Predictor.storage_bits

(* ------------------------------------------------------------------ *)
(* Perceptron                                                         *)
(* ------------------------------------------------------------------ *)

let test_perceptron_learns_linear () =
  (* outcome = outcome-3-ago: linearly separable over history bits *)
  let p = Perceptron.make () in
  let hist = Array.make 8 false in
  let rng = Whisper_util.Rng.create 11 in
  let idx = ref 0 in
  let gen _ =
    let v = hist.((!idx - 3 + 8) mod 8) in
    let v = if !idx < 3 then Whisper_util.Rng.bool rng else v in
    hist.(!idx mod 8) <- v;
    incr idx;
    (0x4000, v)
  in
  let acc = accuracy p gen 4000 in
  check_bool "learns linear correlation" true (acc > 0.9)

let test_perceptron_contract () =
  let p = Perceptron.make () in
  ignore (p.Predictor.predict ~pc:0x4000);
  Alcotest.check_raises "mismatch" (Invalid_argument "Perceptron.train: mismatch")
    (fun () -> p.Predictor.train ~pc:0x9999 ~taken:true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "whisper_bpu"
    [
      ("counters", [ Alcotest.test_case "saturating" `Quick test_counters ]);
      ( "bimodal",
        Alcotest.
          [
            test_case "learns constant" `Quick test_bimodal_learns_constant;
            test_case "tracks bias" `Quick test_bimodal_tracks_bias;
            test_case "per pc" `Quick test_bimodal_per_pc;
            test_case "storage" `Quick test_bimodal_storage;
          ] );
      ( "gshare",
        Alcotest.
          [
            test_case "learns alternating" `Quick test_gshare_learns_alternating;
            test_case "invalid" `Quick test_gshare_invalid;
          ] );
      ( "tage",
        Alcotest.
          [
            test_case "history lengths" `Quick test_tage_history_lengths;
            test_case "contract" `Quick test_tage_contract;
            test_case "learns periodic" `Quick test_tage_learns_periodic;
            test_case "learns correlation" `Quick test_tage_learns_correlation;
            test_case "spectate" `Quick test_tage_spectate_keeps_history_moving;
            test_case "storage bits" `Quick test_tage_storage_bits;
          ] );
      ( "loop_pred",
        Alcotest.
          [
            test_case "learns period" `Quick test_loop_learns_period;
            test_case "no false confidence" `Quick
              test_loop_no_false_confidence_on_random;
            test_case "tag isolation" `Quick test_loop_tag_isolation;
          ] );
      ( "stat_corrector",
        Alcotest.
          [
            test_case "neutral initially" `Quick test_sc_neutral_initially;
            test_case "vetoes bias" `Quick test_sc_vetoes_statistical_bias;
            test_case "confidence gate" `Quick test_sc_respects_high_confidence;
            test_case "contract" `Quick test_sc_train_contract;
          ] );
      ( "tage_scl",
        Alcotest.
          [
            test_case "long loop" `Quick test_tage_scl_learns_long_loop;
            test_case "name/storage" `Quick test_tage_scl_name_and_storage;
            test_case "sizes scaling" `Quick test_sizes_scaling;
            test_case "sizes vs budget" `Quick test_sizes_total_vs_budget;
          ] );
      ( "mtage_ideal",
        Alcotest.
          [
            test_case "mtage memorizes" `Quick test_mtage_memorizes;
            test_case "ideal" `Quick test_ideal;
            test_case "always taken" `Quick test_always_taken_predictor;
          ] );
      ( "twolevel_tournament",
        Alcotest.
          [
            test_case "pag local pattern" `Quick test_pag_learns_local_pattern;
            test_case "gag global" `Quick test_gag_is_global;
            test_case "contract" `Quick test_twolevel_contract;
            test_case "tournament chooser" `Quick
              test_tournament_picks_better_component;
            test_case "tournament storage" `Quick test_tournament_storage_sums;
          ] );
      ( "perceptron",
        Alcotest.
          [
            test_case "learns linear" `Quick test_perceptron_learns_linear;
            test_case "contract" `Quick test_perceptron_contract;
          ] );
    ]
