(** Workload catalogue: the 12 data-center applications of the paper's
    Table I plus 10 SPEC2017-like integer benchmarks (used in Fig. 5's
    contrast between concentrated and dispersed mispredictions).

    Each configuration fixes a synthetic application's static shape
    (function/block geometry → code footprint and branch working-set
    size), its {e session} structure (request-type-like sequences of
    function invocations with deterministic repeat counts — this is what
    makes branch history locally repetitive, as in real servers), and its
    dynamic behaviour mix (which fraction of branches is biased, loopy,
    short-history, long-hashed-history, parity-like, or data-dependent).

    Parameters were calibrated so the baseline 64 KB TAGE-SC-L reproduces
    the paper's qualitative characterization (branch-MPKI range,
    capacity-dominated misses, dispersed misprediction CDF; see
    EXPERIMENTS.md). *)

type mix = {
  always : float;
  never : float;
  bias : float;
  loop : float;
  short_f : float;
  ctx : float;
      (** context-conditional (PRF over the recent raw window) branches —
          the capacity-class population profile-guided formulas cannot fix *)
  hashed : float;
  parity : float;
  random : float;
}
(** Per-branch behaviour sampling weights; need not sum to 1 (normalized). *)

type family = Datacenter | Spec

type config = {
  name : string;
  seed : int;
  family : family;
  functions : int;
  blocks_per_fn : int * int;  (** inclusive range *)
  instrs_per_block : int * int;  (** inclusive range *)
  session_types : int;
      (** number of distinct request types (function sequences) *)
  session_len : int * int;  (** functions per session *)
  repeats : int * int;
      (** deterministic per-entry invocation repeat count (hot loops) *)
  func_zipf : float;
      (** function-popularity skew used when composing sessions *)
  session_zipf : float;
      (** run-time popularity skew over session types; lower = flatter =
          larger live working set *)
  mix : mix;
  noise : float;  (** base outcome-flip probability for modelled branches *)
  hashed_len_weights : float array;
      (** 16 weights over the geometric length series for hashed-formula
          branches — shapes the paper's Fig. 6 distribution *)
  bias_range : float * float;  (** taken-probability range for [Bias] *)
  random_range : float * float;  (** probability range for [Random] *)
  loop_range : int * int;  (** loop period range *)
  parity_len : int * int;  (** parity window range *)
}

val datacenter : config array
(** The 12 applications of Table I, in the paper's plot order. *)

val spec : config array
(** 10 SPEC2017-int-like benchmarks for Fig. 5a. *)

val all : config array

val by_name : string -> config option

val sample : seed:int -> index:int -> config
(** Parameter-sampled fleet application number [index]: a smaller,
    jittered variant of datacenter template [index mod 12], named
    ["fleet-%04d-<template>"].  Pure in [(seed, index)], so sweep
    manifests record only the pair and worker processes regenerate the
    identical config.  @raise Invalid_argument on a negative index. *)

val build_cfg : config -> Cfg.t
(** Deterministically generate the static program for a configuration
    (depends only on [config.seed] and the shape parameters). *)

val lengths : int array
(** The geometric history-length series shared by the whole study
    (8, 11, …, 1024). *)
