open Whisper_util

let format_version = 1
let tag = "WHNT"

let to_bytes (t : Inject.t) =
  let w = Binio.Writer.create () in
  Binio.Writer.magic w tag;
  Binio.Writer.varint w format_version;
  Binio.Writer.varint w t.Inject.dropped;
  Binio.Writer.varint w (List.length t.Inject.placements);
  List.iter
    (fun (p : Inject.placement) ->
      Binio.Writer.varint w p.branch_block;
      Binio.Writer.varint w p.host_block;
      Binio.Writer.varint w (Brhint.encode p.hint);
      Binio.Writer.varint w p.branch_pc;
      Binio.Writer.float64 w p.cond_prob)
    t.Inject.placements;
  Binio.Writer.contents w

let of_bytes_exn data =
  let r = Binio.Reader.create data in
  Binio.Reader.magic r tag;
  let voff = Binio.Reader.pos r in
  let v = Binio.Reader.varint r in
  if v <> format_version then
    Whisper_error.raise_error ~offset:voff Whisper_error.Plan_io
      (Whisper_error.Version_mismatch { got = v; expected = format_version });
  let dropped = Binio.Reader.varint r in
  let n = Binio.Reader.count r in
  let placements =
    List.init n (fun _ ->
        let branch_block = Binio.Reader.varint r in
        let host_block = Binio.Reader.varint r in
        let hint = Brhint.decode (Binio.Reader.varint r) in
        let branch_pc = Binio.Reader.varint r in
        let cond_prob = Binio.Reader.float64 r in
        { Inject.branch_block; host_block; hint; branch_pc; cond_prob })
  in
  let by_host = Hashtbl.create (max 16 n) in
  List.iter
    (fun (p : Inject.placement) ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_host p.host_block)
      in
      Hashtbl.replace by_host p.host_block (p :: existing))
    placements;
  if not (Binio.Reader.eof r) then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r) Whisper_error.Plan_io
      Whisper_error.Trailing_bytes;
  { Inject.placements; by_host; dropped }

(* totality boundary: anything the decode path throws (including
   Invalid_argument out of Brhint.decode on a corrupt hint code) leaves
   here as a typed error *)
let of_bytes data =
  match
    Whisper_error.protect Whisper_error.Plan_io (fun () -> of_bytes_exn data)
  with
  | Ok v -> v
  | Error e -> raise (Whisper_error.Error e)

let save t ~path = Binio.to_file path (to_bytes t)
let load ~path = of_bytes (Binio.of_file path)
