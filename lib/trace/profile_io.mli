(** Binary persistence for profiles — the artifact a production fleet
    ships from its profiling hosts to the offline analysis machines
    (paper Fig. 10, the arrow between steps 1 and 2). *)

val to_bytes : Profile.t -> bytes
val of_bytes : bytes -> Profile.t
(** @raise Failure on corrupt or mismatched input. *)

val save : Profile.t -> path:string -> unit
val load : path:string -> Profile.t

val format_version : int
