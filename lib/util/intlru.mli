(** Packed bounded int→int probe table with insertion-ordered eviction.

    The run-time hint buffer's store: a fixed node pool in parallel
    [int array]s (keys, payloads, hash chains, recency links), so
    {!probe} and {!insert} are O(1) expected and never allocate — a miss
    is the negative sentinel {!miss}, not an [option].

    Eviction order is {e insertion} order, not access order: {!insert}
    of an existing key refreshes its recency, {!probe} never does.  This
    is precisely the hint-buffer semantics (entries age by when their
    [brhint] last executed, not by when the branch was predicted); see
    {!Whisper_core.Hint_buffer} for the rationale and the pinning
    tests. *)

type t

val miss : int
(** The probe-miss sentinel, [-1].  Payloads must be non-negative so the
    sentinel can never collide with a stored value. *)

val create : capacity:int -> t
(** At most [capacity] live bindings; the bucket table is sized to a
    power of two at least twice that, so chains stay short.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int
val length : t -> int

val probe : t -> int -> int
(** [probe t k] is [k]'s payload, or {!miss} ([-1]) when absent.  Does
    {b not} refresh [k]'s eviction position, and never allocates. *)

val mem : t -> int -> bool

val insert : t -> int -> int -> unit
(** [insert t k v] binds [k] to payload [v >= 0], making [k] the most
    recently inserted key.  When [k] is new and the table is full, the
    least recently {e inserted} key is evicted first.
    @raise Invalid_argument if [v < 0]. *)

val clear : t -> unit

val fold : ('b -> int -> int -> 'b) -> 'b -> t -> 'b
(** Fold over bindings from most- to least-recently inserted. *)
