(* Crash-safe sharded sweep orchestration.

   What must hold:
   - manifests are content-keyed (same config = same id, any change =
     a different id) and round-trip bit-exactly;
   - the completion journal survives torn tails: recovery returns the
     decodable prefix, truncates the garbage, and stays appendable;
   - the supervisor/worker wire protocol round-trips through the
     length-prefixed framing, including partial reads;
   - a sweep killed after an arbitrary number of journaled completions
     and resumed — possibly several times, at a different job count —
     produces a byte-identical fleet report to an uninterrupted run;
   - chaos mode's worker-killing faults end in the same deterministic
     quarantine set in process and in-process execution, and process
     mode degrades gracefully to in-process when workers cannot spawn.

   Process-mode cases need the CLI binary (`whisper worker`); they skip
   cleanly when it is not around (WHISPER_CLI_EXE overrides the default
   ../bin/whisper_cli.exe of a dune test run). *)

open Whisper_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d = Filename.concat "_test_sweep" (Printf.sprintf "case%02d" !n) in
    rm_rf d;
    d

(* ------------------------------------------------------------------ *)
(* Manifest                                                           *)
(* ------------------------------------------------------------------ *)

let mk_manifest () =
  Manifest.make
    ~meta:[ ("events", "2000"); ("kb", "64") ]
    [|
      { Manifest.key = "app-a/whisper/0/1/64/2000"; spec = "spec-a" };
      { Manifest.key = "app-b/ideal/0/1/64/2000"; spec = "" };
    |]

let test_manifest_roundtrip () =
  let m = mk_manifest () in
  (match Manifest.decode (Manifest.encode m) with
  | Ok m' ->
      check_bool "round trip" true (m = m');
      check_string "same id" (Manifest.id m) (Manifest.id m')
  | Error e -> Alcotest.failf "decode failed: %s" (Whisper_error.to_string e));
  (* any content change re-keys the manifest *)
  let meta' = Manifest.make ~meta:[ ("events", "2001"); ("kb", "64") ] m.items in
  check_bool "meta change changes id" true (Manifest.id meta' <> Manifest.id m);
  let items' =
    Manifest.make ~meta:m.meta
      [| m.items.(0); { (m.items.(1)) with Manifest.spec = "x" } |]
  in
  check_bool "item change changes id" true (Manifest.id items' <> Manifest.id m);
  (* save/load through the atomic store *)
  let dir = fresh_dir () in
  let path = Filename.concat dir "manifest.bin" in
  Manifest.save m ~path;
  (match Manifest.load ~path with
  | Ok m' -> check_string "load id" (Manifest.id m) (Manifest.id m')
  | Error e -> Alcotest.failf "load failed: %s" (Whisper_error.to_string e));
  match Manifest.load ~path:(Filename.concat dir "nope.bin") with
  | Ok _ -> Alcotest.fail "loaded a missing manifest"
  | Error e ->
      check_bool "typed missing-file error" true
        (e.Whisper_error.stage = Whisper_error.Manifest)

(* ------------------------------------------------------------------ *)
(* Journal                                                            *)
(* ------------------------------------------------------------------ *)

let e1 = { Journal.key = "k1"; status = Journal.Done; detail = "d1" }
let e2 = { Journal.key = "k2"; status = Journal.Quarantined; detail = "why" }
let e3 = { Journal.key = "k3"; status = Journal.Done; detail = "d3" }

let test_journal_recovery () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "journal.bin" in
  let j = Journal.create ~path ~manifest_id:"mid-1" in
  Journal.append j e1;
  Journal.append j e2;
  Journal.close j;
  (* clean recovery preserves entries and order *)
  (match Journal.open_existing ~path ~manifest_id:"mid-1" with
  | Error e -> Alcotest.failf "recovery failed: %s" (Whisper_error.to_string e)
  | Ok (j2, r) ->
      check_bool "clean tail" false r.Journal.corrupt_tail;
      check_int "dropped" 0 r.Journal.dropped_bytes;
      check_bool "entries" true (r.Journal.entries = [ e1; e2 ]);
      (* recovered journals stay appendable *)
      Journal.append j2 e3;
      Journal.close j2);
  (* a torn tail (kill -9 mid-append) is truncated away *)
  let size_before = (Unix.stat path).Unix.st_size in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\xa7\x09half-a-rec";
  close_out oc;
  (match Journal.open_existing ~path ~manifest_id:"mid-1" with
  | Error e -> Alcotest.failf "torn recovery failed: %s" (Whisper_error.to_string e)
  | Ok (j3, r) ->
      check_bool "torn tail flagged" true r.Journal.corrupt_tail;
      check_bool "garbage dropped" true (r.Journal.dropped_bytes > 0);
      check_bool "prefix preserved" true (r.Journal.entries = [ e1; e2; e3 ]);
      Journal.close j3;
      check_int "file truncated back" size_before (Unix.stat path).Unix.st_size);
  (* after truncation the file is clean again *)
  (match Journal.open_existing ~path ~manifest_id:"mid-1" with
  | Ok (j4, r) ->
      check_bool "second recovery clean" false r.Journal.corrupt_tail;
      Journal.close j4
  | Error e -> Alcotest.failf "reopen failed: %s" (Whisper_error.to_string e));
  (* a journal never replays against a different manifest *)
  match Journal.open_existing ~path ~manifest_id:"other" with
  | Ok _ -> Alcotest.fail "accepted a foreign journal"
  | Error e ->
      check_bool "key mismatch" true
        (e.Whisper_error.kind = Whisper_error.Key_mismatch)

(* ------------------------------------------------------------------ *)
(* IPC framing and codecs                                             *)
(* ------------------------------------------------------------------ *)

let sample_init =
  {
    Ipc.events = 2000;
    baseline_kb = 64;
    cache_dir = "/tmp/cache";
    replay = "arena";
    faults = 0.25;
    fault_seed = 7;
    heartbeat_s = 0.25;
    hang_timeout_s = 5.0;
  }

let test_ipc_roundtrip () =
  let to_worker =
    [
      Ipc.Init sample_init;
      Ipc.Item { seq = 3; attempt = 2; key = "some/key"; spec = "blob\x00\xff" };
      Ipc.Shutdown;
    ]
  in
  List.iter
    (fun m ->
      match Ipc.decode_to_worker (Ipc.encode_to_worker m) with
      | Ok m' -> check_bool "to_worker round trip" true (m = m')
      | Error e -> Alcotest.failf "to_worker: %s" (Whisper_error.to_string e))
    to_worker;
  let from_worker =
    [
      Ipc.Hello { pid = 4242 };
      Ipc.Heartbeat { seq = 17 };
      Ipc.Finished
        { seq = 17; key = "k"; outcome = Ipc.Completed { digest = "abcd" } };
      Ipc.Finished
        { seq = 18; key = "k2"; outcome = Ipc.Failed { reason = "injected" } };
    ]
  in
  List.iter
    (fun m ->
      match Ipc.decode_from_worker (Ipc.encode_from_worker m) with
      | Ok m' -> check_bool "from_worker round trip" true (m = m')
      | Error e -> Alcotest.failf "from_worker: %s" (Whisper_error.to_string e))
    from_worker

let test_ipc_partial_frames () =
  (* the supervisor-side reader must absorb arbitrary read boundaries *)
  let r_fd, w_fd = Unix.pipe () in
  let rd = Ipc.reader r_fd in
  let payload = Ipc.encode_from_worker (Ipc.Heartbeat { seq = 9 }) in
  let frame = Bytes.create (4 + Bytes.length payload) in
  Bytes.set_int32_be frame 0 (Int32.of_int (Bytes.length payload));
  Bytes.blit payload 0 frame 4 (Bytes.length payload);
  (* drip the frame in one-byte writes; a frame pops only when whole *)
  let popped = ref None in
  Bytes.iter
    (fun c ->
      assert (Unix.write w_fd (Bytes.make 1 c) 0 1 = 1);
      (match Ipc.feed rd with `Data -> () | `Eof -> Alcotest.fail "early eof");
      match Ipc.next_frame rd with
      | Some b -> popped := Some b
      | None -> ())
    frame;
  (match !popped with
  | Some b ->
      check_bool "reassembled frame decodes" true
        (Ipc.decode_from_worker b = Ok (Ipc.Heartbeat { seq = 9 }))
  | None -> Alcotest.fail "frame never completed");
  Unix.close w_fd;
  check_bool "eof after close" true (Ipc.feed rd = `Eof);
  Unix.close r_fd

(* ------------------------------------------------------------------ *)
(* Sweep runs: completion, resume determinism, chaos parity           *)
(* ------------------------------------------------------------------ *)

let base_cfg ~state_dir =
  {
    (Whisper_sim.Sweep.default ~state_dir) with
    Whisper_sim.Sweep.apps = Whisper_sim.Sweep.fleet ~seed:7 ~n:4;
    techniques = [ "tage-scl"; "ideal"; "whisper" ];
    events = 2_000;
    mode = `In_process;
    jobs = 1;
  }

let report_bytes (o : Whisper_sim.Sweep.outcome) =
  match o.Whisper_sim.Sweep.report with
  | None -> Alcotest.fail "expected a report"
  | Some r ->
      Whisper_sim.Report.to_string r ^ "\n---\n" ^ Whisper_sim.Report.to_csv r

let test_inprocess_complete_and_trivial_resume () =
  let dir = fresh_dir () in
  let cfg = base_cfg ~state_dir:dir in
  let o = Whisper_sim.Sweep.run cfg in
  check_int "total" 12 o.Whisper_sim.Sweep.total;
  check_int "completed" 12 o.completed;
  check_int "quarantined" 0 o.quarantined;
  check_bool "report" true (o.report <> None);
  (* resuming a finished sweep verifies every journal entry and
     recomputes nothing *)
  let o2 =
    Whisper_sim.Sweep.run { cfg with Whisper_sim.Sweep.resume = true }
  in
  check_int "all resumed" 12 o2.resumed;
  check_int "nothing recomputed" 0 o2.completed;
  check_bool "journal recovered" true o2.journal_recovered;
  check_string "byte-identical report" (report_bytes o) (report_bytes o2)

(* Kill after k journaled completions (the in-process stand-in for
   kill -9: the journal is flushed per item, so stopping after the k-th
   append leaves exactly the disk state a real kill would), resume at a
   different job count, and demand the clean run's exact report. *)
let test_resume_determinism_after_random_kills () =
  let chaos cfg =
    { cfg with Whisper_sim.Sweep.faults = 0.35; fault_seed = 9 }
  in
  let clean_dir = fresh_dir () in
  let clean = Whisper_sim.Sweep.run (chaos (base_cfg ~state_dir:clean_dir)) in
  let reference = report_bytes clean in
  check_bool "chaos run quarantines something" true (clean.quarantined > 0);
  (* kill points must lie strictly inside the completable range, which
     chaos shrinks below the item count *)
  let completable = clean.completed in
  check_bool "chaos run still completes several items" true (completable >= 3);
  let kill_points =
    List.sort_uniq compare
      [ 1; 2; completable / 2; completable - 1 ]
    |> List.filter (fun k -> k >= 1 && k < completable)
  in
  List.iter
    (fun k ->
      let dir = fresh_dir () in
      let cfg = chaos (base_cfg ~state_dir:dir) in
      let killed =
        Whisper_sim.Sweep.run
          { cfg with Whisper_sim.Sweep.max_completions = Some k }
      in
      check_bool "killed run stopped early" true killed.interrupted;
      check_bool "killed run has no report" true (killed.report = None);
      check_int "killed at k completions" k killed.completed;
      let resumed =
        Whisper_sim.Sweep.run
          { cfg with Whisper_sim.Sweep.resume = true; jobs = 4 }
      in
      check_bool "resumed skips the journal prefix" true (resumed.resumed >= k);
      check_string
        (Printf.sprintf "resumed report identical (k=%d)" k)
        reference (report_bytes resumed))
    kill_points

let test_resume_chain_three_kills () =
  (* killed at three successive points, then allowed to finish: still
     the clean report, and later kills resume earlier journals *)
  let chaos cfg =
    { cfg with Whisper_sim.Sweep.faults = 0.35; fault_seed = 9 }
  in
  let clean_dir = fresh_dir () in
  let clean = Whisper_sim.Sweep.run (chaos (base_cfg ~state_dir:clean_dir)) in
  let reference = report_bytes clean in
  (* three kills of [step] completions each must not exhaust the
     completable set, or a later "kill" would just finish the sweep *)
  let step = max 1 ((clean.Whisper_sim.Sweep.completed - 1) / 3) in
  check_bool "enough completable items for three kills" true
    (3 * step < clean.completed);
  let dir = fresh_dir () in
  let cfg = chaos (base_cfg ~state_dir:dir) in
  let at k resume =
    Whisper_sim.Sweep.run
      {
        cfg with
        Whisper_sim.Sweep.resume;
        max_completions = (if k = 0 then None else Some k);
      }
  in
  let o1 = at step false in
  check_bool "kill 1" true o1.Whisper_sim.Sweep.interrupted;
  let o2 = at step true in
  check_bool "kill 2" true o2.Whisper_sim.Sweep.interrupted;
  check_bool "kill 2 resumed prior work" true (o2.resumed >= step);
  let o3 = at step true in
  check_bool "kill 3" true o3.Whisper_sim.Sweep.interrupted;
  let final = at 0 true in
  check_bool "final run finishes" false final.Whisper_sim.Sweep.interrupted;
  check_string "report identical after three kills" reference
    (report_bytes final)

let test_manifest_change_invalidates_journal () =
  let dir = fresh_dir () in
  let cfg = base_cfg ~state_dir:dir in
  let _ = Whisper_sim.Sweep.run cfg in
  (* same state dir, different fleet: the journal must not be trusted *)
  let cfg2 =
    {
      cfg with
      Whisper_sim.Sweep.apps = Whisper_sim.Sweep.fleet ~seed:8 ~n:4;
      resume = true;
    }
  in
  let o = Whisper_sim.Sweep.run cfg2 in
  check_int "nothing resumed across manifests" 0 o.Whisper_sim.Sweep.resumed;
  check_int "everything re-ran" 12 o.completed

(* ------------------------------------------------------------------ *)
(* Process mode (needs the CLI binary; skips when absent)             *)
(* ------------------------------------------------------------------ *)

let cli_exe () =
  let candidates =
    match Sys.getenv_opt "WHISPER_CLI_EXE" with
    | Some p -> [ p ]
    | None ->
        [
          Filename.concat
            (Filename.concat (Filename.dirname (Sys.getcwd ())) "bin")
            "whisper_cli.exe";
          "../bin/whisper_cli.exe";
          "_build/default/bin/whisper_cli.exe";
        ]
  in
  List.find_opt Sys.file_exists candidates

let with_cli f =
  match cli_exe () with
  | None ->
      Printf.printf "test_sweep: CLI binary not found; skipping process-mode case\n%!"
  | Some exe -> f exe

let test_process_mode_matches_inprocess () =
  with_cli @@ fun exe ->
  let chaos cfg =
    {
      cfg with
      Whisper_sim.Sweep.faults = 0.35;
      fault_seed = 9;
      hang_timeout_s = 1.0;
    }
  in
  let ref_dir = fresh_dir () in
  let reference =
    report_bytes (Whisper_sim.Sweep.run (chaos (base_cfg ~state_dir:ref_dir)))
  in
  let dir = fresh_dir () in
  let cfg =
    {
      (chaos (base_cfg ~state_dir:dir)) with
      Whisper_sim.Sweep.mode = `Process;
      jobs = 2;
      worker_argv = [| exe; "worker" |];
    }
  in
  let o = Whisper_sim.Sweep.run cfg in
  check_bool "workers actually died under chaos" true
    (o.Whisper_sim.Sweep.worker_crashes + o.worker_hangs > 0);
  check_string "process report == in-process report" reference
    (report_bytes o)

let test_spawn_failure_falls_back () =
  let dir = fresh_dir () in
  let in_dir = fresh_dir () in
  let reference =
    report_bytes (Whisper_sim.Sweep.run (base_cfg ~state_dir:in_dir))
  in
  let cfg =
    {
      (base_cfg ~state_dir:dir) with
      Whisper_sim.Sweep.mode = `Process;
      worker_argv = [| "/nonexistent/whisper-worker"; "worker" |];
      max_worker_restarts = 1;
    }
  in
  let o = Whisper_sim.Sweep.run cfg in
  check_bool "fell back to in-process" true o.Whisper_sim.Sweep.fellback;
  check_int "still completed everything" 12 o.completed;
  check_string "fallback report identical" reference (report_bytes o)

let () =
  Alcotest.run "whisper_sweep"
    [
      ( "sweep",
        Alcotest.
          [
            test_case "manifest round trip + content id" `Quick
              test_manifest_roundtrip;
            test_case "journal torn-tail recovery" `Quick
              test_journal_recovery;
            test_case "ipc codec round trip" `Quick test_ipc_roundtrip;
            test_case "ipc partial-frame reassembly" `Quick
              test_ipc_partial_frames;
            test_case "in-process sweep completes; trivial resume" `Quick
              test_inprocess_complete_and_trivial_resume;
            test_case "kill after k completions, resume byte-identical"
              `Quick test_resume_determinism_after_random_kills;
            test_case "three kills then finish, report identical" `Quick
              test_resume_chain_three_kills;
            test_case "manifest change invalidates journal" `Quick
              test_manifest_change_invalidates_journal;
            test_case "process mode report == in-process report" `Quick
              test_process_mode_matches_inprocess;
            test_case "spawn failure degrades to in-process" `Quick
              test_spawn_failure_falls_back;
          ] );
    ]
