(** Global branch-history ring buffer.

    Stores the most recent branch outcomes (1 = taken, 0 = not taken) up to
    a fixed depth.  Both the workload generator's ground-truth behaviours
    and Whisper's run-time hashing read from the same abstraction, so the
    hash definition is shared by construction. *)

type t

val create : depth:int -> t
(** [create ~depth] holds the last [depth] outcomes, all initially 0
    (not taken).  @raise Invalid_argument if [depth <= 0]. *)

val depth : t -> int

val push : t -> bool -> unit
(** [push t taken] records the outcome of the most recent branch. *)

val get : t -> int -> int
(** [get t i] is the outcome of the branch [i+1] branches ago (so [get t 0]
    is the most recent outcome), as 0 or 1.  Outcomes older than [depth]
    read as 0.  @raise Invalid_argument if [i < 0]. *)

val length_pushed : t -> int
(** Total number of outcomes pushed since creation. *)

val raw_window : t -> int -> int
(** [raw_window t n] packs the last [n <= 62] outcomes into an int, with
    the most recent outcome in bit 0. *)

val hash_window : t -> len:int -> chunk:int -> int
(** [hash_window t ~len ~chunk] computes the folded hash of the last [len]
    outcomes into [chunk] bits: bit of age [j] contributes to hash position
    [j mod chunk] (XOR).  This is the paper's history hashing (§III-A) and
    is definitionally equal to the value maintained incrementally by
    {!Folded}. *)

(** Incrementally maintained folded (hashed) history, one register per
    tracked history length — the same circular-shift-register construction
    used by TAGE hardware, which the paper cites as evidence that history
    hashing is already implementable (§III-A). *)
module Folded : sig
  type h := t
  type t

  val create : len:int -> chunk:int -> t
  (** A folded register over the last [len] outcomes, [chunk] bits wide. *)

  val len : t -> int
  val chunk : t -> int

  val value : t -> int
  (** Current hash value. *)

  val update : t -> history:h -> newest:bool -> unit
  (** [update t ~history ~newest] advances the register after [newest] has
      been determined but {e before} it is pushed onto [history]; the
      register needs [history] to read the outgoing bit of age [len-1]. *)
end

val push_all : t -> Folded.t array -> bool -> unit
(** [push_all t regs taken] updates every folded register and then pushes
    the outcome — the one correct ordering of the two operations. *)
