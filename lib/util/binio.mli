(** Minimal binary serialization helpers (growable writer / bounds-checked
    reader with LEB128 varints), shared by the PT-like trace codec and the
    profile / hint-plan file formats. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val byte : t -> int -> unit
  val varint : t -> int -> unit
  (** Unsigned LEB128; argument must be non-negative. *)

  val zigzag : t -> int -> unit
  (** Signed varint (zigzag encoding). *)

  val bytes : t -> bytes -> unit
  (** Length-prefixed byte string. *)

  val string : t -> string -> unit
  val float64 : t -> float -> unit
  val magic : t -> string -> unit
  (** Raw, unprefixed tag bytes. *)

  val contents : t -> bytes
  val length : t -> int
end

module Reader : sig
  type t

  val create : bytes -> t
  val byte : t -> int
  val varint : t -> int
  val zigzag : t -> int
  val bytes : t -> bytes
  val string : t -> string
  val float64 : t -> float

  val magic : t -> string -> unit
  (** Consume and verify tag bytes.  @raise Failure on mismatch. *)

  val eof : t -> bool
  val pos : t -> int
end

val to_file : string -> bytes -> unit
val of_file : string -> bytes
