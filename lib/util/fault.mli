(** Deterministic fault injection for chaos-testing the ingestion and
    execution pipeline.

    Every decision is a pure function of [(seed, key)] — never of call
    order, wall clock or domain id — so a chaos run is reproducible and
    identical across job counts ([-j1] == [-j4]).  Six operators model
    the faults a profile-collection fleet actually ships:

    - {b byte operators} (corrupt a [bytes] artifact): truncate,
      bit-flip, byte-drop, version-skew;
    - {b task operators} (perturb a running work item): delay (short,
      recoverable sleep) and hang (a wedged worker — sleeps long enough
      to trip the pool's per-task timeout on the first attempt, then
      behaves on retry).

    Byte-style faults applied to a task are {e persistent}: every
    attempt raises a typed {!Whisper_error.t} with stage [Injected],
    modelling a corrupt artifact that stays corrupt on re-read.  Timing
    faults are {e transient}: a retry succeeds.  This split is what the
    runner's retry/quarantine policy is exercised against. *)

type op =
  | Truncate
  | Bit_flip
  | Byte_drop
  | Version_skew
  | Delay
  | Hang
  | Worker_crash  (** a sweep worker process dies mid-item (kill -9 style) *)
  | Heartbeat_stall
      (** a sweep worker wedges silently — heartbeats stop, work never
          finishes, and the supervisor's hang detection must reap it *)

type decision = Pass | Inject of op

type t

val create :
  ?seed:int -> ?hang_s:float -> ?delay_s:float -> rate:float -> unit -> t
(** [create ~rate ()] injects a fault with probability [rate] per key.
    Defaults: [seed = 42], [hang_s = 2.0] (sleep of an injected hang;
    set it above the pool's per-task timeout so the timeout fires
    first), [delay_s = 0.02]. *)

val seed : t -> int
val rate : t -> float

val injected : t -> int
(** Faults acted on so far (cross-domain safe). *)

val op_name : op -> string

val decision : t -> key:string -> decision
(** The deterministic verdict for [key] over the byte/task operator
    family ([Worker_crash]/[Heartbeat_stall] are never drawn here — see
    {!worker_decision} — so pre-existing chaos runs keep their exact
    fault sites). *)

val worker_decision : t -> key:string -> [ `None | `Crash | `Stall ]
(** The process-level verdict for a sweep work item, pure in
    [(seed, key)] on a stream independent of {!decision}'s: with
    probability [rate], half the afflicted keys crash the worker
    executing them ([`Crash], modelling a seg-faulting item) and half
    wedge it silently ([`Stall], modelling a hang that only heartbeat
    monitoring can detect).  A key's verdict never changes across
    attempts, which is exactly what exercises the supervisor's
    poison-item quarantine. *)

val corrupt : t -> key:string -> bytes -> bytes
(** Apply the byte operator chosen for [key], if any ([Delay]/[Hang]
    leave bytes untouched).  The result is deliberately malformed input
    for a decoder — never a crash vector. *)

val wrap : t -> key:string -> attempt:int -> (unit -> 'a) -> 'a
(** Run a task under the fault chosen for [key]: byte-style faults
    raise a typed [Injected] error on every attempt; [Delay] sleeps
    then runs; [Hang] sleeps [hang_s] and then fails on [attempt = 1]
    (so the first attempt's outcome does not depend on whether the
    pool's timeout won the race against the sleep), and runs normally
    on retries. *)
