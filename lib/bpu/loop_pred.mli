(** Loop predictor (the "L" of TAGE-SC-L): learns branches with a fixed
    iteration count and predicts the loop exit exactly, overriding TAGE
    once confident. *)

type t

val create : log_entries:int -> t

val storage_bits : t -> int

val predict : t -> pc:int -> bool option
(** [Some dir] when the entry is confident; [None] otherwise. *)

val predict_code : t -> pc:int -> int
(** Allocation-free {!predict}: [-1] when not confident, else [0]/[1]
    for the predicted direction — the replay hot loop's entry point. *)

val train : t -> pc:int -> taken:bool -> tage_mispredicted:bool -> unit
(** Update the entry for [pc]; allocate when TAGE mispredicted and no
    entry exists. *)
