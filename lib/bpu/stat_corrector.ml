open Whisper_util

let hist_lens = [| 4; 10; 16; 27 |]
let initial_threshold = 12

type t = {
  bias : int array;  (* signed 6-bit counters, per PC *)
  banks : int array array;  (* one bank per history length *)
  mask : int;
  hist : History.t;
  folded : History.Folded.t array;
  log_entries : int;
  (* adaptive veto threshold (Seznec's TC mechanism): harmful vetoes
     raise the bar, successful ones lower it *)
  mutable threshold : int;
  mutable tc : int;
  (* refine-time context *)
  mutable ctx_pc : int;
  mutable ctx_sum : int;
  mutable ctx_used_sc : bool;
  mutable ctx_pred : bool;
  mutable ctx_sc_pred : bool;
  mutable ctx_tage_pred : bool;
}

let create ~log_entries =
  if log_entries < 1 || log_entries > 22 then invalid_arg "Stat_corrector.create";
  let n = 1 lsl log_entries in
  {
    bias = Array.make n 0;
    banks = Array.map (fun _ -> Array.make n 0) hist_lens;
    mask = n - 1;
    hist = History.create ~depth:64;
    folded =
      Array.map (fun len -> History.Folded.create ~len ~chunk:log_entries) hist_lens;
    log_entries;
    threshold = initial_threshold;
    tc = 0;
    ctx_pc = 0;
    ctx_sum = 0;
    ctx_used_sc = false;
    ctx_pred = false;
    ctx_sc_pred = false;
    ctx_tage_pred = false;
  }

let storage_bits t =
  6 * (t.mask + 1) * (1 + Array.length hist_lens)

let index t k pc =
  ((pc lsr 2) lxor History.Folded.value t.folded.(k) lxor (k * 0x9E5)) land t.mask

(* Explicit loops here and in [train]: [Array.iteri] would allocate its
   capturing closure on every call, and both run once per event. *)
let sum t pc =
  let s = ref ((2 * t.bias.((pc lsr 2) land t.mask)) + 1) in
  let banks = t.banks in
  for k = 0 to Array.length banks - 1 do
    let bank = Array.unsafe_get banks k in
    s := !s + (2 * bank.(index t k pc)) + 1
  done;
  !s

let refine_conf t ~conf ~pc ~tage_pred =
  let tage_conf = conf in
  let s = sum t pc in
  let sc_pred = s >= 0 in
  (* veto only when TAGE itself is not confident: a small aliased
     corrector must not override saturated provider counters *)
  let gate =
    match tage_conf with
    | `High -> 4 * t.threshold
    | `Med -> t.threshold
    | `Low -> t.threshold / 2
  in
  let veto = sc_pred <> tage_pred && abs s > gate in
  let final = if veto then sc_pred else tage_pred in
  t.ctx_pc <- pc;
  t.ctx_sum <- s;
  t.ctx_used_sc <- veto;
  t.ctx_pred <- final;
  t.ctx_sc_pred <- sc_pred;
  t.ctx_tage_pred <- tage_pred;
  final

let refine ?(tage_conf = `Med) t ~pc ~tage_pred =
  refine_conf t ~conf:tage_conf ~pc ~tage_pred

let bump c ~taken = Counters.update c ~taken ~min:(-32) ~max:31

let train t ~pc ~taken =
  if pc <> t.ctx_pc then invalid_arg "Stat_corrector.train: mismatch";
  let mispredicted = t.ctx_pred <> taken in
  (* adapt the veto threshold on disagreements: a corrector that keeps
     losing to TAGE must veto less *)
  if t.ctx_sc_pred <> t.ctx_tage_pred then begin
    t.tc <- t.tc + (if t.ctx_sc_pred = taken then 1 else -1);
    if t.tc <= -16 then begin
      t.threshold <- min 256 (t.threshold * 2);
      t.tc <- 0
    end
    else if t.tc >= 16 then begin
      t.threshold <- max 6 (t.threshold - 2);
      t.tc <- 0
    end
  end;
  if mispredicted || abs t.ctx_sum <= t.threshold then begin
    let bi = (pc lsr 2) land t.mask in
    t.bias.(bi) <- bump t.bias.(bi) ~taken;
    let banks = t.banks in
    for k = 0 to Array.length banks - 1 do
      let bank = Array.unsafe_get banks k in
      let i = index t k pc in
      bank.(i) <- bump bank.(i) ~taken
    done
  end;
  History.push_all t.hist t.folded taken

let spectate t ~taken = History.push_all t.hist t.folded taken
