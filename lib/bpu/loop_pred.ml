type entry = {
  mutable tag : int;
  mutable past_iter : int;
  mutable cur_iter : int;
  mutable conf : int;  (* 0..7; confident at >= 3 *)
  mutable dir : bool;  (* body direction (the repeated outcome) *)
  mutable age : int;
}

type t = { entries : entry array; mask : int; log : int }

let max_iter = 1023

let create ~log_entries =
  if log_entries < 1 || log_entries > 16 then invalid_arg "Loop_pred.create";
  let n = 1 lsl log_entries in
  {
    entries =
      Array.init n (fun _ ->
          { tag = -1; past_iter = 0; cur_iter = 0; conf = 0; dir = true; age = 0 });
    mask = n - 1;
    log = log_entries;
  }

let storage_bits t =
  (* tag 10 + 2 iteration counters (10 each) + conf 3 + dir 1 + age 3 *)
  Array.length t.entries * (10 + 10 + 10 + 3 + 1 + 3)

let slot t pc = t.entries.((pc lsr 2) land t.mask)

(* the tag covers the PC bits *above* the index, so aliasing is detected *)
let tag_of t pc = (pc lsr (2 + t.log)) land 0x3FF

(* Allocation-free variant for the replay hot loop: -1 = no confident
   entry, 0 = predict not-taken, 1 = predict taken. *)
let predict_code t ~pc =
  let e = slot t pc in
  if e.tag = tag_of t pc && e.conf >= 3 && e.past_iter > 0 then
    (* after past_iter-1 body outcomes, the next one exits *)
    let dir = if e.cur_iter + 1 >= e.past_iter then not e.dir else e.dir in
    Bool.to_int dir
  else -1

let predict t ~pc =
  match predict_code t ~pc with -1 -> None | c -> Some (c = 1)

let train t ~pc ~taken ~tage_mispredicted =
  let e = slot t pc in
  if e.tag = tag_of t pc then begin
    e.age <- min 7 (e.age + 1);
    if taken = e.dir then begin
      e.cur_iter <- e.cur_iter + 1;
      if e.cur_iter > max_iter then begin
        (* not a bounded loop; drop confidence *)
        e.conf <- 0;
        e.cur_iter <- 0;
        e.past_iter <- 0
      end
    end
    else begin
      (* iteration run ended *)
      let run = e.cur_iter + 1 in
      if run = e.past_iter then e.conf <- min 7 (e.conf + 1)
      else begin
        e.past_iter <- run;
        e.conf <- 0
      end;
      e.cur_iter <- 0
    end
  end
  else if tage_mispredicted then begin
    (* allocate if the resident entry is stale *)
    if e.age = 0 || e.conf = 0 then begin
      e.tag <- tag_of t pc;
      e.past_iter <- 0;
      e.cur_iter <- 0;
      e.conf <- 0;
      e.dir <- taken;
      e.age <- 3
    end
    else e.age <- e.age - 1
  end
