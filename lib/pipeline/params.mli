(** Simulated machine parameters (paper Table II).

    3.2 GHz, 6-wide OOO core with a 24-entry FTQ and 224-entry ROB;
    8192-entry 4-way BTB; 32 KB 8-way L1i, 1 MB 16-way L2,
    10 MB 20-way L3. *)

type t = {
  freq_ghz : float;
  width : int;  (** fetch/retire width *)
  ftq_entries : int;
  rob_entries : int;
  rs_entries : int;
  btb_entries : int;
  btb_assoc : int;
  l1i_bytes : int;
  l1i_assoc : int;
  l2_bytes : int;
  l2_assoc : int;
  l3_bytes : int;
  l3_assoc : int;
  line_bytes : int;
  l2_latency : int;  (** cycles, L1i miss hitting L2 *)
  l3_latency : int;
  mem_latency : int;
  resteer_penalty : int;
      (** cycles lost on a branch misprediction (squash + frontend refill) *)
  btb_miss_penalty : int;  (** decode-resteer bubble for a taken BTB miss *)
  ftq_cycles_per_entry : float;
      (** FDIP lookahead each queued fetch-target buys the prefetcher *)
  backend_cpi : float;
      (** average non-branch backend latency per instruction (data-cache
          misses, dependence stalls) — not modelled in detail, but needed
          so that branch-stall cycles are diluted to a realistic share of
          total execution time *)
}

val default : t

val pp : Format.formatter -> t -> unit
