open Whisper_util
open Whisper_trace

let format_version = 1
let default_subdir = "arenas"
let magic_tag = "WARC"

type counters = { write_failures : int; corrupt_dropped : int }

type t = {
  cache_dir : string;
  corrupt : (key:string -> bytes -> bytes) option;
  n_write_failures : int Atomic.t;
  n_corrupt_dropped : int Atomic.t;
}

let m_loads = Telemetry.counter "arena_cache.loads"
let m_stores = Telemetry.counter "arena_cache.stores"
let m_corrupt = Telemetry.counter "arena_cache.corrupt_dropped"
let m_write_failures = Telemetry.counter "arena_cache.write_failures"

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?corrupt ~dir () =
  mkdir_p dir;
  {
    cache_dir = dir;
    corrupt;
    n_write_failures = Atomic.make 0;
    n_corrupt_dropped = Atomic.make 0;
  }

let dir t = t.cache_dir

let counters t =
  {
    write_failures = Atomic.get t.n_write_failures;
    corrupt_dropped = Atomic.get t.n_corrupt_dropped;
  }

let path t ~key =
  Filename.concat t.cache_dir (Digest.to_hex (Digest.string key) ^ ".arena")

(* The envelope binds the entry to its full key (so a digest collision or
   a stale file decodes to Key_mismatch, not a wrong arena) and carries
   its own version on top of the arena codec's. *)
let encode ~key arena =
  let w = Binio.Writer.create ~capacity:(64 + (5 * Arena.length arena)) () in
  Binio.Writer.magic w magic_tag;
  Binio.Writer.varint w format_version;
  Binio.Writer.string w key;
  Arena.write w arena;
  Binio.Writer.contents w

let decode_exn ~key b =
  let r = Binio.Reader.create b in
  Binio.Reader.magic r magic_tag;
  let voff = Binio.Reader.pos r in
  let v = Binio.Reader.varint r in
  if v <> format_version then
    Whisper_error.raise_error ~offset:voff ~context:key
      Whisper_error.Arena_cache
      (Whisper_error.Version_mismatch { got = v; expected = format_version });
  let koff = Binio.Reader.pos r in
  let k = Binio.Reader.string r in
  if k <> key then
    Whisper_error.raise_error ~offset:koff ~context:key
      Whisper_error.Arena_cache Whisper_error.Key_mismatch;
  let arena = Arena.read r in
  if not (Binio.Reader.eof r) then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r) ~context:key
      Whisper_error.Arena_cache Whisper_error.Trailing_bytes;
  arena

let decode ~key b =
  Whisper_error.protect ~context:key Whisper_error.Arena_cache (fun () ->
      decode_exn ~key b)

let find t ~key =
  let file = path t ~key in
  if not (Sys.file_exists file) then None
  else
    let read () =
      let b = Binio.of_file file in
      match t.corrupt with None -> b | Some f -> f ~key b
    in
    match
      Whisper_error.protect ~context:key Whisper_error.Arena_cache (fun () ->
          decode_exn ~key (read ()))
    with
    | Ok a ->
        Telemetry.incr m_loads;
        Some a
    | Error _ ->
        (* corrupt/stale entries (torn write, bit rot, version bump) are
           dropped and counted, and the caller regenerates the arena *)
        (try Sys.remove file with Sys_error _ -> ());
        Atomic.incr t.n_corrupt_dropped;
        Telemetry.incr m_corrupt;
        None

(* Best-effort, like Result_cache.store: a failing write must not abort
   the run that already has the arena in memory. *)
let store t ~key arena =
  let file = path t ~key in
  (* pid + domain, as in Result_cache.store: worker processes of one
     sweep share this directory *)
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" file (Unix.getpid ()) (Domain.self () :> int)
  in
  try
    Binio.to_file tmp (encode ~key arena);
    Sys.rename tmp file;
    Telemetry.incr m_stores
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Atomic.incr t.n_write_failures;
    Telemetry.incr m_write_failures
