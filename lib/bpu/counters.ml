let inc c ~max = if c >= max then max else c + 1
let dec c ~min = if c <= min then min else c - 1
let update c ~taken ~min ~max = if taken then inc c ~max else dec c ~min
let taken_of c ~mid = c >= mid
