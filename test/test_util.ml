(* Tests for whisper_util: PRNG, bit ops, stats, geometric series, LRU,
   histograms, and the history / folded-hash machinery. *)

open Whisper_util

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.next a) (Rng.next b) then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_rng_int_bounds () =
  let t = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let t = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int") (fun () ->
      ignore (Rng.int t 0))

let test_rng_bits () =
  let t = Rng.create 3 in
  check_int "0 bits" 0 (Rng.bits t 0);
  for _ = 1 to 200 do
    let v = Rng.bits t 8 in
    Alcotest.(check bool) "8 bits" true (v >= 0 && v < 256)
  done

let test_rng_float_bounds () =
  let t = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float t 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_frequency () =
  let t = Rng.create 5 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli t 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "freq near 0.3" true (abs_float (freq -. 0.3) < 0.02)

let test_rng_geometric_mean () =
  let t = Rng.create 9 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric t 0.5
  done;
  (* mean of failures-before-success for p=0.5 is 1. *)
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1" true (abs_float (mean -. 1.0) < 0.1)

let test_rng_permutation () =
  let t = Rng.create 13 in
  let p = Rng.permutation t 50 in
  let seen = Array.make 50 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  Alcotest.(check bool) "bijective" true (Array.for_all Fun.id seen)

let test_rng_shuffle_multiset () =
  let t = Rng.create 17 in
  let arr = Array.init 30 (fun i -> i mod 7) in
  let before = Array.copy arr in
  Rng.shuffle t arr;
  Array.sort compare arr;
  Array.sort compare before;
  Alcotest.(check (array int)) "multiset preserved" before arr

let test_rng_split_independent () =
  let t = Rng.create 21 in
  let child = Rng.split t in
  let a = Rng.next t and b = Rng.next child in
  Alcotest.(check bool) "distinct values" true (not (Int64.equal a b))

let test_rng_sample_weighted () =
  let t = Rng.create 23 in
  for _ = 1 to 500 do
    let v = Rng.sample_weighted t [| (0.0, `A); (1.0, `B); (0.0, `C) |] in
    Alcotest.(check bool) "only positive weight" true (v = `B)
  done

let test_rng_choose () =
  let t = Rng.create 29 in
  let v = Rng.choose t [| 1; 2; 3 |] in
  Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose") (fun () ->
      ignore (Rng.choose t [||]))

(* ------------------------------------------------------------------ *)
(* Bitops                                                             *)
(* ------------------------------------------------------------------ *)

let test_popcount () =
  check_int "0" 0 (Bitops.popcount 0);
  check_int "0xFF" 8 (Bitops.popcount 0xFF);
  check_int "0b1010" 2 (Bitops.popcount 0b1010)

let test_parity () =
  check_int "even" 0 (Bitops.parity 0b1010);
  check_int "odd" 1 (Bitops.parity 0b1011)

let test_mask () =
  check_int "mask 0" 0 (Bitops.mask 0);
  check_int "mask 8" 255 (Bitops.mask 8);
  check_int "mask 15" 32767 (Bitops.mask 15)

let test_get_set_bit () =
  check_int "get" 1 (Bitops.get_bit 0b100 2);
  check_int "get0" 0 (Bitops.get_bit 0b100 1);
  check_int "set" 0b101 (Bitops.set_bit 0b100 0)

let test_fold_xor () =
  (* 16 bits folded to 8: high byte xor low byte. *)
  check_int "xor fold" (0xAB lxor 0xCD) (Bitops.fold_xor 0xABCD ~width:16 ~chunk:8);
  (* width not a multiple of chunk: remaining high bits form a short chunk. *)
  check_int "ragged" (0b101 lxor 0b1) (Bitops.fold_xor 0b1101 ~width:4 ~chunk:3)

let test_fold_and_or () =
  check_int "and fold" (0xAB land 0xCD) (Bitops.fold_and 0xABCD ~width:16 ~chunk:8);
  check_int "or fold" (0xAB lor 0xCD) (Bitops.fold_or 0xABCD ~width:16 ~chunk:8)

let test_reverse_bits () =
  check_int "rev" 0b0011 (Bitops.reverse_bits 0b1100 ~width:4);
  check_int "rev8" 0b10000000 (Bitops.reverse_bits 1 ~width:8)

let test_log2_ceil () =
  check_int "1" 0 (Bitops.log2_ceil 1);
  check_int "2" 1 (Bitops.log2_ceil 2);
  check_int "3" 2 (Bitops.log2_ceil 3);
  check_int "1024" 10 (Bitops.log2_ceil 1024);
  check_int "1025" 11 (Bitops.log2_ceil 1025)

let test_power_of_two () =
  Alcotest.(check bool) "8" true (Bitops.is_power_of_two 8);
  Alcotest.(check bool) "12" false (Bitops.is_power_of_two 12);
  Alcotest.(check bool) "0" false (Bitops.is_power_of_two 0)

let test_to_bit_list () =
  Alcotest.(check (list int)) "bits" [ 1; 0; 1; 0 ] (Bitops.to_bit_list 0b0101 ~width:4)

let qcheck_reverse_involution =
  QCheck.Test.make ~name:"reverse_bits involution" ~count:500
    QCheck.(int_bound 0xFFFF)
    (fun x -> Bitops.reverse_bits (Bitops.reverse_bits x ~width:16) ~width:16 = x)

let qcheck_popcount_split =
  QCheck.Test.make ~name:"popcount splits over disjoint masks" ~count:500
    QCheck.(pair (int_bound 0xFF) (int_bound 0xFF))
    (fun (a, b) ->
      Bitops.popcount ((a lsl 8) lor b) = Bitops.popcount a + Bitops.popcount b)

let qcheck_fold_xor_parity =
  (* XOR-folding to 1-bit chunks is the parity function. *)
  QCheck.Test.make ~name:"fold_xor chunk=1 is parity" ~count:500
    QCheck.(int_bound 0x3FFFFFF)
    (fun x -> Bitops.fold_xor x ~width:26 ~chunk:1 = Bitops.parity x)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_mean () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "empty" 0.0 (Stats.mean [||])

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 2.0; 4.0 |])

let test_stddev_known () =
  let s = Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "wikipedia example" 2.0 s

let test_stddev_constant () =
  check_float "constant" 0.0 (Stats.stddev [| 5.0; 5.0 |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; 1.0; 2.0 |] in
  check_float "min" 1.0 lo;
  check_float "max" 3.0 hi

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 4.0 (Stats.percentile xs 100.0);
  check_float "p50" 2.5 (Stats.percentile xs 50.0)

let test_pct () =
  check_float "pct" 25.0 (Stats.pct 1.0 4.0);
  check_float "zero whole" 0.0 (Stats.pct 1.0 0.0)

let test_speedup () =
  check_float "2x" 100.0 (Stats.speedup_pct ~baseline:200.0 ~improved:100.0);
  check_float "none" 0.0 (Stats.speedup_pct ~baseline:100.0 ~improved:100.0)

let test_reduction () =
  check_float "half" 50.0 (Stats.reduction_pct ~baseline:10.0 ~improved:5.0);
  check_float "none" 0.0 (Stats.reduction_pct ~baseline:0.0 ~improved:0.0)

let test_cdf () =
  match Stats.cdf_points [| 3.0; 1.0 |] with
  | [ (1.0, half); (3.0, one) ] ->
      check_float "half" 0.5 half;
      check_float "one" 1.0 one
  | _ -> Alcotest.fail "unexpected shape"

(* ------------------------------------------------------------------ *)
(* Geometric                                                          *)
(* ------------------------------------------------------------------ *)

let test_geometric_default () =
  let s = Geometric.default in
  check_int "16 terms" 16 (Array.length s);
  check_int "first" 8 s.(0);
  check_int "last" 1024 s.(15);
  (* The paper quotes the series as 8, 11, 15, ... *)
  check_int "second" 11 s.(1);
  check_int "third" 15 s.(2)

let test_geometric_monotone () =
  let s = Geometric.default in
  for i = 1 to Array.length s - 1 do
    Alcotest.(check bool) "strictly increasing" true (s.(i) > s.(i - 1))
  done

let test_geometric_invalid () =
  Alcotest.check_raises "m too small"
    (Invalid_argument "Geometric.series") (fun () ->
      ignore (Geometric.series ~a:8 ~n:1024 ~m:1))

let test_geometric_bucket () =
  let s = Geometric.default in
  check_int "bucket of 1" 0 (Geometric.bucket s 1);
  check_int "bucket of 8" 0 (Geometric.bucket s 8);
  check_int "bucket of 9" 1 (Geometric.bucket s 9);
  check_int "bucket beyond" 15 (Geometric.bucket s 100_000)

let test_geometric_index () =
  let s = Geometric.default in
  Alcotest.(check (option int)) "index of 8" (Some 0) (Geometric.index_of_length s 8);
  Alcotest.(check (option int)) "index of 1024" (Some 15)
    (Geometric.index_of_length s 1024);
  Alcotest.(check (option int)) "missing" None (Geometric.index_of_length s 9)

let qcheck_geometric_valid =
  QCheck.Test.make ~name:"geometric series well-formed" ~count:200
    QCheck.(triple (int_range 1 32) (int_range 64 4096) (int_range 2 24))
    (fun (a, n, m) ->
      QCheck.assume (n > a && n - a + 1 >= m);
      let s = Geometric.series ~a ~n ~m in
      Array.length s = m
      && s.(0) = a
      && s.(m - 1) = n
      && Array.for_all (fun x -> x >= a && x <= n) s
      &&
      let mono = ref true in
      for i = 1 to m - 1 do
        if s.(i) <= s.(i - 1) then mono := false
      done;
      !mono)

(* ------------------------------------------------------------------ *)
(* Lru                                                                *)
(* ------------------------------------------------------------------ *)

let test_lru_basic () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l 1 "a");
  ignore (Lru.add l 2 "b");
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find l 1);
  check_int "len" 2 (Lru.length l)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l 1 ());
  ignore (Lru.add l 2 ());
  let evicted = Lru.add l 3 () in
  Alcotest.(check (option int)) "evicts LRU" (Some 1) evicted;
  Alcotest.(check bool) "2 still in" true (Lru.mem l 2)

let test_lru_promotion () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l 1 ());
  ignore (Lru.add l 2 ());
  ignore (Lru.find l 1);
  (* 1 promoted *)
  let evicted = Lru.add l 3 () in
  Alcotest.(check (option int)) "evicts 2" (Some 2) evicted

let test_lru_peek_no_promotion () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l 1 ());
  ignore (Lru.add l 2 ());
  ignore (Lru.peek l 1);
  let evicted = Lru.add l 3 () in
  Alcotest.(check (option int)) "still evicts 1" (Some 1) evicted

let test_lru_update_existing () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l 1 "a");
  ignore (Lru.add l 2 "b");
  let e = Lru.add l 1 "a2" in
  Alcotest.(check (option int)) "no eviction on update" None e;
  Alcotest.(check (option string)) "updated" (Some "a2") (Lru.peek l 1)

let test_lru_remove () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.add l 1 ());
  Lru.remove l 1;
  check_int "empty" 0 (Lru.length l);
  Alcotest.(check bool) "gone" false (Lru.mem l 1)

let test_lru_clear () =
  let l = Lru.create ~capacity:4 in
  for i = 1 to 4 do
    ignore (Lru.add l i ())
  done;
  Lru.clear l;
  check_int "cleared" 0 (Lru.length l);
  ignore (Lru.add l 9 ());
  check_int "usable after clear" 1 (Lru.length l)

let test_lru_fold_order () =
  let l = Lru.create ~capacity:3 in
  ignore (Lru.add l 1 ());
  ignore (Lru.add l 2 ());
  ignore (Lru.add l 3 ());
  let order = List.rev (Lru.fold (fun acc k () -> k :: acc) [] l) in
  Alcotest.(check (list int)) "MRU first" [ 3; 2; 1 ] order

(* Model-based qcheck test: compare against a naive list-based LRU. *)
module Naive = struct
  type t = { cap : int; mutable items : (int * int) list }

  let create cap = { cap; items = [] }

  let find t k =
    match List.assoc_opt k t.items with
    | None -> None
    | Some v ->
        t.items <- (k, v) :: List.remove_assoc k t.items;
        Some v

  let add t k v =
    if List.mem_assoc k t.items then begin
      t.items <- (k, v) :: List.remove_assoc k t.items;
      None
    end
    else begin
      let evicted =
        if List.length t.items >= t.cap then begin
          let rev = List.rev t.items in
          let ek, _ = List.hd rev in
          t.items <- List.rev (List.tl rev);
          Some ek
        end
        else None
      in
      t.items <- (k, v) :: t.items;
      evicted
    end
end

let qcheck_lru_model =
  QCheck.Test.make ~name:"LRU matches naive model" ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 7)))
    (fun ops ->
      let real = Lru.create ~capacity:4 and model = Naive.create 4 in
      List.for_all
        (fun (op, k) ->
          match op with
          | 0 | 1 -> Lru.add real k k = Naive.add model k k
          | _ -> Lru.find real k = Naive.find model k)
        ops)

(* ------------------------------------------------------------------ *)
(* Histo                                                              *)
(* ------------------------------------------------------------------ *)

let test_histo_counts () =
  let h = Histo.create () in
  Histo.incr h 3;
  Histo.incr h 3;
  Histo.add h 5 10;
  check_int "count 3" 2 (Histo.count h 3);
  check_int "count 5" 10 (Histo.count h 5);
  check_int "absent" 0 (Histo.count h 99);
  check_int "total" 12 (Histo.total h);
  check_int "cardinal" 2 (Histo.cardinal h)

let test_histo_sorted () =
  let h = Histo.create () in
  Histo.add h 2 1;
  Histo.add h 1 5;
  Alcotest.(check (list (pair int int))) "by key" [ (1, 5); (2, 1) ]
    (Histo.to_sorted_list h);
  Alcotest.(check (list (pair int int))) "by count" [ (1, 5); (2, 1) ]
    (Histo.by_count_desc h)

let test_histo_merge () =
  let a = Histo.create () and b = Histo.create () in
  Histo.add a 1 2;
  Histo.add b 1 3;
  Histo.add b 7 1;
  Histo.merge_into ~dst:a ~src:b;
  check_int "merged" 5 (Histo.count a 1);
  check_int "new key" 1 (Histo.count a 7);
  check_int "src untouched" 3 (Histo.count b 1)

let test_histo_copy () =
  let a = Histo.create () in
  Histo.add a 1 1;
  let b = Histo.copy a in
  Histo.incr b 1;
  check_int "copy independent" 1 (Histo.count a 1);
  check_int "copy updated" 2 (Histo.count b 1)

(* ------------------------------------------------------------------ *)
(* History + Folded                                                   *)
(* ------------------------------------------------------------------ *)

let test_history_push_get () =
  let h = History.create ~depth:8 in
  check_int "initial" 0 (History.get h 0);
  History.push h true;
  History.push h false;
  check_int "most recent" 0 (History.get h 0);
  check_int "one ago" 1 (History.get h 1);
  check_int "older reads 0" 0 (History.get h 7)

let test_history_wraparound () =
  let h = History.create ~depth:4 in
  for _ = 1 to 3 do
    History.push h true
  done;
  for _ = 1 to 4 do
    History.push h false
  done;
  for i = 0 to 3 do
    check_int "not taken" 0 (History.get h i)
  done;
  check_int "beyond depth" 0 (History.get h 4)

let test_history_raw_window () =
  let h = History.create ~depth:8 in
  History.push h true;
  History.push h false;
  History.push h true;
  (* newest..oldest = 1,0,1 -> bits 0b101 *)
  check_int "raw" 0b101 (History.raw_window h 3);
  check_int "padded" 0b101 (History.raw_window h 6)

let test_history_hash_window_small () =
  let h = History.create ~depth:16 in
  let outcomes = [ true; false; true; true; false; false; true; false; true; true ] in
  List.iter (History.push h) outcomes;
  let expected = ref 0 in
  for j = 0 to 9 do
    expected := !expected lxor (History.get h j lsl (j mod 8))
  done;
  check_int "matches definition" !expected (History.hash_window h ~len:10 ~chunk:8)

let test_folded_matches_scratch () =
  let depth = 256 in
  let h = History.create ~depth in
  let reg = History.Folded.create ~len:37 ~chunk:8 in
  let rng = Rng.create 99 in
  for _ = 1 to 500 do
    let b = Rng.bool rng in
    History.push_all h [| reg |] b;
    let scratch = History.hash_window h ~len:37 ~chunk:8 in
    check_int "incremental = scratch" scratch (History.Folded.value reg)
  done

let qcheck_folded_equivalence =
  QCheck.Test.make ~name:"folded register equals hash_window for all lengths"
    ~count:60
    QCheck.(pair (int_range 1 120) (list_of_size (Gen.return 200) bool))
    (fun (len, bits) ->
      let h = History.create ~depth:256 in
      let reg = History.Folded.create ~len ~chunk:8 in
      List.for_all
        (fun b ->
          History.push_all h [| reg |] b;
          History.Folded.value reg = History.hash_window h ~len ~chunk:8)
        bits)

let test_folded_accessors () =
  let reg = History.Folded.create ~len:37 ~chunk:8 in
  check_int "len" 37 (History.Folded.len reg);
  check_int "chunk" 8 (History.Folded.chunk reg);
  check_int "initial" 0 (History.Folded.value reg)

let test_history_invalid () =
  Alcotest.check_raises "bad depth" (Invalid_argument "History.create")
    (fun () -> ignore (History.create ~depth:0));
  let h = History.create ~depth:4 in
  Alcotest.check_raises "bad get" (Invalid_argument "History.get") (fun () ->
      ignore (History.get h (-1)))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "whisper_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "bits" `Quick test_rng_bits;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli frequency" `Quick test_rng_bernoulli_frequency;
          Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_multiset;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "sample weighted" `Quick test_rng_sample_weighted;
          Alcotest.test_case "choose" `Quick test_rng_choose;
        ] );
      ( "bitops",
        Alcotest.
          [
            test_case "popcount" `Quick test_popcount;
            test_case "parity" `Quick test_parity;
            test_case "mask" `Quick test_mask;
            test_case "get/set bit" `Quick test_get_set_bit;
            test_case "fold xor" `Quick test_fold_xor;
            test_case "fold and/or" `Quick test_fold_and_or;
            test_case "reverse bits" `Quick test_reverse_bits;
            test_case "log2 ceil" `Quick test_log2_ceil;
            test_case "power of two" `Quick test_power_of_two;
            test_case "to bit list" `Quick test_to_bit_list;
          ]
        @ qsuite
            [
              qcheck_reverse_involution;
              qcheck_popcount_split;
              qcheck_fold_xor_parity;
            ] );
      ( "stats",
        Alcotest.
          [
            test_case "mean" `Quick test_mean;
            test_case "geomean" `Quick test_geomean;
            test_case "stddev constant" `Quick test_stddev_constant;
            test_case "stddev known" `Quick test_stddev_known;
            test_case "min/max" `Quick test_min_max;
            test_case "percentile" `Quick test_percentile;
            test_case "pct" `Quick test_pct;
            test_case "speedup" `Quick test_speedup;
            test_case "reduction" `Quick test_reduction;
            test_case "cdf" `Quick test_cdf;
          ] );
      ( "geometric",
        Alcotest.
          [
            test_case "paper default series" `Quick test_geometric_default;
            test_case "monotone" `Quick test_geometric_monotone;
            test_case "invalid" `Quick test_geometric_invalid;
            test_case "bucket" `Quick test_geometric_bucket;
            test_case "index" `Quick test_geometric_index;
          ]
        @ qsuite [ qcheck_geometric_valid ] );
      ( "lru",
        Alcotest.
          [
            test_case "basic" `Quick test_lru_basic;
            test_case "eviction order" `Quick test_lru_eviction_order;
            test_case "promotion" `Quick test_lru_promotion;
            test_case "peek no promotion" `Quick test_lru_peek_no_promotion;
            test_case "update existing" `Quick test_lru_update_existing;
            test_case "remove" `Quick test_lru_remove;
            test_case "clear" `Quick test_lru_clear;
            test_case "fold order" `Quick test_lru_fold_order;
          ]
        @ qsuite [ qcheck_lru_model ] );
      ( "histo",
        Alcotest.
          [
            test_case "counts" `Quick test_histo_counts;
            test_case "sorted views" `Quick test_histo_sorted;
            test_case "merge" `Quick test_histo_merge;
            test_case "copy" `Quick test_histo_copy;
          ] );
      ( "history",
        Alcotest.
          [
            test_case "push/get" `Quick test_history_push_get;
            test_case "wraparound" `Quick test_history_wraparound;
            test_case "raw window" `Quick test_history_raw_window;
            test_case "hash window definition" `Quick test_history_hash_window_small;
            test_case "folded matches scratch" `Quick test_folded_matches_scratch;
            test_case "folded accessors" `Quick test_folded_accessors;
            test_case "invalid args" `Quick test_history_invalid;
          ]
        @ qsuite [ qcheck_folded_equivalence ] );
    ]
