open Whisper_util
open Whisper_trace

type plan = (int * History_select.choice) list

let magic = "WRSC"
let format_version = 1

let bias_code = function
  | Brhint.Formula -> 0
  | Brhint.Always_taken -> 1
  | Brhint.Never_taken -> 2
  | Brhint.Dynamic -> 3

let bias_of_code r = function
  | 0 -> Brhint.Formula
  | 1 -> Brhint.Always_taken
  | 2 -> Brhint.Never_taken
  | 3 -> Brhint.Dynamic
  | _ ->
      Whisper_error.raise_error ~offset:(Binio.Reader.pos r) Plan_io
        (Whisper_error.Out_of_range "bias")

let encode (plan : plan) =
  let w = Binio.Writer.create ~capacity:1024 () in
  Binio.Writer.magic w magic;
  Binio.Writer.varint w format_version;
  Binio.Writer.varint w (List.length plan);
  List.iter
    (fun (pc, (c : History_select.choice)) ->
      Binio.Writer.varint w pc;
      Binio.Writer.byte w (bias_code c.bias);
      Binio.Writer.varint w c.len_idx;
      Binio.Writer.varint w c.formula_id;
      Binio.Writer.varint w c.sample_mispred;
      Binio.Writer.varint w c.baseline_mispred;
      Binio.Writer.varint w c.samples)
    plan;
  Binio.Writer.contents w

let decode buf =
  Whisper_error.protect ~context:"rescore-plan" Plan_io @@ fun () ->
  let r = Binio.Reader.create buf in
  Binio.Reader.magic r magic;
  let v = Binio.Reader.varint r in
  if v <> format_version then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r) Plan_io
      (Whisper_error.Version_mismatch { got = v; expected = format_version });
  (* 7 one-byte fields is the floor for an entry *)
  let n = Binio.Reader.count ~per_elem:7 r in
  let out = ref [] in
  for _ = 1 to n do
    let pc = Binio.Reader.varint r in
    let bias = bias_of_code r (Binio.Reader.byte r) in
    let len_idx = Binio.Reader.varint r in
    if len_idx > 255 then
      Whisper_error.raise_error ~offset:(Binio.Reader.pos r) Plan_io
        (Whisper_error.Out_of_range "len_idx");
    let formula_id = Binio.Reader.varint r in
    let sample_mispred = Binio.Reader.varint r in
    let baseline_mispred = Binio.Reader.varint r in
    let samples = Binio.Reader.varint r in
    out :=
      ( pc,
        {
          History_select.len_idx;
          formula_id;
          bias;
          sample_mispred;
          baseline_mispred;
          samples;
        } )
      :: !out
  done;
  if not (Binio.Reader.eof r) then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r) Plan_io
      Whisper_error.Trailing_bytes;
  List.rev !out

let digest plan = Digest.to_hex (Digest.bytes (encode plan))

type score = {
  hinted : int;
  window_candidates : int;
  base_mispred : int;
  hinted_base_mispred : int;
  hint_mispred : int;
  avoided : int;
  coverage : float;
}

let score ~config ~rnd ~profile (plan : plan) =
  ignore config;
  let hints = Hashtbl.create (List.length plan * 2) in
  List.iter (fun (pc, c) -> Hashtbl.replace hints pc c) plan;
  let base_mispred = ref 0 in
  let hinted = ref 0 in
  let hinted_base = ref 0 in
  let hint_mispred = ref 0 in
  let candidates = Profile.candidates profile in
  Array.iter
    (fun pc ->
      match Profile.raw_view profile ~pc with
      | None -> ()
      | Some v ->
          let n_lengths = v.Profile.flags_off - v.Profile.hash_off in
          let base = ref 0 in
          for i = 0 to v.Profile.n - 1 do
            let flags =
              Char.code
                (Bytes.get v.Profile.buf
                   ((i * v.Profile.record_bytes) + v.Profile.flags_off))
            in
            if flags land 2 = 0 then incr base
          done;
          base_mispred := !base_mispred + !base;
          match Hashtbl.find_opt hints pc with
          | None -> ()
          | Some (c : History_select.choice) ->
              incr hinted;
              hinted_base := !hinted_base + !base;
              let m = ref 0 in
              (match c.bias with
              | Brhint.Dynamic ->
                  (* hint defers to the baseline predictor *)
                  m := !base
              | Brhint.Always_taken | Brhint.Never_taken ->
                  let want = c.bias = Brhint.Always_taken in
                  for i = 0 to v.Profile.n - 1 do
                    let flags =
                      Char.code
                        (Bytes.get v.Profile.buf
                           ((i * v.Profile.record_bytes) + v.Profile.flags_off))
                    in
                    if flags land 1 = 1 <> want then incr m
                  done
              | Brhint.Formula ->
                  if c.len_idx >= n_lengths then
                    (* a plan trained with a longer series than this
                       window carries — score the hint as inert *)
                    m := !base
                  else
                    let tt = Randomized.truth_of rnd c.formula_id in
                    for i = 0 to v.Profile.n - 1 do
                      let rec_base = i * v.Profile.record_bytes in
                      let key =
                        Char.code
                          (Bytes.get v.Profile.buf
                             (rec_base + v.Profile.hash_off + c.len_idx))
                      in
                      let flags =
                        Char.code
                          (Bytes.get v.Profile.buf
                             (rec_base + v.Profile.flags_off))
                      in
                      let taken = flags land 1 = 1 in
                      if Whisper_formula.Tree.eval_tt tt key <> taken then
                        incr m
                    done);
              hint_mispred := !hint_mispred + !m)
    candidates;
  let avoided = !hinted_base - !hint_mispred in
  {
    hinted = !hinted;
    window_candidates = Array.length candidates;
    base_mispred = !base_mispred;
    hinted_base_mispred = !hinted_base;
    hint_mispred = !hint_mispred;
    avoided;
    coverage = float_of_int avoided /. float_of_int (max 1 !base_mispred);
  }
