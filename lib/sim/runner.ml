open Whisper_trace
open Whisper_bpu

type technique =
  | Baseline
  | Ideal
  | Mtage_sc
  | Rombf of int
  | Branchnet of Whisper_branchnet.Branchnet.budget
  | Whisper of Whisper_core.Config.t

let technique_name = function
  | Baseline -> "tage-scl"
  | Ideal -> "ideal"
  | Mtage_sc -> "mtage-sc"
  | Rombf n -> Printf.sprintf "%db-rombf" n
  | Branchnet (Whisper_branchnet.Branchnet.Budget b) ->
      Printf.sprintf "%dKB-branchnet" (b / 1024)
  | Branchnet Whisper_branchnet.Branchnet.Unlimited -> "unlimited-branchnet"
  | Whisper _ -> "whisper"

(* A stable cache key for a technique's configuration. *)
let technique_key = function
  | Whisper c ->
      Printf.sprintf "whisper/%d/%d/%d/%s/%f/%d/%d/%d" c.min_len c.max_len
        c.n_lengths
        (match c.ops with `Extended -> "ext" | `Classic -> "cls")
        c.explore_frac c.hint_buffer_size c.max_hints c.seed
  | t -> technique_name t

type ctx = {
  mutable ev : int;
  base_kb : int;
  cfgs : (string, Cfg.t) Hashtbl.t;
  profiles : (string, Profile.t) Hashtbl.t;
  results : (string, Whisper_pipeline.Machine.result) Hashtbl.t;
}

let create_ctx ?(events = 1_200_000) ?(baseline_kb = 64) () =
  {
    ev = events;
    base_kb = baseline_kb;
    cfgs = Hashtbl.create 32;
    profiles = Hashtbl.create 64;
    results = Hashtbl.create 256;
  }

let events ctx = ctx.ev
let set_events ctx e = ctx.ev <- e
let baseline_kb ctx = ctx.base_kb

let cfg_of ctx (app : Workloads.config) =
  match Hashtbl.find_opt ctx.cfgs app.name with
  | Some cfg -> cfg
  | None ->
      let cfg = Workloads.build_cfg app in
      Hashtbl.add ctx.cfgs app.name cfg;
      cfg

let source ctx app ~input =
  let cfg = cfg_of ctx app in
  App_model.source (App_model.create ~cfg ~config:app ~input ())

let lbr_predictor kb () =
  let p = Tage_scl.predictor (Sizes.for_budget ~kb) in
  fun ~pc ~taken ->
    let pred = p.Predictor.predict ~pc in
    p.train ~pc ~taken;
    pred = taken

let profile ?(inputs = [ 0 ]) ?baseline_kb ctx app =
  let kb = Option.value baseline_kb ~default:ctx.base_kb in
  let key =
    Printf.sprintf "%s/%s/%d/%d" app.Workloads.name
      (String.concat "," (List.map string_of_int inputs))
      kb ctx.ev
  in
  match Hashtbl.find_opt ctx.profiles key with
  | Some p -> p
  | None ->
      let one input =
        Profile.collect ~lengths:Workloads.lengths ~events:ctx.ev
          ~make_source:(fun () -> source ctx app ~input)
          ~make_predictor:(lbr_predictor kb) ()
      in
      let p =
        match inputs with
        | [ input ] -> one input
        | inputs -> Profile.merge (List.map one inputs)
      in
      Hashtbl.add ctx.profiles key p;
      p

let whisper_analysis ?(config = Whisper_core.Config.default)
    ?(train_inputs = [ 0 ]) ctx app =
  let p = profile ~inputs:train_inputs ctx app in
  Whisper_core.Analyze.run ~config p

let whisper_plan ?(config = Whisper_core.Config.default)
    ?(train_inputs = [ 0 ]) ctx app =
  let analysis = whisper_analysis ~config ~train_inputs ctx app in
  let cfg = cfg_of ctx app in
  Whisper_core.Inject.plan config cfg
    ~source:(source ctx app ~input:(List.hd train_inputs))
    ~hints:(Whisper_core.Analyze.to_inject_hints analysis cfg)

(* Build the per-event exec closure for a technique. *)
let make_exec ctx app technique ~train_inputs ~kb =
  match technique with
  | Baseline ->
      let p = Tage_scl.predictor (Sizes.for_budget ~kb) in
      fun (e : Branch.event) ->
        let pred = p.Predictor.predict ~pc:e.pc in
        p.train ~pc:e.pc ~taken:e.taken;
        pred = e.taken
  | Ideal -> fun (_ : Branch.event) -> true
  | Mtage_sc ->
      let p = Mtage.predictor () in
      fun (e : Branch.event) ->
        let pred = p.Predictor.predict ~pc:e.pc in
        p.train ~pc:e.pc ~taken:e.taken;
        pred = e.taken
  | Rombf n ->
      let prof = profile ~inputs:train_inputs ~baseline_kb:kb ctx app in
      let spec = Whisper_rombf.Rombf.train ~n prof in
      let rt =
        Whisper_rombf.Rombf.Runtime.create spec
          ~baseline:(Tage_scl.predictor (Sizes.for_budget ~kb))
      in
      fun e -> Whisper_rombf.Rombf.Runtime.exec rt e
  | Branchnet budget ->
      let prof = profile ~inputs:train_inputs ~baseline_kb:kb ctx app in
      let spec = Whisper_branchnet.Branchnet.train ~budget prof in
      let rt =
        Whisper_branchnet.Branchnet.Runtime.create spec
          ~baseline:(Tage_scl.predictor (Sizes.for_budget ~kb))
      in
      fun e -> Whisper_branchnet.Branchnet.Runtime.exec rt e
  | Whisper config ->
      let prof = profile ~inputs:train_inputs ~baseline_kb:kb ctx app in
      let analysis = Whisper_core.Analyze.run ~config prof in
      let cfg = cfg_of ctx app in
      let plan =
        Whisper_core.Inject.plan config cfg
          ~source:(source ctx app ~input:(List.hd train_inputs))
          ~hints:(Whisper_core.Analyze.to_inject_hints analysis cfg)
      in
      let rt =
        Whisper_core.Runtime.create config
          ~baseline:(Tage_scl.predictor (Sizes.for_budget ~kb))
          ~plan
      in
      fun e -> Whisper_core.Runtime.exec rt e

let run ?(train_inputs = [ 0 ]) ?(test_input = 1) ?baseline_kb ctx app
    technique =
  let kb = Option.value baseline_kb ~default:ctx.base_kb in
  let key =
    Printf.sprintf "%s/%s/%s/%d/%d/%d" app.Workloads.name
      (technique_key technique)
      (String.concat "," (List.map string_of_int train_inputs))
      test_input kb ctx.ev
  in
  match Hashtbl.find_opt ctx.results key with
  | Some r -> r
  | None ->
      let exec = make_exec ctx app technique ~train_inputs ~kb in
      let r =
        Whisper_pipeline.Machine.run ~events:ctx.ev
          ~source:(source ctx app ~input:test_input)
          ~predict:exec ()
      in
      Hashtbl.add ctx.results key r;
      r
