(** Packed trace-replay arena: decode-once, replay-many event buffers.

    An arena materializes the first [events] events of an {!App_model}
    walk into structure-of-arrays buffers — [block] / [pc] / [instrs] /
    [next_addr] as flat [int array]s plus a taken bitset in [Bytes.t] —
    so every consumer (profiler, timing model, technique runtimes)
    replays the stream by index with zero per-event allocation, instead
    of re-generating it through a closure that builds a fresh
    {!Branch.event} record per call.

    Sharing contract: an arena is immutable after {!build} (or a codec
    {!read}); pool domains replay the same arena concurrently without
    copying or locking.  The indexed accessors are unchecked for speed —
    callers iterate [0 .. length t - 1], which every in-tree replay loop
    establishes once up front. *)

type t

val build : events:int -> App_model.t -> t
(** Advance [model] by [events] events (via {!App_model.fill}), packing
    them into a fresh arena.  The stream is byte-identical to what the
    same model would have produced through {!App_model.source}. *)

val length : t -> int

(** {2 Indexed replay (hot path — bounds are NOT checked)} *)

val block : t -> int -> int
val pc : t -> int -> int
val instrs : t -> int -> int
val next_addr : t -> int -> int
val taken : t -> int -> bool

(** {2 Oracle accessors (allocating; for differential tests and
    closure-source consumers)} *)

val event : t -> int -> Branch.event
(** Rebuild event [i] as a record.
    @raise Invalid_argument out of bounds. *)

val source : t -> Branch.source
(** A replaying closure over the arena, emitting events [0 .. length-1]
    in order and failing once exhausted.  Each call to [source] starts an
    independent replay cursor. *)

(** {2 Versioned codec}

    Total on corrupt input: all failures surface as typed
    {!Whisper_util.Whisper_error} values (stage [Arena_cache]), with
    counts validated against the remaining input before any allocation. *)

val write : Whisper_util.Binio.Writer.t -> t -> unit
val read : Whisper_util.Binio.Reader.t -> t
val to_bytes : t -> bytes

val of_bytes : bytes -> (t, Whisper_util.Whisper_error.t) result
(** Decode a standalone encoding, rejecting trailing bytes. *)

val digest : t -> string
(** Content hash (hex) of the packed encoding — used by tests to assert
    byte-identical arenas across job counts and cache round-trips. *)

val equal : t -> t -> bool
