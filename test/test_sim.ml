(* Tests for whisper_sim: the runner (memoization, technique wiring),
   report formatting, and fast sanity checks of a few experiments. *)

open Whisper_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_ctx () = Runner.create_ctx ~events:60_000 ()

let app name = Option.get (Whisper_trace.Workloads.by_name name)

(* ------------------------------------------------------------------ *)
(* Runner                                                             *)
(* ------------------------------------------------------------------ *)

let test_runner_defaults () =
  let ctx = Runner.create_ctx () in
  check_int "default events" 1_200_000 (Runner.events ctx);
  check_int "default baseline" 64 (Runner.baseline_kb ctx);
  Runner.set_events ctx 1000;
  check_int "settable" 1000 (Runner.events ctx)

let test_runner_memoizes_runs () =
  let ctx = small_ctx () in
  let a = Runner.run ctx (app "finagle-http") Runner.Baseline in
  let b = Runner.run ctx (app "finagle-http") Runner.Baseline in
  check_bool "same result object" true (a == b)

let test_runner_memoizes_profiles () =
  let ctx = small_ctx () in
  let a = Runner.profile ctx (app "finagle-http") in
  let b = Runner.profile ctx (app "finagle-http") in
  check_bool "same profile object" true (a == b);
  let c = Runner.profile ~baseline_kb:128 ctx (app "finagle-http") in
  check_bool "different key, different profile" true (not (a == c))

let test_runner_ideal_beats_baseline () =
  let ctx = small_ctx () in
  let base = Runner.run ctx (app "cassandra") Runner.Baseline in
  let ideal = Runner.run ctx (app "cassandra") Runner.Ideal in
  check_int "ideal never mispredicts" 0 ideal.Whisper_pipeline.Machine.mispredicts;
  check_bool "baseline does" true (base.Whisper_pipeline.Machine.mispredicts > 0);
  check_bool "ideal faster" true
    (ideal.Whisper_pipeline.Machine.cycles < base.Whisper_pipeline.Machine.cycles)

let test_runner_technique_names () =
  check_bool "names distinct" true
    (List.length
       (List.sort_uniq compare
          (List.map Runner.technique_name
             [
               Runner.Baseline;
               Runner.Ideal;
               Runner.Mtage_sc;
               Runner.Rombf 4;
               Runner.Rombf 8;
               Runner.Branchnet (Whisper_branchnet.Branchnet.Budget 8192);
               Runner.Branchnet Whisper_branchnet.Branchnet.Unlimited;
               Runner.Whisper Whisper_core.Config.default;
             ]))
    = 8)

let test_runner_whisper_runs () =
  let ctx = small_ctx () in
  let w =
    Runner.run ctx (app "finagle-http") (Runner.Whisper Whisper_core.Config.default)
  in
  check_bool "completes with sane mpki" true
    (Whisper_pipeline.Machine.mpki w < 50.0)

(* ------------------------------------------------------------------ *)
(* Report                                                             *)
(* ------------------------------------------------------------------ *)

let sample_report () =
  Report.make ~id:"figX" ~title:"sample" ~header:[ "app"; "a"; "b" ]
    [ ("x", [ 1.0; 2.0 ]); ("y", [ 3.0; 4.0 ]) ]

let test_report_mean () =
  let r = Report.with_mean (sample_report ()) in
  match List.rev r.Report.rows with
  | (label, [ ma; mb ]) :: _ ->
      Alcotest.(check string) "label" "Avg" label;
      Alcotest.(check (float 1e-9)) "mean a" 2.0 ma;
      Alcotest.(check (float 1e-9)) "mean b" 3.0 mb
  | _ -> Alcotest.fail "unexpected shape"

let test_report_csv () =
  let csv = Report.to_csv (sample_report ()) in
  check_bool "header" true (String.length csv > 0);
  check_bool "row" true
    (List.exists
       (fun line -> line = "x,1.0000,2.0000")
       (String.split_on_char '\n' csv))

(* ------------------------------------------------------------------ *)
(* Experiments (cheap ones only; the heavy ones run in the bench)     *)
(* ------------------------------------------------------------------ *)

let test_static_tables () =
  let t1 = Experiments.table1 () in
  check_int "12 apps" 12 (List.length t1.Report.rows);
  let t2 = Experiments.table2 () in
  check_bool "has parameters" true (List.length t2.Report.rows >= 8);
  let t3 = Experiments.table3 () in
  (* Table III: min/max/m/hash/ops/buffer (+ explore) *)
  check_bool "has whisper parameters" true (List.length t3.Report.rows >= 6)

let test_experiment_ids () =
  check_int "22 experiments" 22 (List.length Experiments.all_ids);
  List.iter
    (fun id ->
      check_bool id true (Experiments.by_id id <> None))
    Experiments.all_ids;
  check_bool "unknown" true (Experiments.by_id "fig99" = None)

let test_fig2_shape () =
  let ctx = small_ctx () in
  let r = Experiments.fig2 ctx in
  check_int "12 apps + mean" 13 (List.length r.Report.rows);
  List.iter
    (fun (_, vals) ->
      check_int "one column" 1 (List.length vals);
      check_bool "positive mpki" true (List.hd vals > 0.0))
    r.Report.rows

let () =
  Alcotest.run "whisper_sim"
    [
      ( "runner",
        Alcotest.
          [
            test_case "defaults" `Quick test_runner_defaults;
            test_case "memoizes runs" `Quick test_runner_memoizes_runs;
            test_case "memoizes profiles" `Quick test_runner_memoizes_profiles;
            test_case "ideal beats baseline" `Quick test_runner_ideal_beats_baseline;
            test_case "technique names" `Quick test_runner_technique_names;
            test_case "whisper runs" `Quick test_runner_whisper_runs;
          ] );
      ( "report",
        Alcotest.
          [
            test_case "mean row" `Quick test_report_mean;
            test_case "csv" `Quick test_report_csv;
          ] );
      ( "experiments",
        Alcotest.
          [
            test_case "static tables" `Quick test_static_tables;
            test_case "ids" `Quick test_experiment_ids;
            test_case "fig2 shape" `Quick test_fig2_shape;
          ] );
    ]
