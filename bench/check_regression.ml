(* Perf-regression and metrics-schema checker for CI.

   Modes:
     check_regression --kind search --baseline F --fresh F [--tolerance T]
                      [--floor NAME=V]...
     check_regression --kind replay --baseline F --fresh F [--tolerance T]
                      [--floor NAME=V]...
     check_regression --kind serve --baseline F --fresh F [--tolerance T]
                      [--floor NAME=V]...
         Compare a freshly generated BENCH_*.json against the committed
         baseline: every key speedup ratio must stay within the relative
         tolerance band (default 0.30 = fail on >30%% regression), the
         workload-shape equality fields must match when the two runs used
         the same events/smoke settings, the replay bench's measured
         telemetry overhead must stay under max(5%%, 5 ns/event), and the
         replay bench must report pipeline_identical (compiled arena
         strategies byte-identical to the closure path).

         Each --floor NAME=V (repeatable) additionally requires the fresh
         run's numeric field NAME to be >= V — an absolute floor,
         independent of the committed baseline, for fields like
         parallel_speedup_j2 where "no worse than baseline" is not the
         contract.  Floors named parallel_speedup_j<K> are skipped (with
         a note, not a failure) when the fresh run reports
         host_cores < K: a K-way scaling floor is unfalsifiable on a
         host that cannot run K domains in parallel.

         The serve kind's key fields are lower-is-better latencies
         (ns/sample, ms): the band inverts to a ceiling — fresh must stay
         under baseline * (1 + tolerance).  The per-sample ingest ceiling
         binds at any workload size; the per-window rescore ceiling only
         binds when baseline and fresh ran the same events/smoke
         configuration.  The bench must always report
         serve_generations_identical (interrupted + resumed scenario
         ledger byte-identical to the uninterrupted one).

     check_regression --metrics-valid FILE [--require COUNTER]
         Assert FILE is a schema-valid whisper-metrics document with
         nonzero event and span counts.  COUNTER (default machine.events)
         is the counter that must be present and nonzero — serve runs
         never touch the machine model, so their smoke gate passes
         --require serve.generations instead.

     check_regression --metrics-equal A B
         Assert two metrics documents agree on every value-metric
         (counters and histograms) after stripping the wall-time spans
         section — the -j1 vs -j4 determinism contract. *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.eprintf "FAIL: %s\n" s)
    fmt

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n" s) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  match Whisper_util.Sjson.parse (read_file path) with
  | Ok v -> v
  | Error e ->
      Printf.eprintf "FAIL: %s does not parse as JSON: %s\n" path e;
      exit 1

let num_field doc name =
  Option.bind (Whisper_util.Sjson.member name doc) Whisper_util.Sjson.num

let require_num path doc name =
  match num_field doc name with
  | Some v -> v
  | None ->
      Printf.eprintf "FAIL: %s is missing numeric field %S\n" path name;
      exit 1

(* ------------------------------------------------------------------ *)
(* BENCH_*.json comparison                                            *)
(* ------------------------------------------------------------------ *)

let ratio_fields = function
  | `Search ->
      [
        "scorer_speedup";
        "find_speedup";
        "search_speedup";
        "decide_speedup";
        "parallel_speedup";
      ]
  | `Replay ->
      [
        "replay_speedup";
        "whisper_runtime_speedup";
        "batch_cold_speedup";
        "batch_delivery_speedup";
        (* the compiled-pipeline ratios (sim_<technique>_speedup) are
           deliberately NOT in the baseline-relative band: same-process
           closure/arena ratios swing ~1.3-2.2x run to run on shared
           hosts, so their contract is the absolute --floor gates the
           workflows pass instead *)
      ]
  | `Serve -> []

(* Lower-is-better latency fields: the tolerance band inverts to a
   ceiling (fresh <= baseline * (1 + tolerance)).  Per-sample figures
   are size-normalized, so they gate across workload sizes; absolute
   per-window figures scale with the workload and only gate when
   baseline and fresh ran the same events/smoke configuration. *)
let ceiling_fields = function
  | `Serve -> [ "serve_ingest_ns_per_sample" ]
  | `Search | `Replay -> []

let sized_ceiling_fields = function
  | `Serve -> [ "serve_rescore_ms" ]
  | `Search | `Replay -> []

(* Workload-shape fields: a mismatch means the two runs did different
   work, which is a configuration error, not a perf regression — but
   only when both runs used the same events/smoke settings. *)
let equality_fields = function
  | `Search -> [ "hints"; "candidate_branches"; "candidate_formulas" ]
  | `Replay -> [ "batch_techniques" ]
  | `Serve -> [ "serve_generations"; "serve_rollouts"; "serve_final_hints" ]

let same_workload baseline fresh =
  num_field baseline "events" = num_field fresh "events"
  && Whisper_util.Sjson.member "smoke" baseline
     = Whisper_util.Sjson.member "smoke" fresh

(* Absolute floors (--floor NAME=V) on the fresh run.  A
   parallel_speedup_j<K> floor only binds when the fresh run's host
   actually had K cores to scale onto. *)
let floor_min_cores name =
  let prefix = "parallel_speedup_j" in
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    int_of_string_opt (String.sub name pl (String.length name - pl))
  else None

let check_floors ~fresh_path fresh floors =
  let host_cores =
    Option.map int_of_float (num_field fresh "host_cores")
  in
  List.iter
    (fun (name, floor_v) ->
      match (floor_min_cores name, host_cores) with
      | Some k, Some c when c < k ->
          note "%s floor skipped: host has %d cores (< %d)" name c k
      | _ ->
          let f = require_num fresh_path fresh name in
          if f < floor_v then
            fail "%s below floor: %.2f < %.2f" name f floor_v
          else note "%s: %.2f (floor %.2f) ok" name f floor_v)
    floors

let check_bool_field name fresh_path fresh =
  match Whisper_util.Sjson.member name fresh with
  | Some (Whisper_util.Sjson.Bool true) -> note "%s: true ok" name
  | _ -> fail "%s is not true in %s" name fresh_path

let check_parallel_identical fresh_path fresh =
  check_bool_field "parallel_identical" fresh_path fresh

let check_bench kind ~baseline_path ~fresh_path ~tolerance ~floors =
  let baseline = load baseline_path and fresh = load fresh_path in
  let same = same_workload baseline fresh in
  let ceilings =
    if same then ceiling_fields kind @ sized_ceiling_fields kind
    else ceiling_fields kind
  in
  List.iter
    (fun name ->
      let b = require_num baseline_path baseline name in
      let f = require_num fresh_path fresh name in
      let floor_v = b *. (1.0 -. tolerance) in
      if f < floor_v then
        fail "%s regressed: %.2f -> %.2f (tolerance floor %.2f)" name b f
          floor_v
      else note "%s: baseline %.2f, fresh %.2f (floor %.2f) ok" name b f floor_v)
    (ratio_fields kind);
  List.iter
    (fun name ->
      let b = require_num baseline_path baseline name in
      let f = require_num fresh_path fresh name in
      let ceiling = b *. (1.0 +. tolerance) in
      if f > ceiling then
        fail "%s regressed: %.2f -> %.2f (tolerance ceiling %.2f)" name b f
          ceiling
      else
        note "%s: baseline %.2f, fresh %.2f (ceiling %.2f) ok" name b f ceiling)
    ceilings;
  if (not same) && sized_ceiling_fields kind <> [] then
    note "events/smoke differ: skipping sized ceilings";
  if same then
    List.iter
      (fun name ->
        let b = require_num baseline_path baseline name in
        let f = require_num fresh_path fresh name in
        if b <> f then fail "%s changed: %.0f -> %.0f" name b f
        else note "%s: %.0f ok" name b)
      (equality_fields kind)
  else
    note "events/smoke differ between baseline and fresh: skipping equality fields";
  check_floors ~fresh_path fresh floors;
  match kind with
  | `Search -> check_parallel_identical fresh_path fresh
  | `Serve ->
      (* the serve bench replays its scripted scenario interrupted +
         resumed and asserts the ledgers byte-identical before emitting
         JSON; the field is required so a bench that silently stopped
         asserting fails the gate *)
      check_bool_field "serve_generations_identical" fresh_path fresh
  | `Replay -> (
      check_parallel_identical fresh_path fresh;
      (* the replay bench asserts byte-identity of the compiled arena
         strategies against the closure path for every technique before
         it emits JSON; the field is required so a bench that silently
         stopped asserting fails the gate *)
      check_bool_field "pipeline_identical" fresh_path fresh;
      (* Prefer the paired overhead statistic (median of interleaved
         per-round on-off differences) when the bench emits it: it
         cancels round-local drift that the difference-of-medians still
         absorbs.  Fall back to on - off for older artifacts. *)
      let overhead =
        match num_field fresh "telemetry_overhead_ns_per_event" with
        | Some d -> Some d
        | None -> (
            match
              (num_field fresh "telemetry_on_ns_per_event",
               num_field fresh "telemetry_off_ns_per_event")
            with
            | Some on_ns, Some off_ns -> Some (on_ns -. off_ns)
            | _ -> None)
      in
      match (overhead, num_field fresh "telemetry_off_ns_per_event") with
      | Some d, Some off_ns ->
          let budget = Float.max (0.05 *. off_ns) 5.0 in
          if d > budget then
            fail "telemetry overhead too high: %.2f ns/event (budget %.2f)" d
              budget
          else note "telemetry overhead: %.2f ns/event (budget %.2f) ok" d budget
      | _ -> fail "%s is missing the telemetry overhead fields" fresh_path)

(* ------------------------------------------------------------------ *)
(* metrics.json checks                                                *)
(* ------------------------------------------------------------------ *)

let check_metrics_valid ?(required = "machine.events") path =
  let doc = load path in
  let open Whisper_util.Sjson in
  (match member "schema" doc with
  | Some (Str "whisper-metrics") -> note "schema: whisper-metrics ok"
  | _ -> fail "%s: schema member is not \"whisper-metrics\"" path);
  (match Option.bind (member "version" doc) int with
  | Some v when v = Whisper_util.Telemetry.schema_version ->
      note "version: %d ok" v
  | Some v ->
      fail "%s: version %d, expected %d" path v
        Whisper_util.Telemetry.schema_version
  | None -> fail "%s: missing version" path);
  (match member "counters" doc with
  | Some (Obj members) ->
      if members = [] then fail "%s: counters object is empty" path
      else begin
        let nonzero =
          List.exists
            (fun (_, v) -> match num v with Some f -> f > 0.0 | None -> false)
            members
        in
        if nonzero then note "counters: %d, some nonzero ok" (List.length members)
        else fail "%s: every counter is zero" path
      end
  | _ -> fail "%s: missing counters object" path);
  (match Option.bind (member "counters" doc) (member required) with
  | Some v when num v > Some 0.0 -> note "%s nonzero ok" required
  | _ -> fail "%s: %s counter is missing or zero" path required);
  match Option.bind (member "spans" doc) (member "count") with
  | Some v when num v > Some 0.0 -> note "spans.count nonzero ok"
  | _ -> fail "%s: spans.count is missing or zero" path

let check_metrics_equal a_path b_path =
  let a = Whisper_util.Telemetry.strip_wall_time (load a_path) in
  let b = Whisper_util.Telemetry.strip_wall_time (load b_path) in
  let sa = Whisper_util.Sjson.to_string a in
  let sb = Whisper_util.Sjson.to_string b in
  if String.equal sa sb then
    note "value metrics identical (%d bytes compared)" (String.length sa)
  else
    fail
      "value metrics differ between %s and %s after stripping wall-time spans"
      a_path b_path

(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: check_regression --kind search|replay|serve --baseline F --fresh F \
     [--tolerance T] [--floor NAME=V]...\n\
    \       check_regression --metrics-valid FILE [--require COUNTER]\n\
    \       check_regression --metrics-equal A B";
  exit 2

let () =
  let args = Array.to_list Sys.argv in
  (match args with
  | _ :: "--metrics-valid" :: path :: [] -> check_metrics_valid path
  | [ _; "--metrics-valid"; path; "--require"; counter ] ->
      check_metrics_valid ~required:counter path
  | _ :: "--metrics-equal" :: a :: b :: [] -> check_metrics_equal a b
  | _ :: rest ->
      let opts = Hashtbl.create 8 in
      let floors = ref [] in
      let rec parse = function
        | [] -> ()
        | "--floor" :: spec :: rest -> (
            match String.index_opt spec '=' with
            | Some i -> (
                let name = String.sub spec 0 i in
                let v = String.sub spec (i + 1) (String.length spec - i - 1) in
                match float_of_string_opt v with
                | Some v when name <> "" ->
                    floors := (name, v) :: !floors;
                    parse rest
                | _ -> usage ())
            | None -> usage ())
        | key :: value :: rest when String.length key > 2 && String.sub key 0 2 = "--" ->
            Hashtbl.replace opts (String.sub key 2 (String.length key - 2)) value;
            parse rest
        | _ -> usage ()
      in
      parse rest;
      let get name = Hashtbl.find_opt opts name in
      let kind =
        match get "kind" with
        | Some "search" -> `Search
        | Some "replay" -> `Replay
        | Some "serve" -> `Serve
        | _ -> usage ()
      in
      let baseline_path = match get "baseline" with Some p -> p | None -> usage () in
      let fresh_path = match get "fresh" with Some p -> p | None -> usage () in
      let tolerance =
        match get "tolerance" with
        | Some t -> float_of_string t
        | None -> 0.30
      in
      check_bench kind ~baseline_path ~fresh_path ~tolerance
        ~floors:(List.rev !floors)
  | [] -> usage ());
  if !failures > 0 then begin
    Printf.eprintf "%d check(s) failed\n" !failures;
    exit 1
  end
  else print_endline "all checks passed"
