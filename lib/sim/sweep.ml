open Whisper_util
open Whisper_trace
module Tm = Telemetry

let m_items = Tm.counter "sweep.items"
let m_completed = Tm.counter "sweep.completed"
let m_resumed = Tm.counter "sweep.resumed"
let m_quarantined = Tm.counter "sweep.quarantined"
let m_crashes = Tm.counter "sweep.worker_crashes"
let m_hangs = Tm.counter "sweep.worker_hangs"
let m_restarts = Tm.counter "sweep.worker_restarts"
let m_spawns = Tm.counter "sweep.worker_spawns"
let m_fallback = Tm.counter "sweep.fallback_inprocess"
let m_recovered = Tm.counter "sweep.journal_recovered"
let m_dropped = Tm.counter "sweep.journal_dropped_bytes"
let m_verify_failed = Tm.counter "sweep.resume_verify_failed"

type app_ref = Catalog of string | Sampled of { seed : int; index : int }

let fleet ~seed ~n = List.init n (fun index -> Sampled { seed; index })

let app_of_ref = function
  | Sampled { seed; index } -> Workloads.sample ~seed ~index
  | Catalog name -> (
      match Workloads.by_name name with
      | Some c -> c
      | None ->
          Whisper_error.raise_error ~context:name Whisper_error.Manifest
            (Whisper_error.Malformed "unknown catalog application"))

let parse_technique = function
  | "tage-scl" -> Some Runner.Baseline
  | "ideal" -> Some Runner.Ideal
  | "mtage-sc" -> Some Runner.Mtage_sc
  | "4b-rombf" -> Some (Runner.Rombf 4)
  | "8b-rombf" -> Some (Runner.Rombf 8)
  | "whisper" -> Some (Runner.Whisper Whisper_core.Config.default)
  | _ -> None

let default_techniques = [ "tage-scl"; "8b-rombf"; "whisper" ]

type mode = [ `Process | `In_process ]

type config = {
  apps : app_ref list;
  techniques : string list;
  events : int;
  kb : int;
  state_dir : string;
  jobs : int;
  mode : mode;
  worker_argv : string array;
  faults : float;
  fault_seed : int;
  heartbeat_s : float;
  hang_timeout_s : float;
  max_worker_restarts : int;
  max_attempts : int;
  resume : bool;
  max_completions : int option;
}

let default ~state_dir =
  {
    apps = fleet ~seed:1 ~n:24;
    techniques = default_techniques;
    events = 60_000;
    kb = 64;
    state_dir;
    jobs = 1;
    mode = `Process;
    worker_argv = [| Sys.executable_name; "worker" |];
    faults = 0.0;
    fault_seed = 42;
    heartbeat_s = 0.25;
    hang_timeout_s = 5.0;
    max_worker_restarts = 4;
    max_attempts = 3;
    resume = false;
    max_completions = None;
  }

(* ------------------------------------------------------------------ *)
(* Item specs: the opaque blob a manifest item carries, sufficient    *)
(* for a worker process to re-execute the item from scratch           *)
(* ------------------------------------------------------------------ *)

let spec_version = 1

type spec = {
  app : app_ref;
  tech : string;
  train_inputs : int list;
  test_input : int;
  kb : int;
}

let encode_spec s =
  let w = Binio.Writer.create ~capacity:64 () in
  Binio.Writer.varint w spec_version;
  (match s.app with
  | Catalog n ->
      Binio.Writer.byte w 0;
      Binio.Writer.string w n
  | Sampled { seed; index } ->
      Binio.Writer.byte w 1;
      Binio.Writer.varint w seed;
      Binio.Writer.varint w index);
  Binio.Writer.string w s.tech;
  Binio.Writer.varint w (List.length s.train_inputs);
  List.iter (Binio.Writer.varint w) s.train_inputs;
  Binio.Writer.varint w s.test_input;
  Binio.Writer.varint w s.kb;
  Bytes.to_string (Binio.Writer.contents w)

let decode_spec_exn str =
  let r = Binio.Reader.create (Bytes.of_string str) in
  let voff = Binio.Reader.pos r in
  let v = Binio.Reader.varint r in
  if v <> spec_version then
    Whisper_error.raise_error ~offset:voff Whisper_error.Manifest
      (Whisper_error.Version_mismatch { got = v; expected = spec_version });
  let toff = Binio.Reader.pos r in
  let app =
    match Binio.Reader.byte r with
    | 0 -> Catalog (Binio.Reader.string r)
    | 1 ->
        let seed = Binio.Reader.varint r in
        let index = Binio.Reader.varint r in
        Sampled { seed; index }
    | t ->
        Whisper_error.raise_error ~offset:toff Whisper_error.Manifest
          (Whisper_error.Out_of_range (Printf.sprintf "app tag %d" t))
  in
  let tech = Binio.Reader.string r in
  let n = Binio.Reader.count r in
  let train_inputs = List.init n (fun _ -> Binio.Reader.varint r) in
  let test_input = Binio.Reader.varint r in
  let kb = Binio.Reader.varint r in
  if not (Binio.Reader.eof r) then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r)
      Whisper_error.Manifest Whisper_error.Trailing_bytes;
  { app; tech; train_inputs; test_input; kb }

let decode_spec str =
  Whisper_error.protect Whisper_error.Manifest (fun () -> decode_spec_exn str)

(* ------------------------------------------------------------------ *)
(* Planning                                                           *)
(* ------------------------------------------------------------------ *)

let technique_exn ~context name =
  match parse_technique name with
  | Some t -> t
  | None ->
      Whisper_error.raise_error ~context Whisper_error.Manifest
        (Whisper_error.Malformed (Printf.sprintf "unknown technique %S" name))

let plan cfg =
  let ctx = Runner.create_ctx ~events:cfg.events ~baseline_kb:cfg.kb () in
  let items =
    List.concat_map
      (fun aref ->
        let app = app_of_ref aref in
        List.map
          (fun tech_name ->
            let tech = technique_exn ~context:app.Workloads.name tech_name in
            let s =
              {
                app = aref;
                tech = tech_name;
                train_inputs = [ 0 ];
                test_input = 1;
                kb = cfg.kb;
              }
            in
            let key =
              Runner.run_key ctx app tech ~train_inputs:s.train_inputs
                ~test_input:s.test_input ~kb:s.kb
            in
            { Manifest.key; spec = encode_spec s })
          cfg.techniques)
      cfg.apps
  in
  let meta =
    [
      ("events", string_of_int cfg.events);
      ("kb", string_of_int cfg.kb);
      ("techniques", String.concat "," cfg.techniques);
      ("apps", string_of_int (List.length cfg.apps));
      ("train_inputs", "0");
      ("test_input", "1");
      (* the chaos configuration shapes the quarantine set, so changing
         it must invalidate (re-key) any existing journal *)
      ("faults", Printf.sprintf "%g" cfg.faults);
      ("fault_seed", string_of_int cfg.fault_seed);
    ]
  in
  Manifest.make ~meta (Array.of_list items)

(* ------------------------------------------------------------------ *)
(* Executing one item (shared by worker processes and in-process      *)
(* execution, so failure reasons — and hence journals and reports —   *)
(* are identical between the two modes)                               *)
(* ------------------------------------------------------------------ *)

let result_digest ~key r =
  Digest.to_hex (Digest.bytes (Result_cache.encode ~key r))

(* All attempts share one fault stream; [Fault.wrap] keys on
   ("task/" ^ key), matching the in-process batch driver's convention,
   and the hang sleep is kept far below any sane [hang_timeout_s] so an
   injected task-level hang exercises the retry path, never the
   process-level reaper (that is [Heartbeat_stall]'s job). *)
let make_fault cfg_faults cfg_seed =
  if cfg_faults > 0.0 then
    Some (Fault.create ~seed:cfg_seed ~hang_s:0.05 ~rate:cfg_faults ())
  else None

let run_item ctx ~key ~attempt ~fault spec_str =
  match decode_spec spec_str with
  | Error e -> Error e
  | Ok s ->
      let body () =
        let tech = technique_exn ~context:key s.tech in
        let app = app_of_ref s.app in
        let r =
          Runner.run ~train_inputs:s.train_inputs ~test_input:s.test_input
            ~baseline_kb:s.kb ctx app tech
        in
        result_digest ~key r
      in
      let task =
        match fault with
        | None -> body
        | Some f -> fun () -> Fault.wrap f ~key:("task/" ^ key) ~attempt body
      in
      Whisper_error.protect ~context:key Whisper_error.Task task

let poison_reason = function
  | `Crash -> "poison item: killed its worker on two attempts"
  | `Stall -> "poison item: hung its worker on two attempts"

(* ------------------------------------------------------------------ *)
(* Worker process entry point                                         *)
(* ------------------------------------------------------------------ *)

let worker_main () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let in_fd = Unix.stdin and out_fd = Unix.stdout in
  let rd = Ipc.reader in_fd in
  let die msg =
    prerr_endline ("whisper worker: " ^ msg);
    exit 2
  in
  let init =
    match Ipc.read_frame rd with
    | None -> die "eof before init"
    | Some b -> (
        match Ipc.decode_to_worker b with
        | Ok (Ipc.Init i) -> i
        | Ok _ -> die "expected init frame"
        | Error e -> die (Whisper_error.to_string e))
  in
  let ctx =
    Runner.create_ctx ~events:init.Ipc.events ~baseline_kb:init.Ipc.baseline_kb
      ?cache_dir:
        (if init.Ipc.cache_dir = "" then None else Some init.Ipc.cache_dir)
      ~replay:(if init.Ipc.replay = "closure" then `Closure else `Arena)
      ()
  in
  let fault = make_fault init.Ipc.faults init.Ipc.fault_seed in
  let wlock = Mutex.create () in
  let send m = Mutex.protect wlock (fun () -> Ipc.send_from_worker out_fd m) in
  send (Ipc.Hello { pid = Unix.getpid () });
  (* Heartbeats come from their own domain so a long simulation never
     silences them; [busy] holds the in-flight seq (-1 = idle, and idle
     workers stay silent — the supervisor's deadline only covers workers
     it has handed an item to). *)
  let busy = Atomic.make (-1) in
  let stop = Atomic.make false in
  let hb =
    Domain.spawn (fun () ->
        let period = Float.max 0.01 init.Ipc.heartbeat_s in
        while not (Atomic.get stop) do
          Unix.sleepf period;
          let seq = Atomic.get busy in
          if seq >= 0 && not (Atomic.get stop) then
            try send (Ipc.Heartbeat { seq })
            with Unix.Unix_error _ | Sys_error _ -> Atomic.set stop true
        done)
  in
  let rec loop () =
    match Ipc.read_frame rd with
    | None -> () (* supervisor is gone; nothing left to report to *)
    | Some b -> (
        match Ipc.decode_to_worker b with
        | Error _ | Ok (Ipc.Init _) | Ok Ipc.Shutdown -> ()
        | Ok (Ipc.Item { seq; attempt; key; spec }) -> (
            match
              Option.map
                (fun f -> Fault.worker_decision f ~key:("worker/" ^ key))
                fault
            with
            | Some `Crash ->
                (* injected kill -9: no unwind, no farewell frame *)
                Unix._exit 137
            | Some `Stall ->
                (* wedge silently: no heartbeat, no Finished.  The
                   supervisor's hang detection reaps us; the self-exit
                   below only bounds the damage if it never does. *)
                Unix.sleepf ((init.Ipc.hang_timeout_s *. 4.0) +. 1.0);
                Unix._exit 137
            | Some `None | None ->
                Atomic.set busy seq;
                let outcome =
                  match run_item ctx ~key ~attempt ~fault spec with
                  | Ok digest -> Ipc.Completed { digest }
                  | Error e ->
                      Ipc.Failed { reason = Whisper_error.to_string e }
                in
                Atomic.set busy (-1);
                (try send (Ipc.Finished { seq; key; outcome })
                 with Unix.Unix_error _ | Sys_error _ -> ());
                loop ()))
  in
  loop ();
  Atomic.set stop true;
  (try Domain.join hb with _ -> ());
  exit 0

(* ------------------------------------------------------------------ *)
(* Shared bookkeeping between the two execution engines               *)
(* ------------------------------------------------------------------ *)

type env = {
  cfg : config;
  ctx : Runner.ctx;  (** the aggregation ctx (clean cache reads) *)
  items : Manifest.item array;
  journal : Journal.t;
  quar : (string, string) Hashtbl.t;  (** key -> reason *)
  mutable n_completed : int;  (** journaled [Done] this run *)
  mutable interrupted : bool;
}

let journal_done env i digest =
  Journal.append env.journal
    { Journal.key = env.items.(i).Manifest.key; status = Journal.Done;
      detail = digest };
  env.n_completed <- env.n_completed + 1;
  Tm.incr m_completed;
  (match env.cfg.max_completions with
  | Some k when env.n_completed >= k -> env.interrupted <- true
  | _ -> ())

let note_quarantined env key reason =
  Hashtbl.replace env.quar key reason;
  Runner.note_quarantined env.ctx ~key
    (Whisper_error.make ~context:key Whisper_error.Worker
       (Whisper_error.Malformed reason));
  Tm.incr m_quarantined

let journal_quarantined env i reason =
  let key = env.items.(i).Manifest.key in
  if not (Hashtbl.mem env.quar key) then begin
    Journal.append env.journal
      { Journal.key; status = Journal.Quarantined; detail = reason };
    note_quarantined env key reason
  end

(* ------------------------------------------------------------------ *)
(* In-process execution: a sliding window of at most [jobs] items in   *)
(* flight on the shared domain pool, awaited — and journaled — in     *)
(* manifest order.  Also the graceful-degradation path when worker    *)
(* processes cannot be spawned.                                       *)
(* ------------------------------------------------------------------ *)

type item_outcome = Item_done of string | Item_quarantined of string

let exec_inprocess env ~fault i =
  let key = env.items.(i).Manifest.key in
  match
    Option.map (fun f -> Fault.worker_decision f ~key:("worker/" ^ key)) fault
  with
  | Some ((`Crash | `Stall) as v) ->
      (* process mode would kill a worker per attempt and quarantine at
         two strikes; the deterministic end state is the same, so reach
         it directly with the identical reason *)
      Item_quarantined (poison_reason v)
  | Some `None | None ->
      let rec attempt k =
        match run_item env.ctx ~key ~attempt:k ~fault env.items.(i).Manifest.spec with
        | Ok digest -> Item_done digest
        | Error e ->
            if k >= env.cfg.max_attempts then
              Item_quarantined (Whisper_error.to_string e)
            else attempt (k + 1)
      in
      attempt 1

let run_in_process env ~pending =
  let fault = make_fault env.cfg.faults env.cfg.fault_seed in
  let jobs = max 1 env.cfg.jobs in
  let pool = if jobs > 1 then Some (Pool.shared ~jobs) else None in
  let window = Queue.create () in
  let submit i =
    match pool with
    | None -> Queue.add (i, `Now (lazy (exec_inprocess env ~fault i))) window
    | Some p ->
        Queue.add (i, `Fut (Pool.submit p (fun () -> exec_inprocess env ~fault i)))
          window
  in
  while
    (not env.interrupted)
    && ((not (Queue.is_empty pending)) || not (Queue.is_empty window))
  do
    while (not (Queue.is_empty pending)) && Queue.length window < jobs do
      submit (Queue.pop pending)
    done;
    let i, slot = Queue.pop window in
    let outcome =
      match slot with
      | `Now (lazy o) -> o
      | `Fut f -> (
          match Pool.await f with
          | Ok o -> o
          | Error e ->
              Item_quarantined
                (Whisper_error.to_string
                   (Whisper_error.of_exn
                      ~context:env.items.(i).Manifest.key Whisper_error.Task e)))
    in
    match outcome with
    | Item_done digest -> journal_done env i digest
    | Item_quarantined reason -> journal_quarantined env i reason
  done

(* ------------------------------------------------------------------ *)
(* Process-mode supervision                                           *)
(* ------------------------------------------------------------------ *)

type wproc = {
  pid : int;
  to_fd : Unix.file_descr;
  rd : Ipc.reader;
  mutable hello : bool;
  mutable inflight : int option;  (** manifest index *)
  mutable last_msg : float;
}

type wslot = {
  mutable proc : wproc option;
  mutable deaths : int;  (** spawns consumed = deaths observed *)
  mutable next_spawn : float;
}

type sup_stats = {
  mutable crashes : int;
  mutable hangs : int;
  mutable restarts : int;
}

let spawn_worker cfg ~init_msg =
  let c_in_r, c_in_w = Unix.pipe () in
  let c_out_r, c_out_w = Unix.pipe () in
  (* our ends must not leak into sibling workers, or a dead worker's
     pipe never reads EOF while its siblings hold the write end open *)
  Unix.set_close_on_exec c_in_w;
  Unix.set_close_on_exec c_out_r;
  let argv = cfg.worker_argv in
  let pid =
    try Unix.create_process argv.(0) argv c_in_r c_out_w Unix.stderr
    with e ->
      Unix.close c_in_r;
      Unix.close c_in_w;
      Unix.close c_out_r;
      Unix.close c_out_w;
      raise e
  in
  Unix.close c_in_r;
  Unix.close c_out_w;
  (try Ipc.write_frame c_in_w (Ipc.encode_to_worker (Ipc.Init init_msg))
   with Unix.Unix_error _ | Sys_error _ -> ());
  {
    pid;
    to_fd = c_in_w;
    rd = Ipc.reader c_out_r;
    hello = false;
    inflight = None;
    last_msg = Unix.gettimeofday ();
  }

let supervise env ~pending stats =
  let cfg = env.cfg in
  let items = env.items in
  let n = Array.length items in
  let attempts = Array.make n 0 in
  let strikes = Array.make n 0 in
  let inflight = ref 0 in
  let init_msg =
    {
      Ipc.events = cfg.events;
      baseline_kb = cfg.kb;
      cache_dir = Option.value (Runner.cache_dir env.ctx) ~default:"";
      replay = "arena";
      faults = cfg.faults;
      fault_seed = cfg.fault_seed;
      heartbeat_s = cfg.heartbeat_s;
      hang_timeout_s = cfg.hang_timeout_s;
    }
  in
  let slots =
    Array.init (max 1 cfg.jobs) (fun _ ->
        { proc = None; deaths = 0; next_spawn = 0.0 })
  in
  let reap slot ~hung =
    match slot.proc with
    | None -> ()
    | Some w ->
        slot.proc <- None;
        if hung then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.close w.to_fd with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
        (try Unix.close (Ipc.reader_fd w.rd) with Unix.Unix_error _ -> ());
        if hung then begin
          stats.hangs <- stats.hangs + 1;
          Tm.incr m_hangs
        end
        else begin
          stats.crashes <- stats.crashes + 1;
          Tm.incr m_crashes
        end;
        (match w.inflight with
        | None -> ()
        | Some i ->
            w.inflight <- None;
            decr inflight;
            strikes.(i) <- strikes.(i) + 1;
            if strikes.(i) >= 2 then
              journal_quarantined env i
                (poison_reason (if hung then `Stall else `Crash))
            else Queue.add i pending);
        slot.deaths <- slot.deaths + 1;
        slot.next_spawn <-
          Unix.gettimeofday ()
          +. (0.05 *. Float.pow 2.0 (float_of_int (min 4 slot.deaths)))
  in
  let shutdown slot =
    match slot.proc with
    | None -> ()
    | Some w ->
        slot.proc <- None;
        (try Ipc.write_frame w.to_fd (Ipc.encode_to_worker Ipc.Shutdown)
         with Unix.Unix_error _ | Sys_error _ -> ());
        (try Unix.close w.to_fd with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ());
        (try Unix.close (Ipc.reader_fd w.rd) with Unix.Unix_error _ -> ())
  in
  let handle_frame w b =
    match Ipc.decode_from_worker b with
    | Error _ -> () (* garbage from a dying worker; EOF follows *)
    | Ok m -> (
        w.last_msg <- Unix.gettimeofday ();
        match m with
        | Ipc.Hello _ -> w.hello <- true
        | Ipc.Heartbeat _ -> ()
        | Ipc.Finished { seq; key = _; outcome } -> (
            match w.inflight with
            | Some i when i = seq -> (
                w.inflight <- None;
                decr inflight;
                match outcome with
                | Ipc.Completed { digest } -> journal_done env i digest
                | Ipc.Failed { reason } ->
                    if attempts.(i) >= cfg.max_attempts then
                      journal_quarantined env i reason
                    else Queue.add i pending)
            | _ -> ()))
  in
  let exhausted slot =
    slot.proc = None && slot.deaths > cfg.max_worker_restarts
  in
  let fellback = ref false in
  (try
     while
       (not env.interrupted)
       && not (Queue.is_empty pending && !inflight = 0)
     do
       let now = Unix.gettimeofday () in
       (* respawn slots whose backoff has elapsed *)
       Array.iter
         (fun slot ->
           if
             slot.proc = None
             && slot.deaths <= cfg.max_worker_restarts
             && now >= slot.next_spawn
           then
             match
               try Some (spawn_worker cfg ~init_msg)
               with Unix.Unix_error _ | Sys_error _ | Invalid_argument _ ->
                 None
             with
             | Some w ->
                 slot.proc <- Some w;
                 Tm.incr m_spawns;
                 if slot.deaths > 0 then begin
                   stats.restarts <- stats.restarts + 1;
                   Tm.incr m_restarts
                 end
             | None ->
                 (* fork itself failed: this slot is done for good *)
                 slot.deaths <- cfg.max_worker_restarts + 1)
         slots;
       if Array.for_all exhausted slots then raise Exit;
       (* hand items to idle workers *)
       Array.iter
         (fun slot ->
           match slot.proc with
           | Some w
             when w.hello && w.inflight = None
                  && not (Queue.is_empty pending) -> (
               let i = Queue.pop pending in
               attempts.(i) <- attempts.(i) + 1;
               w.inflight <- Some i;
               incr inflight;
               w.last_msg <- Unix.gettimeofday ();
               try
                 Ipc.write_frame w.to_fd
                   (Ipc.encode_to_worker
                      (Ipc.Item
                         {
                           seq = i;
                           attempt = attempts.(i);
                           key = items.(i).Manifest.key;
                           spec = items.(i).Manifest.spec;
                         }))
               with Unix.Unix_error _ | Sys_error _ ->
                 (* the worker died under us; EOF handling will reap it.
                    The dispatch never reached it, so no strike. *)
                 attempts.(i) <- attempts.(i) - 1;
                 w.inflight <- None;
                 decr inflight;
                 Queue.add i pending)
           | _ -> ())
         slots;
       (* wait for traffic *)
       let fds =
         Array.to_list slots
         |> List.filter_map (fun s ->
                Option.map (fun w -> Ipc.reader_fd w.rd) s.proc)
       in
       if fds = [] then Unix.sleepf 0.02
       else begin
         let readable =
           try
             let r, _, _ = Unix.select fds [] [] 0.05 in
             r
           with Unix.Unix_error (Unix.EINTR, _, _) -> []
         in
         Array.iter
           (fun slot ->
             match slot.proc with
             | Some w when List.mem (Ipc.reader_fd w.rd) readable -> (
                 match
                   try Ipc.feed w.rd with Unix.Unix_error _ -> `Eof
                 with
                 | `Eof -> reap slot ~hung:false
                 | `Data ->
                     let rec drain () =
                       match
                         try Ipc.next_frame w.rd
                         with Whisper_error.Error _ ->
                           (* oversized/corrupt length prefix: the
                              stream is unrecoverable *)
                           reap slot ~hung:false;
                           None
                       with
                       | Some b ->
                           handle_frame w b;
                           if slot.proc <> None then drain ()
                       | None -> ()
                     in
                     drain ())
             | _ -> ())
           slots
       end;
       (* hang detection: a worker with an item in flight owes us a
          heartbeat every [heartbeat_s]; prolonged silence means it is
          wedged, and only SIGKILL gets the slot back *)
       let now = Unix.gettimeofday () in
       Array.iter
         (fun slot ->
           match slot.proc with
           | Some w
             when w.inflight <> None
                  && now -. w.last_msg > cfg.hang_timeout_s ->
               reap slot ~hung:true
           | _ -> ())
         slots
     done
   with Exit ->
     fellback := true;
     Tm.incr m_fallback);
  Array.iter shutdown slots;
  if !fellback && not (Queue.is_empty pending) then
    run_in_process env ~pending;
  !fellback

(* ------------------------------------------------------------------ *)
(* Resume, aggregation, and the top-level driver                      *)
(* ------------------------------------------------------------------ *)

let mpki (r : Whisper_pipeline.Machine.result) =
  if r.Whisper_pipeline.Machine.instrs = 0 then Float.nan
  else
    1000.0
    *. float_of_int r.Whisper_pipeline.Machine.mispredicts
    /. float_of_int r.Whisper_pipeline.Machine.instrs

(* The report is rebuilt from scratch on every (re)run by pure lookups
   in manifest order: completed items come out of the shared result
   cache (or are recomputed to the identical values — Runner.run is a
   pure function of the key), quarantined ones render DEGRADED.  No
   crash/resume accounting enters the report, which is what makes it
   byte-identical across kills, resumes, modes and job counts. *)
let aggregate env =
  let cfg = env.cfg in
  let techniques =
    List.map (fun name -> (name, technique_exn ~context:"sweep" name))
      cfg.techniques
  in
  let rows =
    List.map
      (fun aref ->
        let app = app_of_ref aref in
        let vals =
          List.map
            (fun (_, tech) ->
              mpki
                (Runner.run ~train_inputs:[ 0 ] ~test_input:1
                   ~baseline_kb:cfg.kb env.ctx app tech))
            techniques
        in
        (app.Workloads.name, vals))
      cfg.apps
  in
  let notes =
    Hashtbl.fold (fun k reason acc -> (k, reason) :: acc) env.quar []
    |> List.sort compare
    |> List.map (fun (k, reason) -> Printf.sprintf "quarantined %s: %s" k reason)
  in
  Report.make ~id:"sweep"
    ~title:
      (Printf.sprintf "Fleet sweep: %d apps x %d techniques, branch MPKI"
         (List.length cfg.apps) (List.length techniques))
    ~header:("app" :: List.map fst techniques)
    ~notes rows
  |> Report.with_mean

let manifest_path cfg = Filename.concat cfg.state_dir "manifest.bin"
let journal_path cfg = Filename.concat cfg.state_dir "journal.bin"

type outcome = {
  report : Report.t option;
  manifest_id : string;
  total : int;
  completed : int;
  resumed : int;
  quarantined : int;
  worker_crashes : int;
  worker_hangs : int;
  worker_restarts : int;
  fellback : bool;
  journal_recovered : bool;
  journal_dropped_bytes : int;
  interrupted : bool;
}

(* A dead worker's pipe must surface as EPIPE/EOF, not a fatal signal. *)
let ignore_sigpipe () =
  if Sys.os_type = "Unix" then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    with Invalid_argument _ | Sys_error _ -> ()

let run cfg =
  ignore_sigpipe ();
  let cache_dir = Filename.concat cfg.state_dir "cache" in
  let ctx =
    Runner.create_ctx ~events:cfg.events ~baseline_kb:cfg.kb ~cache_dir ()
  in
  let manifest = plan cfg in
  let mid = Manifest.id manifest in
  let total = Array.length manifest.Manifest.items in
  Tm.add m_items total;
  let fresh () =
    Manifest.save manifest ~path:(manifest_path cfg);
    (Journal.create ~path:(journal_path cfg) ~manifest_id:mid, [], false, 0)
  in
  let journal, prior_entries, recovered, dropped =
    if not cfg.resume then fresh ()
    else
      match Manifest.load ~path:(manifest_path cfg) with
      | Ok m when Manifest.id m = mid -> (
          match
            Journal.open_existing ~path:(journal_path cfg) ~manifest_id:mid
          with
          | Ok (j, r) ->
              (j, r.Journal.entries, true, r.Journal.dropped_bytes)
          | Error _ -> fresh ())
      | Ok _ | Error _ -> fresh ()
  in
  if recovered then Tm.incr m_recovered;
  if dropped > 0 then Tm.add m_dropped dropped;
  let env =
    {
      cfg;
      ctx;
      items = manifest.Manifest.items;
      journal;
      quar = Hashtbl.create 16;
      n_completed = 0;
      interrupted = false;
    }
  in
  (* Replay the journal: the last record per key wins (an item can be
     re-journaled if a crash landed between its cache store and its
     append).  Done entries are only trusted if the result cache still
     holds the exact result they recorded — anything else re-runs. *)
  let prior = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace prior e.Journal.key e) prior_entries;
  let verify_cache = Result_cache.create ~dir:cache_dir () in
  let resumed = ref 0 in
  let pending = Queue.create () in
  Array.iteri
    (fun i it ->
      match Hashtbl.find_opt prior it.Manifest.key with
      | Some { Journal.status = Journal.Done; detail = digest; _ } -> (
          match Result_cache.find verify_cache ~key:it.Manifest.key with
          | Some r when result_digest ~key:it.Manifest.key r = digest ->
              incr resumed;
              Tm.incr m_resumed
          | Some _ | None ->
              Tm.incr m_verify_failed;
              Queue.add i pending)
      | Some { Journal.status = Journal.Quarantined; detail = reason; _ } ->
          note_quarantined env it.Manifest.key reason
      | None -> Queue.add i pending)
    manifest.Manifest.items;
  let stats = { crashes = 0; hangs = 0; restarts = 0 } in
  let fellback =
    match cfg.mode with
    | `In_process ->
        run_in_process env ~pending;
        false
    | `Process -> supervise env ~pending stats
  in
  let report = if env.interrupted then None else Some (aggregate env) in
  Journal.close journal;
  {
    report;
    manifest_id = mid;
    total;
    completed = env.n_completed;
    resumed = !resumed;
    quarantined = Hashtbl.length env.quar;
    worker_crashes = stats.crashes;
    worker_hangs = stats.hangs;
    worker_restarts = stats.restarts;
    fellback;
    journal_recovered = recovered;
    journal_dropped_bytes = dropped;
    interrupted = env.interrupted;
  }
