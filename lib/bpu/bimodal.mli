(** PC-indexed table of 2-bit saturating counters — the base predictor of
    TAGE and the simplest stand-alone dynamic baseline. *)

val make : log_entries:int -> Predictor.t

(** Internal access used by composite predictors. *)
type table

val create_table : log_entries:int -> table
val predict_t : table -> pc:int -> bool
val update_t : table -> pc:int -> taken:bool -> unit
val bits : table -> int
