open Whisper_util
open Whisper_pipeline

(* v2: Machine's fixed-point cycle accounting (PR 9) changes the
   rounding of every cycle/stall float, so v1 entries must not satisfy
   lookups against the new accounting. *)
let format_version = 2
let default_dir = "_whisper_cache"
let magic_tag = "WRSC"

type counters = { write_failures : int; corrupt_dropped : int }

type t = {
  cache_dir : string;
  corrupt : (key:string -> bytes -> bytes) option;
  n_write_failures : int Atomic.t;
  n_corrupt_dropped : int Atomic.t;
}

let m_loads = Telemetry.counter "result_cache.loads"
let m_stores = Telemetry.counter "result_cache.stores"
let m_corrupt = Telemetry.counter "result_cache.corrupt_dropped"
let m_write_failures = Telemetry.counter "result_cache.write_failures"

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?corrupt ?(dir = default_dir) () =
  mkdir_p dir;
  {
    cache_dir = dir;
    corrupt;
    n_write_failures = Atomic.make 0;
    n_corrupt_dropped = Atomic.make 0;
  }

let dir t = t.cache_dir

let counters t =
  {
    write_failures = Atomic.get t.n_write_failures;
    corrupt_dropped = Atomic.get t.n_corrupt_dropped;
  }

let path t ~key =
  Filename.concat t.cache_dir (Digest.to_hex (Digest.string key) ^ ".res")

let encode ~key (r : Machine.result) =
  let w = Binio.Writer.create () in
  Binio.Writer.magic w magic_tag;
  Binio.Writer.varint w format_version;
  Binio.Writer.string w key;
  Binio.Writer.float64 w r.Machine.cycles;
  Binio.Writer.varint w r.instrs;
  Binio.Writer.varint w r.branches;
  Binio.Writer.varint w r.mispredicts;
  Binio.Writer.float64 w r.misp_stall;
  Binio.Writer.float64 w r.fe_stall;
  Binio.Writer.float64 w r.btb_stall;
  Binio.Writer.varint w r.l1i_misses;
  Binio.Writer.varint w r.exposed_misses;
  let int_array a =
    Binio.Writer.varint w (Array.length a);
    Array.iter (Binio.Writer.varint w) a
  in
  int_array r.seg_mispredicts;
  int_array r.seg_instrs;
  Binio.Writer.contents w

let decode_exn ~key b =
  let r = Binio.Reader.create b in
  Binio.Reader.magic r magic_tag;
  let voff = Binio.Reader.pos r in
  let v = Binio.Reader.varint r in
  if v <> format_version then
    Whisper_error.raise_error ~offset:voff ~context:key
      Whisper_error.Result_cache
      (Whisper_error.Version_mismatch { got = v; expected = format_version });
  let koff = Binio.Reader.pos r in
  let k = Binio.Reader.string r in
  if k <> key then
    Whisper_error.raise_error ~offset:koff ~context:key
      Whisper_error.Result_cache Whisper_error.Key_mismatch;
  let cycles = Binio.Reader.float64 r in
  let instrs = Binio.Reader.varint r in
  let branches = Binio.Reader.varint r in
  let mispredicts = Binio.Reader.varint r in
  let misp_stall = Binio.Reader.float64 r in
  let fe_stall = Binio.Reader.float64 r in
  let btb_stall = Binio.Reader.float64 r in
  let l1i_misses = Binio.Reader.varint r in
  let exposed_misses = Binio.Reader.varint r in
  let int_array () =
    let n = Binio.Reader.count r in
    Array.init n (fun _ -> Binio.Reader.varint r)
  in
  let seg_mispredicts = int_array () in
  let seg_instrs = int_array () in
  if not (Binio.Reader.eof r) then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r) ~context:key
      Whisper_error.Result_cache Whisper_error.Trailing_bytes;
  {
    Machine.cycles;
    instrs;
    branches;
    mispredicts;
    misp_stall;
    fe_stall;
    btb_stall;
    l1i_misses;
    exposed_misses;
    seg_mispredicts;
    seg_instrs;
  }

let decode ~key b =
  Whisper_error.protect ~context:key Whisper_error.Result_cache (fun () ->
      decode_exn ~key b)

let find t ~key =
  let file = path t ~key in
  if not (Sys.file_exists file) then None
  else
    let read () =
      let b = Binio.of_file file in
      match t.corrupt with None -> b | Some f -> f ~key b
    in
    match
      Whisper_error.protect ~context:key Whisper_error.Result_cache (fun () ->
          decode_exn ~key (read ()))
    with
    | Ok r ->
        Telemetry.incr m_loads;
        Some r
    | Error _ ->
        (* corrupt/stale entries (torn write, bit rot, version bump) are
           dropped and counted, and the caller recomputes *)
        (try Sys.remove file with Sys_error _ -> ());
        Atomic.incr t.n_corrupt_dropped;
        Telemetry.incr m_corrupt;
        None

(* Best-effort: the cache is an optimization, so a failing write (read-only
   or bogus cache directory, disk full) must not abort a simulation that
   already succeeded — but it is counted, so a fleet run can report how
   much of its work failed to persist. *)
let store t ~key r =
  let file = path t ~key in
  (* pid + domain: sweep worker processes share one cache directory, and
     every process numbers its domains from 0 — the pid keeps two workers
     storing the same key from interleaving writes into one temp file *)
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" file (Unix.getpid ()) (Domain.self () :> int)
  in
  try
    Binio.to_file tmp (encode ~key r);
    Sys.rename tmp file;
    Telemetry.incr m_stores
  with Sys_error _ | Unix.Unix_error _ ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Atomic.incr t.n_write_failures;
    Telemetry.incr m_write_failures
