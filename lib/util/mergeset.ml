(* Sorted insertion into a flat byte buffer.  Chunk ingestion offers a
   few hundred records per branch and the cap matches profile
   collection's per-branch sample bound, so the O(n) memmove per insert
   is noise against decoding the chunk itself — and the flat buffer is
   exactly the canonical encoding [contents] must produce, so there is
   no separate materialization step to keep consistent. *)

type t = {
  stride : int;
  cap : int;
  mutable buf : Bytes.t;  (* length = multiple of stride, grown 2x *)
  mutable n : int;  (* records kept, sorted ascending *)
  mutable seen : int;
}

let create ~stride ~cap =
  if stride <= 0 then invalid_arg "Mergeset.create: stride must be positive";
  if cap < 0 then invalid_arg "Mergeset.create: negative cap";
  { stride; cap; buf = Bytes.create (stride * min 8 (max cap 1)); n = 0; seen = 0 }

let stride t = t.stride
let cap t = t.cap
let length t = t.n
let seen t = t.seen

(* Lexicographic compare of the record at [buf.(off)] against kept
   record [slot]. *)
let compare_at t buf ~off ~slot =
  let base = slot * t.stride in
  let rec go i =
    if i = t.stride then 0
    else
      let c =
        Char.compare (Bytes.get buf (off + i)) (Bytes.get t.buf (base + i))
      in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* First kept slot whose record is > the candidate: insertion point
   that places equal records after their existing copies (any choice
   yields the same bytes; this one keeps the blit suffix minimal in the
   common append case). *)
let insertion_slot t buf ~off =
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_at t buf ~off ~slot:mid < 0 then hi := mid else lo := mid + 1
  done;
  !lo

let ensure_capacity t records =
  let need = records * t.stride in
  if Bytes.length t.buf < need then begin
    let cap' = max need (2 * Bytes.length t.buf) in
    let nb = Bytes.create cap' in
    Bytes.blit t.buf 0 nb 0 (t.n * t.stride);
    t.buf <- nb
  end

let add t buf ~off =
  if off < 0 || off + t.stride > Bytes.length buf then
    invalid_arg "Mergeset.add: record out of bounds";
  t.seen <- t.seen + 1;
  if t.cap = 0 then ()
  else begin
    let slot = insertion_slot t buf ~off in
    if t.n < t.cap then begin
      ensure_capacity t (t.n + 1);
      let base = slot * t.stride in
      Bytes.blit t.buf base t.buf (base + t.stride) ((t.n - slot) * t.stride);
      Bytes.blit buf off t.buf base t.stride;
      t.n <- t.n + 1
    end
    else if slot < t.n then begin
      (* full: the candidate displaces the largest kept record *)
      let base = slot * t.stride in
      Bytes.blit t.buf base t.buf (base + t.stride)
        ((t.n - slot - 1) * t.stride);
      Bytes.blit buf off t.buf base t.stride
    end
    (* slot = n: candidate >= every kept record — dropped *)
  end

let add_all t ~other =
  if other.stride <> t.stride then invalid_arg "Mergeset.add_all: stride mismatch";
  (* records are read out of [other]'s buffer directly; [other == t] is
     fine too because each insert reads one record before mutating *)
  let snapshot = if other == t then Bytes.sub other.buf 0 (other.n * other.stride) else other.buf in
  for i = 0 to other.n - 1 do
    add t snapshot ~off:(i * t.stride)
  done;
  ()

let iter t ~f =
  for i = 0 to t.n - 1 do
    f t.buf ~off:(i * t.stride)
  done

let contents t = Bytes.sub t.buf 0 (t.n * t.stride)

let equal a b =
  a.stride = b.stride && a.n = b.n
  && Bytes.equal (contents a) (contents b)
