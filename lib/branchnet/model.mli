(** Per-branch neural predictor — the BranchNet baseline's model
    (Zangeneh et al., MICRO 2020), reproduced as a small multi-layer
    perceptron.

    The original uses per-branch convolutional networks over one-hot
    (PC, direction) history; the surrogate consumes the raw directions of
    the recent history window as +-1 inputs (packed into feature bytes).
    What the reproduction preserves is BranchNet's defining properties
    (paper §II-D, VI): high accuracy on branches whose behaviour is a
    learnable function of recent raw history, and a per-branch metadata /
    training cost that bounds how many branches can be covered. *)

type t

val create :
  ?hidden:int -> ?n_lengths:int -> seed:int -> unit -> t
(** Fresh model; [n_lengths] is the number of 8-bit feature bytes
    (defaults: 8 hidden units, 8 feature bytes). *)

val n_inputs : t -> int

val forward : t -> features:int array -> float
(** Raw output (pre-threshold); [features] holds the packed input bytes. *)

val predict : t -> features:int array -> bool
(** [forward >= 0]. *)

val train_sgd :
  t -> xs:int array array -> ys:bool array -> epochs:int -> lr:float -> unit
(** Mini-batch-free SGD over the sample set. *)

val storage_bytes : t -> int
(** Metadata footprint of the deployed (8-bit quantized) model. *)
