(** In-production execution profiles (paper §IV, steps 1–2).

    A profile combines what Intel PT and LBR give the paper's offline
    analysis: per-static-branch execution / direction / baseline-predictor
    misprediction counts, plus, for the {e candidate} branches (those with
    enough mispredictions to be worth optimizing), a bounded set of
    execution samples.  Each sample captures the branch's raw 8-bit recent
    history, the 8-bit folded hash at every candidate history length, the
    resolved direction, and whether the baseline predictor was correct —
    everything Algorithm 1, ROMBF training and the BranchNet baseline
    consume. *)

type branch_stat = {
  mutable execs : int;
  mutable taken_cnt : int;
  mutable mispred : int;
}

type t

val lengths : t -> int array
(** The history-length series the hashes were collected at. *)

val n_lengths : t -> int

val total_instrs : t -> int
val total_branches : t -> int
val total_mispred : t -> int

val stat : t -> pc:int -> branch_stat option
val iter_stats : t -> f:(pc:int -> branch_stat -> unit) -> unit
val n_static_branches : t -> int

val mpki : t -> float
(** Baseline mispredictions per kilo-instruction over the profiled run. *)

val candidates : t -> int array
(** PCs that carry samples, sorted by decreasing misprediction count. *)

val n_samples : t -> pc:int -> int

val iter_samples :
  t ->
  pc:int ->
  f:
    (raw8:int ->
    raw56:int ->
    hash:(int -> int) ->
    taken:bool ->
    correct:bool ->
    unit) ->
  unit
(** [raw8]/[raw56] are the last 8 / 56 raw outcomes (newest in bit 0);
    [hash len_idx] reads the folded hash recorded for that series index.
    The callback must not retain [hash] beyond the call. *)

type raw_view = private {
  buf : Bytes.t;
  n : int;  (** number of sample records *)
  record_bytes : int;  (** stride between consecutive records in [buf] *)
  hash_off : int;
      (** record offset of the hash bytes; byte [hash_off + i] is the
          folded hash for series index [i] *)
  flags_off : int;
      (** record offset of the flags byte: bit 0 = taken, bit 1 =
          baseline predictor correct *)
}
(** Zero-copy window into one branch's packed sample records: record [r]
    spans [buf] bytes [r * record_bytes .. (r+1) * record_bytes - 1].
    Lets hot consumers decode just the fields they need instead of paying
    {!iter_samples}'s full per-record reconstruction.  The window aliases
    the profile's own buffer — treat it as read-only, and drop it before
    adding further samples for the same branch (growth may reallocate). *)

val raw_view : t -> pc:int -> raw_view option
(** [None] when the branch carries no samples. *)

(** {1 Collection} *)

val collect :
  ?max_candidates:int ->
  ?min_mispred:int ->
  ?max_samples:int ->
  ?chunk:int ->
  lengths:int array ->
  events:int ->
  make_source:(unit -> Branch.source) ->
  make_predictor:(unit -> pc:int -> taken:bool -> bool) ->
  unit ->
  t
(** Two-pass collection over [events] branch events.  [make_source] and
    [make_predictor] must return {e fresh} deterministic instances on each
    call (the second pass replays the same trace against a fresh baseline
    predictor, standing in for a second production profiling window).
    The predictor closure returns whether its prediction was correct — the
    information LBR exposes.

    Defaults: [max_candidates] 2048, [min_mispred] 8, [max_samples] 512
    per branch, [chunk] 8. *)

val collect_arena :
  ?max_candidates:int ->
  ?min_mispred:int ->
  ?max_samples:int ->
  ?chunk:int ->
  lengths:int array ->
  events:int ->
  arena:Arena.t ->
  make_predictor:(unit -> pc:int -> taken:bool -> bool) ->
  unit ->
  t
(** Same two-pass collection replayed from a packed {!Arena} instead of a
    closure source: both passes walk the arena by index, so the stream is
    generated zero times here (and zero bytes are allocated per event).
    Shares its implementation with {!collect} — for equal streams the two
    produce byte-identical profiles.
    @raise Invalid_argument if [events] exceeds the arena's length. *)

(** {1 Merging (paper Fig. 18)} *)

val merge : t list -> t
(** Pool stats and samples of profiles collected from different inputs.
    All profiles must share the same length series.
    @raise Invalid_argument on an empty list or mismatched series. *)

(** {1 Direct construction (tests, synthetic profiles)} *)

val create_empty : ?chunk:int -> lengths:int array -> unit -> t

val record_event :
  t -> pc:int -> taken:bool -> correct:bool -> instrs:int -> unit
(** Account one dynamic branch into the aggregate statistics. *)

val restore_stat :
  t -> pc:int -> execs:int -> taken_cnt:int -> mispred:int -> unit
(** Set a branch's aggregate counters directly (deserialization). *)

val set_totals : t -> instrs:int -> branches:int -> mispred:int -> unit
(** Set the run-level totals directly (deserialization). *)

val add_sample :
  ?raw56:int ->
  t ->
  pc:int ->
  raw8:int ->
  hashes:int array ->
  taken:bool ->
  correct:bool ->
  unit
(** Append a sample for [pc]; [hashes] must have [n_lengths t] entries in
    \[0, 255\]. *)
