(** Executable application model: turns a static {!Cfg.t} plus a
    {!Workloads.config} into an infinite, deterministic branch-event
    stream.

    The model walks functions selected by a Zipf popularity process with
    temporal re-execution (hot loops), visiting each block of the invoked
    function in order and resolving every block's branch with its
    ground-truth behaviour against the shared global history.

    The [input] parameter reproduces the paper's workload/input variation
    (§V-A, Figs. 17–18): different inputs share the static program and the
    branch behaviours but perturb function popularity and the parameters
    of data-dependent branches, so a profile from one input transfers
    imperfectly to another. *)

type t

val create :
  ?lengths:int array ->
  ?chunk:int ->
  cfg:Cfg.t ->
  config:Workloads.config ->
  input:int ->
  unit ->
  t
(** [lengths] defaults to {!Workloads.lengths}; [chunk] to 8. *)

val source : t -> Branch.source
(** The event stream.  Each call advances the model by one block. *)

val ctx : t -> Behavior.ctx
(** The live evaluation context (exposed for tests and for profilers that
    want ground-truth hashes without recomputing them). *)

val cfg : t -> Cfg.t

val events_generated : t -> int
