open Whisper_trace

type result = {
  cycles : float;
  instrs : int;
  branches : int;
  mispredicts : int;
  misp_stall : float;
  fe_stall : float;
  btb_stall : float;
  l1i_misses : int;
  exposed_misses : int;
  seg_mispredicts : int array;
  seg_instrs : int array;
}

(* A quarantined (degraded) run is marked by NaN cycles with zeroed
   integer counters; derived metrics must poison to NaN rather than
   read the zeros as a perfect score. *)
let degraded r = Float.is_nan r.cycles

let ipc r =
  if degraded r then Float.nan
  else if r.cycles = 0.0 then 0.0
  else float_of_int r.instrs /. r.cycles

let mpki r =
  if degraded r then Float.nan
  else if r.instrs = 0 then 0.0
  else 1000.0 *. float_of_int r.mispredicts /. float_of_int r.instrs

let speedup_pct ~baseline ~improved =
  Whisper_util.Stats.speedup_pct ~baseline:baseline.cycles
    ~improved:improved.cycles

let run ?(params = Params.default) ?(segments = 10) ~events ~source ~predict () =
  let l1i =
    Cache.create ~bytes:params.Params.l1i_bytes ~assoc:params.l1i_assoc
      ~line_bytes:params.line_bytes ()
  in
  let l2 =
    Cache.create ~bytes:params.l2_bytes ~assoc:params.l2_assoc
      ~line_bytes:params.line_bytes ()
  in
  let l3 =
    Cache.create ~bytes:params.l3_bytes ~assoc:params.l3_assoc
      ~line_bytes:params.line_bytes ()
  in
  let btb =
    Cache.create ~entries:params.btb_entries ~assoc:params.btb_assoc
      ~line_bytes:4 ()
  in
  let cycles = ref 0.0 in
  let misp_stall = ref 0.0 in
  let fe_stall = ref 0.0 in
  let btb_stall = ref 0.0 in
  let instrs = ref 0 in
  let mispredicts = ref 0 in
  let l1i_misses = ref 0 in
  let exposed = ref 0 in
  (* FDIP lead: how many cycles ahead of fetch the prefetcher runs.  The
     lead is bounded by the FTQ's depth and collapses on resteers. *)
  let lead = ref 0.0 in
  let lead_cap =
    float_of_int params.ftq_entries *. params.ftq_cycles_per_entry
  in
  let width = float_of_int params.width in
  let seg_mispredicts = Array.make segments 0 in
  let seg_instrs = Array.make segments 0 in
  let seg_size = max 1 ((events + segments - 1) / segments) in
  for ev = 0 to events - 1 do
    let seg = min (segments - 1) (ev / seg_size) in
    let e = source () in
    instrs := !instrs + e.Branch.instrs;
    seg_instrs.(seg) <- seg_instrs.(seg) + e.Branch.instrs;
    (* instruction fetch for the block's lines *)
    let first_line = e.Branch.pc - ((e.Branch.instrs - 1) * Cfg.instr_bytes) in
    let last = e.Branch.pc in
    let line = ref (first_line - (first_line mod params.line_bytes)) in
    while !line <= last do
      if not (Cache.access l1i !line) then begin
        incr l1i_misses;
        let latency =
          if Cache.access l2 !line then float_of_int params.l2_latency
          else if Cache.access l3 !line then float_of_int params.l3_latency
          else float_of_int params.mem_latency
        in
        (* FDIP hides the part of the miss covered by its lead *)
        let exposed_cycles = Float.max 0.0 (latency -. !lead) in
        if exposed_cycles > 0.0 then incr exposed;
        fe_stall := !fe_stall +. exposed_cycles;
        cycles := !cycles +. exposed_cycles
      end;
      line := !line + params.line_bytes
    done;
    (* execute the block: fetch-width-limited frontend plus the averaged
       backend latency (Params.backend_cpi) *)
    let base =
      float_of_int e.Branch.instrs
      *. ((1.0 /. width) +. params.backend_cpi)
    in
    cycles := !cycles +. base;
    lead := Float.min lead_cap (!lead +. base);
    (* branch resolution *)
    let correct = predict e in
    if not correct then begin
      incr mispredicts;
      seg_mispredicts.(seg) <- seg_mispredicts.(seg) + 1;
      let p = float_of_int params.resteer_penalty in
      cycles := !cycles +. p;
      misp_stall := !misp_stall +. p;
      lead := 0.0
    end
    else if e.Branch.taken && not (Cache.access btb e.Branch.pc) then begin
      (* taken branch with unknown target: decode-resteer bubble *)
      let p = float_of_int params.btb_miss_penalty in
      cycles := !cycles +. p;
      btb_stall := !btb_stall +. p;
      lead := Float.max 0.0 (!lead -. p)
    end
  done;
  {
    cycles = !cycles;
    instrs = !instrs;
    branches = events;
    mispredicts = !mispredicts;
    misp_stall = !misp_stall;
    fe_stall = !fe_stall;
    btb_stall = !btb_stall;
    l1i_misses = !l1i_misses;
    exposed_misses = !exposed;
    seg_mispredicts;
    seg_instrs;
  }
