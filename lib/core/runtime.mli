(** Whisper's run-time prediction path (paper §IV, Fig. 10 step 3).

    Wraps a baseline dynamic predictor.  On every event the runner first
    "executes" the brhint instructions injected into the event's basic
    block (filling the hint buffer), then predicts the block's branch:

    - hint-buffer hit → predict with the hint (bias or Boolean formula
      over the hashed history at the hint's length) and {e spectate} the
      baseline, so it neither trains nor allocates for this branch;
    - miss → baseline predict + train.

    The hashed histories are the same folded registers the hardware
    already maintains for TAGE (§III-A), kept here in a mirror updated
    with every resolved outcome.

    This module is the {e compiled} implementation of that protocol: the
    injection plan is lowered once at {!create} into a CSR block→hints
    index ({!Inject.Packed}), a dense packed truth-table bank (bias
    hints folded in as constant tables), a sentinel-int hint buffer
    whose payloads are plan-entry indices, and folded-history registers
    for only the lengths the plan reads.  The per-event path performs no
    allocation and no hashing beyond the buffer probe.  {!Reference}
    retains the original interpretive implementation; the two must agree
    result-for-result and counter-for-counter on every trace — the
    differential tests and the replay bench assert exactly that. *)

type t

val create :
  Config.t -> baseline:Whisper_bpu.Predictor.t -> plan:Inject.t -> t
(** Compiles [plan] (CSR index, truth-table bank, fold slots) and
    allocates the run-time state.  O(plan size), amortized over the
    whole replay. *)

val exec : t -> Whisper_trace.Branch.event -> bool
(** Process one event end-to-end (hint execution, prediction, training,
    history update).  Returns whether the prediction was correct. *)

val exec_at : t -> block:int -> pc:int -> taken:bool -> bool
(** [exec] on unboxed event fields — never materializes a
    [Branch.event] record, and allocates nothing. *)

val exec_arena : t -> arena:Whisper_trace.Arena.t -> int -> bool
(** [exec_arena t ~arena i] is {!exec_at} on the arena's [i]th event —
    the batched replay path wired through [Machine.run_arena], reading
    event fields straight out of the arena's packed columns. *)

val predictor_name : t -> string

val hinted_predictions : t -> int
(** Predictions served by hints (hint-buffer hits with a non-Dynamic
    bias). *)

val hinted_mispredictions : t -> int

val baseline_predictions : t -> int

val buffer : t -> Hint_buffer.t

val buffer_stats : t -> int * int * int
(** [(insertions, hits, misses)] of the hint buffer — same shape as
    {!Reference.buffer_stats} for differential comparison. *)

(** The original interpretive runtime, retained verbatim as the
    differential oracle: per-event [Inject.hints_at] Hashtbl lookups, a
    lazily filled byte truth-table cache, an option-returning [Lru] hint
    buffer, and folded updates over every configured length.  Must be
    observationally identical to the compiled path (same correctness
    verdicts, same counters, same buffer statistics); kept out of the
    replay hot path. *)
module Reference : sig
  type t

  val create :
    Config.t -> baseline:Whisper_bpu.Predictor.t -> plan:Inject.t -> t

  val exec : t -> Whisper_trace.Branch.event -> bool
  val exec_at : t -> block:int -> pc:int -> taken:bool -> bool
  val predictor_name : t -> string
  val hinted_predictions : t -> int
  val hinted_mispredictions : t -> int
  val baseline_predictions : t -> int
  val buffer_stats : t -> int * int * int
end
