type tables = {
  keys : int array;
  taken : int array;  (* parallel to keys *)
  not_taken : int array;
  t_total : int;
  nt_total : int;
}

let tables_of_counts ~taken ~not_taken =
  if Array.length taken <> Array.length not_taken then
    invalid_arg "Algorithm1.tables_of_counts";
  let keys = ref [] in
  Array.iteri
    (fun k t -> if t > 0 || not_taken.(k) > 0 then keys := k :: !keys)
    taken;
  let keys = Array.of_list (List.rev !keys) in
  {
    keys;
    taken = Array.map (fun k -> taken.(k)) keys;
    not_taken = Array.map (fun k -> not_taken.(k)) keys;
    t_total = Array.fold_left ( + ) 0 taken;
    nt_total = Array.fold_left ( + ) 0 not_taken;
  }

let tables_total t = (t.t_total, t.nt_total)
let distinct_keys t = Array.length t.keys

let mispredictions t ~truth =
  let m = ref 0 in
  for i = 0 to Array.length t.keys - 1 do
    if Whisper_formula.Tree.eval_tt truth t.keys.(i) then
      (* formula predicts taken: not-taken samples mispredict *)
      m := !m + t.not_taken.(i)
    else m := !m + t.taken.(i)
  done;
  !m

let always_mispredictions t = t.nt_total
let never_mispredictions t = t.t_total

let find t ~candidates ~truth_of =
  if Array.length candidates = 0 then invalid_arg "Algorithm1.find";
  let best_f = ref candidates.(0) in
  let best_m = ref max_int in
  Array.iter
    (fun f ->
      let m = mispredictions t ~truth:(truth_of f) in
      if m < !best_m then begin
        best_m := m;
        best_f := f
      end)
    candidates;
  (!best_f, !best_m)
