(** Misprediction classification (paper §II-C, Fig. 3).

    Each dynamic branch is identified by its {e substream} — the
    combination of the branch PC and the recent global history window.
    Applying the classic 3C cache methodology to substreams, a baseline
    misprediction is:

    - {b Compulsory}: the predictor sees the static branch for the first
      time (the paper's definition);
    - {b Capacity}: the branch is known but its substream's reuse
      distance exceeds what the predictor's budget can retain — it fell
      out of a fully-associative LRU of [capacity_entries] substreams
      (or was never retained);
    - {b Conflict}: the substream is inside the fully-associative budget
      but was evicted from a set-associative table of the same capacity;
    - {b Conditional-on-data}: the substream is resident and recent, yet
      the branch still mispredicted — its direction is not a function of
      history. *)

type cls = Compulsory | Capacity | Conflict | Conditional_on_data

type counts = {
  compulsory : int;
  capacity : int;
  conflict : int;
  conditional : int;
}

val total : counts -> int
val fraction : counts -> cls -> float

type t

val create :
  ?history_len:int -> ?assoc:int -> capacity_entries:int -> unit -> t
(** [capacity_entries] is the number of substreams the modelled predictor
    can retain (≈ its tagged-entry count).  Defaults: history window 64,
    associativity 4. *)

val note : t -> pc:int -> taken:bool -> mispredicted:bool -> cls option
(** Feed every dynamic branch in trace order; returns the class when the
    branch was mispredicted. *)

val counts : t -> counts

val pp_counts : Format.formatter -> counts -> unit
