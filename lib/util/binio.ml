module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(capacity = 4096) () = { buf = Bytes.create (max 16 capacity); len = 0 }

  let ensure t n =
    if t.len + n > Bytes.length t.buf then begin
      let cap = max (2 * Bytes.length t.buf) (t.len + n) in
      let nb = Bytes.create cap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  let byte t b =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (b land 0xFF));
    t.len <- t.len + 1

  let varint t v =
    if v < 0 then invalid_arg "Binio.varint: negative";
    let rec go v =
      if v < 0x80 then byte t v
      else begin
        byte t (0x80 lor (v land 0x7F));
        go (v lsr 7)
      end
    in
    go v

  let zigzag t v = varint t ((v lsl 1) lxor (v asr 62))

  let bytes t b =
    varint t (Bytes.length b);
    ensure t (Bytes.length b);
    Bytes.blit b 0 t.buf t.len (Bytes.length b);
    t.len <- t.len + Bytes.length b

  let string t s = bytes t (Bytes.of_string s)

  let float64 t f =
    let v = Int64.bits_of_float f in
    for i = 0 to 7 do
      byte t (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
    done

  let magic t s = String.iter (fun c -> byte t (Char.code c)) s

  let contents t = Bytes.sub t.buf 0 t.len
  let length t = t.len
end

module Reader = struct
  type t = { buf : bytes; mutable p : int }

  let create buf = { buf; p = 0 }

  let err ?offset kind = Whisper_error.raise_error ?offset Whisper_error.Binio kind

  let byte t =
    if t.p >= Bytes.length t.buf then err ~offset:t.p Whisper_error.Truncated;
    let b = Char.code (Bytes.get t.buf t.p) in
    t.p <- t.p + 1;
    b

  (* A 62-bit non-negative int is at most 9 LEB128 bytes, the last of
     which carries 6 payload bits and no continuation.  A malicious
     stream of continuation bytes is rejected (with the offset of the
     offending byte) before any shift reaches undefined [lsl] range or
     flips the result negative. *)
  let varint t =
    let rec go shift acc =
      let off = t.p in
      let b = byte t in
      if shift = 56 && b > 0x3F then err ~offset:off Whisper_error.Varint_overflow;
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let zigzag t =
    let v = varint t in
    (v lsr 1) lxor (-(v land 1))

  let remaining t = Bytes.length t.buf - t.p

  let count ?(per_elem = 1) t =
    let off = t.p in
    let n = varint t in
    if per_elem > 0 && n > remaining t / per_elem then
      err ~offset:off (Whisper_error.Count_overflow { count = n; remaining = remaining t });
    n

  let bytes t =
    let off = t.p in
    let n = varint t in
    if n > remaining t then err ~offset:off Whisper_error.Truncated;
    let b = Bytes.sub t.buf t.p n in
    t.p <- t.p + n;
    b

  let string t = Bytes.to_string (bytes t)

  let float64 t =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte t)) (8 * i))
    done;
    Int64.float_of_bits !v

  let magic t s =
    let off = t.p in
    String.iter
      (fun c ->
        if byte t <> Char.code c then
          err ~offset:off (Whisper_error.Bad_magic s))
      s

  let eof t = t.p >= Bytes.length t.buf
  let pos t = t.p
end

let to_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc data)

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)
