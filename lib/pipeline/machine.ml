open Whisper_trace

type result = {
  cycles : float;
  instrs : int;
  branches : int;
  mispredicts : int;
  misp_stall : float;
  fe_stall : float;
  btb_stall : float;
  l1i_misses : int;
  exposed_misses : int;
  seg_mispredicts : int array;
  seg_instrs : int array;
}

(* A quarantined (degraded) run is marked by NaN cycles with zeroed
   integer counters; derived metrics must poison to NaN rather than
   read the zeros as a perfect score. *)
let degraded r = Float.is_nan r.cycles

let ipc r =
  if degraded r then Float.nan
  else if r.cycles = 0.0 then 0.0
  else float_of_int r.instrs /. r.cycles

let mpki r =
  if degraded r then Float.nan
  else if r.instrs = 0 then 0.0
  else 1000.0 *. float_of_int r.mispredicts /. float_of_int r.instrs

let speedup_pct ~baseline ~improved =
  Whisper_util.Stats.speedup_pct ~baseline:baseline.cycles
    ~improved:improved.cycles

(* The closure path ([run]) and the packed-arena path ([run_arena]) feed
   the same accounting core, so their results are byte-identical by
   construction; only the per-event fetch differs (allocating source
   closure vs direct indexed reads). *)
type feed =
  | From_source of Branch.source * (Branch.event -> bool)
  | From_arena of Arena.t * (int -> bool)

(* Telemetry is flushed once per run, never per event, so the replay hot
   loop stays allocation- and instrumentation-free (the <5% overhead
   contract is measured by bench's telemetry section). *)
let m_runs = Whisper_util.Telemetry.counter "machine.runs"
let m_events = Whisper_util.Telemetry.counter "machine.events"
let m_instrs = Whisper_util.Telemetry.counter "machine.instrs"
let m_mispredicts = Whisper_util.Telemetry.counter "machine.mispredicts"
let m_l1i_misses = Whisper_util.Telemetry.counter "machine.l1i_misses"
let h_events_per_run = Whisper_util.Telemetry.histogram "machine.events_per_run"

let run_impl ~(params : Params.t) ~segments ~events feed =
  let l1i =
    Cache.create ~bytes:params.Params.l1i_bytes ~assoc:params.l1i_assoc
      ~line_bytes:params.line_bytes ()
  in
  let l2 =
    Cache.create ~bytes:params.l2_bytes ~assoc:params.l2_assoc
      ~line_bytes:params.line_bytes ()
  in
  let l3 =
    Cache.create ~bytes:params.l3_bytes ~assoc:params.l3_assoc
      ~line_bytes:params.line_bytes ()
  in
  let btb =
    Cache.create ~entries:params.btb_entries ~assoc:params.btb_assoc
      ~line_bytes:4 ()
  in
  let cycles = ref 0.0 in
  let misp_stall = ref 0.0 in
  let fe_stall = ref 0.0 in
  let btb_stall = ref 0.0 in
  let instrs = ref 0 in
  let mispredicts = ref 0 in
  let l1i_misses = ref 0 in
  let exposed = ref 0 in
  (* FDIP lead: how many cycles ahead of fetch the prefetcher runs.  The
     lead is bounded by the FTQ's depth and collapses on resteers. *)
  let lead = ref 0.0 in
  let lead_cap =
    float_of_int params.ftq_entries *. params.ftq_cycles_per_entry
  in
  let width = float_of_int params.width in
  let seg_mispredicts = Array.make segments 0 in
  let seg_instrs = Array.make segments 0 in
  (* Per-event constants, hoisted out of the hot loop. *)
  let line_bytes = params.line_bytes in
  let l2_lat = float_of_int params.l2_latency in
  let l3_lat = float_of_int params.l3_latency in
  let mem_lat = float_of_int params.mem_latency in
  let resteer_p = float_of_int params.resteer_penalty in
  let btb_p = float_of_int params.btb_miss_penalty in
  let cpi = (1.0 /. width) +. params.backend_cpi in
  let account ~seg ~pc ~instrs:n_instrs ~taken ~correct =
    instrs := !instrs + n_instrs;
    seg_instrs.(seg) <- seg_instrs.(seg) + n_instrs;
    (* instruction fetch for the block's lines *)
    let first_line = pc - ((n_instrs - 1) * Cfg.instr_bytes) in
    let line = ref (first_line - (first_line mod line_bytes)) in
    while !line <= pc do
      if not (Cache.access l1i !line) then begin
        incr l1i_misses;
        let latency =
          if Cache.access l2 !line then l2_lat
          else if Cache.access l3 !line then l3_lat
          else mem_lat
        in
        (* FDIP hides the part of the miss covered by its lead *)
        let exposed_cycles = Float.max 0.0 (latency -. !lead) in
        if exposed_cycles > 0.0 then incr exposed;
        fe_stall := !fe_stall +. exposed_cycles;
        cycles := !cycles +. exposed_cycles
      end;
      line := !line + line_bytes
    done;
    (* execute the block: fetch-width-limited frontend plus the averaged
       backend latency (Params.backend_cpi) *)
    let base = float_of_int n_instrs *. cpi in
    cycles := !cycles +. base;
    lead := Float.min lead_cap (!lead +. base);
    (* branch resolution *)
    if not correct then begin
      incr mispredicts;
      seg_mispredicts.(seg) <- seg_mispredicts.(seg) + 1;
      cycles := !cycles +. resteer_p;
      misp_stall := !misp_stall +. resteer_p;
      lead := 0.0
    end
    else if taken && not (Cache.access btb pc) then begin
      (* taken branch with unknown target: decode-resteer bubble *)
      cycles := !cycles +. btb_p;
      btb_stall := !btb_stall +. btb_p;
      lead := Float.max 0.0 (!lead -. btb_p)
    end
  in
  (* Balanced segment partition: segment [seg] covers event indices
     [seg*events/segments, (seg+1)*events/segments), so segment sizes
     differ by at most one and small runs (events < segments, events = 0)
     spread evenly instead of front-loading with trailing empty segments.
     When [segments] divides [events] this is the same equal split as
     before.  The outer loop also hoists the per-event segment division
     the previous implementation paid. *)
  for seg = 0 to segments - 1 do
    let lo = seg * events / segments in
    let hi = (seg + 1) * events / segments in
    for ev = lo to hi - 1 do
      match feed with
      | From_source (source, predict) ->
          ignore ev;
          let e = source () in
          account ~seg ~pc:e.Branch.pc ~instrs:e.Branch.instrs
            ~taken:e.Branch.taken ~correct:(predict e)
      | From_arena (a, predict) ->
          account ~seg ~pc:(Arena.pc a ev) ~instrs:(Arena.instrs a ev)
            ~taken:(Arena.taken a ev) ~correct:(predict ev)
    done
  done;
  if Whisper_util.Telemetry.enabled () then begin
    Whisper_util.Telemetry.incr m_runs;
    Whisper_util.Telemetry.add m_events events;
    Whisper_util.Telemetry.add m_instrs !instrs;
    Whisper_util.Telemetry.add m_mispredicts !mispredicts;
    Whisper_util.Telemetry.add m_l1i_misses !l1i_misses;
    Whisper_util.Telemetry.observe h_events_per_run events
  end;
  {
    cycles = !cycles;
    instrs = !instrs;
    branches = events;
    mispredicts = !mispredicts;
    misp_stall = !misp_stall;
    fe_stall = !fe_stall;
    btb_stall = !btb_stall;
    l1i_misses = !l1i_misses;
    exposed_misses = !exposed;
    seg_mispredicts;
    seg_instrs;
  }

let run ?(params = Params.default) ?(segments = 10) ~events ~source ~predict ()
    =
  Whisper_util.Telemetry.span "machine.run" (fun () ->
      run_impl ~params ~segments ~events (From_source (source, predict)))

let run_arena ?(params = Params.default) ?(segments = 10) ~events ~arena
    ~predict () =
  if events > Arena.length arena then
    invalid_arg "Machine.run_arena: events exceeds arena length";
  Whisper_util.Telemetry.span "machine.run_arena" (fun () ->
      run_impl ~params ~segments ~events (From_arena (arena, predict)))
