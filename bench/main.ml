(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks of the hot primitives (formula
   evaluation, history hashing, predictor lookups, Algorithm 1, the
   randomized trainer, codec and timing-model throughput).

   Part 2 — regeneration of every table and figure of the paper's
   evaluation (one entry per table/figure; see DESIGN.md §4), printing the
   same rows/series the paper reports.

   Part 3 — ablation benches for the design choices DESIGN.md calls out:
   history-hash operation (XOR/AND/OR) and hint-buffer size.

   Environment:
     WHISPER_EVENTS      branch events per simulation   (default 800_000)
     WHISPER_SKIP_MICRO  set to skip part 1
     WHISPER_ONLY        comma-separated experiment ids for part 2
     WHISPER_JOBS        worker domains for part 2's independent
                         simulations (default: recommended domain count)
     WHISPER_CACHE_DIR   enable the persistent result cache rooted at
                         this directory (default: no cache, so figure
                         timings always measure real simulations)
     WHISPER_FAULTS      chaos mode: per-work-item fault probability
                         (default 0.0; failing items are retried, then
                         reported as DEGRADED rows)
     WHISPER_FAULT_SEED  seed of the fault injector (default 42) *)

open Bechamel
open Toolkit
open Whisper_trace

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let events = env_int "WHISPER_EVENTS" 800_000
let jobs = env_int "WHISPER_JOBS" (Whisper_util.Pool.default_jobs ())
let cache_dir = Sys.getenv_opt "WHISPER_CACHE_DIR"

let faults =
  match Sys.getenv_opt "WHISPER_FAULTS" with
  | Some v -> float_of_string v
  | None -> 0.0

let fault_seed = env_int "WHISPER_FAULT_SEED" 42

(* ------------------------------------------------------------------ *)
(* Part 1: micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let rng = Whisper_util.Rng.create 42 in
  let tree = Whisper_formula.Tree.of_id ~leaves:8 0x2F31 in
  let tt = Whisper_formula.Tree.truth_table tree in
  let hist = Whisper_util.History.create ~depth:2048 in
  let folded =
    Array.map
      (fun len -> Whisper_util.History.Folded.create ~len ~chunk:8)
      Workloads.lengths
  in
  let tage = Whisper_bpu.Tage_scl.predictor Whisper_bpu.Sizes.standard in
  let app = Option.get (Workloads.by_name "cassandra") in
  let cfg = Workloads.build_cfg app in
  let model = App_model.create ~cfg ~config:app ~input:0 () in
  let src = App_model.source model in
  let buf = Whisper_core.Hint_buffer.create ~size:32 in
  let hint =
    Whisper_core.Brhint.make ~len_idx:5 ~formula_id:123
      ~bias:Whisper_core.Brhint.Formula ~pc_offset:40
  in
  (* small Algorithm 1 instance *)
  let taken = Array.init 256 (fun i -> if i land 3 = 0 then 5 else 0) in
  let not_taken = Array.init 256 (fun i -> if i land 3 = 1 then 3 else 0) in
  let tables = Whisper_core.Algorithm1.tables_of_counts ~taken ~not_taken in
  let rnd = Whisper_core.Randomized.create Whisper_core.Config.default in
  let cands = Whisper_core.Randomized.candidates rnd in
  let counter = ref 0 in
  [
    Test.make ~name:"formula-eval (tree walk)"
      (Staged.stage (fun () ->
           ignore (Whisper_formula.Tree.eval tree (!counter land 0xFF));
           incr counter));
    Test.make ~name:"formula-eval (truth table)"
      (Staged.stage (fun () ->
           ignore (Whisper_formula.Tree.eval_tt tt (!counter land 0xFF));
           incr counter));
    Test.make ~name:"truth-table build (256 entries)"
      (Staged.stage (fun () -> ignore (Whisper_formula.Tree.truth_table tree)));
    Test.make ~name:"folded-history push (16 lengths)"
      (Staged.stage (fun () ->
           Whisper_util.History.push_all hist folded (Whisper_util.Rng.bool rng)));
    Test.make ~name:"tage-scl predict+train"
      (Staged.stage (fun () ->
           let pc = 0x40_0000 + (!counter land 0xFFF) * 4 in
           incr counter;
           let p = tage.Whisper_bpu.Predictor.predict ~pc in
           tage.train ~pc ~taken:(p || !counter land 7 = 0)));
    Test.make ~name:"app-model event generation"
      (Staged.stage (fun () -> ignore (src ())));
    Test.make ~name:"algorithm1 (32 candidate formulas)"
      (Staged.stage (fun () ->
           ignore
             (Whisper_core.Algorithm1.find tables ~candidates:cands
                ~truth_of:(Whisper_core.Randomized.truth_of rnd))));
    Test.make ~name:"hint-buffer insert+probe"
      (Staged.stage (fun () ->
           Whisper_core.Hint_buffer.insert buf ~branch_pc:(!counter land 63) hint;
           ignore
             (Whisper_core.Hint_buffer.probe buf ~branch_pc:(!counter land 63));
           incr counter));
    Test.make ~name:"brhint encode+decode"
      (Staged.stage (fun () ->
           ignore (Whisper_core.Brhint.decode (Whisper_core.Brhint.encode hint))));
  ]

let run_micro () =
  let tests = micro_tests () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg_b =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  Printf.printf "== micro-benchmarks ==\n%!";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg_b [ Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ v ] -> v
            | _ -> nan
          in
          Printf.printf "  %-36s %10.1f ns/op\n%!" (Test.Elt.name elt) ns)
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* Part 3: ablation benches                                           *)
(* ------------------------------------------------------------------ *)

(* History-hash operation ablation (paper §III-A: XOR chosen over AND/OR).
   Measures how well the best formula can separate taken from not-taken
   hashed histories when the fold uses each operation, over a profiling
   trace of one application. *)
let hash_ablation () =
  Printf.printf "== ablation: history-hash operation (postgres) ==\n%!";
  let app = Option.get (Workloads.by_name "postgres") in
  let cfg = Workloads.build_cfg app in
  let lengths = [| 16; 55; 204; 540 |] in
  let n_events = min events 300_000 in
  (* collect raw windows for the hottest branches *)
  let src = App_model.source (App_model.create ~cfg ~config:app ~input:0 ()) in
  let hist = Whisper_util.History.create ~depth:2048 in
  let per_branch = Hashtbl.create 512 in
  for _ = 1 to n_events do
    let e = src () in
    (match Cfg.block_of_pc cfg e.Branch.pc with
    | Some b
      when (match (Cfg.behavior cfg b.Cfg.id).Behavior.kind with
           | Behavior.Hashed_formula _ | Behavior.Short_formula _ -> true
           | _ -> false)
           && Hashtbl.length per_branch < 64
           || Hashtbl.mem per_branch e.Branch.pc ->
        let window =
          Array.map
            (fun len ->
              Array.init len (fun j -> Whisper_util.History.get hist j))
            lengths
        in
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt per_branch e.Branch.pc)
        in
        if List.length prev < 256 then
          Hashtbl.replace per_branch e.Branch.pc
            ((window, e.Branch.taken) :: prev)
    | _ -> ());
    Whisper_util.History.push hist e.Branch.taken
  done;
  let fold op bits =
    let acc = ref (match op with `And -> 0xFF | _ -> 0) in
    Array.iteri
      (fun j b ->
        let pos = j mod 8 in
        match op with
        | `Xor -> acc := !acc lxor (b lsl pos)
        | `Or -> acc := !acc lor (b lsl pos)
        | `And ->
            (* AND-fold: clear the position's bit when any chunk has 0 *)
            if b = 0 then acc := !acc land lnot (1 lsl pos))
      bits;
    !acc land 0xFF
  in
  let rnd = Whisper_core.Randomized.create Whisper_core.Config.default in
  let cands = Whisper_core.Randomized.candidates rnd in
  List.iter
    (fun op ->
      let total = ref 0 and mis = ref 0 in
      Hashtbl.iter
        (fun _ samples ->
          Array.iteri
            (fun li _ ->
              let taken = Array.make 256 0 and not_taken = Array.make 256 0 in
              List.iter
                (fun (window, tk) ->
                  let k = fold op window.(li) in
                  if tk then taken.(k) <- taken.(k) + 1
                  else not_taken.(k) <- not_taken.(k) + 1)
                samples;
              let tables =
                Whisper_core.Algorithm1.tables_of_counts ~taken ~not_taken
              in
              if Whisper_core.Algorithm1.distinct_keys tables > 0 then begin
                let _, m =
                  Whisper_core.Algorithm1.find tables ~candidates:cands
                    ~truth_of:(Whisper_core.Randomized.truth_of rnd)
                in
                let t, nt = Whisper_core.Algorithm1.tables_total tables in
                total := !total + t + nt;
                mis := !mis + m
              end)
            lengths)
        per_branch;
      Printf.printf "  fold=%-4s best-formula accuracy %.1f%%\n%!"
        (match op with `Xor -> "xor" | `And -> "and" | `Or -> "or")
        (100.0 *. (1.0 -. (float_of_int !mis /. float_of_int (max 1 !total)))))
    [ `Xor; `And; `Or ]

let hintbuf_ablation ctx =
  Printf.printf "== ablation: hint-buffer size (cassandra) ==\n%!";
  let app = Option.get (Workloads.by_name "cassandra") in
  let base = Whisper_sim.Runner.run ctx app Whisper_sim.Runner.Baseline in
  List.iter
    (fun size ->
      let config = { Whisper_core.Config.default with hint_buffer_size = size } in
      let w = Whisper_sim.Runner.run ctx app (Whisper_sim.Runner.Whisper config) in
      Printf.printf "  %3d entries: reduction %.1f%%\n%!" size
        (Whisper_util.Stats.reduction_pct
           ~baseline:(float_of_int base.Whisper_pipeline.Machine.mispredicts)
           ~improved:(float_of_int w.Whisper_pipeline.Machine.mispredicts)))
    [ 4; 16; 32; 128 ]

(* ------------------------------------------------------------------ *)

let () =
  if Sys.getenv_opt "WHISPER_SKIP_MICRO" = None then run_micro ();
  Printf.printf
    "\n== paper tables & figures (%d events per run, %d jobs%s) ==\n\n%!"
    events jobs
    (match cache_dir with
    | Some dir -> Printf.sprintf ", cache %s" dir
    | None -> ", no cache");
  let ctx =
    Whisper_sim.Runner.create_ctx ~events ~jobs ?cache_dir ~faults ~fault_seed
      ()
  in
  let only =
    match Sys.getenv_opt "WHISPER_ONLY" with
    | Some s -> String.split_on_char ',' s
    | None -> Whisper_sim.Experiments.all_ids
  in
  List.iter
    (fun id ->
      match Whisper_sim.Experiments.by_id id with
      | None -> Printf.eprintf "unknown experiment id %s\n" id
      | Some f ->
          let before = Whisper_sim.Runner.stats ctx in
          let fbefore = Whisper_sim.Runner.fault_summary ctx in
          let t0 = Unix.gettimeofday () in
          let report = f ctx in
          let wall_s = Unix.gettimeofday () -. t0 in
          let after = Whisper_sim.Runner.stats ctx in
          let report =
            Whisper_sim.Report.with_timing
              {
                Whisper_sim.Report.wall_s;
                sims = after.Whisper_sim.Runner.sims - before.Whisper_sim.Runner.sims;
                sim_seconds =
                  after.Whisper_sim.Runner.sim_seconds
                  -. before.Whisper_sim.Runner.sim_seconds;
                cache_hits =
                  after.Whisper_sim.Runner.cache_hits
                  - before.Whisper_sim.Runner.cache_hits;
                cache_misses =
                  after.Whisper_sim.Runner.cache_misses
                  - before.Whisper_sim.Runner.cache_misses;
              }
              report
          in
          let report =
            if faults <= 0.0 then report
            else
              let fa = Whisper_sim.Runner.fault_summary ctx in
              let open Whisper_sim.Report in
              with_faults
                {
                  injected = fa.injected - fbefore.injected;
                  observed = fa.observed - fbefore.observed;
                  retries = fa.retries - fbefore.retries;
                  quarantined = fa.quarantined - fbefore.quarantined;
                  cache_write_failures =
                    fa.cache_write_failures - fbefore.cache_write_failures;
                  cache_corrupt_dropped =
                    fa.cache_corrupt_dropped - fbefore.cache_corrupt_dropped;
                }
                report
          in
          Whisper_sim.Report.print report;
          Printf.printf "\n%!")
    only;
  hash_ablation ();
  hintbuf_ablation ctx
