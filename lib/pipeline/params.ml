type t = {
  freq_ghz : float;
  width : int;
  ftq_entries : int;
  rob_entries : int;
  rs_entries : int;
  btb_entries : int;
  btb_assoc : int;
  l1i_bytes : int;
  l1i_assoc : int;
  l2_bytes : int;
  l2_assoc : int;
  l3_bytes : int;
  l3_assoc : int;
  line_bytes : int;
  l2_latency : int;
  l3_latency : int;
  mem_latency : int;
  resteer_penalty : int;
  btb_miss_penalty : int;
  ftq_cycles_per_entry : float;
  backend_cpi : float;
}

let default =
  {
    freq_ghz = 3.2;
    width = 6;
    ftq_entries = 24;
    rob_entries = 224;
    rs_entries = 97;
    btb_entries = 8192;
    btb_assoc = 4;
    l1i_bytes = 32 * 1024;
    l1i_assoc = 8;
    l2_bytes = 1024 * 1024;
    l2_assoc = 16;
    l3_bytes = 10 * 1024 * 1024;
    l3_assoc = 20;
    line_bytes = 64;
    l2_latency = 12;
    l3_latency = 40;
    mem_latency = 200;
    resteer_penalty = 14;
    btb_miss_penalty = 8;
    ftq_cycles_per_entry = 2.0;
    backend_cpi = 0.28;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%.1fGHz %d-wide OOO, %d-entry FTQ, %d-entry ROB, %d-entry RS@ \
     %d-entry %d-way BTB@ %dKB %d-way L1i, %dKB %d-way L2, %dMB %d-way L3@]"
    t.freq_ghz t.width t.ftq_entries t.rob_entries t.rs_entries t.btb_entries
    t.btb_assoc (t.l1i_bytes / 1024) t.l1i_assoc
    (t.l2_bytes / 1024)
    t.l2_assoc
    (t.l3_bytes / 1024 / 1024)
    t.l3_assoc
