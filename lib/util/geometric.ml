let series ~a ~n ~m =
  if a <= 0 || n < a then invalid_arg "Geometric.series";
  if m < 2 then invalid_arg "Geometric.series";
  if n - a + 1 < m then invalid_arg "Geometric.series: range too small for m";
  let fa = float_of_int a and fn = float_of_int n in
  let r = (fn /. fa) ** (1.0 /. float_of_int (m - 1)) in
  let out =
    Array.init m (fun i ->
        int_of_float (Float.round (fa *. (r ** float_of_int i))))
  in
  out.(0) <- a;
  out.(m - 1) <- n;
  (* Forward pass enforces strict increase, backward pass re-clamps under n;
     [n - a + 1 >= m] guarantees both passes terminate within [a, n]. *)
  for i = 1 to m - 1 do
    if out.(i) <= out.(i - 1) then out.(i) <- out.(i - 1) + 1
  done;
  out.(m - 1) <- n;
  for i = m - 2 downto 0 do
    if out.(i) >= out.(i + 1) then out.(i) <- out.(i + 1) - 1
  done;
  out

let default = series ~a:8 ~n:1024 ~m:16

let index_of_length s len =
  let rec go i =
    if i >= Array.length s then None
    else if s.(i) = len then Some i
    else go (i + 1)
  in
  go 0

let bucket s len =
  let rec go i =
    if i >= Array.length s - 1 then Array.length s - 1
    else if s.(i) >= len then i
    else go (i + 1)
  in
  go 0
