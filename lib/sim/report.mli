(** Tabular results: one structure per reproduced table/figure, printed
    aligned to stdout and exportable as CSV. *)

type timing = {
  wall_s : float;  (** end-to-end wall time of the experiment *)
  sims : int;  (** timing-model simulations actually executed *)
  sim_seconds : float;  (** wall time summed over those simulations *)
  cache_hits : int;  (** results served from the persistent cache *)
  cache_misses : int;  (** persistent-cache lookups that missed *)
}

type t = {
  id : string;  (** e.g. "fig12" *)
  title : string;
  header : string list;  (** column names; first column is the row label *)
  rows : (string * float list) list;
  notes : string list;
  timing : timing option;
      (** per-experiment cost accounting; excluded from {!to_csv} so
          exported rows stay byte-identical across job counts and cache
          states *)
}

val make :
  id:string ->
  title:string ->
  header:string list ->
  ?notes:string list ->
  (string * float list) list ->
  t
(** [timing] starts as [None]. *)

val with_mean : ?label:string -> t -> t
(** Append an arithmetic-mean row over the data rows. *)

val with_timing : timing -> t -> t
(** Attach cost accounting, printed as a trailing [timing:] line. *)

val timing_line : timing -> string

val print : t -> unit

val to_csv : t -> string

val to_string : t -> string
