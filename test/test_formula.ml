(* Tests for whisper_formula: node operations and read-once formula trees,
   including the 15-bit encoding of the brhint formula field. *)

open Whisper_formula

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Op                                                                 *)
(* ------------------------------------------------------------------ *)

let test_op_truth_tables () =
  let cases =
    [
      (Op.And, [ (false, false, false); (false, true, false); (true, false, false); (true, true, true) ]);
      (Op.Or, [ (false, false, false); (false, true, true); (true, false, true); (true, true, true) ]);
      (Op.Imp, [ (false, false, true); (false, true, true); (true, false, false); (true, true, true) ]);
      (Op.Cnimp, [ (false, false, false); (false, true, true); (true, false, false); (true, true, false) ]);
    ]
  in
  List.iter
    (fun (op, rows) ->
      List.iter
        (fun (a, b, expect) ->
          check_bool
            (Printf.sprintf "%s %b %b" (Op.name op) a b)
            expect (Op.eval op a b))
        rows)
    cases

let test_op_code_roundtrip () =
  Array.iter
    (fun op -> check_bool "roundtrip" true (Op.of_code (Op.to_code op) = op))
    Op.all;
  Alcotest.check_raises "bad code" (Invalid_argument "Op.of_code") (fun () ->
      ignore (Op.of_code 4))

let test_op_families () =
  check_int "four ops" 4 (Array.length Op.all);
  check_int "two classic ops" 2 (Array.length Op.classic)

(* ------------------------------------------------------------------ *)
(* Tree                                                               *)
(* ------------------------------------------------------------------ *)

let test_tree_make_invalid () =
  Alcotest.check_raises "3 leaves"
    (Invalid_argument "Tree.make: leaves must be a power of two >= 2")
    (fun () -> ignore (Tree.make ~ops:[| Op.And; Op.Or |] ~inverted:false))

let test_tree_eval_two_leaves () =
  Array.iter
    (fun op ->
      let t = Tree.make ~ops:[| op |] ~inverted:false in
      for bits = 0 to 3 do
        let a = bits land 1 = 1 and b = bits land 2 = 2 in
        check_bool
          (Printf.sprintf "%s on %d" (Op.name op) bits)
          (Op.eval op a b) (Tree.eval t bits)
      done;
      let ti = Tree.make ~ops:[| op |] ~inverted:true in
      for bits = 0 to 3 do
        let a = bits land 1 = 1 and b = bits land 2 = 2 in
        check_bool "inverted" (not (Op.eval op a b)) (Tree.eval ti bits)
      done)
    Op.all

let test_tree_eval_known_eight () =
  (* All-And tree over 8 leaves = conjunction of all bits. *)
  let t = Tree.all_ops Op.And ~leaves:8 in
  check_bool "all ones" true (Tree.eval t 0xFF);
  check_bool "missing one" false (Tree.eval t 0xFE);
  check_bool "zero" false (Tree.eval t 0);
  let o = Tree.all_ops Op.Or ~leaves:8 in
  check_bool "any one" true (Tree.eval o 0x10);
  check_bool "zero" false (Tree.eval o 0)

let test_tree_structure_accessors () =
  let t = Tree.all_ops Op.And ~leaves:8 in
  check_int "leaves" 8 (Tree.leaves t);
  check_int "ops" 7 (Array.length (Tree.ops t));
  check_bool "not inverted" false (Tree.inverted t)

let test_tree_space_sizes () =
  check_int "8-leaf id bits (paper: 15-bit formula)" 15 (Tree.id_bits ~leaves:8);
  check_int "8-leaf space" 32768 (Tree.space_size ~leaves:8);
  check_int "4-leaf id bits" 7 (Tree.id_bits ~leaves:4);
  check_int "4-leaf space" 128 (Tree.space_size ~leaves:4);
  check_int "classic 8 (N-1 bits)" 128 (Tree.classic_space_size ~leaves:8);
  check_int "classic 4 (N-1 bits)" 8 (Tree.classic_space_size ~leaves:4)

let test_tree_id_roundtrip_exhaustive_4 () =
  for id = 0 to Tree.space_size ~leaves:4 - 1 do
    check_int "id roundtrip" id (Tree.to_id (Tree.of_id ~leaves:4 id))
  done

let qcheck_tree_id_roundtrip_8 =
  QCheck.Test.make ~name:"8-leaf id roundtrip" ~count:1000
    QCheck.(int_bound 32767)
    (fun id -> Tree.to_id (Tree.of_id ~leaves:8 id) = id)

let test_tree_id_out_of_range () =
  Alcotest.check_raises "too big" (Invalid_argument "Tree.of_id") (fun () ->
      ignore (Tree.of_id ~leaves:8 32768))

let test_tree_classic_roundtrip () =
  for id = 0 to Tree.classic_space_size ~leaves:8 - 1 do
    let t = Tree.of_classic_id ~leaves:8 id in
    check_bool "is classic" true (Tree.is_classic t);
    check_int "roundtrip" id (Tree.to_classic_id t)
  done

let test_tree_classic_rejects_extended () =
  let t = Tree.all_ops Op.Imp ~leaves:4 in
  check_bool "imp not classic" false (Tree.is_classic t);
  Alcotest.check_raises "to_classic_id" (Invalid_argument "Tree.to_classic_id")
    (fun () -> ignore (Tree.to_classic_id t));
  let inv = Tree.make ~ops:(Array.make 3 Op.And) ~inverted:true in
  check_bool "inverted not classic" false (Tree.is_classic inv)

let qcheck_truth_table_matches_eval =
  QCheck.Test.make ~name:"truth table agrees with eval" ~count:200
    QCheck.(int_bound 32767)
    (fun id ->
      let t = Tree.of_id ~leaves:8 id in
      let table = Tree.truth_table t in
      let ok = ref true in
      for bits = 0 to 255 do
        if Tree.eval_tt table bits <> Tree.eval t bits then ok := false
      done;
      !ok)

let qcheck_packed_truth_table_matches_bytes =
  QCheck.Test.make ~name:"packed truth table agrees with Bytes table"
    ~count:200
    QCheck.(int_bound 32767)
    (fun id ->
      let t = Tree.of_id ~leaves:8 id in
      let table = Tree.truth_table t in
      let packed = Tree.packed_truth_table t in
      let ok = ref (Tree.pack_truth_table table = packed) in
      for bits = 0 to 255 do
        if Tree.eval_packed packed bits <> Tree.eval_tt table bits then
          ok := false
      done;
      !ok)

let test_gate_delay () =
  check_int "2 leaves" 9 (Tree.gate_delay ~leaves:2);
  check_int "4 leaves" 14 (Tree.gate_delay ~leaves:4);
  check_int "8 leaves (paper: 19 gates)" 19 (Tree.gate_delay ~leaves:8)

let test_tree_random_in_space () =
  let rng = Whisper_util.Rng.create 5 in
  for _ = 1 to 200 do
    let t = Tree.random rng ~leaves:8 in
    let id = Tree.to_id t in
    check_bool "id in range" true (id >= 0 && id < 32768)
  done

let test_tree_pp () =
  let t = Tree.make ~ops:[| Op.And |] ~inverted:true in
  Alcotest.(check string) "renders" "~(b0 and b1)" (Tree.to_string t);
  let t8 = Tree.all_ops Op.Or ~leaves:4 in
  Alcotest.(check string) "renders 4" "((b0 or b1) or (b2 or b3))"
    (Tree.to_string t8)

let test_tree_equal () =
  let a = Tree.of_id ~leaves:8 123 and b = Tree.of_id ~leaves:8 123 in
  check_bool "equal" true (Tree.equal a b);
  check_bool "not equal" false (Tree.equal a (Tree.of_id ~leaves:8 124))

(* The extension claim of §III-C: some extended formulas cannot be
   expressed by any classic ROMBF over the same inputs. *)
let test_extended_strictly_more_expressive () =
  let target = Tree.all_ops Op.Cnimp ~leaves:2 in
  let target_tt = Tree.truth_table target in
  let found = ref false in
  for id = 0 to Tree.classic_space_size ~leaves:2 - 1 do
    let c = Tree.of_classic_id ~leaves:2 id in
    if Tree.truth_table c = target_tt then found := true
  done;
  check_bool "cnimp not expressible classically" false !found

(* Read-once trees cannot express XOR (the basis for our parity
   behaviours landing in the paper's "Others" slice). *)
let test_no_tree_expresses_xor () =
  let found = ref false in
  for id = 0 to Tree.space_size ~leaves:2 - 1 do
    let t = Tree.of_id ~leaves:2 id in
    let is_xor =
      Tree.eval t 0 = false
      && Tree.eval t 1 = true
      && Tree.eval t 2 = true
      && Tree.eval t 3 = false
    in
    if is_xor then found := true
  done;
  check_bool "xor inexpressible" false !found

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "whisper_formula"
    [
      ( "op",
        Alcotest.
          [
            test_case "truth tables" `Quick test_op_truth_tables;
            test_case "code roundtrip" `Quick test_op_code_roundtrip;
            test_case "families" `Quick test_op_families;
          ] );
      ( "tree",
        Alcotest.
          [
            test_case "make invalid" `Quick test_tree_make_invalid;
            test_case "eval 2 leaves" `Quick test_tree_eval_two_leaves;
            test_case "eval known 8" `Quick test_tree_eval_known_eight;
            test_case "accessors" `Quick test_tree_structure_accessors;
            test_case "space sizes" `Quick test_tree_space_sizes;
            test_case "id roundtrip (4, exhaustive)" `Quick
              test_tree_id_roundtrip_exhaustive_4;
            test_case "id out of range" `Quick test_tree_id_out_of_range;
            test_case "classic roundtrip" `Quick test_tree_classic_roundtrip;
            test_case "classic rejects extended" `Quick
              test_tree_classic_rejects_extended;
            test_case "gate delay" `Quick test_gate_delay;
            test_case "random in space" `Quick test_tree_random_in_space;
            test_case "pp" `Quick test_tree_pp;
            test_case "equal" `Quick test_tree_equal;
            test_case "extended more expressive" `Quick
              test_extended_strictly_more_expressive;
            test_case "xor inexpressible" `Quick test_no_tree_expresses_xor;
          ]
        @ qsuite
            [
              qcheck_tree_id_roundtrip_8;
              qcheck_truth_table_matches_eval;
              qcheck_packed_truth_table_matches_bytes;
            ] );
    ]
