(* Data-center branch characterization study (paper §II on a budget).

     dune exec examples/datacenter_study.exe

   Reproduces the motivation narrative on three applications: how much an
   ideal direction predictor would buy (limit study), where the baseline's
   mispredictions come from (class breakdown), and how spread out they are
   across static branches. *)

open Whisper_trace
open Whisper_sim
open Whisper_pipeline

let apps = [ "finagle-http"; "cassandra"; "mysql" ]
let events = 600_000

let () =
  let ctx = Runner.create_ctx ~events () in
  Printf.printf "Limit study over %d branch events per application\n\n" events;
  Printf.printf "%-16s %8s %14s %14s %12s\n" "app" "MPKI"
    "ideal-speedup%" "misp-stall-pp" "fe-stall-pp";
  List.iter
    (fun name ->
      let app = Option.get (Workloads.by_name name) in
      let base = Runner.run ctx app Runner.Baseline in
      let ideal = Runner.run ctx app Runner.Ideal in
      let total = Machine.speedup_pct ~baseline:base ~improved:ideal in
      let misp_pp =
        100.0
        *. (base.Machine.misp_stall -. ideal.Machine.misp_stall)
        /. ideal.Machine.cycles
      in
      let fe_pp =
        100.0
        *. (base.Machine.fe_stall -. ideal.Machine.fe_stall)
        /. ideal.Machine.cycles
      in
      Printf.printf "%-16s %8.2f %14.1f %14.1f %12.1f\n" name
        (Machine.mpki base) total misp_pp fe_pp)
    apps;

  Printf.printf
    "\nAs in the paper's Fig. 1, most of the ideal predictor's win is\n\
     squash cycles, but a large minority is *frontend* stall reduction:\n\
     fewer resteers keep FDIP far enough ahead to hide I-cache misses.\n\n";

  (* misprediction dispersion (paper Fig. 5) *)
  Printf.printf "%-16s %26s\n" "app" "top-N branch share of mispredicts";
  Printf.printf "%-16s %8s %8s %8s %8s\n" "" "N=16" "N=256" "N=2048" "N=all";
  List.iter
    (fun name ->
      let app = Option.get (Workloads.by_name name) in
      let prof = Runner.profile ctx app in
      let per_branch = ref [] in
      Profile.iter_stats prof ~f:(fun ~pc:_ s ->
          per_branch := s.Profile.mispred :: !per_branch);
      let sorted = List.sort (fun a b -> compare b a) !per_branch |> Array.of_list in
      let total = float_of_int (max 1 (Array.fold_left ( + ) 0 sorted)) in
      let share n =
        let n = min n (Array.length sorted) in
        let s = ref 0 in
        for i = 0 to n - 1 do
          s := !s + sorted.(i)
        done;
        100.0 *. float_of_int !s /. total
      in
      Printf.printf "%-16s %7.1f%% %7.1f%% %7.1f%% %7d\n" name (share 16)
        (share 256) (share 2048) (Array.length sorted))
    apps;
  Printf.printf
    "\nMispredictions are spread across thousands of branches — the\n\
     property that defeats per-branch CNN approaches (paper §II-D).\n"
