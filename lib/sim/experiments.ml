open Whisper_trace
open Whisper_pipeline

let dc_apps = Workloads.datacenter
let dc = Array.to_list dc_apps
let whisper_default = Runner.Whisper Whisper_core.Config.default

(* Work-item declaration: [sims techniques apps] is the (app, technique)
   cross product a figure hands to Runner.run_batch up front, so its
   independent simulations fan out across domains before the sequential
   row construction reads them back from the memo tables. *)
let sims ?train_inputs ?test_input ?baseline_kb techniques apps =
  List.concat_map
    (fun app ->
      List.map
        (fun t -> Runner.sim ?train_inputs ?test_input ?baseline_kb app t)
        techniques)
    apps

(* Order-preserving parallel computation of per-application rows whose
   work happens outside Runner.run's memo tables (Figs. 3, 6, 7, 19). *)
let par_rows ctx f apps =
  Whisper_util.Pool.map ~jobs:(Runner.jobs ctx) f (Array.of_list apps)
  |> Array.map (function Ok row -> row | Error e -> raise e)
  |> Array.to_list

let reduction ~(base : Machine.result) ~(better : Machine.result) =
  if Machine.degraded base || Machine.degraded better then Float.nan
  else
    Whisper_util.Stats.reduction_pct
      ~baseline:(float_of_int base.Machine.mispredicts)
      ~improved:(float_of_int better.Machine.mispredicts)

(* ------------------------------------------------------------------ *)

let paper_workloads =
  [
    ("mysql", "TPC-C queries (synthetic session model)");
    ("postgres", "pgbench queries (synthetic session model)");
    ("clang", "building LLVM (synthetic session model)");
    ("python", "pyperformance benchmarks (synthetic session model)");
    ("finagle-chirper", "Renaissance suite (synthetic session model)");
    ("finagle-http", "Renaissance suite (synthetic session model)");
    ("cassandra", "DaCapo suite (synthetic session model)");
    ("kafka", "DaCapo suite (synthetic session model)");
    ("tomcat", "DaCapo suite (synthetic session model)");
    ("drupal", "OSS-performance suite (synthetic session model)");
    ("wordpress", "OSS-performance suite (synthetic session model)");
    ("mediawiki", "OSS-performance suite (synthetic session model)");
  ]

let table1 () =
  let rows =
    List.map
      (fun (name, _) ->
        let c = Option.get (Workloads.by_name name) in
        let cfg = Workloads.build_cfg c in
        ( name,
          [
            float_of_int c.Workloads.functions;
            float_of_int (Cfg.n_branches cfg);
            float_of_int cfg.Cfg.footprint /. 1024.0;
          ] ))
      paper_workloads
  in
  Report.make ~id:"table1" ~title:"Data center applications and workloads"
    ~header:[ "app"; "functions"; "static-branches"; "code-KB" ]
    ~notes:
      [
        "workloads are the synthetic session-model substitutes described in \
         DESIGN.md (paper Table I lists the real suites)";
      ]
    rows

let table2 () =
  let p = Params.default in
  Report.make ~id:"table2" ~title:"Simulator parameters (paper Table II)"
    ~header:[ "parameter"; "value" ]
    [
      ("freq-GHz", [ p.Params.freq_ghz ]);
      ("width", [ float_of_int p.width ]);
      ("FTQ-entries", [ float_of_int p.ftq_entries ]);
      ("ROB-entries", [ float_of_int p.rob_entries ]);
      ("RS-entries", [ float_of_int p.rs_entries ]);
      ("BTB-entries", [ float_of_int p.btb_entries ]);
      ("L1i-KB", [ float_of_int (p.l1i_bytes / 1024) ]);
      ("L2-KB", [ float_of_int (p.l2_bytes / 1024) ]);
      ("L3-MB", [ float_of_int (p.l3_bytes / 1024 / 1024) ]);
      ("mispredict-penalty", [ float_of_int p.resteer_penalty ]);
    ]

let table3 () =
  let c = Whisper_core.Config.default in
  Report.make ~id:"table3" ~title:"Whisper design parameters (paper Table III)"
    ~header:[ "parameter"; "value" ]
    [
      ("min-history-length", [ float_of_int c.min_len ]);
      ("max-history-length", [ float_of_int c.max_len ]);
      ("different-history-lengths", [ float_of_int c.n_lengths ]);
      ("hashed-history-length", [ float_of_int c.hash_bits ]);
      ("logical-operations", [ 4.0 ]);
      ("hint-buffer-size", [ float_of_int c.hint_buffer_size ]);
      ("explore-fraction-%", [ 100.0 *. c.explore_frac ]);
    ]

(* ------------------------------------------------------------------ *)

let fig1 ctx =
  Runner.run_batch ctx (sims [ Runner.Baseline; Runner.Ideal ] dc);
  let rows =
    Array.to_list
      (Array.map
         (fun app ->
           let base = Runner.run ctx app Runner.Baseline in
           let ideal = Runner.run ctx app Runner.Ideal in
           let total = Machine.speedup_pct ~baseline:base ~improved:ideal in
           let misp_part =
             100.0
             *. (base.Machine.misp_stall -. ideal.Machine.misp_stall)
             /. ideal.Machine.cycles
           in
           let fe_part =
             100.0
             *. (base.Machine.fe_stall -. ideal.Machine.fe_stall)
             /. ideal.Machine.cycles
           in
           (app.Workloads.name, [ misp_part; fe_part; total ]))
         dc_apps)
  in
  Report.with_mean
    (Report.make ~id:"fig1"
       ~title:"Ideal-predictor limit study: speedup split (%)"
       ~header:[ "app"; "misprediction-stalls"; "frontend-stalls"; "total" ]
       rows)

let fig2 ctx =
  Runner.run_batch ctx (sims [ Runner.Baseline ] dc);
  let rows =
    Array.to_list
      (Array.map
         (fun app ->
           let base = Runner.run ctx app Runner.Baseline in
           (app.Workloads.name, [ Machine.mpki base ]))
         dc_apps)
  in
  Report.with_mean
    (Report.make ~id:"fig2" ~title:"Branch-MPKI of 64KB TAGE-SC-L"
       ~header:[ "app"; "branch-MPKI" ] rows)

let fig3 ctx =
  let tagged_entries kb =
    let s = Whisper_bpu.Sizes.for_budget ~kb in
    s.Whisper_bpu.Sizes.tage.Whisper_bpu.Tage.n_tables
    * (1 lsl s.Whisper_bpu.Sizes.tage.Whisper_bpu.Tage.log_entries)
  in
  let rows =
    par_rows ctx
      (fun app ->
        let classifier =
          Whisper_core.Classify.create
            ~capacity_entries:(tagged_entries (Runner.baseline_kb ctx))
            ()
        in
        let p =
          Whisper_bpu.Tage_scl.predictor
            (Whisper_bpu.Sizes.for_budget ~kb:(Runner.baseline_kb ctx))
        in
        let cfg = Runner.cfg_of ctx app in
        let src =
          App_model.source (App_model.create ~cfg ~config:app ~input:1 ())
        in
        for _ = 1 to Runner.events ctx do
          let e = src () in
          let pred = p.Whisper_bpu.Predictor.predict ~pc:e.Branch.pc in
          p.train ~pc:e.Branch.pc ~taken:e.Branch.taken;
          ignore
            (Whisper_core.Classify.note classifier ~pc:e.Branch.pc
               ~taken:e.Branch.taken
               ~mispredicted:(pred <> e.Branch.taken))
        done;
        let c = Whisper_core.Classify.counts classifier in
        let f cls = 100.0 *. Whisper_core.Classify.fraction c cls in
        ( app.Workloads.name,
          [
            f Whisper_core.Classify.Compulsory;
            f Whisper_core.Classify.Capacity;
            f Whisper_core.Classify.Conflict;
            f Whisper_core.Classify.Conditional_on_data;
          ] ))
      dc
  in
  Report.with_mean
    (Report.make ~id:"fig3" ~title:"Misprediction class breakdown (%)"
       ~header:[ "app"; "compulsory"; "capacity"; "conflict"; "cond-on-data" ]
       rows)

let prior_techniques =
  [
    ("4b-ROMBF", Runner.Rombf 4);
    ("8b-ROMBF", Runner.Rombf 8);
    ("8KB-BranchNet", Runner.Branchnet (Whisper_branchnet.Branchnet.Budget 8192));
    ("32KB-BranchNet", Runner.Branchnet (Whisper_branchnet.Branchnet.Budget 32768));
    ("Unl-BranchNet", Runner.Branchnet Whisper_branchnet.Branchnet.Unlimited);
  ]

let fig4 ctx =
  Runner.run_batch ctx
    (sims (Runner.Baseline :: List.map snd prior_techniques) dc);
  let rows =
    Array.to_list
      (Array.map
         (fun app ->
           let base = Runner.run ctx app Runner.Baseline in
           ( app.Workloads.name,
             List.map
               (fun (_, t) -> reduction ~base ~better:(Runner.run ctx app t))
               prior_techniques ))
         dc_apps)
  in
  Report.with_mean
    (Report.make ~id:"fig4"
       ~title:"Prior profile-guided techniques: misprediction reduction (%)"
       ~header:("app" :: List.map fst prior_techniques)
       rows)

let cdf_points = [ 1; 4; 16; 64; 256; 1024; 4096; 16384 ]

let fig5 ctx =
  let apps = Array.to_list Workloads.spec @ dc in
  Runner.run_batch ctx (List.map (fun app -> Runner.collect app) apps);
  let rows =
    List.map
      (fun app ->
        let prof = Runner.profile ctx app in
        let per_branch = ref [] in
        Profile.iter_stats prof ~f:(fun ~pc:_ s ->
            per_branch := s.Profile.mispred :: !per_branch);
        let sorted =
          List.sort (fun a b -> compare b a) !per_branch |> Array.of_list
        in
        let total =
          float_of_int (max 1 (Array.fold_left ( + ) 0 sorted))
        in
        let cum_at k =
          let k = min k (Array.length sorted) in
          let s = ref 0 in
          for i = 0 to k - 1 do
            s := !s + sorted.(i)
          done;
          100.0 *. float_of_int !s /. total
        in
        (app.Workloads.name, List.map cum_at cdf_points))
      apps
  in
  Report.make ~id:"fig5"
    ~title:"CDF of mispredictions over static branches (%)"
    ~header:("app" :: List.map string_of_int cdf_points)
    ~notes:
      [
        "SPEC-like rows first: their mass concentrates in the top few \
         branches; data-center rows spread over thousands (paper Fig. 5)";
      ]
    rows

(* paper Fig. 6 buckets over history lengths *)
let fig6_buckets =
  [ (1, 8); (9, 16); (17, 32); (33, 64); (65, 128); (129, 256); (257, 512); (513, 1024) ]

let fig6 ctx =
  let lengths = Workloads.lengths in
  Runner.run_batch ctx (List.map (fun app -> Runner.collect app) dc);
  let rows =
    par_rows ctx
      (fun app ->
        let analysis = Runner.whisper_analysis ctx app in
        let dist =
          Whisper_core.Analyze.length_distribution analysis
            (Runner.profile ctx app)
        in
        let bucket_sum (lo, hi) =
          let s = ref 0.0 in
          Array.iteri
            (fun i frac ->
              if lengths.(i) >= lo && lengths.(i) <= hi then s := !s +. frac)
            dist;
          100.0 *. !s
        in
        (app.Workloads.name, List.map bucket_sum fig6_buckets))
      dc
  in
  Report.with_mean
    (Report.make ~id:"fig6"
       ~title:"Whisper-avoided mispredictions by correlation history length (%)"
       ~header:
         ("app"
         :: List.map (fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi) fig6_buckets)
       rows)

let fig7 ctx =
  let classes =
    Whisper_core.Analyze.
      [ C_and; C_always; C_cnimplication; C_implication; C_never; C_or; C_others ]
  in
  Runner.run_batch ctx (List.map (fun app -> Runner.collect app) dc);
  let rows =
    par_rows ctx
      (fun app ->
        let analysis = Runner.whisper_analysis ctx app in
        let dist =
          Whisper_core.Analyze.op_distribution analysis
            (Runner.profile ctx app)
        in
        ( app.Workloads.name,
          List.map
            (fun cls ->
              match List.assoc_opt cls dist with
              | Some f -> 100.0 *. f
              | None -> 0.0)
            classes ))
      dc
  in
  Report.with_mean
    (Report.make ~id:"fig7"
       ~title:"Candidate branch executions by best-formula operation (%)"
       ~header:("app" :: List.map Whisper_core.Analyze.op_class_name classes)
       rows)

(* ------------------------------------------------------------------ *)

let fig12_techniques =
  prior_techniques
  @ [
      ("Whisper", whisper_default);
      ("Unl-MTAGE-SC", Runner.Mtage_sc);
      ("Ideal", Runner.Ideal);
    ]

let fig12 ctx =
  Runner.run_batch ctx
    (sims (Runner.Baseline :: List.map snd fig12_techniques) dc);
  let rows =
    Array.to_list
      (Array.map
         (fun app ->
           let base = Runner.run ctx app Runner.Baseline in
           ( app.Workloads.name,
             List.map
               (fun (_, t) ->
                 Machine.speedup_pct ~baseline:base
                   ~improved:(Runner.run ctx app t))
               fig12_techniques ))
         dc_apps)
  in
  Report.with_mean
    (Report.make ~id:"fig12" ~title:"Speedup over 64KB TAGE-SC-L (%)"
       ~header:("app" :: List.map fst fig12_techniques)
       rows)

let fig13_techniques = prior_techniques @ [ ("Whisper", whisper_default) ]

let fig13 ctx =
  Runner.run_batch ctx
    (sims (Runner.Baseline :: List.map snd fig13_techniques) dc);
  let rows =
    Array.to_list
      (Array.map
         (fun app ->
           let base = Runner.run ctx app Runner.Baseline in
           ( app.Workloads.name,
             List.map
               (fun (_, t) -> reduction ~base ~better:(Runner.run ctx app t))
               fig13_techniques ))
         dc_apps)
  in
  Report.with_mean
    (Report.make ~id:"fig13"
       ~title:"Misprediction reduction over 64KB TAGE-SC-L (%)"
       ~header:("app" :: List.map fst fig13_techniques)
       rows)

let fig14 ctx =
  let classic_whisper =
    Runner.Whisper { Whisper_core.Config.default with ops = `Classic }
  in
  Runner.run_batch ctx
    (sims [ Runner.Baseline; Runner.Rombf 8; classic_whisper; whisper_default ]
       dc);
  let rows =
    Array.to_list
      (Array.map
         (fun app ->
           let base = Runner.run ctx app Runner.Baseline in
           let r8 = reduction ~base ~better:(Runner.run ctx app (Runner.Rombf 8)) in
           let rc = reduction ~base ~better:(Runner.run ctx app classic_whisper) in
           let rw = reduction ~base ~better:(Runner.run ctx app whisper_default) in
           (* hashed-history contribution = classic-ops Whisper over 8b-ROMBF;
              imp/cnimp contribution = full Whisper over classic-ops Whisper *)
           (app.Workloads.name, [ rc -. r8; rw -. rc ]))
         dc_apps)
  in
  Report.with_mean
    (Report.make ~id:"fig14"
       ~title:"Whisper improvement over 8b-ROMBF, by technique (pp)"
       ~header:[ "app"; "hashed-history-correlation"; "imp/cnimp" ]
       rows)

let fig15 ?(app = "cassandra") ctx =
  let app = Option.get (Workloads.by_name app) in
  let fractions = [ 0.001; 0.01; 0.1; 1.0 ] in
  let config_of frac =
    {
      Whisper_core.Config.default with
      explore_frac = frac;
      (* fixed hint coverage across points keeps the sweep
         apples-to-apples while bounding the exhaustive search *)
      max_hints = 256;
    }
  in
  Runner.run_batch ctx
    (Runner.sim app Runner.Baseline
    :: List.map
         (fun frac -> Runner.sim app (Runner.Whisper (config_of frac)))
         fractions);
  let base = Runner.run ctx app Runner.Baseline in
  let rows =
    List.map
      (fun frac ->
        let config = config_of frac in
        let t0 = Unix.gettimeofday () in
        let analysis = Runner.whisper_analysis ~config ctx app in
        let train_time = Unix.gettimeofday () -. t0 in
        let r =
          reduction ~base ~better:(Runner.run ctx app (Runner.Whisper config))
        in
        ( Printf.sprintf "%.1f%%" (100.0 *. frac),
          [
            r;
            train_time;
            float_of_int (Whisper_core.Analyze.hint_count analysis);
          ] ))
      fractions
  in
  Report.make ~id:"fig15"
    ~title:"Randomized formula testing: exploration sweep (cassandra)"
    ~header:[ "explored"; "reduction-%"; "training-s"; "hints" ]
    ~notes:[ "hint coverage capped at 256 branches for every point" ]
    rows

let fig16 ctx =
  let one app =
    let prof = Runner.profile ctx app in
    let r4 = (Whisper_rombf.Rombf.train ~n:4 prof).training_seconds in
    let r8 = (Whisper_rombf.Rombf.train ~n:8 prof).training_seconds in
    let b8 =
      (Whisper_branchnet.Branchnet.train
         ~budget:(Whisper_branchnet.Branchnet.Budget 8192) prof)
        .training_seconds
    in
    let b32 =
      (Whisper_branchnet.Branchnet.train
         ~budget:(Whisper_branchnet.Branchnet.Budget 32768) prof)
        .training_seconds
    in
    let bu =
      (Whisper_branchnet.Branchnet.train
         ~budget:Whisper_branchnet.Branchnet.Unlimited prof)
        .training_seconds
    in
    let w = (Whisper_core.Analyze.run prof).training_seconds in
    [ r4; r8; b8; b32; bu; w ]
  in
  let sample_apps = [ dc_apps.(0); dc_apps.(7); dc_apps.(9) ] in
  (* training-time measurements stay sequential so a loaded sibling
     domain cannot skew them; only the profile collection is fanned out *)
  Runner.run_batch ctx (List.map (fun app -> Runner.collect app) sample_apps);
  let rows =
    List.map (fun app -> (app.Workloads.name, one app)) sample_apps
  in
  Report.with_mean
    (Report.make ~id:"fig16" ~title:"Offline training time (seconds)"
       ~header:
         [
           "app";
           "4b-ROMBF";
           "8b-ROMBF";
           "8KB-BranchNet";
           "32KB-BranchNet";
           "Unl-BranchNet";
           "Whisper";
         ]
       rows)

let fig17 ctx =
  Runner.run_batch ctx
    (List.concat_map
       (fun app ->
         List.concat_map
           (fun test_input ->
             [
               Runner.sim ~test_input app Runner.Baseline;
               Runner.sim ~train_inputs:[ 0 ] ~test_input app whisper_default;
               Runner.sim ~train_inputs:[ test_input ] ~test_input app
                 whisper_default;
             ])
           [ 1; 2; 3 ])
       dc);
  let rows =
    dc
    |> List.concat_map (fun app ->
           List.map
             (fun test_input ->
               let base =
                 Runner.run ~test_input ctx app Runner.Baseline
               in
               let cross =
                 reduction ~base
                   ~better:
                     (Runner.run ~train_inputs:[ 0 ] ~test_input ctx app
                        whisper_default)
               in
               let same =
                 reduction ~base
                   ~better:
                     (Runner.run ~train_inputs:[ test_input ] ~test_input ctx
                        app whisper_default)
               in
               ( Printf.sprintf "%s#%d" app.Workloads.name test_input,
                 [ cross; same ] ))
             [ 1; 2; 3 ])
  in
  Report.with_mean
    (Report.make ~id:"fig17"
       ~title:"Input sensitivity: training-input vs same-input profile (%)"
       ~header:[ "app#input"; "profile-from-training-input"; "profile-from-same-input" ]
       rows)

let fig18 ctx =
  let test_input = 5 in
  let techniques =
    [
      ("8b-ROMBF", Runner.Rombf 8);
      ("Unl-BranchNet", Runner.Branchnet Whisper_branchnet.Branchnet.Unlimited);
      ("Whisper", whisper_default);
    ]
  in
  let sample_apps = [ dc_apps.(0); dc_apps.(7); dc_apps.(9); dc_apps.(4) ] in
  Runner.run_batch ctx
    (List.concat_map
       (fun k ->
         let train_inputs = List.init k Fun.id in
         sims ~test_input [ Runner.Baseline ] sample_apps
         @ sims ~train_inputs ~test_input (List.map snd techniques) sample_apps)
       [ 1; 2; 3; 4; 5 ]);
  let rows =
    List.map
      (fun k ->
        let train_inputs = List.init k Fun.id in
        let vals =
          List.map
            (fun (_, t) ->
              Whisper_util.Stats.mean
                (Array.of_list
                   (List.map
                      (fun app ->
                        let base =
                          Runner.run ~test_input ctx app Runner.Baseline
                        in
                        reduction ~base
                          ~better:(Runner.run ~train_inputs ~test_input ctx app t))
                      sample_apps)))
            techniques
        in
        (Printf.sprintf "%d-input%s" k (if k > 1 then "s" else ""), vals))
      [ 1; 2; 3; 4; 5 ]
  in
  Report.make ~id:"fig18"
    ~title:"Merged profiles from multiple inputs: avg reduction (%)"
    ~header:("profiles" :: List.map fst techniques)
    ~notes:[ "averaged over cassandra, mysql, python, finagle-http" ]
    rows

let fig19 ctx =
  Runner.run_batch ctx (List.map (fun app -> Runner.collect app) dc);
  let rows =
    par_rows ctx
      (fun app ->
        let plan = Runner.whisper_plan ctx app in
        let cfg = Runner.cfg_of ctx app in
        let static = Whisper_core.Inject.static_overhead_pct plan cfg in
        let dynamic =
          Whisper_core.Inject.dynamic_overhead_pct plan cfg
            ~source:
              (App_model.source (App_model.create ~cfg ~config:app ~input:1 ()))
            ~events:(min 400_000 (Runner.events ctx))
        in
        (app.Workloads.name, [ static; dynamic ]))
      dc
  in
  Report.with_mean
    (Report.make ~id:"fig19"
       ~title:"brhint instruction overhead (%)"
       ~header:[ "app"; "static"; "dynamic" ]
       rows)

let reduction_at_kb ctx app kb =
  let base = Runner.run ~baseline_kb:kb ctx app Runner.Baseline in
  let w = Runner.run ~baseline_kb:kb ctx app whisper_default in
  reduction ~base ~better:w

let fig20 ctx =
  Runner.run_batch ctx
    (sims ~baseline_kb:128 [ Runner.Baseline; whisper_default ] dc);
  let rows =
    Array.to_list
      (Array.map
         (fun app -> (app.Workloads.name, [ reduction_at_kb ctx app 128 ]))
         dc_apps)
  in
  Report.with_mean
    (Report.make ~id:"fig20"
       ~title:"Whisper misprediction reduction over 128KB TAGE-SC-L (%)"
       ~header:[ "app"; "reduction" ] rows)

let fig21 ctx =
  (* six representative applications keep the 8-point sweep tractable;
     each point needs its own per-size profile collection *)
  let sweep_apps =
    [| dc_apps.(0); dc_apps.(1); dc_apps.(4); dc_apps.(7); dc_apps.(8); dc_apps.(10) |]
  in
  let kbs = [ 8; 16; 32; 64; 128; 256; 512; 1024 ] in
  Runner.run_batch ctx
    (List.concat_map
       (fun kb ->
         sims ~baseline_kb:kb
           [ Runner.Baseline; whisper_default ]
           (Array.to_list sweep_apps))
       kbs);
  let rows =
    List.map
      (fun kb ->
        let vals =
          Array.map (fun app -> reduction_at_kb ctx app kb) sweep_apps
        in
        (Printf.sprintf "%dKB" kb, [ Whisper_util.Stats.mean vals ]))
      kbs
  in
  Report.make ~id:"fig21"
    ~title:"Average Whisper reduction vs baseline predictor size (%)"
    ~header:[ "size"; "avg-reduction" ]
    ~notes:
      [ "averaged over cassandra, clang, finagle-http, mysql, postgres, tomcat" ]
    rows

(* suffix reduction after skipping the first [w] of 10 segments *)
let suffix_reduction (base : Machine.result) (w : Machine.result) ~skip =
  if Machine.degraded base || Machine.degraded w then Float.nan
  else
    let sum (r : Machine.result) =
      let s = ref 0 in
      Array.iteri
        (fun i m -> if i >= skip then s := !s + m)
        r.Machine.seg_mispredicts;
      !s
    in
    Whisper_util.Stats.reduction_pct
      ~baseline:(float_of_int (sum base))
      ~improved:(float_of_int (sum w))

let fig22 ctx =
  Runner.run_batch ctx (sims [ Runner.Baseline; whisper_default ] dc);
  let runs =
    Array.map
      (fun app ->
        ( Runner.run ctx app Runner.Baseline,
          Runner.run ctx app whisper_default ))
      dc_apps
  in
  let rows =
    List.map
      (fun skip ->
        let vals =
          Array.map (fun (b, w) -> suffix_reduction b w ~skip) runs
        in
        ( Printf.sprintf "%d%%" (skip * 10),
          [ Whisper_util.Stats.mean vals ] ))
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  Report.make ~id:"fig22"
    ~title:"Average Whisper reduction vs warm-up fraction (%)"
    ~header:[ "warmup"; "avg-reduction" ] rows

let prefix_reduction (base : Machine.result) (w : Machine.result) ~upto =
  if Machine.degraded base || Machine.degraded w then Float.nan
  else
    let sum (r : Machine.result) =
      let s = ref 0 in
      Array.iteri
        (fun i m -> if i < upto then s := !s + m)
        r.Machine.seg_mispredicts;
      !s
    in
    Whisper_util.Stats.reduction_pct
      ~baseline:(float_of_int (sum base))
      ~improved:(float_of_int (sum w))

let fig23 ctx =
  Runner.run_batch ctx (sims [ Runner.Baseline; whisper_default ] dc);
  let runs =
    Array.map
      (fun app ->
        ( Runner.run ctx app Runner.Baseline,
          Runner.run ctx app whisper_default ))
      dc_apps
  in
  let seg_events = Runner.events ctx / 10 in
  let rows =
    List.map
      (fun upto ->
        let vals =
          Array.map (fun (b, w) -> prefix_reduction b w ~upto) runs
        in
        ( Printf.sprintf "%dk-events" (upto * seg_events / 1000),
          [ Whisper_util.Stats.mean vals ] ))
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  Report.make ~id:"fig23"
    ~title:"Average Whisper reduction vs simulated trace length (%)"
    ~header:[ "events"; "avg-reduction" ] rows

(* ------------------------------------------------------------------ *)

let all_ids =
  [
    "table1"; "table2"; "table3"; "fig1"; "fig2"; "fig3"; "fig4"; "fig5";
    "fig6"; "fig7"; "fig12"; "fig13"; "fig14"; "fig15"; "fig16"; "fig17";
    "fig18"; "fig19"; "fig20"; "fig21"; "fig22"; "fig23";
  ]

let by_id = function
  | "table1" -> Some (fun _ -> table1 ())
  | "table2" -> Some (fun _ -> table2 ())
  | "table3" -> Some (fun _ -> table3 ())
  | "fig1" -> Some fig1
  | "fig2" -> Some fig2
  | "fig3" -> Some fig3
  | "fig4" -> Some fig4
  | "fig5" -> Some fig5
  | "fig6" -> Some fig6
  | "fig7" -> Some fig7
  | "fig12" -> Some fig12
  | "fig13" -> Some fig13
  | "fig14" -> Some fig14
  | "fig15" -> Some (fun ctx -> fig15 ctx)
  | "fig16" -> Some fig16
  | "fig17" -> Some fig17
  | "fig18" -> Some fig18
  | "fig19" -> Some fig19
  | "fig20" -> Some fig20
  | "fig21" -> Some fig21
  | "fig22" -> Some fig22
  | "fig23" -> Some fig23
  | _ -> None
