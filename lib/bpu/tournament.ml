type t = {
  a : Predictor.t;
  b : Predictor.t;
  chooser : Bytes.t;  (* 2-bit: >= 2 prefers [b] *)
  mask : int;
  mutable ctx_pc : int;
  mutable ctx_pred_a : bool;
  mutable ctx_pred_b : bool;
}

let predict t ~pc =
  let pa = t.a.Predictor.predict ~pc in
  let pb = t.b.Predictor.predict ~pc in
  t.ctx_pc <- pc;
  t.ctx_pred_a <- pa;
  t.ctx_pred_b <- pb;
  let c = Char.code (Bytes.unsafe_get t.chooser ((pc lsr 2) land t.mask)) in
  if c >= 2 then pb else pa

let train t ~pc ~taken =
  if pc <> t.ctx_pc then invalid_arg "Tournament.train: mismatch";
  (* chooser moves toward whichever component was right (only when they
     disagree) *)
  if t.ctx_pred_a <> t.ctx_pred_b then begin
    let i = (pc lsr 2) land t.mask in
    let c = Char.code (Bytes.unsafe_get t.chooser i) in
    let c = Counters.update c ~taken:(t.ctx_pred_b = taken) ~min:0 ~max:3 in
    Bytes.unsafe_set t.chooser i (Char.unsafe_chr c)
  end;
  t.a.train ~pc ~taken;
  t.b.train ~pc ~taken

let spectate t ~pc ~taken =
  t.a.Predictor.spectate ~pc ~taken;
  t.b.Predictor.spectate ~pc ~taken

let make ?(log_chooser = 12) ~a ~b () =
  let t =
    {
      a;
      b;
      chooser = Bytes.make (1 lsl log_chooser) '\001';
      mask = (1 lsl log_chooser) - 1;
      ctx_pc = 0;
      ctx_pred_a = false;
      ctx_pred_b = false;
    }
  in
  {
    Predictor.name = Printf.sprintf "tournament(%s,%s)" a.Predictor.name b.Predictor.name;
    predict = (fun ~pc -> predict t ~pc);
    train = (fun ~pc ~taken -> train t ~pc ~taken);
    spectate = (fun ~pc ~taken -> spectate t ~pc ~taken);
    storage_bits =
      a.Predictor.storage_bits + b.Predictor.storage_bits
      + (2 * (1 lsl log_chooser));
    is_oracle = false;
  }

let default () =
  make ~a:(Twolevel.pag ()) ~b:(Gshare.make ~log_entries:13 ~hist_bits:12) ()
