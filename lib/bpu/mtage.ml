open Whisper_util

type t = {
  tables : (int, int) Hashtbl.t array;  (* counter per substream key *)
  base : Bimodal.table;
  sc : Stat_corrector.t;
  hist : History.t;
  folded : History.Folded.t array;
  n : int;
  mutable ctx_pc : int;
  mutable ctx_provider : int;
  mutable ctx_keys : int array;
  mutable ctx_tage_pred : bool;
  mutable ctx_pred : bool;
}

(* SplitMix-style finalizer over (pc, folded-window) for collision-free-in-
   practice substream keys. *)
let mix pc fold =
  let z = (pc * 0x9E3779B1) lxor (fold * 0x85EBCA77) in
  let z = (z lxor (z lsr 31)) * 0xC2B2AE3D in
  (z lxor (z lsr 29)) land max_int

let create ~n_lengths ~max_len =
  let lengths = Geometric.series ~a:8 ~n:max_len ~m:n_lengths in
  {
    tables = Array.map (fun _ -> Hashtbl.create 4096) lengths;
    base = Bimodal.create_table ~log_entries:16;
    sc = Stat_corrector.create ~log_entries:15;
    hist = History.create ~depth:(2 * max_len);
    folded = Array.map (fun len -> History.Folded.create ~len ~chunk:62) lengths;
    n = n_lengths;
    ctx_pc = 0;
    ctx_provider = -1;
    ctx_keys = Array.make n_lengths 0;
    ctx_tage_pred = false;
    ctx_pred = false;
  }

let predict t ~pc =
  t.ctx_pc <- pc;
  for i = 0 to t.n - 1 do
    t.ctx_keys.(i) <- mix pc (History.Folded.value t.folded.(i))
  done;
  let provider = ref (-1) in
  let i = ref (t.n - 1) in
  while !provider < 0 && !i >= 0 do
    if Hashtbl.mem t.tables.(!i) t.ctx_keys.(!i) then provider := !i;
    decr i
  done;
  let pred, conf =
    if !provider >= 0 then begin
      let c = Hashtbl.find t.tables.(!provider) t.ctx_keys.(!provider) in
      let conf =
        match abs ((2 * c) - 7) with 7 | 5 -> `High | 3 -> `Med | _ -> `Low
      in
      (c >= 4, conf)
    end
    else (Bimodal.predict_t t.base ~pc, `Med)
  in
  t.ctx_provider <- !provider;
  t.ctx_tage_pred <- pred;
  let final = Stat_corrector.refine_conf t.sc ~conf ~pc ~tage_pred:pred in
  t.ctx_pred <- final;
  final

let train t ~pc ~taken =
  if pc <> t.ctx_pc then invalid_arg "Mtage.train: mismatch";
  Stat_corrector.train t.sc ~pc ~taken;
  (if t.ctx_provider >= 0 then begin
     let tbl = t.tables.(t.ctx_provider) in
     let key = t.ctx_keys.(t.ctx_provider) in
     let c = Hashtbl.find tbl key in
     Hashtbl.replace tbl key (Counters.update c ~taken ~min:0 ~max:7)
   end
   else Bimodal.update_t t.base ~pc ~taken);
  (* on a misprediction, memorize the substream at the next longer length *)
  if t.ctx_tage_pred <> taken && t.ctx_provider < t.n - 1 then begin
    let j = t.ctx_provider + 1 in
    Hashtbl.replace t.tables.(j) t.ctx_keys.(j) (if taken then 4 else 3)
  end;
  History.push_all t.hist t.folded taken

let spectate t ~taken =
  Stat_corrector.spectate t.sc ~taken;
  History.push_all t.hist t.folded taken

let predictor ?(n_lengths = 9) ?(max_len = 1024) () =
  let t = create ~n_lengths ~max_len in
  {
    Predictor.name = "mtage-sc-unlimited";
    predict = (fun ~pc -> predict t ~pc);
    train = (fun ~pc ~taken -> train t ~pc ~taken);
    spectate = (fun ~pc:_ ~taken -> spectate t ~taken);
    storage_bits = 0;
    is_oracle = false;
  }

let exec t ~pc ~taken =
  let pred = predict t ~pc in
  train t ~pc ~taken;
  pred = taken

let compiled ?(n_lengths = 9) ?(max_len = 1024) () =
  {
    Predictor.Compiled.name = "mtage-sc-unlimited";
    storage_bits = 0;
    fill =
      (fun ~arena ~n ~verdicts ->
        let t = create ~n_lengths ~max_len in
        for i = 0 to n - 1 do
          let pc = Whisper_trace.Arena.pc arena i in
          let taken = Whisper_trace.Arena.taken arena i in
          Bytes.unsafe_set verdicts i
            (if exec t ~pc ~taken then '\001' else '\000')
        done);
  }
