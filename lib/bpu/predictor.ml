type t = {
  name : string;
  predict : pc:int -> bool;
  train : pc:int -> taken:bool -> unit;
  spectate : pc:int -> taken:bool -> unit;
  storage_bits : int;
  is_oracle : bool;
}

module Compiled = struct
  type t = {
    name : string;
    storage_bits : int;
    fill :
      arena:Whisper_trace.Arena.t -> n:int -> verdicts:Bytes.t -> unit;
  }
end

let always_taken () =
  {
    name = "always-taken";
    predict = (fun ~pc:_ -> true);
    train = (fun ~pc:_ ~taken:_ -> ());
    spectate = (fun ~pc:_ ~taken:_ -> ());
    storage_bits = 0;
    is_oracle = false;
  }

let ideal () =
  {
    name = "ideal";
    predict = (fun ~pc:_ -> true);
    train = (fun ~pc:_ ~taken:_ -> ());
    spectate = (fun ~pc:_ ~taken:_ -> ());
    storage_bits = 0;
    is_oracle = true;
  }
