type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next t in
  { state = mix s }

let bits t n =
  if n < 0 || n > 62 then invalid_arg "Rng.bits";
  if n = 0 then 0
  else
    Int64.to_int (Int64.shift_right_logical (next t) (64 - n))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* Rejection sampling over 62 usable bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next t) 2) land mask in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.compare (Int64.logand (next t) 1L) 0L <> 0

let bernoulli t p = float t 1.0 < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p = 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n Fun.id in
  shuffle t arr;
  arr

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose";
  arr.(int t (Array.length arr))

let sample_weighted t arr =
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 arr in
  if total <= 0.0 then invalid_arg "Rng.sample_weighted";
  let target = float t total in
  let rec go i acc =
    if i >= Array.length arr - 1 then snd arr.(Array.length arr - 1)
    else
      let w, v = arr.(i) in
      let acc = acc +. w in
      if target < acc then v else go (i + 1) acc
  in
  go 0 0.0
