(* Tests for the multicore experiment runner: the Whisper_util.Pool
   domain pool, the persistent result cache (round trip, corruption
   recovery, warm-rerun hit accounting) and the parallel-vs-sequential
   determinism of experiment tables. *)

open Whisper_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let app name = Option.get (Whisper_trace.Workloads.by_name name)

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let ok = function Ok v -> v | Error e -> raise e

let test_pool_map_ordered () =
  let xs = Array.init 100 Fun.id in
  List.iter
    (fun jobs ->
      let ys = Whisper_util.Pool.map ~jobs (fun i -> i * i) xs in
      check_int "length" 100 (Array.length ys);
      Array.iteri
        (fun i r -> check_int (Printf.sprintf "jobs=%d slot %d" jobs i) (i * i) (ok r))
        ys)
    [ 1; 4 ]

let test_pool_map_matches_sequential () =
  let xs = Array.init 64 (fun i -> i * 37) in
  let seq = Whisper_util.Pool.map ~jobs:1 (fun x -> x + 1) xs in
  let par = Whisper_util.Pool.map ~jobs:4 (fun x -> x + 1) xs in
  check_bool "identical outcome arrays" true (seq = par)

exception Boom of int

let test_pool_exception_isolated () =
  let xs = Array.init 32 Fun.id in
  let ys =
    Whisper_util.Pool.map ~jobs:4
      (fun i -> if i = 17 then raise (Boom i) else i)
      xs
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> check_int "survivor" i v
      | Error (Boom n) ->
          check_int "failing slot" 17 i;
          check_int "payload" 17 n
      | Error e -> raise e)
    ys;
  check_bool "exactly one failure" true
    (Array.to_list ys
    |> List.filter (function Error _ -> true | Ok _ -> false)
    |> List.length = 1);
  (* the pool machinery is not wedged: a fresh map still completes *)
  let again = Whisper_util.Pool.map ~jobs:4 (fun i -> -i) xs in
  Array.iteri (fun i r -> check_int "after failure" (-i) (ok r)) again

let test_pool_submit_await () =
  let pool = Whisper_util.Pool.create ~jobs:2 () in
  check_int "jobs" 2 (Whisper_util.Pool.jobs pool);
  let futures =
    List.init 20 (fun i -> Whisper_util.Pool.submit pool (fun () -> 3 * i))
  in
  List.iteri
    (fun i fut -> check_int "future" (3 * i) (ok (Whisper_util.Pool.await fut)))
    futures;
  Whisper_util.Pool.shutdown pool;
  (* idempotent, and submit after shutdown is refused *)
  Whisper_util.Pool.shutdown pool;
  check_bool "submit refused" true
    (match Whisper_util.Pool.submit pool (fun () -> 0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Pool: persistent-pool scheduling                                   *)
(* ------------------------------------------------------------------ *)

let test_pool_map_pool_reusable () =
  (* map_pool runs on an existing pool — no domains spawned per call —
     and the pool survives any number of maps *)
  let pool = Whisper_util.Pool.create ~jobs:2 () in
  let xs = Array.init 50 Fun.id in
  let ys = Whisper_util.Pool.map_pool pool (fun i -> i * 7) xs in
  Array.iteri (fun i r -> check_int "slot" (i * 7) (ok r)) ys;
  let zs = Whisper_util.Pool.map_pool pool (fun i -> i - 1) xs in
  Array.iteri (fun i r -> check_int "second map, same pool" (i - 1) (ok r)) zs;
  Whisper_util.Pool.shutdown pool

let test_pool_fanout_width () =
  let pool = Whisper_util.Pool.create ~jobs:3 () in
  let hits = Atomic.make 0 in
  Whisper_util.Pool.fanout pool ~width:4 (fun () -> Atomic.incr hits);
  check_int "every claimer ran the body once" 4 (Atomic.get hits);
  Atomic.set hits 0;
  Whisper_util.Pool.fanout pool ~width:99 (fun () -> Atomic.incr hits);
  check_int "width clamped to workers + caller" 4 (Atomic.get hits);
  check_bool "claimer exception propagates" true
    (match Whisper_util.Pool.fanout pool ~width:2 (fun () -> failwith "boom") with
    | exception Failure _ -> true
    | () -> false);
  Whisper_util.Pool.shutdown pool

let test_pool_nested_fanout_inline () =
  (* fan-out from inside a pool worker must degrade to an inline call
     (one body execution, no submissions) or the pool would deadlock
     waiting on itself *)
  let pool = Whisper_util.Pool.create ~jobs:2 () in
  let inner = Atomic.make 0 in
  let ys =
    Whisper_util.Pool.map_pool pool
      (fun i ->
        Whisper_util.Pool.fanout pool ~width:4 (fun () -> Atomic.incr inner);
        i)
      (Array.init 4 Fun.id)
  in
  Array.iteri (fun i r -> check_int "outer task" i (ok r)) ys;
  check_int "nested fanout ran inline exactly once per task" 4
    (Atomic.get inner);
  Whisper_util.Pool.shutdown pool

let test_pool_shared_grows () =
  (* the process-wide pool only ever widens; narrower requests reuse
     the existing pool rather than churning domains *)
  let p2 = Whisper_util.Pool.shared ~jobs:2 in
  check_bool "at least two workers" true (Whisper_util.Pool.jobs p2 >= 2);
  let p1 = Whisper_util.Pool.shared ~jobs:1 in
  check_bool "narrower request reuses the wide pool" true (p1 == p2);
  let p3 = Whisper_util.Pool.shared ~jobs:(Whisper_util.Pool.jobs p2 + 1) in
  check_bool "wider request grows the pool" true
    (Whisper_util.Pool.jobs p3 > Whisper_util.Pool.jobs p2);
  let fut = Whisper_util.Pool.submit p3 (fun () -> 41 + 1) in
  check_int "shared pool runs tasks" 42 (ok (Whisper_util.Pool.await fut))

(* ------------------------------------------------------------------ *)
(* Pool: timeouts and retries                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_await_timeout () =
  let pool = Whisper_util.Pool.create ~jobs:1 () in
  let slow =
    Whisper_util.Pool.submit pool (fun () ->
        Unix.sleepf 0.25;
        7)
  in
  check_bool "still running" true
    (Whisper_util.Pool.await_timeout slow ~seconds:0.02 = None);
  (match Whisper_util.Pool.await_timeout slow ~seconds:5.0 with
  | Some (Ok 7) -> ()
  | _ -> Alcotest.fail "slow task should finish within the long wait");
  Whisper_util.Pool.shutdown pool

let test_pool_retry_transient () =
  (* every element fails its first attempt; the retry succeeds *)
  let policy =
    { Whisper_util.Pool.default_policy with attempts = 3; backoff_s = 0.001 }
  in
  let ys =
    Whisper_util.Pool.map_retry ~jobs:2 ~policy
      (fun ~attempt x -> if attempt = 1 then failwith "flaky" else x * 10)
      (Array.init 8 Fun.id)
  in
  Array.iteri (fun i r -> check_int "recovered on retry" (i * 10) (ok r)) ys

let test_pool_retry_exhausted () =
  let tries = Atomic.make 0 in
  let policy =
    { Whisper_util.Pool.default_policy with attempts = 3; backoff_s = 0.001 }
  in
  let ys =
    Whisper_util.Pool.map_retry ~jobs:2 ~policy
      (fun ~attempt:_ _ ->
        Atomic.incr tries;
        failwith "always broken")
      [| 0 |]
  in
  check_int "exactly [attempts] tries" 3 (Atomic.get tries);
  check_bool "final outcome is the task's error" true
    (match ys.(0) with Error (Failure _) -> true | _ -> false)

let test_pool_hung_task_recovers () =
  (* a deliberately hung first attempt trips the per-task timeout; the
     retry answers promptly and wins *)
  let policy =
    { Whisper_util.Pool.attempts = 2; timeout_s = Some 0.05; backoff_s = 0.001 }
  in
  let ys =
    Whisper_util.Pool.map_retry ~jobs:2 ~policy
      (fun ~attempt x ->
        if attempt = 1 then Unix.sleepf 0.4;
        x + 1)
      [| 41 |]
  in
  check_int "recovered after hang" 42 (ok ys.(0))

let test_pool_hung_task_times_out () =
  (* a task that hangs on every attempt surfaces as a typed Timeout *)
  let policy =
    { Whisper_util.Pool.attempts = 2; timeout_s = Some 0.03; backoff_s = 0.001 }
  in
  let ys =
    Whisper_util.Pool.map_retry ~jobs:1 ~policy
      (fun ~attempt:_ () -> Unix.sleepf 0.2)
      [| () |]
  in
  match ys.(0) with
  | Error
      (Whisper_util.Whisper_error.Error
        {
          kind = Whisper_util.Whisper_error.Timeout _;
          stage = Whisper_util.Whisper_error.Task;
          _;
        }) ->
      ()
  | _ -> Alcotest.fail "expected a typed Task/Timeout error"

(* ------------------------------------------------------------------ *)
(* Result cache                                                       *)
(* ------------------------------------------------------------------ *)

let sample_result () =
  {
    Whisper_pipeline.Machine.cycles = 123456.75;
    instrs = 98765;
    branches = 4321;
    mispredicts = 171;
    misp_stall = 3400.5;
    fe_stall = 120.25;
    btb_stall = 33.0;
    l1i_misses = 99;
    exposed_misses = 41;
    seg_mispredicts = [| 17; 18; 19; 20; 21; 22; 23; 24; 25; 26 |];
    seg_instrs = [| 9876; 9877; 9878; 9879; 9880; 9881; 9882; 9883; 9884; 9885 |];
  }

let test_cache_roundtrip () =
  let c = Result_cache.create ~dir:(Test_dirs.fresh "rt") () in
  let key = "cassandra/whisper/0/1/64/60000" in
  check_bool "empty" true (Result_cache.find c ~key = None);
  let r = sample_result () in
  Result_cache.store c ~key r;
  check_bool "round trip" true (Result_cache.find c ~key = Some r);
  (* a different key maps to a different entry *)
  check_bool "other key misses" true (Result_cache.find c ~key:"other" = None)

let test_cache_corrupt_recovery () =
  let c = Result_cache.create ~dir:(Test_dirs.fresh "corrupt") () in
  let key = "mysql/tage-scl/0/1/64/60000" in
  Result_cache.store c ~key (sample_result ());
  let file = Result_cache.path c ~key in
  (* truncate mid-entry: decode must fail, find must fall back to a miss
     and remove the file *)
  let oc = open_out_bin file in
  output_string oc "WRSCgarbage";
  close_out oc;
  check_bool "corrupt entry is a miss" true (Result_cache.find c ~key = None);
  check_bool "corrupt entry removed" true (not (Sys.file_exists file));
  (* storing again repairs the entry *)
  Result_cache.store c ~key (sample_result ());
  check_bool "repaired" true (Result_cache.find c ~key = Some (sample_result ()))

let test_cache_key_mismatch () =
  let r = sample_result () in
  let b = Result_cache.encode ~key:"key-a" r in
  check_bool "decode under the written key" true
    (Result_cache.decode ~key:"key-a" b = Ok r);
  check_bool "decode under another key fails typed" true
    (match Result_cache.decode ~key:"key-b" b with
    | Error e -> e.Whisper_util.Whisper_error.kind = Whisper_util.Whisper_error.Key_mismatch
    | Ok _ -> false)

let test_cache_counters () =
  let dir = Test_dirs.fresh "counters" in
  let c = Result_cache.create ~dir () in
  let key = "counter-key" in
  Result_cache.store c ~key (sample_result ());
  let file = Result_cache.path c ~key in
  let oc = open_out_bin file in
  output_string oc "WRSCgarbage";
  close_out oc;
  check_bool "corrupt entry is a miss" true (Result_cache.find c ~key = None);
  check_int "corrupt drop counted" 1
    (Result_cache.counters c).Result_cache.corrupt_dropped;
  check_int "no write failures yet" 0
    (Result_cache.counters c).Result_cache.write_failures;
  (* replace the cache directory with a plain file: every subsequent
     write must fail, be swallowed, and be counted *)
  let wf_dir = Test_dirs.fresh "wf" in
  let c2 = Result_cache.create ~dir:wf_dir () in
  Unix.rmdir wf_dir;
  let oc = open_out wf_dir in
  close_out oc;
  Result_cache.store c2 ~key:"k" (sample_result ());
  Result_cache.store c2 ~key:"k2" (sample_result ());
  check_int "write failures counted" 2
    (Result_cache.counters c2).Result_cache.write_failures;
  Sys.remove wf_dir

let test_cache_corrupt_hook () =
  (* the fault-injection read hook makes every entry decode-fail *)
  let c =
    Result_cache.create
      ~corrupt:(fun ~key:_ b -> Bytes.sub b 0 (Bytes.length b / 2))
      ~dir:(Test_dirs.fresh "hook") ()
  in
  Result_cache.store c ~key:"k" (sample_result ());
  check_bool "hook-corrupted read is a miss" true
    (Result_cache.find c ~key:"k" = None);
  check_int "counted" 1 (Result_cache.counters c).Result_cache.corrupt_dropped

(* ------------------------------------------------------------------ *)
(* Runner: parallel determinism and warm-cache reruns                 *)
(* ------------------------------------------------------------------ *)

let det_events = 20_000

let test_parallel_determinism () =
  let seq = Runner.create_ctx ~events:det_events ~jobs:1 () in
  let par = Runner.create_ctx ~events:det_events ~jobs:4 () in
  let a = Experiments.fig1 seq in
  let b = Experiments.fig1 par in
  check_string "fig1 rows byte-identical" (Report.to_csv a) (Report.to_csv b);
  check_int "4 domains" 4 (Runner.jobs par);
  check_bool "both simulated" true
    ((Runner.stats seq).Runner.sims > 0
    && (Runner.stats seq).Runner.sims = (Runner.stats par).Runner.sims)

let test_run_batch_dedups () =
  let ctx = Runner.create_ctx ~events:det_events ~jobs:2 () in
  let a = app "finagle-http" in
  Runner.run_batch ctx
    [
      Runner.sim a Runner.Baseline;
      Runner.sim a Runner.Baseline;
      Runner.collect a;
      Runner.collect a;
    ];
  check_int "duplicate work items simulate once" 1 (Runner.stats ctx).Runner.sims

let test_run_batch_whisper_parallel_identity () =
  (* the compiled whisper runtime through run_batch must be
     byte-identical across job counts — the runtime is per-run state, so
     domain scheduling must not be able to reorder anything it observes *)
  let a = app "finagle-http" in
  let techniques =
    [
      Runner.Whisper Whisper_core.Config.default;
      Runner.Whisper
        { Whisper_core.Config.default with hint_buffer_size = 64 };
    ]
  in
  let results ~jobs =
    let ctx = Runner.create_ctx ~events:det_events ~jobs () in
    Runner.run_batch ctx (List.map (fun t -> Runner.sim a t) techniques);
    List.map (fun t -> Runner.run ctx a t) techniques
  in
  check_bool "whisper batch results byte-identical for j1 and j4" true
    (results ~jobs:1 = results ~jobs:4)

let test_warm_cache_rerun () =
  let dir = Test_dirs.fresh "warm" in
  let cold = Runner.create_ctx ~events:det_events ~jobs:2 ~cache_dir:dir () in
  let r1 = Experiments.fig2 cold in
  let s1 = Runner.stats cold in
  check_bool "cold run simulates" true (s1.Runner.sims > 0);
  check_int "cold run misses every lookup" s1.Runner.sims s1.Runner.cache_misses;
  check_int "cold run has no hits" 0 s1.Runner.cache_hits;
  (* a fresh ctx over the same directory must be served from disk *)
  let warm = Runner.create_ctx ~events:det_events ~jobs:2 ~cache_dir:dir () in
  let r2 = Experiments.fig2 warm in
  let s2 = Runner.stats warm in
  check_int "warm run performs zero simulations" 0 s2.Runner.sims;
  check_int "warm run misses nothing" 0 s2.Runner.cache_misses;
  check_int "warm run hits everything" s1.Runner.sims s2.Runner.cache_hits;
  check_string "identical rows" (Report.to_csv r1) (Report.to_csv r2);
  (* changing the events count invalidates the key, not the entry *)
  let other =
    Runner.create_ctx ~events:(det_events + 1) ~jobs:1 ~cache_dir:dir ()
  in
  ignore (Runner.run other (app "mysql") Runner.Baseline);
  check_int "different events: miss" 1 (Runner.stats other).Runner.cache_misses

let test_report_timing_line () =
  let tm =
    {
      Report.wall_s = 1.5;
      sims = 24;
      sim_seconds = 4.25;
      cache_hits = 0;
      cache_misses = 24;
    }
  in
  check_string "format" "timing: wall=1.50s sim-wall=4.25s sims=24 cache-hits=0 cache-misses=24"
    (Report.timing_line tm);
  let r =
    Report.with_timing tm
      (Report.make ~id:"figX" ~title:"t" ~header:[ "app"; "a" ] [ ("x", [ 1.0 ]) ])
  in
  check_bool "printed" true
    (let s = Report.to_string r in
     let sub = "timing: wall=" in
     let n = String.length s and m = String.length sub in
     let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
     scan 0);
  check_bool "csv excludes timing" true
    (Report.to_csv r = Report.to_csv { r with Report.timing = None })

(* ------------------------------------------------------------------ *)
(* Arena replay: closure equivalence, persistent arena cache          *)
(* ------------------------------------------------------------------ *)

let arena_techniques =
  [
    Runner.Baseline;
    Runner.Ideal;
    Runner.Mtage_sc;
    Runner.Rombf 4;
    Runner.Branchnet (Whisper_branchnet.Branchnet.Budget 8192);
    Runner.Whisper Whisper_core.Config.default;
  ]

let test_arena_matches_closure_all_techniques () =
  (* the packed-arena replay (default) must be byte-identical to the
     closure-source oracle for every technique *)
  let closure =
    Runner.create_ctx ~events:det_events ~jobs:1 ~replay:`Closure ()
  in
  let arena = Runner.create_ctx ~events:det_events ~jobs:1 ~replay:`Arena () in
  check_bool "modes stick" true
    (Runner.replay closure = `Closure && Runner.replay arena = `Arena);
  let a = app "cassandra" in
  List.iter
    (fun t ->
      let rc = Runner.run closure a t in
      let ra = Runner.run arena a t in
      check_bool (Runner.technique_name t ^ " byte-identical") true (rc = ra))
    arena_techniques;
  check_bool "arena mode built arenas" true
    ((Runner.stats arena).Runner.arena_builds > 0);
  check_int "closure mode built none" 0
    (Runner.stats closure).Runner.arena_builds

let test_arena_cache_warm_and_corrupt () =
  let dir = Test_dirs.fresh "arena" in
  let a = app "cassandra" in
  let cold = Runner.create_ctx ~events:det_events ~jobs:1 ~cache_dir:dir () in
  let built = Runner.arena cold a ~input:1 in
  let s = Runner.stats cold in
  check_int "cold: one build" 1 s.Runner.arena_builds;
  check_int "cold: one cache miss" 1 s.Runner.arena_cache_misses;
  check_int "cold: no hits" 0 s.Runner.arena_cache_hits;
  (* the in-process memo short-circuits the second request entirely *)
  ignore (Runner.arena cold a ~input:1);
  check_int "memoized: no second lookup" 1
    (Runner.stats cold).Runner.arena_cache_misses;
  (* a fresh ctx over the same directory loads from disk, no rebuild *)
  let warm = Runner.create_ctx ~events:det_events ~jobs:1 ~cache_dir:dir () in
  let loaded = Runner.arena warm a ~input:1 in
  let sw = Runner.stats warm in
  check_int "warm: zero builds" 0 sw.Runner.arena_builds;
  check_int "warm: one hit" 1 sw.Runner.arena_cache_hits;
  check_string "warm arena identical"
    (Whisper_trace.Arena.digest built)
    (Whisper_trace.Arena.digest loaded);
  (* corrupt every cached arena on disk: the next ctx must drop the
     entries, count the drops, and regenerate an identical arena *)
  let arenas_dir = Filename.concat dir Arena_cache.default_subdir in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".arena" then begin
        let oc = open_out_bin (Filename.concat arenas_dir f) in
        output_string oc "WARCgarbage";
        close_out oc
      end)
    (Sys.readdir arenas_dir);
  let fresh = Runner.create_ctx ~events:det_events ~jobs:1 ~cache_dir:dir () in
  let regen = Runner.arena fresh a ~input:1 in
  let sf = Runner.stats fresh in
  check_int "corrupt entry: rebuilt" 1 sf.Runner.arena_builds;
  check_int "corrupt entry: counted as a miss" 1 sf.Runner.arena_cache_misses;
  check_string "regenerated arena identical"
    (Whisper_trace.Arena.digest built)
    (Whisper_trace.Arena.digest regen);
  check_bool "corrupt drop reported in fault summary" true
    ((Runner.fault_summary fresh).Report.cache_corrupt_dropped >= 1)

(* ------------------------------------------------------------------ *)
(* Chaos mode: fault injection, degradation, determinism              *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  scan 0

let test_report_faults_line () =
  let f =
    {
      Report.injected = 5;
      observed = 7;
      retries = 4;
      quarantined = 2;
      cache_write_failures = 1;
      cache_corrupt_dropped = 3;
    }
  in
  check_string "format"
    "faults: injected=5 observed=7 retries=4 quarantined=2 cache-write-fail=1 \
     cache-corrupt-drop=3"
    (Report.faults_line f);
  let r =
    Report.with_faults f
      (Report.make ~id:"figX" ~title:"t" ~header:[ "app"; "a" ]
         [ ("x", [ 1.0 ]); ("y", [ Float.nan ]) ])
  in
  let s = Report.to_string r in
  check_bool "faults line printed" true (contains s "faults: injected=5");
  check_bool "nan cells render as DEGRADED" true (contains s "DEGRADED");
  check_bool "csv excludes faults" true
    (Report.to_csv r = Report.to_csv { r with Report.faults = None })

let chaos_ctx ~jobs ?(faults = 0.5) ?(fault_seed = 7) () =
  Runner.create_ctx ~events:det_events ~jobs ~faults ~fault_seed ~retries:1
    ~hang_s:0.05 ()

let test_chaos_determinism () =
  (* same fault seed → byte-identical table and identical quarantine,
     whatever the job count *)
  let seq = chaos_ctx ~jobs:1 () in
  let par = chaos_ctx ~jobs:4 () in
  let a = Experiments.fig1 seq in
  let b = Experiments.fig1 par in
  check_string "chaos fig1 byte-identical across job counts"
    (Report.to_csv a) (Report.to_csv b);
  check_bool "identical quarantine" true
    (Runner.quarantined seq = Runner.quarantined par);
  let fs = Runner.fault_summary seq in
  let fp = Runner.fault_summary par in
  check_bool "faults were actually injected" true (fs.Report.injected > 0);
  check_bool "identical fault summaries" true (fs = fp)

let test_chaos_degrades_not_aborts () =
  let ctx =
    Runner.create_ctx ~events:det_events ~jobs:2 ~faults:1.0 ~fault_seed:1
      ~retries:0 ~hang_s:0.02 ()
  in
  (* rate 1.0: every work item faulted; persistent byte faults exhaust
     their single attempt and must degrade, not raise *)
  let r = Experiments.fig1 ctx in
  let q = Runner.quarantined ctx in
  check_bool "some work quarantined" true (q <> []);
  check_bool "quarantined errors are typed Injected" true
    (List.exists
       (fun (_, e) ->
         e.Whisper_util.Whisper_error.stage = Whisper_util.Whisper_error.Injected)
       q);
  check_bool "table renders DEGRADED rows" true
    (contains (Report.to_string r) "DEGRADED");
  let f = Runner.fault_summary ctx in
  check_bool "summary counts quarantine" true
    (f.Report.quarantined = List.length q && f.Report.observed > 0)

let test_no_faults_means_no_degradation () =
  let ctx = Runner.create_ctx ~events:det_events ~jobs:2 ~faults:0.0 () in
  let r = Experiments.fig1 ctx in
  check_bool "no quarantine" true (Runner.quarantined ctx = []);
  let f = Runner.fault_summary ctx in
  check_bool "all counters zero" true
    (f
    = {
        Report.injected = 0;
        observed = 0;
        retries = 0;
        quarantined = 0;
        cache_write_failures = 0;
        cache_corrupt_dropped = 0;
      });
  check_bool "no DEGRADED rows" true
    (not (contains (Report.to_string r) "DEGRADED"))

let () =
  Alcotest.run "whisper_runner"
    [
      ( "pool",
        Alcotest.
          [
            test_case "map preserves order" `Quick test_pool_map_ordered;
            test_case "map matches sequential" `Quick test_pool_map_matches_sequential;
            test_case "exception isolated" `Quick test_pool_exception_isolated;
            test_case "submit/await/shutdown" `Quick test_pool_submit_await;
            test_case "map_pool reusable" `Quick test_pool_map_pool_reusable;
            test_case "fanout width" `Quick test_pool_fanout_width;
            test_case "nested fanout inline" `Quick
              test_pool_nested_fanout_inline;
            test_case "shared pool grows" `Quick test_pool_shared_grows;
            test_case "await timeout" `Quick test_pool_await_timeout;
            test_case "retry transient" `Quick test_pool_retry_transient;
            test_case "retry exhausted" `Quick test_pool_retry_exhausted;
            test_case "hung task recovers" `Quick test_pool_hung_task_recovers;
            test_case "hung task times out" `Quick test_pool_hung_task_times_out;
          ] );
      ( "result-cache",
        Alcotest.
          [
            test_case "round trip" `Quick test_cache_roundtrip;
            test_case "corrupt recovery" `Quick test_cache_corrupt_recovery;
            test_case "key mismatch" `Quick test_cache_key_mismatch;
            test_case "degradation counters" `Quick test_cache_counters;
            test_case "corrupt read hook" `Quick test_cache_corrupt_hook;
          ] );
      ( "runner",
        Alcotest.
          [
            test_case "parallel determinism" `Quick test_parallel_determinism;
            test_case "run_batch dedups" `Quick test_run_batch_dedups;
            test_case "whisper batch identical across job counts" `Quick
              test_run_batch_whisper_parallel_identity;
            test_case "warm cache rerun" `Quick test_warm_cache_rerun;
            test_case "report timing line" `Quick test_report_timing_line;
          ] );
      ( "arena-replay",
        Alcotest.
          [
            test_case "matches closure for every technique" `Quick
              test_arena_matches_closure_all_techniques;
            test_case "persistent cache: warm + corrupt recovery" `Quick
              test_arena_cache_warm_and_corrupt;
          ] );
      ( "chaos",
        Alcotest.
          [
            test_case "report faults line" `Quick test_report_faults_line;
            test_case "determinism across job counts" `Quick
              test_chaos_determinism;
            test_case "degrades instead of aborting" `Quick
              test_chaos_degrades_not_aborts;
            test_case "faults off = clean run" `Quick
              test_no_faults_means_no_degradation;
          ] );
    ]
