type t = {
  weights : int array array;  (* per entry: bias + one weight per bit *)
  mask : int;
  h : int;
  theta : int;
  mutable ghist : int;
  mutable ctx_pc : int;
  mutable ctx_sum : int;
}

let make ?(hist_bits = 32) ?(log_entries = 10) ?theta () =
  if hist_bits < 1 || hist_bits > 62 then invalid_arg "Perceptron.make";
  let theta =
    match theta with
    | Some t -> t
    | None -> int_of_float ((2.14 *. float_of_int hist_bits) +. 20.6)
  in
  let n = 1 lsl log_entries in
  let t =
    {
      weights = Array.init n (fun _ -> Array.make (hist_bits + 1) 0);
      mask = n - 1;
      h = hist_bits;
      theta;
      ghist = 0;
      ctx_pc = 0;
      ctx_sum = 0;
    }
  in
  let sum pc =
    let w = t.weights.((pc lsr 2) land t.mask) in
    let s = ref w.(0) in
    for i = 1 to t.h do
      let bit = (t.ghist lsr (i - 1)) land 1 in
      s := !s + if bit = 1 then w.(i) else -w.(i)
    done;
    !s
  in
  let clamp v = if v > 127 then 127 else if v < -128 then -128 else v in
  {
    Predictor.name = Printf.sprintf "perceptron-h%d" hist_bits;
    predict =
      (fun ~pc ->
        let s = sum pc in
        t.ctx_pc <- pc;
        t.ctx_sum <- s;
        s >= 0);
    train =
      (fun ~pc ~taken ->
        if pc <> t.ctx_pc then invalid_arg "Perceptron.train: mismatch";
        let pred = t.ctx_sum >= 0 in
        if pred <> taken || abs t.ctx_sum <= t.theta then begin
          let w = t.weights.((pc lsr 2) land t.mask) in
          let dir = if taken then 1 else -1 in
          w.(0) <- clamp (w.(0) + dir);
          for i = 1 to t.h do
            let bit = (t.ghist lsr (i - 1)) land 1 in
            let x = if bit = 1 then 1 else -1 in
            w.(i) <- clamp (w.(i) + (dir * x))
          done
        end;
        t.ghist <- (t.ghist lsl 1) lor (if taken then 1 else 0));
    spectate =
      (fun ~pc:_ ~taken ->
        t.ghist <- (t.ghist lsl 1) lor if taken then 1 else 0);
    storage_bits = n * (hist_bits + 1) * 8;
    is_oracle = false;
  }
