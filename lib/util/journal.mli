(** Append-only, checksummed completion journal for crash-safe sweeps.

    The journal is the supervisor's write-ahead record of work-item
    outcomes: one self-contained record per completed or quarantined
    item, appended (and pushed to the OS) before the item is considered
    done.  A process killed with [SIGKILL] at any instant therefore
    leaves either a fully decodable journal, or one with a torn final
    record — and recovery handles the torn case by {e truncating} the
    corrupt suffix (tmp + rename, like the persistent caches) and
    counting what was dropped, so the affected items simply re-run.

    Records carry a marker byte, a length-guarded varint payload size
    and an 8-byte payload digest; the header binds the journal to one
    {!Manifest} id.  All decode failures are typed {!Whisper_error.t}s
    with stage [Journal] — corrupt bytes can never crash recovery. *)

type status = Done | Quarantined

type entry = { key : string; status : status; detail : string }
(** [detail] is the result digest for [Done] entries (re-verified
    against the result cache on resume) and the failure reason for
    [Quarantined] ones. *)

type t
(** An open journal, positioned for appends. *)

type recovery = {
  entries : entry list;  (** decodable records, in append order *)
  dropped_bytes : int;  (** corrupt suffix truncated away *)
  corrupt_tail : bool;  (** whether truncation happened *)
}

val format_version : int

val create : path:string -> manifest_id:string -> t
(** Start a fresh journal (truncating any existing file) bound to
    [manifest_id].  Creates parent directories. *)

val open_existing :
  path:string -> manifest_id:string -> (t * recovery, Whisper_error.t) result
(** Recover an existing journal: verify the header (typed [Error] on a
    missing file, bad magic, version skew or a different manifest id —
    the caller then starts fresh), decode records until the first
    corrupt one, truncate the corrupt suffix in place (atomic rewrite),
    and return the journal opened for further appends. *)

val append : t -> entry -> unit
(** Append one record and push it to the OS before returning.  Write
    failures raise [Sys_error]/[Unix_error] — a sweep that cannot
    journal must not pretend to be resumable. *)

val close : t -> unit
val path : t -> string

val entry_equal : entry -> entry -> bool

(** {2 Codec internals, exposed for fuzzing} *)

val encode_header : manifest_id:string -> bytes
val encode_entry : entry -> bytes

val decode_all :
  manifest_id:string -> bytes -> (recovery, Whisper_error.t) result
(** Pure recovery over raw journal bytes: header errors come back as
    [Error]; record corruption is absorbed into the returned
    {!recovery} (prefix entries + dropped byte count).  Total on any
    input. *)
