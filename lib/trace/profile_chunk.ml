open Whisper_util

type t = { app : string; seq : int; profile : Profile.t }

let magic = "WCHK"
let format_version = 1

let encode ~app ~seq profile =
  let w = Binio.Writer.create ~capacity:4096 () in
  Binio.Writer.magic w magic;
  Binio.Writer.varint w format_version;
  Binio.Writer.string w app;
  Binio.Writer.varint w seq;
  Binio.Writer.bytes w (Profile_io.to_bytes profile);
  Binio.Writer.contents w

let decode buf =
  Whisper_error.protect ~context:"profile-chunk" Profile_io @@ fun () ->
  let r = Binio.Reader.create buf in
  Binio.Reader.magic r magic;
  let v = Binio.Reader.varint r in
  if v <> format_version then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r) Profile_io
      (Whisper_error.Version_mismatch { got = v; expected = format_version });
  let app = Binio.Reader.string r in
  let seq = Binio.Reader.varint r in
  let profile = Profile_io.of_bytes_exn (Binio.Reader.bytes r) in
  if not (Binio.Reader.eof r) then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r) Profile_io
      Whisper_error.Trailing_bytes;
  { app; seq; profile }

let id buf = Digest.to_hex (Digest.bytes buf)

(* ------------------------------------------------------------------ *)
(* Canonical accumulator                                              *)
(* ------------------------------------------------------------------ *)

type acc_stat = {
  mutable execs : int;
  mutable taken_cnt : int;
  mutable mispred : int;
}

type accum = {
  lengths : int array;
  max_samples : int;
  record_bytes : int;
  stats : (int, acc_stat) Hashtbl.t;
  sets : (int, Mergeset.t) Hashtbl.t;  (* per-branch canonical samples *)
  ids : (string, unit) Hashtbl.t;  (* ingested chunk content keys *)
  mutable total_instrs : int;
  mutable total_branches : int;
  mutable total_mispred : int;
  mutable n_chunks : int;
  mutable n_duplicates : int;
  mutable n_samples : int;
}

let create_accum ?(max_samples = 512) ~lengths () =
  {
    lengths = Array.copy lengths;
    max_samples;
    record_bytes = 1 + 7 + Array.length lengths + 1;
    stats = Hashtbl.create 1024;
    sets = Hashtbl.create 256;
    ids = Hashtbl.create 64;
    total_instrs = 0;
    total_branches = 0;
    total_mispred = 0;
    n_chunks = 0;
    n_duplicates = 0;
    n_samples = 0;
  }

type outcome = Added of string | Duplicate of string

let chunks a = a.n_chunks
let duplicates a = a.n_duplicates
let samples a = a.n_samples

let merge_into a (p : Profile.t) =
  Profile.iter_stats p ~f:(fun ~pc s ->
      let acc =
        match Hashtbl.find_opt a.stats pc with
        | Some acc -> acc
        | None ->
            let acc = { execs = 0; taken_cnt = 0; mispred = 0 } in
            Hashtbl.add a.stats pc acc;
            acc
      in
      acc.execs <- acc.execs + s.Profile.execs;
      acc.taken_cnt <- acc.taken_cnt + s.Profile.taken_cnt;
      acc.mispred <- acc.mispred + s.Profile.mispred);
  a.total_instrs <- a.total_instrs + Profile.total_instrs p;
  a.total_branches <- a.total_branches + Profile.total_branches p;
  a.total_mispred <- a.total_mispred + Profile.total_mispred p;
  Array.iter
    (fun pc ->
      match Profile.raw_view p ~pc with
      | None -> ()
      | Some v ->
          let set =
            match Hashtbl.find_opt a.sets pc with
            | Some s -> s
            | None ->
                let s =
                  Mergeset.create ~stride:a.record_bytes ~cap:a.max_samples
                in
                Hashtbl.add a.sets pc s;
                s
          in
          for i = 0 to v.Profile.n - 1 do
            Mergeset.add set v.Profile.buf ~off:(i * v.Profile.record_bytes)
          done;
          a.n_samples <- a.n_samples + v.Profile.n)
    (Profile.candidates p)

let ingest_profile a ~id p =
  if Profile.lengths p <> a.lengths then
    invalid_arg "Profile_chunk.ingest_profile: length series mismatch";
  if Hashtbl.mem a.ids id then begin
    a.n_duplicates <- a.n_duplicates + 1;
    Duplicate id
  end
  else begin
    Hashtbl.add a.ids id ();
    merge_into a p;
    a.n_chunks <- a.n_chunks + 1;
    Added id
  end

let ingest a buf =
  match decode buf with
  | Error _ as e -> e
  | Ok { profile; _ } ->
      if Profile.lengths profile <> a.lengths then
        Error
          (Whisper_error.make ~context:"profile-chunk" Profile_io
             (Whisper_error.Malformed
                "chunk length series differs from accumulator"))
      else Ok (ingest_profile a ~id:(id buf) profile)

(* Materialize in canonical order: stats in ascending-pc order (fixing
   the hashtable iteration order {!Profile_io.to_bytes} follows), each
   branch's samples in Mergeset (lexicographic) order. *)
let profile a =
  let out = Profile.create_empty ~lengths:a.lengths () in
  let pcs =
    Hashtbl.fold (fun pc _ acc -> pc :: acc) a.stats []
    |> List.sort compare
  in
  List.iter
    (fun pc ->
      let s = Hashtbl.find a.stats pc in
      Profile.restore_stat out ~pc ~execs:s.execs ~taken_cnt:s.taken_cnt
        ~mispred:s.mispred)
    pcs;
  Profile.set_totals out ~instrs:a.total_instrs ~branches:a.total_branches
    ~mispred:a.total_mispred;
  let nl = Array.length a.lengths in
  let hashes = Array.make nl 0 in
  let sample_pcs =
    Hashtbl.fold (fun pc _ acc -> pc :: acc) a.sets [] |> List.sort compare
  in
  List.iter
    (fun pc ->
      let set = Hashtbl.find a.sets pc in
      Mergeset.iter set ~f:(fun buf ~off ->
          let raw8 = Char.code (Bytes.get buf off) in
          let raw56 = ref 0 in
          for b = 6 downto 0 do
            raw56 := (!raw56 lsl 8) lor Char.code (Bytes.get buf (off + 1 + b))
          done;
          for i = 0 to nl - 1 do
            hashes.(i) <- Char.code (Bytes.get buf (off + 8 + i))
          done;
          let flags = Char.code (Bytes.get buf (off + 8 + nl)) in
          Profile.add_sample ~raw56:!raw56 out ~pc ~raw8 ~hashes
            ~taken:(flags land 1 = 1) ~correct:(flags land 2 = 2)))
    sample_pcs;
  out

let merge_profiles ?max_samples ~lengths ps =
  let a = create_accum ?max_samples ~lengths () in
  List.iteri
    (fun i p -> ignore (ingest_profile a ~id:(Printf.sprintf "#%d" i) p))
    ps;
  profile a
