open Whisper_util

type t = {
  hidden : int;
  n_lengths : int;
  n_in : int;  (* n_lengths * 8 binary inputs *)
  w1 : float array array;  (* hidden x (n_in + 1), last column = bias *)
  w2 : float array;  (* hidden + 1 *)
}

let create ?(hidden = 8) ?(n_lengths = 8) ~seed () =
  let rng = Rng.create seed in
  let n_in = n_lengths * 8 in
  let init () = Rng.float rng 0.2 -. 0.1 in
  {
    hidden;
    n_lengths;
    n_in;
    w1 = Array.init hidden (fun _ -> Array.init (n_in + 1) (fun _ -> init ()));
    w2 = Array.init (hidden + 1) (fun _ -> init ());
  }

let n_inputs t = t.n_in

(* features: one hash byte per length; inputs are +-1 per bit *)
let input_bit features i =
  let byte = features.(i lsr 3) in
  if (byte lsr (i land 7)) land 1 = 1 then 1.0 else -1.0

let hidden_acts t ~features out =
  for h = 0 to t.hidden - 1 do
    let w = t.w1.(h) in
    let s = ref w.(t.n_in) in
    for i = 0 to t.n_in - 1 do
      s := !s +. (w.(i) *. input_bit features i)
    done;
    out.(h) <- tanh !s
  done

let forward t ~features =
  let acts = Array.make t.hidden 0.0 in
  hidden_acts t ~features acts;
  let s = ref t.w2.(t.hidden) in
  for h = 0 to t.hidden - 1 do
    s := !s +. (t.w2.(h) *. acts.(h))
  done;
  !s

let predict t ~features = forward t ~features >= 0.0

let train_sgd t ~xs ~ys ~epochs ~lr =
  if Array.length xs <> Array.length ys then invalid_arg "Model.train_sgd";
  let acts = Array.make t.hidden 0.0 in
  for _ = 1 to epochs do
    Array.iteri
      (fun s features ->
        hidden_acts t ~features acts;
        let out = ref t.w2.(t.hidden) in
        for h = 0 to t.hidden - 1 do
          out := !out +. (t.w2.(h) *. acts.(h))
        done;
        let target = if ys.(s) then 1.0 else -1.0 in
        (* hinge-style update: only when the margin is insufficient *)
        if target *. !out < 1.0 then begin
          let g = lr *. target in
          for h = 0 to t.hidden - 1 do
            let gh = g *. t.w2.(h) *. (1.0 -. (acts.(h) *. acts.(h))) in
            let w = t.w1.(h) in
            for i = 0 to t.n_in - 1 do
              w.(i) <- w.(i) +. (gh *. input_bit features i)
            done;
            w.(t.n_in) <- w.(t.n_in) +. gh;
            t.w2.(h) <- t.w2.(h) +. (g *. acts.(h))
          done;
          t.w2.(t.hidden) <- t.w2.(t.hidden) +. g
        end)
      xs
  done

let storage_bytes t =
  (* 8-bit quantized weights, as BranchNet's deployed inference engine *)
  (t.hidden * (t.n_in + 1)) + t.hidden + 1
