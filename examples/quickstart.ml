(* Quickstart: the whole Whisper pipeline on one application, in ~40 lines
   of client code.

     dune exec examples/quickstart.exe

   Steps (paper Fig. 10): generate a data-center-like workload, collect an
   in-production profile against the 64 KB TAGE-SC-L baseline, run the
   offline branch analysis, inject brhint instructions, and compare the
   baseline and Whisper-assisted runs on a different workload input. *)

open Whisper_trace
open Whisper_sim

let () =
  let events = 600_000 in
  let app = Option.get (Workloads.by_name "cassandra") in
  let ctx = Runner.create_ctx ~events () in

  (* 1. in-production profiling (Intel PT + LBR stand-in) *)
  let profile = Runner.profile ctx app in
  Printf.printf "profiled %d branch events: baseline MPKI %.2f, %d static branches\n"
    (Profile.total_branches profile) (Profile.mpki profile)
    (Profile.n_static_branches profile);

  (* 2. offline branch analysis: history lengths + Boolean formulas *)
  let analysis = Runner.whisper_analysis ctx app in
  Printf.printf "analysis picked %d hints from %d candidates in %.2fs\n"
    (Whisper_core.Analyze.hint_count analysis)
    analysis.Whisper_core.Analyze.considered
    analysis.Whisper_core.Analyze.training_seconds;

  (* 3. link-time hint injection *)
  let plan = Runner.whisper_plan ctx app in
  Printf.printf "injected %d brhint instructions (static overhead %.2f%%)\n"
    (List.length plan.Whisper_core.Inject.placements)
    (Whisper_core.Inject.static_overhead_pct plan (Runner.cfg_of ctx app));

  (* 4. run both binaries on a different input *)
  let base = Runner.run ctx app Runner.Baseline in
  let whisper = Runner.run ctx app (Runner.Whisper Whisper_core.Config.default) in
  let open Whisper_pipeline.Machine in
  Printf.printf "\n%-22s %10s %10s %8s\n" "" "mispredicts" "MPKI" "IPC";
  Printf.printf "%-22s %10d %10.2f %8.3f\n" "tage-scl-64KB" base.mispredicts
    (mpki base) (ipc base);
  Printf.printf "%-22s %10d %10.2f %8.3f\n" "whisper+tage-scl-64KB"
    whisper.mispredicts (mpki whisper) (ipc whisper);
  Printf.printf "\nWhisper eliminated %.1f%% of mispredictions for a %.2f%% speedup\n"
    (Whisper_util.Stats.reduction_pct
       ~baseline:(float_of_int base.mispredicts)
       ~improved:(float_of_int whisper.mispredicts))
    (speedup_pct ~baseline:base ~improved:whisper)
