(** Trace-driven timing model — the reproduction's substitute for the
    Scarab simulator (DESIGN.md §2).

    A decoupled-frontend, interval-style cycle account over basic-block
    events:

    - every block costs [instrs / width] base cycles;
    - its instruction lines probe the L1i/L2/L3 hierarchy; a miss stalls
      the frontend only for the part FDIP could not hide, where the
      prefetcher's lead grows with the branch-predictor-filled FTQ and
      collapses to zero on every misprediction resteer;
    - a mispredicted branch pays the squash/refill penalty;
    - a taken branch whose target misses in the BTB pays a decode-resteer
      bubble and dents the FDIP lead.

    This reproduces the two mechanisms behind the paper's Fig. 1
    decomposition: removing mispredictions removes squash cycles {e and}
    restores FDIP lookahead, which converts exposed I-cache misses into
    hidden ones (the paper's "frontend stalls avoided by FDIP").

    Cycle and stall totals accumulate internally in scaled integers
    (2^-20 cycle fixed point, DESIGN.md §15) and are converted to floats
    once per run, so accumulation is exact, allocation-free, and
    independent of evaluation order across the feed strategies. *)

type result = {
  cycles : float;
  instrs : int;
  branches : int;
  mispredicts : int;
  misp_stall : float;  (** squash/refill cycles *)
  fe_stall : float;  (** exposed instruction-fetch miss cycles *)
  btb_stall : float;
  l1i_misses : int;
  exposed_misses : int;  (** misses FDIP failed to fully hide *)
  seg_mispredicts : int array;
      (** mispredictions per trace segment (for warm-up and trace-length
          sweeps, Figs. 22–23).  Segment [k] covers event indices
          [k*events/segments, (k+1)*events/segments): sizes differ by at
          most one, and short runs ([events < segments], [events = 0])
          spread evenly instead of leaving trailing empty segments. *)
  seg_instrs : int array;
}

val degraded : result -> bool
(** [true] on the quarantined-run sentinel (NaN cycles).  Derived
    metrics of a degraded result are NaN, not a perfect score. *)

val ipc : result -> float
val mpki : result -> float

val speedup_pct : baseline:result -> improved:result -> float
(** Percentage IPC speedup of [improved] over [baseline] (same trace). *)

val run :
  ?params:Params.t ->
  ?segments:int ->
  events:int ->
  source:Whisper_trace.Branch.source ->
  predict:(Whisper_trace.Branch.event -> bool) ->
  unit ->
  result
(** [predict e] must carry out the full predict/train protocol of the
    modelled predictor and return whether the direction was predicted
    correctly. *)

type arena_exec =
  | Indexed of (int -> bool)
      (** Legacy per-event closure: [predict i] receives the event index,
          reads whatever arena fields it needs, and must follow the same
          predict/train protocol as {!run}'s callback. *)
  | Oracle
      (** Every prediction is correct — the [ideal] technique with zero
          per-event predictor work. *)
  | Compiled of
      (arena:Whisper_trace.Arena.t -> n:int -> verdicts:Bytes.t -> unit)
      (** Staged kernel, dispatched to exactly once per run: [fill] must
          write, for each event index [i < n], a non-['\000'] byte into
          [verdicts.[i]] iff the predictor's predict→train protocol got
          event [i]'s direction right.  The buffer is machine-owned
          per-domain scratch (reused across runs, at least [n] bytes,
          bytes beyond [n] unspecified).  See
          {!Whisper_bpu.Predictor.Compiled} for the producing side. *)

val run_arena :
  ?params:Params.t ->
  ?segments:int ->
  events:int ->
  arena:Whisper_trace.Arena.t ->
  predict:(int -> bool) ->
  unit ->
  result
(** Replay path: same timing model fed by direct indexed reads from a
    packed {!Whisper_trace.Arena} instead of a closure source — no
    [Branch.event] is allocated per event.  Equivalent to
    [run_arena_exec ~exec:(Indexed predict)].
    Both entry points share one accounting core, so for equal streams
    and predictors the results are byte-identical.
    @raise Invalid_argument if [events] exceeds the arena's length. *)

val run_arena_exec :
  ?params:Params.t ->
  ?segments:int ->
  events:int ->
  arena:Whisper_trace.Arena.t ->
  exec:arena_exec ->
  unit ->
  result
(** Like {!run_arena} but with the execution strategy made explicit.
    All three strategies feed the same accounting core: for the same
    arena and the same predictor decisions the results are byte-identical
    regardless of strategy — the compiled path is gated on that equality
    by catalog tests, fuzz, and an in-bench assert.
    @raise Invalid_argument if [events] exceeds the arena's length. *)
