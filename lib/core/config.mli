(** Whisper design parameters (paper Table III).

    | Parameter                  | Paper value |
    |----------------------------|-------------|
    | Minimum history length     | 8           |
    | Maximum history length     | 1024        |
    | Different history lengths  | 16          |
    | Length of the hashed history | 8         |
    | Logical operations used    | 4           |
    | Hint buffer's size         | 32          |

    plus the randomized-formula-testing exploration fraction (0.1 %,
    §V-B Fig. 15) and engineering limits of the offline analysis. *)

type hash_op = Xor | And | Or

type t = {
  min_len : int;  (** a = 8 *)
  max_len : int;  (** N = 1024 *)
  n_lengths : int;  (** m = 16 *)
  hash_bits : int;  (** 8 *)
  hash_op : hash_op;  (** XOR in the paper's chosen design *)
  ops : [ `Extended | `Classic ];
      (** [`Extended] = {and, or, imp, cnimp} (4 ops); [`Classic]
          restricts to ROMBF's {and, or} for the Fig. 14 ablation *)
  explore_frac : float;  (** fraction of the formula space tested, 0.001 *)
  min_explore : int;  (** lower bound on formulas tested per branch *)
  hint_buffer_size : int;  (** 32 *)
  max_hints : int;  (** hard cap on hinted static branches *)
  max_pc_offset : int;
      (** brhint PC-pointer reach in instructions (12 bits → 4095) *)
  min_sample_gain : int;
      (** required misprediction savings (in profile samples) before a
          hint is emitted *)
  seed : int;  (** Fisher–Yates seed for randomized formula testing *)
}

val default : t

val lengths : t -> int array
(** The geometric series [min_len … max_len] with [n_lengths] terms. *)

val formula_leaves : t -> int
(** Formula input count = [hash_bits]. *)

val explore_count : t -> int
(** Number of formulas tested per (branch, length):
    [max min_explore (explore_frac * space)]. *)

val pp : Format.formatter -> t -> unit
