(* Tests for the multicore experiment runner: the Whisper_util.Pool
   domain pool, the persistent result cache (round trip, corruption
   recovery, warm-rerun hit accounting) and the parallel-vs-sequential
   determinism of experiment tables. *)

open Whisper_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let app name = Option.get (Whisper_trace.Workloads.by_name name)

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let ok = function Ok v -> v | Error e -> raise e

let test_pool_map_ordered () =
  let xs = Array.init 100 Fun.id in
  List.iter
    (fun jobs ->
      let ys = Whisper_util.Pool.map ~jobs (fun i -> i * i) xs in
      check_int "length" 100 (Array.length ys);
      Array.iteri
        (fun i r -> check_int (Printf.sprintf "jobs=%d slot %d" jobs i) (i * i) (ok r))
        ys)
    [ 1; 4 ]

let test_pool_map_matches_sequential () =
  let xs = Array.init 64 (fun i -> i * 37) in
  let seq = Whisper_util.Pool.map ~jobs:1 (fun x -> x + 1) xs in
  let par = Whisper_util.Pool.map ~jobs:4 (fun x -> x + 1) xs in
  check_bool "identical outcome arrays" true (seq = par)

exception Boom of int

let test_pool_exception_isolated () =
  let xs = Array.init 32 Fun.id in
  let ys =
    Whisper_util.Pool.map ~jobs:4
      (fun i -> if i = 17 then raise (Boom i) else i)
      xs
  in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> check_int "survivor" i v
      | Error (Boom n) ->
          check_int "failing slot" 17 i;
          check_int "payload" 17 n
      | Error e -> raise e)
    ys;
  check_bool "exactly one failure" true
    (Array.to_list ys
    |> List.filter (function Error _ -> true | Ok _ -> false)
    |> List.length = 1);
  (* the pool machinery is not wedged: a fresh map still completes *)
  let again = Whisper_util.Pool.map ~jobs:4 (fun i -> -i) xs in
  Array.iteri (fun i r -> check_int "after failure" (-i) (ok r)) again

let test_pool_submit_await () =
  let pool = Whisper_util.Pool.create ~jobs:2 () in
  check_int "jobs" 2 (Whisper_util.Pool.jobs pool);
  let futures =
    List.init 20 (fun i -> Whisper_util.Pool.submit pool (fun () -> 3 * i))
  in
  List.iteri
    (fun i fut -> check_int "future" (3 * i) (ok (Whisper_util.Pool.await fut)))
    futures;
  Whisper_util.Pool.shutdown pool;
  (* idempotent, and submit after shutdown is refused *)
  Whisper_util.Pool.shutdown pool;
  check_bool "submit refused" true
    (match Whisper_util.Pool.submit pool (fun () -> 0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Result cache                                                       *)
(* ------------------------------------------------------------------ *)

let sample_result () =
  {
    Whisper_pipeline.Machine.cycles = 123456.75;
    instrs = 98765;
    branches = 4321;
    mispredicts = 171;
    misp_stall = 3400.5;
    fe_stall = 120.25;
    btb_stall = 33.0;
    l1i_misses = 99;
    exposed_misses = 41;
    seg_mispredicts = [| 17; 18; 19; 20; 21; 22; 23; 24; 25; 26 |];
    seg_instrs = [| 9876; 9877; 9878; 9879; 9880; 9881; 9882; 9883; 9884; 9885 |];
  }

let test_cache_roundtrip () =
  let c = Result_cache.create ~dir:"_test_cache_rt" () in
  let key = "cassandra/whisper/0/1/64/60000" in
  check_bool "empty" true (Result_cache.find c ~key = None);
  let r = sample_result () in
  Result_cache.store c ~key r;
  check_bool "round trip" true (Result_cache.find c ~key = Some r);
  (* a different key maps to a different entry *)
  check_bool "other key misses" true (Result_cache.find c ~key:"other" = None)

let test_cache_corrupt_recovery () =
  let c = Result_cache.create ~dir:"_test_cache_corrupt" () in
  let key = "mysql/tage-scl/0/1/64/60000" in
  Result_cache.store c ~key (sample_result ());
  let file = Result_cache.path c ~key in
  (* truncate mid-entry: decode must fail, find must fall back to a miss
     and remove the file *)
  let oc = open_out_bin file in
  output_string oc "WRSCgarbage";
  close_out oc;
  check_bool "corrupt entry is a miss" true (Result_cache.find c ~key = None);
  check_bool "corrupt entry removed" true (not (Sys.file_exists file));
  (* storing again repairs the entry *)
  Result_cache.store c ~key (sample_result ());
  check_bool "repaired" true (Result_cache.find c ~key = Some (sample_result ()))

let test_cache_key_mismatch () =
  let r = sample_result () in
  let b = Result_cache.encode ~key:"key-a" r in
  check_bool "decode under the written key" true
    (Result_cache.decode ~key:"key-a" b = r);
  check_bool "decode under another key fails" true
    (match Result_cache.decode ~key:"key-b" b with
    | exception Failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Runner: parallel determinism and warm-cache reruns                 *)
(* ------------------------------------------------------------------ *)

let det_events = 20_000

let test_parallel_determinism () =
  let seq = Runner.create_ctx ~events:det_events ~jobs:1 () in
  let par = Runner.create_ctx ~events:det_events ~jobs:4 () in
  let a = Experiments.fig1 seq in
  let b = Experiments.fig1 par in
  check_string "fig1 rows byte-identical" (Report.to_csv a) (Report.to_csv b);
  check_int "4 domains" 4 (Runner.jobs par);
  check_bool "both simulated" true
    ((Runner.stats seq).Runner.sims > 0
    && (Runner.stats seq).Runner.sims = (Runner.stats par).Runner.sims)

let test_run_batch_dedups () =
  let ctx = Runner.create_ctx ~events:det_events ~jobs:2 () in
  let a = app "finagle-http" in
  Runner.run_batch ctx
    [
      Runner.sim a Runner.Baseline;
      Runner.sim a Runner.Baseline;
      Runner.collect a;
      Runner.collect a;
    ];
  check_int "duplicate work items simulate once" 1 (Runner.stats ctx).Runner.sims

let test_warm_cache_rerun () =
  let dir = "_test_cache_warm" in
  let cold = Runner.create_ctx ~events:det_events ~jobs:2 ~cache_dir:dir () in
  let r1 = Experiments.fig2 cold in
  let s1 = Runner.stats cold in
  check_bool "cold run simulates" true (s1.Runner.sims > 0);
  check_int "cold run misses every lookup" s1.Runner.sims s1.Runner.cache_misses;
  check_int "cold run has no hits" 0 s1.Runner.cache_hits;
  (* a fresh ctx over the same directory must be served from disk *)
  let warm = Runner.create_ctx ~events:det_events ~jobs:2 ~cache_dir:dir () in
  let r2 = Experiments.fig2 warm in
  let s2 = Runner.stats warm in
  check_int "warm run performs zero simulations" 0 s2.Runner.sims;
  check_int "warm run misses nothing" 0 s2.Runner.cache_misses;
  check_int "warm run hits everything" s1.Runner.sims s2.Runner.cache_hits;
  check_string "identical rows" (Report.to_csv r1) (Report.to_csv r2);
  (* changing the events count invalidates the key, not the entry *)
  let other =
    Runner.create_ctx ~events:(det_events + 1) ~jobs:1 ~cache_dir:dir ()
  in
  ignore (Runner.run other (app "mysql") Runner.Baseline);
  check_int "different events: miss" 1 (Runner.stats other).Runner.cache_misses

let test_report_timing_line () =
  let tm =
    {
      Report.wall_s = 1.5;
      sims = 24;
      sim_seconds = 4.25;
      cache_hits = 0;
      cache_misses = 24;
    }
  in
  check_string "format" "timing: wall=1.50s sim-wall=4.25s sims=24 cache-hits=0 cache-misses=24"
    (Report.timing_line tm);
  let r =
    Report.with_timing tm
      (Report.make ~id:"figX" ~title:"t" ~header:[ "app"; "a" ] [ ("x", [ 1.0 ]) ])
  in
  check_bool "printed" true
    (let s = Report.to_string r in
     let sub = "timing: wall=" in
     let n = String.length s and m = String.length sub in
     let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
     scan 0);
  check_bool "csv excludes timing" true
    (Report.to_csv r = Report.to_csv { r with Report.timing = None })

let () =
  Alcotest.run "whisper_runner"
    [
      ( "pool",
        Alcotest.
          [
            test_case "map preserves order" `Quick test_pool_map_ordered;
            test_case "map matches sequential" `Quick test_pool_map_matches_sequential;
            test_case "exception isolated" `Quick test_pool_exception_isolated;
            test_case "submit/await/shutdown" `Quick test_pool_submit_await;
          ] );
      ( "result-cache",
        Alcotest.
          [
            test_case "round trip" `Quick test_cache_roundtrip;
            test_case "corrupt recovery" `Quick test_cache_corrupt_recovery;
            test_case "key mismatch" `Quick test_cache_key_mismatch;
          ] );
      ( "runner",
        Alcotest.
          [
            test_case "parallel determinism" `Quick test_parallel_determinism;
            test_case "run_batch dedups" `Quick test_run_batch_dedups;
            test_case "warm cache rerun" `Quick test_warm_cache_rerun;
            test_case "report timing line" `Quick test_report_timing_line;
          ] );
    ]
