type op =
  | Truncate
  | Bit_flip
  | Byte_drop
  | Version_skew
  | Delay
  | Hang
  | Worker_crash
  | Heartbeat_stall

type decision = Pass | Inject of op

type t = {
  seed : int;
  rate : float;
  hang_s : float;
  delay_s : float;
  n_injected : int Atomic.t;
}

let create ?(seed = 42) ?(hang_s = 2.0) ?(delay_s = 0.02) ~rate () =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Fault.create: rate";
  { seed; rate; hang_s; delay_s; n_injected = Atomic.make 0 }

let seed t = t.seed
let rate t = t.rate
let injected t = Atomic.get t.n_injected
let mark t = Atomic.incr t.n_injected

let op_name = function
  | Truncate -> "truncate"
  | Bit_flip -> "bit-flip"
  | Byte_drop -> "byte-drop"
  | Version_skew -> "version-skew"
  | Delay -> "delay"
  | Hang -> "hang"
  | Worker_crash -> "worker-crash"
  | Heartbeat_stall -> "heartbeat-stall"

(* The byte/task operator family drawn by {!decision}.  The worker
   operators are deliberately NOT in this array: they are consulted only
   through {!worker_decision} on their own (seed, key) stream, so adding
   them did not reshuffle which op every existing chaos key draws. *)
let ops = [| Truncate; Bit_flip; Byte_drop; Version_skew; Delay; Hang |]

(* Pure function of (seed, key): [Hashtbl.hash] of a string is stable
   across runs and domains, so the same key always draws the same
   verdict regardless of scheduling. *)
let rng_of t ~key = Rng.create (t.seed lxor (Hashtbl.hash key * 0x9E3779B1))

let decision t ~key =
  if t.rate <= 0.0 then Pass
  else
    let rng = rng_of t ~key in
    if Rng.float rng 1.0 < t.rate then Inject (Rng.choose rng ops) else Pass

(* Process-level faults for sweep workers, on their own pure stream:
   the same (seed, key) always draws the same verdict, so a killed and
   resumed sweep re-derives identical crash/stall sites. *)
let worker_decision t ~key =
  if t.rate <= 0.0 then `None
  else
    let rng = rng_of t ~key:("worker-op/" ^ key) in
    if Rng.float rng 1.0 >= t.rate then `None
    else if Rng.bool rng then `Crash
    else `Stall

let corrupt t ~key b =
  match decision t ~key with
  | Pass | Inject (Delay | Hang | Worker_crash | Heartbeat_stall) -> b
  | Inject op ->
      mark t;
      let rng = rng_of t ~key in
      (* burn the draws [decision] made so operator parameters are
         independent of the verdict draw *)
      ignore (Rng.float rng 1.0);
      ignore (Rng.int rng (Array.length ops));
      let len = Bytes.length b in
      if len = 0 then b
      else begin
        match op with
        | Truncate -> Bytes.sub b 0 (Rng.int rng len)
        | Bit_flip ->
            let b = Bytes.copy b in
            let bit = Rng.int rng (len * 8) in
            let i = bit / 8 in
            Bytes.set b i
              (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
            b
        | Byte_drop ->
            let i = Rng.int rng len in
            let out = Bytes.create (len - 1) in
            Bytes.blit b 0 out 0 i;
            Bytes.blit b (i + 1) out i (len - 1 - i);
            out
        | Version_skew ->
            (* our formats carry a varint version right after a 4-byte
               magic; nudging that byte models a producer/consumer skew *)
            let b = Bytes.copy b in
            let i = min 4 (len - 1) in
            Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + 1) land 0x7F));
            b
        | Delay | Hang | Worker_crash | Heartbeat_stall -> assert false
      end

let wrap t ~key ~attempt f =
  match decision t ~key with
  | Pass -> f ()
  | Inject
      ((Truncate | Bit_flip | Byte_drop | Version_skew | Worker_crash
       | Heartbeat_stall) as op) ->
      mark t;
      Whisper_error.raise_error ~context:key Whisper_error.Injected
        (Whisper_error.Malformed (Printf.sprintf "injected %s fault" (op_name op)))
  | Inject Delay ->
      mark t;
      Unix.sleepf t.delay_s;
      f ()
  | Inject Hang ->
      if attempt = 1 then begin
        mark t;
        (* wedge the worker, then fail.  Whether the pool's per-task
           timeout gave up on this attempt first is a wall-clock race,
           but the attempt's outcome (one failure, one retry) is not —
           which keeps chaos-run counters reproducible. *)
        Unix.sleepf t.hang_s;
        Whisper_error.raise_error ~context:key Whisper_error.Injected
          (Whisper_error.Malformed "injected hang fault")
      end
      else f ()
