type t = {
  ctrs : Bytes.t;
  mask : int;
  hist_mask : int;
  mutable ghist : int;
}

let index t pc = ((pc lsr 2) lxor (t.ghist land t.hist_mask)) land t.mask

let make ~log_entries ~hist_bits =
  if log_entries < 1 || log_entries > 26 then invalid_arg "Gshare.make";
  if hist_bits < 1 || hist_bits > 30 then invalid_arg "Gshare.make";
  let n = 1 lsl log_entries in
  let t =
    {
      ctrs = Bytes.make n '\001';
      mask = n - 1;
      hist_mask = (1 lsl hist_bits) - 1;
      ghist = 0;
    }
  in
  let push taken = t.ghist <- ((t.ghist lsl 1) lor if taken then 1 else 0) in
  {
    Predictor.name = Printf.sprintf "gshare-%dk" (n / 1024);
    predict =
      (fun ~pc -> Char.code (Bytes.unsafe_get t.ctrs (index t pc)) >= 2);
    train =
      (fun ~pc ~taken ->
        let i = index t pc in
        let c = Char.code (Bytes.unsafe_get t.ctrs i) in
        Bytes.unsafe_set t.ctrs i
          (Char.unsafe_chr (Counters.update c ~taken ~min:0 ~max:3));
        push taken);
    spectate = (fun ~pc:_ ~taken -> push taken);
    storage_bits = 2 * n;
    is_oracle = false;
  }
