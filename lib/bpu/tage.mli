(** TAGE (Seznec & Michaud): a base bimodal predictor plus [n] tagged
    tables indexed by PC hashed with geometrically increasing global
    history lengths, with usefulness-guided allocation.

    This is the component the paper's 64 KB baseline is built from
    (TAGE-SC-L = TAGE + statistical corrector + loop predictor; see
    {!Tage_scl}).  Folded history registers follow the standard
    circular-shift construction, so the capacity/aliasing behaviour the
    paper attributes to large branch footprints (§II-C) emerges from real
    table geometry rather than from a model. *)

type params = {
  n_tables : int;
  log_entries : int;  (** per tagged table *)
  tag_bits : int;
  min_len : int;
  max_len : int;
  log_bimodal : int;
  u_reset_period : int;  (** trains between graceful usefulness agings *)
}

val default_params : params
(** 12 tables, 2^11 entries, 9-bit tags, lengths 8–1024 — the ≈64 KB
    configuration (see {!Sizes}). *)

type t

val create : params -> t

val history_lengths : t -> int array

val storage_bits : t -> int

val predict : t -> pc:int -> bool
(** Also records the lookup context consumed by the next {!train}. *)

val confidence : t -> [ `High | `Med | `Low ]
(** Confidence of the last {!predict}, from the provider counter
    (used by the statistical corrector's veto gate). *)

val train : t -> pc:int -> taken:bool -> unit
(** Counter/usefulness update and allocation; advances global history.
    Must follow {!predict} for the same [pc]. *)

val spectate : t -> pc:int -> taken:bool -> unit
(** Advance global history only (Whisper-hinted branches). *)

val predictor : params -> Predictor.t
(** Package as a {!Predictor.t}. *)

val exec : t -> pc:int -> taken:bool -> bool
(** Fused predict→train: runs the full protocol with direct known calls
    and returns whether the direction was predicted correctly —
    state evolution identical to calling {!predict} then {!train}. *)

val compiled : params -> Predictor.Compiled.t
(** Staged arena kernel (fresh instance per [fill] call); see
    {!Predictor.Compiled} for the contract. *)
