(** Continuous-profiling service mode: the long-running loop that turns
    the batch reproduction into the paper's deployment story (§IV's
    fleet pipeline run {e forever}, not once).

    Each {e generation} of the scripted scenario models one fleet
    delivery interval, per application: a trace chunk is collected from
    the (possibly drifting) workload and delivered — optionally
    corrupted by the {!Whisper_util.Fault} machinery — to the service,
    which ingests it into the app's canonical
    {!Whisper_trace.Profile_chunk} accumulator (re-deliveries are
    counted no-ops), re-scores the deployed hint plan against a sliding
    window of recent chunks ({!Whisper_core.Rescore}), and when
    coverage has decayed past the drift threshold re-runs the full
    analysis over the shared domain pool.  A candidate plan is rolled
    out only if it scores at least as well as the incumbent on the same
    window — otherwise it is rolled back and the incumbent stays
    deployed.  Corrupt chunks and faulted analyses quarantine; they
    never kill the service.

    Crash safety mirrors {!Sweep}: the scenario is frozen into a
    content-keyed {!Whisper_util.Manifest}, every completed
    (generation, app) step appends its canonical {e ledger line} to a
    checksummed {!Whisper_util.Journal} bound to the manifest id, and
    chunk/plan artifacts are stored tmp+rename under the state dir.
    [kill -9] at any instant loses at most the in-flight step: resuming
    replays the journal (verifying rolled-out plan files by digest —
    anything inconsistent re-executes) and the final ledger is
    byte-identical to an uninterrupted run's. *)

type config = {
  apps : string list;  (** {!Whisper_trace.Workloads.by_name} entries *)
  generations : int;  (** scripted delivery intervals *)
  chunk_events : int;  (** branch events collected per chunk *)
  window : int;  (** sliding window, in accepted chunks *)
  kb : int;  (** baseline predictor budget during collection *)
  max_samples : int;  (** accumulator per-branch sample cap *)
  drift_flip : int option;
      (** generation at which the workload switches to session-mix
          phase 1 ({!Whisper_trace.App_model} [?phase]) *)
  decay_frac : float;
      (** re-analysis triggers when window coverage falls below
          [decay_frac] x the deployed plan's rollout coverage *)
  state_dir : string;  (** manifest, journal, chunk and plan stores *)
  jobs : int;  (** analysis fan-out over the shared pool *)
  faults : float;  (** chaos rate, 0.0 = off *)
  fault_seed : int;
  redeliver : bool;  (** re-offer each accepted chunk (idempotency probe) *)
  resume : bool;  (** replay [state_dir]'s journal before executing *)
  max_steps : int option;
      (** test hook: stop — as if [kill -9]'d — once this many steps
          have been journaled this run, skipping the ledger *)
}

val default : state_dir:string -> config
(** One app ([finagle-http]), 12 generations, 120 k-event chunks, window
    4, 64 KB, flip at generation 6, decay 0.5, no faults, no resume. *)

val plan : config -> Whisper_util.Manifest.t
(** The frozen scenario: one item per (generation, app), meta carrying
    every result-affecting parameter (chaos knobs included).  Pure in
    the config — [jobs], [resume] and [max_steps] are excluded, so a
    resumed or differently-parallel run binds to the same journal. *)

(** {1 Ledger lines}

    Every completed step renders to one canonical [key=value] line —
    the journal detail, the stdout ledger and the soak job's diff
    target are all this same string. *)

type step
(** One parsed ledger line. *)

val render_step : step -> string

val parse_step : string -> step option
(** Total inverse: [parse_step (render_step s) = Some s], and [None] on
    anything malformed (resume re-executes such steps). *)

type outcome = {
  ledger : string list;
      (** canonical per-step lines in manifest order; empty when
          [interrupted] *)
  summary : string list;  (** canonical per-app + totals summary lines *)
  manifest_id : string;
  total : int;  (** manifest items *)
  completed : int;  (** steps newly journaled this run *)
  resumed : int;  (** journal entries applied without re-execution *)
  chunks_ingested : int;
  duplicates : int;  (** re-deliveries counted as no-ops, cumulative *)
  chunks_quarantined : int;
  rescores : int;
  drift_detected : int;
  analyses : int;  (** re-analyses that ran to completion *)
  analysis_quarantined : int;  (** faulted/hung analyses skipped *)
  rollouts : int;
  rollbacks : int;
  journal_recovered : bool;
  journal_dropped_bytes : int;
  interrupted : bool;
}

val run : config -> outcome
(** Execute (or resume) the scripted scenario.  The ledger and summary
    are deterministic functions of the config — independent of job
    count, kills and resumes. *)

val decide_rollout :
  incumbent:float option -> candidate:float -> [ `Rollback | `Rollout ]
(** The rollout rule applied after every completed re-analysis: the
    candidate plan replaces the incumbent only when its window coverage
    is at least the incumbent's ([incumbent = None] — no deployed plan
    — always rolls out). *)

val check_recovery : config -> outcome -> (unit, string) result
(** The soak gate's drift-recovery assertion: for every app, the phase
    flip must have produced at least one drift detection at or after
    [drift_flip], at least one post-flip rollout, and a final deployed
    coverage strictly above the post-flip trough.  [Error] carries a
    human-readable reason; meaningless (and an error) on interrupted
    outcomes or scenarios without a flip. *)
