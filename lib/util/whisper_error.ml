type stage =
  | Binio
  | Pt_codec
  | Profile_io
  | Plan_io
  | Result_cache
  | Arena_cache
  | Task
  | Injected
  | Manifest
  | Journal
  | Worker

type kind =
  | Truncated
  | Bad_magic of string
  | Version_mismatch of { got : int; expected : int }
  | Varint_overflow
  | Out_of_range of string
  | Key_mismatch
  | Trailing_bytes
  | Count_overflow of { count : int; remaining : int }
  | Malformed of string
  | Timeout of float

type t = {
  stage : stage;
  kind : kind;
  offset : int option;
  context : string option;
}

exception Error of t

let make ?offset ?context stage kind = { stage; kind; offset; context }

let raise_error ?offset ?context stage kind =
  raise (Error (make ?offset ?context stage kind))

let stage_name = function
  | Binio -> "binio"
  | Pt_codec -> "pt-codec"
  | Profile_io -> "profile-io"
  | Plan_io -> "plan-io"
  | Result_cache -> "result-cache"
  | Arena_cache -> "arena-cache"
  | Task -> "task"
  | Injected -> "injected"
  | Manifest -> "manifest"
  | Journal -> "journal"
  | Worker -> "worker"

let kind_to_string = function
  | Truncated -> "truncated input"
  | Bad_magic s -> Printf.sprintf "bad magic (expected %S)" s
  | Version_mismatch { got; expected } ->
      Printf.sprintf "version mismatch (got %d, expected %d)" got expected
  | Varint_overflow -> "varint overflow (more than 62 bits)"
  | Out_of_range what -> Printf.sprintf "%s out of range" what
  | Key_mismatch -> "key mismatch"
  | Trailing_bytes -> "trailing bytes"
  | Count_overflow { count; remaining } ->
      Printf.sprintf "count %d exceeds %d remaining input bytes" count remaining
  | Malformed what -> what
  | Timeout s -> Printf.sprintf "timed out after %.2fs" s

let to_string e =
  let b = Buffer.create 64 in
  Buffer.add_string b (stage_name e.stage);
  Buffer.add_string b ": ";
  Buffer.add_string b (kind_to_string e.kind);
  Option.iter (fun o -> Buffer.add_string b (Printf.sprintf " at byte %d" o)) e.offset;
  Option.iter (fun c -> Buffer.add_string b (Printf.sprintf " [%s]" c)) e.context;
  Buffer.contents b

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Whisper_error.Error: " ^ to_string e)
    | _ -> None)

let of_exn ?context stage = function
  | Error e ->
      if e.context = None && context <> None then { e with context } else e
  | Failure msg -> make ?context stage (Malformed msg)
  | Invalid_argument msg -> make ?context stage (Malformed msg)
  | e -> make ?context stage (Malformed (Printexc.to_string e))

let protect ?context stage f =
  match f () with v -> Ok v | exception e -> Result.Error (of_exn ?context stage e)
