let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Pure histogram cells                                                *)
(* ------------------------------------------------------------------ *)

module Hist = struct
  type t = {
    count : int;
    sum : int;
    min_v : int;
    max_v : int;
    buckets : int array;
  }

  let n_buckets = 64

  let bucket_of_value v =
    if v <= 0 then 0
    else begin
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      let b = bits 0 v in
      if b < n_buckets then b else n_buckets - 1
    end

  let bucket_bounds b =
    if b < 0 || b >= n_buckets then invalid_arg "Telemetry.Hist.bucket_bounds";
    if b = 0 then (min_int, 0)
    else if b = n_buckets - 1 then (1 lsl (n_buckets - 2), max_int)
    else (1 lsl (b - 1), (1 lsl b) - 1)

  let empty =
    {
      count = 0;
      sum = 0;
      min_v = max_int;
      max_v = min_int;
      buckets = Array.make n_buckets 0;
    }

  let observe t v =
    let buckets = Array.copy t.buckets in
    let b = bucket_of_value v in
    buckets.(b) <- buckets.(b) + 1;
    {
      count = t.count + 1;
      sum = t.sum + v;
      min_v = min t.min_v v;
      max_v = max t.max_v v;
      buckets;
    }

  let merge a b =
    {
      count = a.count + b.count;
      sum = a.sum + b.sum;
      min_v = min a.min_v b.min_v;
      max_v = max a.max_v b.max_v;
      buckets = Array.init n_buckets (fun i -> a.buckets.(i) + b.buckets.(i));
    }

  let equal a b =
    a.count = b.count && a.sum = b.sum && a.min_v = b.min_v
    && a.max_v = b.max_v && a.buckets = b.buckets
end

(* ------------------------------------------------------------------ *)
(* Global name interning                                               *)
(* ------------------------------------------------------------------ *)

type counter = int
type histogram = int

let glock = Mutex.create ()

type names = { mutable arr : string array; index : (string, int) Hashtbl.t }

let fresh_names () = { arr = [||]; index = Hashtbl.create 64 }
let counter_names = fresh_names ()
let hist_names = fresh_names ()

let intern names name =
  Mutex.protect glock (fun () ->
      match Hashtbl.find_opt names.index name with
      | Some slot -> slot
      | None ->
          let slot = Array.length names.arr in
          names.arr <- Array.append names.arr [| name |];
          Hashtbl.add names.index name slot;
          slot)

let counter name : counter = intern counter_names name
let histogram name : histogram = intern hist_names name

(* ------------------------------------------------------------------ *)
(* Domain-local registries                                             *)
(* ------------------------------------------------------------------ *)

type span_record = {
  sp_name : string;
  sp_domain : int;
  sp_depth : int;
  sp_start_s : float;
  sp_dur_s : float;
}

(* Mutable per-domain state; only its owning domain writes it, so the
   recording path is lock-free.  [snapshot] reads other domains'
   registries — callers aggregate at quiescent points (after a pool
   joined, at end of run), which is the only merge order that is
   meaningful anyway. *)
type local = {
  dom : int;
  mutable ctrs : int array;
  mutable hists : Hist.t array;  (* Hist.empty when untouched *)
  mutable spn : span_record list;
  mutable n_spans : int;
  mutable depth : int;
}

let locals : local list ref = ref []
let epoch = ref (Unix.gettimeofday ())
let on = Atomic.make true

let dls : local Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let l =
        {
          dom = (Domain.self () :> int);
          ctrs = [||];
          hists = [||];
          spn = [];
          n_spans = 0;
          depth = 0;
        }
      in
      Mutex.protect glock (fun () -> locals := l :: !locals);
      l)

let local () = Domain.DLS.get dls
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

let ensure_ctrs l slot =
  if Array.length l.ctrs <= slot then begin
    let n = max (slot + 1) (max 16 (2 * Array.length l.ctrs)) in
    let a = Array.make n 0 in
    Array.blit l.ctrs 0 a 0 (Array.length l.ctrs);
    l.ctrs <- a
  end

let add slot n =
  if Atomic.get on then begin
    let l = local () in
    ensure_ctrs l slot;
    Array.unsafe_set l.ctrs slot (Array.unsafe_get l.ctrs slot + n)
  end

let incr slot = add slot 1

let observe slot v =
  if Atomic.get on then begin
    let l = local () in
    if Array.length l.hists <= slot then begin
      let n = max (slot + 1) (max 8 (2 * Array.length l.hists)) in
      let a = Array.make n Hist.empty in
      Array.blit l.hists 0 a 0 (Array.length l.hists);
      l.hists <- a
    end;
    l.hists.(slot) <- Hist.observe l.hists.(slot) v
  end

let span name f =
  if not (Atomic.get on) then f ()
  else begin
    let l = local () in
    let depth = l.depth in
    l.depth <- depth + 1;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Unix.gettimeofday () -. t0 in
        l.depth <- depth;
        l.spn <-
          {
            sp_name = name;
            sp_domain = l.dom;
            sp_depth = depth;
            sp_start_s = t0 -. !epoch;
            sp_dur_s = dur;
          }
          :: l.spn;
        l.n_spans <- l.n_spans + 1)
      f
  end

let reset () =
  Mutex.protect glock (fun () ->
      epoch := Unix.gettimeofday ();
      List.iter
        (fun l ->
          Array.fill l.ctrs 0 (Array.length l.ctrs) 0;
          Array.iteri (fun i _ -> l.hists.(i) <- Hist.empty) l.hists;
          l.spn <- [];
          l.n_spans <- 0)
        !locals)

(* ------------------------------------------------------------------ *)
(* Snapshot (the deterministic merge)                                  *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  sn_counters : (string * int) list;  (* sorted by name *)
  sn_hists : (string * Hist.t) list;  (* sorted by name, touched only *)
  sn_spans : span_record list;
}

let snapshot () =
  Mutex.protect glock (fun () ->
      let nc = Array.length counter_names.arr in
      let nh = Array.length hist_names.arr in
      let ctr_totals = Array.make nc 0 in
      let hist_totals = Array.make nh Hist.empty in
      let spans = ref [] in
      List.iter
        (fun l ->
          Array.iteri
            (fun slot v -> if slot < nc then ctr_totals.(slot) <- ctr_totals.(slot) + v)
            l.ctrs;
          Array.iteri
            (fun slot h ->
              if slot < nh && h.Hist.count > 0 then
                hist_totals.(slot) <- Hist.merge hist_totals.(slot) h)
            l.hists;
          spans := List.rev_append l.spn !spans)
        !locals;
      let by_name name_of totals keep =
        Array.to_list totals
        |> List.mapi (fun slot v -> (name_of slot, v))
        |> List.filter (fun (_, v) -> keep v)
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      {
        sn_counters =
          by_name (Array.get counter_names.arr) ctr_totals (fun _ -> true);
        sn_hists =
          by_name (Array.get hist_names.arr) hist_totals (fun h ->
              h.Hist.count > 0);
        sn_spans =
          List.sort
            (fun a b ->
              match Float.compare a.sp_start_s b.sp_start_s with
              | 0 -> (
                  match compare a.sp_domain b.sp_domain with
                  | 0 -> String.compare a.sp_name b.sp_name
                  | n -> n)
              | n -> n)
            !spans;
      })

let counters s = s.sn_counters
let histograms s = s.sn_hists
let spans s = s.sn_spans

let counter_value s name =
  Option.value ~default:0 (List.assoc_opt name s.sn_counters)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let hist_json (h : Hist.t) =
  let buckets =
    Array.to_list h.buckets
    |> List.mapi (fun b c -> (b, c))
    |> List.filter (fun (_, c) -> c > 0)
    |> List.map (fun (b, c) ->
           let lo, hi = Hist.bucket_bounds b in
           Sjson.Obj
             [
               ("lo", Sjson.of_int (max lo 0));
               ("hi", Sjson.of_int hi);
               ("count", Sjson.of_int c);
             ])
  in
  Sjson.Obj
    [
      ("count", Sjson.of_int h.count);
      ("sum", Sjson.of_int h.sum);
      ("min", Sjson.of_int (if h.count = 0 then 0 else h.min_v));
      ("max", Sjson.of_int (if h.count = 0 then 0 else h.max_v));
      ("buckets", Sjson.Arr buckets);
    ]

(* Per-name span aggregates; the raw events only go to the Chrome
   export, so metrics.json stays small. *)
let span_aggregates s =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let c, t =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl sp.sp_name)
      in
      Hashtbl.replace tbl sp.sp_name (c + 1, t +. sp.sp_dur_s))
    s.sn_spans;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json s =
  let agg = span_aggregates s in
  let total_s = List.fold_left (fun acc (_, (_, t)) -> acc +. t) 0.0 agg in
  Sjson.Obj
    [
      ("schema", Sjson.Str "whisper-metrics");
      ("version", Sjson.of_int schema_version);
      ( "counters",
        Sjson.Obj (List.map (fun (k, v) -> (k, Sjson.of_int v)) s.sn_counters)
      );
      ( "histograms",
        Sjson.Obj (List.map (fun (k, h) -> (k, hist_json h)) s.sn_hists) );
      ( "spans",
        Sjson.Obj
          [
            ("count", Sjson.of_int (List.length s.sn_spans));
            ("total_s", Sjson.Num total_s);
            ( "by_name",
              Sjson.Obj
                (List.map
                   (fun (name, (c, t)) ->
                     ( name,
                       Sjson.Obj
                         [
                           ("count", Sjson.of_int c);
                           ("total_s", Sjson.Num t);
                         ] ))
                   agg) );
          ] );
    ]

let to_json_string s = Sjson.to_string_pretty (to_json s)
let strip_wall_time j = Sjson.remove "spans" j

let to_text s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "== telemetry ==\n";
  Buffer.add_string buf "counters:\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-42s %12d\n" k v))
    s.sn_counters;
  if s.sn_hists <> [] then Buffer.add_string buf "histograms:\n";
  List.iter
    (fun (k, (h : Hist.t)) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-42s count=%d sum=%d min=%d max=%d\n" k h.count
           h.sum h.min_v h.max_v))
    s.sn_hists;
  let agg = span_aggregates s in
  if agg <> [] then
    Buffer.add_string buf
      (Printf.sprintf "spans (%d):\n" (List.length s.sn_spans));
  List.iter
    (fun (name, (c, t)) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-42s count=%-6d total=%.3fs\n" name c t))
    agg;
  Buffer.contents buf

let summary_lines s =
  List.filter_map
    (fun (k, v) -> if v = 0 then None else Some (Printf.sprintf "%s = %d" k v))
    s.sn_counters

let to_chrome s =
  let events =
    List.map
      (fun sp ->
        Sjson.Obj
          [
            ("name", Sjson.Str sp.sp_name);
            ("cat", Sjson.Str "whisper");
            ("ph", Sjson.Str "X");
            ("pid", Sjson.of_int (Unix.getpid ()));
            ("tid", Sjson.of_int sp.sp_domain);
            ("ts", Sjson.Num (1e6 *. sp.sp_start_s));
            ("dur", Sjson.Num (1e6 *. sp.sp_dur_s));
            ("args", Sjson.Obj [ ("depth", Sjson.of_int sp.sp_depth) ]);
          ])
      s.sn_spans
  in
  Sjson.to_string_pretty
    (Sjson.Obj
       [
         ("traceEvents", Sjson.Arr events);
         ("displayTimeUnit", Sjson.Str "ms");
       ])

let write_file ~path content =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path
