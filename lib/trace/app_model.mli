(** Executable application model: turns a static {!Cfg.t} plus a
    {!Workloads.config} into an infinite, deterministic branch-event
    stream.

    The model walks functions selected by a Zipf popularity process with
    temporal re-execution (hot loops), visiting each block of the invoked
    function in order and resolving every block's branch with its
    ground-truth behaviour against the shared global history.

    The [input] parameter reproduces the paper's workload/input variation
    (§V-A, Figs. 17–18): different inputs share the static program and the
    branch behaviours but perturb function popularity and the parameters
    of data-dependent branches, so a profile from one input transfers
    imperfectly to another. *)

type t

val create :
  ?lengths:int array ->
  ?chunk:int ->
  ?phase:int ->
  cfg:Cfg.t ->
  config:Workloads.config ->
  input:int ->
  unit ->
  t
(** [lengths] defaults to {!Workloads.lengths}; [chunk] to 8.

    [phase] (default [0]) models macro workload drift on top of the
    paper's input variation: where [input] perturbs only the popularity
    tail (hot request types stay hot across inputs), a phase change
    re-ranks {e all} session types — the continuous-profiling drift
    scenario where deployed hints rot because the hot working set
    itself moved.  [phase = 0] leaves the stream byte-identical to a
    model built without the parameter. *)

val source : t -> Branch.source
(** The event stream.  Each call advances the model by one block. *)

val fill :
  t ->
  n:int ->
  block:int array ->
  pc:int array ->
  instrs:int array ->
  next_addr:int array ->
  taken:Bytes.t ->
  unit
(** Bulk decode path: advance the model by [n] events, writing event [i]'s
    fields into index [i] of each buffer ([taken] is a bitset, bit [i] of
    byte [i/8]).  Allocates nothing per event.  [source] is the [n = 1]
    case of this loop, so the two paths emit byte-identical streams.
    @raise Invalid_argument if any buffer is shorter than [n]. *)

val ctx : t -> Behavior.ctx
(** The live evaluation context (exposed for tests and for profilers that
    want ground-truth hashes without recomputing them). *)

val cfg : t -> Cfg.t

val events_generated : t -> int
