(* Trace collection, profile merging and hint injection internals.

     dune exec examples/profile_and_inject.exe

   Shows the pieces a deployment would wire together: the PT-like trace
   codec, profiles merged across workload inputs (paper Fig. 18), and
   where the conditional-probability correlation algorithm places each
   brhint (paper §IV). *)

open Whisper_trace
open Whisper_core

let () =
  let app = Option.get (Workloads.by_name "kafka") in
  let cfg = Workloads.build_cfg app in

  (* 1. record a short in-production trace and verify the codec *)
  let m = App_model.create ~cfg ~config:app ~input:0 () in
  let events = Branch.take (App_model.source m) 50_000 in
  let encoded = Pt_codec.encode ~cfg events in
  Printf.printf "PT-encoded %d events into %d bytes (%.2f bits/branch)\n"
    (Array.length events) (Bytes.length encoded)
    (8.0 *. float_of_int (Bytes.length encoded) /. float_of_int (Array.length events));
  assert (Pt_codec.decode_exn ~cfg encoded = events);
  Printf.printf "decode round-trip OK\n\n";

  (* 2. profiles from two inputs, merged *)
  let mk_pred () =
    let p = Whisper_bpu.Tage_scl.predictor Whisper_bpu.Sizes.standard in
    fun ~pc ~taken ->
      let pred = p.Whisper_bpu.Predictor.predict ~pc in
      p.train ~pc ~taken;
      pred = taken
  in
  let collect input =
    Profile.collect ~lengths:Workloads.lengths ~events:400_000
      ~make_source:(fun () ->
        App_model.source (App_model.create ~cfg ~config:app ~input ()))
      ~make_predictor:mk_pred ()
  in
  let p0 = collect 0 and p1 = collect 1 in
  let merged = Profile.merge [ p0; p1 ] in
  Printf.printf "profile input#0: MPKI %.2f, %d candidates\n" (Profile.mpki p0)
    (Array.length (Profile.candidates p0));
  Printf.printf "profile input#1: MPKI %.2f, %d candidates\n" (Profile.mpki p1)
    (Array.length (Profile.candidates p1));
  Printf.printf "merged          : MPKI %.2f, %d candidates\n\n"
    (Profile.mpki merged)
    (Array.length (Profile.candidates merged));

  (* 3. analysis + injection: inspect the first placements *)
  let analysis = Analyze.run merged in
  let plan =
    Inject.plan Config.default cfg
      ~source:(App_model.source (App_model.create ~cfg ~config:app ~input:0 ()))
      ~hints:(Analyze.to_inject_hints analysis cfg)
  in
  Printf.printf "%d hints placed, %d dropped (12-bit PC offset out of reach)\n"
    (List.length plan.Inject.placements) plan.Inject.dropped;
  Printf.printf "%-12s %-12s %-10s %-10s %s\n" "branch-blk" "host-blk"
    "cond-prob" "encoded" "decoded hint";
  List.iteri
    (fun i (p : Inject.placement) ->
      if i < 8 then begin
        let enc = Brhint.encode p.hint in
        assert (Brhint.decode enc = p.hint);
        Printf.printf "%-12d %-12d %-10.2f %#-10x %s\n" p.branch_block
          p.host_block p.cond_prob enc
          (Format.asprintf "%a" Brhint.pp p.hint)
      end)
    plan.Inject.placements;
  Printf.printf "\nstatic overhead %.2f%% of instructions\n"
    (Inject.static_overhead_pct plan cfg)
