(** The run-time hint buffer (paper §IV, "Run-time hint usage").

    Executing a [brhint] instruction deposits an integer payload, keyed
    by the covered branch's PC, into this small bounded structure;
    predicting a branch probes it in parallel with the dynamic
    predictor.  The paper finds 32 entries sufficient — the sensitivity
    knob is exercised by the [hintbuf_ablation] bench.

    The payload is whatever integer the runtime wants back at probe
    time: the compiled {!Whisper_core.Runtime} stores its precompiled
    plan-entry index, the convenience wrappers below store the encoded
    33-bit [brhint] itself.  Payloads are non-negative so {!probe} can
    report a miss as the negative sentinel {!miss} without allocating an
    [option] per event — the hint-buffer probe runs once per simulated
    branch, and boxing the result was measurable in the replay bench.

    {b Eviction semantics} (pinned by tests): the buffer is ordered by
    {e hint execution}, not by use.  {!insert} refreshes an entry's
    position (re-executing a brhint renews its hint), while {!probe}
    never does — predicting a covered branch is not what keeps its hint
    alive, its brhint being on the hot path is.  When a new key arrives
    at capacity, the entry whose brhint executed {e longest ago} is
    evicted.  Calling this structure an "LRU" would oversell it: it is a
    FIFO over last executions.  The semantics match the hardware story
    (the buffer snoops executed hint instructions; the predictor port is
    read-only) and are relied on by every committed result, so changing
    them is a results-affecting decision, not a refactor. *)

type t

val create : size:int -> t
val size : t -> int
val length : t -> int

val miss : int
(** The probe-miss sentinel, [-1]. *)

val insert : t -> branch_pc:int -> int -> unit
(** Executed-brhint side effect; refreshes the entry's eviction position
    on re-execution.  The payload must be non-negative.
    @raise Invalid_argument on a negative payload. *)

val probe : t -> branch_pc:int -> int
(** Lookup at prediction time: the stored payload, or {!miss} ([-1]).
    {b Does not} refresh the eviction position (the buffer tracks hint
    executions, not branch executions), and never allocates. *)

val insert_hint : t -> branch_pc:int -> Brhint.t -> unit
(** {!insert} of the encoded hint (convenience for callers that do not
    precompile payloads). *)

val probe_hint : t -> branch_pc:int -> Brhint.t option
(** {!probe} + decode.  Allocates on a hit — differential-oracle and
    test convenience, not the replay hot path. *)

val clear : t -> unit

val insertions : t -> int
(** Total inserts (dynamic brhint executions observed). *)

val hits : t -> int
val misses : t -> int
(** Probe statistics (hinted-branch coverage diagnostics). *)
