(** TAGE-SC-L (Seznec, CBP-4/5): TAGE refined by a statistical corrector
    and overridden by a loop predictor — the state-of-the-art online
    baseline of the paper (64 KB in the main results; 8 KB–1 MB in the
    sensitivity sweeps). *)

type t

val create : Sizes.t -> t
val standard : unit -> t
(** 64 KB configuration. *)

val storage_bits : t -> int

val predict : t -> pc:int -> bool
val train : t -> pc:int -> taken:bool -> unit
val spectate : t -> pc:int -> taken:bool -> unit

val debug_reason : t -> string
(** Which component produced the last prediction (diagnostics). *)

val predictor : Sizes.t -> Predictor.t
(** Package as a {!Predictor.t} named ["tage-scl-<kb>KB"]. *)

val exec : t -> pc:int -> taken:bool -> bool
(** Fused predict→train with direct known calls; state evolution
    identical to {!predict} followed by {!train}. *)

val compiled : Sizes.t -> Predictor.Compiled.t
(** Staged arena kernel (fresh instance per [fill] call); see
    {!Predictor.Compiled} for the contract. *)
