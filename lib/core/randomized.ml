open Whisper_util

type t = {
  perm : int array;  (* extended-encoding formula ids, shuffled once *)
  n_candidates : int;
  truths : (int, Bytes.t) Hashtbl.t;
  leaves : int;
}

let create (cfg : Config.t) =
  let leaves = Config.formula_leaves cfg in
  let ids =
    match cfg.ops with
    | `Extended ->
        Array.init (Whisper_formula.Tree.space_size ~leaves) Fun.id
    | `Classic ->
        (* classic trees, embedded as extended ids so that the encoded
           hint decodes uniformly at run time (inversion additionally
           doubles the family: classic ROMBF also admits the negated
           output via swapping taken/not-taken, which we keep out to
           match the original and/or-only design) *)
        Array.init (Whisper_formula.Tree.classic_space_size ~leaves) (fun c ->
            Whisper_formula.Tree.to_id
              (Whisper_formula.Tree.of_classic_id ~leaves c))
  in
  let rng = Rng.create cfg.seed in
  Rng.shuffle rng ids;
  let frac =
    int_of_float (Float.round (cfg.explore_frac *. float_of_int (Array.length ids)))
  in
  let n_candidates = min (Array.length ids) (max cfg.min_explore frac) in
  { perm = ids; n_candidates; truths = Hashtbl.create 256; leaves }

let space t = Array.length t.perm

let candidates t = Array.sub t.perm 0 t.n_candidates

let candidates_n t n = Array.sub t.perm 0 (min n (Array.length t.perm))

let tree_of t id = Whisper_formula.Tree.of_id ~leaves:t.leaves id

let truth_of t id =
  match Hashtbl.find_opt t.truths id with
  | Some b -> b
  | None ->
      let b = Whisper_formula.Tree.truth_table (tree_of t id) in
      Hashtbl.add t.truths id b;
      b
