type hash_op = Xor | And | Or

type t = {
  min_len : int;
  max_len : int;
  n_lengths : int;
  hash_bits : int;
  hash_op : hash_op;
  ops : [ `Extended | `Classic ];
  explore_frac : float;
  min_explore : int;
  hint_buffer_size : int;
  max_hints : int;
  max_pc_offset : int;
  min_sample_gain : int;
  seed : int;
}

let default =
  {
    min_len = 8;
    max_len = 1024;
    n_lengths = 16;
    hash_bits = 8;
    hash_op = Xor;
    ops = `Extended;
    explore_frac = 0.001;
    min_explore = 32;
    hint_buffer_size = 32;
    max_hints = 2048;
    max_pc_offset = 4095;
    min_sample_gain = 2;
    seed = 0xC0FFEE;
  }

let lengths t =
  Whisper_util.Geometric.series ~a:t.min_len ~n:t.max_len ~m:t.n_lengths

let formula_leaves t = t.hash_bits

let explore_count t =
  let space = Whisper_formula.Tree.space_size ~leaves:t.hash_bits in
  let frac = int_of_float (Float.round (t.explore_frac *. float_of_int space)) in
  min space (max t.min_explore frac)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>min-history %d@ max-history %d@ history-lengths %d@ hashed-length \
     %d@ logical-ops %s@ explore %.3f%%@ hint-buffer %d@]"
    t.min_len t.max_len t.n_lengths t.hash_bits
    (match t.ops with `Extended -> "4" | `Classic -> "2")
    (100.0 *. t.explore_frac)
    t.hint_buffer_size
