open Whisper_util

type mix = {
  always : float;
  never : float;
  bias : float;
  loop : float;
  short_f : float;
  ctx : float;
  hashed : float;
  parity : float;
  random : float;
}

type family = Datacenter | Spec

type config = {
  name : string;
  seed : int;
  family : family;
  functions : int;
  blocks_per_fn : int * int;
  instrs_per_block : int * int;
  session_types : int;
  session_len : int * int;
  repeats : int * int;
  func_zipf : float;
  session_zipf : float;
  mix : mix;
  noise : float;
  hashed_len_weights : float array;
  bias_range : float * float;
  random_range : float * float;
  loop_range : int * int;
  parity_len : int * int;
}

let lengths = Geometric.default

(* Length-weight shapes over the 16-term series (8 .. 1024); these drive the
   paper's Fig. 6 distribution of correlation lengths. *)
let w_mid =
  [| 0.6; 0.8; 1.0; 1.2; 1.4; 1.8; 2.2; 2.4; 2.4; 2.2; 1.8; 1.4; 1.0; 0.7; 0.4; 0.2 |]

let w_long =
  [| 0.3; 0.4; 0.5; 0.6; 0.8; 1.0; 1.2; 1.6; 1.9; 2.2; 2.4; 2.4; 2.2; 1.8; 1.2; 0.8 |]

let w_short =
  [| 1.6; 1.8; 2.2; 2.4; 2.2; 1.8; 1.4; 1.0; 0.7; 0.5; 0.3; 0.2; 0.1; 0.1; 0.1; 0.1 |]

(* Execution-weighted realism: the overwhelming majority of dynamic branch
   executions must be easy (cf. TAGE's ~98% accuracy on these apps); the
   hard tail is split between capacity-sensitive short-window behaviours,
   Whisper-targeted hashed long-history behaviours, formula-inexpressible
   parity, and genuinely data-dependent randomness. *)
let default_mix =
  {
    always = 0.34;
    never = 0.12;
    bias = 0.09;
    loop = 0.04;
    short_f = 0.04;
    ctx = 0.065;
    hashed = 0.12;
    parity = 0.015;
    random = 0.012;
  }

let dc ?(functions = 2200) ?(blocks = (6, 18)) ?(instrs = (4, 12))
    ?(session_types = 240) ?(session_len = (5, 14)) ?(repeats = (2, 6))
    ?(func_zipf = 0.45) ?(session_zipf = 0.75) ?(mix = default_mix)
    ?(noise = 0.004) ?(lw = w_mid) ?(bias_range = (0.975, 0.999))
    ?(random_range = (0.25, 0.75)) ?(loop_range = (2, 24))
    ?(parity_len = (8, 28)) name seed =
  {
    name;
    seed;
    family = Datacenter;
    functions;
    blocks_per_fn = blocks;
    instrs_per_block = instrs;
    session_types;
    session_len;
    repeats;
    func_zipf;
    session_zipf;
    mix;
    noise;
    hashed_len_weights = lw;
    bias_range;
    random_range;
    loop_range;
    parity_len;
  }

let tweak m ~hashed ~random ~parity ~short_f =
  { m with hashed; random; parity; short_f }

let datacenter =
  [|
    (* cassandra: mid-size JVM service, moderate MPKI. *)
    dc "cassandra" 101 ~functions:990
      ~mix:(tweak default_mix ~hashed:0.0313 ~random:0.0024 ~parity:0.0066 ~short_f:0.114)
      ~noise:0.00180 ~session_zipf:0.90;
    (* clang: huge code footprint, high MPKI, long correlations. *)
    dc "clang" 102 ~functions:1683 ~blocks:(8, 20) ~session_types:320
      ~mix:(tweak default_mix ~hashed:0.0418 ~random:0.0048 ~parity:0.0110 ~short_f:0.134)
      ~noise:0.00288 ~session_zipf:0.60 ~lw:w_long;
    (* drupal: PHP workload, dispersed branches. *)
    dc "drupal" 103 ~functions:1287 ~session_types:280
      ~mix:(tweak default_mix ~hashed:0.0365 ~random:0.0034 ~parity:0.0088 ~short_f:0.127)
      ~noise:0.00252 ~session_zipf:0.70;
    (* finagle-chirper: RPC microservice, low MPKI. *)
    dc "finagle-chirper" 104 ~bias_range:(0.985, 0.9995) ~functions:693 ~session_types:120
      ~mix:(tweak default_mix ~hashed:0.0209 ~random:0.0010 ~parity:0.0044 ~short_f:0.087)
      ~noise:0.00108 ~session_zipf:1.15 ~lw:w_short;
    (* finagle-http: lowest MPKI of the suite. *)
    dc "finagle-http" 105 ~bias_range:(0.99, 0.9995) ~functions:594 ~session_types:80
      ~mix:(tweak default_mix ~hashed:0.0130 ~random:0.0004 ~parity:0.0022 ~short_f:0.067)
      ~noise:0.00054 ~session_zipf:1.35 ~lw:w_short;
    (* kafka: log-structured broker. *)
    dc "kafka" 106 ~functions:891 ~session_types:200
      ~mix:(tweak default_mix ~hashed:0.0287 ~random:0.0019 ~parity:0.0055 ~short_f:0.107)
      ~noise:0.00162 ~session_zipf:0.95;
    (* mediawiki: concentrated hot branches (BranchNet-friendly). *)
    dc "mediawiki" 107 ~functions:1188 ~session_types:180 ~session_zipf:1.50
      ~mix:{ (tweak default_mix ~hashed:0.0339 ~random:0.0026 ~parity:0.0180 ~short_f:0.114) with ctx = 0.115 }
      ~noise:0.00252;
    (* mysql: highest MPKI of the suite; flat, huge working set. *)
    dc "mysql" 108 ~functions:1485 ~blocks:(8, 22) ~session_types:360
      ~mix:(tweak default_mix ~hashed:0.0470 ~random:0.0067 ~parity:0.0121 ~short_f:0.141)
      ~noise:0.00360 ~session_zipf:0.45 ~lw:w_long;
    (* postgres: moderate, long correlations. *)
    dc "postgres" 109 ~functions:1188 ~session_types:280
      ~mix:(tweak default_mix ~hashed:0.0339 ~random:0.0029 ~parity:0.0077 ~short_f:0.121)
      ~noise:0.00216 ~session_zipf:0.70 ~lw:w_long;
    (* python: interpreter loop, concentrated + hard (BranchNet-friendly). *)
    dc "python" 110 ~functions:990 ~session_types:140 ~session_zipf:1.55
      ~mix:{ (tweak default_mix ~hashed:0.0391 ~random:0.0030 ~parity:0.0250 ~short_f:0.121) with ctx = 0.13 }
      ~noise:0.00324;
    (* tomcat: servlet container. *)
    dc "tomcat" 111 ~bias_range:(0.982, 0.999) ~functions:940 ~session_types:220
      ~mix:(tweak default_mix ~hashed:0.0261 ~random:0.0017 ~parity:0.0050 ~short_f:0.101)
      ~noise:0.00144 ~session_zipf:1.00;
    (* wordpress: concentrated hot branches (BranchNet-friendly). *)
    dc "wordpress" 112 ~functions:1287 ~session_types:200 ~session_zipf:1.45
      ~mix:{ (tweak default_mix ~hashed:0.0365 ~random:0.0028 ~parity:0.0170 ~short_f:0.114) with ctx = 0.11 }
      ~noise:0.00270;
  |]

(* SPEC-like benchmarks: small code footprints, mispredictions concentrated
   on a handful of hard (data-dependent / parity) branches in hot loops. *)
let spec_mix =
  {
    always = 0.30;
    never = 0.08;
    bias = 0.15;
    loop = 0.08;
    short_f = 0.06;
    ctx = 0.10;
    hashed = 0.03;
    parity = 0.012;
    random = 0.012;
  }

let sp ?(functions = 80) ?(blocks = (6, 14)) ?(session_types = 10)
    ?(mix = spec_mix) ?(noise = 0.0025) ?(session_zipf = 1.2)
    ?(func_zipf = 0.9) ?(random_range = (0.25, 0.75)) name seed =
  {
    name;
    seed;
    family = Spec;
    functions;
    blocks_per_fn = blocks;
    instrs_per_block = (4, 12);
    session_types;
    session_len = (3, 8);
    repeats = (1, 6);
    func_zipf;
    session_zipf;
    mix;
    noise;
    hashed_len_weights = w_short;
    bias_range = (0.975, 0.999);
    random_range;
    loop_range = (3, 24);
    parity_len = (8, 28);
  }

let spec =
  [|
    sp "deepsjeng" 201 ~functions:36 ~mix:{ spec_mix with random = 0.020 };
    sp "exchange2" 202 ~functions:36 ~mix:{ spec_mix with random = 0.006 };
    (* gcc is the SPEC outlier with a big footprint (paper Fig. 5a). *)
    sp "gcc" 203 ~functions:445 ~session_types:240 ~session_zipf:0.65
      ~mix:{ spec_mix with hashed = 0.08; random = 0.014 };
    sp "leela" 204 ~functions:36 ~mix:{ spec_mix with random = 0.035 };
    sp "mcf" 205 ~functions:36 ~mix:{ spec_mix with random = 0.040 };
    sp "omnetpp" 206 ~functions:54 ~mix:{ spec_mix with random = 0.026 };
    sp "perlbench" 207 ~functions:78 ~session_types:100
      ~mix:{ spec_mix with hashed = 0.05 };
    sp "x264" 208 ~functions:43 ~mix:{ spec_mix with random = 0.012 };
    sp "xalancbmk" 209 ~functions:99 ~session_types:120
      ~mix:{ spec_mix with hashed = 0.05; random = 0.016 };
    sp "xz" 210 ~functions:36 ~mix:{ spec_mix with random = 0.030 };
  |]

let all = Array.append datacenter spec

(* Fleet sampling: derive app number [index] of a synthetic fleet from a
   datacenter template, jittering the shape and behaviour parameters the
   templates were calibrated over.  Pure in (seed, index) — the sweep
   manifest only records the pair, and every worker process regenerates
   the identical config.  Sampled apps are deliberately smaller than the
   calibrated twelve: a fleet sweep trades per-app fidelity for app
   count. *)
let sample ~seed ~index =
  if index < 0 then invalid_arg "Workloads.sample: negative index";
  let rng = Rng.create ((seed * 0x9E3779B1) lxor ((index + 1) * 0x85EBCA77)) in
  let base = datacenter.(index mod Array.length datacenter) in
  let jitter lo hi = lo +. Rng.float rng (hi -. lo) in
  let m = base.mix in
  let scale_m f = f *. jitter 0.7 1.3 in
  {
    base with
    name = Printf.sprintf "fleet-%04d-%s" index base.name;
    seed = 100_000 + (seed * 1000) + index;
    functions = 60 + Rng.int rng 180;
    session_types = 24 + Rng.int rng 56;
    session_len = (4, 8 + Rng.int rng 6);
    func_zipf = base.func_zipf *. jitter 0.8 1.2;
    session_zipf = base.session_zipf *. jitter 0.75 1.25;
    noise = base.noise *. jitter 0.6 1.4;
    mix =
      {
        m with
        hashed = scale_m m.hashed;
        random = scale_m m.random;
        parity = scale_m m.parity;
        short_f = scale_m m.short_f;
      };
  }

let by_name name = Array.find_opt (fun c -> c.name = name) all

(* ------------------------------------------------------------------ *)
(* Static program generation                                           *)
(* ------------------------------------------------------------------ *)

let sample_range rng (lo, hi) =
  if hi < lo then invalid_arg "Workloads.sample_range";
  lo + Rng.int rng (hi - lo + 1)

let sample_behavior rng cfg : Behavior.t =
  let m = cfg.mix in
  let kind =
    Rng.sample_weighted rng
      [|
        (m.always, `Always);
        (m.never, `Never);
        (m.bias, `Bias);
        (m.loop, `Loop);
        (m.short_f, `Short);
        (m.ctx, `Ctx);
        (m.hashed, `Hashed);
        (m.parity, `Parity);
        (m.random, `Random);
      |]
  in
  let kind : Behavior.kind =
    match kind with
    | `Always -> Always_taken
    | `Never -> Never_taken
    | `Bias ->
        let lo, hi = cfg.bias_range in
        let p = lo +. Rng.float rng (hi -. lo) in
        (* Half the biased branches lean not-taken. *)
        Bias (if Rng.bool rng then p else 1.0 -. p)
    | `Loop ->
        (* mostly tight short loops, with a geometric tail of longer ones
           (the loop predictor's province) *)
        let lo, hi = cfg.loop_range in
        let period = lo + Rng.geometric rng 0.30 in
        Loop { period = min hi (max 2 period) }
    | `Short ->
        let len = 2 + Rng.int rng 5 in
        let bits = min 62 (1 lsl len) in
        let table = Rng.bits rng bits in
        let table =
          if table = 0 || table = Bitops.mask bits then Rng.bits rng bits
          else table
        in
        Short_formula { len; table }
    | `Ctx ->
        let len = 9 + Rng.int rng 8 in
        let seed = Rng.bits rng 30 in
        (* context-conditional bias: most contexts lean one way *)
        let p = 0.62 +. Rng.float rng 0.33 in
        let p = if Rng.bool rng then p else 1.0 -. p in
        Ctx_prf { len; seed; p_taken = p }
    | `Hashed ->
        let weights = Array.mapi (fun i w -> (w, i)) cfg.hashed_len_weights in
        let len_idx = Rng.sample_weighted rng weights in
        let formula_id =
          Rng.int rng
            (Whisper_formula.Tree.space_size ~leaves:Behavior.formula_leaves)
        in
        Hashed_formula { len_idx; formula_id }
    | `Parity ->
        let len = sample_range rng cfg.parity_len in
        let step = 1 + Rng.int rng 3 in
        Parity { len; step }
    | `Random ->
        let lo, hi = cfg.random_range in
        Random (lo +. Rng.float rng (hi -. lo))
  in
  let noise =
    match kind with
    | Random _ -> 0.0
    (* noisy loop exits would defeat every predictor including the paper's
       loop component; keep loop perturbation rare *)
    | Loop _ -> cfg.noise *. 0.25
    | _ -> cfg.noise *. (0.5 +. Rng.float rng 1.0)
  in
  { kind; noise }

let build_cfg cfg =
  let rng = Rng.create (cfg.seed * 1_000_003) in
  let blocks = ref [] in
  let funcs = ref [] in
  let behaviors = ref [] in
  let addr = ref 0x40_0000 in
  let block_id = ref 0 in
  for fid = 0 to cfg.functions - 1 do
    let n_blocks = sample_range rng cfg.blocks_per_fn in
    let first_block = !block_id in
    let f_addr = !addr in
    for _ = 1 to n_blocks do
      let instrs = sample_range rng cfg.instrs_per_block in
      let b_addr = !addr in
      let behavior = sample_behavior rng cfg in
      let loop_back =
        match behavior.Behavior.kind with Behavior.Loop _ -> true | _ -> false
      in
      let block : Cfg.block =
        {
          id = !block_id;
          func = fid;
          addr = b_addr;
          instrs;
          branch_pc = b_addr + ((instrs - 1) * Cfg.instr_bytes);
          loop_back;
        }
      in
      blocks := block :: !blocks;
      behaviors := behavior :: !behaviors;
      addr := b_addr + (instrs * Cfg.instr_bytes);
      incr block_id
    done;
    let f : Cfg.func =
      { fid; first_block; n_blocks; f_addr; f_size = !addr - f_addr }
    in
    funcs := f :: !funcs
  done;
  {
    Cfg.blocks = Array.of_list (List.rev !blocks);
    funcs = Array.of_list (List.rev !funcs);
    behaviors = Array.of_list (List.rev !behaviors);
    footprint = !addr - 0x40_0000;
  }
