(* Design-parameter sensitivity (paper §V-B "Sensitivity analysis").

     dune exec examples/sensitivity.exe

   Two of the knobs behind Table III: the run-time hint buffer size (the
   paper settles on 32 entries) and the history-hashing operation (the
   paper settles on XOR).  Also demonstrates restricting the formula
   family to classic and/or, the Fig. 14 ablation. *)

open Whisper_trace
open Whisper_sim

let events = 400_000
let app_name = "postgres"

let reduction ctx app config =
  let base = Runner.run ctx app Runner.Baseline in
  let w = Runner.run ctx app (Runner.Whisper config) in
  Whisper_util.Stats.reduction_pct
    ~baseline:(float_of_int base.Whisper_pipeline.Machine.mispredicts)
    ~improved:(float_of_int w.Whisper_pipeline.Machine.mispredicts)

let () =
  let app = Option.get (Workloads.by_name app_name) in
  let ctx = Runner.create_ctx ~events () in

  Printf.printf "hint buffer sensitivity (%s, %d events)\n" app_name events;
  Printf.printf "%8s %12s\n" "entries" "reduction-%";
  List.iter
    (fun size ->
      let config =
        { Whisper_core.Config.default with hint_buffer_size = size }
      in
      Printf.printf "%8d %12.1f\n" size (reduction ctx app config))
    [ 4; 8; 16; 32; 64; 128 ];

  Printf.printf
    "\nformula family (Fig. 14 ablation: classic and/or vs + imp/cnimp)\n";
  List.iter
    (fun (label, ops) ->
      let config = { Whisper_core.Config.default with ops } in
      Printf.printf "%-18s %12.1f\n" label (reduction ctx app config))
    [ ("classic-and/or", `Classic); ("extended-4ops", `Extended) ];

  Printf.printf "\nexploration fraction (Fig. 15 flavour)\n";
  List.iter
    (fun frac ->
      let config = { Whisper_core.Config.default with explore_frac = frac } in
      Printf.printf "%7.2f%% %12.1f\n" (100.0 *. frac) (reduction ctx app config))
    [ 0.0005; 0.001; 0.01 ]
