type bias = Formula | Always_taken | Never_taken | Dynamic

type t = {
  len_idx : int;
  formula_id : int;
  bias : bias;
  pc_offset : int;
}

let encoded_bits = 33

let bias_code = function
  | Formula -> 0
  | Always_taken -> 1
  | Never_taken -> 2
  | Dynamic -> 3

let bias_of_code = function
  | 0 -> Formula
  | 1 -> Always_taken
  | 2 -> Never_taken
  | 3 -> Dynamic
  | _ -> invalid_arg "Brhint.bias_of_code"

let make ~len_idx ~formula_id ~bias ~pc_offset =
  if len_idx < 0 || len_idx > 15 then invalid_arg "Brhint.make: len_idx";
  if formula_id < 0 || formula_id > 0x7FFF then
    invalid_arg "Brhint.make: formula_id";
  if pc_offset < 0 || pc_offset > 0xFFF then invalid_arg "Brhint.make: pc_offset";
  { len_idx; formula_id; bias; pc_offset }

(* layout, msb to lsb: history[32:29] formula[28:14] bias[13:12] pc[11:0] *)
let encode t =
  (t.len_idx lsl 29)
  lor (t.formula_id lsl 14)
  lor (bias_code t.bias lsl 12)
  lor t.pc_offset

let decode v =
  if v < 0 || v >= 1 lsl encoded_bits then invalid_arg "Brhint.decode";
  {
    len_idx = (v lsr 29) land 0xF;
    formula_id = (v lsr 14) land 0x7FFF;
    bias = bias_of_code ((v lsr 12) land 0x3);
    pc_offset = v land 0xFFF;
  }

let branch_pc t ~hint_addr =
  hint_addr + (t.pc_offset * Whisper_trace.Cfg.instr_bytes)

let pp fmt t =
  Format.fprintf fmt "brhint{len_idx=%d; formula=%#x; bias=%s; pc+%d}"
    t.len_idx t.formula_id
    (match t.bias with
    | Formula -> "formula"
    | Always_taken -> "always"
    | Never_taken -> "never"
    | Dynamic -> "dynamic")
    t.pc_offset
