open Whisper_util

type t = {
  lru : Brhint.t Lru.t;
  mutable n_insert : int;
  mutable n_hit : int;
  mutable n_miss : int;
}

let create ~size = { lru = Lru.create ~capacity:size; n_insert = 0; n_hit = 0; n_miss = 0 }

let size t = Lru.capacity t.lru
let length t = Lru.length t.lru

let insert t ~branch_pc hint =
  t.n_insert <- t.n_insert + 1;
  ignore (Lru.add t.lru branch_pc hint)

let probe t ~branch_pc =
  match Lru.peek t.lru branch_pc with
  | Some h ->
      t.n_hit <- t.n_hit + 1;
      Some h
  | None ->
      t.n_miss <- t.n_miss + 1;
      None

let clear t = Lru.clear t.lru
let insertions t = t.n_insert
let hits t = t.n_hit
let misses t = t.n_miss
