(* Flat set-associative LRU kernel.  One preallocated [int array] holds
   every way of every set contiguously (set-major, way 0 = MRU at the
   lowest index), so probe/fill touch a single cache-friendly block and
   allocate nothing.  [Reference] below keeps the original
   array-of-arrays implementation as the differential oracle. *)

type t = {
  data : int array;  (* [set * assoc + way] = line tag, way 0 = MRU *)
  set_mask : int;
  line_shift : int;
  assoc : int;
  mutable n_hit : int;
  mutable n_miss : int;
}

let geometry ?bytes ?entries ~assoc ~line_bytes () =
  let entries =
    match (bytes, entries) with
    | Some b, None -> b / line_bytes
    | None, Some e -> e
    | _ -> invalid_arg "Cache.create: give exactly one of ~bytes/~entries"
  in
  if entries < assoc || assoc < 1 then invalid_arg "Cache.create";
  let n_sets = entries / assoc in
  if not (Whisper_util.Bitops.is_power_of_two n_sets) then
    invalid_arg "Cache.create: sets must be a power of two";
  if not (Whisper_util.Bitops.is_power_of_two line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  (n_sets, Whisper_util.Bitops.log2_ceil line_bytes)

let create ?bytes ?entries ~assoc ~line_bytes () =
  let n_sets, line_shift = geometry ?bytes ?entries ~assoc ~line_bytes () in
  {
    data = Array.make (n_sets * assoc) (-1);
    set_mask = n_sets - 1;
    line_shift;
    assoc;
    n_hit = 0;
    n_miss = 0;
  }

let entries t = (t.set_mask + 1) * t.assoc

let reset t =
  Array.fill t.data 0 (Array.length t.data) (-1);
  t.n_hit <- 0;
  t.n_miss <- 0

(* All indices below stay inside [data] by construction: [base] is a
   masked set index times [assoc], and every offset is < assoc. *)

let access t addr =
  let line = addr lsr t.line_shift in
  let base = (line land t.set_mask) * t.assoc in
  let data = t.data in
  if Array.unsafe_get data base = line then begin
    (* MRU hit: nothing moves *)
    t.n_hit <- t.n_hit + 1;
    true
  end
  else begin
    let assoc = t.assoc in
    let rec find i =
      if i >= assoc then -1
      else if Array.unsafe_get data (base + i) = line then i
      else find (i + 1)
    in
    let way = find 1 in
    let hit = way >= 0 in
    let from = if hit then way else assoc - 1 in
    for i = from downto 1 do
      Array.unsafe_set data (base + i) (Array.unsafe_get data (base + i - 1))
    done;
    Array.unsafe_set data base line;
    if hit then t.n_hit <- t.n_hit + 1 else t.n_miss <- t.n_miss + 1;
    hit
  end

let probe t addr =
  let line = addr lsr t.line_shift in
  let base = (line land t.set_mask) * t.assoc in
  let data = t.data in
  let assoc = t.assoc in
  let rec find i =
    if i >= assoc then false
    else if Array.unsafe_get data (base + i) = line then true
    else find (i + 1)
  in
  find 0

let hits t = t.n_hit
let misses t = t.n_miss

module Reference = struct
  type t = {
    sets : int array array;  (* [set].[way] = line tag, way 0 = MRU *)
    set_mask : int;
    line_shift : int;
    assoc : int;
    mutable n_hit : int;
    mutable n_miss : int;
  }

  let create ?bytes ?entries ~assoc ~line_bytes () =
    let n_sets, line_shift = geometry ?bytes ?entries ~assoc ~line_bytes () in
    {
      sets = Array.make_matrix n_sets assoc (-1);
      set_mask = n_sets - 1;
      line_shift;
      assoc;
      n_hit = 0;
      n_miss = 0;
    }

  let find_way set assoc tag =
    let rec go i =
      if i >= assoc then -1 else if set.(i) = tag then i else go (i + 1)
    in
    go 0

  let access t addr =
    let line = addr lsr t.line_shift in
    let set = t.sets.(line land t.set_mask) in
    let tag = line lsr 0 in
    let way = find_way set t.assoc tag in
    let hit = way >= 0 in
    let from = if hit then way else t.assoc - 1 in
    for i = from downto 1 do
      set.(i) <- set.(i - 1)
    done;
    set.(0) <- tag;
    if hit then t.n_hit <- t.n_hit + 1 else t.n_miss <- t.n_miss + 1;
    hit

  let probe t addr =
    let line = addr lsr t.line_shift in
    let set = t.sets.(line land t.set_mask) in
    find_way set t.assoc line >= 0

  let hits t = t.n_hit
  let misses t = t.n_miss
end
