(** FIND-BOOLEAN-FORMULA (paper Algorithm 1).

    Given taken/not-taken hashed-history tables [T] and [NT] — keys are
    hashed histories, values are profile sample counts — find, among a
    candidate set of formulas, the one that mispredicts the fewest
    samples: a formula [f] mispredicts every taken sample whose key does
    not satisfy [f] plus every not-taken sample whose key does.

    Two scoring engines coexist.  The {e packed} engine
    ({!mispredictions_packed} / {!find_packed}) scores against bitset
    truth tables ({!Whisper_formula.Tree.packed_truth_table}) using the
    identity [m = t_total - sum over satisfied keys of (t_k - nt_k)] over
    a compact per-key delta array — keys with [t_k = nt_k] drop out of
    the sum entirely and are never visited — prunes candidates through a
    sorted-by-|delta| suffix bound, and stops the candidate scan
    outright once some candidate reaches the irreducible floor
    [sum min(t_k, nt_k)] that no formula can beat.  All of it
    bit-identical to the naive engine, an order of magnitude faster.  The {e naive} engine
    ({!mispredictions} / {!find}) walks [Bytes] truth tables one key at a
    time; it is retained as the differential-testing oracle and the
    benchmark reference. *)

type tables
(** Compacted (key, taken-count, not-taken-count) triples for one branch
    at one history length, plus the derived delta array and pruning
    bounds.  Tables from {!tables_of_counts} and {!builder_finish} own
    their storage and are immutable; tables from
    {!tables_of_cells_below} are views into the scratch, valid only
    until its next build. *)

(** {1 Building tables} *)

type scratch
(** Reusable workspace for table construction: one allocation serves any
    number of sequential builds (the finished {!tables} owns its own
    exactly-sized arrays).  Not safe to share across domains — give each
    worker its own. *)

val scratch : ?max_keys:int -> unit -> scratch
(** Workspace for up to [max_keys] (default 256) distinct keys. *)

val tables_of_counts : taken:int array -> not_taken:int array -> tables
(** Build from dense per-key count arrays (length [2^hash_bits]) in a
    single fused pass: key filtering, totals and compaction happen
    together. *)

val tables_of_counts_into :
  scratch -> taken:int array -> not_taken:int array -> tables
(** Like {!tables_of_counts}, but building through a caller-provided
    {!scratch} to avoid the internal workspace allocation. *)

(** {2 Incremental building}

    For callers that already hold per-key counts in another layout (the
    single-pass profile tabulation packs four counters per word), the
    builder interface skips the dense intermediate arrays entirely:
    [builder_reset], then [builder_add] once per distinct key, then
    [builder_finish]. *)

val builder_reset : scratch -> unit

val builder_add : scratch -> key:int -> taken:int -> not_taken:int -> unit
(** Keys may arrive in any order but at most once each; counts must be
    non-negative.  At most [max_keys] calls between resets. *)

val builder_finish : scratch -> tables

val tables_of_cells_below :
  scratch ->
  cells:int array ->
  off:int ->
  shift:int ->
  cutoff:int ->
  tables option
(** Fused hot-path extraction over 256 packed counter cells:
    [cells.(off + k)] holds key [k]'s taken count in bits
    [shift .. shift+15] and not-taken count in bits
    [shift+16 .. shift+31].  Returns [None] when no key is occupied, or
    when the irreducible misprediction floor [sum min(t_k, nt_k)] — a
    lower bound on {e any} formula's score — is at least [cutoff], so the
    caller can skip the whole candidate scan exactly.  The returned
    tables are a zero-allocation {e view} into the scratch, invalidated
    by the scratch's next build — score them before building again.
    Views serve the packed scorers only: they do not fill the per-key
    taken/not-taken counts that {!mispredictions} reads (the totals,
    {!distinct_keys} and both packed scorers are exact).  Requires a
    scratch built for at least 256 keys. *)

(** {1 Inspecting tables} *)

val tables_total : tables -> int * int
(** Total (taken, not-taken) sample counts. *)

val distinct_keys : tables -> int

(** {1 Scoring} *)

val mispredictions : tables -> truth:Bytes.t -> int
(** Mispredictions a formula (given as a [Bytes] truth table over keys)
    incurs.  Naive reference scorer. *)

val mispredictions_packed : tables -> ptruth:int array -> int
(** Same count, computed branchlessly against a packed bitset truth
    table.  [ptruth] must cover every key in the tables (8 words for the
    8-bit hash space; unchecked, like {!Whisper_formula.Tree.eval_tt}). *)

val always_mispredictions : tables -> int
(** Mispredictions of the always-taken hint (= not-taken samples). *)

val never_mispredictions : tables -> int

val find :
  tables ->
  candidates:int array ->
  truth_of:(int -> Bytes.t) ->
  int * int
(** [find tables ~candidates ~truth_of] returns [(formula_id, m')] — the
    candidate with the minimum misprediction count [m'] (ties resolved to
    the earlier candidate, matching the paper's sequential scan).
    @raise Invalid_argument on an empty candidate set. *)

val find_packed :
  tables ->
  candidates:int array ->
  packed:int array array ->
  int * int * int
(** [find_packed tables ~candidates ~packed] returns
    [(index, formula_id, m')] for the winning candidate, where
    [packed.(i)] is the packed truth table of [candidates.(i)] ([packed]
    may be longer than [candidates]).  Winner and [m'] are exactly those
    of {!find}: losing candidates are abandoned through an optimistic
    suffix bound the moment they provably cannot beat the current best,
    which never changes the selected formula.
    @raise Invalid_argument on an empty candidate set or when [packed] is
    shorter than [candidates]. *)

val find_packed_below :
  tables ->
  candidates:int array ->
  packed:int array array ->
  cutoff:int ->
  (int * int * int) option
(** Like {!find_packed}, but only interested in candidates scoring
    strictly below [cutoff]: returns [None] when no candidate beats it.
    Exactly equivalent to running {!find} and discarding a winner with
    [m' >= cutoff] — callers that already hold a bound (the best choice
    from other history lengths) let the scorer abandon hopeless
    candidates after a single bound comparison, or the whole table after
    one floor comparison. *)
