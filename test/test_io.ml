(* Tests for the binary IO layer: Binio primitives, profile persistence
   and hint-plan persistence. *)

open Whisper_util
open Whisper_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Binio                                                              *)
(* ------------------------------------------------------------------ *)

let test_binio_primitives () =
  let w = Binio.Writer.create () in
  Binio.Writer.byte w 0xAB;
  Binio.Writer.varint w 0;
  Binio.Writer.varint w 127;
  Binio.Writer.varint w 128;
  Binio.Writer.varint w 1_000_000_007;
  Binio.Writer.zigzag w (-42);
  Binio.Writer.zigzag w 42;
  Binio.Writer.string w "hello";
  Binio.Writer.float64 w 3.14159;
  Binio.Writer.magic w "TAG1";
  let r = Binio.Reader.create (Binio.Writer.contents w) in
  check_int "byte" 0xAB (Binio.Reader.byte r);
  check_int "v0" 0 (Binio.Reader.varint r);
  check_int "v127" 127 (Binio.Reader.varint r);
  check_int "v128" 128 (Binio.Reader.varint r);
  check_int "big" 1_000_000_007 (Binio.Reader.varint r);
  check_int "neg zigzag" (-42) (Binio.Reader.zigzag r);
  check_int "pos zigzag" 42 (Binio.Reader.zigzag r);
  Alcotest.(check string) "string" "hello" (Binio.Reader.string r);
  Alcotest.(check (float 1e-12)) "float" 3.14159 (Binio.Reader.float64 r);
  Binio.Reader.magic r "TAG1";
  check_bool "eof" true (Binio.Reader.eof r)

let test_binio_bad_magic () =
  let w = Binio.Writer.create () in
  Binio.Writer.magic w "AAAA";
  let r = Binio.Reader.create (Binio.Writer.contents w) in
  check_bool "mismatch raises typed error" true
    (try
       Binio.Reader.magic r "BBBB";
       false
     with
    | Whisper_error.Error
        { kind = Whisper_error.Bad_magic _; stage = Whisper_error.Binio; _ } ->
        true)

let test_binio_truncated () =
  let r = Binio.Reader.create (Bytes.of_string "\x80") in
  check_bool "truncated varint raises typed error" true
    (try
       ignore (Binio.Reader.varint r);
       false
     with Whisper_error.Error { kind = Whisper_error.Truncated; _ } -> true)

let test_binio_varint_overflow () =
  (* ten continuation bytes encode more than 62 bits: a malicious varint
     must be rejected at its offending byte, not wrap around *)
  let r = Binio.Reader.create (Bytes.make 10 '\xFF') in
  check_bool "overflow raises typed error at offset" true
    (try
       ignore (Binio.Reader.varint r);
       false
     with
    | Whisper_error.Error
        { kind = Whisper_error.Varint_overflow; offset = Some off; _ } ->
        off = 8)

let test_binio_count_overflow () =
  (* a count field larger than the remaining input must be rejected
     before it drives an allocation *)
  let w = Binio.Writer.create () in
  Binio.Writer.varint w 1_000_000;
  let r = Binio.Reader.create (Binio.Writer.contents w) in
  check_bool "oversized count raises typed error" true
    (try
       ignore (Binio.Reader.count r);
       false
     with Whisper_error.Error { kind = Whisper_error.Count_overflow _; _ } ->
       true)

let test_binio_negative_varint () =
  let w = Binio.Writer.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Binio.varint: negative")
    (fun () -> Binio.Writer.varint w (-1))

let qcheck_binio_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500
    QCheck.(int_bound 0x3FFFFFFFFFFF)
    (fun v ->
      let w = Binio.Writer.create () in
      Binio.Writer.varint w v;
      Binio.Reader.varint (Binio.Reader.create (Binio.Writer.contents w)) = v)

let qcheck_binio_zigzag_roundtrip =
  QCheck.Test.make ~name:"zigzag roundtrip" ~count:500
    QCheck.(int_range (-1_000_000_000) 1_000_000_000)
    (fun v ->
      let w = Binio.Writer.create () in
      Binio.Writer.zigzag w v;
      Binio.Reader.zigzag (Binio.Reader.create (Binio.Writer.contents w)) = v)

let test_binio_file_roundtrip () =
  let path = Filename.temp_file "whisper_binio" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let data = Bytes.of_string "roundtrip-me" in
      Binio.to_file path data;
      Alcotest.(check string)
        "file roundtrip" "roundtrip-me"
        (Bytes.to_string (Binio.of_file path)))

(* ------------------------------------------------------------------ *)
(* Profile_io                                                         *)
(* ------------------------------------------------------------------ *)

let make_profile () =
  let p = Profile.create_empty ~lengths:Workloads.lengths () in
  let rng = Rng.create 12 in
  for pc = 1 to 20 do
    let pc = 0x4000 + (pc * 16) in
    for _ = 1 to 50 do
      Profile.record_event p ~pc ~taken:(Rng.bool rng)
        ~correct:(Rng.bernoulli rng 0.8) ~instrs:8
    done
  done;
  for s = 1 to 30 do
    Profile.add_sample ~raw56:(s * 977) p ~pc:0x4010 ~raw8:(s land 0xFF)
      ~hashes:(Array.init 16 (fun i -> (s + i) land 0xFF))
      ~taken:(s mod 3 = 0) ~correct:(s mod 5 <> 0)
  done;
  p

let test_profile_roundtrip () =
  let p = make_profile () in
  let q = Profile_io.of_bytes_exn (Profile_io.to_bytes p) in
  check_int "total branches" (Profile.total_branches p) (Profile.total_branches q);
  check_int "total instrs" (Profile.total_instrs p) (Profile.total_instrs q);
  check_int "total mispred" (Profile.total_mispred p) (Profile.total_mispred q);
  check_int "static branches" (Profile.n_static_branches p)
    (Profile.n_static_branches q);
  Alcotest.(check (float 1e-9)) "mpki" (Profile.mpki p) (Profile.mpki q);
  (* stats agree per pc *)
  Profile.iter_stats p ~f:(fun ~pc s ->
      let s' = Option.get (Profile.stat q ~pc) in
      check_int "execs" s.Profile.execs s'.Profile.execs;
      check_int "taken" s.Profile.taken_cnt s'.Profile.taken_cnt;
      check_int "mispred" s.Profile.mispred s'.Profile.mispred);
  (* samples agree in order *)
  check_int "sample count" (Profile.n_samples p ~pc:0x4010)
    (Profile.n_samples q ~pc:0x4010);
  let collect prof =
    let acc = ref [] in
    Profile.iter_samples prof ~pc:0x4010
      ~f:(fun ~raw8 ~raw56 ~hash ~taken ~correct ->
        acc := (raw8, raw56, List.init 16 hash, taken, correct) :: !acc);
    List.rev !acc
  in
  check_bool "samples identical" true (collect p = collect q)

let test_profile_file_roundtrip () =
  let p = make_profile () in
  let path = Filename.temp_file "whisper_profile" ".wprf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Profile_io.save p ~path;
      let q = Profile_io.load_exn ~path in
      check_int "branches" (Profile.total_branches p) (Profile.total_branches q))

let test_profile_corrupt () =
  (match Profile_io.of_bytes (Bytes.of_string "XXXX\x01") with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error e ->
      check_bool "typed as bad magic" true
        (match e.Whisper_error.kind with
        | Whisper_error.Bad_magic _ -> true
        | _ -> false);
      (* the error keeps the stage that detected it — here the binio
         layer, reached through the profile decoder *)
      check_bool "detected at the binio layer" true
        (e.Whisper_error.stage = Whisper_error.Binio));
  (* decoding is total: every truncation of a valid stream is an Error,
     never an uncaught exception *)
  let good = Profile_io.to_bytes (make_profile ()) in
  for cut = 0 to min 200 (Bytes.length good - 1) do
    match Profile_io.of_bytes (Bytes.sub good 0 cut) with
    | Ok _ -> Alcotest.failf "truncation at %d accepted" cut
    | Error _ -> ()
  done

let test_profile_load_missing () =
  match Profile_io.load ~path:"/nonexistent/whisper.wprf" with
  | Ok _ -> Alcotest.fail "missing file loaded"
  | Error e ->
      check_bool "context is the path" true
        (e.Whisper_error.context = Some "/nonexistent/whisper.wprf")

let test_profile_roundtrip_usable_for_analysis () =
  (* a deserialized profile must drive the analysis identically *)
  let p = make_profile () in
  let q = Profile_io.of_bytes_exn (Profile_io.to_bytes p) in
  let a1 = Whisper_core.Analyze.run p in
  let a2 = Whisper_core.Analyze.run q in
  check_int "same hints"
    (Whisper_core.Analyze.hint_count a1)
    (Whisper_core.Analyze.hint_count a2)

(* ------------------------------------------------------------------ *)
(* Plan_io                                                            *)
(* ------------------------------------------------------------------ *)

let make_plan () =
  let open Whisper_core in
  let placements =
    List.init 5 (fun i ->
        {
          Inject.branch_block = 10 + i;
          host_block = 3 + i;
          hint =
            Brhint.make ~len_idx:(i mod 16) ~formula_id:(i * 1000)
              ~bias:(Brhint.bias_of_code (i mod 4))
              ~pc_offset:(i * 7);
          branch_pc = 0x4000 + (i * 64);
          cond_prob = 0.9 +. (0.01 *. float_of_int i);
        })
  in
  let by_host = Hashtbl.create 8 in
  List.iter
    (fun (p : Inject.placement) ->
      Hashtbl.replace by_host p.host_block
        (p :: Option.value ~default:[] (Hashtbl.find_opt by_host p.host_block)))
    placements;
  { Inject.placements; by_host; dropped = 2 }

let test_plan_roundtrip () =
  let open Whisper_core in
  let t = make_plan () in
  let t' = Plan_io.of_bytes (Plan_io.to_bytes t) in
  check_int "dropped" t.Inject.dropped t'.Inject.dropped;
  check_int "placements" (List.length t.Inject.placements)
    (List.length t'.Inject.placements);
  List.iter2
    (fun (a : Inject.placement) (b : Inject.placement) ->
      check_int "branch block" a.branch_block b.branch_block;
      check_int "host block" a.host_block b.host_block;
      check_int "branch pc" a.branch_pc b.branch_pc;
      check_bool "hint" true (a.hint = b.hint);
      Alcotest.(check (float 1e-12)) "prob" a.cond_prob b.cond_prob)
    t.Inject.placements t'.Inject.placements;
  (* hints_at works on the reconstructed index *)
  List.iter
    (fun (p : Inject.placement) ->
      check_bool "indexed" true
        (List.exists
           (fun (q : Inject.placement) -> q.branch_pc = p.branch_pc)
           (Inject.hints_at t' ~block:p.host_block)))
    t.Inject.placements

let test_plan_file_roundtrip () =
  let t = make_plan () in
  let path = Filename.temp_file "whisper_plan" ".whnt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Whisper_core.Plan_io.save t ~path;
      let t' = Whisper_core.Plan_io.load ~path in
      check_int "placements"
        (List.length t.Whisper_core.Inject.placements)
        (List.length t'.Whisper_core.Inject.placements))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "whisper_io"
    [
      ( "binio",
        Alcotest.
          [
            test_case "primitives" `Quick test_binio_primitives;
            test_case "bad magic" `Quick test_binio_bad_magic;
            test_case "truncated" `Quick test_binio_truncated;
            test_case "varint overflow" `Quick test_binio_varint_overflow;
            test_case "count overflow" `Quick test_binio_count_overflow;
            test_case "negative varint" `Quick test_binio_negative_varint;
            test_case "file roundtrip" `Quick test_binio_file_roundtrip;
          ]
        @ qsuite [ qcheck_binio_varint_roundtrip; qcheck_binio_zigzag_roundtrip ] );
      ( "profile_io",
        Alcotest.
          [
            test_case "roundtrip" `Quick test_profile_roundtrip;
            test_case "file roundtrip" `Quick test_profile_file_roundtrip;
            test_case "corrupt" `Quick test_profile_corrupt;
            test_case "missing file" `Quick test_profile_load_missing;
            test_case "drives analysis" `Quick test_profile_roundtrip_usable_for_analysis;
          ] );
      ( "plan_io",
        Alcotest.
          [
            test_case "roundtrip" `Quick test_plan_roundtrip;
            test_case "file roundtrip" `Quick test_plan_file_roundtrip;
          ] );
    ]
