type block = {
  id : int;
  func : int;
  addr : int;
  instrs : int;
  branch_pc : int;
  loop_back : bool;
}

type func = {
  fid : int;
  first_block : int;
  n_blocks : int;
  f_addr : int;
  f_size : int;
}

type t = {
  blocks : block array;
  funcs : func array;
  behaviors : Behavior.t array;
  footprint : int;
}

let instr_bytes = 4

let n_branches t = Array.length t.blocks

let block_of_pc t pc =
  (* Blocks are address-sorted; binary search on branch_pc. *)
  let lo = ref 0 and hi = ref (Array.length t.blocks - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let b = t.blocks.(mid) in
    if b.branch_pc = pc then begin
      found := Some b;
      lo := !hi + 1
    end
    else if b.branch_pc < pc then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let predecessors_in_func t b =
  let blk = t.blocks.(b) in
  let f = t.funcs.(blk.func) in
  let rec go i acc =
    if i < f.first_block then acc else go (i - 1) (i :: acc)
  in
  List.rev (go (b - 1) [])

let behavior t b = t.behaviors.(b)

let validate t =
  let ( let* ) r f = Result.bind r f in
  let check cond msg = if cond then Ok () else Error msg in
  let* () =
    check
      (Array.length t.blocks = Array.length t.behaviors)
      "behaviors not parallel to blocks"
  in
  let* () =
    Array.to_seq t.blocks
    |> Seq.fold_left
         (fun acc b ->
           let* () = acc in
           let* () = check (b.instrs >= 1) "empty block" in
           let* () =
             check
               (b.branch_pc = b.addr + ((b.instrs - 1) * instr_bytes))
               "branch pc not at block end"
           in
           check (b.func >= 0 && b.func < Array.length t.funcs)
             "dangling function id")
         (Ok ())
  in
  let* () =
    Array.to_seq t.funcs
    |> Seq.fold_left
         (fun acc f ->
           let* () = acc in
           let* () = check (f.n_blocks >= 1) "empty function" in
           let first = t.blocks.(f.first_block) in
           let last = t.blocks.(f.first_block + f.n_blocks - 1) in
           let* () = check (first.func = f.fid) "first block cross-ref" in
           let* () = check (last.func = f.fid) "last block cross-ref" in
           check
             (f.f_size = last.addr + (last.instrs * instr_bytes) - f.f_addr)
             "function size mismatch")
         (Ok ())
  in
  let* () =
    let sorted = ref true in
    for i = 1 to Array.length t.blocks - 1 do
      if t.blocks.(i).addr <= t.blocks.(i - 1).addr then sorted := false
    done;
    check !sorted "blocks not address-sorted"
  in
  Ok ()
