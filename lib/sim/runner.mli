(** Unified execution of every prediction technique in the study over the
    timing model, with in-process memoization of profiles, trained
    artifacts and run results, so that figures sharing configurations
    (e.g. Figs. 12 and 13) pay for each simulation once. *)

type technique =
  | Baseline  (** the TAGE-SC-L under test, alone *)
  | Ideal
  | Mtage_sc
  | Rombf of int  (** 4 or 8 *)
  | Branchnet of Whisper_branchnet.Branchnet.budget
  | Whisper of Whisper_core.Config.t

val technique_name : technique -> string

type ctx
(** Holds caches; create one per process/figure batch. *)

val create_ctx : ?events:int -> ?baseline_kb:int -> unit -> ctx
(** Defaults: 1.2 M branch events per simulation, 64 KB baseline. *)

val events : ctx -> int
val set_events : ctx -> int -> unit
val baseline_kb : ctx -> int

val cfg_of : ctx -> Whisper_trace.Workloads.config -> Whisper_trace.Cfg.t

val profile :
  ?inputs:int list ->
  ?baseline_kb:int ->
  ctx ->
  Whisper_trace.Workloads.config ->
  Whisper_trace.Profile.t
(** Memoized profile collection ([inputs] defaults to [[0]]; several
    inputs are collected separately and merged, Fig. 18). *)

val run :
  ?train_inputs:int list ->
  ?test_input:int ->
  ?baseline_kb:int ->
  ctx ->
  Whisper_trace.Workloads.config ->
  technique ->
  Whisper_pipeline.Machine.result
(** Memoized end-to-end run: offline training from the train-input
    profile(s) where the technique needs it, then a timed simulation on
    the test input (default: train on input 0, test on input 1 — the
    paper's cross-input methodology). *)

val whisper_analysis :
  ?config:Whisper_core.Config.t ->
  ?train_inputs:int list ->
  ctx ->
  Whisper_trace.Workloads.config ->
  Whisper_core.Analyze.t
(** The offline analysis by itself (for Figs. 6, 7, 15, 16, 19). *)

val whisper_plan :
  ?config:Whisper_core.Config.t ->
  ?train_inputs:int list ->
  ctx ->
  Whisper_trace.Workloads.config ->
  Whisper_core.Inject.t
(** Analysis + hint injection plan (for Fig. 19 overheads). *)
