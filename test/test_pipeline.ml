(* Tests for whisper_pipeline: the cache model and the trace-driven timing
   model (Scarab substitute). *)

open Whisper_trace
open Whisper_pipeline

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

let test_cache_hit_after_fill () =
  let c = Cache.create ~bytes:1024 ~assoc:2 ~line_bytes:64 () in
  check_bool "cold miss" false (Cache.access c 0x1000);
  check_bool "hit" true (Cache.access c 0x1000);
  check_bool "same line" true (Cache.access c 0x103F);
  check_bool "next line misses" false (Cache.access c 0x1040);
  check_int "hits" 2 (Cache.hits c);
  check_int "misses" 2 (Cache.misses c)

let test_cache_lru_within_set () =
  (* 2-way set: fill two lines in the same set, touch the first, add a
     third: the second must be the victim *)
  let c = Cache.create ~bytes:1024 ~assoc:2 ~line_bytes:64 () in
  (* 8 sets; same set every 8 lines = 512 bytes *)
  ignore (Cache.access c 0x0);
  ignore (Cache.access c 0x200);
  ignore (Cache.access c 0x0);
  ignore (Cache.access c 0x400);
  (* evicts 0x200 *)
  check_bool "first retained" true (Cache.probe c 0x0);
  check_bool "victim gone" false (Cache.probe c 0x200)

let test_cache_capacity () =
  let c = Cache.create ~bytes:512 ~assoc:2 ~line_bytes:64 () in
  check_int "entries" 8 (Cache.entries c);
  for i = 0 to 15 do
    ignore (Cache.access c (i * 64))
  done;
  (* only the last lines of each set survive *)
  check_bool "early line evicted" false (Cache.probe c 0)

let test_cache_invalid () =
  Alcotest.check_raises "both sizes"
    (Invalid_argument "Cache.create: give exactly one of ~bytes/~entries")
    (fun () ->
      ignore (Cache.create ~bytes:1024 ~entries:16 ~assoc:2 ~line_bytes:64 ()))

(* ------------------------------------------------------------------ *)
(* Machine                                                            *)
(* ------------------------------------------------------------------ *)

let tiny_app () : Workloads.config =
  {
    name = "tiny-pipe";
    seed = 99;
    family = Workloads.Datacenter;
    functions = 32;
    blocks_per_fn = (3, 6);
    instrs_per_block = (4, 8);
    session_types = 8;
    session_len = (2, 4);
    repeats = (1, 3);
    func_zipf = 0.6;
    session_zipf = 0.7;
    mix =
      {
        always = 0.5;
        never = 0.2;
        bias = 0.1;
        loop = 0.1;
        short_f = 0.1;
        ctx = 0.0;
        hashed = 0.0;
        parity = 0.0;
        random = 0.0;
      };
    noise = 0.0;
    hashed_len_weights = Array.make 16 1.0;
    bias_range = (0.9, 0.99);
    random_range = (0.4, 0.6);
    loop_range = (2, 6);
    parity_len = (8, 16);
  }

let run_with ~correct_fn ~events =
  let app = tiny_app () in
  let cfg = Workloads.build_cfg app in
  let src = App_model.source (App_model.create ~cfg ~config:app ~input:0 ()) in
  Machine.run ~events ~source:src ~predict:correct_fn ()

let test_machine_counts () =
  let events = 5000 in
  let r = run_with ~events ~correct_fn:(fun _ -> true) in
  check_int "branches" events r.Machine.branches;
  check_bool "instrs >= events" true (r.Machine.instrs >= events);
  check_int "no mispredicts" 0 r.Machine.mispredicts;
  check_bool "cycles positive" true (r.Machine.cycles > 0.0);
  check_bool "ipc sane" true (Machine.ipc r > 0.3 && Machine.ipc r < 7.0)

let test_machine_mispredict_penalty () =
  let events = 5000 in
  let perfect = run_with ~events ~correct_fn:(fun _ -> true) in
  let flaky =
    let i = ref 0 in
    run_with ~events ~correct_fn:(fun _ ->
        incr i;
        !i mod 10 <> 0)
  in
  check_int "10% mispredicts" (events / 10) flaky.Machine.mispredicts;
  check_bool "mispredicts cost cycles" true
    (flaky.Machine.cycles > perfect.Machine.cycles);
  check_bool "misp stall accounted" true
    (flaky.Machine.misp_stall
    >= float_of_int (events / 10 * Params.default.Params.resteer_penalty) -. 1.0)

let test_machine_mispredicts_expose_frontend () =
  (* resteers reset FDIP lead, so the flaky run must expose at least as
     many I-cache miss cycles as the perfect one *)
  let events = 20_000 in
  let perfect = run_with ~events ~correct_fn:(fun _ -> true) in
  let flaky =
    let i = ref 0 in
    run_with ~events ~correct_fn:(fun _ ->
        incr i;
        !i mod 8 <> 0)
  in
  check_bool "frontend stalls grow with mispredictions" true
    (flaky.Machine.fe_stall >= perfect.Machine.fe_stall)

let test_machine_speedup () =
  let events = 5000 in
  let perfect = run_with ~events ~correct_fn:(fun _ -> true) in
  let flaky =
    let i = ref 0 in
    run_with ~events ~correct_fn:(fun _ ->
        incr i;
        !i mod 10 <> 0)
  in
  let s = Machine.speedup_pct ~baseline:flaky ~improved:perfect in
  check_bool "positive speedup" true (s > 0.0);
  check_bool "mpki" true (Machine.mpki flaky > 0.0)

let test_machine_segments () =
  let events = 10_000 in
  let r =
    let i = ref 0 in
    run_with ~events ~correct_fn:(fun _ ->
        incr i;
        !i mod 5 <> 0)
  in
  check_int "10 segments" 10 (Array.length r.Machine.seg_mispredicts);
  check_int "segments sum to total" r.Machine.mispredicts
    (Array.fold_left ( + ) 0 r.Machine.seg_mispredicts);
  check_int "instr segments sum" r.Machine.instrs
    (Array.fold_left ( + ) 0 r.Machine.seg_instrs)

(* events = 0 and events < segments must spread evenly, with no
   front-loaded segments and no skew, identically on both replay paths *)
let test_machine_segment_edges () =
  let app = tiny_app () in
  let cfg = Workloads.build_cfg app in
  let run_n events =
    let src = App_model.source (App_model.create ~cfg ~config:app ~input:0 ()) in
    Machine.run ~events ~source:src ~predict:(fun _ -> true) ()
  in
  let r0 = run_n 0 in
  check_int "0 events: 10 segments" 10 (Array.length r0.Machine.seg_instrs);
  check_int "0 events: no instrs" 0 (Array.fold_left ( + ) 0 r0.Machine.seg_instrs);
  check_int "0 events: no mispredicts" 0
    (Array.fold_left ( + ) 0 r0.Machine.seg_mispredicts);
  let r3 = run_n 3 in
  check_int "3 events: 10 segments" 10 (Array.length r3.Machine.seg_instrs);
  check_int "3 events: instrs conserved" r3.Machine.instrs
    (Array.fold_left ( + ) 0 r3.Machine.seg_instrs);
  let nonzero =
    Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 r3.Machine.seg_instrs
  in
  check_int "3 events spread over 3 segments" 3 nonzero;
  (* events not divisible by segments: balanced, never front-loaded *)
  let r15 = run_n 15 in
  check_int "15 events: instrs conserved" r15.Machine.instrs
    (Array.fold_left ( + ) 0 r15.Machine.seg_instrs);
  let occupied =
    Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 r15.Machine.seg_instrs
  in
  check_int "15 events occupy all 10 segments" 10 occupied

(* the closure and arena paths share one accounting core; prove the
   results are structurally identical, including per-segment arrays, at
   an event count that exercises the uneven-partition case *)
let test_machine_arena_equals_closure () =
  let app = tiny_app () in
  let cfg = Workloads.build_cfg app in
  List.iter
    (fun events ->
      let closure =
        let src =
          App_model.source (App_model.create ~cfg ~config:app ~input:0 ())
        in
        let p = Whisper_bpu.Tage_scl.predictor Whisper_bpu.Sizes.standard in
        Machine.run ~events ~source:src
          ~predict:(fun e ->
            let pred = p.Whisper_bpu.Predictor.predict ~pc:e.Branch.pc in
            p.train ~pc:e.Branch.pc ~taken:e.Branch.taken;
            pred = e.Branch.taken)
          ()
      in
      let arena =
        Arena.build ~events (App_model.create ~cfg ~config:app ~input:0 ())
      in
      let packed =
        let p = Whisper_bpu.Tage_scl.predictor Whisper_bpu.Sizes.standard in
        Machine.run_arena ~events ~arena
          ~predict:(fun i ->
            let pc = Arena.pc arena i in
            let taken = Arena.taken arena i in
            let pred = p.Whisper_bpu.Predictor.predict ~pc in
            p.train ~pc ~taken;
            pred = taken)
          ()
      in
      check_bool
        (Printf.sprintf "closure == arena at %d events" events)
        true (closure = packed))
    [ 0; 7; 10_000; 10_003 ]

let test_params_table2 () =
  let p = Params.default in
  check_int "width" 6 p.Params.width;
  check_int "ftq" 24 p.ftq_entries;
  check_int "rob" 224 p.rob_entries;
  check_int "rs" 97 p.rs_entries;
  check_int "btb" 8192 p.btb_entries;
  check_int "l1i" (32 * 1024) p.l1i_bytes;
  check_int "l2" (1024 * 1024) p.l2_bytes;
  check_int "l3" (10 * 1024 * 1024) p.l3_bytes

let () =
  Alcotest.run "whisper_pipeline"
    [
      ( "cache",
        Alcotest.
          [
            test_case "hit after fill" `Quick test_cache_hit_after_fill;
            test_case "lru within set" `Quick test_cache_lru_within_set;
            test_case "capacity" `Quick test_cache_capacity;
            test_case "invalid" `Quick test_cache_invalid;
          ] );
      ( "machine",
        Alcotest.
          [
            test_case "counts" `Quick test_machine_counts;
            test_case "mispredict penalty" `Quick test_machine_mispredict_penalty;
            test_case "mispredicts expose frontend" `Quick
              test_machine_mispredicts_expose_frontend;
            test_case "speedup" `Quick test_machine_speedup;
            test_case "segments" `Quick test_machine_segments;
            test_case "segment edge cases" `Quick test_machine_segment_edges;
            test_case "arena equals closure" `Quick
              test_machine_arena_equals_closure;
            test_case "params table2" `Quick test_params_table2;
          ] );
    ]
