(** Whisper's run-time prediction path (paper §IV, Fig. 10 step 3).

    Wraps a baseline dynamic predictor.  On every event the runner first
    "executes" the brhint instructions injected into the event's basic
    block (filling the hint buffer), then predicts the block's branch:

    - hint-buffer hit → predict with the hint (bias or Boolean formula
      over the hashed history at the hint's length) and {e spectate} the
      baseline, so it neither trains nor allocates for this branch;
    - miss → baseline predict + train.

    The hashed histories are the same folded registers the hardware
    already maintains for TAGE (§III-A), kept here in a mirror updated
    with every resolved outcome. *)

type t

val create :
  Config.t -> baseline:Whisper_bpu.Predictor.t -> plan:Inject.t -> t

val exec : t -> Whisper_trace.Branch.event -> bool
(** Process one event end-to-end (hint execution, prediction, training,
    history update).  Returns whether the prediction was correct. *)

val exec_at : t -> block:int -> pc:int -> taken:bool -> bool
(** [exec] on unboxed event fields — the arena replay path, which never
    materializes a [Branch.event] record. *)

val predictor_name : t -> string

val hinted_predictions : t -> int
(** Predictions served by hints (hint-buffer hits). *)

val hinted_mispredictions : t -> int

val baseline_predictions : t -> int

val buffer : t -> Hint_buffer.t
