(** Read-once Boolean formula trees over a fixed number of input bits.

    A formula is a complete binary tree whose leaves are the input bits
    (leaf [i] reads history bit [i]) and whose internal nodes each apply
    one {!Op.t}, plus a final output-inversion bit — exactly the structure
    of the paper's Fig. 9 micro-architecture: for 8 inputs, 7 single units
    with 2-bit op selectors (control inputs O0..O13) feed a final 2×1
    multiplexer controlled by the inversion input I, giving the 15-bit
    formula field of the [brhint] instruction (Fig. 11).

    Classic ROMBF (and/or only, no inversion) is the sub-family encoded by
    {!to_classic_id} / {!of_classic_id} in [leaves - 1] bits, matching the
    2001 paper's storage claim. *)

type t

val leaves : t -> int
(** Number of input bits; a power of two, at least 2. *)

val ops : t -> Op.t array
(** The [leaves - 1] node operations in level order (root first).  Node
    [i]'s children are nodes [2i+1] and [2i+2]; nodes
    [leaves-1 .. 2*leaves-2] are the leaves, reading input bits
    [0 .. leaves-1] in order. *)

val inverted : t -> bool
(** Whether the root output is inverted. *)

val make : ops:Op.t array -> inverted:bool -> t
(** [make ~ops ~inverted] builds a tree; [Array.length ops + 1] must be a
    power of two at least 2.  @raise Invalid_argument otherwise. *)

val eval : t -> int -> bool
(** [eval t bits] evaluates the formula on the packed input [bits]
    (input bit [i] of the formula is bit [i] of the int). *)

(** {1 Identifier encoding}

    Every formula over [n] leaves has a unique id in
    [0 .. 2^(2(n-1)+1) - 1]: node [i]'s op occupies id bits [2i .. 2i+1]
    and the inversion flag is the top bit.  For [n = 8] this is the 15-bit
    space the paper's randomized formula testing samples from. *)

val id_bits : leaves:int -> int
(** Number of id bits: [2*(leaves-1) + 1]. *)

val space_size : leaves:int -> int
(** [2 ^ id_bits], the size of the search space (e.g. 32768 for 8 leaves). *)

val to_id : t -> int
val of_id : leaves:int -> int -> t
(** @raise Invalid_argument if the id is out of range. *)

(** {1 Classic ROMBF encoding (and/or only, [leaves - 1] bits)} *)

val is_classic : t -> bool
(** True when the tree uses only [And]/[Or] and no inversion. *)

val to_classic_id : t -> int
(** @raise Invalid_argument if not {!is_classic}. *)

val of_classic_id : leaves:int -> int -> t
val classic_space_size : leaves:int -> int

(** {1 Truth tables} *)

val truth_table : t -> Bytes.t
(** [truth_table t] has [2^leaves] entries of ['\000' | '\001'];
    entry [k] is [eval t k].  Used to make Algorithm 1 and the run-time
    hint evaluation O(1) per lookup. *)

val eval_tt : Bytes.t -> int -> bool
(** [eval_tt table bits] looks up a packed input in a truth table. *)

val packed_truth_table : t -> int array
(** The truth table as a bitset packed 32 entries per word: bit
    [k land 31] of word [k lsr 5] is [eval t k].  One 256-entry table is
    8 words instead of 256 bytes, and a membership test is a shift and a
    mask instead of a byte load — the representation behind the
    bit-parallel Algorithm 1 scorer
    ({!Whisper_core.Algorithm1.find_packed}). *)

val eval_packed : int array -> int -> bool
(** [eval_packed w bits] tests bit [bits] of a packed truth table.  The
    input must be within the table's range (unchecked, like {!eval_tt}). *)

val eval_packed_at : int array -> off:int -> int -> bool
(** [eval_packed_at bank ~off bits] is {!eval_packed} on the table whose
    words start at [bank.(off)] — the lookup used by the compiled
    Whisper runtime, whose truth tables for a whole injection plan are
    concatenated into one dense bank array. *)

val pack_truth_table : Bytes.t -> int array
(** Pack an existing {!truth_table} byte table into the bitset form. *)

(** {1 Hardware model} *)

val gate_delay : leaves:int -> int
(** Worst-case logic depth in gates of the Fig. 9 implementation:
    [5 * log2 leaves] for the single-unit layers (NOT, AND/OR, 3 gates of
    the 4×1 mux each) plus 4 for the final inverting 2×1 mux stage — 19
    gates for 8 leaves, as computed in the paper. *)

(** {1 Convenience} *)

val all_ops : Op.t -> leaves:int -> t
(** [all_ops op ~leaves] is the uninverted tree with [op] at every node;
    e.g. [all_ops And ~leaves:8] is the 8-way conjunction. *)

val random : Whisper_util.Rng.t -> leaves:int -> t
(** A uniformly random formula over the full id space. *)

val pp : Format.formatter -> t -> unit
(** Renders e.g. [~((b0 and b1) or (b2 imp b3))]. *)

val to_string : t -> string

val equal : t -> t -> bool
