open Whisper_util
open Whisper_trace

type t = {
  base : Whisper_bpu.Predictor.t;
  plan : Inject.t;
  buf : Hint_buffer.t;
  hist : History.t;
  folded : History.Folded.t array;
  truths : (int, Bytes.t) Hashtbl.t;
  hash_bits : int;
  mutable n_hinted : int;
  mutable n_hinted_wrong : int;
  mutable n_base : int;
}

let create (cfg : Config.t) ~baseline ~plan =
  let lengths = Config.lengths cfg in
  let max_len = Array.fold_left max 1 lengths in
  {
    base = baseline;
    plan;
    buf = Hint_buffer.create ~size:cfg.hint_buffer_size;
    hist = History.create ~depth:(2 * max_len);
    folded =
      Array.map
        (fun len -> History.Folded.create ~len ~chunk:cfg.hash_bits)
        lengths;
    truths = Hashtbl.create 256;
    hash_bits = cfg.hash_bits;
    n_hinted = 0;
    n_hinted_wrong = 0;
    n_base = 0;
  }

let truth t id =
  match Hashtbl.find_opt t.truths id with
  | Some b -> b
  | None ->
      let b =
        Whisper_formula.Tree.truth_table
          (Whisper_formula.Tree.of_id ~leaves:t.hash_bits id)
      in
      Hashtbl.add t.truths id b;
      b

let hint_prediction t (h : Brhint.t) =
  match h.bias with
  | Brhint.Always_taken -> Some true
  | Brhint.Never_taken -> Some false
  | Brhint.Dynamic -> None
  | Brhint.Formula ->
      let hash = History.Folded.value t.folded.(h.len_idx) in
      Some (Whisper_formula.Tree.eval_tt (truth t h.formula_id) hash)

let exec_at t ~block ~pc ~taken =
  (* 1. execute any brhints hosted in this block *)
  List.iter
    (fun (p : Inject.placement) ->
      Hint_buffer.insert t.buf ~branch_pc:p.branch_pc p.hint)
    (Inject.hints_at t.plan ~block);
  (* 2. predict: hint buffer and dynamic predictor are probed in parallel;
     a hinted branch does not train or allocate in the baseline *)
  let hinted =
    match Hint_buffer.probe t.buf ~branch_pc:pc with
    | Some h -> hint_prediction t h
    | None -> None
  in
  let correct =
    match hinted with
    | Some pred ->
        t.n_hinted <- t.n_hinted + 1;
        t.base.spectate ~pc ~taken;
        let ok = pred = taken in
        if not ok then t.n_hinted_wrong <- t.n_hinted_wrong + 1;
        ok
    | None ->
        t.n_base <- t.n_base + 1;
        let pred = t.base.predict ~pc in
        t.base.train ~pc ~taken;
        t.base.is_oracle || pred = taken
  in
  (* 3. advance Whisper's folded-history mirror *)
  History.push_all t.hist t.folded taken;
  correct

let exec t (e : Branch.event) =
  exec_at t ~block:e.Branch.block ~pc:e.pc ~taken:e.taken

let predictor_name t = "whisper+" ^ t.base.name
let hinted_predictions t = t.n_hinted
let hinted_mispredictions t = t.n_hinted_wrong
let baseline_predictions t = t.n_base
let buffer t = t.buf
