type tables = {
  n_keys : int;
      (* number of distinct occupied keys; the arrays may be longer when
         the tables are a view into a scratch (see
         [tables_of_cells_below]) *)
  n_scored : int;
      (* prefix of [keys]/[delta] the packed scorers must visit: keys
         with delta = 0 contribute nothing to
         [m = t_total - sum over satisfied keys of delta] and are sorted
         (or compacted) past this point, so the bit-parallel engines can
         ignore them outright — the naive scorer cannot, it needs both
         per-key counts *)
  keys : int array;  (* distinct keys; first [n_scored] entries valid *)
  taken : int array;  (* parallel to keys *)
  not_taken : int array;
  delta : int array;  (* taken - not_taken, parallel to keys *)
  gain_bound : int array;
      (* gain_bound.(i) = sum over j >= i of max 0 delta.(j); indices
         [0 .. n_keys] valid so index n_keys reads 0 *)
  t_total : int;
  nt_total : int;
  floor : int;
      (* irreducible mispredictions [sum_k min(t_k, nt_k)]: a hard lower
         bound on every formula's score, so a search that reaches it can
         stop — no later candidate can beat it, and ties resolve to the
         earlier candidate anyway *)
}

(* ------------------------------------------------------------------ *)
(* Scratch-backed table building                                      *)
(* ------------------------------------------------------------------ *)

(* One scratch serves any number of sequential [tables_of_counts] /
   builder calls: the caller-visible [tables] copies out exactly-sized
   arrays, so the scratch can be reused immediately.  Not safe to share
   across domains — give each worker its own. *)
type scratch = {
  b_keys : int array;
  b_taken : int array;
  b_not_taken : int array;
  b_count : int array;  (* 256 counting-sort buckets *)
  b_order : int array;  (* sorted slot permutation *)
  b_delta : int array;  (* view-table delta, parallel to b_keys *)
  b_gain : int array;  (* view-table gain bound, length max_keys + 1 *)
  mutable b_n : int;
  mutable b_t_total : int;
  mutable b_nt_total : int;
}

let n_buckets = 256

let scratch ?(max_keys = 256) () =
  {
    b_keys = Array.make max_keys 0;
    b_taken = Array.make max_keys 0;
    b_not_taken = Array.make max_keys 0;
    b_count = Array.make n_buckets 0;
    b_order = Array.make max_keys 0;
    b_delta = Array.make max_keys 0;
    b_gain = Array.make (max_keys + 1) 0;
    b_n = 0;
    b_t_total = 0;
    b_nt_total = 0;
  }

let builder_reset s =
  s.b_n <- 0;
  s.b_t_total <- 0;
  s.b_nt_total <- 0

let builder_add s ~key ~taken ~not_taken =
  let i = s.b_n in
  s.b_keys.(i) <- key;
  s.b_taken.(i) <- taken;
  s.b_not_taken.(i) <- not_taken;
  s.b_n <- i + 1;
  s.b_t_total <- s.b_t_total + taken;
  s.b_nt_total <- s.b_nt_total + not_taken

(* Key order never affects scores (integer sums are exact and the bounded
   scorer is exact below its cutoff) — ordering by decreasing |delta| only
   sharpens pruning.  So an approximate order is fine, and a stable
   counting sort on min(|delta|, 255) beats a comparison sort without any
   per-element closure calls. *)
let builder_finish s =
  let n = s.b_n in
  let bucket i =
    let d = abs (s.b_taken.(i) - s.b_not_taken.(i)) in
    if d < n_buckets then d else n_buckets - 1
  in
  Array.fill s.b_count 0 n_buckets 0;
  for i = 0 to n - 1 do
    let b = bucket i in
    s.b_count.(b) <- s.b_count.(b) + 1
  done;
  (* bucket 0 holds exactly the zero-delta keys, and the descending
     placement below parks it last — so the scored prefix is just
     everything before it *)
  let n_scored = n - s.b_count.(0) in
  (* descending buckets: running start positions from the top down *)
  let pos = ref 0 in
  for b = n_buckets - 1 downto 0 do
    let c = s.b_count.(b) in
    s.b_count.(b) <- !pos;
    pos := !pos + c
  done;
  for i = 0 to n - 1 do
    let b = bucket i in
    s.b_order.(s.b_count.(b)) <- i;
    s.b_count.(b) <- s.b_count.(b) + 1
  done;
  let keys = Array.make n 0
  and taken = Array.make n 0
  and not_taken = Array.make n 0
  and delta = Array.make n 0 in
  let floor = ref 0 in
  for j = 0 to n - 1 do
    let i = Array.unsafe_get s.b_order j in
    let t = Array.unsafe_get s.b_taken i
    and nt = Array.unsafe_get s.b_not_taken i in
    Array.unsafe_set keys j (Array.unsafe_get s.b_keys i);
    Array.unsafe_set taken j t;
    Array.unsafe_set not_taken j nt;
    Array.unsafe_set delta j (t - nt);
    floor := !floor + if t < nt then t else nt
  done;
  let gain_bound = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    let d = delta.(i) in
    gain_bound.(i) <- gain_bound.(i + 1) + (if d > 0 then d else 0)
  done;
  {
    n_keys = n;
    n_scored;
    keys;
    taken;
    not_taken;
    delta;
    gain_bound;
    t_total = s.b_t_total;
    nt_total = s.b_nt_total;
    floor = !floor;
  }

(* Single fused pass over the dense counters: key filtering, totals and
   compaction happen together (no intermediate list, no per-field map). *)
let tables_of_counts_into s ~taken ~not_taken =
  let n = Array.length taken in
  if n <> Array.length not_taken then invalid_arg "Algorithm1.tables_of_counts";
  if Array.length s.b_keys < n then
    invalid_arg "Algorithm1.tables_of_counts: scratch too small";
  builder_reset s;
  for k = 0 to n - 1 do
    let t = Array.unsafe_get taken k and nt = Array.unsafe_get not_taken k in
    if t > 0 || nt > 0 then builder_add s ~key:k ~taken:t ~not_taken:nt
  done;
  builder_finish s

let tables_of_counts ~taken ~not_taken =
  tables_of_counts_into (scratch ~max_keys:(Array.length taken) ()) ~taken
    ~not_taken

(* Hot-path extraction for the single-pass profile tabulation: cell
   [cells.(off + k)] packs key [k]'s taken count in bits
   [shift .. shift+15] and its not-taken count in [shift+16 .. shift+31].
   One fused pass compacts the occupied keys and accumulates the
   irreducible misprediction floor [sum_k min(t_k, nt_k)] — no formula
   can score below it, so when the floor already meets [cutoff] the
   whole extraction is skipped without affecting any result.

   Unlike [builder_finish], the returned tables are a zero-allocation
   view into the scratch, left in ascending-key insertion order: key
   order only sharpens the bounded scorer's pruning, never its results,
   and on the decide hot path skipping the sort and the five per-length
   array allocations outweighs the weaker per-candidate bound.  The view
   fills only what the packed scorers read — keys, delta, gain_bound and
   the totals; its taken/not_taken arrays are stale scratch contents, so
   views must not be fed to the naive [mispredictions].  The view is
   valid until the next build from the same scratch.  Requires a scratch
   with [max_keys] >= 256. *)
let tables_of_cells_below s ~cells ~off ~shift ~cutoff =
  let b_keys = s.b_keys and b_delta = s.b_delta in
  let occ = ref 0
  and n = ref 0
  and t_total = ref 0
  and nt_total = ref 0
  and floor = ref 0 in
  (* the floor only grows: once a 64-cell block pushes it past [cutoff]
     the length is dead and the rest of the scan can be skipped *)
  let k0 = ref 0 in
  while !k0 < 256 && !floor < cutoff do
    for k = !k0 to !k0 + 63 do
      let v = (Array.unsafe_get cells (off + k) lsr shift) land 0xFFFFFFFF in
      if v <> 0 then begin
        let t = v land 0xFFFF in
        let nt = v lsr 16 in
        let d = t - nt in
        incr occ;
        t_total := !t_total + t;
        nt_total := !nt_total + nt;
        (* zero-delta keys count toward the totals and the floor but are
           invisible to the delta identity, so they are not stored *)
        if d <> 0 then begin
          let i = !n in
          Array.unsafe_set b_keys i k;
          Array.unsafe_set b_delta i d;
          n := i + 1
        end;
        (* branchless min t nt = nt + (d < 0 ? d : 0); Stdlib.min would
           be a generic-compare call on this hottest of loops *)
        floor := !floor + nt + (d land (d asr 62))
      end
    done;
    k0 := !k0 + 64
  done;
  let n = !n in
  if !occ = 0 || !floor >= cutoff then None
  else begin
    let b_gain = s.b_gain in
    Array.unsafe_set b_gain n 0;
    for i = n - 1 downto 0 do
      let d = Array.unsafe_get b_delta i in
      Array.unsafe_set b_gain i
        (Array.unsafe_get b_gain (i + 1) + if d > 0 then d else 0)
    done;
    Some
      {
        n_keys = !occ;
        n_scored = n;
        keys = b_keys;
        taken = s.b_taken;
        not_taken = s.b_not_taken;
        delta = b_delta;
        gain_bound = b_gain;
        t_total = !t_total;
        nt_total = !nt_total;
        floor = !floor;
      }
  end

let tables_total t = (t.t_total, t.nt_total)
let distinct_keys t = t.n_keys

(* ------------------------------------------------------------------ *)
(* Scoring                                                            *)
(* ------------------------------------------------------------------ *)

(* Retained naive reference scorer: byte loads against a Bytes truth
   table, one branch per key.  Kept as the differential-testing oracle
   and the benchmark baseline. *)
let mispredictions t ~truth =
  let m = ref 0 in
  for i = 0 to t.n_keys - 1 do
    if Whisper_formula.Tree.eval_tt truth t.keys.(i) then
      (* formula predicts taken: not-taken samples mispredict *)
      m := !m + t.not_taken.(i)
    else m := !m + t.taken.(i)
  done;
  !m

(* Bit-parallel scorer.  A formula mispredicts
     m = sum_{truth(k)} nt_k + sum_{not truth(k)} t_k
       = t_total - sum_{truth(k)} (t_k - nt_k)
   so scoring is one branchless pass over the compact delta array with a
   bitset test per key instead of a byte load plus two count loads. *)
let mispredictions_packed t ~ptruth =
  let acc = ref 0 in
  let keys = t.keys and delta = t.delta in
  for i = 0 to t.n_scored - 1 do
    let k = Array.unsafe_get keys i in
    let bit = (Array.unsafe_get ptruth (k lsr 5) lsr (k land 31)) land 1 in
    acc := !acc + (Array.unsafe_get delta i land -bit)
  done;
  t.t_total - !acc

let always_mispredictions t = t.nt_total
let never_mispredictions t = t.t_total

let find t ~candidates ~truth_of =
  if Array.length candidates = 0 then invalid_arg "Algorithm1.find";
  let best_f = ref candidates.(0) in
  let best_m = ref max_int in
  Array.iter
    (fun f ->
      let m = mispredictions t ~truth:(truth_of f) in
      if m < !best_m then begin
        best_m := m;
        best_f := f
      end)
    candidates;
  (!best_f, !best_m)

(* Bounded scorer: returns the exact misprediction count when it is below
   [cutoff], or -1 as soon as the count provably cannot drop below it.
   Since keys are sorted by decreasing |delta|, the optimistic remainder
   [gain_bound] collapses fast and losing candidates abort after a few
   keys.  Exactness for winners is what keeps [find_packed] bit-identical
   to [find]: a pruned candidate satisfies m >= cutoff = best so far, and
   ties already resolve to the earlier candidate. *)
let score_below t ~ptruth ~cutoff =
  let keys = t.keys and delta = t.delta and bound = t.gain_bound in
  let n = t.n_scored in
  let t_total = t.t_total in
  (* geometric block growth: losing candidates die on the first big-delta
     keys, so check the bound after only 4 of them, then back off the
     check frequency for the (rare) candidates that keep surviving *)
  let rec scan i acc blk =
    if t_total - acc - Array.unsafe_get bound i >= cutoff then -1
    else if i = n then t_total - acc
    else begin
      let stop = if i + blk < n then i + blk else n in
      let a = ref acc in
      for j = i to stop - 1 do
        let k = Array.unsafe_get keys j in
        let bit = (Array.unsafe_get ptruth (k lsr 5) lsr (k land 31)) land 1 in
        a := !a + (Array.unsafe_get delta j land -bit)
      done;
      scan stop !a (if blk < 32 then blk + blk else blk)
    end
  in
  scan 0 0 4

(* Search telemetry: tallied in locals during the scan and flushed once
   per call, so the per-candidate loop pays nothing beyond the counting
   increments it already needs for the result. *)
let m_searches = Whisper_util.Telemetry.counter "algorithm1.searches"
let m_scored = Whisper_util.Telemetry.counter "algorithm1.candidates_scored"
let m_pruned = Whisper_util.Telemetry.counter "algorithm1.suffix_pruned"
let m_floor_exits = Whisper_util.Telemetry.counter "algorithm1.floor_exits"

let find_packed_below t ~candidates ~packed ~cutoff =
  let nc = Array.length candidates in
  if nc = 0 then invalid_arg "Algorithm1.find_packed";
  if Array.length packed < nc then
    invalid_arg "Algorithm1.find_packed: packed tables shorter than candidates";
  let telemetry = Whisper_util.Telemetry.enabled () in
  if t.floor >= cutoff then begin
    if telemetry then begin
      Whisper_util.Telemetry.incr m_searches;
      Whisper_util.Telemetry.incr m_floor_exits
    end;
    None
  end
  else begin
    let best_i = ref (-1) and best_m = ref cutoff in
    let scored = ref 0 and pruned = ref 0 and floor_exit = ref false in
    let ci = ref 0 in
    while !ci < nc do
      let m =
        score_below t ~ptruth:(Array.unsafe_get packed !ci) ~cutoff:!best_m
      in
      incr scored;
      if m < 0 then incr pruned
      else if m < !best_m then begin
        best_m := m;
        best_i := !ci;
        (* the floor is a hard lower bound on every candidate, so the
           first candidate to reach it is the final answer — skip the
           rest of the scan (ties already resolve to the earlier one) *)
        if m <= t.floor then begin
          floor_exit := true;
          ci := nc
        end
      end;
      incr ci
    done;
    if telemetry then begin
      Whisper_util.Telemetry.incr m_searches;
      Whisper_util.Telemetry.add m_scored !scored;
      Whisper_util.Telemetry.add m_pruned !pruned;
      if !floor_exit then Whisper_util.Telemetry.incr m_floor_exits
    end;
    if !best_i < 0 then None
    else Some (!best_i, candidates.(!best_i), !best_m)
  end

let find_packed t ~candidates ~packed =
  match find_packed_below t ~candidates ~packed ~cutoff:max_int with
  | Some r -> r
  | None ->
      (* cutoff = max_int admits any finite count, and scores are finite *)
      assert false
