(** The BranchNet baseline end-to-end: storage-budgeted training over a
    profile plus the hybrid run-time (paper §II-D, Figs. 4, 12–13, 16).

    BranchNet deploys one model per covered static branch; on-chip
    metadata budget divided by per-model size bounds coverage, so the
    variants differ only in how many of the worst-mispredicting branches
    get a model:

    - [`Budget 8192] / [`Budget 32768] — the paper's practical 8 KB and
      32 KB configurations;
    - [`Unlimited] — the paper's impractical limit variant (coverage is
      still bounded by candidate count and the per-branch training cost
      that Fig. 16 highlights). *)

type budget = Budget of int | Unlimited

type t = {
  models : (int, Model.t) Hashtbl.t;  (** per branch PC *)
  budget : budget;
  training_seconds : float;
}

val train :
  ?budget:budget ->
  ?epochs:int ->
  ?max_models:int ->
  ?min_eval_gain:int ->
  Whisper_trace.Profile.t ->
  t
(** Train models for the top mispredicting candidates until the budget
    (or [max_models], default 256 for [`Unlimited]) is exhausted; a model
    is kept only when it beats the profiled baseline on held-out samples.
    Defaults: [budget = Unlimited], [epochs] 12. *)

val model_count : t -> int
val storage_bytes : t -> int

module Runtime : sig
  type rt

  val create : t -> baseline:Whisper_bpu.Predictor.t -> rt
  val exec : rt -> Whisper_trace.Branch.event -> bool

  val exec_at : rt -> pc:int -> taken:bool -> bool
  (** [exec] on unboxed event fields — the arena replay path, which
      never materializes a [Branch.event] record. *)

  val covered_predictions : rt -> int
end
