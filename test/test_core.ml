(* Tests for whisper_core: config, brhint encoding, Algorithm 1,
   randomized formula testing, history selection, hint buffer, injection,
   the run-time hybrid and the misprediction classifier. *)

open Whisper_trace
open Whisper_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Config                                                             *)
(* ------------------------------------------------------------------ *)

let test_config_table3 () =
  let c = Config.default in
  check_int "a" 8 c.min_len;
  check_int "N" 1024 c.max_len;
  check_int "m" 16 c.n_lengths;
  check_int "hash bits" 8 c.hash_bits;
  check_int "hint buffer" 32 c.hint_buffer_size;
  Alcotest.(check (float 1e-9)) "explore" 0.001 c.explore_frac

let test_config_lengths () =
  let ls = Config.lengths Config.default in
  check_int "16 terms" 16 (Array.length ls);
  check_int "starts at 8" 8 ls.(0);
  check_int "ends at 1024" 1024 ls.(15)

let test_config_explore_count () =
  check_int "0.1% of 32768, floored at 32" 33
    (Config.explore_count Config.default);
  check_int "full space"
    32768
    (Config.explore_count { Config.default with explore_frac = 1.0 })

(* ------------------------------------------------------------------ *)
(* Brhint                                                             *)
(* ------------------------------------------------------------------ *)

let test_brhint_roundtrip_exhaustive_fields () =
  List.iter
    (fun bias ->
      let h =
        Brhint.make ~len_idx:13 ~formula_id:0x5A5A ~bias ~pc_offset:0xABC
      in
      Alcotest.(check bool) "roundtrip" true (Brhint.decode (Brhint.encode h) = h))
    [ Brhint.Formula; Brhint.Always_taken; Brhint.Never_taken; Brhint.Dynamic ]

let qcheck_brhint_roundtrip =
  QCheck.Test.make ~name:"brhint encode/decode roundtrip" ~count:500
    QCheck.(
      quad (int_bound 15) (int_bound 32767) (int_bound 3) (int_bound 4095))
    (fun (len_idx, formula_id, bias_c, pc_offset) ->
      let h =
        Brhint.make ~len_idx ~formula_id
          ~bias:(Brhint.bias_of_code bias_c)
          ~pc_offset
      in
      Brhint.decode (Brhint.encode h) = h)

let test_brhint_bits () =
  check_int "33 bits (4+15+2+12)" 33 Brhint.encoded_bits;
  let h =
    Brhint.make ~len_idx:15 ~formula_id:0x7FFF ~bias:Brhint.Dynamic
      ~pc_offset:0xFFF
  in
  check_bool "fits" true (Brhint.encode h < 1 lsl 33)

let test_brhint_invalid () =
  Alcotest.check_raises "len" (Invalid_argument "Brhint.make: len_idx")
    (fun () ->
      ignore
        (Brhint.make ~len_idx:16 ~formula_id:0 ~bias:Brhint.Formula ~pc_offset:0));
  Alcotest.check_raises "formula" (Invalid_argument "Brhint.make: formula_id")
    (fun () ->
      ignore
        (Brhint.make ~len_idx:0 ~formula_id:32768 ~bias:Brhint.Formula
           ~pc_offset:0))

let test_brhint_branch_pc () =
  let h = Brhint.make ~len_idx:0 ~formula_id:0 ~bias:Brhint.Formula ~pc_offset:10 in
  check_int "pc pointer" (0x1000 + 40) (Brhint.branch_pc h ~hint_addr:0x1000)

(* ------------------------------------------------------------------ *)
(* Algorithm 1                                                        *)
(* ------------------------------------------------------------------ *)

let mk_tables assocs =
  let taken = Array.make 256 0 and not_taken = Array.make 256 0 in
  List.iter
    (fun (k, t, nt) ->
      taken.(k) <- t;
      not_taken.(k) <- nt)
    assocs;
  Algorithm1.tables_of_counts ~taken ~not_taken

let test_algorithm1_counts () =
  let t = mk_tables [ (3, 5, 1); (200, 0, 7) ] in
  check_int "distinct" 2 (Algorithm1.distinct_keys t);
  let tk, ntk = Algorithm1.tables_total t in
  check_int "taken total" 5 tk;
  check_int "not-taken total" 8 ntk;
  check_int "always mispredicts NT samples" 8 (Algorithm1.always_mispredictions t);
  check_int "never mispredicts T samples" 5 (Algorithm1.never_mispredictions t)

let test_algorithm1_scoring () =
  (* key 0xFF is taken 10 times; key 0x00 not-taken 10 times.  The all-And
     conjunction separates them perfectly. *)
  let t = mk_tables [ (0xFF, 10, 0); (0x00, 0, 10) ] in
  let conj = Whisper_formula.Tree.all_ops Whisper_formula.Op.And ~leaves:8 in
  check_int "perfect formula" 0
    (Algorithm1.mispredictions t ~truth:(Whisper_formula.Tree.truth_table conj));
  (* the all-Or disjunction predicts taken for 0xFF (ok) and for any
     nonzero key; 0x00 evaluates false -> also correct here *)
  let disj = Whisper_formula.Tree.all_ops Whisper_formula.Op.Or ~leaves:8 in
  check_int "disjunction also works" 0
    (Algorithm1.mispredictions t ~truth:(Whisper_formula.Tree.truth_table disj))

let test_algorithm1_find_minimum () =
  (* taken iff bit0 & bit1 with bits 2..7 at zero.  Build a read-once tree
     that computes b0 && b1 on those keys:
       Or( And( And(b0,b1), Imp(b2,b3) ), And( And(b4,b5), And(b6,b7) ) )
     (Imp(0,0) is true, the right conjunct is false). *)
  let t = mk_tables [ (0b11, 20, 0); (0b01, 0, 20); (0b10, 0, 20); (0, 0, 20) ] in
  let conj =
    Whisper_formula.(
      Tree.make
        ~ops:[| Op.Or; Op.And; Op.And; Op.And; Op.Imp; Op.And; Op.And |]
        ~inverted:false)
  in
  let disj = Whisper_formula.Tree.all_ops Whisper_formula.Op.Or ~leaves:8 in
  let candidates =
    [| Whisper_formula.Tree.to_id disj; Whisper_formula.Tree.to_id conj |]
  in
  let truth_of id =
    Whisper_formula.Tree.truth_table (Whisper_formula.Tree.of_id ~leaves:8 id)
  in
  let f, m = Algorithm1.find t ~candidates ~truth_of in
  check_int "conjunction wins" (Whisper_formula.Tree.to_id conj) f;
  check_int "zero mispredictions" 0 m

let test_algorithm1_empty_candidates () =
  let t = mk_tables [ (1, 1, 0) ] in
  Alcotest.check_raises "empty" (Invalid_argument "Algorithm1.find") (fun () ->
      ignore (Algorithm1.find t ~candidates:[||] ~truth_of:(fun _ -> Bytes.create 256)))

(* brute-force reference implementation of Algorithm 1 *)
let qcheck_algorithm1_matches_bruteforce =
  QCheck.Test.make ~name:"Algorithm1.find matches brute force" ~count:50
    QCheck.(
      pair (list_of_size (Gen.int_range 1 20) (triple (int_bound 255) (int_bound 9) (int_bound 9)))
        (int_bound 1000))
    (fun (assocs, seed) ->
      let taken = Array.make 256 0 and not_taken = Array.make 256 0 in
      List.iter
        (fun (k, t, nt) ->
          taken.(k) <- taken.(k) + t;
          not_taken.(k) <- not_taken.(k) + nt)
        assocs;
      let tables = Algorithm1.tables_of_counts ~taken ~not_taken in
      let rng = Whisper_util.Rng.create seed in
      let candidates =
        Array.init 8 (fun _ -> Whisper_util.Rng.int rng 32768)
      in
      let truth_of id =
        Whisper_formula.Tree.truth_table (Whisper_formula.Tree.of_id ~leaves:8 id)
      in
      let _, m = Algorithm1.find tables ~candidates ~truth_of in
      let brute =
        Array.fold_left
          (fun acc id ->
            let truth = truth_of id in
            let s = ref 0 in
            for k = 0 to 255 do
              if Whisper_formula.Tree.eval_tt truth k then s := !s + not_taken.(k)
              else s := !s + taken.(k)
            done;
            min acc !s)
          max_int candidates
      in
      m = brute)

(* ------------------------------------------------------------------ *)
(* Randomized                                                         *)
(* ------------------------------------------------------------------ *)

let test_randomized_candidate_count () =
  let r = Randomized.create Config.default in
  check_int "0.1% of the space" 33 (Array.length (Randomized.candidates r));
  check_int "space" 32768 (Randomized.space r)

let test_randomized_permutation_property () =
  let r =
    Randomized.create { Config.default with explore_frac = 1.0 }
  in
  let c = Randomized.candidates r in
  check_int "full space" 32768 (Array.length c);
  let seen = Array.make 32768 false in
  Array.iter (fun id -> seen.(id) <- true) c;
  check_bool "is a permutation" true (Array.for_all Fun.id seen)

let test_randomized_deterministic () =
  let a = Randomized.create Config.default in
  let b = Randomized.create Config.default in
  Alcotest.(check (array int))
    "same seed, same order" (Randomized.candidates a) (Randomized.candidates b);
  let c = Randomized.create { Config.default with seed = 1 } in
  check_bool "different seed differs" true
    (Randomized.candidates a <> Randomized.candidates c)

let test_randomized_prefix_nesting () =
  let r = Randomized.create Config.default in
  let small = Randomized.candidates_n r 10 in
  let large = Randomized.candidates_n r 100 in
  Alcotest.(check (array int)) "prefix property" small (Array.sub large 0 10)

let test_randomized_classic_family () =
  let r = Randomized.create { Config.default with ops = `Classic } in
  check_int "classic space" 128 (Randomized.space r);
  Array.iter
    (fun id ->
      check_bool "decodes to classic tree" true
        (Whisper_formula.Tree.is_classic (Randomized.tree_of r id)))
    (Randomized.candidates r)

let test_randomized_truth_cache () =
  let r = Randomized.create Config.default in
  let id = (Randomized.candidates r).(0) in
  let a = Randomized.truth_of r id and b = Randomized.truth_of r id in
  check_bool "cached table is shared" true (a == b)

let test_randomized_shared_slices () =
  (* the candidate prefix and its packed truth tables are frozen at
     create: every call hands back the same physical arrays, so the
     domain-parallel search shares them instead of copying per worker *)
  let r = Randomized.create Config.default in
  check_bool "candidates array is shared" true
    (Randomized.candidates r == Randomized.candidates r);
  check_bool "packed tables are shared" true
    (Randomized.packed_candidates r == Randomized.packed_candidates r);
  let n = Array.length (Randomized.candidates r) in
  check_bool "full-length prefix is the shared slice" true
    (Randomized.candidates_n r n == Randomized.candidates r)

(* ------------------------------------------------------------------ *)
(* History_select                                                     *)
(* ------------------------------------------------------------------ *)

(* Build a synthetic profile where one branch follows a known formula of
   the hash at a known length index. *)
let synthetic_profile ~n ~gen =
  let p = Profile.create_empty ~lengths:Workloads.lengths () in
  for i = 0 to n - 1 do
    let raw8, hashes, taken, correct = gen i in
    Profile.record_event p ~pc:0x4000 ~taken ~correct ~instrs:8;
    Profile.add_sample p ~pc:0x4000 ~raw8 ~hashes ~taken ~correct
  done;
  p

let test_decide_finds_planted_formula () =
  let rng = Whisper_util.Rng.create 7 in
  let planted = Whisper_formula.Tree.all_ops Whisper_formula.Op.And ~leaves:8 in
  let tt = Whisper_formula.Tree.truth_table planted in
  let len_idx = 5 in
  let p =
    synthetic_profile ~n:400 ~gen:(fun _ ->
        let hashes =
          Array.init 16 (fun _ -> Whisper_util.Rng.int rng 256)
        in
        let taken = Whisper_formula.Tree.eval_tt tt hashes.(len_idx) in
        (* baseline is right only half the time *)
        (hashes.(0) land 0xFF, hashes, taken, Whisper_util.Rng.bool rng))
  in
  (* ensure the planted conjunction is among the tested formulas *)
  let config = { Config.default with explore_frac = 1.0 } in
  let rnd = Randomized.create config in
  match History_select.decide config rnd p ~pc:0x4000 with
  | None -> Alcotest.fail "expected a hint"
  | Some choice ->
      check_bool "formula hint" true (choice.bias = Brhint.Formula);
      check_int "planted length" len_idx choice.len_idx;
      check_int "no mispredictions" 0 choice.sample_mispred

let test_decide_prefers_bias_for_constant () =
  let rng = Whisper_util.Rng.create 8 in
  let p =
    synthetic_profile ~n:200 ~gen:(fun _ ->
        let hashes = Array.init 16 (fun _ -> Whisper_util.Rng.int rng 256) in
        (0, hashes, true, Whisper_util.Rng.bool rng))
  in
  let rnd = Randomized.create Config.default in
  match History_select.decide Config.default rnd p ~pc:0x4000 with
  | None -> Alcotest.fail "expected a hint"
  | Some choice ->
      check_bool "always-taken bias" true (choice.bias = Brhint.Always_taken);
      check_int "perfect" 0 choice.sample_mispred

let test_decide_rejects_random_branch () =
  let rng = Whisper_util.Rng.create 9 in
  let p =
    synthetic_profile ~n:400 ~gen:(fun _ ->
        let hashes = Array.init 16 (fun _ -> Whisper_util.Rng.int rng 256) in
        (* outcome is a fair coin; baseline is right 60% of the time *)
        ( Whisper_util.Rng.int rng 256,
          hashes,
          Whisper_util.Rng.bool rng,
          Whisper_util.Rng.bernoulli rng 0.6 ))
  in
  let rnd = Randomized.create Config.default in
  check_bool "no hint for noise" true
    (History_select.decide Config.default rnd p ~pc:0x4000 = None)

let test_decide_no_samples () =
  let p = Profile.create_empty ~lengths:Workloads.lengths () in
  let rnd = Randomized.create Config.default in
  check_bool "no samples, no hint" true
    (History_select.decide Config.default rnd p ~pc:0x9999 = None)

(* ------------------------------------------------------------------ *)
(* Hint buffer                                                        *)
(* ------------------------------------------------------------------ *)

let some_hint =
  Brhint.make ~len_idx:1 ~formula_id:42 ~bias:Brhint.Formula ~pc_offset:9

let test_hint_buffer_basics () =
  let b = Hint_buffer.create ~size:2 in
  check_int "size" 2 (Hint_buffer.size b);
  Hint_buffer.insert b ~branch_pc:100 7;
  check_int "hit payload" 7 (Hint_buffer.probe b ~branch_pc:100);
  check_int "miss sentinel" Hint_buffer.miss (Hint_buffer.probe b ~branch_pc:200);
  check_bool "miss is negative" true (Hint_buffer.miss < 0);
  check_int "hits" 1 (Hint_buffer.hits b);
  check_int "misses" 1 (Hint_buffer.misses b);
  check_int "insertions" 1 (Hint_buffer.insertions b);
  Alcotest.check_raises "negative payload rejected"
    (Invalid_argument "Intlru.insert: negative payload") (fun () ->
      Hint_buffer.insert b ~branch_pc:5 (-3))

let test_hint_buffer_hint_roundtrip () =
  let b = Hint_buffer.create ~size:4 in
  Hint_buffer.insert_hint b ~branch_pc:0x4010 some_hint;
  (match Hint_buffer.probe_hint b ~branch_pc:0x4010 with
  | Some h -> check_bool "decoded hint" true (h = some_hint)
  | None -> Alcotest.fail "expected a hit");
  check_bool "decode miss" true (Hint_buffer.probe_hint b ~branch_pc:1 = None)

let test_hint_buffer_eviction () =
  let b = Hint_buffer.create ~size:2 in
  Hint_buffer.insert b ~branch_pc:1 10;
  Hint_buffer.insert b ~branch_pc:2 20;
  Hint_buffer.insert b ~branch_pc:3 30;
  check_int "oldest evicted" Hint_buffer.miss (Hint_buffer.probe b ~branch_pc:1);
  check_int "newest present" 30 (Hint_buffer.probe b ~branch_pc:3);
  check_int "len" 2 (Hint_buffer.length b)

(* Eviction-order pinning: the buffer is ordered by hint execution.
   Re-inserting (re-executing the brhint) refreshes an entry's position
   and updates its payload... *)
let test_hint_buffer_reinsert_refreshes () =
  let b = Hint_buffer.create ~size:2 in
  Hint_buffer.insert b ~branch_pc:1 10;
  Hint_buffer.insert b ~branch_pc:2 20;
  Hint_buffer.insert b ~branch_pc:1 11;
  (* execution order is now [2; 1], so adding a third key evicts 2 *)
  Hint_buffer.insert b ~branch_pc:3 30;
  check_int "refreshed entry survives" 11 (Hint_buffer.probe b ~branch_pc:1);
  check_int "stale entry evicted" Hint_buffer.miss
    (Hint_buffer.probe b ~branch_pc:2)

(* ...while probing (predicting the covered branch) never does. *)
let test_hint_buffer_probe_does_not_refresh () =
  let b = Hint_buffer.create ~size:2 in
  Hint_buffer.insert b ~branch_pc:1 10;
  Hint_buffer.insert b ~branch_pc:2 20;
  check_int "probe sees 1" 10 (Hint_buffer.probe b ~branch_pc:1);
  Hint_buffer.insert b ~branch_pc:3 30;
  check_int "probe is not a use" Hint_buffer.miss
    (Hint_buffer.probe b ~branch_pc:1);
  check_int "unprobed newer entry survives" 20
    (Hint_buffer.probe b ~branch_pc:2)

(* ------------------------------------------------------------------ *)
(* Inject + Runtime, end to end on a tiny app                         *)
(* ------------------------------------------------------------------ *)

let tiny_app () : Workloads.config =
  {
    name = "tiny-core";
    seed = 77;
    family = Workloads.Datacenter;
    functions = 24;
    blocks_per_fn = (3, 6);
    instrs_per_block = (4, 8);
    session_types = 8;
    session_len = (2, 4);
    repeats = (1, 3);
    func_zipf = 0.6;
    session_zipf = 0.7;
    mix =
      {
        always = 0.4;
        never = 0.3;
        bias = 0.0;
        loop = 0.0;
        short_f = 0.0;
        ctx = 0.0;
        hashed = 0.3;
        parity = 0.0;
        random = 0.0;
      };
    noise = 0.0;
    hashed_len_weights = Array.make 16 1.0;
    bias_range = (0.97, 0.99);
    random_range = (0.4, 0.6);
    loop_range = (2, 8);
    parity_len = (8, 16);
  }

let profile_of app ~events =
  let cfg = Workloads.build_cfg app in
  let prof =
    Profile.collect ~min_mispred:2 ~lengths:Workloads.lengths ~events
      ~make_source:(fun () ->
        App_model.source (App_model.create ~cfg ~config:app ~input:0 ()))
      ~make_predictor:(fun () ->
        let p = Whisper_bpu.Bimodal.make ~log_entries:10 in
        fun ~pc ~taken ->
          let pred = p.Whisper_bpu.Predictor.predict ~pc in
          p.train ~pc ~taken;
          pred = taken)
      ()
  in
  (cfg, prof)

(* ------------------------------------------------------------------ *)
(* Optimized pipeline vs seed reference                               *)
(* ------------------------------------------------------------------ *)

let test_decide_matches_reference () =
  (* the packed single-pass decide must agree with the retained seed
     implementation on every candidate branch of a real profile *)
  let app = tiny_app () in
  let _, prof = profile_of app ~events:40_000 in
  let config = Config.default in
  let rnd = Randomized.create config in
  let scratch = History_select.scratch config in
  let pcs = Profile.candidates prof in
  check_bool "profile has candidate branches" true (Array.length pcs > 0);
  Array.iter
    (fun pc ->
      let opt = History_select.decide ~scratch config rnd prof ~pc in
      let ref_ = History_select.Reference.decide config rnd prof ~pc in
      check_bool (Printf.sprintf "choice at pc 0x%x" pc) true (opt = ref_))
    pcs

let test_parallel_analysis_deterministic () =
  (* fanning the per-branch searches over the chunk-claiming scheduler
     must not change a single decision — serialized plans are
     byte-identical for any -j, and for an explicitly supplied pool *)
  let app = tiny_app () in
  let cfg, prof = profile_of app ~events:40_000 in
  let a1 = Analyze.run ~jobs:1 prof in
  let plan_bytes (a : Analyze.t) =
    let plan =
      Inject.plan Config.default cfg
        ~source:
          (App_model.source (App_model.create ~cfg ~config:app ~input:0 ()))
        ~hints:(Analyze.to_inject_hints a cfg)
    in
    Plan_io.to_bytes plan
  in
  let bytes1 = plan_bytes a1 in
  List.iter
    (fun jobs ->
      let aj = Analyze.run ~jobs prof in
      check_bool (Printf.sprintf "identical decisions for j1 and j%d" jobs)
        true
        (a1.Analyze.decisions = aj.Analyze.decisions);
      check_bool
        (Printf.sprintf "byte-identical serialized plan at j%d" jobs)
        true
        (Bytes.equal bytes1 (plan_bytes aj)))
    [ 2; 4 ];
  let pool = Whisper_util.Pool.create ~jobs:3 () in
  let ap = Analyze.run ~pool prof in
  check_bool "identical decisions on an explicit pool" true
    (a1.Analyze.decisions = ap.Analyze.decisions);
  Whisper_util.Pool.shutdown pool

let test_analysis_pool_reuse () =
  (* the point of the persistent scheduler: consecutive analyses reuse
     one pool (and each domain's scratch) without any cross-call state
     leaking into the decisions, and the pool stays serviceable *)
  let app = tiny_app () in
  let _, prof = profile_of app ~events:40_000 in
  let a1 = Analyze.run ~jobs:1 prof in
  let pool = Whisper_util.Pool.create ~jobs:2 () in
  for i = 1 to 3 do
    let a = Analyze.run ~jobs:3 ~pool prof in
    check_bool (Printf.sprintf "reused-pool run %d matches sequential" i)
      true
      (a1.Analyze.decisions = a.Analyze.decisions)
  done;
  let fut = Whisper_util.Pool.submit pool (fun () -> 9) in
  check_bool "pool still serviceable after analyses" true
    (Whisper_util.Pool.await fut = Ok 9);
  Whisper_util.Pool.shutdown pool

let test_scratch_reuse_sound () =
  (* domain-local scratch reuse is only sound because decide restores
     the all-zero counter invariant on every exit: a poisoned scratch,
     once reset, must be indistinguishable from a fresh allocation *)
  let app = tiny_app () in
  let _, prof = profile_of app ~events:40_000 in
  let config = Config.default in
  let rnd = Randomized.create config in
  let pcs = Profile.candidates prof in
  check_bool "profile has candidate branches" true (Array.length pcs > 0);
  let dirty = History_select.scratch config in
  History_select.poison_scratch dirty;
  check_bool "poison really dirties the counters" false
    (History_select.scratch_clean dirty);
  History_select.reset_scratch dirty;
  check_bool "reset restores the clean invariant" true
    (History_select.scratch_clean dirty);
  Array.iter
    (fun pc ->
      let fresh = History_select.scratch config in
      let a = History_select.decide ~scratch:dirty config rnd prof ~pc in
      let b = History_select.decide ~scratch:fresh config rnd prof ~pc in
      check_bool (Printf.sprintf "same choice at pc 0x%x" pc) true (a = b);
      check_bool "decide leaves the scratch clean" true
        (History_select.scratch_clean dirty))
    pcs

let test_inject_plan_validity () =
  let app = tiny_app () in
  let cfg, prof = profile_of app ~events:40_000 in
  let analysis = Analyze.run prof in
  check_bool "some hints" true (Analyze.hint_count analysis > 0);
  let plan =
    Inject.plan Config.default cfg
      ~source:(App_model.source (App_model.create ~cfg ~config:app ~input:0 ()))
      ~hints:(Analyze.to_inject_hints analysis cfg)
  in
  check_int "nothing dropped" 0 plan.Inject.dropped;
  List.iter
    (fun (p : Inject.placement) ->
      let host = cfg.Cfg.blocks.(p.host_block) in
      let branch = cfg.Cfg.blocks.(p.branch_block) in
      check_int "same function" host.Cfg.func branch.Cfg.func;
      check_bool "host not after branch" true (p.host_block <= p.branch_block);
      check_int "pc pointer resolves" branch.Cfg.branch_pc p.branch_pc;
      check_bool "probable" true (p.cond_prob >= 0.0 && p.cond_prob <= 1.0))
    plan.Inject.placements;
  (* hints_at covers every placement *)
  let total =
    Hashtbl.fold
      (fun _ l acc -> acc + List.length l)
      plan.Inject.by_host 0
  in
  check_int "by_host total" (List.length plan.Inject.placements) total

let test_runtime_improves_on_baseline () =
  let app = tiny_app () in
  let cfg, prof = profile_of app ~events:40_000 in
  let analysis = Analyze.run prof in
  let plan =
    Inject.plan Config.default cfg
      ~source:(App_model.source (App_model.create ~cfg ~config:app ~input:0 ()))
      ~hints:(Analyze.to_inject_hints analysis cfg)
  in
  let events = 40_000 in
  let run_baseline () =
    let p = Whisper_bpu.Bimodal.make ~log_entries:10 in
    let src = App_model.source (App_model.create ~cfg ~config:app ~input:0 ()) in
    let mis = ref 0 in
    for _ = 1 to events do
      let e = src () in
      let pred = p.Whisper_bpu.Predictor.predict ~pc:e.Branch.pc in
      p.train ~pc:e.Branch.pc ~taken:e.Branch.taken;
      if pred <> e.Branch.taken then incr mis
    done;
    !mis
  in
  let run_whisper () =
    let rt =
      Runtime.create Config.default
        ~baseline:(Whisper_bpu.Bimodal.make ~log_entries:10)
        ~plan
    in
    let src = App_model.source (App_model.create ~cfg ~config:app ~input:0 ()) in
    let mis = ref 0 in
    for _ = 1 to events do
      if not (Runtime.exec rt (src ())) then incr mis
    done;
    (!mis, Runtime.hinted_predictions rt)
  in
  let base_mis = run_baseline () in
  let w_mis, hinted = run_whisper () in
  check_bool "hints actually used" true (hinted > 0);
  check_bool "whisper beats weak baseline" true (w_mis < base_mis)

let test_runtime_hint_accuracy_on_deterministic () =
  (* with only deterministic behaviours and noise 0, hinted branches with
     formula hints should be nearly perfect *)
  let app = tiny_app () in
  let cfg, prof = profile_of app ~events:40_000 in
  let analysis = Analyze.run prof in
  let plan =
    Inject.plan Config.default cfg
      ~source:(App_model.source (App_model.create ~cfg ~config:app ~input:0 ()))
      ~hints:(Analyze.to_inject_hints analysis cfg)
  in
  let rt =
    Runtime.create Config.default
      ~baseline:(Whisper_bpu.Bimodal.make ~log_entries:10)
      ~plan
  in
  let src = App_model.source (App_model.create ~cfg ~config:app ~input:0 ()) in
  for _ = 1 to 40_000 do
    ignore (Runtime.exec rt (src ()))
  done;
  let hinted = Runtime.hinted_predictions rt in
  let wrong = Runtime.hinted_mispredictions rt in
  check_bool "hinted a lot" true (hinted > 1000);
  (* 0.1% exploration finds approximate formulas, not the exact planted
     ones; accuracy must still be far better than a coin flip *)
  check_bool "hint error under 30%" true
    (float_of_int wrong /. float_of_int hinted < 0.30)

(* ------------------------------------------------------------------ *)
(* Compiled runtime vs interpretive oracle                             *)
(* ------------------------------------------------------------------ *)

let whisper_plan_for ~config app ~profile_events =
  let cfg, prof = profile_of app ~events:profile_events in
  let analysis = Analyze.run ~config prof in
  let plan =
    Inject.plan config cfg
      ~source:(App_model.source (App_model.create ~cfg ~config:app ~input:0 ()))
      ~hints:(Analyze.to_inject_hints analysis cfg)
  in
  (cfg, plan)

(* The compiled runtime must agree with the retained interpretive oracle
   event-for-event (verdicts) and counter-for-counter (hinted / wrong /
   baseline / buffer statistics) — the compilation is a representation
   change, not a policy change.  Returns the hinted count so callers can
   assert the comparison actually exercised the hint path. *)
let check_compiled_matches_reference ?(events = 25_000) ~config app =
  let cfg, plan = whisper_plan_for ~config app ~profile_events:20_000 in
  let arena = Arena.build ~events (App_model.create ~cfg ~config:app ~input:1 ()) in
  let rt =
    Runtime.create config
      ~baseline:(Whisper_bpu.Bimodal.make ~log_entries:10)
      ~plan
  in
  let rf =
    Runtime.Reference.create config
      ~baseline:(Whisper_bpu.Bimodal.make ~log_entries:10)
      ~plan
  in
  for i = 0 to events - 1 do
    let c = Runtime.exec_arena rt ~arena i in
    let r = Runtime.Reference.exec rf (Arena.event arena i) in
    if c <> r then
      Alcotest.failf "%s: compiled diverges from oracle at event %d"
        app.Workloads.name i
  done;
  let name = app.Workloads.name in
  check_int (name ^ " hinted")
    (Runtime.Reference.hinted_predictions rf)
    (Runtime.hinted_predictions rt);
  check_int (name ^ " hinted wrong")
    (Runtime.Reference.hinted_mispredictions rf)
    (Runtime.hinted_mispredictions rt);
  check_int (name ^ " baseline")
    (Runtime.Reference.baseline_predictions rf)
    (Runtime.baseline_predictions rt);
  check_bool (name ^ " buffer stats") true
    (Runtime.buffer_stats rt = Runtime.Reference.buffer_stats rf);
  check_int (name ^ " events covered") events
    (Runtime.hinted_predictions rt + Runtime.baseline_predictions rt);
  Runtime.hinted_predictions rt

let test_compiled_matches_reference_catalog () =
  let hinted =
    Array.fold_left
      (fun acc app ->
        acc + check_compiled_matches_reference ~config:Config.default app)
      0 Workloads.datacenter
  in
  check_bool "catalog comparison exercised the hint path" true (hinted > 0)

let test_compiled_matches_reference_variants () =
  (* seeds and config corners: tiny buffers stress eviction-order
     agreement, `Classic restricts the formula family, and a reseeded
     app reshuffles the CFG and every planted behaviour *)
  let cases =
    [
      (tiny_app (), Config.default);
      (tiny_app (), { Config.default with hint_buffer_size = 2 });
      (tiny_app (), { Config.default with hint_buffer_size = 1 });
      ({ (tiny_app ()) with seed = 1234 }, Config.default);
      ({ (tiny_app ()) with seed = 90210 },
       { Config.default with ops = `Classic; hint_buffer_size = 8 });
    ]
  in
  let hinted =
    List.fold_left
      (fun acc (app, config) ->
        acc + check_compiled_matches_reference ~events:20_000 ~config app)
      0 cases
  in
  check_bool "variant comparison exercised the hint path" true (hinted > 0)

(* ------------------------------------------------------------------ *)
(* Analyze distributions                                              *)
(* ------------------------------------------------------------------ *)

let test_analyze_distributions () =
  let app = tiny_app () in
  let _, prof = profile_of app ~events:40_000 in
  let analysis = Analyze.run prof in
  let ops = Analyze.op_distribution analysis prof in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 ops in
  check_bool "op distribution sums to 1" true (abs_float (total -. 1.0) < 1e-6);
  let lens = Analyze.length_distribution analysis prof in
  let lsum = Array.fold_left ( +. ) 0.0 lens in
  check_bool "length distribution sums to <= 1" true (lsum <= 1.0 +. 1e-6)

let test_analyze_training_time_positive () =
  let app = tiny_app () in
  let _, prof = profile_of app ~events:20_000 in
  let analysis = Analyze.run prof in
  check_bool "time measured" true (analysis.Analyze.training_seconds >= 0.0)

(* ------------------------------------------------------------------ *)
(* Classify                                                           *)
(* ------------------------------------------------------------------ *)

let test_classify_compulsory () =
  let c = Classify.create ~capacity_entries:64 () in
  (match Classify.note c ~pc:0x4000 ~taken:true ~mispredicted:true with
  | Some Classify.Compulsory -> ()
  | _ -> Alcotest.fail "first access must be compulsory");
  check_int "counted" 1 (Classify.counts c).Classify.compulsory

let test_classify_correct_predictions_unclassified () =
  let c = Classify.create ~capacity_entries:64 () in
  check_bool "no class when correct" true
    (Classify.note c ~pc:0x4000 ~taken:true ~mispredicted:false = None)

let test_classify_conditional () =
  let c = Classify.create ~capacity_entries:64 ~history_len:4 () in
  (* stabilize the history window at all-taken first, then a substream
     that stays resident yet keeps mispredicting is conditional-on-data *)
  for _ = 1 to 6 do
    ignore (Classify.note c ~pc:0x4000 ~taken:true ~mispredicted:false)
  done;
  ignore (Classify.note c ~pc:0x4000 ~taken:true ~mispredicted:true);
  (match Classify.note c ~pc:0x4000 ~taken:true ~mispredicted:true with
  | Some Classify.Conditional_on_data -> ()
  | Some _ | None -> Alcotest.fail "resident substream must be conditional")

let test_classify_capacity () =
  let c = Classify.create ~capacity_entries:8 ~assoc:2 ~history_len:4 () in
  (* stabilize history (all-taken window), register the first substream,
     flood the structure with 40 distinct ones, then revisit the first:
     it has been seen but left the LRU -> capacity *)
  for _ = 1 to 6 do
    ignore (Classify.note c ~pc:0x9000 ~taken:true ~mispredicted:false)
  done;
  ignore (Classify.note c ~pc:0 ~taken:true ~mispredicted:true);
  for pc = 1 to 40 do
    ignore (Classify.note c ~pc:(pc * 4) ~taken:true ~mispredicted:false)
  done;
  (match Classify.note c ~pc:0 ~taken:true ~mispredicted:true with
  | Some Classify.Capacity -> ()
  | Some cls ->
      Alcotest.failf "expected capacity, got %s"
        (match cls with
        | Classify.Compulsory -> "compulsory"
        | Classify.Conflict -> "conflict"
        | Classify.Conditional_on_data -> "conditional"
        | Classify.Capacity -> "capacity")
  | None -> Alcotest.fail "mispredicted");
  let counts = Classify.counts c in
  check_int "total classified" 2 (Classify.total counts)

let test_classify_fractions () =
  let c =
    { Classify.compulsory = 1; capacity = 2; conflict = 1; conditional = 0 }
  in
  Alcotest.(check (float 1e-9)) "capacity fraction" 0.5
    (Classify.fraction c Classify.Capacity);
  check_int "total" 4 (Classify.total c)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "whisper_core"
    [
      ( "config",
        Alcotest.
          [
            test_case "table3 defaults" `Quick test_config_table3;
            test_case "lengths" `Quick test_config_lengths;
            test_case "explore count" `Quick test_config_explore_count;
          ] );
      ( "brhint",
        Alcotest.
          [
            test_case "roundtrip all biases" `Quick
              test_brhint_roundtrip_exhaustive_fields;
            test_case "bit budget" `Quick test_brhint_bits;
            test_case "invalid fields" `Quick test_brhint_invalid;
            test_case "branch pc" `Quick test_brhint_branch_pc;
          ]
        @ qsuite [ qcheck_brhint_roundtrip ] );
      ( "algorithm1",
        Alcotest.
          [
            test_case "counts" `Quick test_algorithm1_counts;
            test_case "scoring" `Quick test_algorithm1_scoring;
            test_case "find minimum" `Quick test_algorithm1_find_minimum;
            test_case "empty candidates" `Quick test_algorithm1_empty_candidates;
          ]
        @ qsuite [ qcheck_algorithm1_matches_bruteforce ] );
      ( "randomized",
        Alcotest.
          [
            test_case "candidate count" `Quick test_randomized_candidate_count;
            test_case "full permutation" `Quick test_randomized_permutation_property;
            test_case "deterministic" `Quick test_randomized_deterministic;
            test_case "prefix nesting" `Quick test_randomized_prefix_nesting;
            test_case "classic family" `Quick test_randomized_classic_family;
            test_case "truth cache" `Quick test_randomized_truth_cache;
            test_case "shared slices" `Quick test_randomized_shared_slices;
          ] );
      ( "history_select",
        Alcotest.
          [
            test_case "finds planted formula" `Quick test_decide_finds_planted_formula;
            test_case "bias for constants" `Quick test_decide_prefers_bias_for_constant;
            test_case "rejects noise" `Quick test_decide_rejects_random_branch;
            test_case "no samples" `Quick test_decide_no_samples;
            test_case "matches seed reference" `Quick
              test_decide_matches_reference;
            test_case "parallel analysis deterministic" `Quick
              test_parallel_analysis_deterministic;
            test_case "pool reuse across analyses" `Quick
              test_analysis_pool_reuse;
            test_case "scratch reuse sound" `Quick test_scratch_reuse_sound;
          ] );
      ( "hint_buffer",
        Alcotest.
          [
            test_case "basics" `Quick test_hint_buffer_basics;
            test_case "hint roundtrip" `Quick test_hint_buffer_hint_roundtrip;
            test_case "eviction" `Quick test_hint_buffer_eviction;
            test_case "reinsert refreshes" `Quick
              test_hint_buffer_reinsert_refreshes;
            test_case "probe no refresh" `Quick test_hint_buffer_probe_does_not_refresh;
          ] );
      ( "inject_runtime",
        Alcotest.
          [
            test_case "plan validity" `Quick test_inject_plan_validity;
            test_case "beats weak baseline" `Quick test_runtime_improves_on_baseline;
            test_case "hint accuracy" `Quick test_runtime_hint_accuracy_on_deterministic;
            test_case "compiled == oracle (catalog)" `Quick
              test_compiled_matches_reference_catalog;
            test_case "compiled == oracle (seeds+configs)" `Quick
              test_compiled_matches_reference_variants;
          ] );
      ( "analyze",
        Alcotest.
          [
            test_case "distributions" `Quick test_analyze_distributions;
            test_case "training time" `Quick test_analyze_training_time_positive;
          ] );
      ( "classify",
        Alcotest.
          [
            test_case "compulsory" `Quick test_classify_compulsory;
            test_case "correct unclassified" `Quick
              test_classify_correct_predictions_unclassified;
            test_case "conditional" `Quick test_classify_conditional;
            test_case "capacity" `Quick test_classify_capacity;
            test_case "fractions" `Quick test_classify_fractions;
          ] );
    ]
