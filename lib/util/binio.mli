(** Minimal binary serialization helpers (growable writer / bounds-checked
    reader with LEB128 varints), shared by the PT-like trace codec and the
    profile / hint-plan file formats.  Reader-side corruption is reported
    through {!Whisper_error} with byte offsets. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val byte : t -> int -> unit
  val varint : t -> int -> unit
  (** Unsigned LEB128; argument must be non-negative. *)

  val zigzag : t -> int -> unit
  (** Signed varint (zigzag encoding). *)

  val bytes : t -> bytes -> unit
  (** Length-prefixed byte string. *)

  val string : t -> string -> unit
  val float64 : t -> float -> unit
  val magic : t -> string -> unit
  (** Raw, unprefixed tag bytes. *)

  val contents : t -> bytes
  val length : t -> int
end

module Reader : sig
  type t

  (** Every read primitive raises {!Whisper_error.Error} (stage
      [Binio], with the byte offset of the offending input) on
      truncated, overflowing or mismatched data — never a bare
      [Failure] and never an out-of-bounds access.  Decoder facades
      wrap whole reads in {!Whisper_error.protect} to become total. *)

  val create : bytes -> t
  val byte : t -> int

  val varint : t -> int
  (** Rejects varints with more than 62 payload bits (e.g. a malicious
      run of continuation bytes) with [Varint_overflow] at the
      offending byte's offset; the result is always non-negative. *)

  val zigzag : t -> int
  val bytes : t -> bytes
  val string : t -> string
  val float64 : t -> float

  val remaining : t -> int
  (** Bytes left to read. *)

  val count : ?per_elem:int -> t -> int
  (** Read an element count and reject it with [Count_overflow] unless
      [count * per_elem] (default [per_elem = 1], a lower bound for any
      element) can still fit in the remaining input — so corrupt counts
      can never drive giant allocations or long decode loops. *)

  val magic : t -> string -> unit
  (** Consume and verify tag bytes.
      @raise Whisper_error.Error with [Bad_magic] on mismatch. *)

  val eof : t -> bool
  val pos : t -> int
end

val to_file : string -> bytes -> unit
val of_file : string -> bytes
