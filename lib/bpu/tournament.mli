(** Alpha-21264-style tournament predictor: a per-PC chooser of 2-bit
    counters arbitrates between two component predictors (classically a
    local two-level and a global gshare).  Used by ablation benches as a
    mid-1990s reference point between bimodal and TAGE. *)

val make :
  ?log_chooser:int ->
  a:Predictor.t ->
  b:Predictor.t ->
  unit ->
  Predictor.t
(** The chooser learns, per PC, which component to trust; both components
    are always trained. *)

val default : unit -> Predictor.t
(** [make ~a:(Twolevel.pag ()) ~b:(Gshare.make ...)]. *)
