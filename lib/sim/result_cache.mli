(** Persistent on-disk cache of timing-model results, so re-running
    [whisper experiment] only simulates configurations that changed.

    Entries live under a cache directory (default [_whisper_cache/]),
    one file per result, named by the digest of its key — the same
    [technique_key × app × inputs × events × baseline_kb] string the
    in-memory memo table uses.  Files carry a magic tag, a format
    version and the full key; anything that fails to decode (trailing
    garbage, version bump, digest collision, torn write) is treated as
    a miss and removed, and the caller recomputes.  Writes go through a
    per-domain temp file and an atomic rename, so concurrent workers
    never expose partial entries. *)

type t

val default_dir : string
(** ["_whisper_cache"] *)

val create : ?dir:string -> unit -> t
(** Create the directory (and parents) if needed. *)

val dir : t -> string

val path : t -> key:string -> string
(** The entry file a given key maps to (for tests/tooling). *)

val find : t -> key:string -> Whisper_pipeline.Machine.result option
(** [None] on miss or on a corrupt/stale entry (which is deleted). *)

val store : t -> key:string -> Whisper_pipeline.Machine.result -> unit
(** Best-effort: write failures (read-only or bogus cache directory,
    disk full) are swallowed — the result simply is not cached. *)

val encode : key:string -> Whisper_pipeline.Machine.result -> bytes

val decode : key:string -> bytes -> Whisper_pipeline.Machine.result
(** @raise Failure on corrupt input, version or key mismatch. *)

val format_version : int
