open Whisper_trace

type budget = Budget of int | Unlimited

type t = {
  models : (int, Model.t) Hashtbl.t;
  budget : budget;
  training_seconds : float;
}

(* The original BranchNet convolves over raw (PC, direction) history; our
   surrogate consumes the raw last-56 outcomes as 7 feature bytes. *)
let feature_bytes = 7

(* Gather (features, outcome) pairs from a sample half. *)
let gather profile ~pc ~part =
  let xs = ref [] and ys = ref [] in
  let i = ref 0 in
  Profile.iter_samples profile ~pc ~f:(fun ~raw8:_ ~raw56 ~hash:_ ~taken ~correct:_ ->
      let keep = if part = `Train then !i land 1 = 0 else !i land 1 = 1 in
      incr i;
      if keep then begin
        xs := Array.init feature_bytes (fun b -> (raw56 lsr (8 * b)) land 0xFF) :: !xs;
        ys := taken :: !ys
      end);
  (Array.of_list (List.rev !xs), Array.of_list (List.rev !ys))

let eval_baseline profile ~pc ~part =
  let mispred = ref 0 in
  let i = ref 0 in
  Profile.iter_samples profile ~pc ~f:(fun ~raw8:_ ~raw56:_ ~hash:_ ~taken:_ ~correct ->
      let keep = if part = `Train then !i land 1 = 0 else !i land 1 = 1 in
      incr i;
      if keep && not correct then incr mispred);
  !mispred

let train ?(budget = Unlimited) ?(epochs = 12) ?(max_models = 256)
    ?(min_eval_gain = 2) profile =
  let t0 = Unix.gettimeofday () in
  let models = Hashtbl.create 64 in
  let used_bytes = ref 0 in
  let budget_left () =
    match budget with
    | Unlimited -> Hashtbl.length models < max_models
    | Budget b -> !used_bytes < b
  in
  let candidates = Profile.candidates profile in
  let i = ref 0 in
  while budget_left () && !i < Array.length candidates do
    let pc = candidates.(!i) in
    incr i;
    if Profile.n_samples profile ~pc >= 16 then begin
      let xs, ys = gather profile ~pc ~part:`Train in
      let model = Model.create ~n_lengths:feature_bytes ~seed:(pc lxor 0xB4A2) () in
      Model.train_sgd model ~xs ~ys ~epochs ~lr:0.05;
      (* held-out acceptance, mirroring the other techniques *)
      let exs, eys = gather profile ~pc ~part:`Eval in
      let m = ref 0 in
      Array.iteri
        (fun s features ->
          if Model.predict model ~features <> eys.(s) then incr m)
        exs;
      let baseline = eval_baseline profile ~pc ~part:`Eval in
      let required = max min_eval_gain ((baseline + 9) / 10) in
      if baseline - !m >= required then begin
        (* the budget pays for every deployed model *)
        (match budget with
        | Budget b when !used_bytes + Model.storage_bytes model > b -> ()
        | _ ->
            Hashtbl.replace models pc model;
            used_bytes := !used_bytes + Model.storage_bytes model)
      end
    end
  done;
  { models; budget; training_seconds = Unix.gettimeofday () -. t0 }

let model_count t = Hashtbl.length t.models

let storage_bytes t =
  Hashtbl.fold (fun _ m acc -> acc + Model.storage_bytes m) t.models 0

module Runtime = struct
  type rt = {
    spec : t;
    base : Whisper_bpu.Predictor.t;
    mutable ghist : int;  (* raw last-56 outcomes, newest in bit 0 *)
    features : int array;
    mutable n_covered : int;
  }

  let create spec ~baseline =
    { spec; base = baseline; ghist = 0; features = Array.make feature_bytes 0; n_covered = 0 }

  let exec_at rt ~pc ~taken =
    let covered =
      match Hashtbl.find_opt rt.spec.models pc with
      | None -> None
      | Some model ->
          for b = 0 to feature_bytes - 1 do
            rt.features.(b) <- (rt.ghist lsr (8 * b)) land 0xFF
          done;
          Some (Model.predict model ~features:rt.features)
    in
    let correct =
      match covered with
      | Some pred ->
          rt.n_covered <- rt.n_covered + 1;
          rt.base.spectate ~pc ~taken;
          pred = taken
      | None ->
          let pred = rt.base.predict ~pc in
          rt.base.train ~pc ~taken;
          rt.base.is_oracle || pred = taken
    in
    rt.ghist <-
      ((rt.ghist lsl 1) lor (if taken then 1 else 0)) land 0xFF_FFFF_FFFF_FFFF;
    correct

  let exec rt (e : Branch.event) = exec_at rt ~pc:e.pc ~taken:e.taken

  let covered_predictions rt = rt.n_covered
end
