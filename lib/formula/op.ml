type t = And | Or | Imp | Cnimp

let all = [| And; Or; Imp; Cnimp |]
let classic = [| And; Or |]

let eval op a b =
  match op with
  | And -> a && b
  | Or -> a || b
  | Imp -> (not a) || b
  | Cnimp -> (not a) && b

let to_code = function And -> 0 | Or -> 1 | Imp -> 2 | Cnimp -> 3

let of_code = function
  | 0 -> And
  | 1 -> Or
  | 2 -> Imp
  | 3 -> Cnimp
  | _ -> invalid_arg "Op.of_code"

let name = function
  | And -> "and"
  | Or -> "or"
  | Imp -> "implication"
  | Cnimp -> "converse-nonimplication"

let pp fmt op = Format.pp_print_string fmt (name op)
