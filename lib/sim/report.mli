(** Tabular results: one structure per reproduced table/figure, printed
    aligned to stdout and exportable as CSV. *)

type t = {
  id : string;  (** e.g. "fig12" *)
  title : string;
  header : string list;  (** column names; first column is the row label *)
  rows : (string * float list) list;
  notes : string list;
}

val make :
  id:string ->
  title:string ->
  header:string list ->
  ?notes:string list ->
  (string * float list) list ->
  t

val with_mean : ?label:string -> t -> t
(** Append an arithmetic-mean row over the data rows. *)

val print : t -> unit

val to_csv : t -> string

val to_string : t -> string
