(** Minimal, dependency-free JSON: just enough for the telemetry
    exporters, the perf-regression checker and their round-trip tests.

    The printer is canonical — a fixed, whitespace-stable rendering with
    object members in the order given — so two values that compare equal
    with {!equal} serialize to byte-identical strings.  That property is
    what the [-j1] vs [-j4] metrics-determinism contract is checked
    against (see {!Telemetry}). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value (trailing whitespace allowed, anything else is
    an error).  Numbers land in [Num] as floats; strings support the
    standard escapes plus [\uXXXX] for code points below 0x80 (larger
    escapes decode to ['?'] — the telemetry writers never emit them). *)

val to_string : t -> string
(** Canonical compact rendering. *)

val to_string_pretty : t -> string
(** Canonical two-space-indented rendering (what the exporters write). *)

val equal : t -> t -> bool
(** Structural equality; object member {e order matters} (canonical
    writers always emit sorted members). *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any; [None] on
    non-objects. *)

val remove : string -> t -> t
(** Drop a member from an object (identity on non-objects). *)

val num : t -> float option
val int : t -> int option
val str : t -> string option
val bool : t -> bool option
val arr : t -> t list option

val of_int : int -> t
