(** Incremental re-scoring of deployed hint plans — the drift detector
    of the continuous-profiling service.

    A deployed plan was trained on an earlier profiling window; as the
    workload drifts, two things rot it: the hinted branches' behaviour
    shifts under their frozen formulas, and newly-hot mispredicting
    branches appear that carry no hint at all.  {!score} measures both
    against a fresh window profile without re-running Algorithm 1: it
    replays every hinted branch's window samples through its hint
    (formula truth table, or static bias) and reports the {e coverage}
    — mispredictions the plan avoids as a fraction of all baseline
    sample mispredictions across the window's candidate branches.  The
    denominator deliberately spans unhinted candidates too, so a phase
    flip that moves the hot set shows up as coverage decay even when
    every surviving hinted branch still behaves.

    The module also gives plans a versioned wire form (magic, version,
    total decoding) so a service can persist each rolled-out generation
    and re-load it across restarts. *)

type plan = (int * History_select.choice) list
(** Exactly {!Analyze.t}'s [decisions]. *)

val format_version : int

val encode : plan -> bytes

val decode : bytes -> (plan, Whisper_util.Whisper_error.t) result
(** Total: corrupt input is a typed [Error] with stage [Plan_io]. *)

val digest : plan -> string
(** Hex digest of {!encode} — the plan generation's content key. *)

type score = {
  hinted : int;  (** deployed hints whose branch has window samples *)
  window_candidates : int;  (** candidate branches in the window *)
  base_mispred : int;
      (** baseline sample mispredictions over {e all} window candidates *)
  hinted_base_mispred : int;  (** baseline mispredictions on hinted branches *)
  hint_mispred : int;  (** mispredictions of the hints on those branches *)
  avoided : int;  (** [hinted_base_mispred - hint_mispred]; negative = harmful *)
  coverage : float;  (** [avoided / max 1 base_mispred] *)
}

val score :
  config:Config.t ->
  rnd:Randomized.t ->
  profile:Whisper_trace.Profile.t ->
  plan ->
  score
(** Pure in its arguments; [rnd] must come from the same [config] the
    plan was trained with (formula ids index its shuffled space). *)
