(** Hashed history correlation: per-branch selection of the history
    length and Boolean formula that minimize profiled mispredictions
    (paper §III-A).

    For every candidate length in the geometric series, the branch's
    profile samples are grouped into taken/not-taken tables keyed by the
    hashed history at that length; Algorithm 1 then scores the randomized
    candidate formulas, alongside the two bias hints (always/never
    taken).  The best (length, formula-or-bias) pair is compared against
    the baseline predictor's misprediction count on the same samples —
    only a branch the formula beats gets a hint (otherwise it is left to
    the dynamic predictor).

    {!decide} is the optimized engine: one scan of the branch's raw
    sample records fills packed per-length taken/not-taken counters for
    the train and eval halves simultaneously, and candidates are scored
    through {!Algorithm1.find_packed} against the shared packed truth
    tables.  {!Reference.decide} is the seed implementation, retained as
    the differential-testing oracle and benchmark baseline; both return
    identical choices on any profile. *)

type choice = {
  len_idx : int;
  formula_id : int;
  bias : Brhint.bias;
  sample_mispred : int;  (** mispredictions of this choice on the profile *)
  baseline_mispred : int;  (** baseline mispredictions on the same samples *)
  samples : int;
}

type scratch
(** Reusable per-worker workspace for {!decide}: the packed count tables
    for every history length plus the Algorithm-1 build buffers.  Not
    safe to share across domains — give each worker its own. *)

val scratch : Config.t -> scratch
(** Workspace sized for [cfg.n_lengths] history series. *)

val domain_scratch : Config.t -> scratch
(** The calling domain's cached workspace, allocated on first use and
    reused across branches and across [Analyze.run] calls; grown (never
    shrunk) when a config needs more history lengths than any earlier
    one.  Sound because {!decide} restores the all-zero counter
    invariant before returning.  Per-domain by construction, so the
    "never share a scratch across domains" rule holds automatically. *)

val reset_scratch : scratch -> unit
(** Restore the all-zero counter invariant {!decide} requires on entry.
    Only needed after external corruption (see {!poison_scratch}) —
    {!decide} itself always leaves the scratch clean. *)

val scratch_clean : scratch -> bool
(** Whether every counter cell is zero — the invariant {!decide} must
    restore before returning.  Test hook for the scratch-reuse contract. *)

val poison_scratch : scratch -> unit
(** Overwrite the workspace with garbage.  Test hook: simulates a buggy
    consumer so tests can prove a dirty scratch is what breaks reuse and
    {!reset_scratch}/{!decide}'s exit invariant is what repairs it. *)

val decide :
  ?min_gain:int ->
  ?scratch:scratch ->
  Config.t ->
  Randomized.t ->
  Whisper_trace.Profile.t ->
  pc:int ->
  choice option
(** [None] when the branch has no samples or no choice beats the baseline
    by at least [min_gain] (default from config).  Passing [?scratch]
    avoids the internal workspace allocation when deciding many branches.
    Only shared read-only state of [rnd] is touched, so concurrent calls
    from several domains (each with its own scratch) are safe. *)

(** The seed implementation — [Bytes] truth tables, per-(length, part)
    profile re-scans.  Differential oracle and benchmark reference. *)
module Reference : sig
  val decide :
    ?min_gain:int ->
    Config.t ->
    Randomized.t ->
    Whisper_trace.Profile.t ->
    pc:int ->
    choice option
end

val decide_at_length :
  Randomized.t ->
  Whisper_trace.Profile.t ->
  pc:int ->
  len_idx:int ->
  (int * int) option
(** Best (formula_id, mispredictions) at one fixed length — the building
    block of {!decide}, exposed for the Fig. 15 exploration sweep. *)

val best_possible_at_length :
  Randomized.t ->
  Whisper_trace.Profile.t ->
  pc:int ->
  len_idx:int ->
  explore:int ->
  (int * int) option
(** Like {!decide_at_length} but testing the first [explore] formulas of
    the shared permutation. *)
