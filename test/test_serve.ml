(* Continuous-profiling service mode.

   What must hold:
   - Mergeset's bounded lexicographic-smallest selection is associative,
     commutative and delivery-order independent (the algebra the chunk
     accumulator's byte-identity promise rests on);
   - any permutation of the same chunk multiset accumulates to a
     byte-identical materialized profile AND an identical hint plan;
   - re-delivering an ingested chunk is a counted no-op; corrupt or
     truncated chunks are typed errors that leave the accumulator
     untouched;
   - the WRSC plan codec round-trips and is content-stable;
   - a serve scenario interrupted any number of times (max_steps — the
     in-process stand-in for kill -9) and resumed produces a ledger
     byte-identical to an uninterrupted run, faults included;
   - the scripted phase flip drives coverage down, triggers re-analysis
     and recovers (check_recovery holds);
   - the rollout rule prefers the incumbent on a strict loss.

   State dirs go through Test_dirs so runtest leaves nothing behind. *)

open Whisper_util
open Whisper_trace
open Whisper_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Mergeset                                                           *)
(* ------------------------------------------------------------------ *)

let record_of_int stride v =
  let b = Bytes.create stride in
  for i = 0 to stride - 1 do
    Bytes.set b i (Char.chr ((v lsr (8 * (stride - 1 - i))) land 0xFF))
  done;
  b

(* reference semantics: sort every offered record, keep the cap smallest *)
let reference_contents ~stride ~cap records =
  let sorted = List.sort Bytes.compare (List.map (record_of_int stride) records) in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  Bytes.concat Bytes.empty (take cap sorted)

let qcheck_mergeset_orders =
  QCheck.Test.make ~name:"mergeset: any insertion order, same bytes" ~count:300
    QCheck.(pair (list (int_bound 0xFFFF)) (int_bound 60))
    (fun (records, salt) ->
      let stride = 3 and cap = 7 in
      let ingest order =
        let s = Mergeset.create ~stride ~cap in
        List.iter (fun v -> Mergeset.add s (record_of_int stride v) ~off:0) order;
        s
      in
      let shuffled =
        let a = Array.of_list records in
        let rng = Rng.create (salt + 1) in
        for i = Array.length a - 1 downto 1 do
          let j = Rng.int rng (i + 1) in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
        done;
        Array.to_list a
      in
      let s1 = ingest records and s2 = ingest shuffled in
      (* split-merge grouping: first half and second half in separate
         sets, then add_all *)
      let n = List.length records in
      let s3 = ingest (List.filteri (fun i _ -> i < n / 2) records) in
      let s4 = ingest (List.filteri (fun i _ -> i >= n / 2) records) in
      Mergeset.add_all s3 ~other:s4;
      let expect = reference_contents ~stride ~cap records in
      Mergeset.contents s1 = expect
      && Mergeset.contents s2 = expect
      && Mergeset.contents s3 = expect
      && Mergeset.equal s1 s2
      && Mergeset.seen s1 = n)

let test_mergeset_basics () =
  let s = Mergeset.create ~stride:2 ~cap:3 in
  check_int "empty" 0 (Mergeset.length s);
  List.iter
    (fun v -> Mergeset.add s (record_of_int 2 v) ~off:0)
    [ 0x0202; 0x0101; 0x0303; 0x0101; 0x0404 ];
  check_int "capped" 3 (Mergeset.length s);
  check_int "seen counts drops" 5 (Mergeset.seen s);
  (* duplicates are multiset members: 0101 0101 0202 survive the cap *)
  check_string "smallest kept, duplicates included" "010101010202"
    (let b = Mergeset.contents s in
     String.concat ""
       (List.init (Bytes.length b) (fun i ->
            Printf.sprintf "%02x" (Char.code (Bytes.get b i)))));
  (* self add_all doubles every kept record deterministically *)
  Mergeset.add_all s ~other:s;
  check_string "self-merge is snapshot-safe" "010101010101"
    (let b = Mergeset.contents s in
     String.concat ""
       (List.init (Bytes.length b) (fun i ->
            Printf.sprintf "%02x" (Char.code (Bytes.get b i)))))

(* ------------------------------------------------------------------ *)
(* Chunks and the accumulator                                         *)
(* ------------------------------------------------------------------ *)

let tiny_config =
  {
    (Option.get (Workloads.by_name "finagle-http")) with
    Workloads.name = "serve-test";
    functions = 24;
    seed = 17;
  }

let tiny_cfg = Workloads.build_cfg tiny_config

(* a real collected chunk profile, phase/input-parameterized *)
let collect_profile ?(phase = 0) ~input ~events () =
  Profile.collect ~max_samples:64 ~lengths:Workloads.lengths ~events
    ~make_source:(fun () ->
      App_model.source
        (App_model.create ~phase ~cfg:tiny_cfg ~config:tiny_config ~input ()))
    ~make_predictor:(Whisper_sim.Runner.lbr_predictor 64)
    ()

let profile_bytes p = Profile_io.to_bytes p

let test_chunk_roundtrip () =
  let p = collect_profile ~input:0 ~events:20_000 () in
  let b = Profile_chunk.encode ~app:"serve-test" ~seq:5 p in
  match Profile_chunk.decode b with
  | Error e -> Alcotest.failf "decode failed: %s" (Whisper_error.to_string e)
  | Ok c ->
      check_string "app" "serve-test" c.Profile_chunk.app;
      check_int "seq" 5 c.Profile_chunk.seq;
      (* Profile_io.to_bytes is insertion-order sensitive, so compare
         through the canonical merge, not the raw image *)
      let canon q =
        profile_bytes
          (Profile_chunk.merge_profiles ~max_samples:64
             ~lengths:Workloads.lengths [ q ])
      in
      check_bool "profile canonically identical" true
        (canon p = canon c.Profile_chunk.profile);
      check_bool "content key is stable" true
        (Profile_chunk.id b = Profile_chunk.id (Bytes.copy b))

let test_chunk_permutation_identity () =
  (* real chunks, both phases mixed in: any delivery order accumulates
     to the same bytes and the same plan *)
  let chunks =
    List.init 4 (fun i ->
        collect_profile ~phase:(i mod 2) ~input:i ~events:30_000 ())
  in
  let ingest order =
    let a = Profile_chunk.create_accum ~max_samples:64 ~lengths:Workloads.lengths () in
    List.iter
      (fun i ->
        match
          Profile_chunk.ingest_profile a ~id:(string_of_int i)
            (List.nth chunks i)
        with
        | Profile_chunk.Added _ -> ()
        | Profile_chunk.Duplicate _ -> Alcotest.fail "unexpected duplicate")
      order;
    Profile_chunk.profile a
  in
  let p1 = ingest [ 0; 1; 2; 3 ]
  and p2 = ingest [ 3; 1; 0; 2 ]
  and p3 = ingest [ 2; 3; 1; 0 ] in
  check_bool "bytes order-independent" true
    (profile_bytes p1 = profile_bytes p2 && profile_bytes p2 = profile_bytes p3);
  check_bool "one-shot merge agrees" true
    (profile_bytes p1
    = profile_bytes
        (Profile_chunk.merge_profiles ~max_samples:64 ~lengths:Workloads.lengths
           chunks));
  let plan_of p = (Analyze.run p).Analyze.decisions in
  check_string "plans identical" (Rescore.digest (plan_of p1))
    (Rescore.digest (plan_of p2))

let qcheck_accum_permutation =
  (* synthetic chunks across a shared pc set, wider order coverage than
     the collected-profile case can afford *)
  QCheck.Test.make ~name:"accum: chunk permutations, same bytes" ~count:60
    QCheck.(int_bound 0xFFFF)
    (fun seed ->
      let lengths = Workloads.lengths in
      let synth k =
        let p = Profile.create_empty ~lengths () in
        let rng = Rng.create ((seed * 31) + k) in
        List.iter
          (fun pc ->
            for _ = 1 to 20 + Rng.int rng 30 do
              Profile.record_event p ~pc ~taken:(Rng.bool rng)
                ~correct:(Rng.bernoulli rng 0.7) ~instrs:6
            done;
            for s = 1 to 10 + Rng.int rng 20 do
              Profile.add_sample p ~pc ~raw8:(Rng.int rng 256)
                ~raw56:(Rng.int rng 1_000_000)
                ~hashes:
                  (Array.init (Array.length lengths) (fun _ -> Rng.int rng 256))
                ~taken:(Rng.bool rng) ~correct:(s mod 4 <> 0)
            done)
          [ 0x4010; 0x4020; 0x4030 ];
        p
      in
      let chunks = List.init 5 synth in
      let ingest order =
        let a = Profile_chunk.create_accum ~max_samples:24 ~lengths () in
        List.iter
          (fun i ->
            ignore
              (Profile_chunk.ingest_profile a ~id:(string_of_int i)
                 (List.nth chunks i)))
          order;
        profile_bytes (Profile_chunk.profile a)
      in
      let rng = Rng.create (seed + 7) in
      let perm = Rng.permutation rng 5 in
      ingest [ 0; 1; 2; 3; 4 ] = ingest (Array.to_list perm))

let test_duplicate_is_counted_noop () =
  let a =
    Profile_chunk.create_accum ~max_samples:64 ~lengths:Workloads.lengths ()
  in
  let p = collect_profile ~input:0 ~events:20_000 () in
  let b = Profile_chunk.encode ~app:"serve-test" ~seq:0 p in
  (match Profile_chunk.ingest a b with
  | Ok (Profile_chunk.Added id) ->
      check_string "id is the content key" (Profile_chunk.id b) id
  | _ -> Alcotest.fail "first delivery must add");
  let before = profile_bytes (Profile_chunk.profile a) in
  for _ = 1 to 3 do
    match Profile_chunk.ingest a b with
    | Ok (Profile_chunk.Duplicate _) -> ()
    | _ -> Alcotest.fail "re-delivery must be a duplicate"
  done;
  check_int "distinct chunks" 1 (Profile_chunk.chunks a);
  check_int "duplicates counted" 3 (Profile_chunk.duplicates a);
  check_bool "accumulator unchanged" true
    (before = profile_bytes (Profile_chunk.profile a))

let test_corrupt_chunk_rejected () =
  let a =
    Profile_chunk.create_accum ~max_samples:64 ~lengths:Workloads.lengths ()
  in
  let p = collect_profile ~input:0 ~events:20_000 () in
  let good = Profile_chunk.encode ~app:"serve-test" ~seq:0 p in
  (match Profile_chunk.ingest a good with
  | Ok (Profile_chunk.Added _) -> ()
  | _ -> Alcotest.fail "good chunk must ingest");
  let before = profile_bytes (Profile_chunk.profile a) in
  let rng = Rng.create 0xC0FFEE in
  let rejected = ref 0 and added = ref 0 in
  for _ = 1 to 400 do
    let bad =
      match Rng.int rng 4 with
      | 0 -> Bytes.sub good 0 (Rng.int rng (Bytes.length good))
      | 1 ->
          let b = Bytes.copy good in
          let i = Rng.int rng (Bytes.length b) in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
          b
      | 2 ->
          let b = Bytes.copy good in
          Bytes.set b 4 (Char.chr (Char.code (Bytes.get b 4) + 1));
          b
      | _ ->
          let i = Rng.int rng (Bytes.length good) in
          Bytes.cat (Bytes.sub good 0 i)
            (Bytes.sub good (i + 1) (Bytes.length good - i - 1))
    in
    match Profile_chunk.ingest a bad with
    | Error _ -> incr rejected
    | Ok (Profile_chunk.Duplicate _) -> () (* benign-flip survivors *)
    | Ok (Profile_chunk.Added _) -> incr added
    | exception e ->
        Alcotest.failf "ingest raised %s on corrupt chunk"
          (Printexc.to_string e)
  done;
  (* bit flips landing in raw sample payload bytes decode fine (they
     change content, not structure) — only structural damage rejects *)
  check_bool "most corruptions rejected" true (!rejected > 250);
  (* a bit-flip survivor that still decodes is legitimately added;
     otherwise every rejection left the accumulator byte-untouched *)
  if !added = 0 then
    check_bool "rejected deliveries leave the accumulator untouched" true
      (before = profile_bytes (Profile_chunk.profile a))

(* ------------------------------------------------------------------ *)
(* Rescore codec                                                      *)
(* ------------------------------------------------------------------ *)

let qcheck_rescore_roundtrip =
  QCheck.Test.make ~name:"rescore: plan codec roundtrip" ~count:300
    QCheck.(small_list (pair (int_bound 0xFFFFF) (int_bound 0xFFFF)))
    (fun entries ->
      let plan =
        List.map
          (fun (pc, v) ->
            ( pc,
              {
                History_select.len_idx = v mod 16;
                formula_id = v * 13;
                bias = Brhint.bias_of_code (v mod 4);
                sample_mispred = v land 0xFF;
                baseline_mispred = (v lsr 4) land 0xFF;
                samples = 1 + (v land 63);
              } ))
          entries
      in
      match Rescore.decode (Rescore.encode plan) with
      | Ok plan' ->
          plan = plan' && Rescore.digest plan = Rescore.digest plan'
      | Error _ -> false)

let test_decide_rollout () =
  check_bool "first plan always rolls out" true
    (Whisper_sim.Serve.decide_rollout ~incumbent:None ~candidate:0.0 = `Rollout);
  check_bool "tie keeps the candidate" true
    (Whisper_sim.Serve.decide_rollout ~incumbent:(Some 0.5) ~candidate:0.5
    = `Rollout);
  check_bool "strict loss rolls back" true
    (Whisper_sim.Serve.decide_rollout ~incumbent:(Some 0.5) ~candidate:0.499
    = `Rollback)

(* ------------------------------------------------------------------ *)
(* The serve scenario                                                 *)
(* ------------------------------------------------------------------ *)

let serve_cfg ?(faults = 0.0) ?(generations = 8) ~state_dir () =
  {
    (Whisper_sim.Serve.default ~state_dir) with
    Whisper_sim.Serve.generations;
    chunk_events = 60_000;
    drift_flip = Some (generations / 2);
    faults;
  }

let test_serve_ledger_roundtrip () =
  let cfg = serve_cfg ~state_dir:(Test_dirs.fresh "serve_ledger") () in
  let o = Whisper_sim.Serve.run cfg in
  check_bool "not interrupted" false o.Whisper_sim.Serve.interrupted;
  check_int "one line per step" o.Whisper_sim.Serve.total
    (List.length o.Whisper_sim.Serve.ledger);
  check_int "all completed" o.Whisper_sim.Serve.total
    o.Whisper_sim.Serve.completed;
  (* the ledger is its own codec: parse and re-render is the identity *)
  List.iter
    (fun line ->
      match Whisper_sim.Serve.parse_step line with
      | None -> Alcotest.failf "unparseable ledger line: %s" line
      | Some s -> check_string "render/parse identity" line
            (Whisper_sim.Serve.render_step s))
    o.Whisper_sim.Serve.ledger;
  (* every accepted chunk was probed with a re-delivery and counted *)
  check_int "redelivery probes are counted no-ops"
    o.Whisper_sim.Serve.chunks_ingested o.Whisper_sim.Serve.duplicates

let test_serve_resume_identity () =
  let mk state_dir = serve_cfg ~state_dir () in
  let clean =
    Whisper_sim.Serve.run (mk (Test_dirs.fresh "serve_clean"))
  in
  let dir = Test_dirs.fresh "serve_kill" in
  let k1 =
    Whisper_sim.Serve.run { (mk dir) with Whisper_sim.Serve.max_steps = Some 2 }
  in
  check_bool "first segment interrupted" true k1.Whisper_sim.Serve.interrupted;
  let k2 =
    Whisper_sim.Serve.run
      { (mk dir) with Whisper_sim.Serve.resume = true; max_steps = Some 3 }
  in
  check_bool "second segment interrupted" true k2.Whisper_sim.Serve.interrupted;
  check_int "second segment resumed the journal" 2
    k2.Whisper_sim.Serve.resumed;
  let fin =
    Whisper_sim.Serve.run { (mk dir) with Whisper_sim.Serve.resume = true }
  in
  check_bool "final segment ran to completion" false
    fin.Whisper_sim.Serve.interrupted;
  check_int "five steps replayed from the journal" 5
    fin.Whisper_sim.Serve.resumed;
  check_bool "ledger byte-identical to the uninterrupted run" true
    (clean.Whisper_sim.Serve.ledger = fin.Whisper_sim.Serve.ledger);
  check_bool "summary identical too" true
    (clean.Whisper_sim.Serve.summary = fin.Whisper_sim.Serve.summary)

let test_serve_resume_identity_faulted () =
  let mk state_dir = serve_cfg ~faults:0.4 ~state_dir () in
  let clean = Whisper_sim.Serve.run (mk (Test_dirs.fresh "serve_fclean")) in
  check_bool "chaos rate actually quarantined something" true
    (clean.Whisper_sim.Serve.chunks_quarantined
     + clean.Whisper_sim.Serve.analysis_quarantined
    > 0);
  let dir = Test_dirs.fresh "serve_fkill" in
  ignore
    (Whisper_sim.Serve.run
       { (mk dir) with Whisper_sim.Serve.max_steps = Some 3 });
  let fin =
    Whisper_sim.Serve.run { (mk dir) with Whisper_sim.Serve.resume = true }
  in
  check_bool "faulted ledger byte-identical across kill/resume" true
    (clean.Whisper_sim.Serve.ledger = fin.Whisper_sim.Serve.ledger)

let test_serve_drift_recovery () =
  let cfg =
    serve_cfg ~generations:10
      ~state_dir:(Test_dirs.fresh "serve_drift")
      ()
  in
  let o = Whisper_sim.Serve.run cfg in
  (match Whisper_sim.Serve.check_recovery cfg o with
  | Ok () -> ()
  | Error reason -> Alcotest.failf "recovery assertion failed: %s" reason);
  check_bool "the flip was detected as drift" true
    (o.Whisper_sim.Serve.drift_detected > 0);
  check_bool "drift triggered re-analysis" true
    (o.Whisper_sim.Serve.analyses > 1);
  check_bool "re-analysis rolled a new generation out" true
    (o.Whisper_sim.Serve.rollouts > 1)

let test_serve_stationary_no_flip () =
  let cfg =
    {
      (serve_cfg ~generations:4 ~state_dir:(Test_dirs.fresh "serve_flat") ())
      with
      Whisper_sim.Serve.drift_flip = None;
    }
  in
  let o = Whisper_sim.Serve.run cfg in
  check_bool "stationary run completes" false o.Whisper_sim.Serve.interrupted;
  check_bool "check_recovery refuses a flipless scenario" true
    (match Whisper_sim.Serve.check_recovery cfg o with
    | Error _ -> true
    | Ok () -> false)

let () =
  Alcotest.run "whisper_serve"
    [
      ( "mergeset",
        [
          QCheck_alcotest.to_alcotest qcheck_mergeset_orders;
          Alcotest.test_case "basics" `Quick test_mergeset_basics;
        ] );
      ( "chunks",
        [
          Alcotest.test_case "roundtrip" `Quick test_chunk_roundtrip;
          Alcotest.test_case "permutation identity" `Slow
            test_chunk_permutation_identity;
          QCheck_alcotest.to_alcotest qcheck_accum_permutation;
          Alcotest.test_case "duplicate is a counted no-op" `Quick
            test_duplicate_is_counted_noop;
          Alcotest.test_case "corrupt chunks are typed rejections" `Quick
            test_corrupt_chunk_rejected;
        ] );
      ( "rescore",
        [
          QCheck_alcotest.to_alcotest qcheck_rescore_roundtrip;
          Alcotest.test_case "rollout rule" `Quick test_decide_rollout;
        ] );
      ( "serve",
        [
          Alcotest.test_case "ledger roundtrip + idempotent redelivery" `Slow
            test_serve_ledger_roundtrip;
          Alcotest.test_case "kill/resume ledger identity" `Slow
            test_serve_resume_identity;
          Alcotest.test_case "faulted kill/resume ledger identity" `Slow
            test_serve_resume_identity_faulted;
          Alcotest.test_case "drift detection recovers coverage" `Slow
            test_serve_drift_recovery;
          Alcotest.test_case "stationary scenario" `Slow
            test_serve_stationary_no_flip;
        ] );
    ]
