(** Gshare (McFarling): 2-bit counters indexed by PC XOR global history.
    A historical baseline used by tests and ablation benches. *)

val make : log_entries:int -> hist_bits:int -> Predictor.t
