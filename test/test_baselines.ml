(* Tests for the prior-work baselines: classic ROMBF (Jiménez et al. 2001)
   and the BranchNet surrogate. *)

open Whisper_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A synthetic profile builder: outcomes as a function of raw history. *)
let synthetic_profile ~n ~gen =
  let p = Profile.create_empty ~lengths:Workloads.lengths () in
  let rng = Whisper_util.Rng.create 31 in
  let hist = ref 0 in
  for _ = 0 to n - 1 do
    let taken, correct = gen ~raw:(!hist) ~rng in
    Profile.record_event p ~pc:0x4000 ~taken ~correct ~instrs:8;
    Profile.add_sample ~raw56:(!hist land 0xFF_FFFF_FFFF_FFFF) p ~pc:0x4000
      ~raw8:(!hist land 0xFF)
      ~hashes:(Array.make 16 (!hist land 0xFF))
      ~taken ~correct;
    hist := ((!hist lsl 1) lor if taken then 1 else 0) land max_int
  done;
  p

(* ------------------------------------------------------------------ *)
(* ROMBF                                                              *)
(* ------------------------------------------------------------------ *)

let test_rombf_learns_conjunction () =
  (* taken iff the last two outcomes were both taken: expressible as a
     classic and/or tree over the raw window *)
  let p =
    synthetic_profile ~n:600 ~gen:(fun ~raw ~rng ->
        let taken =
          if raw land 3 = 3 then Whisper_util.Rng.bernoulli rng 0.2
          else Whisper_util.Rng.bernoulli rng 0.8
        in
        (taken, Whisper_util.Rng.bool rng))
  in
  let t = Whisper_rombf.Rombf.train ~n:8 p in
  check_int "one branch hinted" 1 (Whisper_rombf.Rombf.hint_count t)

let test_rombf_rejects_noise () =
  let p =
    synthetic_profile ~n:600 ~gen:(fun ~raw:_ ~rng ->
        (Whisper_util.Rng.bool rng, Whisper_util.Rng.bernoulli rng 0.6))
  in
  let t = Whisper_rombf.Rombf.train ~n:8 p in
  check_int "no hint for a coin flip" 0 (Whisper_rombf.Rombf.hint_count t)

let test_rombf_invalid_n () =
  let p = Profile.create_empty ~lengths:Workloads.lengths () in
  Alcotest.check_raises "n" (Invalid_argument "Rombf.train: n must be 4 or 8")
    (fun () -> ignore (Whisper_rombf.Rombf.train ~n:6 p))

let test_rombf_runtime_always_hint () =
  (* always-taken branch badly predicted by the baseline: ROMBF emits a
     tautology hint and the runtime must be perfect *)
  let p =
    synthetic_profile ~n:400 ~gen:(fun ~raw:_ ~rng ->
        (true, Whisper_util.Rng.bernoulli rng 0.5))
  in
  let spec = Whisper_rombf.Rombf.train ~n:4 p in
  check_int "hinted" 1 (Whisper_rombf.Rombf.hint_count spec);
  let rt =
    Whisper_rombf.Rombf.Runtime.create spec
      ~baseline:(Whisper_bpu.Predictor.always_taken ())
  in
  let correct = ref 0 in
  for i = 0 to 99 do
    let e =
      { Branch.block = 0; pc = 0x4000; taken = true; instrs = 4; next_addr = i }
    in
    if Whisper_rombf.Rombf.Runtime.exec rt e then incr correct
  done;
  check_int "all correct" 100 !correct;
  check_int "hinted predictions" 100
    (Whisper_rombf.Rombf.Runtime.hinted_predictions rt)

let test_rombf_training_time () =
  let p = synthetic_profile ~n:100 ~gen:(fun ~raw:_ ~rng -> (Whisper_util.Rng.bool rng, true)) in
  let t4 = Whisper_rombf.Rombf.train ~n:4 p in
  check_bool "time measured" true (t4.Whisper_rombf.Rombf.training_seconds >= 0.0)

(* ------------------------------------------------------------------ *)
(* BranchNet                                                          *)
(* ------------------------------------------------------------------ *)

let test_model_learns_linear () =
  (* taken iff history bit 3 is set: linearly separable *)
  let rng = Whisper_util.Rng.create 5 in
  let n = 400 in
  let xs =
    Array.init n (fun _ -> Array.init 7 (fun _ -> Whisper_util.Rng.int rng 256))
  in
  let ys = Array.map (fun x -> x.(0) land 8 <> 0) xs in
  let m = Whisper_branchnet.Model.create ~n_lengths:7 ~seed:3 () in
  Whisper_branchnet.Model.train_sgd m ~xs ~ys ~epochs:20 ~lr:0.05;
  let correct = ref 0 in
  Array.iteri
    (fun i x ->
      if Whisper_branchnet.Model.predict m ~features:x = ys.(i) then incr correct)
    xs;
  check_bool "fits" true (float_of_int !correct /. float_of_int n > 0.95)

let test_model_learns_nonlinear () =
  (* (b0 && b1) || (b2 && b3): not linearly separable; needs the hidden
     layer *)
  let rng = Whisper_util.Rng.create 6 in
  let n = 600 in
  let xs =
    Array.init n (fun _ -> Array.init 7 (fun _ -> Whisper_util.Rng.int rng 256))
  in
  let ys =
    Array.map
      (fun x ->
        let b i = x.(0) land (1 lsl i) <> 0 in
        (b 0 && b 1) || (b 2 && b 3))
      xs
  in
  let m = Whisper_branchnet.Model.create ~hidden:8 ~n_lengths:7 ~seed:9 () in
  Whisper_branchnet.Model.train_sgd m ~xs ~ys ~epochs:60 ~lr:0.05;
  let correct = ref 0 in
  Array.iteri
    (fun i x ->
      if Whisper_branchnet.Model.predict m ~features:x = ys.(i) then incr correct)
    xs;
  check_bool "fits nonlinear" true (float_of_int !correct /. float_of_int n > 0.9)

let test_model_storage () =
  let m = Whisper_branchnet.Model.create ~hidden:8 ~n_lengths:7 ~seed:1 () in
  check_int "inputs" 56 (Whisper_branchnet.Model.n_inputs m);
  (* 8*(56+1) + 8 + 1 = 465 bytes quantized *)
  check_int "bytes" 465 (Whisper_branchnet.Model.storage_bytes m)

let test_branchnet_budget_bounds_coverage () =
  (* many predictable branches; small budgets must cover fewer *)
  let p = Profile.create_empty ~lengths:Workloads.lengths () in
  let rng = Whisper_util.Rng.create 77 in
  for b = 0 to 39 do
    let pc = 0x4000 + (b * 64) in
    for _ = 0 to 99 do
      let raw = Whisper_util.Rng.int rng 256 in
      let taken = raw land 1 = 1 in
      Profile.record_event p ~pc ~taken ~correct:(Whisper_util.Rng.bool rng)
        ~instrs:8;
      Profile.add_sample ~raw56:raw p ~pc ~raw8:raw
        ~hashes:(Array.make 16 raw) ~taken
        ~correct:(Whisper_util.Rng.bool rng)
    done
  done;
  let small =
    Whisper_branchnet.Branchnet.train
      ~budget:(Whisper_branchnet.Branchnet.Budget 2048) ~epochs:8 p
  in
  let big =
    Whisper_branchnet.Branchnet.train
      ~budget:Whisper_branchnet.Branchnet.Unlimited ~epochs:8 p
  in
  check_bool "small budget, few models" true
    (Whisper_branchnet.Branchnet.model_count small
    < Whisper_branchnet.Branchnet.model_count big);
  check_bool "budget respected" true
    (Whisper_branchnet.Branchnet.storage_bytes small <= 2048);
  check_bool "unlimited covers most" true
    (Whisper_branchnet.Branchnet.model_count big >= 30)

let test_branchnet_runtime_uses_models () =
  let p = Profile.create_empty ~lengths:Workloads.lengths () in
  let rng = Whisper_util.Rng.create 78 in
  let pc = 0x4000 in
  for _ = 0 to 299 do
    let raw = Whisper_util.Rng.int rng 256 in
    let taken = raw land 1 = 1 in
    Profile.record_event p ~pc ~taken ~correct:(Whisper_util.Rng.bool rng) ~instrs:8;
    Profile.add_sample ~raw56:raw p ~pc ~raw8:raw ~hashes:(Array.make 16 raw)
      ~taken ~correct:(Whisper_util.Rng.bool rng)
  done;
  let spec = Whisper_branchnet.Branchnet.train ~epochs:20 p in
  check_int "model trained" 1 (Whisper_branchnet.Branchnet.model_count spec);
  let rt =
    Whisper_branchnet.Branchnet.Runtime.create spec
      ~baseline:(Whisper_bpu.Predictor.always_taken ())
  in
  let correct = ref 0 and total = 200 in
  let ghist = ref 0 in
  for i = 0 to total - 1 do
    (* the model learned: taken iff previous outcome (bit 0) taken *)
    let taken = !ghist land 1 = 1 in
    let e = { Branch.block = 0; pc; taken; instrs = 4; next_addr = i } in
    if Whisper_branchnet.Branchnet.Runtime.exec rt e then incr correct;
    ghist := (!ghist lsl 1) lor (if taken then 1 else 0)
  done;
  check_int "covered" total
    (Whisper_branchnet.Branchnet.Runtime.covered_predictions rt);
  check_bool "mostly correct" true (float_of_int !correct /. float_of_int total > 0.8)

let () =
  Alcotest.run "whisper_baselines"
    [
      ( "rombf",
        Alcotest.
          [
            test_case "learns conjunction" `Quick test_rombf_learns_conjunction;
            test_case "rejects noise" `Quick test_rombf_rejects_noise;
            test_case "invalid n" `Quick test_rombf_invalid_n;
            test_case "runtime always hint" `Quick test_rombf_runtime_always_hint;
            test_case "training time" `Quick test_rombf_training_time;
          ] );
      ( "branchnet",
        Alcotest.
          [
            test_case "model linear" `Quick test_model_learns_linear;
            test_case "model nonlinear" `Quick test_model_learns_nonlinear;
            test_case "model storage" `Quick test_model_storage;
            test_case "budget bounds coverage" `Quick
              test_branchnet_budget_bounds_coverage;
            test_case "runtime uses models" `Quick test_branchnet_runtime_uses_models;
          ] );
    ]
