type 'a node = {
  key : int;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (int, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create";
  { cap = capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let peek t k = Option.map (fun n -> n.value) (Hashtbl.find_opt t.table k)

let mem t k = Hashtbl.mem t.table k

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table k

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node;
      None
  | None ->
      let evicted =
        if Hashtbl.length t.table >= t.cap then
          match t.tail with
          | None -> None
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.table lru.key;
              Some lru.key
        else None
      in
      let node = { key = k; value = v; prev = None; next = None } in
      push_front t node;
      Hashtbl.replace t.table k node;
      evicted

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let fold f init t =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f acc node.key node.value) node.next
  in
  go init t.head
