let format_version = 1
let magic_tag = "WMAN"

type item = { key : string; spec : string }
type t = { meta : (string * string) list; items : item array }

let make ~meta items = { meta; items }

let encode t =
  let w = Binio.Writer.create ~capacity:4096 () in
  Binio.Writer.magic w magic_tag;
  Binio.Writer.varint w format_version;
  Binio.Writer.varint w (List.length t.meta);
  List.iter
    (fun (k, v) ->
      Binio.Writer.string w k;
      Binio.Writer.string w v)
    t.meta;
  Binio.Writer.varint w (Array.length t.items);
  Array.iter
    (fun it ->
      Binio.Writer.string w it.key;
      Binio.Writer.string w it.spec)
    t.items;
  Binio.Writer.contents w

let id t = Digest.to_hex (Digest.bytes (encode t))

let decode_exn b =
  let r = Binio.Reader.create b in
  Binio.Reader.magic r magic_tag;
  let voff = Binio.Reader.pos r in
  let v = Binio.Reader.varint r in
  if v <> format_version then
    Whisper_error.raise_error ~offset:voff Whisper_error.Manifest
      (Whisper_error.Version_mismatch { got = v; expected = format_version });
  (* every meta pair / item is at least two length bytes *)
  let n_meta = Binio.Reader.count ~per_elem:2 r in
  let meta =
    List.init n_meta (fun _ ->
        let k = Binio.Reader.string r in
        let v = Binio.Reader.string r in
        (k, v))
  in
  let n_items = Binio.Reader.count ~per_elem:2 r in
  let items =
    Array.init n_items (fun _ ->
        let key = Binio.Reader.string r in
        let spec = Binio.Reader.string r in
        { key; spec })
  in
  if not (Binio.Reader.eof r) then
    Whisper_error.raise_error ~offset:(Binio.Reader.pos r)
      Whisper_error.Manifest Whisper_error.Trailing_bytes;
  { meta; items }

let decode b =
  Whisper_error.protect Whisper_error.Manifest (fun () -> decode_exn b)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save t ~path =
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  Binio.to_file tmp (encode t);
  Sys.rename tmp path

let load ~path =
  if not (Sys.file_exists path) then
    Error
      (Whisper_error.make ~context:path Whisper_error.Manifest
         (Whisper_error.Malformed "no such manifest"))
  else
    Whisper_error.protect ~context:path Whisper_error.Manifest (fun () ->
        decode_exn (Binio.of_file path))
