(** The run-time hint buffer (paper §IV, "Run-time hint usage").

    Executing a [brhint] instruction deposits its decoded fields, keyed by
    the covered branch's PC, into this small LRU structure; predicting a
    branch probes it in parallel with the dynamic predictor.  The paper
    finds 32 entries sufficient — the sensitivity knob is exercised by the
    [hintbuf_ablation] bench. *)

type t

val create : size:int -> t
val size : t -> int
val length : t -> int

val insert : t -> branch_pc:int -> Brhint.t -> unit
(** Executed-brhint side effect; refreshes LRU position on re-execution. *)

val probe : t -> branch_pc:int -> Brhint.t option
(** Lookup at prediction time ({b does not} refresh the LRU position: the
    buffer tracks hint executions, not branch executions). *)

val clear : t -> unit

val insertions : t -> int
(** Total inserts (dynamic brhint executions observed). *)

val hits : t -> int
val misses : t -> int
(** Probe statistics (hinted-branch coverage diagnostics). *)
