open Whisper_util

type params = {
  n_tables : int;
  log_entries : int;
  tag_bits : int;
  min_len : int;
  max_len : int;
  log_bimodal : int;
  u_reset_period : int;
}

let default_params =
  {
    n_tables = 12;
    log_entries = 11;
    tag_bits = 9;
    min_len = 8;
    max_len = 1024;
    log_bimodal = 13;
    u_reset_period = 1 lsl 18;
  }

type table = {
  len : int;
  tags : int array;
  ctrs : Bytes.t;  (* 3-bit counters biased by +4: 0..7, taken when >= 4 *)
  us : Bytes.t;  (* 2-bit usefulness *)
  f_idx : History.Folded.t;
  f_tag0 : History.Folded.t;
  f_tag1 : History.Folded.t;
}

type t = {
  p : params;
  idx_mask : int;
  tag_mask : int;
  tables : table array;
  base : Bimodal.table;
  hist : History.t;
  all_folded : History.Folded.t array;  (* flattened, for push_all *)
  rng : Rng.t;  (* allocation tie-breaking, as in reference TAGE *)
  mutable use_alt_on_na : int;  (* 4-bit: prefer altpred for weak new entries *)
  mutable trains : int;
  mutable age_countdown : int;
      (* trains until the next usefulness aging: hits 0 exactly when
         [trains mod u_reset_period = 0], without the per-train division *)
  (* predict-time context *)
  ctx_idx : int array;
  ctx_tag : int array;
  mutable ctx_provider : int;
  mutable ctx_alt : int;
  mutable ctx_provider_pred : bool;
  mutable ctx_alt_pred : bool;
  mutable ctx_pred : bool;
  mutable ctx_weak_new : bool;
  mutable ctx_pc : int;
}

let history_lengths t = Array.map (fun tb -> tb.len) t.tables

let create p =
  if p.n_tables < 1 then invalid_arg "Tage.create";
  let lengths =
    if p.n_tables = 1 then [| p.max_len |]
    else Geometric.series ~a:p.min_len ~n:p.max_len ~m:p.n_tables
  in
  let entries = 1 lsl p.log_entries in
  let hist = History.create ~depth:(max 64 (2 * p.max_len)) in
  let tables =
    Array.map
      (fun len ->
        {
          len;
          tags = Array.make entries (-1);
          ctrs = Bytes.make entries '\004';
          us = Bytes.make entries '\000';
          f_idx = History.Folded.create ~len ~chunk:p.log_entries;
          f_tag0 = History.Folded.create ~len ~chunk:p.tag_bits;
          f_tag1 = History.Folded.create ~len ~chunk:(p.tag_bits - 1);
        })
      lengths
  in
  let all_folded =
    Array.concat
      (Array.to_list
         (Array.map (fun tb -> [| tb.f_idx; tb.f_tag0; tb.f_tag1 |]) tables))
  in
  {
    p;
    idx_mask = entries - 1;
    tag_mask = (1 lsl p.tag_bits) - 1;
    tables;
    base = Bimodal.create_table ~log_entries:p.log_bimodal;
    hist;
    all_folded;
    rng = Rng.create 0x7A6E;
    use_alt_on_na = 8;
    trains = 0;
    age_countdown = p.u_reset_period;
    ctx_idx = Array.make p.n_tables 0;
    ctx_tag = Array.make p.n_tables 0;
    ctx_provider = -1;
    ctx_alt = -1;
    ctx_provider_pred = false;
    ctx_alt_pred = false;
    ctx_pred = false;
    ctx_weak_new = false;
    ctx_pc = 0;
  }

let storage_bits t =
  let per_entry = t.p.tag_bits + 3 + 2 in
  (t.p.n_tables * (t.idx_mask + 1) * per_entry) + Bimodal.bits t.base

let ctr_taken c = Char.code c >= 4
let ctr_weak c = Char.code c = 3 || Char.code c = 4

let predict t ~pc =
  let n = t.p.n_tables in
  t.ctx_pc <- pc;
  (* per-table index hash: pc folded with the table's folded history;
     tag hash: pc folded with the two tag-width folds.  The per-table
     record and the context arrays are fetched once — every index below
     is < n or < table entries by construction, so the unchecked reads
     are safe *)
  let tables = t.tables in
  let ctx_idx = t.ctx_idx and ctx_tag = t.ctx_tag in
  let log_entries = t.p.log_entries in
  let pc2 = pc lsr 2 in
  for i = 0 to n - 1 do
    let tb = Array.unsafe_get tables i in
    Array.unsafe_set ctx_idx i
      (pc2
      lxor (pc lsr (log_entries - (i land 3)))
      lxor History.Folded.value tb.f_idx
      land t.idx_mask);
    Array.unsafe_set ctx_tag i
      (pc2
      lxor History.Folded.value tb.f_tag0
      lxor (History.Folded.value tb.f_tag1 lsl 1)
      land t.tag_mask)
  done;
  (* find provider (longest history match) and alternate (next match) *)
  let provider = ref (-1) and alt = ref (-1) in
  let i = ref (n - 1) in
  while !i >= 0 do
    if
      Array.unsafe_get (Array.unsafe_get tables !i).tags
        (Array.unsafe_get ctx_idx !i)
      = Array.unsafe_get ctx_tag !i
    then begin
      if !provider < 0 then provider := !i
      else if !alt < 0 then begin
        alt := !i;
        i := 0
      end
    end;
    decr i
  done;
  let base_pred = Bimodal.predict_t t.base ~pc in
  let alt_pred =
    if !alt >= 0 then
      ctr_taken (Bytes.unsafe_get t.tables.(!alt).ctrs t.ctx_idx.(!alt))
    else base_pred
  in
  let pred, weak_new =
    if !provider >= 0 then begin
      let tb = t.tables.(!provider) in
      let c = Bytes.unsafe_get tb.ctrs t.ctx_idx.(!provider) in
      let u = Char.code (Bytes.unsafe_get tb.us t.ctx_idx.(!provider)) in
      let weak_new = ctr_weak c && u = 0 in
      let p_pred = ctr_taken c in
      t.ctx_provider_pred <- p_pred;
      if weak_new && t.use_alt_on_na >= 8 then (alt_pred, weak_new)
      else (p_pred, weak_new)
    end
    else begin
      t.ctx_provider_pred <- base_pred;
      (base_pred, false)
    end
  in
  t.ctx_provider <- !provider;
  t.ctx_alt <- !alt;
  t.ctx_alt_pred <- alt_pred;
  t.ctx_pred <- pred;
  t.ctx_weak_new <- weak_new;
  pred

let confidence t =
  if t.ctx_provider < 0 then `Med
  else
    let c =
      Char.code
        (Bytes.unsafe_get t.tables.(t.ctx_provider).ctrs
           t.ctx_idx.(t.ctx_provider))
    in
    match abs ((2 * c) - 7) with 7 | 5 -> `High | 3 -> `Med | _ -> `Low

let update_ctr bytes i ~taken =
  let c = Char.code (Bytes.unsafe_get bytes i) in
  Bytes.unsafe_set bytes i
    (Char.unsafe_chr (Counters.update c ~taken ~min:0 ~max:7))

let update_u tb i ~delta =
  let u = Char.code (Bytes.unsafe_get tb.us i) in
  let u = if delta > 0 then Counters.inc u ~max:3 else Counters.dec u ~min:0 in
  Bytes.unsafe_set tb.us i (Char.unsafe_chr u)

let age_us t =
  Array.iter
    (fun tb ->
      for i = 0 to t.idx_mask do
        let u = Char.code (Bytes.unsafe_get tb.us i) in
        Bytes.unsafe_set tb.us i (Char.unsafe_chr (u lsr 1))
      done)
    t.tables

let allocate t ~taken =
  (* allocate in a table longer than the provider whose entry is not
     useful; start one past the provider with a random skip to spread
     allocations (reference TAGE behaviour). *)
  let n = t.p.n_tables in
  let start = t.ctx_provider + 1 in
  if start < n then begin
    let start = start + if Rng.int t.rng 4 = 0 then 1 else 0 in
    let start = min start (n - 1) in
    let allocated = ref false in
    let i = ref start in
    while (not !allocated) && !i < n do
      let tb = t.tables.(!i) in
      let idx = t.ctx_idx.(!i) in
      if Char.code (Bytes.unsafe_get tb.us idx) = 0 then begin
        tb.tags.(idx) <- t.ctx_tag.(!i);
        Bytes.unsafe_set tb.ctrs idx (if taken then '\004' else '\003');
        allocated := true
      end
      else incr i
    done;
    if not !allocated then
      for j = start to n - 1 do
        update_u t.tables.(j) t.ctx_idx.(j) ~delta:(-1)
      done
  end

let train t ~pc ~taken =
  if pc <> t.ctx_pc then invalid_arg "Tage.train: predict/train mismatch";
  let correct = t.ctx_pred = taken in
  (* use-alt-on-newly-allocated bookkeeping *)
  if
    t.ctx_provider >= 0 && t.ctx_weak_new
    && t.ctx_provider_pred <> t.ctx_alt_pred
  then begin
    if t.ctx_alt_pred = taken then
      t.use_alt_on_na <- Counters.inc t.use_alt_on_na ~max:15
    else t.use_alt_on_na <- Counters.dec t.use_alt_on_na ~min:0
  end;
  (* provider counter update *)
  if t.ctx_provider >= 0 then begin
    let tb = t.tables.(t.ctx_provider) in
    let idx = t.ctx_idx.(t.ctx_provider) in
    update_ctr tb.ctrs idx ~taken;
    if t.ctx_provider_pred <> t.ctx_alt_pred then
      update_u tb idx ~delta:(if t.ctx_provider_pred = taken then 1 else -1);
    (* base is trained as the fallback alternate *)
    if t.ctx_alt < 0 then Bimodal.update_t t.base ~pc ~taken
  end
  else Bimodal.update_t t.base ~pc ~taken;
  (* allocation on misprediction *)
  if not correct then allocate t ~taken;
  (* graceful aging of usefulness *)
  t.trains <- t.trains + 1;
  t.age_countdown <- t.age_countdown - 1;
  if t.age_countdown = 0 then begin
    age_us t;
    t.age_countdown <- t.p.u_reset_period
  end;
  History.push_all t.hist t.all_folded taken

let spectate t ~pc:_ ~taken = History.push_all t.hist t.all_folded taken

let predictor p =
  let t = create p in
  {
    Predictor.name = Printf.sprintf "tage-%dt-2^%d" p.n_tables p.log_entries;
    predict = (fun ~pc -> predict t ~pc);
    train = (fun ~pc ~taken -> train t ~pc ~taken);
    spectate = (fun ~pc ~taken -> spectate t ~pc ~taken);
    storage_bits = storage_bits t;
    is_oracle = false;
  }

let exec t ~pc ~taken =
  let pred = predict t ~pc in
  train t ~pc ~taken;
  pred = taken

let compiled p =
  let name = Printf.sprintf "tage-%dt-2^%d" p.n_tables p.log_entries in
  let storage_bits =
    (* same accounting as [storage_bits], without building the tables *)
    (p.n_tables * (1 lsl p.log_entries) * (p.tag_bits + 3 + 2))
    + (2 * (1 lsl p.log_bimodal))
  in
  {
    Predictor.Compiled.name;
    storage_bits;
    fill =
      (fun ~arena ~n ~verdicts ->
        let t = create p in
        for i = 0 to n - 1 do
          let pc = Whisper_trace.Arena.pc arena i in
          let taken = Whisper_trace.Arena.taken arena i in
          Bytes.unsafe_set verdicts i
            (if exec t ~pc ~taken then '\001' else '\000')
        done);
  }
