(** Canonical bounded multisets of fixed-stride byte records — the
    merge kernel behind incremental profile accumulation.

    A continuously-profiling fleet delivers sample chunks out of order,
    duplicated and interleaved across hosts; the accumulated profile
    must nevertheless be {e one} deterministic artifact.  This module
    provides the algebra that makes that possible: a multiset of
    equal-size byte records kept in lexicographic order and capped to
    the [cap] {e smallest} records.

    Keeping the N lexicographically smallest elements of a multiset
    union is associative, commutative and independent of delivery
    order: every grouping of [add_all]s over the same record multiset
    yields byte-identical {!contents} (ties are byte-equal records, so
    any tie-break produces the same bytes).  That algebraic fact — not
    any property of the caller — is what lets chunk ingestion promise
    byte-identical accumulated profiles under permutation, and it is
    property-tested directly. *)

type t

val create : stride:int -> cap:int -> t
(** A fresh empty multiset of [stride]-byte records keeping at most
    [cap] records.  @raise Invalid_argument unless [stride > 0] and
    [cap >= 0]. *)

val stride : t -> int
val cap : t -> int

val length : t -> int
(** Records currently kept (always [<= cap]). *)

val seen : t -> int
(** Records ever offered via {!add} / {!add_all}, including those
    dropped by the cap. *)

val add : t -> Bytes.t -> off:int -> unit
(** Insert one record read from [buf.(off .. off+stride-1)], keeping
    the multiset sorted and dropping the largest record when the cap
    is exceeded.  @raise Invalid_argument on an out-of-bounds slice. *)

val add_all : t -> other:t -> unit
(** Merge [other]'s kept records into [t] ([other] is unchanged).
    Equivalent to {!add}-ing each of [other]'s records.
    @raise Invalid_argument on a stride mismatch. *)

val iter : t -> f:(Bytes.t -> off:int -> unit) -> unit
(** Visit kept records smallest-first.  The buffer handed to [f]
    aliases internal storage — read-only, and only inside the call. *)

val contents : t -> bytes
(** The kept records, packed smallest-first — the canonical encoding
    two equal multisets agree on byte-for-byte. *)

val equal : t -> t -> bool
(** Same stride and identical kept records ([seen] may differ). *)
