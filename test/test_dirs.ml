(* Temp-dir helper for tests that exercise the persistent caches.
   [fresh name] hands out a unique path under the system temp directory
   and registers it for recursive removal at process exit, so
   `dune runtest` leaves no cache litter behind (the repo .gitignore
   keeps the old `_test_cache_*` patterns only as a backstop).

   No toplevel side effects beyond ref cells: this module is linked into
   every test executable. *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let registered : string list ref = ref []
let counter = ref 0
let cleanup_installed = ref false

let fresh name =
  incr counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "whisper_test_%s_%d_%d" name (Unix.getpid ()) !counter)
  in
  if not !cleanup_installed then begin
    cleanup_installed := true;
    at_exit (fun () ->
        List.iter (fun d -> try rm_rf d with _ -> ()) !registered)
  end;
  registered := dir :: !registered;
  (* caches mkdir their roots themselves; make sure a stale run's
     leftovers never leak state into this one *)
  (try rm_rf dir with _ -> ());
  dir
