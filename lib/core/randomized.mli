(** Randomized formula testing (paper §III-B).

    Whisper shuffles the whole formula id space once with a Fisher–Yates
    permutation and reuses the same order for every branch, testing only
    a prefix (0.1 % by default) as Algorithm 1 candidates.  Truth tables
    for tested formulas are cached — the same ids recur for every
    (branch, history-length) pair by construction. *)

type t

val create : Config.t -> t
(** Shuffles the id space determined by [Config.ops] (32768 extended /
    128 classic formulas for 8 hash bits) with the config seed. *)

val candidates : t -> int array
(** The id prefix tested per branch (length {!Config.explore_count}; the
    full space when [explore_frac >= 1]). *)

val candidates_n : t -> int -> int array
(** First [n] ids of the permutation (for exploration sweeps, Fig. 15). *)

val space : t -> int
(** Size of the searched space. *)

val truth_of : t -> int -> Bytes.t
(** Memoized truth table of a formula id. *)

val tree_of : t -> int -> Whisper_formula.Tree.t
(** Decode an id according to the configured op family (classic ids are
    embedded in [And]/[Or]-only trees). *)
