type t = (int, int) Hashtbl.t

let create ?(size_hint = 64) () : t = Hashtbl.create size_hint

let add t k n =
  match Hashtbl.find_opt t k with
  | Some c -> Hashtbl.replace t k (c + n)
  | None -> Hashtbl.add t k n

let incr t k = add t k 1

let count t k = Option.value ~default:0 (Hashtbl.find_opt t k)

let total t = Hashtbl.fold (fun _ c acc -> acc + c) t 0

let cardinal t = Hashtbl.length t

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []

let iter f t = Hashtbl.iter f t

let fold f t init = Hashtbl.fold f t init

let to_sorted_list t =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let by_count_desc t =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) t []
  |> List.sort (fun (k1, c1) (k2, c2) ->
         match compare c2 c1 with 0 -> compare k1 k2 | n -> n)

let merge_into ~dst ~src = Hashtbl.iter (fun k c -> add dst k c) src

let copy t = Hashtbl.copy t
