let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let parity x = popcount x land 1

let mask n =
  if n < 0 || n > 62 then invalid_arg "Bitops.mask";
  if n = 0 then 0 else (1 lsl n) - 1

let get_bit x i = (x lsr i) land 1

let set_bit x i = x lor (1 lsl i)

let fold_gen op x ~width ~chunk =
  if chunk <= 0 || chunk > 62 then invalid_arg "Bitops.fold";
  let m = mask chunk in
  let rec go x acc remaining =
    if remaining <= 0 then acc
    else go (x lsr chunk) (op acc (x land m)) (remaining - chunk)
  in
  go x 0 width land m

let fold_xor = fold_gen ( lxor )

(* AND-folding must start from all-ones, not zero, or the result is always
   zero; we special-case the accumulator seed. *)
let fold_and x ~width ~chunk =
  if chunk <= 0 || chunk > 62 then invalid_arg "Bitops.fold";
  let m = mask chunk in
  let rec go x acc remaining =
    if remaining <= 0 then acc
    else go (x lsr chunk) (acc land x land m) (remaining - chunk)
  in
  go x m width land m

let fold_or = fold_gen ( lor )

let reverse_bits x ~width =
  let rec go x acc i =
    if i >= width then acc else go (x lsr 1) ((acc lsl 1) lor (x land 1)) (i + 1)
  in
  go x 0 0

let log2_ceil n =
  if n < 1 then invalid_arg "Bitops.log2_ceil";
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let to_bit_list x ~width = List.init width (fun i -> get_bit x i)
