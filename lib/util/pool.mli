(** Fixed-size domain pool for fanning independent tasks out across
    cores (OCaml 5 [Domain] + [Mutex]/[Condition], no external deps).

    Tasks are closures pushed onto a bounded queue; a fixed set of worker
    domains drains it.  Exceptions raised by a task are captured in that
    task's future and never take a worker down, so one failing task
    cannot wedge the pool.  [map] preserves input order, which keeps
    parallel experiment tables byte-identical to sequential ones. *)

type t
(** A running pool of worker domains. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val create : ?queue_capacity:int -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains ([jobs >= 1]).
    [queue_capacity] bounds the task queue (default [4 * jobs]);
    {!submit} blocks while the queue is full. *)

val jobs : t -> int
(** Number of worker domains. *)

type 'a future
(** Handle for one submitted task's eventual outcome. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task; blocks while the queue is at capacity.
    @raise Invalid_argument if the pool has been shut down. *)

val await : 'a future -> ('a, exn) result
(** Block until the task has run; [Error e] if it raised [e]. *)

val await_timeout : 'a future -> seconds:float -> ('a, exn) result option
(** Like {!await} but bounded: [None] if the task has not finished
    within [seconds].  The task itself keeps running on its worker
    (domains cannot be cancelled); only the wait gives up. *)

val shutdown : t -> unit
(** Drain the queue, then join every worker.  Idempotent. *)

val slices : n:int -> chunks:int -> (int * int) array
(** [slices ~n ~chunks] partitions the index range [0, n) into at most
    [chunks] contiguous half-open [(lo, hi)] ranges of near-equal size
    (empty for [n = 0]).  Deterministic in [(n, chunks)] alone, so
    per-element work fanned out over the slices and concatenated back in
    slice order is independent of worker count. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Order-preserving parallel map over a transient pool: [(map f xs).(i)]
    is the outcome of [f xs.(i)].  With [jobs <= 1] (default
    {!default_jobs}) the calls run sequentially in the caller's domain;
    either way per-element exceptions are captured, not raised.

    Each call spawns and joins its own domains — fine for long batches,
    ruinous for millisecond workloads.  Short or repeated fan-outs should
    use {!map_pool} / {!fanout} over a persistent pool instead. *)

(** {2 Persistent-pool scheduling}

    Spawning a domain costs on the order of a millisecond; the seed
    per-call [map] paid it on every analysis, which is where the old
    sub-1x "parallel speedup" went (DESIGN.md §12).  These entry points
    reuse a long-lived pool so dispatch cost is an enqueue, not a spawn.
    Both degrade to inline sequential execution when called from inside
    a pool worker, so nested fan-out can never deadlock the pool. *)

val am_worker : unit -> bool
(** Whether the calling domain is a pool worker (any pool). *)

val map_pool : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** {!map} semantics on an existing pool: order-preserving, per-element
    exceptions captured, no spawn/join.  The pool is left running. *)

val fanout : t -> width:int -> (unit -> unit) -> unit
(** Run [width] concurrent copies of a self-scheduling task body —
    [width - 1] on pool workers plus one inline in the calling domain —
    and return when all have finished.  [width] is clamped to
    [jobs t + 1]; [width <= 1] runs the body once inline.  The body is
    expected to claim its own work (e.g. chunks off an atomic cursor),
    so copies are interchangeable.  The first exception raised by any
    copy is re-raised after all copies finish. *)

val shared : jobs:int -> t
(** The process-wide persistent pool, created on first use and grown
    (never shrunk) to the widest [jobs] ever requested.  Serves every
    repeated short-lived fan-out in the process — analysis chunk
    claiming, batch phases — so worker domains are spawned once per
    process instead of once per call.  Never shut it down; it lives for
    the whole process. *)

(** {2 Timeouts and retries}

    The degraded-mode batch driver runs each work item under a bounded
    per-task timeout and a retry-with-exponential-backoff policy, so a
    wedged or crashing task delays its own slot instead of stalling the
    whole run. *)

type policy = {
  attempts : int;  (** total tries per element, >= 1 *)
  timeout_s : float option;  (** per-attempt wall budget; [None] = unbounded *)
  backoff_s : float;
      (** sleep before retry [k] is [backoff_s * 2^(k-2)] seconds *)
}

val default_policy : policy
(** One attempt, no timeout, 50 ms base backoff — i.e. plain {!map}
    semantics. *)

val map_retry :
  ?jobs:int ->
  policy:policy ->
  (attempt:int -> 'a -> 'b) ->
  'a array ->
  ('b, exn) result array
(** Order-preserving parallel map with per-element retries: element [i]
    is tried up to [policy.attempts] times ([f ~attempt:k xs.(i)], [k]
    starting at 1), each attempt bounded by [policy.timeout_s].  A
    timed-out attempt surfaces as [Error (Whisper_error.Error _)] with
    kind [Timeout]; the abandoned task keeps its worker busy until it
    finishes on its own, while other elements proceed on the remaining
    workers.  All first attempts are enqueued up front, so elements run
    concurrently; retries are scheduled as their predecessors resolve. *)
