(** Hashed history correlation: per-branch selection of the history
    length and Boolean formula that minimize profiled mispredictions
    (paper §III-A).

    For every candidate length in the geometric series, the branch's
    profile samples are grouped into taken/not-taken tables keyed by the
    hashed history at that length; Algorithm 1 then scores the randomized
    candidate formulas, alongside the two bias hints (always/never
    taken).  The best (length, formula-or-bias) pair is compared against
    the baseline predictor's misprediction count on the same samples —
    only a branch the formula beats gets a hint (otherwise it is left to
    the dynamic predictor). *)

type choice = {
  len_idx : int;
  formula_id : int;
  bias : Brhint.bias;
  sample_mispred : int;  (** mispredictions of this choice on the profile *)
  baseline_mispred : int;  (** baseline mispredictions on the same samples *)
  samples : int;
}

val decide :
  ?min_gain:int ->
  Config.t ->
  Randomized.t ->
  Whisper_trace.Profile.t ->
  pc:int ->
  choice option
(** [None] when the branch has no samples or no choice beats the baseline
    by at least [min_gain] (default from config). *)

val decide_at_length :
  Randomized.t ->
  Whisper_trace.Profile.t ->
  pc:int ->
  len_idx:int ->
  (int * int) option
(** Best (formula_id, mispredictions) at one fixed length — the building
    block of {!decide}, exposed for the Fig. 15 exploration sweep. *)

val best_possible_at_length :
  Randomized.t ->
  Whisper_trace.Profile.t ->
  pc:int ->
  len_idx:int ->
  explore:int ->
  (int * int) option
(** Like {!decide_at_length} but testing the first [explore] formulas of
    the shared permutation. *)
