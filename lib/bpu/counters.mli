(** Saturating-counter arithmetic shared by every table-based predictor. *)

val inc : int -> max:int -> int
(** Increment, saturating at [max]. *)

val dec : int -> min:int -> int
(** Decrement, saturating at [min]. *)

val update : int -> taken:bool -> min:int -> max:int -> int
(** Move a counter toward taken (up) or not-taken (down). *)

val taken_of : int -> mid:int -> bool
(** Direction read-out: counter value [>= mid] means taken. *)
