(** Persistent on-disk cache of packed trace-replay arenas
    ({!Whisper_trace.Arena}), so repeated CLI invocations skip the
    decode-once generation step entirely and replay straight from disk.

    Same durability contract as {!Result_cache}: one file per arena named
    by the digest of its key, a magic tag + format version + full-key
    envelope on top of the arena codec's own version, corrupt or stale
    entries dropped (and counted) on read with the caller regenerating,
    and writes through a per-domain temp file plus atomic rename so
    concurrent workers never expose partial entries. *)

type t

type counters = { write_failures : int; corrupt_dropped : int }

val default_subdir : string
(** ["arenas"] — the subdirectory of the result-cache root the runner
    places arena entries under. *)

val create :
  ?corrupt:(key:string -> bytes -> bytes) -> dir:string -> unit -> t
(** Create the directory (and parents) if needed.  [corrupt] is the
    fault-injection read hook, as in {!Result_cache.create}. *)

val dir : t -> string
val counters : t -> counters

val path : t -> key:string -> string
(** The entry file a given key maps to (for tests/tooling). *)

val find : t -> key:string -> Whisper_trace.Arena.t option
(** [None] on miss or on a corrupt/stale entry (which is deleted and
    counted under [corrupt_dropped]). *)

val store : t -> key:string -> Whisper_trace.Arena.t -> unit
(** Best-effort; failures are swallowed and counted. *)

val encode : key:string -> Whisper_trace.Arena.t -> bytes

val decode :
  key:string ->
  bytes ->
  (Whisper_trace.Arena.t, Whisper_util.Whisper_error.t) result
(** Total: corrupt input, version skew and key mismatch all come back as
    typed [Error]s (stage [Arena_cache]). *)

val decode_exn : key:string -> bytes -> Whisper_trace.Arena.t
(** @raise Whisper_util.Whisper_error.Error on corrupt input. *)

val format_version : int
