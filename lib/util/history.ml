type t = {
  buf : Bytes.t;
  cap : int;
  mutable head : int; (* index of the most recent outcome *)
  mutable pushed : int;
}

let create ~depth =
  if depth <= 0 then invalid_arg "History.create";
  { buf = Bytes.make depth '\000'; cap = depth; head = 0; pushed = 0 }

let depth t = t.cap

let push t taken =
  (* head is always in [0, cap): the compare-based wraparound is exactly
     [(head + 1) mod cap] without the hot-loop integer division *)
  let h = t.head + 1 in
  t.head <- (if h >= t.cap then 0 else h);
  Bytes.unsafe_set t.buf t.head (if taken then '\001' else '\000');
  t.pushed <- t.pushed + 1

let get t i =
  if i < 0 then invalid_arg "History.get";
  if i >= t.cap then 0
  else
    let idx = t.head - i in
    let idx = if idx < 0 then idx + t.cap else idx in
    Char.code (Bytes.unsafe_get t.buf idx)

let length_pushed t = t.pushed

let raw_window t n =
  if n < 0 || n > 62 then invalid_arg "History.raw_window";
  let rec go i acc = if i >= n then acc else go (i + 1) (acc lor (get t i lsl i)) in
  go 0 0

let hash_window t ~len ~chunk =
  if chunk <= 0 || chunk > 62 then invalid_arg "History.hash_window";
  let acc = ref 0 in
  for j = 0 to len - 1 do
    acc := !acc lxor (get t j lsl (j mod chunk))
  done;
  !acc

module Folded = struct
  type h = t

  type t = {
    f_len : int;
    f_chunk : int;
    f_mask : int;
    out_pos : int; (* len mod chunk: position where the outgoing bit lands *)
    mutable value : int;
  }

  let create ~len ~chunk =
    if len <= 0 || chunk <= 0 || chunk > 62 then invalid_arg "Folded.create";
    {
      f_len = len;
      f_chunk = chunk;
      f_mask = Bitops.mask chunk;
      out_pos = len mod chunk;
      value = 0;
    }

  let len t = t.f_len
  let chunk t = t.f_chunk
  let value t = t.value

  let update t ~(history : h) ~newest =
    (* Every live bit ages by one (circular left rotate), the new bit enters
       at position 0, and the bit of age len-1 leaves via position
       len mod chunk. *)
    let rot =
      ((t.value lsl 1) lor (t.value lsr (t.f_chunk - 1))) land t.f_mask
    in
    let incoming = if newest then 1 else 0 in
    let outgoing = get history (t.f_len - 1) in
    t.value <- rot lxor incoming lxor (outgoing lsl t.out_pos)
end

(* Explicit loop: [Array.iter] would allocate the capturing closure on
   every call, and this runs once per event under every TAGE instance. *)
let push_all t regs taken =
  for i = 0 to Array.length regs - 1 do
    Folded.update (Array.unsafe_get regs i) ~history:t ~newest:taken
  done;
  push t taken
