(** One function per table/figure of the paper's evaluation.  Each returns
    a {!Report.t} whose rows mirror what the paper plots; EXPERIMENTS.md
    records the paper-vs-measured comparison. *)

val table1 : unit -> Report.t
(** Applications and workloads under study. *)

val table2 : unit -> Report.t
(** Simulator parameters. *)

val table3 : unit -> Report.t
(** Whisper design-parameter values. *)

val fig1 : Runner.ctx -> Report.t
(** Limit study: ideal-direction-predictor speedup over the 64 KB
    baseline, split into misprediction-stall and frontend-stall savings. *)

val fig2 : Runner.ctx -> Report.t
(** Branch-MPKI of the 64 KB TAGE-SC-L per application. *)

val fig3 : Runner.ctx -> Report.t
(** Misprediction class breakdown (compulsory/capacity/conflict/
    conditional-on-data). *)

val fig4 : Runner.ctx -> Report.t
(** Misprediction reduction of prior profile-guided techniques. *)

val fig5 : Runner.ctx -> Report.t
(** CDF of mispredictions over static branches (SPEC-like and
    data-center applications) at power-of-two branch counts. *)

val fig6 : Runner.ctx -> Report.t
(** Distribution of Whisper-avoided mispredictions over correlation
    history lengths (paper buckets 1-8 … 1024). *)

val fig7 : Runner.ctx -> Report.t
(** Distribution of profiled branch executions over the logical operation
    of their best formula. *)

val fig12 : Runner.ctx -> Report.t
(** Speedup over the 64 KB baseline for every technique, Whisper,
    MTAGE-SC and the ideal predictor. *)

val fig13 : Runner.ctx -> Report.t
(** Misprediction reduction for every technique and Whisper. *)

val fig14 : Runner.ctx -> Report.t
(** Whisper's gains over 8b-ROMBF, split between hashed history
    correlation and the Implication/Converse-Non-Implication extension. *)

val fig15 : ?app:string -> Runner.ctx -> Report.t
(** Exploration-fraction sweep: misprediction reduction and training time
    vs % of formulas explored (single representative application;
    hint coverage fixed across points). *)

val fig16 : Runner.ctx -> Report.t
(** Offline training time per technique (seconds, per application mean). *)

val fig17 : Runner.ctx -> Report.t
(** Input sensitivity: reduction with the training-input profile vs a
    same-input profile, per application and test input. *)

val fig18 : Runner.ctx -> Report.t
(** Merged profiles from 1–5 inputs (8b-ROMBF / unlimited BranchNet /
    Whisper averages). *)

val fig19 : Runner.ctx -> Report.t
(** Static and dynamic instruction overhead of injected brhints. *)

val fig20 : Runner.ctx -> Report.t
(** Whisper's misprediction reduction over a 128 KB TAGE-SC-L. *)

val fig21 : Runner.ctx -> Report.t
(** Baseline-size sweep 8 KB – 1 MB: average misprediction reduction. *)

val fig22 : Runner.ctx -> Report.t
(** Warm-up sweep 0–90 %: average misprediction reduction computed over
    the post-warm-up suffix. *)

val fig23 : Runner.ctx -> Report.t
(** Simulated-trace-length sweep: average misprediction reduction over
    growing event-count prefixes. *)

val all_ids : string list
(** Every experiment id, in paper order. *)

val by_id : string -> (Runner.ctx -> Report.t) option
(** Lookup an experiment by id ("table1" … "fig23"). *)
