(** Two-level adaptive predictors (Yeh & Patt, MICRO'91) — the classic
    local-history family the paper's related work builds on (§VI cites
    the two-level training scheme among history-based predictors).

    PAg organization: a first-level table of per-branch history registers
    indexes a shared second-level pattern table of 2-bit counters. *)

val pag : ?log_bhr:int -> ?hist_bits:int -> ?log_pht:int -> unit -> Predictor.t
(** [pag ()] with defaults: 2^10 history registers of 10 bits, 2^12
    pattern counters. *)

val gag : ?hist_bits:int -> ?log_pht:int -> unit -> Predictor.t
(** GAg: a single global history register indexing the pattern table. *)
