(** Persistent on-disk cache of timing-model results, so re-running
    [whisper experiment] only simulates configurations that changed.

    Entries live under a cache directory (default [_whisper_cache/]),
    one file per result, named by the digest of its key — the same
    [technique_key × app × inputs × events × baseline_kb] string the
    in-memory memo table uses.  Files carry a magic tag, a format
    version and the full key; anything that fails to decode (trailing
    garbage, version bump, digest collision, torn write) is treated as
    a miss and removed, and the caller recomputes.  Writes go through a
    per-domain temp file and an atomic rename, so concurrent workers
    never expose partial entries.

    Both degradation paths are counted (see {!counters}): entries
    dropped because they failed to decode, and writes that could not be
    persisted.  A fleet run surfaces the totals in its report summary
    rather than silently losing cache effectiveness. *)

type t

type counters = { write_failures : int; corrupt_dropped : int }

val default_dir : string
(** ["_whisper_cache"] *)

val create :
  ?corrupt:(key:string -> bytes -> bytes) -> ?dir:string -> unit -> t
(** Create the directory (and parents) if needed.  [corrupt] is a
    read-path hook applied to entry bytes before decoding — used by the
    fault-injection harness to model on-disk bit rot; production callers
    omit it. *)

val dir : t -> string

val counters : t -> counters
(** Snapshot of the degradation counters accumulated so far. *)

val path : t -> key:string -> string
(** The entry file a given key maps to (for tests/tooling). *)

val find : t -> key:string -> Whisper_pipeline.Machine.result option
(** [None] on miss or on a corrupt/stale entry (which is deleted and
    counted under [corrupt_dropped]). *)

val store : t -> key:string -> Whisper_pipeline.Machine.result -> unit
(** Best-effort: write failures (read-only or bogus cache directory,
    disk full) are swallowed and counted under [write_failures] — the
    result simply is not cached. *)

val encode : key:string -> Whisper_pipeline.Machine.result -> bytes

val decode :
  key:string ->
  bytes ->
  (Whisper_pipeline.Machine.result, Whisper_util.Whisper_error.t) result
(** Total: corrupt input, version skew and key mismatch all come back
    as typed [Error]s carrying the byte offset of the fault. *)

val decode_exn : key:string -> bytes -> Whisper_pipeline.Machine.result
(** @raise Whisper_util.Whisper_error.Error on corrupt input, version
    or key mismatch. *)

val format_version : int
