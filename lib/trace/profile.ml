open Whisper_util

type branch_stat = {
  mutable execs : int;
  mutable taken_cnt : int;
  mutable mispred : int;
}

(* Packed sample layout: raw8 (1 byte), raw56 (7 bytes, the last 56 raw
   outcomes for techniques that consume unhashed history), one hash byte
   per series length, flags (1 byte: bit0 = taken, bit1 = predictor
   correct). *)
type samples = { mutable buf : Bytes.t; mutable n : int; mutable seen : int }

type t = {
  p_lengths : int array;
  chunk : int;
  record_bytes : int;
  stats : (int, branch_stat) Hashtbl.t;
  samples : (int, samples) Hashtbl.t;
  mutable total_instrs : int;
  mutable total_branches : int;
  mutable total_mispred : int;
}

let lengths t = t.p_lengths
let n_lengths t = Array.length t.p_lengths
let total_instrs t = t.total_instrs
let total_branches t = t.total_branches
let total_mispred t = t.total_mispred

let stat t ~pc = Hashtbl.find_opt t.stats pc
let iter_stats t ~f = Hashtbl.iter (fun pc s -> f ~pc s) t.stats
let n_static_branches t = Hashtbl.length t.stats

let mpki t =
  if t.total_instrs = 0 then 0.0
  else 1000.0 *. float_of_int t.total_mispred /. float_of_int t.total_instrs

let candidates t =
  let arr =
    Hashtbl.fold (fun pc _ acc -> pc :: acc) t.samples []
    |> Array.of_list
  in
  Array.sort
    (fun a b ->
      let ma = match stat t ~pc:a with Some s -> s.mispred | None -> 0 in
      let mb = match stat t ~pc:b with Some s -> s.mispred | None -> 0 in
      match compare mb ma with 0 -> compare a b | c -> c)
    arr;
  arr

let n_samples t ~pc =
  match Hashtbl.find_opt t.samples pc with Some s -> s.n | None -> 0

let iter_samples t ~pc ~f =
  match Hashtbl.find_opt t.samples pc with
  | None -> ()
  | Some s ->
      let rb = t.record_bytes in
      let nl = Array.length t.p_lengths in
      for i = 0 to s.n - 1 do
        let base = i * rb in
        let raw8 = Char.code (Bytes.unsafe_get s.buf base) in
        let raw56 = ref 0 in
        for b = 6 downto 0 do
          raw56 := (!raw56 lsl 8) lor Char.code (Bytes.unsafe_get s.buf (base + 1 + b))
        done;
        let hash idx =
          if idx < 0 || idx >= nl then invalid_arg "Profile.hash index";
          Char.code (Bytes.unsafe_get s.buf (base + 8 + idx))
        in
        let flags = Char.code (Bytes.unsafe_get s.buf (base + 8 + nl)) in
        f ~raw8 ~raw56:!raw56 ~hash ~taken:(flags land 1 = 1)
          ~correct:(flags land 2 = 2)
      done

(* Zero-copy window into a branch's packed sample records, for consumers
   that decode the fields inline (the single-pass tabulation in
   History_select reads only the hash bytes and flags, skipping the raw56
   reconstruction iter_samples pays for every record). *)
type raw_view = {
  buf : Bytes.t;
  n : int;
  record_bytes : int;
  hash_off : int;
  flags_off : int;
}

let raw_view t ~pc =
  match Hashtbl.find_opt t.samples pc with
  | None -> None
  | Some s ->
      Some
        {
          buf = s.buf;
          n = s.n;
          record_bytes = t.record_bytes;
          hash_off = 8;
          flags_off = 8 + Array.length t.p_lengths;
        }

let create_empty ?(chunk = 8) ~lengths () =
  {
    p_lengths = Array.copy lengths;
    chunk;
    record_bytes = 1 + 7 + Array.length lengths + 1;
    stats = Hashtbl.create 4096;
    samples = Hashtbl.create 512;
    total_instrs = 0;
    total_branches = 0;
    total_mispred = 0;
  }

let record_event t ~pc ~taken ~correct ~instrs =
  let s =
    match Hashtbl.find_opt t.stats pc with
    | Some s -> s
    | None ->
        let s = { execs = 0; taken_cnt = 0; mispred = 0 } in
        Hashtbl.add t.stats pc s;
        s
  in
  s.execs <- s.execs + 1;
  if taken then s.taken_cnt <- s.taken_cnt + 1;
  if not correct then s.mispred <- s.mispred + 1;
  t.total_instrs <- t.total_instrs + instrs;
  t.total_branches <- t.total_branches + 1;
  if not correct then t.total_mispred <- t.total_mispred + 1

let write_sample t (s : samples) ~slot ~raw8 ~raw56 ~hashes ~taken ~correct =
  let nl = Array.length t.p_lengths in
  let need = (slot + 1) * t.record_bytes in
  if need > Bytes.length s.buf then begin
    let nb = Bytes.create (max (2 * Bytes.length s.buf) need) in
    Bytes.blit s.buf 0 nb 0 (s.n * t.record_bytes);
    s.buf <- nb
  end;
  let base = slot * t.record_bytes in
  Bytes.unsafe_set s.buf base (Char.unsafe_chr (raw8 land 0xFF));
  for b = 0 to 6 do
    Bytes.unsafe_set s.buf (base + 1 + b)
      (Char.unsafe_chr ((raw56 lsr (8 * b)) land 0xFF))
  done;
  for i = 0 to nl - 1 do
    Bytes.unsafe_set s.buf (base + 8 + i) (Char.unsafe_chr (hashes.(i) land 0xFF))
  done;
  let flags = (if taken then 1 else 0) lor if correct then 2 else 0 in
  Bytes.unsafe_set s.buf (base + 8 + nl) (Char.unsafe_chr flags)

let sample_slot t pc =
  match Hashtbl.find_opt t.samples pc with
  | Some s -> s
  | None ->
      let s = { buf = Bytes.create (t.record_bytes * 64); n = 0; seen = 0 } in
      Hashtbl.add t.samples pc s;
      s

let restore_stat t ~pc ~execs ~taken_cnt ~mispred =
  Hashtbl.replace t.stats pc { execs; taken_cnt; mispred }

let set_totals t ~instrs ~branches ~mispred =
  t.total_instrs <- instrs;
  t.total_branches <- branches;
  t.total_mispred <- mispred

let add_sample ?(raw56 = 0) t ~pc ~raw8 ~hashes ~taken ~correct =
  if Array.length hashes <> Array.length t.p_lengths then
    invalid_arg "Profile.add_sample";
  let s = sample_slot t pc in
  write_sample t s ~slot:s.n ~raw8 ~raw56 ~hashes ~taken ~correct;
  s.n <- s.n + 1;
  s.seen <- s.seen + 1

(* Vitter's reservoir sampling: keeps a uniform sample of each branch's
   executions, so the profile reflects steady-state predictor behaviour
   rather than the warm-up prefix. *)
let reservoir_sample t rng ~pc ~max_samples ~raw8 ~raw56 ~hashes ~taken ~correct =
  let s = sample_slot t pc in
  s.seen <- s.seen + 1;
  if s.n < max_samples then begin
    write_sample t s ~slot:s.n ~raw8 ~raw56 ~hashes ~taken ~correct;
    s.n <- s.n + 1
  end
  else begin
    let j = Rng.int rng s.seen in
    if j < max_samples then
      write_sample t s ~slot:j ~raw8 ~raw56 ~hashes ~taken ~correct
  end

(* Shared two-pass core.  [iter] replays the same [events]-long event
   stream from the start on every call, invoking its callback once per
   event — the closure path instantiates a fresh source each time, the
   arena path walks the packed buffers by index.  Keeping one core means
   the two paths produce byte-identical profiles by construction. *)
let collect_core ?(max_candidates = 2048) ?(min_mispred = 8)
    ?(max_samples = 512) ?(chunk = 8) ~lengths ~iter ~make_predictor () =
  let t = create_empty ~chunk ~lengths () in
  (* Pass 1: aggregate statistics against a fresh baseline predictor. *)
  let predict = make_predictor () in
  iter (fun ~pc ~taken ~instrs ->
      let correct = predict ~pc ~taken in
      record_event t ~pc ~taken ~correct ~instrs);
  (* Candidate selection: most-mispredicting branches first. *)
  let ranked =
    Hashtbl.fold (fun pc s acc -> (pc, s.mispred) :: acc) t.stats []
    |> List.filter (fun (_, m) -> m >= min_mispred)
    |> List.sort (fun (a, ma) (b, mb) ->
           match compare mb ma with 0 -> compare a b | c -> c)
  in
  let candidate_set = Hashtbl.create max_candidates in
  List.iteri
    (fun i (pc, _) ->
      if i < max_candidates then Hashtbl.replace candidate_set pc ())
    ranked;
  (* Pass 2: replay the same trace, recording samples for candidates.  The
     profiler reconstructs hashed histories from the event stream alone —
     it never peeks at the workload model's internals. *)
  let predict = make_predictor () in
  let max_len = Array.fold_left max 1 lengths in
  let hist = History.create ~depth:(max 64 (2 * max_len)) in
  let folded = Array.map (fun len -> History.Folded.create ~len ~chunk) lengths in
  let nl = Array.length lengths in
  let hashes = Array.make nl 0 in
  let rng = Rng.create 0x5EED5 in
  iter (fun ~pc ~taken ~instrs:_ ->
      let correct = predict ~pc ~taken in
      if Hashtbl.mem candidate_set pc then begin
        let raw8 = History.raw_window hist 8 in
        let raw56 = History.raw_window hist 56 in
        for i = 0 to nl - 1 do
          hashes.(i) <- History.Folded.value folded.(i)
        done;
        reservoir_sample t rng ~pc ~max_samples ~raw8 ~raw56 ~hashes ~taken
          ~correct
      end;
      History.push_all hist folded taken);
  t

let collect ?max_candidates ?min_mispred ?max_samples ?chunk ~lengths ~events
    ~make_source ~make_predictor () =
  let iter f =
    let src = make_source () in
    for _ = 1 to events do
      let e = src () in
      f ~pc:e.Branch.pc ~taken:e.Branch.taken ~instrs:e.Branch.instrs
    done
  in
  collect_core ?max_candidates ?min_mispred ?max_samples ?chunk ~lengths ~iter
    ~make_predictor ()

let collect_arena ?max_candidates ?min_mispred ?max_samples ?chunk ~lengths
    ~events ~arena ~make_predictor () =
  if events > Arena.length arena then
    invalid_arg "Profile.collect_arena: events exceeds arena length";
  let iter f =
    for i = 0 to events - 1 do
      f ~pc:(Arena.pc arena i) ~taken:(Arena.taken arena i)
        ~instrs:(Arena.instrs arena i)
    done
  in
  collect_core ?max_candidates ?min_mispred ?max_samples ?chunk ~lengths ~iter
    ~make_predictor ()

let merge profiles =
  match profiles with
  | [] -> invalid_arg "Profile.merge: empty list"
  | first :: _ ->
      List.iter
        (fun p ->
          if p.p_lengths <> first.p_lengths then
            invalid_arg "Profile.merge: mismatched length series")
        profiles;
      let out = create_empty ~chunk:first.chunk ~lengths:first.p_lengths () in
      List.iter
        (fun p ->
          Hashtbl.iter
            (fun pc (s : branch_stat) ->
              let d =
                match Hashtbl.find_opt out.stats pc with
                | Some d -> d
                | None ->
                    let d = { execs = 0; taken_cnt = 0; mispred = 0 } in
                    Hashtbl.add out.stats pc d;
                    d
              in
              d.execs <- d.execs + s.execs;
              d.taken_cnt <- d.taken_cnt + s.taken_cnt;
              d.mispred <- d.mispred + s.mispred)
            p.stats;
          out.total_instrs <- out.total_instrs + p.total_instrs;
          out.total_branches <- out.total_branches + p.total_branches;
          out.total_mispred <- out.total_mispred + p.total_mispred;
          Hashtbl.iter
            (fun pc (_ : samples) ->
              let nl = Array.length out.p_lengths in
              let hashes = Array.make nl 0 in
              iter_samples p ~pc ~f:(fun ~raw8 ~raw56 ~hash ~taken ~correct ->
                  for i = 0 to nl - 1 do
                    hashes.(i) <- hash i
                  done;
                  add_sample ~raw56 out ~pc ~raw8 ~hashes ~taken ~correct))
            p.samples)
        profiles;
      out
